(* Codegen tour: emit the CUDA-style host/kernel code and the PTX-style
   unrolled core for a 2D and a multi-statement stencil.

   Run with: dune exec examples/codegen_tour.exe *)

open Hextile_stencils
open Hextile_tiling
open Hextile_codegen

let () =
  let prog = Suite.heat2d in
  let t = Hybrid.make prog ~h:3 ~w:[| 4; 32 |] in
  Fmt.pr "==== CUDA-style code for %s ====@.%s@." prog.name
    (Cuda_emit.host_and_kernels t prog);

  Fmt.pr "==== PTX-style cores ====@.";
  List.iter
    (fun prog ->
      List.iter
        (fun (s : Hextile_ir.Stencil.stmt) ->
          let l = Ptx_emit.core_listing prog s in
          Fmt.pr "-- %s / %s: %d loads, %d ops, %d store(s)@.%s@." prog.name
            s.sname l.loads l.arith l.stores l.text)
        prog.stmts)
    [ Suite.jacobi2d; Suite.fdtd2d ];

  Fmt.pr "==== OpenCL flavour (same schedule) ====@.%s@."
    (Opencl_emit.kernel t Suite.heat2d ~phase:0);

  (* A multi-statement kernel needs h+1 to be a multiple of k = 3. *)
  let fdtd = Suite.fdtd2d in
  let t = Hybrid.make fdtd ~h:2 ~w:[| 3; 32 |] in
  Fmt.pr "==== CUDA-style code for %s (3 statements, h=2) ====@.%s@." fdtd.name
    (Cuda_emit.kernel t fdtd ~phase:0)
