/* Second-order wave equation: reads two time levels (triple buffering),
 * exercising dependences with time distance 2.
 *   dune exec bin/hextile.exe -- deps examples/wave2d.c
 */
float A[3][N][N];

for (t = 0; t < T; t++)
  for (i = 1; i < N - 1; i++)
    for (j = 1; j < N - 1; j++)
      A[(t+2)%3][i][j] = 2.0f * A[(t+1)%3][i][j] - A[t%3][i][j]
        + 0.1f * (A[(t+1)%3][i+1][j] + A[(t+1)%3][i-1][j]
                + A[(t+1)%3][i][j+1] + A[(t+1)%3][i][j-1]
                - 4.0f * A[(t+1)%3][i][j]);
