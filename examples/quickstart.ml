(* Quickstart: parse the paper's Figure 1 kernel from C source, analyze
   its dependences, build the hybrid hexagonal/classical schedule, execute
   it on the GPU simulator and verify against a sequential reference.

   Run with: dune exec examples/quickstart.exe *)

open Hextile_ir
open Hextile_deps
open Hextile_tiling
open Hextile_gpusim
open Hextile_schemes

let source =
  {|float A[2][N][N];
for (t = 0; t < T; t++)
  for (i = 1; i < N - 1; i++)
    for (j = 1; j < N - 1; j++)
      A[(t+1)%2][i][j] = 0.2f * (A[t%2][i][j] +
          A[t%2][i+1][j] + A[t%2][i-1][j] +
          A[t%2][i][j+1] + A[t%2][i][j-1]);
|}

let () =
  (* 1. Frontend: C subset -> canonical stencil IR *)
  let prog =
    match Hextile_frontend.Front.parse_string ~name:"jacobi2d" source with
    | Ok p -> p
    | Error m -> failwith m
  in
  Fmt.pr "Parsed %s: %d statement(s) over %d spatial dimension(s)@." prog.name
    (List.length prog.stmts) (Stencil.spatial_dims prog);

  (* 2. Dependence analysis and cone *)
  let deps = Dep.analyze prog in
  let cone = Cone.of_deps deps ~dim:0 in
  Fmt.pr "%d dependences, %a@." (List.length deps) Cone.pp cone;

  (* 3. Hybrid hexagonal/classical tiling: h=3 gives 8 time steps per
     tile; w0=4 is the hexagon peak width, w1=32 one warp along x. *)
  let tiling = Hybrid.make prog ~h:3 ~w:[| 4; 32 |] in
  Fmt.pr "Hexagonal tile: %a@." Hexagon.pp tiling.hex;

  (* 4. Check the schedule against every dependence on a small instance *)
  let env p = List.assoc p [ ("N", 64); ("T", 16) ] in
  (match Hybrid.check_legality tiling env with
  | Ok () -> Fmt.pr "Schedule legality: OK@."
  | Error m -> failwith m);

  (* 5. Simulate on a GTX 470-like device with the best shared-memory
     strategy (configuration (f) of Table 4) and verify the result. *)
  let config =
    { (Hybrid_exec.default_config prog) with strategy = Hybrid_exec.best_strategy }
  in
  let result = Hybrid_exec.run ~config prog env Device.gtx470 in
  let reference = Interp.run prog env in
  Hashtbl.iter
    (fun name g ->
      assert (Grid.equal g (Grid.find reference name));
      Fmt.pr "Array %s matches the reference execution (checksum %.6f)@." name
        (Grid.checksum g))
    result.grids;
  Fmt.pr "Simulated: %d stencil updates, %.2f GStencils/s, gld efficiency %.0f%%@."
    result.updates
    (Common.gstencils_per_s result)
    (100.0 *. Counters.gld_efficiency result.counters)
