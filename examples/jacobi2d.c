/* The paper's Figure 1 kernel, accepted verbatim by the hextile frontend:
 *   dune exec bin/hextile.exe -- parse examples/jacobi2d.c
 *   dune exec bin/hextile.exe -- run examples/jacobi2d.c --scheme hybrid
 */
float A[2][N][N];

for (t = 0; t < T; t++)
  for (i = 1; i < N - 1; i++)
    #pragma ivdep
    for (j = 1; j < N - 1; j++)
      A[(t+1)%2][i][j] = 0.2f * (A[t%2][i][j] +
          A[t%2][i+1][j] + A[t%2][i-1][j] +
          A[t%2][i][j+1] + A[t%2][i][j-1]);
