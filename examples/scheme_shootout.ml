(* Scheme shootout: run every tiling scheme (the paper's comparators and
   the hybrid hexagonal/classical tiling) on one workload, verify each
   against the sequential reference, and compare simulated performance.

   Run with: dune exec examples/scheme_shootout.exe [-- kernel] *)

module Experiments = Hextile_experiments.Experiments
open Hextile_gpusim
open Hextile_schemes

let () =
  let kernel = if Array.length Sys.argv > 1 then Sys.argv.(1) else "heat2d" in
  let prog = Hextile_stencils.Suite.find kernel in
  let env = Experiments.sizes ~quick:true prog in
  Fmt.pr "%s at %a on %a@." kernel
    Fmt.(list ~sep:(any ", ") (pair ~sep:(any "=") string int))
    env Device.pp Device.gtx470;
  Fmt.pr "%-10s %10s %8s %12s %10s %9s@." "scheme" "GSt/s" "gld eff" "dram rd"
    "sh ld/req" "kernels";
  List.iter
    (fun s ->
      let r = Experiments.run_scheme s prog env Device.gtx470 in
      Fmt.pr "%-10s %10.3f %7.0f%% %12d %10.2f %9d@."
        (Experiments.scheme_name s)
        (Common.gstencils_per_s r)
        (100.0 *. Counters.gld_efficiency r.counters)
        r.counters.dram_read_transactions
        (Counters.shared_loads_per_request r.counters)
        r.counters.kernels)
    [ Experiments.Ppcg; Experiments.Par4all; Experiments.Patus;
      Experiments.Overtile; Experiments.Hybrid ]
