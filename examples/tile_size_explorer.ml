(* Tile-size exploration (Section 3.7): enumerate candidate (h, w) sizes,
   count iterations and loads of a generic tile exactly, and pick the
   size with the lowest load-to-compute ratio under a shared-memory
   budget with warp-aligned innermost width.

   Run with: dune exec examples/tile_size_explorer.exe *)

open Hextile_stencils
open Hextile_tiling

let explore prog ~h_candidates ~w0_candidates ~wi_candidates =
  Fmt.pr "== %s ==@." prog.Hextile_ir.Stencil.name;
  List.iter
    (fun h ->
      List.iter
        (fun w0 ->
          match Hybrid.make prog ~h ~w:(Array.of_list (w0 :: List.map List.hd wi_candidates)) with
          | t ->
              Fmt.pr "  h=%d w0=%d: %a@." h w0 Tile_size.pp_stats (Tile_size.tile_stats t)
          | exception Invalid_argument _ -> ())
        w0_candidates)
    h_candidates;
  match
    Tile_size.select prog ~h_candidates ~w0_candidates ~wi_candidates
      ~shared_mem_floats:(48 * 1024 / 4) ~require_multiple:32 ()
  with
  | Some c -> Fmt.pr "  selected: %a@." Tile_size.pp_choice c
  | None -> Fmt.pr "  no feasible size@."

let () =
  explore Suite.heat2d ~h_candidates:[ 1; 3; 5; 7 ] ~w0_candidates:[ 2; 4; 8 ]
    ~wi_candidates:[ [ 32; 64 ] ];
  explore Suite.heat3d ~h_candidates:[ 1; 2 ] ~w0_candidates:[ 2; 4; 7 ]
    ~wi_candidates:[ [ 4; 6; 10 ]; [ 32 ] ];
  (* the formula check of Section 3.7 *)
  let t = Hybrid.make Suite.heat3d ~h:2 ~w:[| 7; 10; 32 |] in
  let s = Tile_size.tile_stats t in
  Fmt.pr "heat3d h=2 w=(7,10,32): %d iterations; paper formula %d@." s.iterations
    (Tile_size.iterations_formula_3d ~h:2 ~w0:7 ~w1:10 ~w2:32)
