# Convenience wrapper; `make check` is what CI runs.

.PHONY: all build test check fmt clean profile-smoke

all: build

build:
	dune build

test:
	dune runtest

fmt:
	dune build @fmt --auto-promote 2>/dev/null || true

# Everything CI enforces: a clean build, the full test suite, and a
# profile report that parses as JSON.
check: build test profile-smoke

profile-smoke:
	dune exec bin/hextile.exe -- profile --builtin jacobi2d -N 64 -T 16 -o _build/prof_smoke.json
	@python3 -c "import json; json.load(open('_build/prof_smoke.json'))" && echo "profile JSON ok"

clean:
	dune clean
