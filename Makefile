# Convenience wrapper; `make check` is what CI runs.

.PHONY: all build test check fmt clean profile-smoke fuzz bench bench-parattr bench-tilesize bench-sim bench-analytic bench-serve

all: build

build:
	dune build

test:
	dune runtest

fmt:
	dune build @fmt --auto-promote 2>/dev/null || true

# Everything CI enforces: a clean build, the full test suite, a
# profile report that parses as JSON, and the fixed-seed fuzz smoke.
check: build test profile-smoke fuzz

profile-smoke:
	dune exec bin/hextile.exe -- profile --builtin jacobi2d -N 64 -T 16 -o _build/prof_smoke.json
	@python3 -c "import json; json.load(open('_build/prof_smoke.json'))" && echo "profile JSON ok"

# Fixed-seed differential-testing smoke: a clean campaign across all
# schemes, then a mutation self-test (inject an off-by-one into the
# hybrid executor's view of each program; the oracle must catch every
# observable mutant).
fuzz:
	dune exec bin/hextile.exe -- fuzz --seed 42 --count 25
	dune exec bin/hextile.exe -- fuzz --seed 7 --count 12 --mutate hybrid --shrink

# Parallel-runtime benchmark: times the Table 12 suite at jobs=1 vs
# jobs=N (default 4) and records the comparison in BENCH_par.json.
# Fails if the parallel rows differ from the sequential ones (this
# doubles as a determinism check) or if the speedup is below the
# core-aware floor: 2x on >=4 cores, 1.2x on 2-3, 0.6x on one (where
# real speedup is physically impossible and the gate only catches the
# parallel path falling off a cliff). Override the computed floor with
# HEXTILE_PARCMP_FLOOR.
JOBS ?= 4
bench: bench-parattr
	dune exec bench/main.exe -- --only parcmp --jobs $(JOBS) --json BENCH_par.json
	@python3 -c "import json; d=json.load(open('BENCH_par.json'))['experiments']['parcmp']; print('parcmp: jobs=%d cores=%d speedup=%.2fx (floor %.2fx) identical=%s' % (d['jobs'], d['cores'], d['speedup'], d['floor'], d['identical']))"

# Parallel-time attribution: runs the Table 3 hybrid suite at jobs=N
# with the timeline recorder on and attributes the jobs x wall-time
# budget to {compute, idle, encode, replay, absorb} in
# BENCH_parattr.json, with the run's Perfetto trace in
# parattr_trace.json for timeline inspection. Fails if the per-phase
# attribution does not sum to the measured budget within 5%.
bench-parattr:
	dune exec bench/main.exe -- --only parattr --jobs $(JOBS) --json BENCH_parattr.json --trace-out parattr_trace.json
	@python3 -c "import json; d=json.load(open('BENCH_parattr.json'))['experiments']['parattr']; f=d['fractions']; print('parattr: jobs=%d wall=%.2fs compute=%.1f%% idle=%.1f%% coverage=%.1f%%' % (d['jobs'], d['wall_s'], 100*f['compute'], 100*f['idle'], 100*d['named_coverage']))"

# Tile-size search benchmark: runs the staged (analytic-prune + exact)
# search against the frozen exhaustive oracle over the Table 3 suite,
# both sequentially and at --jobs 2, and records totals in
# BENCH_tilesize.json. Fails if any selected tile diverges from the
# oracle or if the staged search does fewer than 5x fewer exact
# evaluations than there are candidates.
bench-tilesize:
	dune exec bench/main.exe -- --only tilesearch --jobs 2 --json BENCH_tilesize.json
	@python3 -c "import json; d=json.load(open('BENCH_tilesize.json'))['experiments']['tilesearch']; print('tilesearch: %d candidates, %d exact evals, exhaustive %.2fs, staged %.2fs' % (d['total_candidates'], d['total_exact_evals'], d['t_exhaustive_s'], d['t_staged_s']))"

# Execution-engine benchmark: times the hybrid scheme over the Table 3
# suite with the closure reference vs the warp-batched tape engine
# (tile-class stream memoization on), sequentially and at --jobs 2, and
# records the comparison in BENCH_sim.json. Fails if any counter or
# grid diverges between the engines or if the tape engine's total
# speedup drops below 3x.
bench-sim:
	dune exec bench/main.exe -- --only simcmp --jobs 2 --json BENCH_sim.json
	@python3 -c "import json; d=json.load(open('BENCH_sim.json'))['experiments']['simcmp']; print('simcmp: ref %.2fs tape %.2fs speedup=%.2fx' % (d['t_ref_s'], d['t_tape_s'], d['speedup']))"

# Analytic-mode benchmark: differential check of the hierarchical
# (class-scaled) simulation against the exact engine over the scaled
# Table 3 suite, then the paper's actual full-size instances
# (3072^2 x 512 and 384^3 x 128) under a per-instance wall-clock budget
# (default 120 s; override with HEXTILE_ANALYTIC_BUDGET_S). Fails on
# any counter/grid divergence, a DRAM error above the documented bound,
# or a budget overrun. The JSON lands in BENCH_analytic.json.
bench-analytic:
	dune exec bench/main.exe -- --only analytic --jobs 2 --json BENCH_analytic.json
	@python3 -c "import json; d=json.load(open('BENCH_analytic.json'))['experiments']['analytic']; f=d['full_size']; print('analytic: scaled speedup=%.2fx max dram err=%.4f; ' % (d['speedup'], d['max_dram_err']) + ', '.join('%s %.0fs (%d/%d blocks scaled)' % (k, v['wall_s'], v['blocks_analytic'], v['blocks']) for k, v in f.items()))"

# Serve-daemon benchmark: sustained request throughput through the
# hextile serve request path (Table 3 traffic plus seeded fuzz
# programs, with duplicate requests), cold cache vs warm, on one
# daemon-lifetime pool and cache. Fails unless every response stream is
# bit-identical at jobs 1/2/4 cold and warm, every run response matches
# the one-shot pipeline's grids hash and result record exactly, and the
# warm cache delivers at least 3x the cold throughput. The JSON lands
# in BENCH_serve.json.
bench-serve:
	dune exec bench/main.exe -- --only serve --jobs 2 --json BENCH_serve.json
	@python3 -c "import json; d=json.load(open('BENCH_serve.json'))['experiments']['serve']; c=d['cold']; w=d['warm']; h=d['hit_rates']; print('serve: %d reqs cold %.1f req/s warm %.1f req/s (%.1fx) hits entry=%.2f run=%.2f identical=%s' % (d['requests'], c['req_per_s'], w['req_per_s'], d['warm_speedup'], h['entry'], h['run'], d['identical']))"

clean:
	dune clean
