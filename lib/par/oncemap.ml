(* Lock-free publish-once map for process-shared memo tables.

   A fixed-capacity open-addressed table of [Atomic] slots: a key is
   published at most once per slot by a compare-and-set race, and every
   later reader of that slot observes the winning value. The map is a
   cache, not a store — on a full probe window [publish] simply returns
   the caller's value unpublished, so callers must treat the computed
   value and the cached value as interchangeable (true for pure
   functions, which is the only supported use).

   Determinism: with pure computations every candidate value for a key
   is structurally identical, so which domain wins the publish race is
   unobservable in results. Sequentially, the winner's value is also the
   physically shared one (a second [find] returns the published value by
   identity), which the domain-local memo tables this module replaces
   also guaranteed. *)

type ('k, 'v) slot = Empty | Entry of 'k * 'v

type ('k, 'v) t = {
  slots : ('k, 'v) slot Atomic.t array Atomic.t;
      (** swapped wholesale by [clear]; readers snapshot it once per op *)
  mask : int;
  probe : int;  (** max linear-probe window before giving up *)
}

let create ?(bits = 10) ?(probe = 32) () =
  let size = 1 lsl bits in
  {
    slots = Atomic.make (Array.init size (fun _ -> Atomic.make Empty));
    mask = size - 1;
    probe = min probe size;
  }

let clear t =
  let size = t.mask + 1 in
  Atomic.set t.slots (Array.init size (fun _ -> Atomic.make Empty))

let find t k =
  let arr = Atomic.get t.slots in
  let h = Hashtbl.hash k land t.mask in
  let rec go i n =
    if n >= t.probe then None
    else
      match Atomic.get arr.(i) with
      | Entry (k', v) when k' = k -> Some v
      | Entry _ -> go ((i + 1) land t.mask) (n + 1)
      | Empty -> None
  in
  go h 0

let publish t k v =
  let arr = Atomic.get t.slots in
  let h = Hashtbl.hash k land t.mask in
  let rec go i n =
    if n >= t.probe then v (* window full: hand back unpublished *)
    else
      let s = arr.(i) in
      match Atomic.get s with
      | Entry (k', v') when k' = k -> v' (* lost the race: adopt the winner *)
      | Entry _ -> go ((i + 1) land t.mask) (n + 1)
      | Empty ->
          if Atomic.compare_and_set s Empty (Entry (k, v)) then v
          else begin
            (* someone published into this slot between the read and the
               CAS; re-examine it (it may even be our key) *)
            match Atomic.get s with
            | Entry (k', v') when k' = k -> v'
            | _ -> go ((i + 1) land t.mask) (n + 1)
          end
  in
  go h 0

let find_or_compute t k f =
  match find t k with Some v -> v | None -> publish t k (f ())
