(* Lock-free publish-once map for process-shared memo tables.

   A fixed-capacity open-addressed table of [Atomic] slots: a key is
   published at most once per slot by a compare-and-set race, and every
   later reader of that slot observes the winning value. The map is a
   cache, not a store — on a full probe window [publish] simply returns
   the caller's value unpublished, so callers must treat the computed
   value and the cached value as interchangeable (true for pure
   functions, which is the only supported use).

   Determinism: with pure computations every candidate value for a key
   is structurally identical, so which domain wins the publish race is
   unobservable in results. Sequentially, the winner's value is also the
   physically shared one (a second [find] returns the published value by
   identity), which the domain-local memo tables this module replaces
   also guaranteed.

   Stats: every [find] bumps a per-table hit or miss atomic. The counts
   are scheduling-dependent (two domains racing on a cold key both
   miss), so they are observability data, never inputs to any computed
   result — the determinism contract covers results, not stats. Tables
   created with [?name] register in a process-global list so drivers
   can snapshot every named cache at once ([stats_all]) or fold the
   deltas into the [Obs] counter registry ([publish_obs]). *)

module Obs = Hextile_obs.Obs

type ('k, 'v) slot = Empty | Entry of 'k * 'v

type ('k, 'v) t = {
  slots : ('k, 'v) slot Atomic.t array Atomic.t;
      (** swapped wholesale by [clear]; readers snapshot it once per op *)
  mask : int;
  probe : int;  (** max linear-probe window before giving up *)
  hits : int Atomic.t;
  misses : int Atomic.t;
  obs_hits : int Atomic.t;  (** already folded into Obs by [publish_obs] *)
  obs_misses : int Atomic.t;
}

(* Process-global registry of named tables, for stats snapshots and Obs
   publication. Registration happens at [create] time (module init or
   an explicit cache-context build), so the list stays tiny. *)
type reg = Reg : string * ('k, 'v) t -> reg

let registry : reg list Atomic.t = Atomic.make []

let rec register r =
  let l = Atomic.get registry in
  if not (Atomic.compare_and_set registry l (r :: l)) then register r

let create ?(bits = 10) ?(probe = 32) ?name () =
  let size = 1 lsl bits in
  let t =
    {
      slots = Atomic.make (Array.init size (fun _ -> Atomic.make Empty));
      mask = size - 1;
      probe = min probe size;
      hits = Atomic.make 0;
      misses = Atomic.make 0;
      obs_hits = Atomic.make 0;
      obs_misses = Atomic.make 0;
    }
  in
  Option.iter (fun n -> register (Reg (n, t))) name;
  t

let clear t =
  let size = t.mask + 1 in
  Atomic.set t.slots (Array.init size (fun _ -> Atomic.make Empty));
  Atomic.set t.hits 0;
  Atomic.set t.misses 0;
  Atomic.set t.obs_hits 0;
  Atomic.set t.obs_misses 0

let stats t = (Atomic.get t.hits, Atomic.get t.misses)

let stats_all () =
  List.rev_map (fun (Reg (n, t)) -> (n, Atomic.get t.hits, Atomic.get t.misses))
    (Atomic.get registry)

(* Fold the per-table counts into Obs as oncemap.<name>.{hits,misses}.
   Deltas since the previous publication are added, so a driver may call
   this at several report points without double counting; when Obs is
   disabled nothing is recorded and nothing is consumed. Main-domain
   only, like every other Obs registry operation. *)
let publish_obs () =
  if Obs.enabled () then
    List.iter
      (fun (Reg (n, t)) ->
        let bump counter seen label =
          let cur = Atomic.get counter in
          let old = Atomic.exchange seen cur in
          if cur - old > 0 then
            Obs.incr ~by:(cur - old) ("oncemap." ^ n ^ "." ^ label)
        in
        bump t.hits t.obs_hits "hits";
        bump t.misses t.obs_misses "misses")
      (Atomic.get registry)

let find t k =
  let arr = Atomic.get t.slots in
  let h = Hashtbl.hash k land t.mask in
  let rec go i n =
    if n >= t.probe then begin
      Atomic.incr t.misses;
      None
    end
    else
      match Atomic.get arr.(i) with
      | Entry (k', v) when k' = k ->
          Atomic.incr t.hits;
          Some v
      | Entry _ -> go ((i + 1) land t.mask) (n + 1)
      | Empty ->
          Atomic.incr t.misses;
          None
  in
  go h 0

let publish t k v =
  let arr = Atomic.get t.slots in
  let h = Hashtbl.hash k land t.mask in
  let rec go i n =
    if n >= t.probe then v (* window full: hand back unpublished *)
    else
      let s = arr.(i) in
      match Atomic.get s with
      | Entry (k', v') when k' = k -> v' (* lost the race: adopt the winner *)
      | Entry _ -> go ((i + 1) land t.mask) (n + 1)
      | Empty ->
          if Atomic.compare_and_set s Empty (Entry (k, v)) then v
          else begin
            (* someone published into this slot between the read and the
               CAS; re-examine it (it may even be our key) *)
            match Atomic.get s with
            | Entry (k', v') when k' = k -> v'
            | _ -> go ((i + 1) land t.mask) (n + 1)
          end
  in
  go h 0

let find_or_compute t k f =
  match find t k with Some v -> v | None -> publish t k (f ())
