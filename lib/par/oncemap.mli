(** Lock-free publish-once map for process-shared memo tables.

    A fixed-capacity open-addressed table of [Atomic] slots shared by
    every domain. [publish] installs a (key, value) pair with a single
    compare-and-set — the first publisher of a key wins, later
    publishers adopt the winner's value — and [find] never blocks.

    The map is a {e cache of a pure function}: when the table (or a
    probe window) is full, operations degrade to "compute uncached"
    rather than evicting, so correctness must never depend on a value
    being present. Keys are compared structurally and hashed with
    [Hashtbl.hash].

    This is the shared, read-once/replay-many backing store for memo
    tables that used to live in domain-local storage (dependence
    analysis, Fourier–Motzkin projections): one domain pays for the
    computation, every domain reuses the published result, and — the
    computations being pure — which domain wins the race is
    unobservable in any result. *)

type ('k, 'v) t

val create : ?bits:int -> ?probe:int -> ?name:string -> unit -> ('k, 'v) t
(** [create ~bits ~probe ()] makes a table of [2^bits] slots (default
    1024) probed linearly over a window of [probe] slots (default 32).
    With [?name] the table registers in a process-global list so its
    hit/miss stats appear in {!stats_all} and {!publish_obs} — use for
    long-lived (module-level or cache-context) tables only; registered
    tables are never unregistered. *)

val find : ('k, 'v) t -> 'k -> 'v option
(** The published value for this key, if any domain has published one
    within the probe window. *)

val publish : ('k, 'v) t -> 'k -> 'v -> 'v
(** Publish a value for a key and return the value every domain will
    see from now on: the argument if this call won the race (or if the
    window was full and nothing was published), the earlier winner's
    value otherwise. *)

val find_or_compute : ('k, 'v) t -> 'k -> (unit -> 'v) -> 'v
(** [find] then, on a miss, compute and [publish]. The computation may
    run concurrently on several domains during a race; it must be pure. *)

val clear : ('k, 'v) t -> unit
(** Drop every published entry (by installing a fresh slot array) and
    reset the hit/miss stats. Concurrent operations racing with a clear
    may publish into the old array; such entries are simply lost —
    acceptable for a cache. *)

(** {2 Stats}

    Every {!find} (and hence {!find_or_compute}) bumps a per-table hit
    or miss atomic. Counts depend on scheduling — two domains racing on
    a cold key both record a miss — so they are monitoring data and are
    never fed back into computed results. *)

val stats : ('k, 'v) t -> int * int
(** [(hits, misses)] since creation or the last {!clear}. *)

val stats_all : unit -> (string * int * int) list
(** [(name, hits, misses)] for every table created with [?name], in
    registration order. *)

val publish_obs : unit -> unit
(** Fold every named table's stats into the {!Hextile_obs.Obs} counter
    registry as [oncemap.<name>.hits] / [oncemap.<name>.misses]. Only
    the delta since the previous publication is added, so report paths
    may call this repeatedly. No-op while Obs is disabled. Main-domain
    only (it writes the Obs registry). *)
