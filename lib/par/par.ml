module Obs = Hextile_obs.Obs
module Tl = Hextile_obs.Timeline

type pool = {
  jobs : int;
  mu : Mutex.t;
  cond : Condition.t;  (** task available / region complete / shutdown *)
  tasks : (unit -> unit) Queue.t;
  mutable stop : bool;
  mutable workers : unit Domain.t array;
}

let in_region_key = Domain.DLS.new_key (fun () -> false)
let in_region () = Domain.DLS.get in_region_key
let recommended_jobs () = Domain.recommended_domain_count ()
let jobs p = p.jobs

let rec worker_loop p =
  Mutex.lock p.mu;
  let rec next () =
    match Queue.take_opt p.tasks with
    | Some t -> Some t
    | None ->
        if p.stop then None
        else begin
          (* empty queue: this wait is the worker's idle gap *)
          Tl.instant "par.steal_miss";
          Tl.begin_ "par.idle";
          Condition.wait p.cond p.mu;
          Tl.end_ ();
          next ()
        end
  in
  match next () with
  | None -> Mutex.unlock p.mu
  | Some task ->
      Mutex.unlock p.mu;
      Tl.begin_ "par.steal";
      task ();
      Tl.end_ ();
      worker_loop p

let create ~jobs =
  let jobs = max 1 jobs in
  let p =
    {
      jobs;
      mu = Mutex.create ();
      cond = Condition.create ();
      tasks = Queue.create ();
      stop = false;
      workers = [||];
    }
  in
  p.workers <-
    Array.init (jobs - 1) (fun i ->
        Domain.spawn (fun () ->
            Tl.label (Fmt.str "worker-%d" (i + 1));
            worker_loop p));
  p

let shutdown p =
  Mutex.lock p.mu;
  p.stop <- true;
  Condition.broadcast p.cond;
  Mutex.unlock p.mu;
  Array.iter Domain.join p.workers;
  p.workers <- [||]

let with_pool ~jobs f =
  let p = create ~jobs in
  Fun.protect ~finally:(fun () -> shutdown p) (fun () -> f p)

(* One parallel region at a time: [run] is only ever entered from the
   caller's domain (tasks re-entering degrade to the sequential loop), so
   the queue holds tasks of at most one region and the caller may safely
   help drain it. *)
let run p (thunks : (unit -> unit) array) =
  let n = Array.length thunks in
  if n = 0 then ()
  else if p.jobs = 1 || in_region () || n = 1 then
    Array.iter (fun f -> f ()) thunks
  else begin
    Tl.begin_ ~arg:(float_of_int n) "par.region";
    Fun.protect ~finally:Tl.end_ @@ fun () ->
    let remaining = ref n in
    let errs : (exn * Printexc.raw_backtrace) option array = Array.make n None in
    let forks = Array.make n None in
    (* flow arrows pair each enqueue (on the caller's track) with the
       start of execution (on whichever domain dequeued it); task 0 runs
       inline so it gets no arrow *)
    let fids =
      if Tl.enabled () then Array.init n (fun _ -> Tl.flow_id ()) else [||]
    in
    let exec i =
      let saved = Domain.DLS.get in_region_key in
      Domain.DLS.set in_region_key true;
      Fun.protect
        ~finally:(fun () -> Domain.DLS.set in_region_key saved)
        (fun () ->
          if i > 0 && Array.length fids > 0 then Tl.flow_f fids.(i);
          Tl.begin_ ~arg:(float_of_int i) "par.task";
          Obs.fork_begin ();
          (try thunks.(i) ()
           with e -> errs.(i) <- Some (e, Printexc.get_raw_backtrace ()));
          forks.(i) <- Some (Obs.fork_end ());
          Tl.end_ ())
    in
    let finished () =
      Mutex.lock p.mu;
      decr remaining;
      if !remaining = 0 then Condition.broadcast p.cond;
      Mutex.unlock p.mu
    in
    Mutex.lock p.mu;
    for i = 1 to n - 1 do
      if Array.length fids > 0 then Tl.flow_s fids.(i);
      Queue.add
        (fun () ->
          exec i;
          finished ())
        p.tasks
    done;
    Condition.broadcast p.cond;
    Mutex.unlock p.mu;
    exec 0;
    finished ();
    (* help with not-yet-claimed tasks, then wait for the stragglers *)
    let rec help () =
      Mutex.lock p.mu;
      match Queue.take_opt p.tasks with
      | Some task ->
          Mutex.unlock p.mu;
          Tl.begin_ "par.steal";
          task ();
          Tl.end_ ();
          help ()
      | None ->
          while !remaining > 0 do
            Tl.begin_ "par.idle";
            Condition.wait p.cond p.mu;
            Tl.end_ ()
          done;
          Mutex.unlock p.mu
    in
    help ();
    (* deterministic merge: absorb per-task Obs buffers in task order *)
    Tl.begin_ ~arg:(float_of_int n) "par.absorb";
    Array.iter (function Some fk -> Obs.absorb fk | None -> ()) forks;
    Tl.end_ ();
    match Array.find_map Fun.id errs with
    | Some (e, bt) -> Printexc.raise_with_backtrace e bt
    | None -> ()
  end

(* Hybrid static/dynamic schedule (after Jin et al.): each task owns a
   contiguous static shard of the index space and drains it through a
   per-shard atomic cursor; once its own shard is dry it makes one
   round-robin pass over the other shards and helps drain any that still
   have work. Contiguous shards keep each domain's accesses local (and
   cut the cross-domain cache traffic of a single shared counter); the
   per-shard cursors keep the schedule work-conserving when shards are
   imbalanced. [fetch_and_add] uniqueness guarantees every index is
   claimed exactly once no matter how many helpers race on a shard, and
   the shard owner never exits before its cursor passes [hi], so
   completeness does not depend on stealing at all. *)
let map p f (xs : 'a array) : 'b array =
  let n = Array.length xs in
  if n = 0 then [||]
  else if p.jobs = 1 || in_region () || n = 1 then Array.map f xs
  else begin
    let out = Array.make n None in
    let errs : (exn * Printexc.raw_backtrace) option array = Array.make n None in
    let ntasks = min p.jobs n in
    let lo s = s * n / ntasks in
    let hi s = (s + 1) * n / ntasks in
    let cursors = Array.init ntasks (fun s -> Atomic.make (lo s)) in
    let do_one i =
      try out.(i) <- Some (f xs.(i))
      with e -> errs.(i) <- Some (e, Printexc.get_raw_backtrace ())
    in
    let drain s =
      let h = hi s in
      let rec loop () =
        let i = Atomic.fetch_and_add cursors.(s) 1 in
        if i < h then begin
          do_one i;
          loop ()
        end
      in
      loop ()
    in
    run p
      (Array.init ntasks (fun s () ->
           drain s;
           (* cursors only grow, so a shard seen dry stays dry: one
              round-robin pass suffices *)
           for k = 1 to ntasks - 1 do
             let v = (s + k) mod ntasks in
             if Atomic.get cursors.(v) < hi v then begin
               Tl.instant "par.shard_steal";
               drain v
             end
           done));
    (match Array.find_map Fun.id errs with
    | Some (e, bt) -> Printexc.raise_with_backtrace e bt
    | None -> ());
    Array.map (function Some v -> v | None -> assert false) out
  end

let iter p f xs = ignore (map p f xs : unit array)

let map_reduce p ~map:fm ~merge init xs =
  Array.fold_left merge init (map p fm xs)
