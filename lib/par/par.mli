(** A small fixed-size domain pool with deterministic parallel iteration.

    The pool owns [jobs - 1] worker domains (the calling domain is the
    [jobs]-th participant, so [jobs = 1] spawns nothing); {!run}, {!map},
    {!iter} and {!map_reduce} distribute work across them and return only
    once every task has finished.

    {b Determinism contract.} All combinators deliver results {e by input
    index}: [map p f xs] returns exactly [Array.map f xs] no matter which
    domain evaluated which element, exceptions are re-raised for the
    lowest failing index, and {!map_reduce} folds the mapped values
    left-to-right in index order. Callers that keep their element
    functions independent (no shared mutable state, or state merged
    associatively per index) therefore observe bit-identical outputs for
    every [jobs] value. The scheduling of elements onto domains is {e not}
    part of the contract — only the results are.

    {b Nesting.} Tasks run with an "inside a parallel region" flag set on
    their domain; any combinator called from within a task degrades to
    the plain sequential loop. This keeps one pool-wide level of
    parallelism (no domain explosion, no cross-pool deadlock) and keeps
    nested library code deterministic for free.

    {b Observability.} Each parallel task runs under an {!Obs} fork
    (domain-local registry); forks are absorbed into the caller's
    registry in task order once the region completes, so counter totals
    match the sequential run exactly (span {e ordering} within a region
    may differ — spans carry wall-clock timestamps anyway).

    Independently, when {!Hextile_obs.Timeline} recording is enabled the
    pool emits wall-clock slices onto per-domain tracks: ["par.region"]
    around each region on the caller, ["par.task"] around every task
    (with a flow arrow from its enqueue), ["par.steal"] around each
    dequeue-and-run, ["par.idle"] for queue-empty waits (plus
    ["par.steal_miss"] instants), ["par.shard_steal"] instants when a
    {!map} task crosses into another task's shard, and ["par.absorb"]
    around the ordered fork merge. Worker tracks are labelled
    ["worker-N"]. The timeline
    never feeds back into [Obs], so recording cannot perturb the
    determinism contract. *)

type pool

val recommended_jobs : unit -> int
(** [Domain.recommended_domain_count ()] — the default for [--jobs]. *)

val create : jobs:int -> pool
(** Spawn a pool of [max 1 jobs] participants ([jobs - 1] worker
    domains). *)

val shutdown : pool -> unit
(** Stop and join the workers. Idempotent. *)

val with_pool : jobs:int -> (pool -> 'a) -> 'a
(** [create], run, [shutdown] (also on exceptions). *)

val jobs : pool -> int

val in_region : unit -> bool
(** True while the current domain is executing a pool task; combinators
    (and {!Hextile_gpusim.Sim.launch}-style clients) use this to fall
    back to their sequential path instead of nesting regions. *)

val run : pool -> (unit -> unit) array -> unit
(** Run every thunk to completion, thunk [0] on the calling domain.
    Exceptions are captured per thunk and the lowest-index one is
    re-raised after all thunks finished (remaining thunks are not
    cancelled). Sequential (in order, no forking) when [jobs p = 1],
    when called from inside a region, or for fewer than two thunks. *)

val map : pool -> ('a -> 'b) -> 'a array -> 'b array
(** Deterministic parallel [Array.map]: results are delivered by index;
    element order of evaluation is unspecified. Scheduling is a hybrid
    static/dynamic shard schedule — each task owns a contiguous static
    shard of the index space (good locality, no shared hot counter) and
    steals from other shards through their per-shard atomic cursors
    once its own is dry (work-conserving under imbalance). Every index
    runs exactly once regardless of stealing. Exactly [Array.map f xs]
    when [jobs p = 1] or inside a region. *)

val iter : pool -> ('a -> unit) -> 'a array -> unit

val map_reduce :
  pool -> map:('a -> 'b) -> merge:('c -> 'b -> 'c) -> 'c -> 'a array -> 'c
(** [map_reduce p ~map ~merge init xs] maps in parallel, then folds
    [merge] over the results sequentially in index order — an ordered
    merge, so non-commutative [merge]s are safe. *)
