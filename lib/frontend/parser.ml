open Ast

exception Error of Lexer.pos * string

let fail lx fmt = Fmt.kstr (fun m -> raise (Error (Lexer.pos lx, m))) fmt

let expect lx tok =
  let got = Lexer.next lx in
  if got <> tok then
    fail lx "expected %a but found %a" Lexer.pp_token tok Lexer.pp_token got

let expect_ident lx =
  match Lexer.next lx with
  | Lexer.Ident s -> s
  | got -> fail lx "expected an identifier but found %a" Lexer.pp_token got

(* --- integer expressions ------------------------------------------- *)

(*  iexpr   := iterm (('+'|'-') iterm)*
    iterm   := ifactor (('*'|'%') ifactor)*
    ifactor := INT | IDENT | '-' ifactor | '(' iexpr ')'            *)

let rec iexpr lx =
  let left = ref (iterm lx) in
  let rec go () =
    match Lexer.peek lx with
    | Lexer.Plus ->
        ignore (Lexer.next lx);
        left := IAdd (!left, iterm lx);
        go ()
    | Lexer.Minus ->
        ignore (Lexer.next lx);
        left := ISub (!left, iterm lx);
        go ()
    | _ -> ()
  in
  go ();
  !left

and iterm lx =
  let left = ref (ifactor lx) in
  let rec go () =
    match Lexer.peek lx with
    | Lexer.Star ->
        ignore (Lexer.next lx);
        left := IMul (!left, ifactor lx);
        go ()
    | Lexer.Percent ->
        ignore (Lexer.next lx);
        left := IMod (!left, ifactor lx);
        go ()
    | _ -> ()
  in
  go ();
  !left

and ifactor lx =
  match Lexer.next lx with
  | Lexer.Int n -> IConst n
  | Lexer.Ident v -> IVar v
  | Lexer.Minus -> INeg (ifactor lx)
  | Lexer.LParen ->
      let e = iexpr lx in
      expect lx Lexer.RParen;
      e
  | got -> fail lx "expected an index expression but found %a" Lexer.pp_token got

(* --- float expressions --------------------------------------------- *)

let indices lx =
  let rec go acc =
    match Lexer.peek lx with
    | Lexer.LBracket ->
        ignore (Lexer.next lx);
        let e = iexpr lx in
        expect lx Lexer.RBracket;
        go (e :: acc)
    | _ -> List.rev acc
  in
  go []

let rec fexpr lx =
  let left = ref (fterm lx) in
  let rec go () =
    match Lexer.peek lx with
    | Lexer.Plus ->
        ignore (Lexer.next lx);
        left := FBin (Hextile_ir.Stencil.Add, !left, fterm lx);
        go ()
    | Lexer.Minus ->
        ignore (Lexer.next lx);
        left := FBin (Hextile_ir.Stencil.Sub, !left, fterm lx);
        go ()
    | _ -> ()
  in
  go ();
  !left

and fterm lx =
  let left = ref (ffactor lx) in
  let rec go () =
    match Lexer.peek lx with
    | Lexer.Star ->
        ignore (Lexer.next lx);
        left := FBin (Hextile_ir.Stencil.Mul, !left, ffactor lx);
        go ()
    | Lexer.Slash ->
        ignore (Lexer.next lx);
        left := FBin (Hextile_ir.Stencil.Div, !left, ffactor lx);
        go ()
    | _ -> ()
  in
  go ();
  !left

and ffactor lx =
  let pos = Lexer.pos lx in
  match Lexer.next lx with
  | Lexer.Float f -> FConst f
  | Lexer.Int n -> FConst (float_of_int n)
  | Lexer.Minus -> FNeg (ffactor lx)
  | Lexer.LParen ->
      let e = fexpr lx in
      expect lx Lexer.RParen;
      e
  | Lexer.Ident a -> (
      match indices lx with
      | [] -> fail lx "scalar variable %s not supported (array reference expected)" a
      | idx -> FRef (a, idx, pos))
  | got -> fail lx "expected an expression but found %a" Lexer.pp_token got

(* --- statements and loops ------------------------------------------ *)

let rec item lx =
  match Lexer.peek lx with
  | Lexer.Kw_for -> For (floop lx)
  | Lexer.Ident _ -> (
      let pos = Lexer.pos lx in
      let array = expect_ident lx in
      let idx = indices lx in
      match Lexer.next lx with
      | Lexer.Assign ->
          let rhs = fexpr lx in
          expect lx Lexer.Semi;
          Assign { array; indices = idx; rhs; apos = pos }
      | Lexer.PlusAssign ->
          fail lx "compound assignment '+=' is not supported; write x = x + ..."
      | got -> fail lx "expected '=' but found %a" Lexer.pp_token got)
  | got -> fail lx "expected a for loop or an assignment but found %a" Lexer.pp_token got

and body lx =
  match Lexer.peek lx with
  | Lexer.LBrace ->
      ignore (Lexer.next lx);
      let rec go acc =
        match Lexer.peek lx with
        | Lexer.RBrace ->
            ignore (Lexer.next lx);
            List.rev acc
        | _ -> go (item lx :: acc)
      in
      go []
  | _ -> [ item lx ]

and floop lx =
  let pos = Lexer.pos lx in
  expect lx Lexer.Kw_for;
  expect lx Lexer.LParen;
  let var = expect_ident lx in
  expect lx Lexer.Assign;
  let lo = iexpr lx in
  expect lx Lexer.Semi;
  let var2 = expect_ident lx in
  if not (String.equal var var2) then
    fail lx "loop condition tests %s but the loop variable is %s" var2 var;
  let hi =
    match Lexer.next lx with
    | Lexer.Lt -> Lt (iexpr lx)
    | Lexer.Le -> Le (iexpr lx)
    | got -> fail lx "expected '<' or '<=' but found %a" Lexer.pp_token got
  in
  expect lx Lexer.Semi;
  let var3 = expect_ident lx in
  if not (String.equal var var3) then
    fail lx "loop increments %s but the loop variable is %s" var3 var;
  expect lx Lexer.PlusPlus;
  expect lx Lexer.RParen;
  { var; lo; hi; body = body lx; pos }

let decl lx =
  let dpos = Lexer.pos lx in
  expect lx Lexer.Kw_float;
  let dname = expect_ident lx in
  let dims = indices lx in
  if dims = [] then fail lx "array declaration %s needs at least one dimension" dname;
  expect lx Lexer.Semi;
  { dname; dims; dpos }

let program src =
  let lx = Lexer.of_string src in
  let rec decls acc =
    match Lexer.peek lx with
    | Lexer.Kw_float -> decls (decl lx :: acc)
    | _ -> List.rev acc
  in
  let decls = decls [] in
  let loop = floop lx in
  (match Lexer.peek lx with
  | Lexer.Eof -> ()
  | got -> fail lx "trailing input after the time loop: %a" Lexer.pp_token got);
  { decls; loop }

let iexpr_of_string s =
  let lx = Lexer.of_string s in
  let e = iexpr lx in
  (match Lexer.peek lx with
  | Lexer.Eof -> ()
  | got -> fail lx "trailing input: %a" Lexer.pp_token got);
  e
