(** Hand-written lexer for the stencil C subset.

    Handles identifiers, integer and float literals (with the [f]
    suffix), the punctuation of loop nests and affine expressions,
    [//] and [/* */] comments, and skips preprocessor lines. *)

type pos = { line : int; col : int }

type token =
  | Ident of string
  | Int of int
  | Float of float
  | Kw_for
  | Kw_float  (** the [float] type keyword in array declarations *)
  | LParen
  | RParen
  | LBrace
  | RBrace
  | LBracket
  | RBracket
  | Semi
  | Comma
  | Assign
  | Plus
  | Minus
  | Star
  | Slash
  | Percent
  | Lt
  | Le
  | PlusPlus
  | PlusAssign  (** [+=], rejected later with a clear message *)
  | Eof

exception Error of pos * string

type t

val of_string : string -> t
val peek : t -> token
val pos : t -> pos
val next : t -> token
(** Consume and return the current token. *)

val pp_token : token Fmt.t
