(** Lowering from the parse tree to the canonical stencil IR
    (the paper's Section 3.2 preprocessing, pet's role in the original
    toolchain).

    Checks and canonicalizations performed:
    - the outer loop is the time loop, starting at 0;
    - its body is a sequence of perfect spatial loop nests ending in one
      assignment each;
    - loop bounds are affine in the program parameters;
    - array indices are [iterator + constant], except a leading
      [(t + c) %% m] on arrays declared with a constant first extent [m],
      which is recognised as double/multi-buffering and becomes a folded
      array with time offset [c];
    - every array is declared, arities match, each array has at most one
      writing statement. *)

exception Error of Lexer.pos * string

val program : name:string -> Ast.program -> Hextile_ir.Stencil.t
