(** One-call frontend: C-subset source text to canonical stencil IR. *)

val parse_string : name:string -> string -> (Hextile_ir.Stencil.t, string) result
(** Parse and lower; errors are rendered as ["line L, col C: message"]. *)

val parse_file : string -> (Hextile_ir.Stencil.t, string) result
(** Program name is the file's basename without extension. *)
