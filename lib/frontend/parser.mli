(** Recursive-descent parser for the stencil C subset (menhir is
    deliberately not used — the grammar is small and LL(1)-friendly).

    Accepted form: optional [float A[e]...[e];] declarations followed by a
    single outer time loop whose body is one or more perfect spatial loop
    nests ending in array assignments, as in the paper's Figure 1. *)

exception Error of Lexer.pos * string

val program : string -> Ast.program
(** Parse a full source string. Raises [Error] (or [Lexer.Error]) with a
    position on malformed input. *)

val iexpr_of_string : string -> Ast.iexpr
(** Parse a single index expression — used by tests. *)
