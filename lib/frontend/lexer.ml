type pos = { line : int; col : int }

type token =
  | Ident of string
  | Int of int
  | Float of float
  | Kw_for
  | Kw_float
  | LParen
  | RParen
  | LBrace
  | RBrace
  | LBracket
  | RBracket
  | Semi
  | Comma
  | Assign
  | Plus
  | Minus
  | Star
  | Slash
  | Percent
  | Lt
  | Le
  | PlusPlus
  | PlusAssign
  | Eof

exception Error of pos * string

type t = {
  src : string;
  mutable off : int;
  mutable line : int;
  mutable bol : int;  (** offset of beginning of current line *)
  mutable tok : token;
  mutable tok_pos : pos;
}

let cur_pos t = { line = t.line; col = t.off - t.bol + 1 }

let is_id_start c = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || c = '_'
let is_id c = is_id_start c || (c >= '0' && c <= '9')
let is_digit c = c >= '0' && c <= '9'

let rec skip_ws t =
  let n = String.length t.src in
  if t.off < n then
    match t.src.[t.off] with
    | ' ' | '\t' | '\r' ->
        t.off <- t.off + 1;
        skip_ws t
    | '\n' ->
        t.off <- t.off + 1;
        t.line <- t.line + 1;
        t.bol <- t.off;
        skip_ws t
    | '#' ->
        (* preprocessor line: skip to end of line *)
        while t.off < n && t.src.[t.off] <> '\n' do
          t.off <- t.off + 1
        done;
        skip_ws t
    | '/' when t.off + 1 < n && t.src.[t.off + 1] = '/' ->
        while t.off < n && t.src.[t.off] <> '\n' do
          t.off <- t.off + 1
        done;
        skip_ws t
    | '/' when t.off + 1 < n && t.src.[t.off + 1] = '*' ->
        let p = cur_pos t in
        t.off <- t.off + 2;
        let rec close () =
          if t.off + 1 >= n then raise (Error (p, "unterminated comment"))
          else if t.src.[t.off] = '*' && t.src.[t.off + 1] = '/' then t.off <- t.off + 2
          else begin
            if t.src.[t.off] = '\n' then begin
              t.line <- t.line + 1;
              t.bol <- t.off + 1
            end;
            t.off <- t.off + 1;
            close ()
          end
        in
        close ();
        skip_ws t
    | _ -> ()

let scan t =
  skip_ws t;
  t.tok_pos <- cur_pos t;
  let n = String.length t.src in
  if t.off >= n then Eof
  else
    let c = t.src.[t.off] in
    let adv k tok =
      t.off <- t.off + k;
      tok
    in
    if is_id_start c then begin
      let start = t.off in
      while t.off < n && is_id t.src.[t.off] do
        t.off <- t.off + 1
      done;
      match String.sub t.src start (t.off - start) with
      | "for" -> Kw_for
      | "float" -> Kw_float
      | id -> Ident id
    end
    else if is_digit c then begin
      let start = t.off in
      while t.off < n && is_digit t.src.[t.off] do
        t.off <- t.off + 1
      done;
      if t.off < n && (t.src.[t.off] = '.' || t.src.[t.off] = 'e') then begin
        if t.src.[t.off] = '.' then begin
          t.off <- t.off + 1;
          while t.off < n && is_digit t.src.[t.off] do
            t.off <- t.off + 1
          done
        end;
        if t.off < n && (t.src.[t.off] = 'e' || t.src.[t.off] = 'E') then begin
          t.off <- t.off + 1;
          if t.off < n && (t.src.[t.off] = '+' || t.src.[t.off] = '-') then
            t.off <- t.off + 1;
          while t.off < n && is_digit t.src.[t.off] do
            t.off <- t.off + 1
          done
        end;
        let s = String.sub t.src start (t.off - start) in
        if t.off < n && (t.src.[t.off] = 'f' || t.src.[t.off] = 'F') then
          t.off <- t.off + 1;
        Float (float_of_string s)
      end
      else begin
        let s = String.sub t.src start (t.off - start) in
        if t.off < n && (t.src.[t.off] = 'f' || t.src.[t.off] = 'F') then begin
          t.off <- t.off + 1;
          Float (float_of_string s)
        end
        else Int (int_of_string s)
      end
    end
    else
      match c with
      | '(' -> adv 1 LParen
      | ')' -> adv 1 RParen
      | '{' -> adv 1 LBrace
      | '}' -> adv 1 RBrace
      | '[' -> adv 1 LBracket
      | ']' -> adv 1 RBracket
      | ';' -> adv 1 Semi
      | ',' -> adv 1 Comma
      | '*' -> adv 1 Star
      | '/' -> adv 1 Slash
      | '%' -> adv 1 Percent
      | '=' -> adv 1 Assign
      | '+' ->
          if t.off + 1 < n && t.src.[t.off + 1] = '+' then adv 2 PlusPlus
          else if t.off + 1 < n && t.src.[t.off + 1] = '=' then adv 2 PlusAssign
          else adv 1 Plus
      | '-' -> adv 1 Minus
      | '<' -> if t.off + 1 < n && t.src.[t.off + 1] = '=' then adv 2 Le else adv 1 Lt
      | c -> raise (Error (cur_pos t, Fmt.str "unexpected character %C" c))

let of_string src =
  let t = { src; off = 0; line = 1; bol = 0; tok = Eof; tok_pos = { line = 1; col = 1 } } in
  t.tok <- scan t;
  t

let peek t = t.tok
let pos t = t.tok_pos

let next t =
  let tok = t.tok in
  t.tok <- scan t;
  tok

let pp_token ppf = function
  | Ident s -> Fmt.pf ppf "identifier %S" s
  | Int n -> Fmt.pf ppf "integer %d" n
  | Float f -> Fmt.pf ppf "float %g" f
  | Kw_for -> Fmt.string ppf "'for'"
  | Kw_float -> Fmt.string ppf "'float'"
  | LParen -> Fmt.string ppf "'('"
  | RParen -> Fmt.string ppf "')'"
  | LBrace -> Fmt.string ppf "'{'"
  | RBrace -> Fmt.string ppf "'}'"
  | LBracket -> Fmt.string ppf "'['"
  | RBracket -> Fmt.string ppf "']'"
  | Semi -> Fmt.string ppf "';'"
  | Comma -> Fmt.string ppf "','"
  | Assign -> Fmt.string ppf "'='"
  | Plus -> Fmt.string ppf "'+'"
  | Minus -> Fmt.string ppf "'-'"
  | Star -> Fmt.string ppf "'*'"
  | Slash -> Fmt.string ppf "'/'"
  | Percent -> Fmt.string ppf "'%'"
  | Lt -> Fmt.string ppf "'<'"
  | Le -> Fmt.string ppf "'<='"
  | PlusPlus -> Fmt.string ppf "'++'"
  | PlusAssign -> Fmt.string ppf "'+='"
  | Eof -> Fmt.string ppf "end of input"
