open Ast
open Hextile_ir

exception Error of Lexer.pos * string

let fail pos fmt = Fmt.kstr (fun m -> raise (Error (pos, m))) fmt

(* ---- linear forms ---------------------------------------------------- *)

type lin = { lconst : int; lterms : (string * int) list }

let lin_const c = { lconst = c; lterms = [] }

let lin_add a b =
  let terms =
    List.fold_left
      (fun acc (v, c) ->
        match List.assoc_opt v acc with
        | None -> (v, c) :: acc
        | Some c0 -> (v, c0 + c) :: List.remove_assoc v acc)
      a.lterms b.lterms
  in
  {
    lconst = a.lconst + b.lconst;
    lterms = List.filter (fun (_, c) -> c <> 0) terms;
  }

let lin_scale k a =
  { lconst = k * a.lconst; lterms = List.filter_map (fun (v, c) -> if k * c = 0 then None else Some (v, k * c)) a.lterms }

(* Linearize an index expression with no modulo. *)
let rec linearize pos (e : iexpr) : lin =
  match e with
  | IConst n -> lin_const n
  | IVar v -> { lconst = 0; lterms = [ (v, 1) ] }
  | IAdd (a, b) -> lin_add (linearize pos a) (linearize pos b)
  | ISub (a, b) -> lin_add (linearize pos a) (lin_scale (-1) (linearize pos b))
  | INeg a -> lin_scale (-1) (linearize pos a)
  | IMul (a, b) -> (
      let la = linearize pos a and lb = linearize pos b in
      match (la.lterms, lb.lterms) with
      | [], _ -> lin_scale la.lconst lb
      | _, [] -> lin_scale lb.lconst la
      | _ -> fail pos "non-affine product in index expression")
  | IMod _ ->
      fail pos "modulo is only supported on the buffering index, as in A[(t+1)%%2]"

let coeff lin v = Option.value ~default:0 (List.assoc_opt v lin.lterms)

(* Convert a linear form over parameters only into an Affp. *)
let affp_of pos ~iters lin =
  List.iter
    (fun (v, _) ->
      if List.mem v iters then
        fail pos "loop bound or array extent mentions iterator %s" v)
    lin.lterms;
  List.fold_left
    (fun acc (v, c) -> Affp.add acc (Affp.scale c (Affp.param v)))
    (Affp.const lin.lconst) lin.lterms

(* ---- nest collection -------------------------------------------------- *)

(* Collect the perfect spatial nest under a time-loop item. *)
let rec collect_nest item =
  match item with
  | Assign a -> ([], a)
  | For f -> (
      match f.body with
      | [ inner ] ->
          let loops, a = collect_nest inner in
          (f :: loops, a)
      | [] -> fail f.pos "empty loop body"
      | _ ->
          fail f.pos
            "imperfect loop nest: a spatial loop must contain exactly one \
             statement or loop")

(* ---- index analysis --------------------------------------------------- *)

type idx_kind =
  | Fold of int * int  (** modulus, time offset *)
  | Spatial of int * int  (** iterator position (0-based among spatial), offset *)

let analyze_index pos ~tvar ~spatial (e : iexpr) =
  match e with
  | IMod (inner, m) -> (
      let m =
        match linearize pos m with
        | { lconst = m; lterms = [] } when m > 0 -> m
        | _ -> fail pos "modulus must be a positive constant"
      in
      let lin = linearize pos inner in
      match (coeff lin tvar, lin.lterms) with
      | 1, [ _ ] when List.for_all (fun (v, _) -> String.equal v tvar) lin.lterms ->
          Fold (m, lin.lconst)
      | _ -> fail pos "buffering index must have the form (%s + c) %%%% m" tvar)
  | _ -> (
      let lin = linearize pos e in
      match lin.lterms with
      | [ (v, 1) ] -> (
          match List.find_index (String.equal v) spatial with
          | Some d -> Spatial (d, lin.lconst)
          | None ->
              if String.equal v tvar then
                fail pos
                  "time-dependent index without buffering modulo; write \
                   %s[(%s + c) %%%% m][...]"
                  v tvar
              else fail pos "index uses %s, which is not a surrounding iterator" v)
      | [] -> fail pos "constant array index %d not supported (no iterator)" lin.lconst
      | _ -> fail pos "array index must be iterator + constant")

let find_decl decls pos name =
  match List.find_opt (fun d -> String.equal d.dname name) decls with
  | Some d -> d
  | None -> fail pos "array %s is not declared (add: float %s[...];)" name name

let analyze_access decls ~tvar ~spatial pos array indices =
  let decl = find_decl decls pos array in
  let kinds = List.map (analyze_index pos ~tvar ~spatial) indices in
  let folded, spatials =
    match kinds with
    | Fold (m, c) :: rest -> (Some (m, c), rest)
    | rest -> (None, rest)
  in
  List.iter
    (function
      | Fold _ -> fail pos "only the first index of %s may be a buffering index" array
      | Spatial _ -> ())
    spatials;
  if List.length indices <> List.length decl.dims then
    fail pos "array %s declared with %d dimensions but accessed with %d" array
      (List.length decl.dims) (List.length indices);
  let n = List.length spatial in
  let offsets = Array.make n 0 in
  let seen = Array.make n false in
  List.iteri
    (fun j k ->
      match k with
      | Spatial (d, off) ->
          if d <> j - (match folded with Some _ -> 1 | None -> 0) then
            fail pos
              "index %d of %s must use spatial iterator %d in nest order" j array j;
          if seen.(d) then fail pos "iterator used twice in access to %s" array;
          seen.(d) <- true;
          offsets.(d) <- off
      | Fold _ -> ())
    kinds;
  if Array.exists not seen then
    fail pos "access to %s must use every surrounding spatial iterator" array;
  (folded, { Stencil.array; time_off = (match folded with Some (_, c) -> c | None -> 0); offsets })

(* ---- program ---------------------------------------------------------- *)

let program ~name (ast : Ast.program) =
  let loop = ast.loop in
  let tvar = loop.var in
  (match linearize loop.pos loop.lo with
  | { lconst = 0; lterms = [] } -> ()
  | _ -> fail loop.pos "the time loop must start at 0");
  let steps_lin =
    match loop.hi with
    | Lt e -> linearize loop.pos e
    | Le e -> lin_add (linearize loop.pos e) (lin_const 1)
  in
  (* fold info per array, discovered from accesses *)
  let folds : (string, int) Hashtbl.t = Hashtbl.create 4 in
  let note_fold pos array = function
    | Some (m, _) -> (
        match Hashtbl.find_opt folds array with
        | None -> Hashtbl.replace folds array m
        | Some m0 when m0 = m -> ()
        | Some m0 -> fail pos "array %s buffered with both %%%d and %%%d" array m0 m)
    | None ->
        if Hashtbl.mem folds array then
          fail pos "array %s accessed both with and without a buffering index" array
  in
  let items = loop.body in
  if items = [] then fail loop.pos "time loop has an empty body";
  let stmts =
    List.mapi
      (fun i item ->
        let loops, assign =
          match item with
          | For f -> collect_nest (For f)
          | Assign a -> fail a.apos "statement outside spatial loops"
        in
        let apos = assign.apos in
        let spatial = List.map (fun f -> f.var) loops in
        (if List.exists (String.equal tvar) spatial then
           fail apos "iterator %s reused inside the time loop" tvar);
        let uniq = List.sort_uniq String.compare spatial in
        if List.length uniq <> List.length spatial then
          fail apos "duplicate spatial iterator in nest";
        let iters = tvar :: spatial in
        let lo =
          Array.of_list
            (List.map (fun f -> affp_of f.pos ~iters (linearize f.pos f.lo)) loops)
        in
        let hi =
          Array.of_list
            (List.map
               (fun f ->
                 match f.hi with
                 | Lt e -> Affp.add_const (affp_of f.pos ~iters (linearize f.pos e)) (-1)
                 | Le e -> affp_of f.pos ~iters (linearize f.pos e))
               loops)
        in
        let wfold, write =
          analyze_access ast.decls ~tvar ~spatial apos assign.array assign.indices
        in
        note_fold apos assign.array wfold;
        let rec lower_f (e : Ast.fexpr) =
          match e with
          | FConst f -> Stencil.Fconst f
          | FNeg e -> Stencil.Neg (lower_f e)
          | FBin (op, l, r) -> Stencil.Bin (op, lower_f l, lower_f r)
          | FRef (arr, idx, rpos) ->
              let rfold, acc = analyze_access ast.decls ~tvar ~spatial rpos arr idx in
              note_fold rpos arr rfold;
              Stencil.Read acc
        in
        let rhs = lower_f assign.rhs in
        { Stencil.sname = Fmt.str "S%d" i; lo; hi; write; rhs })
      items
  in
  (* array declarations *)
  let arrays =
    List.map
      (fun d ->
        let fold = Hashtbl.find_opt folds d.dname in
        let dims =
          match fold with
          | Some m -> (
              match d.dims with
              | first :: rest ->
                  (match linearize d.dpos first with
                  | { lconst = m0; lterms = [] } when m0 >= m -> ()
                  | { lconst = m0; lterms = [] } ->
                      fail d.dpos "array %s declared with %d buffers but used with %%%d"
                        d.dname m0 m
                  | _ -> fail d.dpos "buffer count of %s must be a constant" d.dname);
                  rest
              | [] -> fail d.dpos "array %s needs a buffer dimension" d.dname)
          | None -> d.dims
        in
        {
          Stencil.aname = d.dname;
          extents =
            Array.of_list
              (List.map (fun e -> affp_of d.dpos ~iters:[] (linearize d.dpos e)) dims);
          fold;
        })
      ast.decls
  in
  let steps = affp_of loop.pos ~iters:[ tvar ] steps_lin in
  (* parameters: everything mentioned in bounds, extents and steps *)
  let params =
    let tbl = Hashtbl.create 4 in
    let note a = List.iter (fun p -> Hashtbl.replace tbl p ()) (Affp.params a) in
    note steps;
    List.iter (fun (a : Stencil.array_decl) -> Array.iter note a.extents) arrays;
    List.iter
      (fun (s : Stencil.stmt) ->
        Array.iter note s.lo;
        Array.iter note s.hi)
      stmts;
    List.sort String.compare (Hashtbl.fold (fun p () acc -> p :: acc) tbl [])
  in
  let prog = { Stencil.name; params; steps; arrays; stmts } in
  match Stencil.validate prog with
  | Ok () -> prog
  | Error m -> fail loop.pos "%s" m
