(** Parse tree of the stencil C subset. *)

type pos = Lexer.pos

(** Integer (index / bound) expressions. *)
type iexpr =
  | IVar of string
  | IConst of int
  | IAdd of iexpr * iexpr
  | ISub of iexpr * iexpr
  | IMul of iexpr * iexpr
  | IMod of iexpr * iexpr
  | INeg of iexpr

(** Floating-point (right-hand side) expressions. *)
type fexpr =
  | FRef of string * iexpr list * pos
  | FConst of float
  | FBin of Hextile_ir.Stencil.binop * fexpr * fexpr
  | FNeg of fexpr

type bound = Lt of iexpr | Le of iexpr

type assign = { array : string; indices : iexpr list; rhs : fexpr; apos : pos }

type item = For of floop | Assign of assign

and floop = { var : string; lo : iexpr; hi : bound; body : item list; pos : pos }

type decl = { dname : string; dims : iexpr list; dpos : pos }

type program = { decls : decl list; loop : floop }

let rec pp_iexpr ppf = function
  | IVar v -> Fmt.string ppf v
  | IConst n -> Fmt.int ppf n
  | IAdd (a, b) -> Fmt.pf ppf "(%a + %a)" pp_iexpr a pp_iexpr b
  | ISub (a, b) -> Fmt.pf ppf "(%a - %a)" pp_iexpr a pp_iexpr b
  | IMul (a, b) -> Fmt.pf ppf "(%a * %a)" pp_iexpr a pp_iexpr b
  | IMod (a, b) -> Fmt.pf ppf "(%a %% %a)" pp_iexpr a pp_iexpr b
  | INeg a -> Fmt.pf ppf "(-%a)" pp_iexpr a
