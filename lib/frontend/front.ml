let render (pos : Lexer.pos) msg = Fmt.str "line %d, col %d: %s" pos.line pos.col msg

let parse_string ~name src =
  match Lower.program ~name (Parser.program src) with
  | prog -> Ok prog
  | exception Lexer.Error (pos, m) -> Error (render pos m)
  | exception Parser.Error (pos, m) -> Error (render pos m)
  | exception Lower.Error (pos, m) -> Error (render pos m)

let parse_file path =
  let name = Filename.remove_extension (Filename.basename path) in
  match In_channel.with_open_text path In_channel.input_all with
  | src -> parse_string ~name src
  | exception Sys_error m -> Error m
