(** End-to-end tracing and profiling.

    A process-global registry of hierarchical {e spans} (timed regions of
    the compiler/simulator pipeline), monotonic {e counters} (LP solves,
    Fourier–Motzkin eliminations, enumerated points, …), key/value
    {e annotations} on the current span and timestamped {e events}
    (nvprof-style per-kernel-launch timeline entries).

    The registry is disabled by default: every hook added to the
    libraries compiles down to one load + branch, so instrumented code
    pays essentially nothing unless a driver opted in with {!enable}.

    {b Domain safety.} Every domain records into its own registry: the
    main domain into the process registry, pool workers into detached
    {e forks} installed by {!fork_begin} and merged back (in a
    deterministic caller-chosen order) with {!absorb} — this is how
    [Hextile_par.Par] makes counter totals independent of the number of
    domains. {!enable}/{!disable}/{!reset} are main-domain operations and
    must not be called while a parallel region is running. *)

type value = Bool of bool | Int of int | Float of float | Str of string

(** {2 Global switch} *)

val enabled : unit -> bool
val enable : unit -> unit
val disable : unit -> unit

val reset : unit -> unit
(** Drop all recorded spans, events and counters (keeps the
    enabled/disabled state). *)

(** {2 Spans} *)

val start : string -> unit
(** Open a span as a child of the innermost open span. No-op when
    disabled. *)

val stop : string -> unit
(** Close the innermost open span. The name must match the innermost
    {!start} (spans close in LIFO order); raises [Invalid_argument] on a
    mismatch or when no span is open. No-op when disabled. *)

val span : string -> (unit -> 'a) -> 'a
(** [span name f] runs [f ()] inside a span; the span is closed even when
    [f] raises. Equivalent to [f ()] when disabled. *)

val annot : string -> value -> unit
(** Attach a key/value annotation to the innermost open span (to the
    trace root when none is open). Re-annotating a key overwrites. *)

val event : string -> (string * value) list -> unit
(** Record a timestamped event under the innermost open span (or the
    trace root). Events are kept in order. *)

(** {2 Counters} *)

val incr : ?by:int -> string -> unit
(** Bump a global monotonic counter (creating it at 0). Accumulation is
    plain addition, matching [Counters.add]/[diff] semantics. No-op when
    disabled. *)

val counter : string -> int
(** Current value ([0] if never bumped). Readable even while disabled. *)

val counters : unit -> (string * int) list
(** All counters, sorted by name. *)

(** {2 Domain-local forks}

    Used by the parallel runtime: a pool task calls {!fork_begin} before
    running user code on its domain and hands the detached buffer from
    {!fork_end} back to the region's caller, which {!absorb}s the forks
    in task order. Spans/events/annotations land under the caller's
    innermost open span; counter deltas are added — so totals are
    bit-identical to the sequential run. *)

type fork
(** A detached per-task registry (spans, events, counters). *)

val fork_begin : unit -> unit
(** Install a fresh fork as the current domain's registry. Subsequent
    {!start}/{!incr}/… on this domain record into the fork. *)

val fork_end : unit -> fork
(** Detach and return the current domain's fork, restoring the domain to
    the process registry. Raises [Invalid_argument] if no fork is
    active. *)

val absorb : fork -> unit
(** Merge a fork into the current registry: its top-level spans and
    events become children/events of the innermost open span (appended
    after existing entries), its annotations are applied in order, and
    its counters are added. *)

(** {2 Inspection} *)

type span_tree = {
  sname : string;
  start_s : float;  (** seconds since the trace epoch *)
  dur_s : float;  (** -1.0 while still open *)
  attrs : (string * value) list;
  events : (string * float * (string * value) list) list;
      (** (name, time since epoch, attrs) *)
  children : span_tree list;
}

val roots : unit -> span_tree list
(** Completed and still-open top-level spans, in start order. *)

val open_spans : unit -> string list
(** Names of currently open spans, innermost first. *)

(** {2 Sinks} *)

val to_json : unit -> Json.t
(** The whole registry as one JSON document: [{"counters": {...},
    "spans": [...], "events": [...]}]. Span entries carry name, start,
    duration, attrs, events and children. *)

val pp_text : Format.formatter -> unit -> unit
(** Human-readable report: span tree with durations, then counters. *)

val write_json : string -> unit
(** [write_json path] writes {!to_json} (pretty-printed, trailing
    newline) to [path]. *)
