(** A minimal self-contained JSON document type with a printer and a
    strict parser — enough for trace/report files without pulling in an
    external dependency. *)

type t =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | Str of string
  | List of t list
  | Obj of (string * t) list

val to_string : ?minify:bool -> t -> string
(** Serialize. Non-finite floats (nan, ±inf) are emitted as [null] so the
    output is always valid JSON. Pretty-printed with 2-space indentation
    unless [minify] is set. *)

val pp : t Fmt.t
(** [pp] prints {!to_string} output. *)

val parse : string -> (t, string) result
(** Strict recursive-descent parser for the grammar emitted by
    {!to_string} (standard JSON). Numbers without [.], [e] or [E] that
    fit in an OCaml [int] parse as [Int], everything else as [Float].
    Errors carry a byte offset. *)

(** {2 Accessors} (total: return [None] on shape mismatch) *)

val member : string -> t -> t option
(** Field lookup in an [Obj]. *)

val to_list : t -> t list option
val to_int : t -> int option
val to_float : t -> float option
(** [to_float] also accepts [Int]. *)

val to_str : t -> string option
