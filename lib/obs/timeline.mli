(** Wall-clock per-domain timeline recorder with Chrome trace export.

    Deliberately separate from the deterministic {!Obs} registry: Obs
    spans and counters must stay bit-identical at every [--jobs]
    value, while timelines record wall-clock begin/end slices, instant
    events, and flow arrows whose contents differ run to run. Nothing
    here feeds back into Obs, so enabling recording never perturbs a
    deterministic output.

    Cost model: every record call is a single [!on] test when
    disabled. When enabled, each domain lazily owns one fixed-capacity
    track (flat arrays written lock-free by that domain only), and
    recording an event is a handful of array stores with no buffer
    allocation. A full track drops newest events and counts the drops,
    keeping the recorded prefix well-formed. *)

val enabled : unit -> bool

val enable : ?capacity:int -> unit -> unit
(** Start recording: resets all tracks, stamps a fresh epoch, and sets
    the per-track event capacity (default 2^18). *)

val disable : unit -> unit
val reset : unit -> unit

val label : string -> unit
(** Name the calling domain's track (e.g. ["worker-2"]); shows up as
    the Perfetto thread name. Unlabelled domains render as ["main"] or
    ["domain-N"]. Effective for both the current track and any track
    the domain creates after a later {!reset}. *)

(* ---- recording ---------------------------------------------------------- *)

val begin_ : ?arg:float -> string -> unit
(** Open a slice on the calling domain's track. [arg] is an optional
    numeric payload shown in the trace viewer. *)

val end_ : unit -> unit
(** Close the innermost open slice; also feeds its duration into the
    per-name latency histogram. Safe no-op with no slice open. *)

val slice : ?arg:float -> string -> (unit -> 'a) -> 'a
(** [slice name f] = [begin_ name; f (); end_ ()], exception-safe. *)

val instant : ?arg:float -> string -> unit
(** Zero-duration marker (Perfetto "instant" arrowhead). *)

val flow_id : unit -> int
(** Fresh process-wide flow id, for pairing {!flow_s} / {!flow_f}. *)

val flow_s : int -> unit
(** Flow start: draws an arrow from here (e.g. task submission)... *)

val flow_f : int -> unit
(** ...to the matching flow finish (e.g. task execution start). *)

val dropped : unit -> int
(** Events discarded because a track filled. *)

(* ---- aggregation -------------------------------------------------------- *)

type slice_tot = {
  sl_name : string;
  sl_count : int;
  sl_incl_s : float;  (** wall time inside slices of this name *)
  sl_excl_s : float;  (** inclusive minus time in child slices *)
  sl_arg : float;  (** sum of begin/instant args of this name *)
}

type track_tot = {
  tk_tid : int;  (** domain id *)
  tk_name : string;
  tk_busy_s : float;  (** covered by top-level slices *)
  tk_events : int;
  tk_dropped : int;
  tk_slices : slice_tot list;  (** sorted by exclusive time, descending *)
}

type summary = {
  su_tracks : track_tot list;  (** sorted by domain id *)
  su_slowest : (string * string * float * float) list;
      (** top slices as (name, track, start since epoch in s, duration
          in s), longest first *)
  su_hist : (string * Hist.t) list;  (** merged across tracks, by name *)
  su_dropped : int;
  su_span_s : float;  (** last recorded timestamp minus epoch *)
}

val summary : unit -> summary
(** Aggregate all tracks. Slices left open (e.g. a worker parked in
    its idle wait) are closed at the last timestamp seen on their
    track. *)

val excl_s : summary -> string -> float
(** Exclusive seconds for a slice name, summed over all tracks. *)

val incl_s : summary -> string -> float
val arg_sum : summary -> string -> float

val pp_summary : Format.formatter -> unit -> unit
(** Per-track busy time and slice breakdown, top slowest slices, and
    latency histograms. *)

(* ---- export ------------------------------------------------------------- *)

val write_chrome : string -> unit
(** Write all tracks as a Chrome trace-event JSON file ("JSON Array
    Format"): open it in {{:https://ui.perfetto.dev}Perfetto} or
    chrome://tracing. One process, one named thread track per domain,
    timestamps in microseconds since the recorder epoch. *)

val write_chrome_channel : Out_channel.t -> unit
