(* Latency histogram over power-of-two nanosecond buckets.

   [add] is allocation-free (three field writes and one array bump), so
   the timeline recorder can feed it from every closed slice without
   perturbing what it measures. Quantiles are bucket-resolution
   estimates: within the winning bucket the value is interpolated
   linearly, which is exact enough for a 2x-wide bucket report. *)

type t = {
  mutable n : int;
  mutable sum_s : float;
  mutable min_s : float;
  mutable max_s : float;
  buckets : int array;  (** bucket [i] counts durations in [2^i, 2^(i+1)) ns *)
}

let nbuckets = 64

let create () =
  { n = 0; sum_s = 0.0; min_s = infinity; max_s = neg_infinity; buckets = Array.make nbuckets 0 }

let bucket_of_s dur_s =
  let ns = dur_s *. 1e9 in
  if not (ns > 1.0) then 0
  else
    (* frexp: ns = m * 2^e with m in [0.5, 1), so e-1 is floor(log2 ns) *)
    let _, e = Float.frexp ns in
    min (nbuckets - 1) (max 0 (e - 1))

let add h dur_s =
  h.n <- h.n + 1;
  h.sum_s <- h.sum_s +. dur_s;
  if dur_s < h.min_s then h.min_s <- dur_s;
  if dur_s > h.max_s then h.max_s <- dur_s;
  let b = h.buckets.(bucket_of_s dur_s) in
  ignore b;
  h.buckets.(bucket_of_s dur_s) <- h.buckets.(bucket_of_s dur_s) + 1

let count h = h.n
let sum_s h = h.sum_s
let mean_s h = if h.n = 0 then 0.0 else h.sum_s /. float_of_int h.n
let max_s h = if h.n = 0 then 0.0 else h.max_s
let min_s h = if h.n = 0 then 0.0 else h.min_s

let merge dst src =
  dst.n <- dst.n + src.n;
  dst.sum_s <- dst.sum_s +. src.sum_s;
  if src.n > 0 then begin
    if src.min_s < dst.min_s then dst.min_s <- src.min_s;
    if src.max_s > dst.max_s then dst.max_s <- src.max_s
  end;
  Array.iteri (fun i c -> dst.buckets.(i) <- dst.buckets.(i) + c) src.buckets

let quantile h q =
  if h.n = 0 then 0.0
  else begin
    let q = Float.min 1.0 (Float.max 0.0 q) in
    let rank = q *. float_of_int h.n in
    let seen = ref 0.0 and res = ref h.max_s in
    (try
       for i = 0 to nbuckets - 1 do
         let c = float_of_int h.buckets.(i) in
         if c > 0.0 then begin
           if !seen +. c >= rank then begin
             (* interpolate inside the [2^i, 2^(i+1)) ns bucket *)
             let lo = Float.ldexp 1.0 i *. 1e-9 in
             let frac = if c = 0.0 then 0.0 else (rank -. !seen) /. c in
             res := lo *. (1.0 +. frac);
             raise Exit
           end;
           seen := !seen +. c
         end
       done
     with Exit -> ());
    Float.min !res h.max_s |> Float.max h.min_s
  end

let pp ppf h =
  if h.n = 0 then Fmt.pf ppf "(empty)"
  else
    Fmt.pf ppf "n=%d mean=%.3fms p50=%.3fms p90=%.3fms p99=%.3fms max=%.3fms"
      h.n (1e3 *. mean_s h)
      (1e3 *. quantile h 0.5)
      (1e3 *. quantile h 0.9)
      (1e3 *. quantile h 0.99)
      (1e3 *. max_s h)

let to_json h =
  Json.Obj
    [
      ("count", Json.Int h.n);
      ("sum_s", Json.Float h.sum_s);
      ("mean_s", Json.Float (mean_s h));
      ("min_s", Json.Float (min_s h));
      ("max_s", Json.Float (max_s h));
      ("p50_s", Json.Float (quantile h 0.5));
      ("p90_s", Json.Float (quantile h 0.9));
      ("p99_s", Json.Float (quantile h 0.99));
    ]
