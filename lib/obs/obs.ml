type value = Bool of bool | Int of int | Float of float | Str of string

type node = {
  name : string;
  nstart : float;  (** absolute, Unix.gettimeofday *)
  mutable ndur : float;  (** -1.0 while open *)
  mutable nattrs : (string * value) list;  (** reversed *)
  mutable nevents : evt list;  (** reversed *)
  mutable nchildren : node list;  (** reversed *)
}

and evt = { ename : string; etime : float; eattrs : (string * value) list }

let now () = Unix.gettimeofday ()

let fresh_root () =
  {
    name = "<root>";
    nstart = now ();
    ndur = -1.0;
    nattrs = [];
    nevents = [];
    nchildren = [];
  }

(* One registry per domain: the process registry serves the main domain;
   pool workers (and the caller while it executes a region task) write
   into a detached fork installed via domain-local storage, which the
   region absorbs at join ({!fork_begin} / {!absorb}). *)
type reg = {
  mutable root : node;
  mutable stack : node list;
  tally : (string, int ref) Hashtbl.t;
}

let fresh_reg () = { root = fresh_root (); stack = []; tally = Hashtbl.create 32 }
let main_reg = fresh_reg ()
let local : reg option Domain.DLS.key = Domain.DLS.new_key (fun () -> None)
let cur () = match Domain.DLS.get local with Some r -> r | None -> main_reg
let on = ref false

let enabled () = !on
let enable () = on := true
let disable () = on := false

let reset () =
  let r = cur () in
  r.root <- fresh_root ();
  r.stack <- [];
  Hashtbl.reset r.tally

let top r = match r.stack with n :: _ -> n | [] -> r.root

let start name =
  if !on then begin
    let n =
      {
        name;
        nstart = now ();
        ndur = -1.0;
        nattrs = [];
        nevents = [];
        nchildren = [];
      }
    in
    let r = cur () in
    let parent = top r in
    parent.nchildren <- n :: parent.nchildren;
    r.stack <- n :: r.stack
  end

let stop name =
  if !on then
    let r = cur () in
    match r.stack with
    | [] -> invalid_arg (Fmt.str "Obs.stop %s: no span is open" name)
    | n :: rest ->
        if not (String.equal n.name name) then
          invalid_arg
            (Fmt.str "Obs.stop %s: innermost open span is %s (LIFO order)" name
               n.name);
        n.ndur <- now () -. n.nstart;
        r.stack <- rest

let span name f =
  if not !on then f ()
  else begin
    start name;
    Fun.protect ~finally:(fun () -> stop name) f
  end

let annot key v =
  if !on then begin
    let n = top (cur ()) in
    n.nattrs <- (key, v) :: List.remove_assoc key n.nattrs
  end

let event name attrs =
  if !on then begin
    let n = top (cur ()) in
    n.nevents <- { ename = name; etime = now (); eattrs = attrs } :: n.nevents
  end

let incr ?(by = 1) name =
  if !on then
    let tally = (cur ()).tally in
    match Hashtbl.find_opt tally name with
    | Some r -> r := !r + by
    | None -> Hashtbl.replace tally name (ref by)

let counter name =
  match Hashtbl.find_opt (cur ()).tally name with Some r -> !r | None -> 0

let counters () =
  Hashtbl.fold (fun k r acc -> (k, !r) :: acc) (cur ()).tally []
  |> List.sort (fun (a, _) (b, _) -> String.compare a b)

(* ---- domain-local forks ------------------------------------------------- *)

type fork = reg

let fork_begin () = Domain.DLS.set local (Some (fresh_reg ()))

let fork_end () =
  match Domain.DLS.get local with
  | Some r ->
      Domain.DLS.set local None;
      r
  | None -> invalid_arg "Obs.fork_end: no fork is active on this domain"

let absorb (f : fork) =
  let r = cur () in
  let parent = top r in
  (* both child lists are newest-first, so plain concatenation keeps the
     fork's entries ordered after the parent's existing ones *)
  parent.nchildren <- f.root.nchildren @ parent.nchildren;
  parent.nevents <- f.root.nevents @ parent.nevents;
  List.iter
    (fun (k, v) -> parent.nattrs <- (k, v) :: List.remove_assoc k parent.nattrs)
    (List.rev f.root.nattrs);
  Hashtbl.iter
    (fun k v ->
      match Hashtbl.find_opt r.tally k with
      | Some dst -> dst := !dst + !v
      | None -> Hashtbl.replace r.tally k (ref !v))
    f.tally

(* ---- inspection -------------------------------------------------------- *)

type span_tree = {
  sname : string;
  start_s : float;
  dur_s : float;
  attrs : (string * value) list;
  events : (string * float * (string * value) list) list;
  children : span_tree list;
}

let rec tree_of epoch (n : node) =
  {
    sname = n.name;
    start_s = n.nstart -. epoch;
    dur_s = n.ndur;
    attrs = List.rev n.nattrs;
    events =
      List.rev_map (fun e -> (e.ename, e.etime -. epoch, e.eattrs)) n.nevents;
    children = List.rev_map (tree_of epoch) n.nchildren;
  }

let roots () =
  let r = (cur ()).root in
  List.rev_map (tree_of r.nstart) r.nchildren

let open_spans () = List.map (fun n -> n.name) (cur ()).stack

(* ---- sinks ------------------------------------------------------------- *)

let json_of_value = function
  | Bool b -> Json.Bool b
  | Int i -> Json.Int i
  | Float f -> Json.Float f
  | Str s -> Json.Str s

let json_of_attrs attrs =
  Json.Obj (List.map (fun (k, v) -> (k, json_of_value v)) attrs)

let json_of_event (name, t, attrs) =
  Json.Obj
    (("name", Json.Str name)
    :: ("t_s", Json.Float t)
    ::
    (match attrs with [] -> [] | l -> [ ("attrs", json_of_attrs l) ]))

let rec json_of_tree (t : span_tree) =
  Json.Obj
    (List.concat
       [
         [ ("name", Json.Str t.sname); ("start_s", Json.Float t.start_s) ];
         (if t.dur_s >= 0.0 then [ ("dur_s", Json.Float t.dur_s) ]
          else [ ("open", Json.Bool true) ]);
         (match t.attrs with [] -> [] | l -> [ ("attrs", json_of_attrs l) ]);
         (match t.events with
         | [] -> []
         | l -> [ ("events", Json.List (List.map json_of_event l)) ]);
         (match t.children with
         | [] -> []
         | l -> [ ("children", Json.List (List.map json_of_tree l)) ]);
       ])

let to_json () =
  let r = (cur ()).root in
  let rt = tree_of r.nstart r in
  Json.Obj
    [
      ("trace_version", Json.Int 1);
      ( "counters",
        Json.Obj (List.map (fun (k, v) -> (k, Json.Int v)) (counters ())) );
      ("spans", Json.List (List.map json_of_tree (List.rev_map (tree_of r.nstart) r.nchildren)));
      ("events", Json.List (List.map json_of_event rt.events));
    ]

let pp_value ppf = function
  | Bool b -> Fmt.bool ppf b
  | Int i -> Fmt.int ppf i
  | Float f -> Fmt.pf ppf "%g" f
  | Str s -> Fmt.string ppf s

let pp_attrs ppf = function
  | [] -> ()
  | attrs ->
      Fmt.pf ppf " [%a]"
        Fmt.(list ~sep:(any " ") (pair ~sep:(any "=") string pp_value))
        attrs

let pp_text ppf () =
  let rec pp_tree indent (t : span_tree) =
    Fmt.pf ppf "%s%-30s %s%a@."
      (String.make indent ' ')
      t.sname
      (if t.dur_s >= 0.0 then Fmt.str "%8.3f ms" (1e3 *. t.dur_s) else "   (open)")
      pp_attrs t.attrs;
    List.iter
      (fun (name, t_s, attrs) ->
        Fmt.pf ppf "%s* %s @ %.3f ms%a@."
          (String.make (indent + 2) ' ')
          name (1e3 *. t_s) pp_attrs attrs)
      t.events;
    List.iter (pp_tree (indent + 2)) t.children
  in
  List.iter (pp_tree 0) (roots ());
  match counters () with
  | [] -> ()
  | cs ->
      Fmt.pf ppf "counters:@.";
      List.iter (fun (k, v) -> Fmt.pf ppf "  %-34s %d@." k v) cs

let write_json path =
  Out_channel.with_open_text path (fun oc ->
      Out_channel.output_string oc (Json.to_string (to_json ()));
      Out_channel.output_char oc '\n')
