(** Latency histogram with power-of-two nanosecond buckets.

    Complements the deterministic counters in {!Obs}: histograms hold
    wall-clock durations, so their contents vary run to run and are
    never part of the determinism contract. {!add} performs no
    allocation, which lets the {!Timeline} recorder feed a histogram
    from every closed slice without distorting the measurement. *)

type t

val create : unit -> t
val add : t -> float -> unit
(** [add h dur_s] records a duration in seconds. Allocation-free. *)

val merge : t -> t -> unit
(** [merge dst src] folds [src] into [dst]; [src] is unchanged. *)

val count : t -> int
val sum_s : t -> float
val mean_s : t -> float
val min_s : t -> float
(** 0.0 when empty. *)

val max_s : t -> float
(** 0.0 when empty. *)

val quantile : t -> float -> float
(** [quantile h q] for [q] in [0,1]: bucket-resolution estimate,
    linearly interpolated within the winning power-of-two bucket and
    clamped to the observed min/max. *)

val pp : Format.formatter -> t -> unit
val to_json : t -> Json.t
