type t =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | Str of string
  | List of t list
  | Obj of (string * t) list

(* ---- printing ---------------------------------------------------------- *)

let escape b s =
  Buffer.add_char b '"';
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string b "\\\""
      | '\\' -> Buffer.add_string b "\\\\"
      | '\n' -> Buffer.add_string b "\\n"
      | '\r' -> Buffer.add_string b "\\r"
      | '\t' -> Buffer.add_string b "\\t"
      | c when Char.code c < 0x20 ->
          Buffer.add_string b (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char b c)
    s;
  Buffer.add_char b '"'

let float_repr f =
  if Float.is_integer f && Float.abs f < 1e15 then Printf.sprintf "%.1f" f
  else
    (* shortest representation that round-trips *)
    let s = Printf.sprintf "%.15g" f in
    if float_of_string s = f then s else Printf.sprintf "%.17g" f

let to_string ?(minify = false) t =
  let b = Buffer.create 256 in
  let nl indent =
    if not minify then begin
      Buffer.add_char b '\n';
      Buffer.add_string b (String.make indent ' ')
    end
  in
  let rec go indent = function
    | Null -> Buffer.add_string b "null"
    | Bool x -> Buffer.add_string b (if x then "true" else "false")
    | Int i -> Buffer.add_string b (string_of_int i)
    | Float f ->
        if not (Float.is_finite f) then
          (* nan or ±inf: not representable in JSON *)
          Buffer.add_string b "null"
        else Buffer.add_string b (float_repr f)
    | Str s -> escape b s
    | List [] -> Buffer.add_string b "[]"
    | List xs ->
        Buffer.add_char b '[';
        List.iteri
          (fun i x ->
            if i > 0 then Buffer.add_char b ',';
            nl (indent + 2);
            go (indent + 2) x)
          xs;
        nl indent;
        Buffer.add_char b ']'
    | Obj [] -> Buffer.add_string b "{}"
    | Obj kvs ->
        Buffer.add_char b '{';
        List.iteri
          (fun i (k, v) ->
            if i > 0 then Buffer.add_char b ',';
            nl (indent + 2);
            escape b k;
            Buffer.add_string b (if minify then ":" else ": ");
            go (indent + 2) v)
          kvs;
        nl indent;
        Buffer.add_char b '}'
  in
  go 0 t;
  Buffer.contents b

let pp ppf t = Fmt.string ppf (to_string t)

(* ---- parsing ----------------------------------------------------------- *)

exception Parse_error of int * string

let parse src =
  let n = String.length src in
  let pos = ref 0 in
  let fail msg = raise (Parse_error (!pos, msg)) in
  let peek () = if !pos < n then Some src.[!pos] else None in
  let advance () = incr pos in
  let skip_ws () =
    while
      !pos < n && (match src.[!pos] with ' ' | '\t' | '\n' | '\r' -> true | _ -> false)
    do
      advance ()
    done
  in
  let expect c =
    match peek () with
    | Some c' when c' = c -> advance ()
    | _ -> fail (Printf.sprintf "expected '%c'" c)
  in
  let literal word v =
    if !pos + String.length word <= n && String.sub src !pos (String.length word) = word
    then begin
      pos := !pos + String.length word;
      v
    end
    else fail (Printf.sprintf "expected %s" word)
  in
  let parse_string () =
    expect '"';
    let b = Buffer.create 16 in
    let rec go () =
      match peek () with
      | None -> fail "unterminated string"
      | Some '"' -> advance ()
      | Some '\\' -> (
          advance ();
          match peek () with
          | None -> fail "unterminated escape"
          | Some c ->
              advance ();
              (match c with
              | '"' -> Buffer.add_char b '"'
              | '\\' -> Buffer.add_char b '\\'
              | '/' -> Buffer.add_char b '/'
              | 'n' -> Buffer.add_char b '\n'
              | 'r' -> Buffer.add_char b '\r'
              | 't' -> Buffer.add_char b '\t'
              | 'b' -> Buffer.add_char b '\b'
              | 'f' -> Buffer.add_char b '\012'
              | 'u' ->
                  if !pos + 4 > n then fail "truncated \\u escape";
                  let hex = String.sub src !pos 4 in
                  pos := !pos + 4;
                  let code =
                    try int_of_string ("0x" ^ hex)
                    with Failure _ -> fail "bad \\u escape"
                  in
                  (* decode as UTF-8 *)
                  if code < 0x80 then Buffer.add_char b (Char.chr code)
                  else if code < 0x800 then begin
                    Buffer.add_char b (Char.chr (0xC0 lor (code lsr 6)));
                    Buffer.add_char b (Char.chr (0x80 lor (code land 0x3F)))
                  end
                  else begin
                    Buffer.add_char b (Char.chr (0xE0 lor (code lsr 12)));
                    Buffer.add_char b (Char.chr (0x80 lor ((code lsr 6) land 0x3F)));
                    Buffer.add_char b (Char.chr (0x80 lor (code land 0x3F)))
                  end
              | _ -> fail "unknown escape");
              go ())
      | Some c ->
          advance ();
          Buffer.add_char b c;
          go ()
    in
    go ();
    Buffer.contents b
  in
  let parse_number () =
    let start = !pos in
    let is_float = ref false in
    if peek () = Some '-' then advance ();
    let digits () =
      let had = ref false in
      while !pos < n && src.[!pos] >= '0' && src.[!pos] <= '9' do
        had := true;
        advance ()
      done;
      if not !had then fail "expected digit"
    in
    digits ();
    if peek () = Some '.' then begin
      is_float := true;
      advance ();
      digits ()
    end;
    (match peek () with
    | Some ('e' | 'E') ->
        is_float := true;
        advance ();
        (match peek () with Some ('+' | '-') -> advance () | _ -> ());
        digits ()
    | _ -> ());
    let text = String.sub src start (!pos - start) in
    if !is_float then Float (float_of_string text)
    else
      match int_of_string_opt text with
      | Some i -> Int i
      | None -> Float (float_of_string text)
  in
  let rec parse_value () =
    skip_ws ();
    match peek () with
    | None -> fail "unexpected end of input"
    | Some 'n' -> literal "null" Null
    | Some 't' -> literal "true" (Bool true)
    | Some 'f' -> literal "false" (Bool false)
    | Some '"' -> Str (parse_string ())
    | Some '[' ->
        advance ();
        skip_ws ();
        if peek () = Some ']' then begin
          advance ();
          List []
        end
        else begin
          let acc = ref [ parse_value () ] in
          skip_ws ();
          while peek () = Some ',' do
            advance ();
            acc := parse_value () :: !acc;
            skip_ws ()
          done;
          expect ']';
          List (List.rev !acc)
        end
    | Some '{' ->
        advance ();
        skip_ws ();
        if peek () = Some '}' then begin
          advance ();
          Obj []
        end
        else begin
          let entry () =
            skip_ws ();
            let k = parse_string () in
            skip_ws ();
            expect ':';
            let v = parse_value () in
            (k, v)
          in
          let acc = ref [ entry () ] in
          skip_ws ();
          while peek () = Some ',' do
            advance ();
            acc := entry () :: !acc;
            skip_ws ()
          done;
          expect '}';
          Obj (List.rev !acc)
        end
    | Some ('-' | '0' .. '9') -> parse_number ()
    | Some c -> fail (Printf.sprintf "unexpected character '%c'" c)
  in
  match
    let v = parse_value () in
    skip_ws ();
    if !pos <> n then fail "trailing garbage";
    v
  with
  | v -> Ok v
  | exception Parse_error (at, msg) -> Error (Printf.sprintf "at byte %d: %s" at msg)

(* ---- accessors --------------------------------------------------------- *)

let member k = function Obj kvs -> List.assoc_opt k kvs | _ -> None
let to_list = function List xs -> Some xs | _ -> None
let to_int = function Int i -> Some i | _ -> None

let to_float = function
  | Float f -> Some f
  | Int i -> Some (float_of_int i)
  | _ -> None

let to_str = function Str s -> Some s | _ -> None
