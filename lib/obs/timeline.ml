(* Wall-clock, per-domain timeline recorder.

   This layer is deliberately separate from the deterministic span /
   counter registry in {!Obs}: timelines hold monotonically-stamped
   wall-clock events whose contents differ run to run, while Obs
   counters must stay bit-identical at every --jobs value. Nothing
   here feeds back into Obs, so enabling recording cannot perturb any
   deterministic output.

   Each domain owns one track: flat ring-style arrays of (kind, name,
   timestamp, numeric arg) written only by that domain, so the record
   path takes no lock and performs no buffer allocation. When a track
   fills we stop recording into it (drop-newest) and count the drops;
   this keeps the recorded prefix well-formed instead of tearing
   begin/end pairs apart. Export (Chrome trace JSON, text summary)
   snapshots the track list under a mutex; a worker parked in
   Condition.wait may leave its innermost slice open, which readers
   close at the last timestamp they saw. *)

type kind = K_begin | K_end | K_instant | K_flow_s | K_flow_f

let kind_code = function
  | K_begin -> 0
  | K_end -> 1
  | K_instant -> 2
  | K_flow_s -> 3
  | K_flow_f -> 4

let kind_of_code = function
  | 0 -> K_begin
  | 1 -> K_end
  | 2 -> K_instant
  | 3 -> K_flow_s
  | _ -> K_flow_f

let max_depth = 64

type track = {
  tr_tid : int;  (** domain id, the Perfetto thread id *)
  mutable tr_name : string;
  tr_cap : int;
  tr_kinds : Bytes.t;
  tr_names : string array;
  tr_ts : float array;  (** absolute Unix.gettimeofday *)
  tr_args : float array;  (** slice/instant arg, or flow id *)
  mutable tr_len : int;
  mutable tr_dropped : int;
  (* open-slice stack, used by [end_] to attribute durations *)
  st_names : string array;
  st_ts : float array;
  mutable st_depth : int;
  tr_hists : (string, Hist.t) Hashtbl.t;
  mutable tr_gen : int;  (** generation stamp; stale tracks are re-inited *)
}

let now () = Unix.gettimeofday ()
let on = ref false
let default_capacity = 1 lsl 18
let capacity = ref default_capacity
let epoch = ref (now ())
let gen = ref 0
let mu = Mutex.create ()
let tracks : track list ref = ref []
let flow_counter = Atomic.make 1

let tkey : track option Domain.DLS.key = Domain.DLS.new_key (fun () -> None)

let label_key : string option Domain.DLS.key =
  Domain.DLS.new_key (fun () -> None)

let default_name tid =
  if Domain.is_main_domain () then "main" else Fmt.str "domain-%d" tid

let make_track () =
  let tid = (Domain.self () :> int) in
  let cap = !capacity in
  {
    tr_tid = tid;
    tr_name =
      (match Domain.DLS.get label_key with
      | Some l -> l
      | None -> default_name tid);
    tr_cap = cap;
    tr_kinds = Bytes.make cap '\000';
    tr_names = Array.make cap "";
    tr_ts = Array.make cap 0.0;
    tr_args = Array.make cap 0.0;
    tr_len = 0;
    tr_dropped = 0;
    st_names = Array.make max_depth "";
    st_ts = Array.make max_depth 0.0;
    st_depth = 0;
    tr_hists = Hashtbl.create 16;
    tr_gen = !gen;
  }

let register tr =
  Mutex.lock mu;
  tracks := tr :: !tracks;
  Mutex.unlock mu

(* Lazily create (or, after a [reset], re-initialise) this domain's
   track. Only the first event after enable/reset pays this cost. *)
let cur_track () =
  match Domain.DLS.get tkey with
  | Some tr when tr.tr_gen = !gen -> tr
  | Some tr when tr.tr_cap = !capacity ->
      tr.tr_len <- 0;
      tr.tr_dropped <- 0;
      tr.st_depth <- 0;
      Hashtbl.reset tr.tr_hists;
      tr.tr_name <-
        (match Domain.DLS.get label_key with
        | Some l -> l
        | None -> default_name tr.tr_tid);
      tr.tr_gen <- !gen;
      register tr;
      tr
  | _ ->
      let tr = make_track () in
      Domain.DLS.set tkey (Some tr);
      register tr;
      tr

let enabled () = !on

let reset () =
  Mutex.lock mu;
  incr gen;
  tracks := [];
  epoch := now ();
  Mutex.unlock mu

let enable ?capacity:(cap = default_capacity) () =
  capacity := cap;
  reset ();
  on := true

let disable () = on := false

let label name =
  Domain.DLS.set label_key (Some name);
  match Domain.DLS.get tkey with
  | Some tr when tr.tr_gen = !gen -> tr.tr_name <- name
  | _ ->
      (* materialize the track right away: a labelled domain (a pool
         worker) should appear in the trace even if scheduling never
         hands it an event before the recording is read *)
      if !on then ignore (cur_track () : track)

(* ---- record path -------------------------------------------------------- *)

let push tr kind name arg t =
  let i = tr.tr_len in
  if i < tr.tr_cap then begin
    Bytes.unsafe_set tr.tr_kinds i (Char.unsafe_chr (kind_code kind));
    Array.unsafe_set tr.tr_names i name;
    Array.unsafe_set tr.tr_ts i t;
    Array.unsafe_set tr.tr_args i arg;
    tr.tr_len <- i + 1
  end
  else tr.tr_dropped <- tr.tr_dropped + 1

let begin_ ?(arg = 0.0) name =
  if !on then begin
    let tr = cur_track () in
    let t = now () in
    if tr.st_depth < max_depth then begin
      tr.st_names.(tr.st_depth) <- name;
      tr.st_ts.(tr.st_depth) <- t
    end;
    tr.st_depth <- tr.st_depth + 1;
    push tr K_begin name arg t
  end

let end_ () =
  if !on then begin
    let tr = cur_track () in
    let t = now () in
    if tr.st_depth > 0 then begin
      tr.st_depth <- tr.st_depth - 1;
      if tr.st_depth < max_depth then begin
        let name = tr.st_names.(tr.st_depth) in
        let dur = t -. tr.st_ts.(tr.st_depth) in
        (match Hashtbl.find_opt tr.tr_hists name with
        | Some h -> Hist.add h dur
        | None ->
            let h = Hist.create () in
            Hist.add h dur;
            Hashtbl.replace tr.tr_hists name h);
        push tr K_end name 0.0 t
      end
    end
  end

let slice ?arg name f =
  if not !on then f ()
  else begin
    begin_ ?arg name;
    Fun.protect ~finally:end_ f
  end

let instant ?(arg = 0.0) name =
  if !on then push (cur_track ()) K_instant name arg (now ())

let flow_id () = Atomic.fetch_and_add flow_counter 1

let flow_s id =
  if !on then push (cur_track ()) K_flow_s "task" (float_of_int id) (now ())

let flow_f id =
  if !on then push (cur_track ()) K_flow_f "task" (float_of_int id) (now ())

(* ---- snapshots ----------------------------------------------------------- *)

let snapshot () =
  Mutex.lock mu;
  let ts = List.sort (fun a b -> compare a.tr_tid b.tr_tid) !tracks in
  Mutex.unlock mu;
  ts

let dropped () = List.fold_left (fun a tr -> a + tr.tr_dropped) 0 (snapshot ())

(* ---- aggregation --------------------------------------------------------- *)

type slice_tot = {
  sl_name : string;
  sl_count : int;
  sl_incl_s : float;  (** wall time inside slices of this name *)
  sl_excl_s : float;  (** inclusive minus time in child slices *)
  sl_arg : float;  (** sum of begin/instant args of this name *)
}

type track_tot = {
  tk_tid : int;
  tk_name : string;
  tk_busy_s : float;  (** covered by top-level slices *)
  tk_events : int;
  tk_dropped : int;
  tk_slices : slice_tot list;  (** sorted by exclusive time, descending *)
}

type summary = {
  su_tracks : track_tot list;
  su_slowest : (string * string * float * float) list;
      (** slice name, track name, start since epoch (s), duration (s) *)
  su_hist : (string * Hist.t) list;  (** merged across tracks *)
  su_dropped : int;
  su_span_s : float;  (** last recorded timestamp minus epoch *)
}

(* Replay one track's event stream through a shadow stack, producing
   per-name totals. Slices still open at the end of the buffer (e.g. a
   worker parked in its idle wait during export) are closed at the last
   timestamp seen in that track. *)
let walk_track ~consider_slice tr =
  let n = tr.tr_len in
  let per_name : (string, slice_tot ref) Hashtbl.t = Hashtbl.create 16 in
  let bump name f =
    match Hashtbl.find_opt per_name name with
    | Some r -> r := f !r
    | None ->
        Hashtbl.replace per_name name
          (ref
             (f
                {
                  sl_name = name;
                  sl_count = 0;
                  sl_incl_s = 0.0;
                  sl_excl_s = 0.0;
                  sl_arg = 0.0;
                }))
  in
  let stack_name = Array.make max_depth ""
  and stack_ts = Array.make max_depth 0.0
  and stack_child = Array.make max_depth 0.0 in
  let depth = ref 0 and busy = ref 0.0 and last_t = ref !epoch in
  let close name ts0 child t =
    let incl = t -. ts0 in
    let excl = Float.max 0.0 (incl -. child) in
    bump name (fun s ->
        {
          s with
          sl_count = s.sl_count + 1;
          sl_incl_s = s.sl_incl_s +. incl;
          sl_excl_s = s.sl_excl_s +. excl;
        });
    consider_slice name tr.tr_name ts0 incl;
    if !depth = 0 then busy := !busy +. incl
    else stack_child.(!depth - 1) <- stack_child.(!depth - 1) +. incl
  in
  for i = 0 to n - 1 do
    let t = tr.tr_ts.(i) in
    if t > !last_t then last_t := t;
    match kind_of_code (Char.code (Bytes.get tr.tr_kinds i)) with
    | K_begin ->
        if !depth < max_depth then begin
          stack_name.(!depth) <- tr.tr_names.(i);
          stack_ts.(!depth) <- t;
          stack_child.(!depth) <- 0.0
        end;
        incr depth;
        bump tr.tr_names.(i) (fun s -> { s with sl_arg = s.sl_arg +. tr.tr_args.(i) })
    | K_end ->
        if !depth > 0 then begin
          decr depth;
          if !depth < max_depth then
            close stack_name.(!depth) stack_ts.(!depth) stack_child.(!depth) t
        end
    | K_instant ->
        bump tr.tr_names.(i) (fun s ->
            { s with sl_count = s.sl_count + 1; sl_arg = s.sl_arg +. tr.tr_args.(i) })
    | K_flow_s | K_flow_f -> ()
  done;
  (* close whatever is still open at the last timestamp we saw *)
  while !depth > 0 do
    decr depth;
    if !depth < max_depth then
      close stack_name.(!depth) stack_ts.(!depth) stack_child.(!depth) !last_t
  done;
  let slices =
    Hashtbl.fold (fun _ r acc -> !r :: acc) per_name []
    |> List.sort (fun a b -> compare b.sl_excl_s a.sl_excl_s)
  in
  ( {
      tk_tid = tr.tr_tid;
      tk_name = tr.tr_name;
      tk_busy_s = !busy;
      tk_events = n;
      tk_dropped = tr.tr_dropped;
      tk_slices = slices;
    },
    !last_t )

let top_k = 10

let summary () =
  let slow = ref [] in
  (* keep the [top_k] longest closed slices, shortest first *)
  let consider_slice name track ts0 dur =
    let entry = (name, track, ts0 -. !epoch, dur) in
    let l =
      List.sort (fun (_, _, _, a) (_, _, _, b) -> compare a b) (entry :: !slow)
    in
    slow := (if List.length l > top_k then List.tl l else l)
  in
  let trs = snapshot () in
  let span = ref 0.0 in
  let tots =
    List.map
      (fun tr ->
        let tot, last_t = walk_track ~consider_slice tr in
        if last_t -. !epoch > !span then span := last_t -. !epoch;
        tot)
      trs
  in
  let hist : (string, Hist.t) Hashtbl.t = Hashtbl.create 16 in
  List.iter
    (fun tr ->
      Hashtbl.iter
        (fun name h ->
          match Hashtbl.find_opt hist name with
          | Some dst -> Hist.merge dst h
          | None ->
              let dst = Hist.create () in
              Hist.merge dst h;
              Hashtbl.replace hist name dst)
        tr.tr_hists)
    trs;
  {
    su_tracks = tots;
    su_slowest =
      List.sort
        (fun (_, _, _, a) (_, _, _, b) -> compare b a)
        !slow;
    su_hist =
      Hashtbl.fold (fun k v acc -> (k, v) :: acc) hist []
      |> List.sort (fun (a, _) (b, _) -> String.compare a b);
    su_dropped = List.fold_left (fun a tr -> a + tr.tr_dropped) 0 trs;
    su_span_s = !span;
  }

(* Exclusive seconds attributed to [name] summed over all tracks; used
   by the bench parattr attribution. *)
let excl_s su name =
  List.fold_left
    (fun acc tk ->
      List.fold_left
        (fun acc sl -> if String.equal sl.sl_name name then acc +. sl.sl_excl_s else acc)
        acc tk.tk_slices)
    0.0 su.su_tracks

let incl_s su name =
  List.fold_left
    (fun acc tk ->
      List.fold_left
        (fun acc sl -> if String.equal sl.sl_name name then acc +. sl.sl_incl_s else acc)
        acc tk.tk_slices)
    0.0 su.su_tracks

let arg_sum su name =
  List.fold_left
    (fun acc tk ->
      List.fold_left
        (fun acc sl -> if String.equal sl.sl_name name then acc +. sl.sl_arg else acc)
        acc tk.tk_slices)
    0.0 su.su_tracks

let pp_summary ppf () =
  let su = summary () in
  Fmt.pf ppf "timeline: %d track(s), span %.3f ms%s@."
    (List.length su.su_tracks)
    (1e3 *. su.su_span_s)
    (if su.su_dropped > 0 then Fmt.str ", %d event(s) dropped" su.su_dropped
     else "");
  List.iter
    (fun tk ->
      Fmt.pf ppf "  [%d] %-12s busy %8.3f ms  (%d events%s)@." tk.tk_tid
        tk.tk_name (1e3 *. tk.tk_busy_s) tk.tk_events
        (if tk.tk_dropped > 0 then Fmt.str ", %d dropped" tk.tk_dropped else "");
      List.iteri
        (fun i sl ->
          if i < 12 then
            Fmt.pf ppf "      %-22s n=%-7d incl %9.3f ms  excl %9.3f ms%s@."
              sl.sl_name sl.sl_count (1e3 *. sl.sl_incl_s) (1e3 *. sl.sl_excl_s)
              (if sl.sl_arg <> 0.0 then Fmt.str "  arg=%g" sl.sl_arg else ""))
        tk.tk_slices)
    su.su_tracks;
  (match su.su_slowest with
  | [] -> ()
  | slow ->
      Fmt.pf ppf "  slowest slices:@.";
      List.iter
        (fun (name, track, start, dur) ->
          Fmt.pf ppf "      %-22s %-12s at %10.3f ms  for %9.3f ms@." name track
            (1e3 *. start) (1e3 *. dur))
        slow);
  match su.su_hist with
  | [] -> ()
  | hs ->
      Fmt.pf ppf "  latency histograms:@.";
      List.iter
        (fun (name, h) -> Fmt.pf ppf "      %-22s %a@." name Hist.pp h)
        hs

(* ---- Chrome trace-event export ------------------------------------------ *)

(* Self-contained writer for the Chrome trace-event JSON format
   (catapult "JSON Array Format"); the output opens directly in
   Perfetto / chrome://tracing. One pid for the process, one tid (=
   domain id) per track, timestamps in microseconds since the recorder
   epoch. Events are streamed to the channel rather than built as a
   Json.t so a full 256k-event ring never has to materialise in one
   allocation. *)

let esc b s =
  Buffer.clear b;
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string b "\\\""
      | '\\' -> Buffer.add_string b "\\\\"
      | '\n' -> Buffer.add_string b "\\n"
      | '\t' -> Buffer.add_string b "\\t"
      | c when Char.code c < 0x20 ->
          Buffer.add_string b (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char b c)
    s;
  Buffer.contents b

let write_chrome_channel oc =
  let b = Buffer.create 64 in
  let first = ref true in
  let emit fmt =
    if !first then first := false else Out_channel.output_string oc ",\n ";
    Printf.ksprintf (Out_channel.output_string oc) fmt
  in
  Out_channel.output_string oc "{\"displayTimeUnit\":\"ms\",\"traceEvents\":[\n ";
  emit
    "{\"ph\":\"M\",\"pid\":1,\"name\":\"process_name\",\"args\":{\"name\":\"hextile\"}}";
  let trs = snapshot () in
  List.iter
    (fun tr ->
      emit
        "{\"ph\":\"M\",\"pid\":1,\"tid\":%d,\"name\":\"thread_name\",\"args\":{\"name\":\"%s\"}}"
        tr.tr_tid (esc b tr.tr_name))
    trs;
  List.iter
    (fun tr ->
      let tid = tr.tr_tid in
      for i = 0 to tr.tr_len - 1 do
        let ts = (tr.tr_ts.(i) -. !epoch) *. 1e6 in
        let name = tr.tr_names.(i) in
        let arg = tr.tr_args.(i) in
        match kind_of_code (Char.code (Bytes.get tr.tr_kinds i)) with
        | K_begin ->
            if arg = 0.0 then
              emit
                "{\"ph\":\"B\",\"pid\":1,\"tid\":%d,\"ts\":%.3f,\"name\":\"%s\",\"cat\":\"hextile\"}"
                tid ts (esc b name)
            else
              emit
                "{\"ph\":\"B\",\"pid\":1,\"tid\":%d,\"ts\":%.3f,\"name\":\"%s\",\"cat\":\"hextile\",\"args\":{\"v\":%g}}"
                tid ts (esc b name) arg
        | K_end ->
            emit
              "{\"ph\":\"E\",\"pid\":1,\"tid\":%d,\"ts\":%.3f,\"name\":\"%s\",\"cat\":\"hextile\"}"
              tid ts (esc b name)
        | K_instant ->
            if arg = 0.0 then
              emit
                "{\"ph\":\"i\",\"pid\":1,\"tid\":%d,\"ts\":%.3f,\"name\":\"%s\",\"cat\":\"hextile\",\"s\":\"t\"}"
                tid ts (esc b name)
            else
              emit
                "{\"ph\":\"i\",\"pid\":1,\"tid\":%d,\"ts\":%.3f,\"name\":\"%s\",\"cat\":\"hextile\",\"s\":\"t\",\"args\":{\"v\":%g}}"
                tid ts (esc b name) arg
        | K_flow_s ->
            emit
              "{\"ph\":\"s\",\"pid\":1,\"tid\":%d,\"ts\":%.3f,\"name\":\"task\",\"cat\":\"flow\",\"id\":%d}"
              tid ts (int_of_float arg)
        | K_flow_f ->
            emit
              "{\"ph\":\"f\",\"bp\":\"e\",\"pid\":1,\"tid\":%d,\"ts\":%.3f,\"name\":\"task\",\"cat\":\"flow\",\"id\":%d}"
              tid ts (int_of_float arg)
      done)
    trs;
  Out_channel.output_string oc "\n]}\n"

let write_chrome path =
  Out_channel.with_open_text path write_chrome_channel
