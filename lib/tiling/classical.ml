open Hextile_util

type t = { delta1 : Rat.t; w : int }

let make ~delta1 ~w =
  if w < 1 then invalid_arg "Classical.make: width must be >= 1";
  if Rat.sign delta1 < 0 then invalid_arg "Classical.make: delta1 must be >= 0";
  { delta1; w }

let skew t ~u ~si = si + Rat.floor (Rat.mul_int t.delta1 u)
let tile t ~u ~si = Intutil.fdiv (skew t ~u ~si) t.w
let intra t ~u ~si = Intutil.fmod (skew t ~u ~si) t.w

let si_of t ~u ~tile ~intra = (tile * t.w) + intra - Rat.floor (Rat.mul_int t.delta1 u)

let tile_range t ~u_max ~lo ~hi =
  (* v is minimal at u=0 for the low end and maximal at u=u_max for the
     high end (δ1 >= 0). *)
  (Intutil.fdiv lo t.w, Intutil.fdiv (hi + Rat.floor (Rat.mul_int t.delta1 u_max)) t.w)
