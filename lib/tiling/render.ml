let tile = Hexagon.render

let pattern hs ~u_range:(ulo, uhi) ~s0_range:(slo, shi) =
  let buf = Buffer.create 1024 in
  for u = uhi downto ulo do
    Buffer.add_string buf (Fmt.str "u=%3d |" u);
    for s0 = slo to shi do
      let tt, phase, s_tile = Hex_schedule.tile_of hs ~u ~s0 in
      let base = if phase = 0 then 'A' else 'a' in
      let idx = Hextile_util.Intutil.fmod (tt + (2 * s_tile)) 4 in
      Buffer.add_char buf (Char.chr (Char.code base + idx))
    done;
    Buffer.add_char buf '\n'
  done;
  Buffer.add_string buf
    (Fmt.str "       phase 0 = A..D, phase 1 = a..d; s0 = %d..%d\n" slo shi);
  Buffer.contents buf
