open Hextile_deps
open Hextile_ir
open Hextile_util
module Obs = Hextile_obs.Obs

type coords = {
  phase : int;
  tt : int;
  tiles : int array;
  a : int;
  intra : int array;
}

type t = {
  prog : Stencil.t;
  k : int;
  dims : int;
  deps : Dep.t list;
  cone : Cone.t;
  h : int;
  w : int array;
  hex : Hexagon.t;
  hs : Hex_schedule.t;
  classical : Classical.t array;
}

let make ?(hex_dim = 0) ?deps ?cone ?hex (prog : Stencil.t) ~h ~w =
  if hex_dim <> 0 then
    invalid_arg "Hybrid.make: only hex_dim = 0 is supported (reorder dims in the IR)";
  (match Stencil.validate prog with
  | Ok () -> ()
  | Error m -> invalid_arg ("Hybrid.make: " ^ m));
  let dims = Stencil.spatial_dims prog in
  if Array.length w <> dims then
    invalid_arg
      (Fmt.str "Hybrid.make: %d widths given for %d spatial dimensions"
         (Array.length w) dims);
  let k = List.length prog.stmts in
  if (h + 1) mod k <> 0 then
    invalid_arg
      (Fmt.str
         "Hybrid.make: h+1 = %d must be a multiple of the statement count %d \
          so every tile starts with the same statement"
         (h + 1) k);
  Obs.span "tiling.hybrid_make" (fun () ->
      Obs.annot "stencil" (Obs.Str prog.name);
      Obs.annot "h" (Obs.Int h);
      Obs.annot "w"
        (Obs.Str
           (Fmt.str "%a" Fmt.(array ~sep:(any ",") int) w));
      let deps =
        match deps with
        | Some d -> d
        | None -> Obs.span "tiling.dependence_cone" (fun () -> Dep.analyze prog)
      in
      let cone = match cone with Some c -> c | None -> Cone.of_deps deps ~dim:0 in
      let hex =
        match hex with
        | Some (hx : Hexagon.t) ->
            if hx.h <> h || hx.w0 <> w.(0) then
              invalid_arg
                (Fmt.str "Hybrid.make: cached hexagon (h=%d, w0=%d) does not match \
                          requested (h=%d, w0=%d)"
                   hx.h hx.w0 h w.(0));
            hx
        | None ->
            Obs.span "tiling.hexagon_make" (fun () -> Hexagon.make ~h ~w0:w.(0) cone)
      in
      let hs = Hex_schedule.make hex in
      let classical =
        Obs.span "tiling.classical_make" (fun () ->
            Array.init (dims - 1) (fun i ->
                Classical.make
                  ~delta1:(Cone.delta1_only deps ~dim:(i + 1))
                  ~w:w.(i + 1)))
      in
      { prog; k; dims; deps; cone; h; w; hex; hs; classical })

let instance_u t ~stmt ~tstep = (t.k * tstep) + stmt
let stmt_of_u t u = Intutil.fmod u t.k
let tstep_of_u t u = Intutil.fdiv u t.k
let domain_u_bound t env = t.k * Affp.eval t.prog.steps env

let coords t ~u ~s =
  let tt, phase, s0_tile = Hex_schedule.tile_of t.hs ~u ~s0:s.(0) in
  let a, b = Hex_schedule.local t.hs ~phase ~u ~s0:s.(0) in
  let tiles = Array.make t.dims 0 and intra = Array.make t.dims 0 in
  tiles.(0) <- s0_tile;
  intra.(0) <- b;
  Array.iteri
    (fun i c ->
      tiles.(i + 1) <- Classical.tile c ~u:a ~si:s.(i + 1);
      intra.(i + 1) <- Classical.intra c ~u:a ~si:s.(i + 1))
    t.classical;
  { phase; tt; tiles; a; intra }

let vector _t c =
  Array.concat [ [| c.tt; c.phase |]; c.tiles; [| c.a |]; c.intra ]

let precedes t src dst =
  ignore t;
  if (src.tt, src.phase) < (dst.tt, dst.phase) then true
  else if (src.tt, src.phase) > (dst.tt, dst.phase) then false
  else if src.tiles.(0) <> dst.tiles.(0) then false
  else
    let rest a = Array.sub a.tiles 1 (Array.length a.tiles - 1) in
    let c = compare (rest src) (rest dst) in
    if c < 0 then true else if c > 0 then false else src.a < dst.a

let point_of_coords t c =
  if not (Hexagon.contains t.hex ~a:c.a ~b:c.intra.(0)) then None
  else begin
    let u0, s00 =
      Hex_schedule.tile_origin t.hs ~phase:c.phase ~tt:c.tt ~s_tile:c.tiles.(0)
    in
    let s = Array.make t.dims 0 in
    s.(0) <- s00 + c.intra.(0);
    Array.iteri
      (fun i cl ->
        s.(i + 1) <- Classical.si_of cl ~u:c.a ~tile:c.tiles.(i + 1) ~intra:c.intra.(i + 1))
      t.classical;
    Some (u0 + c.a, s)
  end

let check_legality t env =
  let steps = Affp.eval t.prog.steps env in
  let stmts = Array.of_list t.prog.stmts in
  let bounds i =
    let s = stmts.(i) in
    ( Array.map (fun e -> Affp.eval e env) s.Stencil.lo,
      Array.map (fun e -> Affp.eval e env) s.Stencil.hi )
  in
  let in_domain i tstep s =
    tstep >= 0 && tstep < steps
    &&
    let lo, hi = bounds i in
    let ok = ref true in
    Array.iteri (fun d v -> if v < lo.(d) || v > hi.(d) then ok := false) s;
    !ok
  in
  let violation = ref None in
  let check_dep (dep : Dep.t) =
    let lo, hi = bounds dep.src in
    let point = Array.make t.dims 0 in
    let rec go d =
      if !violation <> None then ()
      else if d = t.dims then begin
        for tstep = 0 to steps - 1 do
          let u_src = instance_u t ~stmt:dep.src ~tstep in
          let u_dst = u_src + dep.dist.(0) in
          if Intutil.fmod u_dst t.k = dep.dst then begin
            let s_dst = Array.mapi (fun d v -> v + dep.dist.(d + 1)) point in
            if in_domain dep.dst (tstep_of_u t u_dst) s_dst then begin
              let c_src = coords t ~u:u_src ~s:point in
              let c_dst = coords t ~u:u_dst ~s:s_dst in
              if not (precedes t c_src c_dst) then
                violation :=
                  Some
                    (Fmt.str "dep %a violated at u=%d s=(%a)" Dep.pp dep u_src
                       Fmt.(array ~sep:(any ", ") int)
                       point)
            end
          end
        done
      end
      else
        for x = lo.(d) to hi.(d) do
          point.(d) <- x;
          go (d + 1)
        done
    in
    go 0
  in
  List.iter check_dep t.deps;
  match !violation with None -> Ok () | Some m -> Error m
