open Hextile_deps
open Hextile_util
open Hextile_poly
module Obs = Hextile_obs.Obs

type t = {
  h : int;
  w0 : int;
  cone : Cone.t;
  fl0 : int;
  fl1 : int;
  width : int;
  height : int;
  poly : Polyhedron.t;
}

let frac_part r = Rat.frac r

let min_w0 ~h (cone : Cone.t) =
  let bound d =
    Rat.add_int (Rat.add d (frac_part (Rat.mul_int d h))) (-1)
  in
  let m = Rat.max (bound cone.delta0) (bound cone.delta1) in
  max 0 (Rat.ceil m)

(* Constraints (6),(7),(8),(10),(12),(13) over local coordinates (a, b),
   cleared of denominators. δ0 = p0/q0, δ1 = p1/q1. *)
let shape_constraints ~h ~w0 ~fl0 ~fl1 (cone : Cone.t) =
  let p0 = Rat.num cone.delta0 and q0 = Rat.den cone.delta0 in
  let p1 = Rat.num cone.delta1 and q1 = Rat.den cone.delta1 in
  [
    (* (13): a >= 0 *)
    Constr.ge [| 1; 0 |] 0;
    (* (7): a <= 2h+1 *)
    Constr.ge [| -1; 0 |] ((2 * h) + 1);
    (* (6): p0·a - q0·b <= (2h+1)·p0 - q0·fl0 *)
    Constr.ge [| -p0; q0 |] (((2 * h) + 1) * p0 - (q0 * fl0));
    (* (8): p1·a + q1·b <= (2h+1)·p1 + q1·(fl0 + w0) *)
    Constr.ge [| -p1; -q1 |] ((((2 * h) + 1) * p1) + (q1 * (fl0 + w0)));
    (* (10): p1·a + q1·b >= h·p1 - (q1 - 1) *)
    Constr.ge [| p1; q1 |] (-(h * p1) + q1 - 1);
    (* (12): p0·a - q0·b >= h·p0 - q0·(fl0 + w0 + fl1) - (q0 - 1) *)
    Constr.ge [| p0; -q0 |] (-(h * p0) + (q0 * (fl0 + w0 + fl1)) + q0 - 1);
  ]

let make ~h ~w0 (cone : Cone.t) =
  if h < 0 then invalid_arg "Hexagon.make: h must be >= 0";
  if Rat.sign cone.delta0 < 0 || Rat.sign cone.delta1 < 0 then
    invalid_arg "Hexagon.make: cone slopes must be non-negative";
  let need = min_w0 ~h cone in
  if w0 < need then
    invalid_arg
      (Fmt.str "Hexagon.make: w0 = %d below convexity minimum %d (condition (1))"
         w0 need);
  let fl0 = Rat.floor (Rat.mul_int cone.delta0 h) in
  let fl1 = Rat.floor (Rat.mul_int cone.delta1 h) in
  let width = (2 * w0) + 2 + fl0 + fl1 in
  let height = (2 * h) + 2 in
  let space = Space.make [ "a"; "b" ] in
  let poly = Polyhedron.make space (shape_constraints ~h ~w0 ~fl0 ~fl1 cone) in
  (* Verify the shape is bounded and non-empty with exact rational LP
     (the convexity condition (1) should guarantee it; a degenerate
     result here means an inconsistent cone). *)
  (match (Lp.minimize poly ~obj:[| 0; 1 |] (), Lp.maximize poly ~obj:[| 0; 1 |] ()) with
  | Lp.Opt _, Lp.Opt _ -> ()
  | _ ->
      invalid_arg
        (Fmt.str "Hexagon.make: degenerate tile shape (h=%d, w0=%d)" h w0));
  Obs.incr "tiling.hexagons_built";
  { h; w0; cone; fl0; fl1; width; height; poly }

let contains t ~a ~b = Polyhedron.contains t.poly [| a; b |]

let points t =
  List.map (fun p -> (p.(0), p.(1))) (Polyhedron.enumerate t.poly)

let count t = Polyhedron.count t.poly

let expected_count t = (t.h + 1) * t.width

let row_range t ~a =
  let lo = ref None and hi = ref None in
  for b = -1 to t.width + t.fl0 + t.fl1 + 1 do
    if contains t ~a ~b then begin
      if !lo = None then lo := Some b;
      hi := Some b
    end
  done;
  match (!lo, !hi) with Some l, Some h -> Some (l, h) | _ -> None

let render t =
  let buf = Buffer.create 256 in
  let bmax = t.width + t.fl0 + t.fl1 + 1 in
  for a = 0 to (2 * t.h) + 1 do
    Buffer.add_string buf (Fmt.str "a=%2d |" a);
    for b = 0 to bmax do
      Buffer.add_char buf (if contains t ~a ~b then '#' else '.')
    done;
    Buffer.add_char buf '\n'
  done;
  Buffer.contents buf

let pp ppf t =
  Fmt.pf ppf "hexagon(h=%d, w0=%d, %a, width=%d, points=%d)" t.h t.w0 Cone.pp
    t.cone t.width (count t)
