(** Hexagonal tile shapes (Section 3.3.2, Figure 4).

    Given the tile height [h], peak width [w0] and the dependence-cone
    slopes [δ0, δ1], the tile is the set of local box coordinates [(a, b)]
    satisfying the paper's constraints (6), (7), (8), (10), (12), (13).
    Local coordinate [a] spans the time direction (0 .. 2h+1), [b] the
    hexagonally tiled space direction (0 .. width-1). *)

open Hextile_deps
open Hextile_util

type t = {
  h : int;
  w0 : int;
  cone : Cone.t;
  fl0 : int;  (** [⌊δ0·h⌋] *)
  fl1 : int;  (** [⌊δ1·h⌋] *)
  width : int;  (** horizontal tiling period [2w0 + 2 + fl0 + fl1] *)
  height : int;  (** vertical period of a phase pair, [2h + 2] *)
  poly : Hextile_poly.Polyhedron.t;  (** the shape, over space [(a, b)] *)
}

val min_w0 : h:int -> Cone.t -> int
(** Smallest [w0] satisfying the convexity condition (1):
    [w0 ≥ max(δ0 + {δ0·h}, δ1 + {δ1·h}) - 1]. *)

val make : h:int -> w0:int -> Cone.t -> t
(** Raises [Invalid_argument] if [h < 0], [w0 < min_w0], or a slope is
    negative. *)

val contains : t -> a:int -> b:int -> bool
val points : t -> (int * int) list
(** All integer points of the tile, lexicographic in [(a, b)]. *)

val count : t -> int
val expected_count : t -> int
(** [(h+1) · width] — every full tile holds exactly this many points
    (the identical-point-count property the paper relies on to avoid
    thread divergence; for [δ0 = δ1 = 1] it equals the Section 3.7
    formula [2(1 + 2h + h² + w0(h+1))]). *)

val row_range : t -> a:int -> (int * int) option
(** Inclusive [b] range of tile row [a], [None] if the row is empty. *)

val render : t -> string
(** ASCII drawing of the tile in the style of Figure 4. *)

val pp : t Fmt.t
val frac_part : Rat.t -> Rat.t
