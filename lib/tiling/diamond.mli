(** Diamond tiling on the [(t, s)] plane, for the qualitative comparison
    of Section 5 (and Grosser et al., HiStencils 2014).

    Diamond tiles are bounded by the hyperplanes [t + s] and [t - s]
    stripmined with size [tau]:
    [tile = (⌊(t+s)/tau⌋, ⌊(t-s)/tau⌋)]. Unlike hexagonal tiles, the
    number of integer points per diamond *varies between tiles* whenever
    [tau] is odd (peaks alternately do and do not land on lattice
    points), which is the control-flow-divergence hazard the paper
    avoids; a hexagonal tiling has identical counts by construction. *)

type t = { tau : int }

val make : tau:int -> t
(** Raises [Invalid_argument] if [tau < 1]. *)

val tile_of : t -> t':int -> s:int -> int * int

val tile_points : t -> a:int -> b:int -> (int * int) list
(** All integer [(t, s)] points of diamond [(a, b)]. *)

val count : t -> a:int -> b:int -> int

val count_spectrum : t -> int list
(** Distinct per-tile point counts over a representative set of tiles
    (sorted). A singleton list means all tiles are identical — true for
    even [tau], false for odd [tau] ≥ 1 with [tau > 1]. *)

val wavefront_legal : t -> deltas:(int * int) list -> bool
(** Whether all given dependence distances [(Δt, Δs)] move forward in the
    diamond wavefront order (tiles executed by increasing [a + b], tiles
    of equal [a + b] in parallel). *)
