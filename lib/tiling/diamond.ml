open Hextile_util

type t = { tau : int }

let make ~tau =
  if tau < 1 then invalid_arg "Diamond.make: tau must be >= 1";
  { tau }

let tile_of d ~t' ~s = (Intutil.fdiv (t' + s) d.tau, Intutil.fdiv (t' - s) d.tau)

let tile_points d ~a ~b =
  (* u = t+s in [a*tau, (a+1)*tau), v = t-s in [b*tau, ...); integer (t,s)
     exist iff u ≡ v (mod 2). *)
  let pts = ref [] in
  for u = a * d.tau to ((a + 1) * d.tau) - 1 do
    for v = b * d.tau to ((b + 1) * d.tau) - 1 do
      if (u - v) mod 2 = 0 then begin
        let t' = (u + v) / 2 and s = (u - v) / 2 in
        pts := (t', s) :: !pts
      end
    done
  done;
  List.rev !pts

let count d ~a ~b = List.length (tile_points d ~a ~b)

let count_spectrum d =
  let counts = ref [] in
  for a = 0 to 3 do
    for b = -3 to 3 do
      let c = count d ~a ~b in
      if not (List.mem c !counts) then counts := c :: !counts
    done
  done;
  List.sort compare !counts

let wavefront_legal d ~deltas =
  List.for_all
    (fun (dt, ds) ->
      ignore d;
      (* tile coordinates move by ((dt+ds)/tau, (dt-ds)/tau) up to floors;
         forward wavefront needs dt+ds >= 0 and dt-ds >= 0 for every
         dependence (the diamond slope condition |ds| <= dt). *)
      dt + ds >= 0 && dt - ds >= 0)
    deltas
