(** Closed-form (analytic) model of one generic hybrid tile.

    The fast layer of the staged tile-size search: computes the exact
    iteration count and shared-memory footprint of a candidate [(h, w)]
    and sound lower/upper bounds on its global-load count directly from
    the hexagon row ranges, the classical tile widths and the static
    access offsets — without enumerating a single statement instance.
    All quantities refer to the same generic tile the exact layer
    enumerates ([tt = 7], [phase = 1], all spatial tiles [= 7]), so the
    exact counts agree bit for bit with [Tile_size.tile_stats]. *)

open Hextile_ir
open Hextile_deps
open Hextile_util

(** {1 Integer boxes} *)

type box = { lo : int array; hi : int array }
(** An axis-aligned box of integer points, both bounds inclusive per
    dimension. Empty when any [hi.(d) < lo.(d)]. *)

val volume : box -> int
val inter : box -> box -> box
val hull : box -> box -> box

(** {1 Per-program context} *)

type ainfo = {
  acc : Stencil.access;
  arr : int;  (** index into [array_names] *)
  fold : int;  (** storage slots of the array; 1 when not folded *)
  id : int;  (** unique access-occurrence id *)
}

type sinfo = { reads : ainfo array; write : ainfo }

type ctx = {
  prog : Stencil.t;
  k : int;
  dims : int;
  deps : Dep.t list;
  cone : Cone.t;
  delta1 : Rat.t array;  (** inner-dimension slopes, length [dims - 1] *)
  stmts : sinfo array;
  narrays : int;
  array_names : string array;
}

val ctx : ?deps:Dep.t list -> Stencil.t -> ctx
(** Resolve the program once for the whole search: dependences, cone,
    inner-dimension slopes and per-statement access records. [deps], if
    given, must equal [Dep.analyze prog]. Raises [Invalid_argument] on
    an invalid program. *)

(** {1 Per-[(h, w0)] slice} *)

type row = {
  a : int;
  blo : int;
  bhi : int;  (** inclusive [b] range of the hexagon row *)
  sidx : int;  (** statement executing at this row *)
  tstep : int;  (** logical time step of the row *)
  fl : int array;  (** [⌊δ1_d · a⌋] per inner dimension *)
}

type hslice = {
  cx : ctx;
  h : int;
  w0 : int;
  hex : Hexagon.t;
  u0 : int;
  s00 : int;  (** origin of the generic tile *)
  rows : row array;  (** non-empty rows, ascending [a] *)
}

val hslice : ctx -> h:int -> w0:int -> hslice
(** Build the hexagon for [(h, w0)] and tabulate its rows. Everything
    here is independent of the inner widths, so one slice serves a whole
    [w1 × ... × wn] product of candidates. Raises like [Hexagon.make]. *)

val hslice_of_hex : ctx -> Hexagon.t -> hslice
(** Same, for an already-built hexagon. *)

val access_box : hslice -> w:int array -> row -> ainfo -> box
(** The absolute spatial box the access touches over one hexagon row of
    the generic tile. Only [w.(1..)] are read. *)

val slot_of : row -> ainfo -> int
(** Storage slot of the access at this row ([fmod (tstep + time_off) fold]). *)

(** {1 Candidate analysis} *)

type footprint = {
  floats : int;
      (** exactly [Tile_size.tile_stats(...).footprint_box]: per touched
          array, bounding-box volume × number of live slots, summed *)
  boxes : box option array;  (** per-array bounding box, [None] if untouched *)
  slots : int array array;  (** per-array distinct slots, ascending *)
}

val footprint : hslice -> w:int array -> footprint
(** Exact shared-memory footprint of candidate [(h, w)]. Strictly
    increasing in every inner width [w.(d)], [d >= 1] (each per-array
    extent grows by the access-offset spread plus [w.(d)]), which is
    what makes whole-slice infeasibility pruning sound. *)

type estimate = {
  iterations : int;  (** exact: [Tile_size.tile_stats(...).iterations] *)
  fp : footprint;
  loads_lb : int;  (** sound lower bound on [tile_stats(...).loads] *)
  loads_ub : int;  (** sound upper bound on [tile_stats(...).loads] *)
}

val estimate : hslice -> w:int array -> estimate
(** Full analytic screen for one candidate: exact iterations and
    footprint, and load bounds obtained per (array, slot) by box
    inclusion–exclusion over consecutive row boxes (lower bound
    additionally subtracts the hull of already-flushed writes; upper
    bound caps the per-access union sum by the read hull volume). *)

(** {1 Per-class clipped closed forms}

    A hybrid launch's blocks fall into tile classes distinguished only
    by how the hexagon's per-row [s0] interval is clipped against the
    statement domain ([Hybrid_exec.class_key]). The forms below extend
    the generic-tile model to such clipped classes in closed form —
    arithmetic over the hexagon rows, never enumerating a statement
    instance — and each has a [_dense] reference that does enumerate,
    for the property tests and the analytic engine's self-checks. *)

type clip = { cleft : int; cright : int }
(** Cells clipped off the left/right of one hexagon row's [b] interval
    (both [>= 0]); [None] in a clips array marks a row with no work at
    all (e.g. its [u] falls outside the time domain). *)

val class_row_len : row -> clip option -> int
(** [max 0 (bhi - blo + 1 - cleft - cright)]. *)

val class_columns : hslice -> clips:clip option array -> int
(** Distinct [(a, s0)] cells with work: Σ clipped row lengths. *)

val class_columns_dense : hslice -> clips:clip option array -> int

val class_syncs : hslice -> clips:clip option array -> live:(row -> bool) -> int
(** Barrier steps of one classical tile of the class: rows with a
    positive clipped length whose inner windows are non-empty ([live]). *)

val class_syncs_dense :
  hslice -> clips:clip option array -> live:(row -> bool) -> int

val class_stores : hslice -> clips:clip option array -> inner:(row -> int) -> int
(** Written cells (= store instances) of the class: Σ clipped row length
    × [inner row], with [inner] the row's inner-dimension instance count
    (a launch constant, e.g. from {!coverage} products). *)

val class_stores_dense :
  hslice -> clips:clip option array -> inner:(row -> int) -> int

val store_row_transactions : n:int -> banks:int -> lanes:int -> int
(** Shared-memory transactions of storing [n] consecutive words in
    [lanes]-wide warp chunks over [banks] banks:
    [⌊n/lanes⌋·⌈lanes/banks⌉ + ⌈(n mod lanes)/banks⌉] — the bank-conflict
    count is base-independent for consecutive words. *)

val store_row_transactions_dense : base:int -> n:int -> banks:int -> lanes:int -> int
(** Reference: simulates per-bank distinct-word sets per chunk exactly
    like [Sim.bank_transactions], from an arbitrary word [base]. *)

val tiles_nonempty : Classical.t -> u:int -> lo:int -> hi:int -> int
(** Number of classical tiles whose (skewed) window at normalized time
    [u] meets [si ∈ [lo, hi]]: [tile(hi) - tile(lo) + 1] by
    monotonicity of [Classical.tile]. *)

val tiles_nonempty_dense : Classical.t -> u_max:int -> u:int -> lo:int -> hi:int -> int

val coverage : lo:int -> hi:int -> int
(** Total clipped window length summed over the tiles of
    [Classical.tile_range]: the windows of consecutive tiles partition
    the skewed axis, so the sum telescopes to [max 0 (hi - lo + 1)]
    independent of [u] — the claim {!coverage_dense} verifies. *)

val coverage_dense : Classical.t -> u_max:int -> u:int -> lo:int -> hi:int -> int
