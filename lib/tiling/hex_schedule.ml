open Hextile_util
open Hextile_poly

type t = { hex : Hexagon.t; drift : int }

let make (hex : Hexagon.t) = { hex; drift = hex.fl1 - hex.fl0 }

(* The phase-0 box grid is shifted by (h+1) in time and by
   (fl1 + w0 + 1) in space relative to the phase-1 grid. *)
let u_shift t ~phase = if phase = 0 then t.hex.h + 1 else 0

(* Note: equation (3) of the paper writes the phase-0 space shift as
   [⌊δ1h⌋ + w0 + 1]; the box-offset geometry of Section 3.3.2 (opposite-
   phase neighbours at [-(w0+1+⌊δ0h⌋)] and [+(w0+1+⌊δ1h⌋)]) requires
   [⌊δ0h⌋ + w0 + 1], which coincides for the symmetric stencils the paper
   evaluates. We use the geometry-consistent value; the partition
   property test exercises asymmetric cones. *)
let s_shift t ~phase = if phase = 0 then t.hex.fl0 + t.hex.w0 + 1 else 0

let time_tile t ~phase ~u = Intutil.fdiv (u + u_shift t ~phase) t.hex.height

let b_raw t ~phase ~u ~s0 =
  s0 + s_shift t ~phase + (time_tile t ~phase ~u * t.drift)

let local t ~phase ~u ~s0 =
  ( Intutil.fmod (u + u_shift t ~phase) t.hex.height,
    Intutil.fmod (b_raw t ~phase ~u ~s0) t.hex.width )

let space_tile t ~phase ~u ~s0 = Intutil.fdiv (b_raw t ~phase ~u ~s0) t.hex.width

let in_phase t ~phase ~u ~s0 =
  let a, b = local t ~phase ~u ~s0 in
  Hexagon.contains t.hex ~a ~b

let phase_of t ~u ~s0 =
  match (in_phase t ~phase:0 ~u ~s0, in_phase t ~phase:1 ~u ~s0) with
  | true, false -> 0
  | false, true -> 1
  | true, true ->
      invalid_arg (Fmt.str "Hex_schedule: (%d,%d) claimed by both phases" u s0)
  | false, false ->
      invalid_arg (Fmt.str "Hex_schedule: (%d,%d) claimed by neither phase" u s0)

let tile_of t ~u ~s0 =
  let phase = phase_of t ~u ~s0 in
  (time_tile t ~phase ~u, phase, space_tile t ~phase ~u ~s0)

let sched_vector t ~u ~s0 =
  let tt, phase, s_tile = tile_of t ~u ~s0 in
  let a, b = local t ~phase ~u ~s0 in
  [| tt; phase; s_tile; a; b |]

let tile_origin t ~phase ~tt ~s_tile =
  ( (tt * t.hex.height) - u_shift t ~phase,
    (s_tile * t.hex.width) - s_shift t ~phase - (tt * t.drift) )

let tile_points t ~phase ~tt ~s_tile =
  let u0, s00 = tile_origin t ~phase ~tt ~s_tile in
  List.map (fun (a, b) -> (u0 + a, s00 + b)) (Hexagon.points t.hex)

let tile_poly t ~phase ~tt ~s_tile =
  let u0, s00 = tile_origin t ~phase ~tt ~s_tile in
  let cs =
    List.map
      (fun (c : Constr.t) ->
        let ca = Constr.coeff c 0 and cb = Constr.coeff c 1 in
        { c with const = c.const - (ca * u0) - (cb * s00) })
      (Polyhedron.constraints t.hex.poly)
  in
  Polyhedron.make (Space.make [ "u"; "s0" ]) cs

let qmap t ~phase =
  let open Qaff in
  let u = var 0 and s0 = var 1 in
  let height = t.hex.height and width = t.hex.width in
  let ushifted = add u (const (u_shift t ~phase)) in
  let tt = fdiv ushifted height in
  let braw = add (add s0 (const (s_shift t ~phase))) (scale t.drift tt) in
  Qmap.make
    ~dom:(Space.make [ "u"; "s0" ])
    ~rng:(Space.make [ "T"; "S0"; "a"; "b" ])
    [| tt; fdiv braw width; fmod ushifted height; fmod braw width |]
