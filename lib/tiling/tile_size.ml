open Hextile_ir
open Hextile_deps
module Obs = Hextile_obs.Obs
module Par = Hextile_par.Par

type stats = {
  iterations : int;
  loads : int;
  stores : int;
  footprint_box : int;
  ratio : float;
}

type choice = { h : int; w : int array; stats : stats }

(* Memory cell identity: (array, storage slot, spatial indices). *)
type cell = string * int * int list

let cell_of_access (prog : Stencil.t) (a : Stencil.access) ~tstep ~point : cell =
  let decl = Stencil.array_decl prog a.array in
  let slot =
    match decl.fold with
    | Some m -> Hextile_util.Intutil.fmod (tstep + a.time_off) m
    | None -> 0
  in
  (a.array, slot, Array.to_list (Array.mapi (fun i o -> point.(i) + o) a.offsets))

(* Enumerate the statement instances of one generic tile in intra-tile
   execution order (ascending t' = a; instances within a step are
   parallel). *)
let iter_tile_instances (t : Hybrid.t) ~f =
  let tt = 7 and phase = 1 in
  let u0, s00 = Hex_schedule.tile_origin t.hs ~phase ~tt ~s_tile:7 in
  let stmts = Array.of_list t.prog.stmts in
  for a = 0 to (2 * t.h) + 1 do
    match Hexagon.row_range t.hex ~a with
    | None -> ()
    | Some (blo, bhi) ->
        let u = u0 + a in
        let stmt = stmts.(Hybrid.stmt_of_u t u) in
        let tstep = Hybrid.tstep_of_u t u in
        (* spatial values per dimension *)
        let dim_values =
          Array.init t.dims (fun d ->
              if d = 0 then
                Array.init (bhi - blo + 1) (fun i -> s00 + blo + i)
              else
                let c = t.classical.(d - 1) in
                Array.init t.w.(d) (fun i -> Classical.si_of c ~u:a ~tile:7 ~intra:i))
        in
        let point = Array.make t.dims 0 in
        let rec go d =
          if d = t.dims then f ~a ~stmt ~tstep ~point
          else
            Array.iter
              (fun v ->
                point.(d) <- v;
                go (d + 1))
              dim_values.(d)
        in
        go 0
  done

let tile_stats (t : Hybrid.t) =
  let written : (cell, unit) Hashtbl.t = Hashtbl.create 256 in
  let loaded : (cell, unit) Hashtbl.t = Hashtbl.create 256 in
  let boxes : (string, (int * int) array) Hashtbl.t = Hashtbl.create 4 in
  let slots : (string * int, unit) Hashtbl.t = Hashtbl.create 8 in
  let iterations = ref 0 and loads = ref 0 in
  let touch ((arr, slot, idx) : cell) =
    Hashtbl.replace slots (arr, slot) ();
    let idx = Array.of_list idx in
    match Hashtbl.find_opt boxes arr with
    | None -> Hashtbl.replace boxes arr (Array.map (fun x -> (x, x)) idx)
    | Some box ->
        Array.iteri
          (fun i x ->
            let lo, hi = box.(i) in
            box.(i) <- (min lo x, max hi x))
          idx
  in
  (* Writes of the current time step are deferred so that same-step reads
     (which cannot depend on them) do not mask loads. *)
  let pending = ref [] and current_a = ref min_int in
  let flush () =
    List.iter (fun c -> Hashtbl.replace written c ()) !pending;
    pending := []
  in
  iter_tile_instances t ~f:(fun ~a ~stmt ~tstep ~point ->
      if a <> !current_a then begin
        flush ();
        current_a := a
      end;
      incr iterations;
      List.iter
        (fun r ->
          let c = cell_of_access t.prog r ~tstep ~point in
          touch c;
          if not (Hashtbl.mem written c || Hashtbl.mem loaded c) then begin
            incr loads;
            Hashtbl.replace loaded c ()
          end)
        (Stencil.distinct_reads stmt);
      let wc = cell_of_access t.prog stmt.write ~tstep ~point in
      touch wc;
      pending := wc :: !pending);
  flush ();
  let footprint_box =
    Hashtbl.fold
      (fun arr box acc ->
        let spatial =
          Array.fold_left (fun p (lo, hi) -> p * (hi - lo + 1)) 1 box
        in
        let nslots =
          Hashtbl.fold (fun (a, _) () n -> if String.equal a arr then n + 1 else n) slots 0
        in
        acc + (spatial * max 1 nslots))
      boxes 0
  in
  {
    iterations = !iterations;
    loads = !loads;
    stores = Hashtbl.length written;
    footprint_box;
    ratio = float_of_int !loads /. float_of_int !iterations;
  }

let iterations_formula_3d ~h ~w0 ~w1 ~w2 =
  2 * (1 + (2 * h) + (h * h) + (w0 * (h + 1))) * w1 * w2

let rec cartesian = function
  | [] -> [ [] ]
  | choices :: rest ->
      let tails = cartesian rest in
      List.concat_map (fun c -> List.map (fun t -> c :: t) tails) choices

let select ?pool prog ~h_candidates ~w0_candidates ~wi_candidates
    ~shared_mem_floats ?require_multiple () =
  Obs.span "tiling.tile_size_select" (fun () ->
      Obs.annot "stencil" (Obs.Str prog.Stencil.name);
      let k = List.length prog.Stencil.stmts in
      let deps = Dep.analyze prog in
      let cone = Cone.of_deps deps ~dim:0 in
      (* candidate enumeration is cheap; keep it sequential so the
         candidate order (and thus every tie-break) is fixed up front *)
      let candidates =
        List.concat_map
          (fun h ->
            if (h + 1) mod k <> 0 then []
            else
              List.concat_map
                (fun w0 ->
                  if w0 < Hexagon.min_w0 ~h cone then []
                  else
                    List.filter_map
                      (fun wis ->
                        let w = Array.of_list (w0 :: wis) in
                        let innermost = w.(Array.length w - 1) in
                        let aligned =
                          match require_multiple with
                          | Some m -> innermost mod m = 0
                          | None -> true
                        in
                        if aligned then Some (h, w) else None)
                      (cartesian wi_candidates))
                w0_candidates)
          h_candidates
        |> Array.of_list
      in
      (* the expensive per-candidate evaluation (Hybrid.make + point
         enumeration) is independent per candidate — fan it out; results
         come back indexed, so the fold below sees the sequential order *)
      let eval (h, w) =
        Obs.incr "tiling.tilesize_candidates";
        let t = Hybrid.make prog ~h ~w in
        (h, w, tile_stats t)
      in
      let evaluated =
        match pool with
        | Some p -> Par.map p eval candidates
        | None -> Array.map eval candidates
      in
      let best = ref None in
      let feasible = ref 0 in
      Array.iter
        (fun (h, w, stats) ->
          if stats.footprint_box <= shared_mem_floats then begin
            incr feasible;
            Obs.incr "tiling.tilesize_feasible";
            match !best with
            | None -> best := Some { h; w; stats }
            | Some b ->
                if
                  stats.ratio < b.stats.ratio -. 1e-12
                  || (Float.abs (stats.ratio -. b.stats.ratio) <= 1e-12
                     && stats.iterations > b.stats.iterations)
                then best := Some { h; w; stats }
          end)
        evaluated;
      Obs.annot "candidates_tried" (Obs.Int (Array.length candidates));
      Obs.annot "candidates_feasible" (Obs.Int !feasible);
      (match !best with
      | Some c ->
          Obs.annot "chosen_h" (Obs.Int c.h);
          Obs.annot "chosen_w"
            (Obs.Str (Fmt.str "%a" Fmt.(array ~sep:(any ",") int) c.w));
          Obs.annot "chosen_ratio" (Obs.Float c.stats.ratio)
      | None -> Obs.annot "chosen_h" (Obs.Str "none"));
      !best)

let pp_stats ppf s =
  Fmt.pf ppf "iters=%d loads=%d stores=%d box=%d ratio=%.4f" s.iterations s.loads
    s.stores s.footprint_box s.ratio

let pp_choice ppf c =
  Fmt.pf ppf "h=%d w=[%a] %a" c.h Fmt.(array ~sep:(any ", ") int) c.w pp_stats c.stats
