open Hextile_ir
open Hextile_deps
module Obs = Hextile_obs.Obs
module Par = Hextile_par.Par
module M = Tile_model

type stats = {
  iterations : int;
  loads : int;
  stores : int;
  footprint_box : int;
  ratio : float;
}

type choice = { h : int; w : int array; stats : stats }

type report = {
  candidates : int;
  feasible : int;
  pruned_infeasible : int;
  pruned_dominated : int;
  exact_evals : int;
}

(* Memory cell identity: (array, storage slot, spatial indices). *)
type cell = string * int * int list

let cell_of_access (prog : Stencil.t) (a : Stencil.access) ~tstep ~point : cell =
  let decl = Stencil.array_decl prog a.array in
  let slot =
    match decl.fold with
    | Some m -> Hextile_util.Intutil.fmod (tstep + a.time_off) m
    | None -> 0
  in
  (a.array, slot, Array.to_list (Array.mapi (fun i o -> point.(i) + o) a.offsets))

(* Enumerate the statement instances of one generic tile in intra-tile
   execution order (ascending t' = a; instances within a step are
   parallel). *)
let iter_tile_instances (t : Hybrid.t) ~f =
  let tt = 7 and phase = 1 in
  let u0, s00 = Hex_schedule.tile_origin t.hs ~phase ~tt ~s_tile:7 in
  let stmts = Array.of_list t.prog.stmts in
  for a = 0 to (2 * t.h) + 1 do
    match Hexagon.row_range t.hex ~a with
    | None -> ()
    | Some (blo, bhi) ->
        let u = u0 + a in
        let stmt = stmts.(Hybrid.stmt_of_u t u) in
        let tstep = Hybrid.tstep_of_u t u in
        (* spatial values per dimension *)
        let dim_values =
          Array.init t.dims (fun d ->
              if d = 0 then
                Array.init (bhi - blo + 1) (fun i -> s00 + blo + i)
              else
                let c = t.classical.(d - 1) in
                Array.init t.w.(d) (fun i -> Classical.si_of c ~u:a ~tile:7 ~intra:i))
        in
        let point = Array.make t.dims 0 in
        let rec go d =
          if d = t.dims then f ~a ~stmt ~tstep ~point
          else
            Array.iter
              (fun v ->
                point.(d) <- v;
                go (d + 1))
              dim_values.(d)
        in
        go 0
  done

(* Reference implementation: hashtables keyed by cons-cell identities.
   Kept as the oracle the dense accounting below is differentially
   tested (and benchmarked) against. *)
let tile_stats_ref (t : Hybrid.t) =
  let written : (cell, unit) Hashtbl.t = Hashtbl.create 256 in
  let loaded : (cell, unit) Hashtbl.t = Hashtbl.create 256 in
  let boxes : (string, (int * int) array) Hashtbl.t = Hashtbl.create 4 in
  let slots : (string * int, unit) Hashtbl.t = Hashtbl.create 8 in
  let iterations = ref 0 and loads = ref 0 in
  let touch ((arr, slot, idx) : cell) =
    Hashtbl.replace slots (arr, slot) ();
    let idx = Array.of_list idx in
    match Hashtbl.find_opt boxes arr with
    | None -> Hashtbl.replace boxes arr (Array.map (fun x -> (x, x)) idx)
    | Some box ->
        Array.iteri
          (fun i x ->
            let lo, hi = box.(i) in
            box.(i) <- (min lo x, max hi x))
          idx
  in
  (* Writes of the current time step are deferred so that same-step reads
     (which cannot depend on them) do not mask loads. *)
  let pending = ref [] and current_a = ref min_int in
  let flush () =
    List.iter (fun c -> Hashtbl.replace written c ()) !pending;
    pending := []
  in
  iter_tile_instances t ~f:(fun ~a ~stmt ~tstep ~point ->
      if a <> !current_a then begin
        flush ();
        current_a := a
      end;
      incr iterations;
      List.iter
        (fun r ->
          let c = cell_of_access t.prog r ~tstep ~point in
          touch c;
          if not (Hashtbl.mem written c || Hashtbl.mem loaded c) then begin
            incr loads;
            Hashtbl.replace loaded c ()
          end)
        (Stencil.distinct_reads stmt);
      let wc = cell_of_access t.prog stmt.write ~tstep ~point in
      touch wc;
      pending := wc :: !pending);
  flush ();
  let footprint_box =
    Hashtbl.fold
      (fun arr box acc ->
        let spatial =
          Array.fold_left (fun p (lo, hi) -> p * (hi - lo + 1)) 1 box
        in
        let nslots =
          Hashtbl.fold (fun (a, _) () n -> if String.equal a arr then n + 1 else n) slots 0
        in
        acc + (spatial * max 1 nslots))
      boxes 0
  in
  {
    iterations = !iterations;
    loads = !loads;
    stores = Hashtbl.length written;
    footprint_box;
    ratio = float_of_int !loads /. float_of_int !iterations;
  }

(* Dense exact accounting. The analytic footprint gives, per array, the
   exact bounding box and live-slot set of everything the tile touches;
   lay those regions out contiguously (slot-major, then row-major over
   the box) and track written/loaded as two bitsets over flat offsets.
   Cells are visited in exactly [iter_tile_instances] order, so loads,
   stores, iterations and the footprint agree bit for bit with
   [tile_stats_ref] — without a single hashtable lookup or per-access
   allocation. *)
let tile_stats_dense (cx : M.ctx) (hs : M.hslice) (fp : M.footprint) ~w =
  let narr = cx.M.narrays in
  let base = Array.make narr 0 in
  let strides = Array.make narr [||] in
  let spatial_sz = Array.make narr 0 in
  let slotmap = Array.make narr [||] in
  let total = ref 0 in
  for i = 0 to narr - 1 do
    match fp.M.boxes.(i) with
    | None -> ()
    | Some b ->
        let dims = Array.length b.M.lo in
        let st = Array.make dims 1 in
        for d = dims - 2 downto 0 do
          st.(d) <- st.(d + 1) * (b.M.hi.(d + 1) - b.M.lo.(d + 1) + 1)
        done;
        strides.(i) <- st;
        let spatial = M.volume b in
        spatial_sz.(i) <- spatial;
        let slots = fp.M.slots.(i) in
        let map = Array.make (slots.(Array.length slots - 1) + 1) (-1) in
        Array.iteri (fun j s -> map.(s) <- j) slots;
        slotmap.(i) <- map;
        base.(i) <- !total;
        total := !total + (spatial * Array.length slots)
  done;
  let nbytes = (!total + 7) / 8 in
  let written = Bytes.make nbytes '\000' and loaded = Bytes.make nbytes '\000' in
  let get bs i = Char.code (Bytes.get bs (i lsr 3)) land (1 lsl (i land 7)) <> 0 in
  let set bs i =
    Bytes.set bs (i lsr 3)
      (Char.chr (Char.code (Bytes.get bs (i lsr 3)) lor (1 lsl (i land 7))))
  in
  (* deferred writes of the current row, as a growable flat-offset buffer *)
  let pend = ref (Array.make 256 0) and pn = ref 0 in
  let push x =
    if !pn = Array.length !pend then begin
      let a = Array.make (2 * !pn) 0 in
      Array.blit !pend 0 a 0 !pn;
      pend := a
    end;
    !pend.(!pn) <- x;
    incr pn
  in
  let iterations = ref 0 and loads = ref 0 and stores = ref 0 in
  let flush () =
    for i = 0 to !pn - 1 do
      let x = !pend.(i) in
      if not (get written x) then begin
        set written x;
        incr stores
      end
    done;
    pn := 0
  in
  let dims = cx.M.dims in
  let rel = Array.make dims 0 in
  (* Flat offset of an access at the row's lowest instance: region base,
     plus the dense slot page, plus the spatial offset of the box corner
     the row sweep starts from.  Adding rel·stride per instance then
     lands on the exact cell. *)
  let rowbase (row : M.row) (ai : M.ainfo) =
    let arr = ai.M.arr in
    let b = match fp.M.boxes.(arr) with Some b -> b | None -> assert false in
    let st = strides.(arr) in
    let sdense = slotmap.(arr).(M.slot_of row ai) in
    let c = ref (base.(arr) + (sdense * spatial_sz.(arr))) in
    c := !c + ((hs.M.s00 + row.M.blo + ai.M.acc.offsets.(0) - b.M.lo.(0)) * st.(0));
    for d = 1 to dims - 1 do
      c :=
        !c
        + (((7 * w.(d)) - row.M.fl.(d - 1) + ai.M.acc.offsets.(d) - b.M.lo.(d))
          * st.(d))
    done;
    (!c, st)
  in
  Array.iter
    (fun (row : M.row) ->
      flush ();
      let si = cx.M.stmts.(row.M.sidx) in
      let rbases = Array.map (rowbase row) si.M.reads in
      let wbase = rowbase row si.M.write in
      let nreads = Array.length rbases in
      let leaf () =
        incr iterations;
        for r = 0 to nreads - 1 do
          let c, st = rbases.(r) in
          let f = ref c in
          for d = 0 to dims - 1 do
            f := !f + (rel.(d) * st.(d))
          done;
          let f = !f in
          if not (get written f || get loaded f) then begin
            incr loads;
            set loaded f
          end
        done;
        let c, st = wbase in
        let f = ref c in
        for d = 0 to dims - 1 do
          f := !f + (rel.(d) * st.(d))
        done;
        push !f
      in
      let rec go d =
        if d = dims then leaf ()
        else begin
          let n = if d = 0 then row.M.bhi - row.M.blo + 1 else w.(d) in
          for i = 0 to n - 1 do
            rel.(d) <- i;
            go (d + 1)
          done
        end
      in
      go 0)
    hs.M.rows;
  flush ();
  {
    iterations = !iterations;
    loads = !loads;
    stores = !stores;
    footprint_box = fp.M.floats;
    ratio = float_of_int !loads /. float_of_int !iterations;
  }

let tile_stats (t : Hybrid.t) =
  let cx = M.ctx ~deps:t.deps t.prog in
  let hs = M.hslice_of_hex cx t.hex in
  let fp = M.footprint hs ~w:t.w in
  tile_stats_dense cx hs fp ~w:t.w

let iterations_formula_3d ~h ~w0 ~w1 ~w2 =
  2 * (1 + (2 * h) + (h * h) + (w0 * (h + 1))) * w1 * w2

let rec cartesian = function
  | [] -> [ [] ]
  | choices :: rest ->
      let tails = cartesian rest in
      List.concat_map (fun c -> List.map (fun t -> c :: t) tails) choices

(* Same element order as [cartesian], but lazy: a pruned slice never
   materializes its tail. *)
let rec cartesian_seq = function
  | [] -> Seq.return []
  | choices :: rest ->
      List.to_seq choices
      |> Seq.concat_map (fun c -> Seq.map (fun t -> c :: t) (cartesian_seq rest))

(* The frozen pre-staging search: enumerate every candidate eagerly,
   evaluate all of them with the reference accounting, fold.  This is
   the oracle the staged engine's choice is differentially tested
   against, and the baseline `bench tilesearch` times. *)
let select_exhaustive ?pool prog ~h_candidates ~w0_candidates ~wi_candidates
    ~shared_mem_floats ?require_multiple () =
  Obs.span "tiling.tile_size_select_exhaustive" (fun () ->
      let k = List.length prog.Stencil.stmts in
      let deps = Dep.analyze prog in
      let cone = Cone.of_deps deps ~dim:0 in
      let candidates =
        List.concat_map
          (fun h ->
            if (h + 1) mod k <> 0 then []
            else
              List.concat_map
                (fun w0 ->
                  if w0 < Hexagon.min_w0 ~h cone then []
                  else
                    List.filter_map
                      (fun wis ->
                        let w = Array.of_list (w0 :: wis) in
                        let innermost = w.(Array.length w - 1) in
                        let aligned =
                          match require_multiple with
                          | Some m -> innermost mod m = 0
                          | None -> true
                        in
                        if aligned then Some (h, w) else None)
                      (cartesian wi_candidates))
                w0_candidates)
          h_candidates
        |> Array.of_list
      in
      let eval (h, w) =
        let t = Hybrid.make prog ~h ~w in
        (h, w, tile_stats_ref t)
      in
      let evaluated =
        match pool with
        | Some p -> Par.map p eval candidates
        | None -> Array.map eval candidates
      in
      let best = ref None in
      Array.iter
        (fun (h, w, stats) ->
          if stats.footprint_box <= shared_mem_floats then
            match !best with
            | None -> best := Some { h; w; stats }
            | Some b ->
                if
                  stats.ratio < b.stats.ratio -. 1e-12
                  || (Float.abs (stats.ratio -. b.stats.ratio) <= 1e-12
                     && stats.iterations > b.stats.iterations)
                then best := Some { h; w; stats })
        evaluated;
      !best)

(* Candidate stream, in exactly the order the exhaustive search folds:
   h outer, then w0, then the cartesian product of the inner widths.
   The [bool] marks candidates whose whole (h, w0) slice is already
   known infeasible: the footprint is strictly increasing in every
   inner width, so if the per-dimension minimum busts the budget the
   entire product does — those candidates are emitted (they must be
   counted) but never analyzed further. *)
let candidate_seq ~k ~cone ~slice ~budget ~h_candidates ~w0_candidates
    ~wi_candidates ~require_multiple =
  let wi_nonempty = List.for_all (fun l -> l <> []) wi_candidates in
  let wi_min =
    if wi_nonempty then
      List.map (fun l -> List.fold_left min (List.hd l) (List.tl l)) wi_candidates
    else []
  in
  List.to_seq h_candidates
  |> Seq.concat_map (fun h ->
         if (h + 1) mod k <> 0 then Seq.empty
         else
           List.to_seq w0_candidates
           |> Seq.concat_map (fun w0 ->
                  if w0 < Hexagon.min_w0 ~h cone then Seq.empty
                  else
                    let slice_infeasible =
                      wi_nonempty
                      && (let hsl : M.hslice = slice h w0 in
                          let wmin = Array.of_list (w0 :: wi_min) in
                          (M.footprint hsl ~w:wmin).M.floats > budget)
                    in
                    cartesian_seq wi_candidates
                    |> Seq.filter_map (fun wis ->
                           let w = Array.of_list (w0 :: wis) in
                           let innermost = w.(Array.length w - 1) in
                           let aligned =
                             match require_multiple with
                             | Some m -> innermost mod m = 0
                             | None -> true
                           in
                           if aligned then Some (h, w, slice_infeasible) else None)))

let rec seq_take n seq =
  if n = 0 then ([], seq)
  else
    match seq () with
    | Seq.Nil -> ([], Seq.empty)
    | Seq.Cons (x, rest) ->
        let xs, r = seq_take (n - 1) rest in
        (x :: xs, r)

(* Screening runs on the main domain in candidate order; only the exact
   evaluation of survivors fans out, one fixed-size wave at a time, so
   counters, the running upper bound and the final fold are identical at
   every [--jobs] value. Within a wave, [Par.map] hands each domain a
   contiguous static shard of survivors (with stealing once a shard runs
   dry), and every evaluation hits the process-shared dependence and FM
   projection caches — candidates differing only in tile size share the
   program analysis across domains instead of recomputing it per
   domain. The wave size is part of the determinism contract: the upper
   bound tightens between waves, so changing it changes which
   candidates are exactly evaluated (and the [exact_evals] report). *)
let wave_size = 32

(* Why pruning cannot change the selected choice: the fold only ever
   installs a candidate whose exact ratio is within 1e-12 of the
   running minimum.  [ubound] is maintained as a true upper bound on
   that minimum (analytic upper bounds of screened candidates, exact
   ratios of evaluated ones), so a candidate with
   [lb_ratio > ubound + 1e-6] has an exact ratio strictly above every
   later value of the running minimum — the 1e-6 margin dwarfs the
   worst-case 1e-12-per-tie drift of the running best across the whole
   candidate list.  Removing such a candidate from the fold leaves the
   sequence of best-updates, and hence the selected choice, bit
   identical. *)
let prune_margin = 1e-6

let select_with_report ?pool prog ~h_candidates ~w0_candidates ~wi_candidates
    ~shared_mem_floats ?require_multiple () =
  Obs.span "tiling.tile_size_select" (fun () ->
      Obs.annot "stencil" (Obs.Str prog.Stencil.name);
      let k = List.length prog.Stencil.stmts in
      let deps = Dep.analyze prog in
      let cone = Cone.of_deps deps ~dim:0 in
      let cx = M.ctx ~deps prog in
      let slices : (int * int, M.hslice) Hashtbl.t = Hashtbl.create 16 in
      let slice h w0 =
        match Hashtbl.find_opt slices (h, w0) with
        | Some s -> s
        | None ->
            let s = M.hslice cx ~h ~w0 in
            Hashtbl.replace slices (h, w0) s;
            s
      in
      let cands =
        candidate_seq ~k ~cone ~slice ~budget:shared_mem_floats ~h_candidates
          ~w0_candidates ~wi_candidates ~require_multiple
      in
      let candidates = ref 0
      and feasible = ref 0
      and pruned_infeasible = ref 0
      and pruned_dominated = ref 0
      and exact_evals = ref 0 in
      let ubound = ref infinity in
      let best = ref None in
      let eval (h, w, hsl, fp) =
        (h, w, tile_stats_dense cx hsl fp ~w)
      in
      let screen (h, w, slice_infeasible) =
        incr candidates;
        Obs.incr "tiling.tilesize_candidates";
        if slice_infeasible then begin
          incr pruned_infeasible;
          Obs.incr "tiling.tilesize_pruned_analytic";
          None
        end
        else begin
          let hsl = slice h w.(0) in
          let e = M.estimate hsl ~w in
          if e.M.fp.M.floats > shared_mem_floats then begin
            incr pruned_infeasible;
            Obs.incr "tiling.tilesize_pruned_analytic";
            None
          end
          else begin
            incr feasible;
            Obs.incr "tiling.tilesize_feasible";
            let iters = float_of_int e.M.iterations in
            let lb = float_of_int e.M.loads_lb /. iters in
            let ub = float_of_int e.M.loads_ub /. iters in
            let keep = not (lb > !ubound +. prune_margin) in
            if ub < !ubound then ubound := ub;
            if keep then Some (h, w, hsl, e.M.fp)
            else begin
              incr pruned_dominated;
              Obs.incr "tiling.tilesize_pruned_analytic";
              None
            end
          end
        end
      in
      let absorb (h, w, stats) =
        incr exact_evals;
        Obs.incr "tiling.tilesize_exact_evals";
        if stats.footprint_box <= shared_mem_floats then begin
          (match !best with
          | None -> best := Some { h; w; stats }
          | Some b ->
              if
                stats.ratio < b.stats.ratio -. 1e-12
                || (Float.abs (stats.ratio -. b.stats.ratio) <= 1e-12
                   && stats.iterations > b.stats.iterations)
              then best := Some { h; w; stats });
          if stats.ratio < !ubound then ubound := stats.ratio
        end
      in
      let rec drain seq =
        let wave, rest = seq_take wave_size seq in
        if wave <> [] then begin
          let survivors = Array.of_list (List.filter_map screen wave) in
          let results =
            match pool with
            | Some p -> Par.map p eval survivors
            | None -> Array.map eval survivors
          in
          Array.iter absorb results;
          drain rest
        end
      in
      drain cands;
      Obs.annot "candidates_tried" (Obs.Int !candidates);
      Obs.annot "candidates_feasible" (Obs.Int !feasible);
      Obs.annot "candidates_pruned_analytic"
        (Obs.Int (!pruned_infeasible + !pruned_dominated));
      Obs.annot "exact_evals" (Obs.Int !exact_evals);
      (match !best with
      | Some c ->
          Obs.annot "chosen_h" (Obs.Int c.h);
          Obs.annot "chosen_w"
            (Obs.Str (Fmt.str "%a" Fmt.(array ~sep:(any ",") int) c.w));
          Obs.annot "chosen_ratio" (Obs.Float c.stats.ratio)
      | None -> Obs.annot "chosen_h" (Obs.Str "none"));
      ( !best,
        {
          candidates = !candidates;
          feasible = !feasible;
          pruned_infeasible = !pruned_infeasible;
          pruned_dominated = !pruned_dominated;
          exact_evals = !exact_evals;
        } ))

let select ?pool prog ~h_candidates ~w0_candidates ~wi_candidates
    ~shared_mem_floats ?require_multiple () =
  fst
    (select_with_report ?pool prog ~h_candidates ~w0_candidates ~wi_candidates
       ~shared_mem_floats ?require_multiple ())

let pp_stats ppf s =
  Fmt.pf ppf "iters=%d loads=%d stores=%d box=%d ratio=%.4f" s.iterations s.loads
    s.stores s.footprint_box s.ratio

let pp_choice ppf c =
  Fmt.pf ppf "h=%d w=[%a] %a" c.h Fmt.(array ~sep:(any ", ") int) c.w pp_stats c.stats

let pp_report ppf r =
  Fmt.pf ppf "candidates=%d feasible=%d pruned(infeasible=%d dominated=%d) exact_evals=%d"
    r.candidates r.feasible r.pruned_infeasible r.pruned_dominated r.exact_evals

(* The CLI's candidate grid, factored here so `hextile tilesize` and the
   serve daemon search the identical space: a request answered by the
   daemon must be bit-identical to the one-shot command. *)
type spec = {
  h_candidates : int list;
  w0_candidates : int list;
  wi_candidates : int list list;
  shared_mem_floats : int;
  require_multiple : int;
}

let default_spec prog =
  let dims = Stencil.spatial_dims prog in
  {
    h_candidates = [ 1; 2; 3; 5 ];
    w0_candidates = [ 2; 4; 7; 8 ];
    wi_candidates =
      List.init (dims - 1) (fun d ->
          if d = dims - 2 then [ 32; 64 ] else [ 4; 6; 10 ]);
    shared_mem_floats = 48 * 1024 / 4;
    require_multiple = (if dims > 1 then 32 else 1);
  }

let select_spec ?pool prog (s : spec) =
  select_with_report ?pool prog ~h_candidates:s.h_candidates
    ~w0_candidates:s.w0_candidates ~wi_candidates:s.wi_candidates
    ~shared_mem_floats:s.shared_mem_floats ~require_multiple:s.require_multiple
    ()
