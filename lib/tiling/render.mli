(** ASCII renderings of the tiling figures.

    [pattern] draws the two-phase hexagonal tiling of the [(u, s0)] plane
    in the style of Figure 5 — phase 0 tiles as letters [A, B, ...] keyed
    by [S0] parity, phase 1 tiles as [a, b, ...]. [tile] reproduces
    Figure 4 (one hexagon). *)

val tile : Hexagon.t -> string

val pattern :
  Hex_schedule.t -> u_range:int * int -> s0_range:int * int -> string
