(** Classical (parallelogram) tiling of the inner spatial dimensions
    (Section 3.4).

    Each inner dimension [si] is stripmined with width [wi] after skewing
    by the lower cone slope: the skewed coordinate is
    [v = si + ⌊δ1i · u⌋] where [u] is the normalized intra-tile time
    (equations (15)/(16) — which equals the local hexagonal coordinate
    [a]). Then [Si = ⌊v/wi⌋] (equation (14)) and the intra-tile coordinate
    is [s'i = v mod wi] (equation (17)). Tiles along these dimensions
    execute sequentially, which is what enables inter-tile reuse
    (Section 4.2.2). *)

type t = { delta1 : Hextile_util.Rat.t; w : int }

val make : delta1:Hextile_util.Rat.t -> w:int -> t
(** Raises [Invalid_argument] if [w < 1] or [delta1 < 0]. *)

val skew : t -> u:int -> si:int -> int
(** [v = si + ⌊δ1·u⌋]. *)

val tile : t -> u:int -> si:int -> int
val intra : t -> u:int -> si:int -> int

val si_of : t -> u:int -> tile:int -> intra:int -> int
(** Inverse: the [si] whose skewed coordinate decomposes as given. *)

val tile_range : t -> u_max:int -> lo:int -> hi:int -> int * int
(** Inclusive range of tile indices touched by [si ∈ [lo, hi]] over
    normalized times [0..u_max]. *)
