(** The two-phase hexagonal tile schedule on the [(u, s0)] plane
    (Section 3.3.3, Figure 5).

    Maps each point to tile coordinates [(T, phase, S0)] and local box
    coordinates [(a, b)]; phase 0 tiles of a time tile [T] execute before
    its phase 1 tiles, and tiles sharing [(T, phase)] are mutually
    independent (parallel wavefront). *)

type t = {
  hex : Hexagon.t;
  drift : int;  (** [⌊δ1·h⌋ - ⌊δ0·h⌋], the per-T horizontal box drift *)
}

val make : Hexagon.t -> t

val time_tile : t -> phase:int -> u:int -> int
(** [T] per equations (2) (phase 0) and (4) (phase 1). *)

val local : t -> phase:int -> u:int -> s0:int -> int * int
(** Local box coordinates [(a, b)]. *)

val space_tile : t -> phase:int -> u:int -> s0:int -> int
(** [S0] per equations (3) and (5). *)

val phase_of : t -> u:int -> s0:int -> int
(** The unique phase whose hexagon contains the point. Raises
    [Invalid_argument] if the point is in both or neither — that would
    contradict the partition theorem, so it doubles as a self-check. *)

val tile_of : t -> u:int -> s0:int -> int * int * int
(** [(T, phase, S0)] of the owning tile. *)

val sched_vector : t -> u:int -> s0:int -> int array
(** The 5-vector [(T, phase, S0, a, b)]; lexicographic order on the first
    four components (with [b] parallel) is the execution order. *)

val tile_origin : t -> phase:int -> tt:int -> s_tile:int -> int * int
(** The [(u, s0)] of local coordinate [(0, 0)] in the given tile's box. *)

val tile_points : t -> phase:int -> tt:int -> s_tile:int -> (int * int) list
(** All [(u, s0)] points of a tile — the hexagon translated to its box. *)

val qmap : t -> phase:int -> Hextile_poly.Qmap.t
(** The schedule as a quasi-affine map [[u, s0] -> [T, S0, a, b]] — what
    the paper's Figure 6 writes out in constraint form. *)

val tile_poly : t -> phase:int -> tt:int -> s_tile:int -> Hextile_poly.Polyhedron.t
(** One tile as a polyhedron over global [(u, s0)] coordinates — the
    hexagon constraints translated to the tile's box origin. Its integer
    points equal {!tile_points}. *)
