(** The hybrid hexagonal/classical tiling (Section 3.6).

    Combines the hexagonal schedule on [(u, s0)] with classical tilings of
    [s1..sn], mapping each statement instance to

    [[T, phase, S0, S1, ..., Sn, t', s'0, s'1, ..., s'n]]

    where [u = k·t + i] is the canonical schedule time of statement [i] at
    time iteration [t]. Execution semantics (Section 4.1): [T] and [phase]
    are the host loop (one kernel per phase); [S0] indexes parallel thread
    blocks; [S1..Sn] and [t'] are sequential loops inside the kernel;
    [s'0..s'n] are parallel thread dimensions with a barrier after every
    [t'] step. *)

open Hextile_deps
open Hextile_ir

type coords = {
  phase : int;
  tt : int;  (** time tile T *)
  tiles : int array;  (** [S0; S1; ...; Sn] *)
  a : int;  (** intra-tile time [t'] *)
  intra : int array;  (** [s'0 (= b); s'1; ...; s'n] *)
}

type t = {
  prog : Stencil.t;
  k : int;  (** number of statements *)
  dims : int;  (** spatial dimensions n+1 *)
  deps : Dep.t list;
  cone : Cone.t;  (** cone of the hexagonally tiled dimension s0 *)
  h : int;
  w : int array;  (** tile widths [w0; ...; wn] *)
  hex : Hexagon.t;
  hs : Hex_schedule.t;
  classical : Classical.t array;  (** for dims 1..n (length dims-1) *)
}

val make :
  ?hex_dim:int ->
  ?deps:Dep.t list ->
  ?cone:Cone.t ->
  ?hex:Hexagon.t ->
  Stencil.t ->
  h:int ->
  w:int array ->
  t
(** Build the hybrid tiling for a program. [w] has one width per spatial
    dimension. [hex_dim] (default 0) chooses which spatial dimension is
    hexagonally tiled; currently only 0 is supported (the IR convention
    puts the stride-1 dimension last, as the paper requires).
    Raises [Invalid_argument] on bad sizes or an invalid program.

    [deps], [cone] and [hex] let callers that build many tilings of the
    same program (the tile-size search) reuse the per-program analysis
    and the per-[(h, w0)] hexagon instead of recomputing them per
    candidate. They must equal what [make] would compute itself
    ([Dep.analyze prog], [Cone.of_deps deps ~dim:0],
    [Hexagon.make ~h ~w0:w.(0) cone]); a hexagon whose [(h, w0)] does
    not match is rejected, the rest is trusted. *)

val instance_u : t -> stmt:int -> tstep:int -> int
(** Canonical schedule time [u = k·t + i]. *)

val coords : t -> u:int -> s:int array -> coords
(** Tile/intra coordinates of a schedule point. *)

val vector : t -> coords -> int array
(** The full schedule vector [[T; phase; S0..Sn; t'; s'0..s'n]]. *)

val precedes : t -> coords -> coords -> bool
(** Whether a dependence from the first to the second instance is honored
    by the parallel execution model: strictly earlier [(T, phase)]; or the
    same hexagonal tile with the consumer in a lexicographically later
    classical tile; or the same tile everywhere with strictly increasing
    [t']. Same [(T, phase)] but different [S0] is never legal (those tiles
    run concurrently). *)

val check_legality : t -> (string -> int) -> (unit, string) result
(** Exhaustively verify [precedes] for every dependence instance of the
    concrete program (all statement instances × analyzed distance
    vectors whose endpoints are in the domain). Meant for tests and small
    problem sizes. *)

val point_of_coords : t -> coords -> (int * int array) option
(** Reconstruct [(u, s)] from coordinates; [None] if the local coordinates
    fall outside the hexagon (not every [(a, b)] pair is a tile point). *)

val domain_u_bound : t -> (string -> int) -> int
(** Exclusive upper bound on [u]: [k · steps]. *)

val stmt_of_u : t -> int -> int
(** [u mod k] — the statement executing at schedule time [u]. *)

val tstep_of_u : t -> int -> int
