(** Tile size selection by load-to-compute ratio (Section 3.7).

    For a generic (non-boundary) tile the number of iterations and the
    number of global loads are computed exactly by enumerating the tile's
    integer points — the automated counterpart of the paper's manually
    derived counting functions. Candidate sizes whose shared-memory
    footprint (rectangular-box over-approximation, as allocated by the
    code generator) fits the budget are ranked by loads/iteration. *)

open Hextile_ir

type stats = {
  iterations : int;  (** statement instances per full tile *)
  loads : int;
      (** distinct global cells read before any intra-tile write *)
  stores : int;  (** distinct cells written *)
  footprint_box : int;
      (** floats of shared memory for the per-array bounding boxes *)
  ratio : float;  (** loads /. iterations *)
}

type choice = { h : int; w : int array; stats : stats }

val tile_stats : Hybrid.t -> stats
(** Statistics of one generic interior tile of the given tiling. *)

val iterations_formula_3d : h:int -> w0:int -> w1:int -> w2:int -> int
(** The paper's closed form [2(1+2h+h²+w0(h+1))·w1·w2], valid for
    3D stencils with [δ0 = δ1 = 1]. *)

val select :
  ?pool:Hextile_par.Par.pool ->
  Stencil.t ->
  h_candidates:int list ->
  w0_candidates:int list ->
  wi_candidates:int list list ->
  shared_mem_floats:int ->
  ?require_multiple:int ->
  unit ->
  choice option
(** Exhaustive search over the candidate lists; [wi_candidates] has one
    list per inner spatial dimension. [require_multiple] constrains the
    innermost width (warp-size alignment, Section 4.2.3). [h] candidates
    violating the [h+1 ≡ 0 (mod k)] rule or [w0] below the convexity
    minimum are skipped silently. Returns the feasible choice with the
    smallest load-to-compute ratio (ties: more iterations first). *)

val pp_stats : stats Fmt.t
val pp_choice : choice Fmt.t
