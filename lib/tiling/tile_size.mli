(** Tile size selection by load-to-compute ratio (Section 3.7).

    A staged search. The analytic fast layer ({!Tile_model}) computes
    the exact iteration count and shared-memory footprint and sound
    load-ratio bounds of every candidate in closed form, rejecting
    infeasible and ratio-dominated candidates without enumerating a
    single statement instance — whole [(h, w0)] slices at once when the
    per-dimension minimum inner widths already bust the budget. Only
    the survivors reach the exact slow layer, which counts loads and
    stores with dense bitsets over the analytic footprint boxes (no
    hashing, no per-access allocation).

    Determinism contract: the selected {!choice} is bit-identical to
    the frozen exhaustive search ({!select_exhaustive}) on every
    program and candidate grid, at every [--jobs] value — pruning only
    removes candidates whose exact ratio provably exceeds every later
    value of the fold's running minimum, and all screening runs on the
    main domain in candidate order. *)

open Hextile_ir

type stats = {
  iterations : int;  (** statement instances per full tile *)
  loads : int;
      (** distinct global cells read before any intra-tile write *)
  stores : int;  (** distinct cells written *)
  footprint_box : int;
      (** floats of shared memory for the per-array bounding boxes *)
  ratio : float;  (** loads /. iterations *)
}

type choice = { h : int; w : int array; stats : stats }

type report = {
  candidates : int;  (** candidates generated (post grid filters) *)
  feasible : int;  (** candidates whose exact footprint fits the budget *)
  pruned_infeasible : int;  (** rejected analytically on footprint *)
  pruned_dominated : int;  (** rejected analytically on ratio bounds *)
  exact_evals : int;  (** candidates that reached the exact layer *)
}

val tile_stats : Hybrid.t -> stats
(** Statistics of one generic interior tile of the given tiling
    (dense-bitset accounting). *)

val tile_stats_ref : Hybrid.t -> stats
(** Reference implementation (hashtables keyed by cell identities);
    slower, kept as the differential-testing oracle for {!tile_stats}. *)

val iterations_formula_3d : h:int -> w0:int -> w1:int -> w2:int -> int
(** The paper's closed form [2(1+2h+h²+w0(h+1))·w1·w2], valid for
    3D stencils with [δ0 = δ1 = 1]. *)

val select :
  ?pool:Hextile_par.Par.pool ->
  Stencil.t ->
  h_candidates:int list ->
  w0_candidates:int list ->
  wi_candidates:int list list ->
  shared_mem_floats:int ->
  ?require_multiple:int ->
  unit ->
  choice option
(** Staged search over the candidate lists; [wi_candidates] has one
    list per inner spatial dimension. [require_multiple] constrains the
    innermost width (warp-size alignment, Section 4.2.3). [h] candidates
    violating the [h+1 ≡ 0 (mod k)] rule or [w0] below the convexity
    minimum are skipped silently. Returns the feasible choice with the
    smallest load-to-compute ratio (ties: more iterations first). *)

val select_with_report :
  ?pool:Hextile_par.Par.pool ->
  Stencil.t ->
  h_candidates:int list ->
  w0_candidates:int list ->
  wi_candidates:int list list ->
  shared_mem_floats:int ->
  ?require_multiple:int ->
  unit ->
  choice option * report
(** Like {!select}, additionally returning the search counters. *)

val select_exhaustive :
  ?pool:Hextile_par.Par.pool ->
  Stencil.t ->
  h_candidates:int list ->
  w0_candidates:int list ->
  wi_candidates:int list list ->
  shared_mem_floats:int ->
  ?require_multiple:int ->
  unit ->
  choice option
(** The frozen pre-staging search: every candidate evaluated exactly
    with {!tile_stats_ref}, no pruning. Oracle and benchmark baseline;
    {!select} must return the same choice. *)

val pp_stats : stats Fmt.t
val pp_choice : choice Fmt.t
val pp_report : report Fmt.t

(** {2 Candidate specification}

    The default candidate grid used by [hextile tilesize] and the serve
    daemon — one shared definition so a daemon response is bit-identical
    to the one-shot command. *)

type spec = {
  h_candidates : int list;
  w0_candidates : int list;
  wi_candidates : int list list;
  shared_mem_floats : int;
  require_multiple : int;
}

val default_spec : Stencil.t -> spec
(** [h ∈ {1,2,3,5}], [w0 ∈ {2,4,7,8}], dimension-based inner widths
    (innermost {32,64}, others {4,6,10}), a 48 KiB single-precision
    shared-memory budget, and warp-multiple innermost width for
    multi-dimensional stencils. *)

val select_spec :
  ?pool:Hextile_par.Par.pool -> Stencil.t -> spec -> choice option * report
(** {!select_with_report} over a {!spec}. *)
