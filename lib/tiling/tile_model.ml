open Hextile_ir
open Hextile_deps
open Hextile_util

(* Closed-form per-candidate analysis of one generic hybrid tile: exact
   iteration and footprint counts plus sound lower/upper bounds on the
   number of global loads, all from the hexagon row ranges, the
   classical widths and the static access offsets — no statement
   instance is ever enumerated. The analysis mirrors
   [Tile_size.iter_tile_instances] (generic tile tt=7, phase=1,
   s_tile=7) cell for cell, which the property tests enforce. *)

type box = { lo : int array; hi : int array }

let volume b =
  let n = Array.length b.lo in
  let rec go i acc =
    if i = n then acc
    else
      let e = b.hi.(i) - b.lo.(i) + 1 in
      if e <= 0 then 0 else go (i + 1) (acc * e)
  in
  go 0 1

let inter a b =
  {
    lo = Array.mapi (fun i x -> max x b.lo.(i)) a.lo;
    hi = Array.mapi (fun i x -> min x b.hi.(i)) a.hi;
  }

let hull a b =
  {
    lo = Array.mapi (fun i x -> min x b.lo.(i)) a.lo;
    hi = Array.mapi (fun i x -> max x b.hi.(i)) a.hi;
  }

(* |r \ p| and |r \ (p ∪ w)| by inclusion–exclusion over boxes. *)
let diff1 r p = match p with None -> volume r | Some p -> volume r - volume (inter r p)

let diff2 r p w =
  match (p, w) with
  | None, None -> volume r
  | Some p, None -> volume r - volume (inter r p)
  | None, Some w -> volume r - volume (inter r w)
  | Some p, Some w ->
      volume r - volume (inter r p) - volume (inter r w)
      + volume (inter (inter r p) w)

type ainfo = {
  acc : Stencil.access;
  arr : int;  (** index into [array_names] *)
  fold : int;  (** storage slots of the array; 1 when not folded *)
  id : int;  (** unique access-occurrence id *)
}

type sinfo = { reads : ainfo array; write : ainfo }

type ctx = {
  prog : Stencil.t;
  k : int;
  dims : int;
  deps : Dep.t list;
  cone : Cone.t;
  delta1 : Rat.t array;  (** inner-dimension slopes, length [dims - 1] *)
  stmts : sinfo array;
  narrays : int;
  array_names : string array;
}

let ctx ?deps (prog : Stencil.t) =
  (match Stencil.validate prog with
  | Ok () -> ()
  | Error m -> invalid_arg ("Tile_model.ctx: " ^ m));
  let deps = match deps with Some d -> d | None -> Dep.analyze prog in
  let cone = Cone.of_deps deps ~dim:0 in
  let k = List.length prog.stmts in
  let dims = Stencil.spatial_dims prog in
  let delta1 = Array.init (dims - 1) (fun i -> Cone.delta1_only deps ~dim:(i + 1)) in
  let array_names =
    Array.of_list (List.map (fun (d : Stencil.array_decl) -> d.aname) prog.arrays)
  in
  let arr_index name =
    let rec go i =
      if i >= Array.length array_names then
        invalid_arg ("Tile_model.ctx: unknown array " ^ name)
      else if String.equal array_names.(i) name then i
      else go (i + 1)
    in
    go 0
  in
  let next_id = ref 0 in
  let mk (acc : Stencil.access) =
    let decl = Stencil.array_decl prog acc.array in
    let id = !next_id in
    incr next_id;
    {
      acc;
      arr = arr_index acc.array;
      fold = (match decl.fold with Some m -> m | None -> 1);
      id;
    }
  in
  let stmts =
    Array.of_list
      (List.map
         (fun (s : Stencil.stmt) ->
           {
             reads = Array.of_list (List.map mk (Stencil.distinct_reads s));
             write = mk s.write;
           })
         prog.stmts)
  in
  {
    prog;
    k;
    dims;
    deps;
    cone;
    delta1;
    stmts;
    narrays = Array.length array_names;
    array_names;
  }

type row = {
  a : int;
  blo : int;
  bhi : int;  (** inclusive [b] range of the hexagon row *)
  sidx : int;  (** statement executing at this row *)
  tstep : int;  (** logical time step of the row *)
  fl : int array;  (** [⌊δ1_d · a⌋] per inner dimension *)
}

type hslice = {
  cx : ctx;
  h : int;
  w0 : int;
  hex : Hexagon.t;
  u0 : int;
  s00 : int;
  rows : row array;  (** non-empty rows, ascending [a] *)
}

let hslice_of_hex (cx : ctx) (hex : Hexagon.t) =
  let hs = Hex_schedule.make hex in
  let u0, s00 = Hex_schedule.tile_origin hs ~phase:1 ~tt:7 ~s_tile:7 in
  let rows = ref [] in
  for a = 0 to (2 * hex.h) + 1 do
    match Hexagon.row_range hex ~a with
    | None -> ()
    | Some (blo, bhi) ->
        let u = u0 + a in
        rows :=
          {
            a;
            blo;
            bhi;
            sidx = Intutil.fmod u cx.k;
            tstep = Intutil.fdiv u cx.k;
            fl = Array.map (fun d -> Rat.floor (Rat.mul_int d a)) cx.delta1;
          }
          :: !rows
  done;
  { cx; h = hex.h; w0 = hex.w0; hex; u0; s00; rows = Array.of_list (List.rev !rows) }

let hslice cx ~h ~w0 = hslice_of_hex cx (Hexagon.make ~h ~w0 cx.cone)

let slot_of row (ai : ainfo) = Intutil.fmod (row.tstep + ai.acc.time_off) ai.fold

(* The (absolute) spatial box an access touches over one hexagon row:
   dimension 0 sweeps the row's [b] range, inner dimension [d] sweeps
   the classical intra-tile window [7·w_d - ⌊δ1_d·a⌋ .. +w_d-1], both
   shifted by the access offset. *)
let access_box hs ~w row (ai : ainfo) =
  let dims = hs.cx.dims in
  let lo = Array.make dims 0 and hi = Array.make dims 0 in
  lo.(0) <- hs.s00 + row.blo + ai.acc.offsets.(0);
  hi.(0) <- hs.s00 + row.bhi + ai.acc.offsets.(0);
  for d = 1 to dims - 1 do
    let base = (7 * w.(d)) - row.fl.(d - 1) + ai.acc.offsets.(d) in
    lo.(d) <- base;
    hi.(d) <- base + w.(d) - 1
  done;
  { lo; hi }

type footprint = {
  floats : int;
  boxes : box option array;
  slots : int array array;
}

let footprint hs ~w =
  let cx = hs.cx in
  let boxes = Array.make cx.narrays None in
  let slotsets = Array.make cx.narrays [] in
  let touch row ai =
    let b = access_box hs ~w row ai in
    (boxes.(ai.arr) <-
       (match boxes.(ai.arr) with None -> Some b | Some cur -> Some (hull cur b)));
    let s = slot_of row ai in
    if not (List.mem s slotsets.(ai.arr)) then
      slotsets.(ai.arr) <- s :: slotsets.(ai.arr)
  in
  Array.iter
    (fun row ->
      let si = cx.stmts.(row.sidx) in
      Array.iter (touch row) si.reads;
      touch row si.write)
    hs.rows;
  let floats = ref 0 in
  Array.iteri
    (fun i ob ->
      match ob with
      | None -> ()
      | Some b ->
          floats := !floats + (volume b * max 1 (List.length slotsets.(i))))
    boxes;
  {
    floats = !floats;
    boxes;
    slots = Array.map (fun l -> Array.of_list (List.sort compare l)) slotsets;
  }

type estimate = {
  iterations : int;
  fp : footprint;
  loads_lb : int;
  loads_ub : int;
}

(* Loads bounds. Per (array, slot) and per read access, the cells the
   access touches at row [a] form a box whose per-dimension interval
   endpoints are monotone (inner dims) or row-convex (dim 0), so the set
   of rows containing a fixed cell is contiguous: subtracting only the
   access's previous same-slot row box from the current one counts every
   cell exactly once, at its first-touch row. Subtracting additionally
   the hull of the writes flushed before that row over-approximates the
   written set, so the per-access sum undercounts first-read-unwritten
   cells — a sound lower bound; the per-(array, slot) bound takes the
   max over its read accesses (distinct accesses may read the same
   cells). The upper bound per (array, slot) is the smaller of the hull
   of all its read boxes and the sum of the per-access exact union
   sizes. *)
let estimate hs ~w =
  let cx = hs.cx in
  let fp = footprint hs ~w in
  let rowsum = Array.fold_left (fun acc r -> acc + (r.bhi - r.blo + 1)) 0 hs.rows in
  let inner = ref 1 in
  for d = 1 to cx.dims - 1 do
    inner := !inner * w.(d)
  done;
  let iterations = rowsum * !inner in
  let prev : (int * int, box) Hashtbl.t = Hashtbl.create 32 in
  let lb : (int * int, int) Hashtbl.t = Hashtbl.create 32 in
  let ub : (int * int, int) Hashtbl.t = Hashtbl.create 32 in
  let whull : (int * int, box) Hashtbl.t = Hashtbl.create 8 in
  let rhull : (int * int, box) Hashtbl.t = Hashtbl.create 8 in
  let groups : (int * int, int list) Hashtbl.t = Hashtbl.create 8 in
  let bump tbl key v =
    Hashtbl.replace tbl key (v + Option.value ~default:0 (Hashtbl.find_opt tbl key))
  in
  let pending = ref [] in
  Array.iter
    (fun row ->
      (* writes of earlier rows flush at the row boundary *)
      List.iter
        (fun (gkey, b) ->
          Hashtbl.replace whull gkey
            (match Hashtbl.find_opt whull gkey with
            | None -> b
            | Some cur -> hull cur b))
        !pending;
      pending := [];
      let si = cx.stmts.(row.sidx) in
      Array.iter
        (fun ai ->
          let r = access_box hs ~w row ai in
          let s = slot_of row ai in
          let akey = (ai.id, s) and gkey = (ai.arr, s) in
          let p = Hashtbl.find_opt prev akey in
          bump lb akey (diff2 r p (Hashtbl.find_opt whull gkey));
          bump ub akey (diff1 r p);
          Hashtbl.replace prev akey r;
          Hashtbl.replace rhull gkey
            (match Hashtbl.find_opt rhull gkey with
            | None -> r
            | Some cur -> hull cur r);
          let ids = Option.value ~default:[] (Hashtbl.find_opt groups gkey) in
          if not (List.mem ai.id ids) then Hashtbl.replace groups gkey (ai.id :: ids))
        si.reads;
      let wb = access_box hs ~w row si.write in
      pending := ((si.write.arr, slot_of row si.write), wb) :: !pending)
    hs.rows;
  let loads_lb = ref 0 and loads_ub = ref 0 in
  Hashtbl.iter
    (fun gkey ids ->
      let (arr_lb, arr_ub) =
        List.fold_left
          (fun (mx, sum) id ->
            let l = Option.value ~default:0 (Hashtbl.find_opt lb (id, snd gkey)) in
            let u = Option.value ~default:0 (Hashtbl.find_opt ub (id, snd gkey)) in
            (max mx l, sum + u))
          (0, 0) ids
      in
      let hull_sz =
        match Hashtbl.find_opt rhull gkey with None -> 0 | Some b -> volume b
      in
      loads_lb := !loads_lb + arr_lb;
      loads_ub := !loads_ub + min hull_sz arr_ub)
    groups;
  { iterations; fp; loads_lb = !loads_lb; loads_ub = !loads_ub }

(* ---- per-class clipped closed forms ------------------------------------ *)

type clip = { cleft : int; cright : int }

let class_row_len (r : row) = function
  | None -> 0
  | Some c -> max 0 (r.bhi - r.blo + 1 - c.cleft - c.cright)

let check_clips (hs : hslice) clips =
  if Array.length clips <> Array.length hs.rows then
    invalid_arg "Tile_model: clips length must match hslice rows"

let class_columns (hs : hslice) ~clips =
  check_clips hs clips;
  let s = ref 0 in
  Array.iteri (fun i r -> s := !s + class_row_len r clips.(i)) hs.rows;
  !s

let class_columns_dense (hs : hslice) ~clips =
  check_clips hs clips;
  let s = ref 0 in
  Array.iteri
    (fun i r ->
      match clips.(i) with
      | None -> ()
      | Some c ->
          let lo = r.blo + c.cleft and hi = r.bhi - c.cright in
          for b = r.blo to r.bhi do
            if b >= lo && b <= hi then incr s
          done)
    hs.rows;
  !s

let class_syncs (hs : hslice) ~clips ~live =
  check_clips hs clips;
  let s = ref 0 in
  Array.iteri
    (fun i r -> if class_row_len r clips.(i) > 0 && live r then incr s)
    hs.rows;
  !s

let class_syncs_dense (hs : hslice) ~clips ~live =
  check_clips hs clips;
  let s = ref 0 in
  Array.iteri
    (fun i r ->
      match clips.(i) with
      | None -> ()
      | Some c ->
          let lo = r.blo + c.cleft and hi = r.bhi - c.cright in
          let any = ref false in
          for b = r.blo to r.bhi do
            if b >= lo && b <= hi then any := true
          done;
          if !any && live r then incr s)
    hs.rows;
  !s

let class_stores (hs : hslice) ~clips ~inner =
  check_clips hs clips;
  let s = ref 0 in
  Array.iteri
    (fun i r -> s := !s + (class_row_len r clips.(i) * inner r))
    hs.rows;
  !s

let class_stores_dense (hs : hslice) ~clips ~inner =
  check_clips hs clips;
  let s = ref 0 in
  Array.iteri
    (fun i r ->
      match clips.(i) with
      | None -> ()
      | Some c ->
          let lo = r.blo + c.cleft and hi = r.bhi - c.cright in
          for b = r.blo to r.bhi do
            if b >= lo && b <= hi then s := !s + inner r
          done)
    hs.rows;
  !s

let ceil_div a b = (a + b - 1) / b

let store_row_transactions ~n ~banks ~lanes =
  if n <= 0 then 0
  else begin
    let full = n / lanes and rem = n mod lanes in
    (full * ceil_div lanes banks) + if rem > 0 then ceil_div rem banks else 0
  end

let store_row_transactions_dense ~base ~n ~banks ~lanes =
  if n <= 0 then 0
  else begin
    let tx = ref 0 in
    let chunk = ref 0 in
    while !chunk < n do
      let c = min lanes (n - !chunk) in
      (* per-bank distinct-word sets, as Sim.bank_transactions builds them *)
      let per_bank = Array.make banks [] in
      for j = 0 to c - 1 do
        let w = base + !chunk + j in
        let b = ((w mod banks) + banks) mod banks in
        if not (List.mem w per_bank.(b)) then per_bank.(b) <- w :: per_bank.(b)
      done;
      tx := !tx + Array.fold_left (fun m l -> max m (List.length l)) 0 per_bank;
      chunk := !chunk + lanes
    done;
    !tx
  end

let tiles_nonempty (c : Classical.t) ~u ~lo ~hi =
  if lo > hi then 0
  else Classical.tile c ~u ~si:hi - Classical.tile c ~u ~si:lo + 1

let tiles_nonempty_dense (c : Classical.t) ~u_max ~u ~lo ~hi =
  if lo > hi then 0
  else begin
    let tlo, thi = Classical.tile_range c ~u_max ~lo ~hi in
    let n = ref 0 in
    for v = tlo to thi do
      let wlo = Classical.si_of c ~u ~tile:v ~intra:0 in
      let whi = Classical.si_of c ~u ~tile:v ~intra:(c.w - 1) in
      if max wlo lo <= min whi hi then incr n
    done;
    !n
  end

let coverage ~lo ~hi = max 0 (hi - lo + 1)

let coverage_dense (c : Classical.t) ~u_max ~u ~lo ~hi =
  let tlo, thi = Classical.tile_range c ~u_max ~lo ~hi in
  let s = ref 0 in
  for v = tlo to thi do
    let wlo = Classical.si_of c ~u ~tile:v ~intra:0 in
    let whi = Classical.si_of c ~u ~tile:v ~intra:(c.w - 1) in
    s := !s + max 0 (min whi hi - max wlo lo + 1)
  done;
  !s
