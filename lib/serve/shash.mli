(** Canonical structural hashing of frontend IR.

    Two programs that differ only in naming (program, parameter, array
    and statement names) and in a per-statement spatial translation of
    the iteration domain have the same {e canonical form} and therefore
    the same structural hash. The serve cache uses the hash to address
    its cross-request entry table so alpha-equivalent requests share the
    name-independent work (dependence analysis, tile-size search).

    The hash never stands alone: a table hit is verified by comparing
    canonical forms ({!equal_canon}), so a 64-bit collision degrades to
    an uncached computation, never to a wrong answer. Name-{e dependent}
    results (simulated grids — initial grid contents are seeded from
    array names — and generated code) must additionally be keyed by the
    original program; the cache layer does this. *)

open Hextile_ir

type canon
(** A canonical program: names alpha-renamed positionally (params [P0…],
    arrays [A0…], statements [S0…], program name dropped) and every
    statement's iteration domain translated so its write access has
    all-zero spatial offsets. *)

val canonicalize : Stencil.t -> canon * (string * string) list
(** The canonical form plus the parameter renaming as an
    [(original, canonical)] association list (for translating request
    environments into canonical keys). *)

val equal_canon : canon -> canon -> bool
(** Structural equality of canonical forms — the full-key verification
    run on every hash hit. *)

val hash : canon -> int64
(** FNV-1a (64-bit) over a flat serialization of the canonical form. *)

val write_offsets : Stencil.t -> int list list
(** Per statement, the spatial offsets of the write access — exactly the
    translation removed by offset normalization. [(canon, write_offsets)]
    therefore determines the program up to pure renaming: cache values
    that are renaming-invariant but {e not} translation-invariant (the
    tile-size choice — per-statement translation changes instance-space
    dependence distances) key on the pair, not on the canon alone. *)

val canon_env : (string * string) list -> (string * int) list -> (string * int) list
(** [canon_env renaming env] maps an environment over original parameter
    names to canonical names, sorted by canonical name. Unknown
    parameters are dropped (they cannot influence the program). *)

(** {2 FNV-1a primitives} (shared with the response grids-hash) *)

val fnv_init : int64
val fnv_byte : int64 -> int -> int64
val fnv_string : int64 -> string -> int64
val fnv_int : int64 -> int -> int64
val fnv_int64 : int64 -> int64 -> int64
val to_hex : int64 -> string
