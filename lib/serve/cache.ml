open Hextile_ir
module Oncemap = Hextile_par.Oncemap
module Json = Hextile_obs.Json
module Tile_size = Hextile_tiling.Tile_size

type ts_key = int list list * (string * int) list
type run_key = Stencil.t * (string * int) list * string * string * string * bool
type comp_key = Stencil.t * int option * int list option * (string * int) list

type entry = {
  canon : Shash.canon;
  ts : (ts_key, Tile_size.choice option * Tile_size.report) Oncemap.t;
  runs : (run_key, Json.t) Oncemap.t;
  compiles : (comp_key, Json.t) Oncemap.t;
}

type t = {
  entries : (int64, entry) Oncemap.t;
  hash_bits : int;
  entry_hits : int Atomic.t;
  entry_misses : int Atomic.t;
  collisions : int Atomic.t;
  ts_hits : int Atomic.t;
  ts_misses : int Atomic.t;
  run_hits : int Atomic.t;
  run_misses : int Atomic.t;
  comp_hits : int Atomic.t;
  comp_misses : int Atomic.t;
}

let create ?(hash_bits = 64) ?(bits = 10) () =
  {
    entries = Oncemap.create ~bits ();
    hash_bits = max 1 (min 64 hash_bits);
    entry_hits = Atomic.make 0;
    entry_misses = Atomic.make 0;
    collisions = Atomic.make 0;
    ts_hits = Atomic.make 0;
    ts_misses = Atomic.make 0;
    run_hits = Atomic.make 0;
    run_misses = Atomic.make 0;
    comp_hits = Atomic.make 0;
    comp_misses = Atomic.make 0;
  }

let truncate t h =
  if t.hash_bits >= 64 then h
  else Int64.logand h (Int64.sub (Int64.shift_left 1L t.hash_bits) 1L)

(* Find or create the entry for a program. The publish-once table means
   the first publisher of a truncated hash owns the slot forever; a
   later program with the same truncated hash but a different canonical
   form is a collision and runs uncached. The full-key verification —
   comparing complete canonical forms, not hashes — makes a 64-bit
   collision impossible to act on. *)
let lookup t (p : Stencil.t) =
  let canon, renaming = Shash.canonicalize p in
  let key = truncate t (Shash.hash canon) in
  let verified e =
    if Shash.equal_canon e.canon canon then begin
      Atomic.incr t.entry_hits;
      Some e
    end
    else begin
      Atomic.incr t.collisions;
      None
    end
  in
  let entry =
    match Oncemap.find t.entries key with
    | Some e -> verified e
    | None ->
        Atomic.incr t.entry_misses;
        let fresh =
          {
            canon;
            ts = Oncemap.create ~bits:6 ();
            runs = Oncemap.create ~bits:6 ();
            compiles = Oncemap.create ~bits:6 ();
          }
        in
        (* publish may hand back another domain's entry for this key —
           possibly for a different program — so re-verify the winner;
           winning with our own fresh entry stays counted as the miss *)
        let won = Oncemap.publish t.entries key fresh in
        if won == fresh then Some won else verified won
  in
  (entry, renaming)

let cached map hits misses key compute =
  match Oncemap.find map key with
  | Some v ->
      Atomic.incr hits;
      v
  | None ->
      Atomic.incr misses;
      Oncemap.publish map key (compute ())

let tilesize t entry ~prog ~renaming ~env compute =
  match entry with
  | None -> compute ()
  | Some e ->
      let key = (Shash.write_offsets prog, Shash.canon_env renaming env) in
      cached e.ts t.ts_hits t.ts_misses key compute

let run t entry ~key compute =
  match entry with
  | None -> compute ()
  | Some e -> cached e.runs t.run_hits t.run_misses key compute

let compile t entry ~key compute =
  match entry with
  | None -> compute ()
  | Some e -> cached e.compiles t.comp_hits t.comp_misses key compute

type stats = {
  entry_hits : int;
  entry_misses : int;
  collisions : int;
  tilesize_hits : int;
  tilesize_misses : int;
  run_hits : int;
  run_misses : int;
  compile_hits : int;
  compile_misses : int;
}

let stats (c : t) : stats =
  {
    entry_hits = Atomic.get c.entry_hits;
    entry_misses = Atomic.get c.entry_misses;
    collisions = Atomic.get c.collisions;
    tilesize_hits = Atomic.get c.ts_hits;
    tilesize_misses = Atomic.get c.ts_misses;
    run_hits = Atomic.get c.run_hits;
    run_misses = Atomic.get c.run_misses;
    compile_hits = Atomic.get c.comp_hits;
    compile_misses = Atomic.get c.comp_misses;
  }

let stats_json t =
  let s = stats t in
  Json.Obj
    [
      ("entry_hits", Json.Int s.entry_hits);
      ("entry_misses", Json.Int s.entry_misses);
      ("collisions", Json.Int s.collisions);
      ("tilesize_hits", Json.Int s.tilesize_hits);
      ("tilesize_misses", Json.Int s.tilesize_misses);
      ("run_hits", Json.Int s.run_hits);
      ("run_misses", Json.Int s.run_misses);
      ("compile_hits", Json.Int s.compile_hits);
      ("compile_misses", Json.Int s.compile_misses);
    ]
