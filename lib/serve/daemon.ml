module Par = Hextile_par.Par
module Json = Hextile_obs.Json

type config = { max_queue : int; max_wave : int }

let default_config = { max_queue = 256; max_wave = 64 }

(* One admitted line. [reply] routes the response to the owning
   transport endpoint (stdout, or one socket client). *)
type item = {
  reply : string -> unit;
  body : body;
}

and body =
  | Bad of Json.t * string  (** parse/validation failure: id, message *)
  | Shed of Json.t  (** bounced at admission: queue full *)
  | Work of Proto.request * float  (** parsed request, arrival time *)

let admit ~now ~queued ~(config : config) ~reply line =
  if String.trim line = "" then None
  else
    Some
      (match Proto.parse_request line with
      | Error (id, msg) -> { reply; body = Bad (id, msg) }
      | Ok r ->
          if queued >= config.max_queue then { reply; body = Shed r.id }
          else { reply; body = Work (r, now ()) })

(* Execute one wave. Work items are deduplicated on their work key and
   the unique requests run over the pool; every response is written in
   item order regardless of which domain computed it (Par.map delivers
   by index, and duplicates share the winner's payload). Returns true
   when a shutdown request was answered. *)
let exec_wave ~now ~cache ~pool (items : item list) =
  let deadline_ok arrival (r : Proto.request) =
    match r.timeout_ms with
    | None -> true
    | Some ms -> now () <= arrival +. (float_of_int ms /. 1000.)
  in
  let live =
    List.filter_map
      (function
        | { body = Work (r, arrival); _ } when deadline_ok arrival r ->
            Some (Proto.work_key r)
        | _ -> None)
      items
  in
  let uniq = List.sort_uniq compare live in
  let results =
    Par.map pool
      (fun r ->
        match Engine.execute ~cache r with
        | res -> res
        | exception e -> Error (Printexc.to_string e))
      (Array.of_list uniq)
  in
  let table = List.combine uniq (Array.to_list results) in
  let shutdown = ref false in
  List.iter
    (fun it ->
      let line =
        match it.body with
        | Bad (id, msg) -> Proto.error_line ~id msg
        | Shed id -> Proto.error_line ~id "shed: queue full"
        | Work (r, arrival) ->
            if not (deadline_ok arrival r) then
              Proto.error_line ~id:r.id "deadline exceeded"
            else begin
              if r.op = Proto.Shutdown then shutdown := true;
              match List.assoc (Proto.work_key r) table with
              | Ok payload -> Proto.ok_line ~id:r.id payload
              | Error msg -> Proto.error_line ~id:r.id msg
            end
      in
      it.reply line)
    items;
  !shutdown

(* ---- stdio transport --------------------------------------------------- *)

let run_lines ?(now = Unix.gettimeofday) ?(config = default_config) ~cache
    ~pool ~read_line ~write_line () =
  let rec collect acc n =
    if n >= config.max_wave then (List.rev acc, true)
    else
      match read_line () with
      | None -> (List.rev acc, false)
      | Some line when String.trim line = "" -> (List.rev acc, true)
      | Some line -> (
          match admit ~now ~queued:n ~config ~reply:write_line line with
          | None -> collect acc n
          | Some it -> collect (it :: acc) (n + 1))
  in
  let rec loop () =
    let items, more = collect [] 0 in
    let shutdown =
      if items = [] then false else exec_wave ~now ~cache ~pool items
    in
    if more && not shutdown then loop ()
  in
  loop ()

(* ---- unix-domain-socket transport -------------------------------------- *)

type client = { fd : Unix.file_descr; buf : Buffer.t; mutable closed : bool }

let client_reply c line =
  if not c.closed then
    let payload = Bytes.of_string (line ^ "\n") in
    try
      let n = Bytes.length payload in
      let rec push off =
        if off < n then
          push (off + Unix.write c.fd payload off (n - off))
      in
      push 0
    with Unix.Unix_error _ -> c.closed <- true

(* Split complete lines off the front of a client's input buffer. *)
let take_lines c =
  let s = Buffer.contents c.buf in
  let rec go start acc =
    match String.index_from_opt s start '\n' with
    | None ->
        Buffer.clear c.buf;
        Buffer.add_substring c.buf s start (String.length s - start);
        List.rev acc
    | Some i -> go (i + 1) (String.sub s start (i - start) :: acc)
  in
  go 0 []

let serve_socket ?(config = default_config) ~cache ~pool ~path () =
  let listen_fd = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
  (try Unix.unlink path with Unix.Unix_error _ -> ());
  Unix.bind listen_fd (Unix.ADDR_UNIX path);
  Unix.listen listen_fd 16;
  let clients = ref [] in
  let cleanup () =
    List.iter
      (fun c -> try Unix.close c.fd with Unix.Unix_error _ -> ())
      !clients;
    (try Unix.close listen_fd with Unix.Unix_error _ -> ());
    try Unix.unlink path with Unix.Unix_error _ -> ()
  in
  let chunk = Bytes.create 4096 in
  let now = Unix.gettimeofday in
  Fun.protect ~finally:cleanup @@ fun () ->
  let rec loop () =
    let fds = listen_fd :: List.map (fun c -> c.fd) !clients in
    let readable, _, _ = Unix.select fds [] [] (-1.0) in
    if List.mem listen_fd readable then begin
      let fd, _ = Unix.accept listen_fd in
      clients := !clients @ [ { fd; buf = Buffer.create 256; closed = false } ]
    end;
    (* Drain readable clients; every complete line available in this
       iteration joins the same wave, bounded by admission control. *)
    let queued = ref 0 in
    let items = ref [] in
    List.iter
      (fun c ->
        if List.memq c.fd readable then
          match Unix.read c.fd chunk 0 (Bytes.length chunk) with
          | 0 -> c.closed <- true
          | n ->
              Buffer.add_subbytes c.buf chunk 0 n;
              List.iter
                (fun line ->
                  match
                    admit ~now ~queued:!queued ~config
                      ~reply:(client_reply c) line
                  with
                  | None -> ()
                  | Some it ->
                      incr queued;
                      items := it :: !items)
                (take_lines c)
          | exception Unix.Unix_error _ -> c.closed <- true)
      !clients;
    let shutdown =
      match List.rev !items with
      | [] -> false
      | wave -> exec_wave ~now ~cache ~pool wave
    in
    List.iter
      (fun c ->
        if c.closed then try Unix.close c.fd with Unix.Unix_error _ -> ())
      !clients;
    clients := List.filter (fun c -> not c.closed) !clients;
    if not shutdown then loop ()
  in
  loop ()
