(** The serve wire protocol: JSON lines.

    One request per line, one response line per request, in request
    order. A request is a JSON object:

    {v
    {"id": <any json>,        // echoed verbatim in the response
     "op": "run" | "tilesize" | "compile" | "stats" | "ping" | "shutdown",
     "builtin": "jacobi2d" |  // or "source": "<stencil source text>"
     "N": 64, "T": 16,        // environment (defaults 64 / 16)
     "device": "gtx470",      // or "nvs5200"
     "scheme": "hybrid",      // ppcg | par4all | overtile | patus
     "engine": "tape",        // or "ref"
     "analytic": false,
     "h": 3, "w": [32, 4],    // optional tile overrides (compile)
     "timeout_ms": 500}       // optional admission deadline
    v}

    Responses are single-line objects: [{"id":…, "ok":true, …payload}]
    or [{"id":…, "ok":false, "error":"…"}]. Payloads of [run],
    [tilesize] and [compile] are deterministic — bit-identical for a
    given request at every jobs value, cold or warm cache. [stats] and
    [ping] are server-side introspection and excluded from that
    contract. *)

module Json = Hextile_obs.Json

type op = Run | Tilesize | Compile | Stats | Ping | Shutdown

type request = {
  id : Json.t;
  op : op;
  source : string option;
  builtin : string option;
  n : int;
  t : int;
  device : string;
  scheme : string;
  engine : string;
  analytic : bool;
  h : int option;
  w : int list option;
  timeout_ms : int option;
}

val parse_request : string -> (request, Json.t * string) result
(** Parse one request line. On error the returned [Json.t] is the
    request's [id] if one could be extracted ([Null] otherwise), so the
    error response still correlates. *)

val work_key : request -> request
(** The request with [id] and [timeout_ms] cleared — two requests with
    equal work keys are the same work, and a wave computes it once. *)

val ok_line : id:Json.t -> (string * Json.t) list -> string
(** Serialized single-line success response. *)

val error_line : id:Json.t -> string -> string
(** Serialized single-line error response. *)

val op_name : op -> string
