(** The long-lived serve loop: admission, batching, transport.

    Requests are admitted into a bounded queue and executed in {e waves}
    over one shared {!Hextile_par.Par} pool — the pool and the
    {!Cache.t} live for the daemon's lifetime; no per-request domain is
    ever spawned. Within a wave, requests with equal {!Proto.work_key}s
    are computed once and each receives the same payload; responses are
    written in request order. Admission control is explicit:

    - a request arriving when the queue already holds [max_queue]
      requests is {b shed} with an error response (["shed: queue full"]),
      never silently dropped;
    - a request whose [timeout_ms] deadline has passed when its wave
      starts executing is answered with ["deadline exceeded"] instead of
      being executed (execution itself is not preempted).

    Determinism: the payload of every executed [run]/[tilesize]/
    [compile] response depends only on the request — not on wave
    composition, queue state, pool size or cache temperature — so a
    daemon answer is bit-identical to the one-shot CLI at every
    [--jobs], cold or warm. *)

module Par = Hextile_par.Par

type config = { max_queue : int; max_wave : int }

val default_config : config
(** [max_queue = 256], [max_wave = 64]. *)

val run_lines :
  ?now:(unit -> float) ->
  ?config:config ->
  cache:Cache.t ->
  pool:Par.pool ->
  read_line:(unit -> string option) ->
  write_line:(string -> unit) ->
  unit ->
  unit
(** The stdio transport, fully injectable for tests. Lines are read
    until a blank line (wave delimiter), [max_wave] requests, or end of
    input ([read_line () = None]); the wave executes and one response
    line per request is written, in order. Returns on end of input or
    after answering a [shutdown] request. [now] (default
    [Unix.gettimeofday]) drives deadline checks. *)

val serve_socket :
  ?config:config ->
  cache:Cache.t ->
  pool:Par.pool ->
  path:string ->
  unit ->
  unit
(** The Unix-domain-socket transport: a single-threaded [select] loop
    accepting any number of concurrent clients. All complete lines
    readable in one loop iteration form a wave (so concurrent clients
    batch naturally); each client receives exactly its own responses, in
    its own request order. An existing socket file at [path] is
    replaced. Returns (closing every connection and removing [path])
    after answering a [shutdown] request. *)
