(** The daemon's explicit cross-request cache context.

    One {!t} lives for the daemon's lifetime (tests build private
    short-lived ones). The context owns an entry table addressed by the
    canonical structural hash of the frontend IR ({!Shash}); each entry
    carries publish-once sub-caches ({!Hextile_par.Oncemap}) for the
    per-program artifacts:

    - {b tile-size choices}, keyed by (write-offsets, canonical
      environment) — renaming-invariant, so alpha-equivalent requests
      share one search;
    - {b run results} and {b compile results}, keyed by the full
      original request (program included) — simulated grid contents are
      seeded from array names and generated code embeds names, so these
      are {e not} renaming-invariant and the full key is part of every
      lookup.

    Correctness never depends on the cache: a structural-hash collision
    (hash hit, canonical forms differ under full-key verification) is
    counted and the request computed uncached; a full entry table
    likewise degrades to uncached computation. The global per-process
    caches (dependence analysis, FM projections, compiled tapes) sit
    below this layer and need no management here.

    Thread safety: all tables are lock-free publish-once maps and all
    counters are atomics, so lookups may run concurrently from pool
    worker domains. *)

open Hextile_ir

type entry
(** Per-canonical-program cache cell. *)

type t

val create : ?hash_bits:int -> ?bits:int -> unit -> t
(** [hash_bits] (default 64, clamped to [1,64]) truncates the structural
    hash used to address the entry table — tests set it low to force
    collisions deterministically. [bits] sizes the entry table
    ([2^bits] slots, default 10). *)

val lookup : t -> Stencil.t -> (entry option * (string * string) list)
(** The entry for this program (created on first sight), plus the
    parameter renaming for building canonical keys. [None] when the
    entry table is full or the truncated hash collides with a
    structurally different program — callers compute uncached. *)

val tilesize :
  t ->
  entry option ->
  prog:Stencil.t ->
  renaming:(string * string) list ->
  env:(string * int) list ->
  (unit -> Hextile_tiling.Tile_size.choice option * Hextile_tiling.Tile_size.report) ->
  Hextile_tiling.Tile_size.choice option * Hextile_tiling.Tile_size.report

val run :
  t ->
  entry option ->
  key:
    (Stencil.t * (string * int) list * string * string * string * bool) ->
  (unit -> Hextile_obs.Json.t) ->
  Hextile_obs.Json.t
(** [key] is (program, env, device, scheme, engine, analytic); the value
    is the full deterministic response payload. *)

val compile :
  t ->
  entry option ->
  key:(Stencil.t * int option * int list option * (string * int) list) ->
  (unit -> Hextile_obs.Json.t) ->
  Hextile_obs.Json.t
(** [key] is (program, h override, w override, env). *)

type stats = {
  entry_hits : int;
  entry_misses : int;
  collisions : int;  (** truncated-hash hits whose canonical forms differ *)
  tilesize_hits : int;
  tilesize_misses : int;
  run_hits : int;
  run_misses : int;
  compile_hits : int;
  compile_misses : int;
}

val stats : t -> stats
val stats_json : t -> Hextile_obs.Json.t
