(** Request execution against a {!Cache} context.

    [execute] turns one parsed request into a response payload (the
    key/value pairs following ["id"]/["ok"] on the wire). The payload of
    [run], [tilesize] and [compile] requests is {b deterministic}: a
    pure function of the request, bit-identical whether computed cold,
    replayed from the cache, or evaluated on any pool domain at any
    [--jobs] value — which is what lets the daemon cache whole payloads
    and batch requests freely. [stats]/[ping] payloads describe the
    server and are exempt.

    [execute] is safe to call from pool worker domains (everything it
    touches is lock-free); nested parallel combinators degrade to their
    sequential paths, which the repo-wide determinism contract makes
    result-identical. *)

val execute :
  cache:Cache.t ->
  Proto.request ->
  ((string * Hextile_obs.Json.t) list, string) result

val grids_hash : Hextile_ir.Stencil.t -> (string, Hextile_ir.Grid.t) Hashtbl.t -> string
(** FNV-1a (64-bit, hex) over the final grids in declaration order:
    array name, concrete extents, then every float's bit pattern. The
    serve-side replacement for diffing whole grids over the wire. *)
