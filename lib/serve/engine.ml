open Hextile_ir
module Json = Hextile_obs.Json
module Experiments = Hextile_experiments.Experiments
module Tile_size = Hextile_tiling.Tile_size
module Hybrid = Hextile_tiling.Hybrid
module Device = Hextile_gpusim.Device
module Common = Hextile_schemes.Common
module Hybrid_exec = Hextile_schemes.Hybrid_exec
module Oncemap = Hextile_par.Oncemap

let grids_hash (prog : Stencil.t) grids =
  let h = ref Shash.fnv_init in
  List.iter
    (fun (a : Stencil.array_decl) ->
      let g = Grid.find grids a.aname in
      h := Shash.fnv_string !h a.aname;
      Array.iter (fun d -> h := Shash.fnv_int !h d) g.Grid.dims;
      Array.iter
        (fun v -> h := Shash.fnv_int64 !h (Int64.bits_of_float v))
        g.Grid.data)
    prog.arrays;
  Shash.to_hex !h

(* ---- request-field resolution ------------------------------------------ *)

let load_program (r : Proto.request) =
  match (r.source, r.builtin) with
  | Some _, Some _ -> Error "give either \"source\" or \"builtin\", not both"
  | None, None -> Error "missing \"source\" or \"builtin\""
  | None, Some b -> (
      match Hextile_stencils.Suite.find b with
      | p -> Ok p
      | exception Not_found ->
          Error
            (Printf.sprintf "unknown builtin %S (try: %s)" b
               (String.concat ", "
                  (List.map
                     (fun (p : Stencil.t) -> p.name)
                     Hextile_stencils.Suite.all))))
  | Some src, None -> Hextile_frontend.Front.parse_string ~name:"<request>" src

let device_of = function
  | "gtx470" -> Ok Device.gtx470
  | "nvs5200" -> Ok Device.nvs5200m
  | d -> Error (Printf.sprintf "unknown device %S (gtx470 or nvs5200)" d)

let scheme_of = function
  | "hybrid" -> Ok Experiments.Hybrid
  | "ppcg" -> Ok Experiments.Ppcg
  | "par4all" -> Ok Experiments.Par4all
  | "overtile" -> Ok Experiments.Overtile
  | "patus" -> Ok Experiments.Patus
  | s -> Error (Printf.sprintf "unknown scheme %S" s)

let engine_of = function
  | "tape" -> Ok Common.Tape
  | "ref" -> Ok Common.Ref
  | e -> Error (Printf.sprintf "unknown engine %S (tape or ref)" e)

let ( let* ) = Result.bind

(* ---- per-op payloads --------------------------------------------------- *)

(* Every payload below is a pure function of the request: no wall-clock,
   no scheduling-dependent counts, floats produced by the deterministic
   simulator. That purity is what makes whole-payload caching and the
   cold/warm bit-identity contract sound. *)

let run_payload (r : Proto.request) prog env dev scheme engine =
  let verify = not r.analytic in
  match
    Experiments.run_scheme ~engine ~analytic:r.analytic ~verify scheme prog env
      dev
  with
  | exception Failure m -> Error m
  | result ->
      Ok
        (Json.Obj
           [
             ("op", Json.Str "run");
             ("program", Json.Str prog.Stencil.name);
             ("env", Json.Obj [ ("N", Json.Int r.n); ("T", Json.Int r.t) ]);
             ("engine", Json.Str (Experiments.engine_name engine));
             ("analytic", Json.Bool r.analytic);
             ("verified", Json.Bool verify);
             ("grids_hash", Json.Str (grids_hash prog result.Common.grids));
             ("result", Experiments.result_json result);
           ])

let choice_json (c : Tile_size.choice) =
  Json.Obj
    [
      ("h", Json.Int c.h);
      ("w", Json.List (Array.to_list (Array.map (fun x -> Json.Int x) c.w)));
      ("iterations", Json.Int c.stats.iterations);
      ("loads", Json.Int c.stats.loads);
      ("stores", Json.Int c.stats.stores);
      ("footprint_box", Json.Int c.stats.footprint_box);
      ("ratio", Json.Float c.stats.ratio);
    ]

let report_json (rep : Tile_size.report) =
  Json.Obj
    [
      ("candidates", Json.Int rep.candidates);
      ("feasible", Json.Int rep.feasible);
      ("pruned_infeasible", Json.Int rep.pruned_infeasible);
      ("pruned_dominated", Json.Int rep.pruned_dominated);
      ("exact_evals", Json.Int rep.exact_evals);
    ]

let tilesize_payload prog (choice, report) =
  [
    ("op", Json.Str "tilesize");
    ("program", Json.Str prog.Stencil.name);
    ( "selected",
      match choice with None -> Json.Null | Some c -> choice_json c );
    ("report", report_json report);
  ]

let compile_payload (r : Proto.request) prog env =
  let config = Hybrid_exec.default_config prog in
  let h = Option.value ~default:config.Hybrid_exec.h r.h in
  let w =
    match r.w with Some l -> Array.of_list l | None -> config.Hybrid_exec.w
  in
  match Hybrid.make prog ~h ~w with
  | exception Invalid_argument m -> Error m
  | exception Failure m -> Error m
  | tiling ->
      let cuda = Hextile_codegen.Cuda_emit.host_and_kernels tiling prog in
      let legality =
        match Hybrid.check_legality tiling env with
        | Ok () -> Json.Str "ok"
        | Error m -> Json.Str ("FAILED: " ^ m)
      in
      Ok
        (Json.Obj
           [
             ("op", Json.Str "compile");
             ("program", Json.Str prog.Stencil.name);
             ("h", Json.Int h);
             ( "w",
               Json.List (Array.to_list (Array.map (fun x -> Json.Int x) w)) );
             ("legality", legality);
             ("cuda_bytes", Json.Int (String.length cuda));
             ( "cuda_hash",
               Json.Str (Shash.to_hex (Shash.fnv_string Shash.fnv_init cuda)) );
             ( "cores",
               Json.Obj
                 (List.map
                    (fun (s : Stencil.stmt) ->
                      let l =
                        Hextile_codegen.Ptx_emit.core_listing prog s
                      in
                      ( s.sname,
                        Json.Obj
                          [
                            ("loads", Json.Int l.Hextile_codegen.Ptx_emit.loads);
                            ("ops", Json.Int l.Hextile_codegen.Ptx_emit.arith);
                          ] ))
                    prog.stmts) );
           ])

(* ---- dispatch ---------------------------------------------------------- *)

let obj_payload = function Json.Obj l -> l | j -> [ ("value", j) ]

(* Cached computes signal failure by raising (nothing is published for
   a failing request, so errors are recomputed — and stay correct — on
   retry). *)
exception Request_error of string

let execute ~cache (r : Proto.request) =
  match r.op with
  | Proto.Ping -> Ok [ ("op", Json.Str "ping") ]
  | Proto.Shutdown -> Ok [ ("op", Json.Str "shutdown") ]
  | Proto.Stats ->
      Ok
        [
          ("op", Json.Str "stats");
          ("cache", Cache.stats_json cache);
          ( "oncemap",
            Json.Obj
              (List.map
                 (fun (n, h, m) ->
                   (n, Json.Obj [ ("hits", Json.Int h); ("misses", Json.Int m) ]))
                 (Oncemap.stats_all ())) );
        ]
  | Proto.Run | Proto.Tilesize | Proto.Compile -> (
      let* prog = load_program r in
      let env = [ ("N", r.n); ("T", r.t) ] in
      let envf p = List.assoc p env in
      let entry, renaming = Cache.lookup cache prog in
      match r.op with
      | Proto.Tilesize ->
          let result =
            Cache.tilesize cache entry ~prog ~renaming ~env (fun () ->
                Tile_size.select_spec prog (Tile_size.default_spec prog))
          in
          Ok (tilesize_payload prog result)
      | Proto.Run -> (
          let* dev = device_of r.device in
          let* scheme = scheme_of r.scheme in
          let* engine = engine_of r.engine in
          let* () =
            if r.analytic && engine = Hextile_schemes.Common.Ref then
              Error
                "analytic mode requires the tape engine (the ref interpreter \
                 records no streams to scale)"
            else Ok ()
          in
          let key =
            ( prog,
              env,
              r.device,
              r.scheme,
              r.engine,
              r.analytic )
          in
          match
            Cache.run cache entry ~key (fun () ->
                match run_payload r prog env dev scheme engine with
                | Ok j -> j
                | Error m -> raise (Request_error m))
          with
          | j -> Ok (obj_payload j)
          | exception Request_error m -> Error m)
      | Proto.Compile -> (
          let key = (prog, r.h, r.w, env) in
          match
            Cache.compile cache entry ~key (fun () ->
                match compile_payload r prog envf with
                | Ok j -> j
                | Error m -> raise (Request_error m))
          with
          | j -> Ok (obj_payload j)
          | exception Request_error m -> Error m)
      | _ -> assert false)
