open Hextile_ir

type canon = Stencil.t

(* ---- FNV-1a, 64-bit ---------------------------------------------------- *)

let fnv_init = 0xCBF29CE484222325L
let fnv_prime = 0x100000001B3L

let fnv_byte h b =
  Int64.mul (Int64.logxor h (Int64.of_int (b land 0xFF))) fnv_prime

let fnv_string h s =
  let h = ref h in
  String.iter (fun c -> h := fnv_byte !h (Char.code c)) s;
  (* length-delimit so ("ab","c") and ("a","bc") differ *)
  fnv_byte !h (String.length s land 0xFF)

let fnv_int h i =
  let h = ref h in
  for k = 0 to 7 do
    h := fnv_byte !h ((i lsr (k * 8)) land 0xFF)
  done;
  !h

let fnv_int64 h i =
  let h = ref h in
  for k = 0 to 7 do
    h := fnv_byte !h (Int64.to_int (Int64.shift_right_logical i (k * 8)) land 0xFF)
  done;
  !h

let to_hex h = Printf.sprintf "%016Lx" h

(* ---- canonicalization -------------------------------------------------- *)

(* Positional renaming: the i-th parameter/array/statement of the
   program becomes P<i>/A<i>/S<i>. Positional (rather than
   first-occurrence) renaming keeps the pass trivially total; programs
   that permute their declaration lists simply land in different cache
   entries — a miss, never an error. *)
let renamings (p : Stencil.t) =
  let number prefix names =
    List.mapi (fun i n -> (n, Printf.sprintf "%s%d" prefix i)) names
  in
  ( number "P" p.params,
    number "A" (List.map (fun (a : Stencil.array_decl) -> a.aname) p.arrays),
    number "S" (List.map (fun (s : Stencil.stmt) -> s.sname) p.stmts) )

let rename tbl n = match List.assoc_opt n tbl with Some n' -> n' | None -> n

(* Canonical names permute parameter order under sorting (P10 < P2
   lexicographically), so re-sort Affp terms after renaming to keep the
   representation invariant. *)
let rename_affp prms (a : Affp.t) =
  { a with Affp.terms = List.sort compare (List.map (fun (n, c) -> (rename prms n, c)) a.Affp.terms) }

let rename_access arrs shift (a : Stencil.access) =
  {
    a with
    Stencil.array = rename arrs a.Stencil.array;
    offsets = Array.mapi (fun d o -> o - shift.(d)) a.Stencil.offsets;
  }

let rec rename_fexpr arrs shift (e : Stencil.fexpr) =
  match e with
  | Stencil.Read a -> Stencil.Read (rename_access arrs shift a)
  | Stencil.Fconst _ -> e
  | Stencil.Neg e -> Stencil.Neg (rename_fexpr arrs shift e)
  | Stencil.Bin (op, l, r) ->
      Stencil.Bin (op, rename_fexpr arrs shift l, rename_fexpr arrs shift r)

(* Offset-normalize one statement: translate the iteration domain by the
   write access's spatial offsets, so the write lands at offset zero.
   Statement instance x writing A[x+o] becomes instance x' = x+o writing
   A[x']; reads at x+r move to x'+(r-o); the domain bounds shift by o.
   The transformed statement enumerates the same accesses, so dependence
   structure and tile geometry are unchanged. Time offsets are part of
   the storage folding and are left alone. *)
let canon_stmt prms arrs stms (s : Stencil.stmt) =
  let shift = s.write.Stencil.offsets in
  let zero = Array.map (fun _ -> 0) shift in
  {
    Stencil.sname = rename stms s.sname;
    lo = Array.mapi (fun d a -> rename_affp prms (Affp.add_const a shift.(d))) s.lo;
    hi = Array.mapi (fun d a -> rename_affp prms (Affp.add_const a shift.(d))) s.hi;
    write = { (rename_access arrs zero s.write) with offsets = zero };
    rhs = rename_fexpr arrs shift s.rhs;
  }

let canonicalize (p : Stencil.t) =
  let prms, arrs, stms = renamings p in
  let canon =
    {
      Stencil.name = "";
      params = List.map (fun n -> rename prms n) p.params;
      steps = rename_affp prms p.steps;
      arrays =
        List.map
          (fun (a : Stencil.array_decl) ->
            {
              a with
              Stencil.aname = rename arrs a.aname;
              extents = Array.map (rename_affp prms) a.extents;
            })
          p.arrays;
      stmts = List.map (canon_stmt prms arrs stms) p.stmts;
    }
  in
  (canon, prms)

let equal_canon (a : canon) (b : canon) = a = b

let write_offsets (p : Stencil.t) =
  List.map
    (fun (s : Stencil.stmt) -> Array.to_list s.write.Stencil.offsets)
    p.stmts

let canon_env renaming env =
  List.sort compare
    (List.filter_map
       (fun (n, v) ->
         Option.map (fun n' -> (n', v)) (List.assoc_opt n renaming))
       env)

(* ---- hashing ----------------------------------------------------------- *)

(* Flat constructor-tagged serialization of the canonical form. Every
   variant gets a distinct tag byte and variable-length sequences are
   length-delimited, so distinct canonical forms serialize distinctly. *)
let hash (p : canon) =
  let h = ref fnv_init in
  let tag t = h := fnv_byte !h t in
  let int i = h := fnv_int !h i in
  let str s = h := fnv_string !h s in
  let affp (a : Affp.t) =
    tag 1;
    int a.Affp.const;
    int (List.length a.Affp.terms);
    List.iter
      (fun (n, c) ->
        str n;
        int c)
      a.Affp.terms
  in
  let access (a : Stencil.access) =
    tag 2;
    str a.Stencil.array;
    int a.Stencil.time_off;
    int (Array.length a.Stencil.offsets);
    Array.iter int a.Stencil.offsets
  in
  let rec fexpr = function
    | Stencil.Read a ->
        tag 3;
        access a
    | Stencil.Fconst f ->
        tag 4;
        h := fnv_int64 !h (Int64.bits_of_float f)
    | Stencil.Neg e ->
        tag 5;
        fexpr e
    | Stencil.Bin (op, l, r) ->
        tag 6;
        tag (match op with Stencil.Add -> 0 | Sub -> 1 | Mul -> 2 | Div -> 3);
        fexpr l;
        fexpr r
  in
  str p.Stencil.name;
  int (List.length p.params);
  List.iter str p.params;
  affp p.steps;
  int (List.length p.arrays);
  List.iter
    (fun (a : Stencil.array_decl) ->
      str a.aname;
      int (Array.length a.extents);
      Array.iter affp a.extents;
      (match a.fold with
      | None -> tag 7
      | Some m ->
          tag 8;
          int m))
    p.arrays;
  int (List.length p.stmts);
  List.iter
    (fun (s : Stencil.stmt) ->
      str s.sname;
      int (Array.length s.lo);
      Array.iter affp s.lo;
      Array.iter affp s.hi;
      access s.write;
      fexpr s.rhs)
    p.stmts;
  !h
