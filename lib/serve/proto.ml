module Json = Hextile_obs.Json

type op = Run | Tilesize | Compile | Stats | Ping | Shutdown

type request = {
  id : Json.t;
  op : op;
  source : string option;
  builtin : string option;
  n : int;
  t : int;
  device : string;
  scheme : string;
  engine : string;
  analytic : bool;
  h : int option;
  w : int list option;
  timeout_ms : int option;
}

let op_name = function
  | Run -> "run"
  | Tilesize -> "tilesize"
  | Compile -> "compile"
  | Stats -> "stats"
  | Ping -> "ping"
  | Shutdown -> "shutdown"

let op_of_name = function
  | "run" -> Some Run
  | "tilesize" -> Some Tilesize
  | "compile" -> Some Compile
  | "stats" -> Some Stats
  | "ping" -> Some Ping
  | "shutdown" -> Some Shutdown
  | _ -> None

let parse_request line =
  match Json.parse line with
  | Error e -> Error (Json.Null, "parse error: " ^ e)
  | Ok doc -> (
      let id = Option.value ~default:Json.Null (Json.member "id" doc) in
      let str k = Option.bind (Json.member k doc) Json.to_str in
      let int k = Option.bind (Json.member k doc) Json.to_int in
      let fail m = Error (id, m) in
      match str "op" with
      | None -> fail "missing or non-string \"op\""
      | Some name -> (
          match op_of_name name with
          | None -> fail (Printf.sprintf "unknown op %S" name)
          | Some op -> (
              let w =
                match Json.member "w" doc with
                | None | Some Json.Null -> Ok None
                | Some j -> (
                    match
                      Option.map
                        (List.map Json.to_int)
                        (Json.to_list j)
                    with
                    | Some l when List.for_all Option.is_some l ->
                        Ok (Some (List.map Option.get l))
                    | _ -> Error "\"w\" must be a list of integers")
              in
              match w with
              | Error m -> fail m
              | Ok w ->
                  let bool k =
                    match Json.member k doc with
                    | Some (Json.Bool b) -> b
                    | _ -> false
                  in
                  Ok
                    {
                      id;
                      op;
                      source = str "source";
                      builtin = str "builtin";
                      n = Option.value ~default:64 (int "N");
                      t = Option.value ~default:16 (int "T");
                      device = Option.value ~default:"gtx470" (str "device");
                      scheme = Option.value ~default:"hybrid" (str "scheme");
                      engine = Option.value ~default:"tape" (str "engine");
                      analytic = bool "analytic";
                      h = int "h";
                      w;
                      timeout_ms = int "timeout_ms";
                    })))

let work_key r = { r with id = Json.Null; timeout_ms = None }

let line j = Json.to_string ~minify:true j

let ok_line ~id payload =
  line (Json.Obj (("id", id) :: ("ok", Json.Bool true) :: payload))

let error_line ~id msg =
  line (Json.Obj [ ("id", id); ("ok", Json.Bool false); ("error", Json.Str msg) ])
