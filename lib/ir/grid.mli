(** Concrete array storage shared by the reference interpreter and the GPU
    simulator.

    A folded array ([fold = Some m]) stores [m] spatial grids; its full
    index vector is [slot :: spatial]. Initial contents are deterministic
    pseudo-random values so that independently executed schedules can be
    compared bit-for-bit. *)

type t = {
  decl : Stencil.array_decl;
  dims : int array;  (** concrete extents; leading fold slot included *)
  data : float array;
}

val alloc : Stencil.t -> (string -> int) -> (string, t) Hashtbl.t
(** Allocate and deterministically initialise every array of the program
    under the given parameter valuation. *)

val offset : t -> int array -> int
(** Row-major flat offset of a full index vector; raises
    [Invalid_argument] when out of bounds. *)

val get : t -> int array -> float
val set : t -> int array -> float -> unit

val slot : t -> int -> int
(** [slot g tau] maps a logical time index to a storage slot: [tau mod m]
    for folded arrays, [0] for in-place arrays (callers then drop the
    leading coordinate — see [index_of_access]). *)

val read_access : (string, t) Hashtbl.t -> Stencil.access -> t:int -> point:int array -> float
(** Evaluate a read access at time [t] and spatial point [point]. *)

val write_access : (string, t) Hashtbl.t -> Stencil.access -> t:int -> point:int array -> float -> unit

val flat_index_of_access : t -> Stencil.access -> time:int -> point:int array -> int
(** The flat element offset touched by an access — used by the memory
    simulator for coalescing analysis. *)

val checksum : t -> float
val equal : ?eps:float -> t -> t -> bool
val find : (string, t) Hashtbl.t -> string -> t
