(** Static characteristics of a stencil program — the quantities of the
    paper's Table 3 (loads, FLOPs per stencil, data size, steps). *)

type stmt_chars = { stmt : string; loads : int; flops : int }

type t = {
  program : string;
  per_stmt : stmt_chars list;
  spatial_dims : int;
  data_points : Affp.t;  (** product description, e.g. N^2, as text *)
  steps : Affp.t;
}

val characterize : Stencil.t -> t

val data_size_string : Stencil.t -> string
(** Human form like "3072^2" when extents are a repeated parameter, else
    the explicit product. *)

val footprint_floats : Stencil.t -> (string -> int) -> int
(** Total float elements allocated across all arrays (folds included). *)

val bounds_check : Stencil.t -> (string -> int) -> (unit, string) result
(** The out-of-domain convention shared by the reference interpreter and
    the scheme executors: every access of every domain instance must fall
    inside its array's extents, so out-of-domain reads are a rejected
    program error rather than a value choice (no clamping, no wrapping).
    [Interp.run] and [Common.make_ctx] both enforce this check with the
    same message; differential testing hence never compares executions
    that disagree about boundary values. Checks the two extreme corners
    of each (statement, access) pair under the given parameter valuation;
    empty domains pass vacuously. *)

val pp : t Fmt.t
