(** Static characteristics of a stencil program — the quantities of the
    paper's Table 3 (loads, FLOPs per stencil, data size, steps). *)

type stmt_chars = { stmt : string; loads : int; flops : int }

type t = {
  program : string;
  per_stmt : stmt_chars list;
  spatial_dims : int;
  data_points : Affp.t;  (** product description, e.g. N^2, as text *)
  steps : Affp.t;
}

val characterize : Stencil.t -> t

val data_size_string : Stencil.t -> string
(** Human form like "3072^2" when extents are a repeated parameter, else
    the explicit product. *)

val footprint_floats : Stencil.t -> (string -> int) -> int
(** Total float elements allocated across all arrays (folds included). *)

val pp : t Fmt.t
