open Hextile_util

type t = { decl : Stencil.array_decl; dims : int array; data : float array }

(* SplitMix-style hash for deterministic initial grid contents. *)
let hash_init seed i =
  let z = ref (Int64.of_int ((seed * 0x9E3779B1) + (i * 0x85EBCA77))) in
  z := Int64.mul !z 0xBF58476D1CE4E5B9L;
  z := Int64.logxor !z (Int64.shift_right_logical !z 31);
  z := Int64.mul !z 0x94D049BB133111EBL;
  let v = Int64.to_int (Int64.logand !z 0xFFFFFFL) in
  float_of_int v /. float_of_int 0x1000000

let alloc (prog : Stencil.t) env =
  let tbl = Hashtbl.create 8 in
  List.iter
    (fun (decl : Stencil.array_decl) ->
      let spatial = Array.map (fun e -> Affp.eval e env) decl.extents in
      let dims =
        match decl.fold with
        | Some m -> Array.append [| m |] spatial
        | None -> spatial
      in
      let size = Array.fold_left ( * ) 1 dims in
      let seed = Hashtbl.hash decl.aname in
      let data = Array.init size (hash_init seed) in
      Hashtbl.replace tbl decl.aname { decl; dims; data })
    prog.arrays;
  tbl

let offset g idx =
  if Array.length idx <> Array.length g.dims then
    invalid_arg
      (Fmt.str "Grid.offset: %s expects %d indices, got %d" g.decl.aname
         (Array.length g.dims) (Array.length idx));
  let off = ref 0 in
  Array.iteri
    (fun i x ->
      if x < 0 || x >= g.dims.(i) then
        invalid_arg
          (Fmt.str "Grid.offset: %s index %d out of bounds (dim %d, extent %d)"
             g.decl.aname x i g.dims.(i));
      off := (!off * g.dims.(i)) + x)
    idx;
  !off

let get g idx = g.data.(offset g idx)
let set g idx v = g.data.(offset g idx) <- v

let slot g tau = match g.decl.fold with Some m -> Intutil.fmod tau m | None -> 0

let full_index g (a : Stencil.access) ~time ~point =
  let spatial = Array.mapi (fun i o -> point.(i) + o) a.offsets in
  match g.decl.fold with
  | Some _ -> Array.append [| slot g (time + a.time_off) |] spatial
  | None -> spatial

let find tbl name =
  match Hashtbl.find_opt tbl name with
  | Some g -> g
  | None -> invalid_arg ("Grid.find: unknown array " ^ name)

let read_access tbl (a : Stencil.access) ~t ~point =
  let g = find tbl a.array in
  get g (full_index g a ~time:t ~point)

let write_access tbl (a : Stencil.access) ~t ~point v =
  let g = find tbl a.array in
  set g (full_index g a ~time:t ~point) v

let flat_index_of_access g (a : Stencil.access) ~time ~point =
  offset g (full_index g a ~time ~point)

let checksum g = Array.fold_left ( +. ) 0.0 g.data

let equal ?(eps = 0.0) a b =
  Array.length a.data = Array.length b.data
  && a.dims = b.dims
  &&
  (* short-circuit on the first mismatch; the negated [> eps] keeps the
     historical NaN behavior (an incomparable pair is not a mismatch) *)
  let n = Array.length a.data in
  let rec go i =
    i >= n
    || ((not (Float.abs (a.data.(i) -. b.data.(i)) > eps)) && go (i + 1))
  in
  go 0
