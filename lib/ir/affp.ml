type t = { const : int; terms : (string * int) list }

let norm terms =
  terms
  |> List.filter (fun (_, c) -> c <> 0)
  |> List.sort (fun (a, _) (b, _) -> String.compare a b)

let const c = { const = c; terms = [] }
let param p = { const = 0; terms = [ (p, 1) ] }

let merge f a b =
  let rec go a b =
    match (a, b) with
    | [], rest -> List.map (fun (p, c) -> (p, f 0 c)) rest
    | rest, [] -> rest
    | (pa, ca) :: ta, (pb, cb) :: tb ->
        let cmp = String.compare pa pb in
        if cmp = 0 then (pa, f ca cb) :: go ta tb
        else if cmp < 0 then (pa, ca) :: go ta b
        else (pb, f 0 cb) :: go a tb
  in
  norm (go a b)

let add a b = { const = a.const + b.const; terms = merge ( + ) a.terms b.terms }
let sub a b = { const = a.const - b.const; terms = merge ( - ) a.terms b.terms }

let scale k a =
  { const = k * a.const; terms = norm (List.map (fun (p, c) -> (p, k * c)) a.terms) }

let add_const a k = { a with const = a.const + k }

let eval a env = List.fold_left (fun acc (p, c) -> acc + (c * env p)) a.const a.terms

let params a = List.map fst a.terms

let equal a b = a.const = b.const && a.terms = b.terms

let is_const a = match a.terms with [] -> Some a.const | _ -> None

let pp ppf a =
  let pp_term ppf (p, c) =
    if c = 1 then Fmt.string ppf p
    else if c = -1 then Fmt.pf ppf "-%s" p
    else Fmt.pf ppf "%d*%s" c p
  in
  match a.terms with
  | [] -> Fmt.int ppf a.const
  | first :: rest ->
      pp_term ppf first;
      List.iter
        (fun (p, c) ->
          if c >= 0 then Fmt.pf ppf " + %a" pp_term (p, c)
          else Fmt.pf ppf " - %a" pp_term (p, -c))
        rest;
      if a.const > 0 then Fmt.pf ppf " + %d" a.const
      else if a.const < 0 then Fmt.pf ppf " - %d" (-a.const)

let to_string = Fmt.to_to_string pp
