(** Reference interpreter: sequential, textual-order execution of a
    stencil program. Ground truth for every tiled/simulated schedule. *)

val eval_fexpr :
  (string, Grid.t) Hashtbl.t -> Stencil.fexpr -> t:int -> point:int array -> float
(** Evaluate a right-hand side at a statement instance. *)

val eval_with :
  read:(Stencil.access -> int array -> float) ->
  Stencil.fexpr ->
  point:int array ->
  float
(** Evaluate with a custom read function (e.g. against a snapshot or a
    simulated shared-memory buffer). *)

val exec_instance : (string, Grid.t) Hashtbl.t -> Stencil.stmt -> t:int -> point:int array -> unit
(** Execute one statement instance (evaluate rhs, store). *)

val run : Stencil.t -> (string -> int) -> (string, Grid.t) Hashtbl.t
(** Allocate, initialise and run the whole program; returns final grids. *)

val stencil_updates : Stencil.t -> (string -> int) -> int
(** Total number of statement instances executed — the "stencils" of the
    paper's GStencils/second metric. *)
