type access = { array : string; time_off : int; offsets : int array }

type binop = Add | Sub | Mul | Div

type fexpr =
  | Read of access
  | Fconst of float
  | Bin of binop * fexpr * fexpr
  | Neg of fexpr

type array_decl = { aname : string; extents : Affp.t array; fold : int option }

type stmt = {
  sname : string;
  lo : Affp.t array;
  hi : Affp.t array;
  write : access;
  rhs : fexpr;
}

type t = {
  name : string;
  params : string list;
  steps : Affp.t;
  arrays : array_decl list;
  stmts : stmt list;
}

let reads stmt =
  let rec go acc = function
    | Read a -> a :: acc
    | Fconst _ -> acc
    | Bin (_, l, r) -> go (go acc l) r
    | Neg e -> go acc e
  in
  List.rev (go [] stmt.rhs)

let distinct_reads stmt =
  let seen = Hashtbl.create 8 in
  List.filter
    (fun a ->
      if Hashtbl.mem seen a then false
      else begin
        Hashtbl.replace seen a ();
        true
      end)
    (reads stmt)

let flops stmt =
  let ops = Hashtbl.create 16 in
  let rec go = function
    | Read _ | Fconst _ -> ()
    | Bin (_, l, r) as e ->
        Hashtbl.replace ops e ();
        go l;
        go r
    | Neg e' as e ->
        Hashtbl.replace ops e ();
        go e'
  in
  go stmt.rhs;
  Hashtbl.length ops

let array_decl t name = List.find (fun a -> String.equal a.aname name) t.arrays

let spatial_dims t =
  match t.stmts with [] -> 0 | s :: _ -> Array.length s.lo

let validate t =
  let ( let* ) = Result.bind in
  let fail fmt = Fmt.kstr (fun m -> Error m) fmt in
  let* () = if t.stmts = [] then fail "program %s has no statements" t.name else Ok () in
  let n = spatial_dims t in
  let* () =
    List.fold_left
      (fun acc s ->
        let* () = acc in
        if Array.length s.lo <> n || Array.length s.hi <> n then
          fail "statement %s: inconsistent dimensionality" s.sname
        else Ok ())
      (Ok ()) t.stmts
  in
  let check_access sname (a : access) =
    match array_decl t a.array with
    | exception Not_found -> fail "statement %s: unknown array %s" sname a.array
    | decl ->
        if Array.length a.offsets <> Array.length decl.extents then
          fail "statement %s: access to %s has wrong arity" sname a.array
        else if decl.fold = None && a.time_off <> 0 then
          fail "statement %s: non-folded array %s accessed with time offset %d"
            sname a.array a.time_off
        else Ok ()
  in
  let* () =
    List.fold_left
      (fun acc s ->
        let* () = acc in
        let* () = check_access s.sname s.write in
        List.fold_left
          (fun acc a ->
            let* () = acc in
            check_access s.sname a)
          (Ok ()) (reads s))
      (Ok ()) t.stmts
  in
  let writers =
    List.concat_map (fun s -> [ (s.write.array, s.sname) ]) t.stmts
  in
  let* () =
    List.fold_left
      (fun acc (arr, _) ->
        let* () = acc in
        match List.filter (fun (a, _) -> String.equal a arr) writers with
        | [ _ ] -> Ok ()
        | ws when List.length ws > 1 ->
            fail "array %s written by multiple statements (%s)" arr
              (String.concat ", " (List.map snd ws))
        | _ -> Ok ())
      (Ok ()) writers
  in
  let names = List.map (fun s -> s.sname) t.stmts in
  if List.length (List.sort_uniq String.compare names) <> List.length names then
    fail "duplicate statement names in %s" t.name
  else Ok ()

let pp_access ppf a =
  let off ppf o = if o >= 0 then Fmt.pf ppf "+%d" o else Fmt.int ppf o in
  let time ppf c = if c = 0 then Fmt.string ppf "t" else Fmt.pf ppf "t%a" off c in
  if a.time_off = 0 && Array.for_all (fun o -> o = 0) a.offsets then
    Fmt.pf ppf "%s⟨t⟩[s]" a.array
  else
    Fmt.pf ppf "%s⟨%a⟩[%a]" a.array time a.time_off
      Fmt.(array ~sep:(any ", ") off)
      a.offsets

let rec pp_fexpr ppf = function
  | Read a -> pp_access ppf a
  | Fconst f -> Fmt.float ppf f
  | Bin (op, l, r) ->
      let s = match op with Add -> "+" | Sub -> "-" | Mul -> "*" | Div -> "/" in
      Fmt.pf ppf "(%a %s %a)" pp_fexpr l s pp_fexpr r
  | Neg e -> Fmt.pf ppf "(-%a)" pp_fexpr e

let pp ppf t =
  Fmt.pf ppf "@[<v>stencil %s(%a) steps=%a@," t.name
    Fmt.(list ~sep:(any ", ") string)
    t.params Affp.pp t.steps;
  List.iter
    (fun (a : array_decl) ->
      Fmt.pf ppf "  array %s[%a]%a@," a.aname
        Fmt.(array ~sep:(any "][") Affp.pp)
        a.extents
        Fmt.(option (fun ppf m -> Fmt.pf ppf " fold %d" m))
        a.fold)
    t.arrays;
  List.iter
    (fun (s : stmt) ->
      Fmt.pf ppf "  %s: for (%a..%a): %a = %a@," s.sname
        Fmt.(array ~sep:(any ", ") Affp.pp)
        s.lo
        Fmt.(array ~sep:(any ", ") Affp.pp)
        s.hi pp_access s.write pp_fexpr s.rhs)
    t.stmts;
  Fmt.pf ppf "@]"
