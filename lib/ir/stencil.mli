(** Canonical stencil IR (the paper's Section 3.2 preprocessing target).

    A program is an outer time loop [t = 0 .. steps-1] containing [k >= 1]
    statements, each a perfect nest over [n+1] spatial dimensions. All
    array accesses have constant offsets relative to [(t, s0, ..., sn)].
    The canonical schedule is [Li[t, s] -> [k·t + i, s]]; its first output
    dimension carries every dependence, the spatial dimensions are fully
    parallel. *)

type access = {
  array : string;
  time_off : int;
      (** [c] in [A⟨t+c⟩[...]]; must be 0 for non-folded arrays. *)
  offsets : int array;  (** spatial offsets, one per spatial dimension *)
}

type binop = Add | Sub | Mul | Div

type fexpr =
  | Read of access
  | Fconst of float
  | Bin of binop * fexpr * fexpr
  | Neg of fexpr

type array_decl = {
  aname : string;
  extents : Affp.t array;  (** spatial extents *)
  fold : int option;
      (** [Some m]: time-multiplexed storage of [m] spatial grids, element
          [(τ mod m, x)] — the [A[(t+1)%2]] idiom. [None]: updated in
          place. *)
}

type stmt = {
  sname : string;
  lo : Affp.t array;  (** inclusive lower bounds per spatial dim *)
  hi : Affp.t array;  (** inclusive upper bounds per spatial dim *)
  write : access;
  rhs : fexpr;
}

type t = {
  name : string;
  params : string list;
  steps : Affp.t;  (** trip count of the time loop *)
  arrays : array_decl list;
  stmts : stmt list;
}

val reads : stmt -> access list
(** All read accesses in [rhs], in left-to-right order (with duplicates —
    each occurrence is one textual load before CSE). *)

val distinct_reads : stmt -> access list
(** Distinct cells read — the "Loads" column of Table 3 (first occurrence
    order). *)

val flops : stmt -> int
(** Arithmetic operation count of [rhs] after structural common
    subexpression elimination (each distinct subterm counts once; [Neg]
    counts as one op) — the "FLOPs/Stencil" column of Table 3. *)

val array_decl : t -> string -> array_decl
(** Raises [Not_found]. *)

val spatial_dims : t -> int
(** Number of spatial dimensions [n+1]; statements must agree. *)

val validate : t -> (unit, string) result
(** Structural checks: at least one statement, consistent dimensionality,
    accesses refer to declared arrays with matching arity, non-folded
    arrays accessed with [time_off = 0], each array written by at most one
    statement, statement names distinct. *)

val pp : t Fmt.t
val pp_access : access Fmt.t
val pp_fexpr : fexpr Fmt.t
