let rec eval_fexpr tbl (e : Stencil.fexpr) ~t ~point =
  match e with
  | Read a -> Grid.read_access tbl a ~t ~point
  | Fconst f -> f
  | Neg e -> -.eval_fexpr tbl e ~t ~point
  | Bin (op, l, r) -> (
      let a = eval_fexpr tbl l ~t ~point and b = eval_fexpr tbl r ~t ~point in
      match op with
      | Add -> a +. b
      | Sub -> a -. b
      | Mul -> a *. b
      | Div -> a /. b)

let rec eval_with ~read (e : Stencil.fexpr) ~point =
  match e with
  | Read a -> read a point
  | Fconst f -> f
  | Neg e -> -.eval_with ~read e ~point
  | Bin (op, l, r) -> (
      let a = eval_with ~read l ~point and b = eval_with ~read r ~point in
      match op with
      | Add -> a +. b
      | Sub -> a -. b
      | Mul -> a *. b
      | Div -> a /. b)

let exec_instance tbl (s : Stencil.stmt) ~t ~point =
  let v = eval_fexpr tbl s.rhs ~t ~point in
  Grid.write_access tbl s.write ~t ~point v

(* Iterate a box domain in row-major order. *)
let iter_box lo hi f =
  let n = Array.length lo in
  let point = Array.make n 0 in
  let rec go d =
    if d = n then f point
    else
      for x = lo.(d) to hi.(d) do
        point.(d) <- x;
        go (d + 1)
      done
  in
  go 0

let domain_bounds (s : Stencil.stmt) env =
  ( Array.map (fun e -> Affp.eval e env) s.lo,
    Array.map (fun e -> Affp.eval e env) s.hi )

let run (prog : Stencil.t) env =
  (* Out-of-domain accesses are a program error, rejected up front by the
     shared convention check so the interpreter and the scheme executors
     (Common.make_ctx) agree exactly on which programs execute at all. *)
  (match Analysis.bounds_check prog env with
  | Ok () -> ()
  | Error m -> invalid_arg ("Interp.run: " ^ m));
  let tbl = Grid.alloc prog env in
  let steps = Affp.eval prog.steps env in
  for t = 0 to steps - 1 do
    List.iter
      (fun (s : Stencil.stmt) ->
        let lo, hi = domain_bounds s env in
        iter_box lo hi (fun point -> exec_instance tbl s ~t ~point))
      prog.stmts
  done;
  tbl

let stencil_updates (prog : Stencil.t) env =
  let steps = Affp.eval prog.steps env in
  let per_step =
    List.fold_left
      (fun acc (s : Stencil.stmt) ->
        let lo, hi = domain_bounds s env in
        let size = ref 1 in
        Array.iteri (fun i l -> size := !size * max 0 (hi.(i) - l + 1)) lo;
        acc + !size)
      0 prog.stmts
  in
  steps * per_step
