type stmt_chars = { stmt : string; loads : int; flops : int }

type t = {
  program : string;
  per_stmt : stmt_chars list;
  spatial_dims : int;
  data_points : Affp.t;
  steps : Affp.t;
}

let characterize (p : Stencil.t) =
  let per_stmt =
    List.map
      (fun (s : Stencil.stmt) ->
        {
          stmt = s.sname;
          loads = List.length (Stencil.distinct_reads s);
          flops = Stencil.flops s;
        })
      p.stmts
  in
  let data_points =
    match p.stmts with
    | [] -> Affp.const 0
    | s :: _ -> Array.fold_left (fun acc e -> Affp.add acc e) (Affp.const 0) s.hi
  in
  {
    program = p.name;
    per_stmt;
    spatial_dims = Stencil.spatial_dims p;
    data_points;
    steps = p.steps;
  }

let data_size_string (p : Stencil.t) =
  match p.arrays with
  | [] -> "0"
  | a :: _ ->
      let exts = Array.to_list (Array.map Affp.to_string a.extents) in
      let all_same =
        match exts with e :: rest -> List.for_all (String.equal e) rest | [] -> false
      in
      if all_same then Fmt.str "%s^%d" (List.hd exts) (List.length exts)
      else String.concat "x" exts

let footprint_floats (p : Stencil.t) env =
  List.fold_left
    (fun acc (a : Stencil.array_decl) ->
      let spatial =
        Array.fold_left (fun acc e -> acc * Affp.eval e env) 1 a.extents
      in
      acc + (spatial * match a.fold with Some m -> m | None -> 1))
    0 p.arrays

(* The out-of-domain convention shared by the reference interpreter and
   every scheme executor: a program whose domains can drive any access
   outside its array's extents is a program error, rejected up front with
   the same diagnostic everywhere. Because every access is affine with
   unit iterator coefficients, it suffices to check the two extreme domain
   corners of each statement. Empty domains (lo > hi) touch nothing and
   are always accepted. *)
let bounds_check (p : Stencil.t) env =
  let ( let* ) = Result.bind in
  let fail fmt = Fmt.kstr (fun m -> Error m) fmt in
  let check_access (s : Stencil.stmt) (a : Stencil.access) =
    let decl = Stencil.array_decl p a.array in
    let n = Array.length a.offsets in
    let rec dim d =
      if d = n then Ok ()
      else
        let lo = Affp.eval s.lo.(d) env and hi = Affp.eval s.hi.(d) env in
        if lo > hi then Ok () (* empty domain: no instance exists *)
        else
          let ext = Affp.eval decl.extents.(d) env in
          let cmin = lo + a.offsets.(d) and cmax = hi + a.offsets.(d) in
          if cmin < 0 || cmax >= ext then
            fail
              "statement %s: access to %s out of bounds (dim %d: index range \
               %d..%d, extent %d)"
              s.sname a.array d cmin cmax ext
          else dim (d + 1)
    in
    dim 0
  in
  List.fold_left
    (fun acc (s : Stencil.stmt) ->
      let* () = acc in
      let* () = check_access s s.write in
      List.fold_left
        (fun acc a ->
          let* () = acc in
          check_access s a)
        (Ok ()) (Stencil.reads s))
    (Ok ()) p.stmts

let pp ppf t =
  Fmt.pf ppf "@[<v>%s (%dD): data=%a steps=%a@," t.program t.spatial_dims Affp.pp
    t.data_points Affp.pp t.steps;
  List.iter
    (fun c -> Fmt.pf ppf "  %s: loads=%d flops=%d@," c.stmt c.loads c.flops)
    t.per_stmt;
  Fmt.pf ppf "@]"
