type stmt_chars = { stmt : string; loads : int; flops : int }

type t = {
  program : string;
  per_stmt : stmt_chars list;
  spatial_dims : int;
  data_points : Affp.t;
  steps : Affp.t;
}

let characterize (p : Stencil.t) =
  let per_stmt =
    List.map
      (fun (s : Stencil.stmt) ->
        {
          stmt = s.sname;
          loads = List.length (Stencil.distinct_reads s);
          flops = Stencil.flops s;
        })
      p.stmts
  in
  let data_points =
    match p.stmts with
    | [] -> Affp.const 0
    | s :: _ -> Array.fold_left (fun acc e -> Affp.add acc e) (Affp.const 0) s.hi
  in
  {
    program = p.name;
    per_stmt;
    spatial_dims = Stencil.spatial_dims p;
    data_points;
    steps = p.steps;
  }

let data_size_string (p : Stencil.t) =
  match p.arrays with
  | [] -> "0"
  | a :: _ ->
      let exts = Array.to_list (Array.map Affp.to_string a.extents) in
      let all_same =
        match exts with e :: rest -> List.for_all (String.equal e) rest | [] -> false
      in
      if all_same then Fmt.str "%s^%d" (List.hd exts) (List.length exts)
      else String.concat "x" exts

let footprint_floats (p : Stencil.t) env =
  List.fold_left
    (fun acc (a : Stencil.array_decl) ->
      let spatial =
        Array.fold_left (fun acc e -> acc * Affp.eval e env) 1 a.extents
      in
      acc + (spatial * match a.fold with Some m -> m | None -> 1))
    0 p.arrays

let pp ppf t =
  Fmt.pf ppf "@[<v>%s (%dD): data=%a steps=%a@," t.program t.spatial_dims Affp.pp
    t.data_points Affp.pp t.steps;
  List.iter
    (fun c -> Fmt.pf ppf "  %s: loads=%d flops=%d@," c.stmt c.loads c.flops)
    t.per_stmt;
  Fmt.pf ppf "@]"
