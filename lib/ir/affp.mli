(** Affine expressions over named program parameters (e.g. [N - 2]).

    Used for loop bounds and array extents, which may mention the problem
    size parameters but not the loop iterators. *)

type t = { const : int; terms : (string * int) list }
(** [const + Σ coeff·param]; [terms] is sorted by parameter name and
    contains no zero coefficients. *)

val const : int -> t
val param : string -> t
val add : t -> t -> t
val sub : t -> t -> t
val scale : int -> t -> t
val add_const : t -> int -> t

val eval : t -> (string -> int) -> int
(** Raises whatever the environment function raises on unknown params. *)

val params : t -> string list
val equal : t -> t -> bool
val is_const : t -> int option
val pp : t Fmt.t
val to_string : t -> string
