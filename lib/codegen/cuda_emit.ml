open Hextile_ir
open Hextile_tiling
open Hextile_poly

let iter_names = [| "i"; "j"; "k"; "l"; "m" |]

(* C expression for an access, reading/writing the staged shared copy.
   Local coordinates: spatial iterators relative to the shared box base. *)
let access_expr (prog : Stencil.t) (a : Stencil.access) =
  let decl = Stencil.array_decl prog a.array in
  let idx d o =
    let v = iter_names.(d) in
    if o = 0 then v else if o > 0 then Printf.sprintf "%s+%d" v o
    else Printf.sprintf "%s-%d" v (-o)
  in
  let spatial =
    String.concat ""
      (Array.to_list (Array.mapi (fun d o -> Printf.sprintf "[%s]" (idx d o)) a.offsets))
  in
  match decl.fold with
  | Some m ->
      let t =
        if a.time_off = 0 then "t" else Printf.sprintf "(t+%d)" a.time_off
      in
      Printf.sprintf "shm_%s[%s%%%d]%s" a.array t m spatial
  | None -> Printf.sprintf "shm_%s%s" a.array spatial

let rec fexpr_str prog (e : Stencil.fexpr) =
  match e with
  | Read a -> access_expr prog a
  | Fconst f -> Printf.sprintf "%gf" f
  | Neg e -> Printf.sprintf "(-%s)" (fexpr_str prog e)
  | Bin (op, l, r) ->
      let s = match op with Add -> "+" | Sub -> "-" | Mul -> "*" | Div -> "/" in
      Printf.sprintf "(%s %s %s)" (fexpr_str prog l) s (fexpr_str prog r)

(* Hexagon membership guards in local coordinates (tp, b). *)
let guards (t : Hybrid.t) =
  List.filter_map
    (fun (c : Constr.t) ->
      let ca = Constr.coeff c 0 and cb = Constr.coeff c 1 in
      let term k v = match k with
        | 0 -> None
        | 1 -> Some v
        | -1 -> Some ("-" ^ v)
        | k -> Some (Printf.sprintf "%d*%s" k v)
      in
      let parts = List.filter_map Fun.id [ term ca "tp"; term cb "b" ] in
      if parts = [] then None
      else
        let lhs = String.concat " + " parts in
        let lhs = if c.const = 0 then lhs else Printf.sprintf "%s + %d" lhs c.const in
        Some (Printf.sprintf "%s >= 0" lhs))
    (Polyhedron.constraints t.hex.poly)

let param_args (prog : Stencil.t) =
  String.concat ", " (List.map (fun p -> "int " ^ p) prog.params)

let array_args (prog : Stencil.t) =
  String.concat ", "
    (List.map (fun (a : Stencil.array_decl) -> "float *g_" ^ a.aname) prog.arrays)

let kernel (t : Hybrid.t) (prog : Stencil.t) ~phase =
  let b = Buffer.create 2048 in
  let pf fmt = Printf.ksprintf (Buffer.add_string b) fmt in
  let h = t.h in
  let height = (2 * h) + 2 in
  let hex = t.hex in
  let u_shift = if phase = 0 then h + 1 else 0 in
  let s_shift = if phase = 0 then hex.fl0 + hex.w0 + 1 else 0 in
  let drift = hex.fl1 - hex.fl0 in
  pf "__global__ void %s_phase%d(%s, %s, int TT)\n{\n" prog.name phase
    (array_args prog) (param_args prog);
  List.iter
    (fun (a : Stencil.array_decl) ->
      match a.fold with
      | Some m -> pf "  __shared__ float shm_%s[%d][SHM_Y_%s][SHM_X_%s];\n" a.aname m a.aname a.aname
      | None -> pf "  __shared__ float shm_%s[SHM_Y_%s][SHM_X_%s];\n" a.aname a.aname a.aname)
    prog.arrays;
  pf "  const int S0 = blockIdx.x + S0_FIRST(TT);\n";
  pf "  const int u0 = TT*%d - %d;               // tile origin, time\n" height u_shift;
  pf "  const int s00 = S0*%d - %d - TT*%d;      // tile origin, hex dim\n"
    hex.width s_shift drift;
  let n = t.dims in
  for d = 1 to n - 1 do
    pf "  for (int S%d = S%d_FIRST; S%d <= S%d_LAST; ++S%d) {   // classical tiles: sequential\n"
      d d d d d
  done;
  pf "    /* copy-in: rectangular over-approximation, full warp rows;\n"
  ;
  pf "       with inter-tile reuse only the fresh w-wide strip is loaded */\n";
  List.iter
    (fun (a : Stencil.array_decl) ->
      pf "    COPY_IN(shm_%s, g_%s);\n" a.aname a.aname)
    prog.arrays;
  pf "    __syncthreads();\n";
  pf "    for (int tp = 0; tp < %d; ++tp) {      // intra-tile time t'\n" height;
  pf "      const int u = u0 + tp;\n";
  pf "      if (u >= 0 && u < %d*%s) {\n" t.k (Affp.to_string prog.steps);
  pf "        const int t = u / %d;\n" t.k;
  List.iteri
    (fun si (s : Stencil.stmt) ->
      let cond = if t.k = 1 then "" else Printf.sprintf "if (u %% %d == %d) " t.k si in
      pf "        %s{ // %s\n" cond s.sname;
      pf "          if (IS_FULL_TILE) {\n";
      pf "            // specialized straight-line code: no guards, no divergence\n";
      pf "            #pragma unroll\n";
      pf "            for (int b = threadIdx.y; b < ROW_WIDTH(tp); b += blockDim.y) {\n";
      pf "              const int %s = s00 + ROW_LO(tp) + b;\n" iter_names.(0);
      for d = 1 to n - 1 do
        pf "              const int %s = S%d*%d - SKEW%d(tp) + threadIdx.%s;\n"
          iter_names.(d) d t.w.(d) d
          (if d = n - 1 then "x" else "z")
      done;
      pf "              %s = %s;\n" (access_expr prog s.write) (fexpr_str prog s.rhs);
      pf "              g_%s[GIDX] = %s;   // interleaved copy-out\n" s.write.array
        (access_expr prog s.write);
      pf "            }\n";
      pf "          } else {\n";
      pf "            // generic code for partial tiles: hexagon guards\n";
      pf "            for (int b = threadIdx.y; b < %d; b += blockDim.y) {\n" hex.width;
      pf "              if (%s\n                  && IN_DOMAIN) {\n"
        (String.concat "\n                  && " (guards t));
      pf "                /* as above */\n";
      pf "              }\n            }\n";
      pf "          }\n        }\n")
    prog.stmts;
  pf "      }\n      __syncthreads();\n    }\n";
  for _ = 1 to n - 1 do
    pf "  }\n"
  done;
  pf "}\n";
  Buffer.contents b

let host_and_kernels (t : Hybrid.t) (prog : Stencil.t) =
  let b = Buffer.create 4096 in
  let pf fmt = Printf.ksprintf (Buffer.add_string b) fmt in
  let height = (2 * t.h) + 1 + 1 in
  pf "// Hybrid hexagonal/classical tiling for %s\n" prog.name;
  pf "// h = %d (%d time steps per tile), w = (%s), %a\n" t.h height
    (String.concat ", " (List.map string_of_int (Array.to_list t.w)))
    (fun () c -> Fmt.str "%a" Hextile_deps.Cone.pp c) t.cone;
  pf "\n%s\n%s\n" (kernel t prog ~phase:0) (kernel t prog ~phase:1);
  pf "void %s_host(%s, %s)\n{\n" prog.name (array_args prog) (param_args prog);
  pf "  for (int TT = T_FIRST; TT <= T_LAST; ++TT) {\n";
  pf "    %s_phase0<<<GRID0(TT), BLOCK>>>(%s, %s, TT);\n" prog.name
    (String.concat ", " (List.map (fun (a : Stencil.array_decl) -> "g_" ^ a.aname) prog.arrays))
    (String.concat ", " prog.params);
  pf "    %s_phase1<<<GRID1(TT), BLOCK>>>(...);\n" prog.name;
  pf "  }\n}\n";
  Buffer.contents b
