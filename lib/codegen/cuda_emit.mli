(** CUDA C emission for a hybrid hexagonal/classical schedule.

    Produces display-level CUDA: a host driver looping over time tiles and
    launching one kernel per phase, plus the two kernels with shared-memory
    staging, the sequential classical-tile and intra-tile time loops, the
    hexagon membership guards for partial tiles, and a specialized
    guard-free unrolled body for full tiles (Section 4.3). The output is
    meant for inspection and documentation — this repository has no CUDA
    toolchain, the simulator executes the schedule directly. *)

open Hextile_ir
open Hextile_tiling

val host_and_kernels : Hybrid.t -> Stencil.t -> string
(** Full translation unit (host + both phase kernels). *)

val kernel : Hybrid.t -> Stencil.t -> phase:int -> string

(** {2 Shared emission helpers} (used by {!Opencl_emit}) *)

val access_expr : Stencil.t -> Stencil.access -> string
val fexpr_str : Stencil.t -> Stencil.fexpr -> string
val guards : Hybrid.t -> string list
(** Hexagon membership conditions in local coordinates [(tp, b)]. *)
