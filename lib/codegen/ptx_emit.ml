open Hextile_ir

type listing = { text : string; loads : int; stores : int; arith : int }

let hexfloat f = Printf.sprintf "0f%08lX" (Int32.bits_of_float f)

(* Synthetic but plausible shared-memory byte offsets: row-major over a
   padded box per (array, slot), slots and arrays stacked. *)
let make_addr (prog : Stencil.t) (stmt : Stencil.stmt) =
  let accs = stmt.write :: Stencil.distinct_reads stmt in
  let dims = Stencil.spatial_dims prog in
  let ext = Array.make dims 0 in
  List.iter
    (fun (a : Stencil.access) ->
      Array.iteri (fun d o -> ext.(d) <- max ext.(d) (abs o)) a.offsets)
    accs;
  let ext = Array.mapi (fun d r -> if d = dims - 1 then 32 + (2 * r) + 2 else 4 + (2 * r)) ext in
  let plane = Array.fold_left ( * ) 1 ext in
  let arrays = List.sort_uniq compare (List.map (fun (a : Stencil.access) -> a.array) accs) in
  fun (a : Stencil.access) ~tstep ->
    let decl = Stencil.array_decl prog a.array in
    let slot =
      match decl.fold with
      | Some m -> Hextile_util.Intutil.fmod (tstep + a.time_off) m
      | None -> 0
    in
    let ai = Option.get (List.find_index (String.equal a.array) arrays) in
    let base = ((ai * 2) + slot) * plane in
    let off = ref 0 in
    Array.iteri
      (fun d o -> off := (!off * ext.(d)) + (o + (ext.(d) / 2)))
      a.offsets;
    4 * (base + !off + 384)

let core_listing ?(sweep_dim = 0) (prog : Stencil.t) (stmt : Stencil.stmt) =
  let reads = Stencil.distinct_reads stmt in
  let addr = make_addr prog stmt in
  let shift (a : Stencil.access) d k =
    { a with offsets = Array.mapi (fun i o -> if i = d then o + k else o) a.offsets }
  in
  (* cells available in registers from the previous sweep iteration *)
  let avail (a : Stencil.access) =
    let a' = shift a sweep_dim 1 in
    List.exists (fun r -> r = a') reads || a' = stmt.write (* own previous store *)
  in
  let buf = Buffer.create 512 in
  let reg = ref 344 in
  let fresh () =
    incr reg;
    Printf.sprintf "%%f%d" !reg
  in
  let loads = ref 0 and arith = ref 0 in
  let cell_reg : (Stencil.access, string) Hashtbl.t = Hashtbl.create 8 in
  List.iter
    (fun (r : Stencil.access) ->
      if not (Hashtbl.mem cell_reg r) then
        if avail r then
          (* carried in a register from the previous iteration *)
          Hashtbl.replace cell_reg r (fresh ())
        else begin
          let d = fresh () in
          incr loads;
          Buffer.add_string buf
            (Printf.sprintf "ld.shared.f32 %s, [%%rd10+%d];\n" d (addr r ~tstep:0));
          Hashtbl.replace cell_reg r d
        end)
    reads;
  (* arithmetic with structural CSE *)
  let memo : (Stencil.fexpr, string) Hashtbl.t = Hashtbl.create 16 in
  let rec go (e : Stencil.fexpr) =
    match Hashtbl.find_opt memo e with
    | Some r -> r
    | None ->
        let r =
          match e with
          | Read a -> Hashtbl.find cell_reg a
          | Fconst f -> hexfloat f
          | Neg x ->
              let rx = go x in
              let d = fresh () in
              incr arith;
              Buffer.add_string buf (Printf.sprintf "neg.f32 %s, %s;\n" d rx);
              d
          | Bin (op, l, r') ->
              let rl = go l and rr = go r' in
              let opname =
                match op with
                | Add -> "add"
                | Sub -> "sub"
                | Mul -> "mul"
                | Div -> "div.rn"
              in
              let d = fresh () in
              incr arith;
              Buffer.add_string buf
                (Printf.sprintf "%s.f32 %s, %s, %s;\n" opname d rl rr);
              d
        in
        Hashtbl.replace memo e r;
        r
  in
  let result = go stmt.rhs in
  Buffer.add_string buf
    (Printf.sprintf "st.shared.f32 [%%rd10+%d], %s;\n" (addr stmt.write ~tstep:0) result);
  { text = Buffer.contents buf; loads = !loads; stores = 1; arith = !arith }
