open Hextile_ir
open Hextile_tiling

let param_args (prog : Stencil.t) =
  String.concat ", " (List.map (fun p -> "int " ^ p) prog.params)

let array_args (prog : Stencil.t) =
  String.concat ", "
    (List.map
       (fun (a : Stencil.array_decl) -> "__global float *g_" ^ a.aname)
       prog.arrays)

let kernel (t : Hybrid.t) (prog : Stencil.t) ~phase =
  let b = Buffer.create 2048 in
  let pf fmt = Printf.ksprintf (Buffer.add_string b) fmt in
  let h = t.h in
  let height = (2 * h) + 2 in
  let hex = t.hex in
  let u_shift = if phase = 0 then h + 1 else 0 in
  let s_shift = if phase = 0 then hex.fl0 + hex.w0 + 1 else 0 in
  let drift = hex.fl1 - hex.fl0 in
  pf "__kernel void %s_phase%d(%s, %s, int TT)\n{\n" prog.name phase
    (array_args prog) (param_args prog);
  List.iter
    (fun (a : Stencil.array_decl) ->
      match a.fold with
      | Some m ->
          pf "  __local float shm_%s[%d][SHM_Y_%s][SHM_X_%s];\n" a.aname m a.aname
            a.aname
      | None -> pf "  __local float shm_%s[SHM_Y_%s][SHM_X_%s];\n" a.aname a.aname a.aname)
    prog.arrays;
  pf "  const int S0 = get_group_id(0) + S0_FIRST(TT);\n";
  pf "  const int u0 = TT*%d - %d;\n" height u_shift;
  pf "  const int s00 = S0*%d - %d - TT*%d;\n" hex.width s_shift drift;
  let n = t.dims in
  for d = 1 to n - 1 do
    pf "  for (int S%d = S%d_FIRST; S%d <= S%d_LAST; ++S%d) {\n" d d d d d
  done;
  List.iter
    (fun (a : Stencil.array_decl) -> pf "    COPY_IN(shm_%s, g_%s);\n" a.aname a.aname)
    prog.arrays;
  pf "    barrier(CLK_LOCAL_MEM_FENCE);\n";
  pf "    for (int tp = 0; tp < %d; ++tp) {\n" height;
  pf "      const int u = u0 + tp;\n";
  pf "      if (u >= 0 && u < %d*%s) {\n" t.k (Affp.to_string prog.steps);
  pf "        const int t = u / %d;\n" t.k;
  List.iteri
    (fun si (s : Stencil.stmt) ->
      let cond = if t.k = 1 then "" else Printf.sprintf "if (u %% %d == %d) " t.k si in
      pf "        %s{ // %s\n" cond s.sname;
      pf "          if (IS_FULL_TILE) {\n";
      pf "            for (int b = get_local_id(1); b < ROW_WIDTH(tp); b += get_local_size(1)) {\n";
      pf "              const int i = s00 + ROW_LO(tp) + b;\n";
      for d = 1 to n - 1 do
        pf "              const int %c = S%d*%d - SKEW%d(tp) + get_local_id(%d);\n"
          (Char.chr (Char.code 'i' + d))
          d t.w.(d) d
          (if d = n - 1 then 0 else 2)
      done;
      pf "              %s = %s;\n" (Cuda_emit.access_expr prog s.write)
        (Cuda_emit.fexpr_str prog s.rhs);
      pf "              g_%s[GIDX] = %s;\n" s.write.array
        (Cuda_emit.access_expr prog s.write);
      pf "            }\n          } else {\n";
      pf "            // partial tile: hexagon guards\n";
      pf "            if (%s) { /* guarded form of the statement */ }\n"
        (String.concat " && " (Cuda_emit.guards t));
      pf "          }\n        }\n")
    prog.stmts;
  pf "      }\n      barrier(CLK_LOCAL_MEM_FENCE);\n    }\n";
  for _ = 1 to n - 1 do
    pf "  }\n"
  done;
  pf "}\n";
  Buffer.contents b

let host_and_kernels (t : Hybrid.t) (prog : Stencil.t) =
  let b = Buffer.create 4096 in
  let pf fmt = Printf.ksprintf (Buffer.add_string b) fmt in
  pf "// OpenCL translation of the hybrid schedule for %s\n" prog.name;
  pf "%s\n%s\n" (kernel t prog ~phase:0) (kernel t prog ~phase:1);
  pf "/* host: for each TT, clEnqueueNDRangeKernel(%s_phase0),\n" prog.name;
  pf "   then clEnqueueNDRangeKernel(%s_phase1); global size = S0 range,\n" prog.name;
  pf "   local size = the thread block shape. */\n";
  Buffer.contents b
