(** PTX-style listing of the unrolled core computation (Figure 2).

    Emits the steady-state body of one unrolled inner iteration of a
    statement, after register reuse: values produced by the previous
    iteration along the sweep direction (and the thread's own last store)
    stay in registers, so only the cells newly entering the stencil
    neighbourhood are loaded from shared memory. For the Figure 1 Jacobi
    kernel this yields exactly 3 [ld.shared] + 5 arithmetic ops + 1
    [st.shared], matching the paper's Figure 2. *)

open Hextile_ir

type listing = {
  text : string;
  loads : int;  (** ld.shared instructions *)
  stores : int;
  arith : int;  (** arithmetic instructions *)
}

val core_listing : ?sweep_dim:int -> Stencil.t -> Stencil.stmt -> listing
(** [sweep_dim] is the spatial dimension of the sequential sweep used for
    register reuse (default: dimension 0, the time-tile row direction). *)

val hexfloat : float -> string
(** PTX hex encoding of a float32 immediate, e.g. [0f3E4CCCCD] for 0.2. *)
