(** OpenCL emission for a hybrid hexagonal/classical schedule.

    The paper's framework "currently translat[es] C input to CUDA or
    OpenCL output"; this is the OpenCL counterpart of {!Cuda_emit}
    (same structure: two phase kernels, [__local] staging, classical-tile
    and intra-tile time loops, hexagon guards for partial tiles). Display
    level, like the CUDA emitter. *)

open Hextile_ir
open Hextile_tiling

val host_and_kernels : Hybrid.t -> Stencil.t -> string
val kernel : Hybrid.t -> Stencil.t -> phase:int -> string
