(** The opposite dependence cone and its bounding slopes (Figure 3).

    For the hexagonally tiled dimension the paper needs rational constants
    [δ0, δ1] with [Δs ≤ δ0·Δu] and [Δs ≥ -δ1·Δu] for every dependence
    distance [(Δu, ..., Δs, ...)]; for a classically tiled dimension only
    the lower bound [δ1] is needed. Both are tightest-possible maxima of
    ratios over the finite distance set, clamped to be non-negative (a
    wider cone is always legal, and the tile-shape formulas assume
    [⌊δh⌋ ≥ 0]). *)

type t = { delta0 : Hextile_util.Rat.t; delta1 : Hextile_util.Rat.t }

val of_deps : Dep.t list -> dim:int -> t
(** [of_deps deps ~dim] bounds spatial dimension [dim] (0-based; distance
    index [dim+1]) against the schedule time distance. Raises
    [Invalid_argument] if some dependence has [Δu < 1]. *)

val delta1_only : Dep.t list -> dim:int -> Hextile_util.Rat.t
(** The classical-tiling skew δ1 for dimension [dim] (Section 3.4). *)

val check : t -> Dep.t list -> dim:int -> bool
(** Verify that every dependence distance lies inside the cone. *)

val rays : t -> (Hextile_util.Rat.t * Hextile_util.Rat.t) * (Hextile_util.Rat.t * Hextile_util.Rat.t)
(** The generators [(-1, -δ0)] and [(-1, δ1)] of the opposite cone, as
    drawn in Figure 3. *)

val pp : t Fmt.t
