open Hextile_ir
open Hextile_util

type kind = Flow | Anti | Output

type t = {
  src : int;
  dst : int;
  kind : kind;
  array : string;
  dist : int array;
}

(* One entry per access of the program: statement index, the access, and
   whether it is the statement's write. *)
let accesses_of (p : Stencil.t) =
  List.concat
    (List.mapi
       (fun i (s : Stencil.stmt) ->
         (i, s.write, true) :: List.map (fun a -> (i, a, false)) (Stencil.reads s))
       p.stmts)

(* Minimal Δu >= 1 with Δu = k·Δt + di where Δt ≡ dc (mod m).
   Δu = k·(dc + j·m) + di over j ∈ Z; step k·m > 0, so a minimal value
   exists. *)
let minimal_du ~k ~m ~dc ~di =
  let step = k * m in
  let base = (k * dc) + di in
  (* smallest base + j*step >= 1 *)
  base + (step * Intutil.cdiv (1 - base) step)

let analyze_uncached (p : Stencil.t) =
  (match Stencil.validate p with
  | Ok () -> ()
  | Error m -> invalid_arg ("Dep.analyze: " ^ m));
  let k = List.length p.stmts in
  let n = Stencil.spatial_dims p in
  let accs = accesses_of p in
  let deps = ref [] in
  List.iter
    (fun (i1, (a1 : Stencil.access), w1) ->
      List.iter
        (fun (i2, (a2 : Stencil.access), w2) ->
          if String.equal a1.array a2.array && (w1 || w2) then begin
            let decl = Stencil.array_decl p a1.array in
            let m = match decl.fold with Some m -> m | None -> 1 in
            (* Same cell: slot(t1+c1) = slot(t2+c2) and x1+o1 = x2+o2. *)
            let dc = a1.time_off - a2.time_off in
            let du = minimal_du ~k ~m ~dc ~di:(i2 - i1) in
            let dist =
              Array.init (n + 1) (fun d ->
                  if d = 0 then du else a1.offsets.(d - 1) - a2.offsets.(d - 1))
            in
            let kind =
              match (w1, w2) with
              | true, true -> Output
              | true, false -> Flow
              | false, true -> Anti
              | false, false -> assert false
            in
            (* A statement instance reading a cell it also writes (same u)
               is not a dependence; minimal_du already enforces Δu >= 1,
               so every recorded distance is a real ordering constraint. *)
            deps := { src = i1; dst = i2; kind; array = a1.array; dist } :: !deps
          end)
        accs)
    accs;
  (* Deduplicate identical records (several reads can induce the same
     distance). *)
  List.sort_uniq compare !deps

(* The analysis is a pure function of the program and is re-requested
   for every tile-size candidate and scheme run; memoize it in a
   process-shared publish-once table keyed structurally by the program,
   so concurrent tile-size searches and scheme runs on different domains
   analyze each program once between them instead of once per domain.
   Only successful analyses are published, so validation errors keep
   raising. *)
module Oncemap = Hextile_par.Oncemap

let memo : (Stencil.t, t list) Oncemap.t =
  Oncemap.create ~bits:8 ~name:"dep.analyze" ()

let analyze (p : Stencil.t) = Oncemap.find_or_compute memo p (fun () -> analyze_uncached p)

let distance_vectors deps = List.sort_uniq compare (List.map (fun d -> d.dist) deps)

let pp_kind ppf = function
  | Flow -> Fmt.string ppf "flow"
  | Anti -> Fmt.string ppf "anti"
  | Output -> Fmt.string ppf "output"

let pp ppf d =
  Fmt.pf ppf "%a S%d -> S%d on %s: (%a)" pp_kind d.kind d.src d.dst d.array
    Fmt.(array ~sep:(any ", ") int)
    d.dist
