(** Dependence analysis on canonical stencil programs.

    Replaces the isl-based dataflow analysis of the paper's toolchain.
    For the canonical form (constant access offsets, single writer per
    array, [k] statements under one time loop with schedule
    [Li[t,s] -> [k·t+i, s]]) every memory dependence has a constant
    distance vector in the schedule space [(u, s0, ..., sn)]; this module
    enumerates the minimal representatives.

    The analysis is memory-based (flow, anti and output dependences on
    storage cells). It is a conservative superset of value-based dataflow,
    which keeps every schedule it validates legal. *)

open Hextile_ir

type kind = Flow | Anti | Output

type t = {
  src : int;  (** source statement index *)
  dst : int;  (** destination statement index *)
  kind : kind;
  array : string;
  dist : int array;
      (** distance in schedule space: [Δu; Δs0; ...; Δsn] with [Δu >= 1] *)
}

val analyze : Stencil.t -> t list
(** All minimal dependence distances of the program. Memoized per domain
    (structural key on the program), so repeated queries — one per
    tile-size candidate, one per scheme run — cost a table lookup; the
    second call on a domain returns the same (physically shared,
    immutable) list. *)

val analyze_uncached : Stencil.t -> t list
(** The underlying analysis, bypassing the memo table. *)

val distance_vectors : t list -> int array list
(** Distinct distance vectors, sorted. *)

val pp : t Fmt.t
val pp_kind : kind Fmt.t
