open Hextile_util

type t = { delta0 : Rat.t; delta1 : Rat.t }

let ratio_bounds deps ~dim =
  List.fold_left
    (fun (d0, d1) (dep : Dep.t) ->
      let du = dep.dist.(0) and ds = dep.dist.(dim + 1) in
      if du < 1 then
        invalid_arg
          (Fmt.str "Cone.of_deps: dependence with non-positive time distance %d" du);
      let r = Rat.make ds du in
      (Rat.max d0 r, Rat.max d1 (Rat.neg r)))
    (Rat.zero, Rat.zero) deps

let of_deps deps ~dim =
  let delta0, delta1 = ratio_bounds deps ~dim in
  { delta0; delta1 }

let delta1_only deps ~dim = (of_deps deps ~dim).delta1

let check t deps ~dim =
  List.for_all
    (fun (dep : Dep.t) ->
      let du = dep.dist.(0) and ds = dep.dist.(dim + 1) in
      Rat.compare (Rat.of_int ds) (Rat.mul_int t.delta0 du) <= 0
      && Rat.compare (Rat.of_int ds) (Rat.neg (Rat.mul_int t.delta1 du)) >= 0)
    deps

let rays t =
  ((Rat.minus_one, Rat.neg t.delta0), (Rat.minus_one, t.delta1))

let pp ppf t = Fmt.pf ppf "cone(δ0=%a, δ1=%a)" Rat.pp t.delta0 Rat.pp t.delta1
