let rec gcd a b = if b = 0 then abs a else gcd b (a mod b)

let lcm a b = if a = 0 || b = 0 then 0 else abs (a / gcd a b * b)

let fdiv a b =
  let q = a / b and r = a mod b in
  if r <> 0 && (r < 0) <> (b < 0) then q - 1 else q

let fmod a b = a - (b * fdiv a b)

let cdiv a b = -fdiv (-a) b

let pow b e =
  assert (e >= 0);
  let rec go acc b e =
    if e = 0 then acc
    else if e land 1 = 1 then go (acc * b) (b * b) (e asr 1)
    else go acc (b * b) (e asr 1)
  in
  go 1 b e

let range lo hi =
  let rec go i acc = if i < lo then acc else go (i - 1) (i :: acc) in
  go hi []

let sum = List.fold_left ( + ) 0

let fold_range lo hi ~init ~f =
  let rec go acc i = if i > hi then acc else go (f acc i) (i + 1) in
  go init lo
