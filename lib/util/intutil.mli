(** Integer helpers with floor semantics.

    OCaml's built-in [/] and [mod] truncate toward zero; polyhedral
    schedules need floor division and the matching non-negative remainder
    (the paper's [⌊·⌋] and [mod]). All functions here use floor
    semantics. *)

val gcd : int -> int -> int
(** [gcd a b] is the non-negative greatest common divisor; [gcd 0 0 = 0]. *)

val lcm : int -> int -> int
(** Least common multiple, non-negative. [lcm 0 _ = 0]. *)

val fdiv : int -> int -> int
(** [fdiv a b] is [⌊a/b⌋]. [b] must be non-zero; works for negative [a]
    and negative [b]. *)

val fmod : int -> int -> int
(** [fmod a b] is [a - b * fdiv a b]; has the sign of [b] (non-negative
    for positive [b]). *)

val cdiv : int -> int -> int
(** [cdiv a b] is [⌈a/b⌉]. *)

val pow : int -> int -> int
(** [pow b e] for [e >= 0]. *)

val range : int -> int -> int list
(** [range lo hi] is [[lo; lo+1; ...; hi]]; empty if [lo > hi]. *)

val sum : int list -> int

val fold_range : int -> int -> init:'a -> f:('a -> int -> 'a) -> 'a
(** [fold_range lo hi ~init ~f] folds [f] over [lo..hi] inclusive without
    materialising the list. *)
