(** Exact rational arithmetic over native integers.

    Values are kept normalised: positive denominator, numerator and
    denominator coprime. Native [int] (63-bit) is ample for the small
    coefficients appearing in tiling schedules and the simplex tableaux of
    this project; overflow is not checked. *)

type t = private { num : int; den : int }

val make : int -> int -> t
(** [make num den] normalises; raises [Division_by_zero] if [den = 0]. *)

val of_int : int -> t

val zero : t
val one : t
val minus_one : t

val num : t -> int
val den : t -> int

val add : t -> t -> t
val sub : t -> t -> t
val mul : t -> t -> t
val div : t -> t -> t
(** [div] raises [Division_by_zero] on a zero divisor. *)

val neg : t -> t
val inv : t -> t
val abs : t -> t

val mul_int : t -> int -> t
val add_int : t -> int -> t

val compare : t -> t -> int
val equal : t -> t -> bool
val sign : t -> int
val min : t -> t -> t
val max : t -> t -> t

val is_integer : t -> bool

val floor : t -> int
(** [⌊x⌋]. *)

val ceil : t -> int
(** [⌈x⌉]. *)

val frac : t -> t
(** Fractional part [{x} = x - ⌊x⌋], in [[0, 1)]. *)

val to_float : t -> float
val pp : t Fmt.t
val to_string : t -> string

val ( + ) : t -> t -> t
val ( - ) : t -> t -> t
val ( * ) : t -> t -> t
val ( / ) : t -> t -> t
val ( < ) : t -> t -> bool
val ( <= ) : t -> t -> bool
val ( > ) : t -> t -> bool
val ( >= ) : t -> t -> bool
val ( = ) : t -> t -> bool
