open Hextile_ir
open Hextile_util
open Hextile_deps
open Hextile_tiling
open Hextile_gpusim
open Hextile_schemes

type cell_diff = {
  c_array : string;
  c_index : int array;
  c_expected : float;
  c_got : float;
}

type failure =
  | Mismatch of {
      scheme : string;
      ndiffs : int;
      diffs : cell_diff list;
      updates_got : int;
      updates_want : int;
    }
  | Crash of { scheme : string; error : string }
  | Sanitizer of {
      scheme : string;
      findings : Sanitize.finding list;
      dropped : int;
    }

let scheme_of_failure = function
  | Mismatch { scheme; _ } | Crash { scheme; _ } | Sanitizer { scheme; _ } ->
      scheme

let kind_of_failure = function
  | Mismatch _ -> "mismatch"
  | Crash _ -> "crash"
  | Sanitizer _ -> "sanitizer"

let pp_failure ppf = function
  | Mismatch { scheme; ndiffs; diffs; updates_got; updates_want } ->
      Fmt.pf ppf "@[<v2>%s: %d cell(s) differ from the interpreter" scheme
        ndiffs;
      List.iter
        (fun d ->
          Fmt.pf ppf "@,%s[%a]: expected %.17g, got %.17g" d.c_array
            Fmt.(array ~sep:(any ",") int)
            d.c_index d.c_expected d.c_got)
        diffs;
      if updates_got <> updates_want then
        Fmt.pf ppf "@,updates: expected %d, got %d" updates_want updates_got;
      Fmt.pf ppf "@]"
  | Crash { scheme; error } -> Fmt.pf ppf "%s: crashed: %s" scheme error
  | Sanitizer { scheme; findings; dropped } ->
      Fmt.pf ppf "@[<v2>%s: sanitizer reported %d finding(s)%s" scheme
        (List.length findings + dropped)
        (if dropped > 0 then Fmt.str " (%d not recorded)" dropped else "");
      List.iter (fun f -> Fmt.pf ppf "@,%a" Sanitize.pp_finding f) findings;
      Fmt.pf ppf "@]"

(* ---- runner configurations -------------------------------------------- *)

(* Smallest tile height compatible with Hybrid.make's (h+1) mod k = 0. *)
let hybrid_h ~k =
  let rec go h = if (h + 1) mod k = 0 then h else go (h + 1) in
  go 1

let hybrid_config prog =
  let k = List.length prog.Stencil.stmts in
  let dims = Stencil.spatial_dims prog in
  let h = hybrid_h ~k in
  let cone = Cone.of_deps (Dep.analyze prog) ~dim:0 in
  let w0 = max (Hexagon.min_w0 ~h cone) 2 in
  (* modest widths: exercise multi-tile execution even at small N *)
  let w =
    match dims with
    | 1 -> [| w0 |]
    | 2 -> [| w0; 16 |]
    | _ -> Array.append [| w0; 4 |] (Array.make (dims - 2) 16)
  in
  {
    Hybrid_exec.h;
    w;
    threads = 64;
    strategy = Hybrid_exec.best_strategy;
    register_tile = false;
  }

let split_config prog =
  let hh = 4 in
  let cone = Cone.of_deps (Dep.analyze prog) ~dim:0 in
  let r = max 1 (Rat.ceil (Rat.max cone.delta0 cone.delta1)) in
  { Split_tiling.hh; width = max 64 ((2 * r * hh) + 8) }

type runner = {
  rname : string;
  sanitize : bool;  (** run under the gpusim race/barrier sanitizer *)
  run :
    ?pool:Hextile_par.Par.pool ->
    Stencil.t ->
    (string -> int) ->
    Device.t ->
    Common.result;
}

(* The sanitizer only understands the hybrid pipeline's barrier structure
   (a __syncthreads after every time step); overtile/ppcg separate their
   phases by kernel launch boundaries instead, which the word table
   already resets on, but their shared instrumentation issues no
   inter-statement barriers — so only the hybrid runners opt in. *)
let runners prog =
  let k = List.length prog.Stencil.stmts in
  let dims = Stencil.spatial_dims prog in
  let base =
    [
      {
        rname = "hybrid";
        sanitize = true;
        run =
          (fun ?pool p env dev ->
            Hybrid_exec.run ?pool ~config:(hybrid_config p) p env dev);
      };
      {
        rname = "hybrid-global";
        sanitize = true;
        run =
          (fun ?pool p env dev ->
            let config =
              {
                (hybrid_config p) with
                Hybrid_exec.strategy = Hybrid_exec.strategy_of_step 'a';
              }
            in
            Hybrid_exec.run ?pool ~config p env dev);
      };
      {
        rname = "ppcg";
        sanitize = false;
        run = (fun ?pool p env dev -> Ppcg.run ?pool p env dev);
      };
      {
        rname = "par4all";
        sanitize = false;
        run = (fun ?pool p env dev -> Par4all.run ?pool p env dev);
      };
      {
        rname = "overtile";
        sanitize = false;
        run = (fun ?pool p env dev -> Overtile.run ?pool p env dev);
      };
    ]
  in
  if dims = 1 && k = 1 then
    base
    @ [
        {
          rname = "split";
          sanitize = false;
          run =
            (fun ?pool p env dev ->
              Split_tiling.run ?pool ~config:(split_config p) p env dev);
        };
      ]
  else base

let scheme_names prog = List.map (fun r -> r.rname) (runners prog)

let all_scheme_names =
  [ "hybrid"; "hybrid-global"; "ppcg"; "par4all"; "overtile"; "split" ]

(* ---- comparison ------------------------------------------------------- *)

let max_reported_diffs = 4

let decode_index dims flat =
  let n = Array.length dims in
  let idx = Array.make n 0 in
  let rest = ref flat in
  for d = n - 1 downto 0 do
    idx.(d) <- !rest mod dims.(d);
    rest := !rest / dims.(d)
  done;
  idx

let compare_grids prog (reference : (string, Grid.t) Hashtbl.t)
    (got : (string, Grid.t) Hashtbl.t) =
  let ndiffs = ref 0 in
  let diffs = ref [] in
  List.iter
    (fun (a : Stencil.array_decl) ->
      let gref = Grid.find reference a.aname in
      let ggot = Grid.find got a.aname in
      Array.iteri
        (fun i expected ->
          let actual = ggot.Grid.data.(i) in
          (* bit compare: NaN = NaN, and no tolerance to hide drift *)
          if Int64.bits_of_float expected <> Int64.bits_of_float actual then begin
            incr ndiffs;
            if List.length !diffs < max_reported_diffs then
              diffs :=
                {
                  c_array = a.aname;
                  c_index = decode_index gref.Grid.dims i;
                  c_expected = expected;
                  c_got = actual;
                }
                :: !diffs
          end)
        gref.Grid.data)
    prog.Stencil.arrays;
  (!ndiffs, List.rev !diffs)

let run_one ?pool runner prog env dev ~updates_want ~reference =
  let failures = ref [] in
  let outcome =
    if runner.sanitize then begin
      Sanitize.reset ();
      Sanitize.enable ();
      Fun.protect
        ~finally:(fun () -> Sanitize.disable ())
        (fun () ->
          let r = try Ok (runner.run ?pool prog env dev) with e -> Error e in
          let findings = Sanitize.findings () in
          if findings <> [] then
            failures :=
              Sanitizer
                {
                  scheme = runner.rname;
                  findings;
                  dropped = Sanitize.dropped ();
                }
              :: !failures;
          r)
    end
    else try Ok (runner.run ?pool prog env dev) with e -> Error e
  in
  (match outcome with
  | Error e ->
      failures :=
        Crash { scheme = runner.rname; error = Printexc.to_string e }
        :: !failures
  | Ok (r : Common.result) ->
      let ndiffs, diffs = compare_grids prog reference r.grids in
      if ndiffs > 0 || r.updates <> updates_want then
        failures :=
          Mismatch
            {
              scheme = runner.rname;
              ndiffs;
              diffs;
              updates_got = r.updates;
              updates_want;
            }
          :: !failures);
  List.rev !failures

let envf_of_bindings env p =
  match List.assoc_opt p env with
  | Some v -> v
  | None -> invalid_arg ("Oracle: unbound parameter " ^ p)

(* Direct per-scheme entry for the determinism tests: same runner
   configurations as [check], no oracle comparison, no sanitizer. *)
let run_scheme ?pool name prog env dev =
  match List.find_opt (fun r -> r.rname = name) (runners prog) with
  | None ->
      Error
        (Fmt.str "unknown scheme %s (available: %a)" name
           Fmt.(list ~sep:comma string)
           (scheme_names prog))
  | Some r -> (
      try Ok (r.run ?pool prog (envf_of_bindings env) dev)
      with e -> Error (Printexc.to_string e))

let check ?pool ?mutate ?schemes prog env dev =
  let envf = envf_of_bindings env in
  let all = runners prog in
  let known n = List.exists (fun r -> r.rname = n) all in
  let bad_names =
    List.filter (fun n -> not (known n))
      (Option.value schemes ~default:[] @ Option.to_list mutate)
  in
  if bad_names <> [] then
    Error
      (Fmt.str "unknown scheme(s) %a (available: %a)"
         Fmt.(list ~sep:comma string)
         bad_names
         Fmt.(list ~sep:comma string)
         (scheme_names prog))
  else
    let selected =
      match schemes with
      | None -> all
      | Some names -> List.filter (fun r -> List.mem r.rname names) all
    in
    let mutated =
      match mutate with
      | None -> Ok None
      | Some _ -> (
          match Gen.flip_offset prog with
          | Some p -> Ok (Some p)
          | None -> Error "program has no nonzero read offset to flip")
    in
    match mutated with
    | Error m -> Error m
    | Ok mutated ->
        (* ground truth always comes from the unmutated program *)
        let reference = Interp.run prog envf in
        let updates_want = Interp.stencil_updates prog envf in
        Ok
          (List.concat_map
             (fun r ->
               let p =
                 match (mutate, mutated) with
                 | Some m, Some prog' when m = r.rname -> prog'
                 | _ -> prog
               in
               run_one ?pool r p envf dev ~updates_want ~reference)
             selected)
