(** Print a stencil IR program back to the C subset the frontend parses.

    The output is the canonical form [Lower.program] produces when
    reparsing: statements in order named [S0, S1, ...], the time loop
    [for (t = 0; t < T; t++)], spatial iterators [i0..i2] in nest order,
    buffering indices [(t + c) %% m], fully parenthesised float
    expressions, and [%.17g] float literals (which round-trip exactly).
    [Front.parse_string (to_source p)] therefore yields a program
    structurally equal to [p] whenever [p] is itself in canonical form —
    which generated programs and the built-in suite are. *)

open Hextile_ir

val to_source : Stencil.t -> string

val equal_program : Stencil.t -> Stencil.t -> bool
(** Structural equality of two programs: parameters, steps, array
    declarations (order, extents, folding), and statements (bounds,
    accesses, right-hand sides — compared positionally). Float constants
    compare by value. Program and statement names are labels, not
    semantics, and are ignored. *)
