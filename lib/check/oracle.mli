(** Differential executor: the sequential reference interpreter as the
    oracle for every scheme executor.

    One [check] runs a program through [Interp.run] and through each
    scheme — the gpusim-executed hybrid pipeline (shared-memory and
    global-read variants, both under the {!Hextile_gpusim.Sanitize} race
    checker), [ppcg], [par4all], [overtile], and [split_tiling] where its
    preconditions hold (1-D, single statement) — then compares final
    grids cell-exactly (bit compare, so NaNs cannot hide) and the update
    counts, and collects the sanitizer's findings. *)

open Hextile_ir
open Hextile_gpusim

type cell_diff = {
  c_array : string;
  c_index : int array;  (** full storage index; leading slot if folded *)
  c_expected : float;
  c_got : float;
}

type failure =
  | Mismatch of {
      scheme : string;
      ndiffs : int;  (** total differing cells across all arrays *)
      diffs : cell_diff list;  (** first few, for the report *)
      updates_got : int;
      updates_want : int;
    }
  | Crash of { scheme : string; error : string }
  | Sanitizer of {
      scheme : string;
      findings : Sanitize.finding list;
      dropped : int;
    }

val scheme_of_failure : failure -> string

val kind_of_failure : failure -> string
(** ["mismatch"], ["crash"] or ["sanitizer"] — the failure signature used
    by the shrinker to keep a counterexample failing {e the same way}. *)

val pp_failure : failure Fmt.t

val scheme_names : Stencil.t -> string list
(** The runner names [check] will execute for this program, in order. *)

val all_scheme_names : string list
(** The full universe of runner names (some only apply to certain program
    shapes, e.g. ["split"] to 1-D single-statement programs). *)

val run_scheme :
  ?pool:Hextile_par.Par.pool ->
  string ->
  Stencil.t ->
  (string * int) list ->
  Device.t ->
  (Hextile_schemes.Common.result, string) result
(** Run one scheme by name with exactly the configuration [check] would
    use, without the oracle comparison or the sanitizer — the entry point
    the determinism tests use to compare a scheme's full result (grids,
    counters, updates) across [--jobs] values. [Error _] on an unknown
    name or a crash. *)

val check :
  ?pool:Hextile_par.Par.pool ->
  ?mutate:string ->
  ?schemes:string list ->
  Stencil.t ->
  (string * int) list ->
  Device.t ->
  (failure list, string) result
(** Run the differential comparison; [Ok []] means every scheme agreed
    with the interpreter and the sanitizer stayed quiet. [?pool] lets the
    executors run simulated blocks across domains (results are identical
    by the determinism contract). [?schemes] restricts the runner set by
    name. [?mutate] runs the named scheme on an offset-flipped copy of
    the program ({!Gen.flip_offset}) — the harness's own self-test that
    an injected schedule bug is caught; [Error _] when the program has no
    offset to flip or a name is unknown. *)
