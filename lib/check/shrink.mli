(** Greedy counterexample shrinking.

    Starting from a failing (program, valuation) pair, repeatedly try
    smaller candidates — fewer statements, halved/decremented parameter
    values, unused arrays dropped, right-hand-side subtrees hoisted,
    offsets moved toward zero — and keep the first candidate that is
    still valid ({!valid}) and still fails the caller's predicate. Stops
    at a fixed point or after [max_checks] predicate evaluations (each
    evaluation typically re-runs the differential oracle, so the bound
    caps total work). *)

open Hextile_ir

val valid : Stencil.t -> (string * int) list -> bool
(** [Stencil.validate] + {!Gen.well_formed} + [Analysis.bounds_check]
    under the valuation — the envelope in which the oracle's verdict is
    meaningful. *)

val candidates :
  Stencil.t -> (string * int) list -> (Stencil.t * (string * int) list) list
(** One round of strictly-smaller variants, biggest reductions first.
    Not filtered for validity. *)

val shrink :
  ?max_checks:int ->
  still_fails:(Stencil.t -> (string * int) list -> bool) ->
  Stencil.t ->
  (string * int) list ->
  Stencil.t * (string * int) list
(** Greedy fixpoint; [max_checks] defaults to 200. The result satisfies
    [still_fails] (the input is returned unchanged if no candidate
    does). *)
