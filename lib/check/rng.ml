(* SplitMix64 (Steele, Lea, Flood 2014): a tiny, high-quality, splittable
   generator. State advances by a Weyl constant; outputs are a mixed copy
   of the state. *)

type t = { mutable state : int64; seed : int64 }

let mix z =
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 30)) 0xBF58476D1CE4E5B9L in
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 27)) 0x94D049BB133111EBL in
  Int64.logxor z (Int64.shift_right_logical z 31)

let golden = 0x9E3779B97F4A7C15L

let of_state s = { state = s; seed = s }
let create seed = of_state (mix (Int64.of_int seed))

let next t =
  t.state <- Int64.add t.state golden;
  mix t.state

let derive t i = of_state (mix (Int64.add t.seed (mix (Int64.of_int i))))

let int t n =
  if n <= 0 then invalid_arg "Rng.int: bound must be positive";
  Int64.to_int (Int64.rem (Int64.shift_right_logical (next t) 1) (Int64.of_int n))

let in_range t lo hi =
  if lo > hi then invalid_arg "Rng.in_range: empty range";
  lo + int t (hi - lo + 1)

let bool t = Int64.logand (next t) 1L = 1L

let float t x =
  let u = Int64.to_float (Int64.shift_right_logical (next t) 11) in
  x *. (u /. 9007199254740992.0 (* 2^53 *))

let chance t p = float t 1.0 < p

let pick t xs =
  match xs with
  | [] -> invalid_arg "Rng.pick: empty list"
  | _ -> List.nth xs (int t (List.length xs))
