open Hextile_ir

(* ---- semantic envelope ------------------------------------------------ *)

(* One statement's instances at one time step must be independent: every
   executor runs them in parallel (warps of a launch), while the
   interpreter sweeps them in row-major order. The two agree exactly when
   a statement never reads another instance's cell from the slot it is
   writing — i.e. any read of the write slot of its own array is the
   written cell itself (the fdtd-style in-place pattern). Cross-statement
   and cross-slot reads are ordered by statement/step sequencing, which
   all executors preserve, so those are unrestricted. *)
let well_formed (p : Stencil.t) =
  let fail fmt = Fmt.kstr (fun m -> Error m) fmt in
  let rec stmts = function
    | [] -> Ok ()
    | (s : Stencil.stmt) :: rest ->
        let w = s.write in
        let m =
          match (Stencil.array_decl p w.array).fold with Some m -> m | None -> 1
        in
        let bad =
          List.find_opt
            (fun (r : Stencil.access) ->
              String.equal r.array w.array
              && (r.time_off - w.time_off) mod m = 0
              && r.offsets <> w.offsets)
            (Stencil.reads s)
        in
        (match bad with
        | Some r ->
            fail
              "statement %s: read of %s at the write slot with offsets (%a) \
               differing from the written cell (%a) — instances of one step \
               would not be independent"
              s.sname r.array
              Fmt.(array ~sep:(any ",") int)
              r.offsets
              Fmt.(array ~sep:(any ",") int)
              w.offsets
        | None -> stmts rest)
  in
  match Stencil.validate p with Error m -> Error m | Ok () -> stmts p.stmts

(* ---- generation ------------------------------------------------------- *)

let gen_offset rng =
  (* weighted toward the small neighbourhoods real stencils use *)
  let u = Rng.int rng 10 in
  if u < 4 then 0
  else if u < 6 then 1
  else if u < 8 then -1
  else if u < 9 then 2
  else -2

let gen_offsets rng ~dims = Array.init dims (fun _ -> gen_offset rng)

(* Build a random expression tree over the given leaves, each used once. *)
let rec build_expr rng (leaves : Stencil.fexpr list) =
  match leaves with
  | [] -> assert false
  | [ e ] -> if Rng.chance rng 0.15 then Stencil.Neg e else e
  | _ ->
      let n = List.length leaves in
      let cut = 1 + Rng.int rng (n - 1) in
      let l = List.filteri (fun i _ -> i < cut) leaves in
      let r = List.filteri (fun i _ -> i >= cut) leaves in
      let op = Rng.pick rng Stencil.[ Add; Add; Add; Sub; Sub; Mul ] in
      Stencil.Bin (op, build_expr rng l, build_expr rng r)

let generate rng =
  let dims = Rng.pick rng [ 1; 1; 2; 2; 2; 3 ] in
  let k = Rng.pick rng [ 1; 1; 2; 2; 3 ] in
  let extents = Array.init dims (fun _ -> Affp.param "N") in
  let written =
    List.init k (fun i ->
        let fold =
          match Rng.int rng 4 with 0 -> Some 2 | 1 -> Some 3 | _ -> None
        in
        { Stencil.aname = Fmt.str "A%d" i; extents; fold })
  in
  let coeff =
    if Rng.chance rng 0.3 then
      [ { Stencil.aname = "C"; extents; fold = None } ]
    else []
  in
  let arrays = written @ coeff in
  let decl name = List.find (fun (a : Stencil.array_decl) -> a.aname = name) arrays in
  let stmts =
    List.init k (fun i ->
        let own = Fmt.str "A%d" i in
        let wfold = (decl own).fold in
        let write =
          {
            Stencil.array = own;
            time_off = (match wfold with Some m -> m - 1 | None -> 0);
            offsets = Array.make dims 0;
          }
        in
        let nreads = if Rng.chance rng 0.08 then 0 else 1 + Rng.int rng 3 in
        let sources =
          own :: List.filter_map
                   (fun (a : Stencil.array_decl) ->
                     if a.aname = own then None else Some a.aname)
                   arrays
        in
        let reads =
          List.init nreads (fun _ ->
              let src = Rng.pick rng sources in
              if src = own then
                match wfold with
                | None ->
                    (* in-place self-read: must be the written cell *)
                    { Stencil.array = own; time_off = 0; offsets = Array.make dims 0 }
                | Some m ->
                    (* any slot except the one being written this step *)
                    {
                      Stencil.array = own;
                      time_off = Rng.int rng (m - 1);
                      offsets = gen_offsets rng ~dims;
                    }
              else
                let time_off =
                  match (decl src).fold with
                  | None -> 0
                  | Some m -> Rng.int rng m
                in
                { Stencil.array = src; time_off; offsets = gen_offsets rng ~dims })
        in
        let consts =
          List.init
            (if reads = [] then 1 else Rng.int rng 2)
            (fun _ -> Stencil.Fconst (Rng.float rng 2.0))
        in
        let leaves = List.map (fun a -> Stencil.Read a) reads @ consts in
        let rhs0 = build_expr rng leaves in
        let rhs =
          if Rng.chance rng 0.2 then
            Stencil.Bin (Div, rhs0, Fconst (Rng.pick rng [ 2.0; 4.0; 1.5 ]))
          else rhs0
        in
        (* symmetric margin covering this statement's largest |offset| per
           dimension, so domains stay in bounds for every N — including
           after an offset flip *)
        let margin d =
          List.fold_left
            (fun m (a : Stencil.access) -> max m (abs a.offsets.(d)))
            0 (write :: reads)
        in
        let lo =
          Array.init dims (fun d ->
              Affp.const (margin d + if Rng.chance rng 0.2 then 1 else 0))
        in
        let hi =
          Array.init dims (fun d ->
              Affp.add_const (Affp.param "N")
                (-(1 + margin d + if Rng.chance rng 0.2 then 1 else 0)))
        in
        { Stencil.sname = Fmt.str "S%d" i; lo; hi; write; rhs })
  in
  let prog =
    {
      Stencil.name = "fuzz";
      params = [ "N"; "T" ];
      steps = Affp.param "T";
      arrays;
      stmts;
    }
  in
  let n =
    let degenerate = Rng.chance rng 0.15 in
    match dims with
    | 1 -> if degenerate then Rng.in_range rng 1 5 else Rng.in_range rng 8 40
    | 2 -> if degenerate then Rng.in_range rng 1 4 else Rng.in_range rng 6 20
    | _ -> if degenerate then Rng.in_range rng 1 4 else Rng.in_range rng 5 10
  in
  let t = Rng.pick rng [ 1; 1; 2; 2; 3; 3; 4; 5; 6; 8 ] in
  (prog, [ ("N", n); ("T", t) ])

(* ---- mutation --------------------------------------------------------- *)

let flip_offset (p : Stencil.t) =
  let flipped = ref false in
  let flip_access (a : Stencil.access) =
    if !flipped then a
    else
      match Array.find_index (fun o -> o <> 0) a.offsets with
      | None -> a
      | Some d ->
          flipped := true;
          let offsets = Array.copy a.offsets in
          offsets.(d) <- -offsets.(d);
          { a with offsets }
  in
  let rec flip_fexpr (e : Stencil.fexpr) =
    match e with
    | Read a -> Stencil.Read (flip_access a)
    | Fconst _ -> e
    | Neg e -> Stencil.Neg (flip_fexpr e)
    | Bin (op, l, r) ->
        let l = flip_fexpr l in
        let r = flip_fexpr r in
        Stencil.Bin (op, l, r)
  in
  let stmts =
    List.map (fun (s : Stencil.stmt) -> { s with rhs = flip_fexpr s.rhs }) p.stmts
  in
  if !flipped then Some { p with stmts } else None
