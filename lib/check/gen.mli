(** Seeded random stencil-program generator.

    Produces well-formed {!Hextile_ir.Stencil.t} values spanning the
    shapes the executors must handle — 1–3 spatial dimensions, one to
    three statements, folded (2- or 3-buffer) and in-place storage,
    symmetric and asymmetric read offsets, cross-statement reads,
    read-only coefficient arrays, and parameter valuations small enough
    to include degenerate (empty or single-cell) domains.

    Beyond {!Hextile_ir.Stencil.validate}, generated programs satisfy the
    semantic envelope in which the reference interpreter and every scheme
    executor agree ({!well_formed}): a statement's reads of its own
    array's {e write slot} are exactly the written cell, so instances of
    one statement at one time step are independent (Jacobi-style), which
    is what every executor's parallel model assumes. Reads of other
    slots, other arrays, and cross-statement reads are unrestricted.
    Domains keep a symmetric per-dimension margin covering the largest
    absolute offset, so the in-bounds convention ([Analysis.bounds_check])
    holds for every parameter valuation — and stays intact under
    {!flip_offset}. *)

open Hextile_ir

val generate : Rng.t -> Stencil.t * (string * int) list
(** A random program and a matching (N, T) valuation. The result
    validates, is {!well_formed}, passes [Analysis.bounds_check] under
    the valuation, and round-trips through [Pretty.to_source] and the
    frontend. *)

val well_formed : Stencil.t -> (unit, string) result
(** The semantic envelope described above; implied for generated
    programs, checked explicitly on shrink candidates. *)

val flip_offset : Stencil.t -> Stencil.t option
(** Negate the first nonzero spatial offset of the first read that has
    one — the classic schedule/codegen bug shape. [None] if every read
    offset is zero. The result stays well-formed and in bounds (margins
    are symmetric), so executors run it without crashing and the
    corruption is purely semantic. *)
