open Hextile_ir

let iter_name d = Fmt.str "i%d" d

(* %.17g prints doubles with enough digits that float_of_string restores
   the exact value; integral values print without a dot and reparse as
   Int tokens, which the frontend converts back to the same float. *)
let pp_float ppf f = Fmt.pf ppf "%.17g" f

let pp_index ppf (d, off) =
  if off = 0 then Fmt.string ppf (iter_name d)
  else if off > 0 then Fmt.pf ppf "%s + %d" (iter_name d) off
  else Fmt.pf ppf "%s - %d" (iter_name d) (-off)

let pp_access (p : Stencil.t) ppf (a : Stencil.access) =
  let decl = Stencil.array_decl p a.array in
  Fmt.string ppf a.array;
  (match decl.fold with
  | Some m -> Fmt.pf ppf "[(t + %d) %% %d]" a.time_off m
  | None -> ());
  Array.iteri (fun d off -> Fmt.pf ppf "[%a]" pp_index (d, off)) a.offsets

(* Fully parenthesised: reparsing rebuilds the identical tree regardless
   of operator precedence or associativity. *)
let rec pp_fexpr p ppf (e : Stencil.fexpr) =
  match e with
  | Read a -> pp_access p ppf a
  | Fconst f -> pp_float ppf f
  | Neg e -> Fmt.pf ppf "(-%a)" (pp_fexpr p) e
  | Bin (op, l, r) ->
      let s = match op with Stencil.Add -> "+" | Sub -> "-" | Mul -> "*" | Div -> "/" in
      Fmt.pf ppf "(%a %s %a)" (pp_fexpr p) l s (pp_fexpr p) r

let pp_decl ppf (a : Stencil.array_decl) =
  Fmt.pf ppf "float %s" a.aname;
  (match a.fold with Some m -> Fmt.pf ppf "[%d]" m | None -> ());
  Array.iter (fun e -> Fmt.pf ppf "[%s]" (Affp.to_string e)) a.extents;
  Fmt.pf ppf ";@,"

let pp_stmt p ppf (s : Stencil.stmt) =
  let dims = Array.length s.lo in
  for d = 0 to dims - 1 do
    Fmt.pf ppf "%sfor (%s = %s; %s <= %s; %s++)@,"
      (String.make (2 * (d + 1)) ' ')
      (iter_name d) (Affp.to_string s.lo.(d)) (iter_name d)
      (Affp.to_string s.hi.(d)) (iter_name d)
  done;
  Fmt.pf ppf "%s%a = %a;@,"
    (String.make (2 * (dims + 1)) ' ')
    (pp_access p) s.write (pp_fexpr p) s.rhs

let to_source (p : Stencil.t) =
  Fmt.str "%a"
    (fun ppf () ->
      Fmt.pf ppf "@[<v>";
      List.iter (pp_decl ppf) p.arrays;
      Fmt.pf ppf "for (t = 0; t < %s; t++) {@," (Affp.to_string p.steps);
      List.iter (pp_stmt p ppf) p.stmts;
      Fmt.pf ppf "}@]@.")
    ()

(* ---- structural equality ---------------------------------------------- *)

let equal_affp_array a b =
  Array.length a = Array.length b && Array.for_all2 Affp.equal a b

let equal_access (a : Stencil.access) (b : Stencil.access) =
  String.equal a.array b.array && a.time_off = b.time_off && a.offsets = b.offsets

let rec equal_fexpr (a : Stencil.fexpr) (b : Stencil.fexpr) =
  match (a, b) with
  | Read x, Read y -> equal_access x y
  | Fconst x, Fconst y -> Float.equal x y
  | Neg x, Neg y -> equal_fexpr x y
  | Bin (o1, l1, r1), Bin (o2, l2, r2) ->
      o1 = o2 && equal_fexpr l1 l2 && equal_fexpr r1 r2
  | _ -> false

let equal_decl (a : Stencil.array_decl) (b : Stencil.array_decl) =
  String.equal a.aname b.aname
  && equal_affp_array a.extents b.extents
  && a.fold = b.fold

let equal_stmt (a : Stencil.stmt) (b : Stencil.stmt) =
  (* snames are labels (the frontend renames to S0, S1, ... in order);
     statement identity is positional *)
  equal_affp_array a.lo b.lo
  && equal_affp_array a.hi b.hi
  && equal_access a.write b.write
  && equal_fexpr a.rhs b.rhs

let equal_program (a : Stencil.t) (b : Stencil.t) =
  List.equal String.equal a.params b.params
  && Affp.equal a.steps b.steps
  && List.equal equal_decl a.arrays b.arrays
  && List.equal equal_stmt a.stmts b.stmts
