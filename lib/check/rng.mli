(** Deterministic pseudo-random stream for the fuzzer (SplitMix64).

    Self-contained so generated programs are bit-reproducible across OCaml
    versions and stdlib changes — [Random] makes no such promise. *)

type t

val create : int -> t
(** A stream seeded by an integer; equal seeds give equal streams. *)

val derive : t -> int -> t
(** [derive t i] is an independent stream deterministically derived from
    [t]'s seed and index [i] (used for per-iteration sub-streams, so any
    failing iteration can be replayed without generating its
    predecessors). Does not advance [t]. *)

val int : t -> int -> int
(** [int t n] is uniform in [0, n); requires [n > 0]. *)

val in_range : t -> int -> int -> int
(** [in_range t lo hi] is uniform in [lo, hi]; requires [lo <= hi]. *)

val bool : t -> bool

val chance : t -> float -> bool
(** [chance t p] is true with probability [p]. *)

val float : t -> float -> float
(** [float t x] is uniform in [0, x). *)

val pick : t -> 'a list -> 'a
(** Uniform element of a non-empty list. *)
