open Hextile_ir
module Par = Hextile_par.Par

type config = {
  seed : int;
  count : int;
  shrink : bool;
  mutate : string option;
  schemes : string list option;
  out_dir : string option;
}

let default_config =
  {
    seed = 42;
    count = 100;
    shrink = false;
    mutate = None;
    schemes = None;
    out_dir = None;
  }

type failure_case = {
  f_index : int;
  f_prog : Stencil.t;
  f_env : (string * int) list;
  f_failures : Oracle.failure list;
  f_shrunk : bool;
  f_path : string option;
}

type summary = {
  total : int;
  passed : int;
  failed : int;
  skipped : int;
  caught : int;
  missed : int;
  cases : failure_case list;
}

let max_kept_cases = 10

let counterexample_source ?mutate ~seed ~index prog env failures =
  let b = Buffer.create 1024 in
  Buffer.add_string b
    (Fmt.str "// hextile fuzz counterexample (seed %d, iteration %d)\n" seed
       index);
  Buffer.add_string b
    (Fmt.str "// replay: hextile fuzz --replay FILE %s%s\n"
       (String.concat " "
          (List.map (fun (n, v) -> Fmt.str "-%s %d" n v) env))
       (match mutate with Some m -> " --mutate " ^ m | None -> ""));
  List.iter
    (fun f ->
      let text = Fmt.str "%a" Oracle.pp_failure f in
      String.split_on_char '\n' text
      |> List.iter (fun line -> Buffer.add_string b ("// " ^ line ^ "\n")))
    failures;
  Buffer.add_string b (Pretty.to_source prog);
  Buffer.contents b

(* [--out some/nested/dir] must work whether or not the directory exists
   yet (regression: [open_out] used to crash on the first missing
   component). *)
let rec mkdir_p dir =
  if dir <> "" && not (Sys.file_exists dir) then begin
    let parent = Filename.dirname dir in
    if parent <> dir then mkdir_p parent;
    try Sys.mkdir dir 0o755
    with Sys_error _ when Sys.file_exists dir -> ()
  end

let write_counterexample ?mutate dir ~seed ~index prog env failures =
  mkdir_p dir;
  let path =
    Filename.concat dir (Fmt.str "counterexample_s%d_i%d.c" seed index)
  in
  let oc = open_out path in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () ->
      output_string oc
        (counterexample_source ?mutate ~seed ~index prog env failures));
  path

(* A flipped offset is only observable when the statement it lands in
   executes at least one instance — under a degenerate valuation its
   domain can be empty, and the mutant is then semantically identical to
   the original. Those iterations are skips, not misses. *)
let mutation_effective prog env =
  match Gen.flip_offset prog with
  | None -> false
  | Some prog' -> (
      let envf p = List.assoc p env in
      let changed =
        List.find_index
          (fun ((a : Stencil.stmt), (b : Stencil.stmt)) -> a.rhs <> b.rhs)
          (List.combine prog.Stencil.stmts prog'.Stencil.stmts)
      in
      match changed with
      | None -> false
      | Some i ->
          let s = List.nth prog.Stencil.stmts i in
          Affp.eval prog.steps envf >= 1
          && Array.for_all2
               (fun lo hi -> Affp.eval lo envf <= Affp.eval hi envf)
               s.lo s.hi)

(* Shrinking predicate: the candidate still produces a failure with the
   original first failure's (scheme, kind) signature — re-running only
   that scheme keeps each probe cheap. *)
let still_fails_like cfg dev f0 prog env =
  let scheme = Oracle.scheme_of_failure f0 in
  let kind = Oracle.kind_of_failure f0 in
  match Oracle.check ?mutate:cfg.mutate ~schemes:[ scheme ] prog env dev with
  | Error _ -> false
  | Ok fs ->
      List.exists
        (fun f ->
          Oracle.scheme_of_failure f = scheme && Oracle.kind_of_failure f = kind)
        fs

(* One iteration's result, computed without touching the summary or the
   filesystem so that iterations can run on any domain. Log lines are
   collected in order and replayed by the (sequential, index-ordered)
   aggregation step — [--jobs N] and [--jobs 1] produce the same lines. *)
type iter_fail = {
  d_prog : Stencil.t;  (** after shrinking, when enabled *)
  d_env : (string * int) list;
  d_failures : Oracle.failure list;
  d_shrunk : bool;
}

type iter_outcome = Skip | Pass | Fail of iter_fail

let compute_iteration cfg dev rng i =
  let lines = ref [] in
  let log s = lines := s :: !lines in
  let outcome =
    let prog, env = Gen.generate (Rng.derive rng i) in
    let names = Oracle.scheme_names prog in
    let applicable =
      match cfg.schemes with
      | None -> true
      | Some l -> List.exists (fun n -> List.mem n names) l
    in
    let mutate_ok =
      match cfg.mutate with
      | None -> true
      | Some m -> List.mem m names && mutation_effective prog env
    in
    if not (applicable && mutate_ok) then begin
      log
        (Fmt.str "iteration %d: skipped (%s)" i
           (if applicable then "no offset to flip or scheme not applicable"
            else "scheme filter not applicable to this program"));
      Skip
    end
    else
      let schemes =
        Option.map (List.filter (fun n -> List.mem n names)) cfg.schemes
      in
      match Oracle.check ?mutate:cfg.mutate ?schemes prog env dev with
      | Error m ->
          log (Fmt.str "iteration %d: skipped (%s)" i m);
          Skip
      | Ok [] ->
          if cfg.mutate <> None then
            log (Fmt.str "iteration %d: mutant MISSED" i);
          Pass
      | Ok failures ->
          let f0 = List.hd failures in
          log
            (Fmt.str "iteration %d: %s failure on %s%s" i
               (Oracle.kind_of_failure f0)
               (Oracle.scheme_of_failure f0)
               (if cfg.mutate <> None then " (mutant caught)" else ""));
          let prog, env, failures, shrunk =
            if not cfg.shrink then (prog, env, failures, false)
            else begin
              let p', e' =
                Shrink.shrink
                  ~still_fails:(still_fails_like cfg dev f0)
                  prog env
              in
              let fs' =
                match
                  Oracle.check ?mutate:cfg.mutate
                    ~schemes:[ Oracle.scheme_of_failure f0 ]
                    p' e' dev
                with
                | Ok (_ :: _ as fs) -> fs
                | Ok [] | Error _ -> failures
              in
              log
                (Fmt.str
                   "iteration %d: shrunk to %d statement(s), %s" i
                   (List.length p'.Stencil.stmts)
                   (String.concat ", "
                      (List.map (fun (n, v) -> Fmt.str "%s=%d" n v) e')));
              (p', e', fs', true)
            end
          in
          Fail { d_prog = prog; d_env = env; d_failures = failures; d_shrunk = shrunk }
  in
  (outcome, List.rev !lines)

let run ?pool ?(log = ignore) cfg dev =
  let rng = Rng.create cfg.seed in
  let summary =
    ref
      {
        total = 0;
        passed = 0;
        failed = 0;
        skipped = 0;
        caught = 0;
        missed = 0;
        cases = [];
      }
  in
  let bump f = summary := f !summary in
  (* Sequential, index-ordered aggregation: streams logs, writes
     counterexamples and folds the summary — identical for every jobs
     value because outcomes arrive indexed. *)
  let absorb i (outcome, lines) =
    bump (fun s -> { s with total = s.total + 1 });
    List.iter log lines;
    match outcome with
    | Skip -> bump (fun s -> { s with skipped = s.skipped + 1 })
    | Pass ->
        bump (fun s ->
            {
              s with
              passed = s.passed + 1;
              missed = (s.missed + if cfg.mutate <> None then 1 else 0);
            })
    | Fail { d_prog = prog; d_env = env; d_failures = failures; d_shrunk } ->
        bump (fun s ->
            {
              s with
              failed = s.failed + 1;
              caught = (s.caught + if cfg.mutate <> None then 1 else 0);
            });
        let path =
          Option.map
            (fun dir ->
              let p =
                write_counterexample ?mutate:cfg.mutate dir ~seed:cfg.seed
                  ~index:i prog env failures
              in
              log (Fmt.str "iteration %d: counterexample written to %s" i p);
              p)
            cfg.out_dir
        in
        bump (fun s ->
            if List.length s.cases >= max_kept_cases then s
            else
              {
                s with
                cases =
                  s.cases
                  @ [
                      {
                        f_index = i;
                        f_prog = prog;
                        f_env = env;
                        f_failures = failures;
                        f_shrunk = d_shrunk;
                        f_path = path;
                      };
                    ];
              })
  in
  let indices = Array.init cfg.count Fun.id in
  (match pool with
  | Some p when Par.jobs p > 1 && not (Par.in_region ()) ->
      (* all iterations computed in parallel, then absorbed in order *)
      let outcomes = Par.map p (compute_iteration cfg dev rng) indices in
      Array.iteri (fun i o -> absorb i o) outcomes
  | _ ->
      (* jobs = 1: compute and absorb strictly interleaved, so logs
         stream as the campaign progresses — the historical behaviour *)
      Array.iter (fun i -> absorb i (compute_iteration cfg dev rng i)) indices);
  !summary

let ok cfg s =
  match cfg.mutate with
  | None -> s.failed = 0
  | Some _ -> s.missed = 0 && s.caught >= 1

let pp_summary cfg ppf s =
  Fmt.pf ppf "@[<v>%d iteration(s): %d passed, %d failed, %d skipped" s.total
    s.passed s.failed s.skipped;
  (match cfg.mutate with
  | Some m ->
      Fmt.pf ppf "@,mutation self-test (%s): %d caught, %d missed" m s.caught
        s.missed
  | None -> ());
  List.iter
    (fun c ->
      Fmt.pf ppf "@,@[<v2>iteration %d%s (%s):" c.f_index
        (if c.f_shrunk then " (shrunk)" else "")
        (String.concat ", "
           (List.map (fun (n, v) -> Fmt.str "%s=%d" n v) c.f_env));
      List.iter (fun f -> Fmt.pf ppf "@,%a" Oracle.pp_failure f) c.f_failures;
      Fmt.pf ppf "@]")
    s.cases;
  Fmt.pf ppf "@]"
