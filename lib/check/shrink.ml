open Hextile_ir

let valid (p : Stencil.t) env =
  let envf name =
    match List.assoc_opt name env with Some v -> v | None -> 0
  in
  match Gen.well_formed p with
  | Error _ -> false
  | Ok () -> (
      match Analysis.bounds_check p envf with
      | Error _ -> false
      | Ok () -> true)

(* ---- candidate enumeration -------------------------------------------- *)

(* Replace the [n]-th Read leaf (in expression order, matching
   [Stencil.reads]) using [f]. *)
let map_nth_read rhs n f =
  let cnt = ref (-1) in
  let rec go (e : Stencil.fexpr) =
    match e with
    | Read a ->
        incr cnt;
        if !cnt = n then Stencil.Read (f a) else e
    | Fconst _ -> e
    | Neg x -> Stencil.Neg (go x)
    | Bin (op, l, r) ->
        let l = go l in
        let r = go r in
        Stencil.Bin (op, l, r)
  in
  go rhs

(* Every way to replace one interior node by one of its children. *)
let rec rhs_variants (e : Stencil.fexpr) : Stencil.fexpr list =
  match e with
  | Read _ | Fconst _ -> []
  | Neg x -> x :: List.map (fun v -> Stencil.Neg v) (rhs_variants x)
  | Bin (op, l, r) ->
      (l :: r :: List.map (fun v -> Stencil.Bin (op, v, r)) (rhs_variants l))
      @ List.map (fun v -> Stencil.Bin (op, l, v)) (rhs_variants r)

let with_stmt p i s' =
  {
    p with
    Stencil.stmts = List.mapi (fun j s -> if j = i then s' else s) p.Stencil.stmts;
  }

let drop_stmts (p : Stencil.t) =
  let k = List.length p.stmts in
  if k <= 1 then []
  else
    List.init k (fun i ->
        { p with stmts = List.filteri (fun j _ -> j <> i) p.stmts })

let drop_unused_arrays (p : Stencil.t) =
  let used = Hashtbl.create 8 in
  List.iter
    (fun (s : Stencil.stmt) ->
      List.iter
        (fun (a : Stencil.access) -> Hashtbl.replace used a.array ())
        (s.write :: Stencil.reads s))
    p.stmts;
  let arrays =
    List.filter (fun (a : Stencil.array_decl) -> Hashtbl.mem used a.aname) p.arrays
  in
  if List.length arrays < List.length p.arrays then [ { p with arrays } ]
  else []

let shrink_env env =
  List.concat_map
    (fun (name, v) ->
      let set v' = List.map (fun (n, x) -> (n, if n = name then v' else x)) env in
      if v >= 2 then
        let halved = set (v / 2) in
        let dec = set (v - 1) in
        if v / 2 = v - 1 then [ halved ] else [ halved; dec ]
      else [])
    env

let shrink_rhs (p : Stencil.t) =
  List.concat
    (List.mapi
       (fun i (s : Stencil.stmt) ->
         List.map (fun rhs -> with_stmt p i { s with rhs }) (rhs_variants s.rhs))
       p.stmts)

let shrink_offsets (p : Stencil.t) =
  List.concat
    (List.mapi
       (fun i (s : Stencil.stmt) ->
         let reads = Stencil.reads s in
         List.concat
           (List.mapi
              (fun j (r : Stencil.access) ->
                List.filter_map
                  (fun d ->
                    if r.offsets.(d) = 0 then None
                    else
                      let toward_zero o = if o > 0 then o - 1 else o + 1 in
                      let rhs =
                        map_nth_read s.rhs j (fun a ->
                            let offsets = Array.copy a.offsets in
                            offsets.(d) <- toward_zero offsets.(d);
                            { a with offsets })
                      in
                      Some (with_stmt p i { s with rhs }))
                  (List.init (Array.length r.offsets) Fun.id))
              reads))
       p.stmts)

let candidates (p : Stencil.t) env =
  let keep_env p' = (p', env) in
  List.map keep_env (drop_stmts p)
  @ List.map (fun env' -> (p, env')) (shrink_env env)
  @ List.map keep_env (drop_unused_arrays p)
  @ List.map keep_env (shrink_rhs p)
  @ List.map keep_env (shrink_offsets p)

(* ---- greedy fixpoint -------------------------------------------------- *)

let shrink ?(max_checks = 200) ~still_fails prog env =
  let budget = ref max_checks in
  let rec first = function
    | [] -> None
    | (p, e) :: rest ->
        if !budget <= 0 then None
        else if
          valid p e
          && (decr budget;
              still_fails p e)
        then Some (p, e)
        else first rest
  in
  let rec fix (p, e) =
    if !budget <= 0 then (p, e)
    else
      match first (candidates p e) with
      | Some better -> fix better
      | None -> (p, e)
  in
  fix (prog, env)
