(** The fuzzing campaign driver behind [hextile fuzz].

    Each iteration derives an independent PRNG stream from the campaign
    seed ({!Rng.derive}, so iteration [i] is reproducible in isolation),
    generates a program + valuation ({!Gen.generate}), and runs the
    differential oracle ({!Oracle.check}). Failures are optionally shrunk
    ({!Shrink.shrink}, preserving the first failure's (scheme, kind)
    signature) and emitted as replayable [.c] counterexample files whose
    header comments record the seed, iteration and valuation — the
    frontend skips comments, so the file feeds straight back into
    [hextile fuzz --replay].

    [mutate] turns the campaign into the harness's self-test: the named
    scheme runs on an offset-flipped copy of each program and the summary
    counts mutants caught vs. missed. *)

open Hextile_ir
open Hextile_gpusim

type config = {
  seed : int;
  count : int;
  shrink : bool;
  mutate : string option;  (** scheme name to run on a mutated copy *)
  schemes : string list option;  (** restrict the runner set *)
  out_dir : string option;  (** where to write counterexample files *)
}

val default_config : config
(** seed 42, count 100, shrink off, no mutation, all schemes, no output
    directory. *)

type failure_case = {
  f_index : int;  (** iteration that produced it *)
  f_prog : Stencil.t;  (** after shrinking, when enabled *)
  f_env : (string * int) list;
  f_failures : Oracle.failure list;
  f_shrunk : bool;
  f_path : string option;  (** counterexample file, when written *)
}

type summary = {
  total : int;
  passed : int;
  failed : int;
  skipped : int;  (** mutation or scheme filter not applicable *)
  caught : int;  (** mutate mode: mutants detected *)
  missed : int;  (** mutate mode: mutants that slipped through *)
  cases : failure_case list;  (** first few failures, in order *)
}

val run :
  ?pool:Hextile_par.Par.pool ->
  ?log:(string -> unit) ->
  config ->
  Device.t ->
  summary
(** [log] receives one human-readable line per noteworthy event
    (failure found, shrink result, skip). [?pool] distributes iterations
    across domains: each iteration already derives an independent PRNG
    stream, its result (including shrinking) is computed in isolation,
    and a sequential index-ordered aggregation step replays log lines,
    writes counterexample files and folds the summary — so the summary,
    every log line and every file are identical for all [--jobs] values.
    The counterexample directory (and missing parents) is created on
    demand. *)

val ok : config -> summary -> bool
(** Exit criterion: without [mutate], no failures; with [mutate], no
    mutant missed and at least one caught. *)

val pp_summary : config -> summary Fmt.t

val counterexample_source :
  ?mutate:string ->
  seed:int ->
  index:int ->
  Stencil.t ->
  (string * int) list ->
  Oracle.failure list ->
  string
(** The replayable [.c] text: header comments (including the exact replay
    command line, with [--mutate] when the campaign used it) +
    {!Pretty.to_source}. *)
