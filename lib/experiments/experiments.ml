open Hextile_gpusim
open Hextile_ir
open Hextile_schemes
open Hextile_stencils
open Hextile_tiling
open Hextile_deps
open Hextile_util
module Obs = Hextile_obs.Obs
module Json = Hextile_obs.Json
module Par = Hextile_par.Par

type scheme = Ppcg | Par4all | Overtile | Patus | Hybrid

let scheme_name = function
  | Ppcg -> "PPCG"
  | Par4all -> "Par4All"
  | Overtile -> "Overtile"
  | Patus -> "Patus"
  | Hybrid -> "hybrid"

let engine_name = function Common.Ref -> "ref" | Common.Tape -> "tape"

(* The [hextile run] stderr summary. Machine-parseable contract,
   asserted by the test suite and documented in the README: the fixed
   prefix "sim:" followed by space-separated key=value tokens; keys
   are lowercase [a-z0-9_]+, values contain neither spaces nor '=';
   the keys wall_ms, blocks, blocks_memoized, engine, jobs,
   blocks_analytic, classes, epilogue_ms, blit_rows and replay_lines
   are always present, in that order (consumers must tolerate new keys
   being appended). blit_rows and replay_lines are deterministic at
   every jobs value; blit_rows counts bulk-blit row reconstruction
   wherever it runs (memoized-block replay and the analytic epilogue)
   while replay_lines is analytic-only; epilogue_ms is wall time (main
   domain only) and is never part of compared artifacts. *)
let sim_summary ~wall_s ~jobs ~engine (r : Common.result) =
  Fmt.str
    "sim: wall_ms=%.3f blocks=%d blocks_memoized=%d engine=%s jobs=%d \
     blocks_analytic=%d classes=%d epilogue_ms=%.3f blit_rows=%d \
     replay_lines=%d"
    (1000.0 *. wall_s) r.Common.blocks r.Common.blocks_memoized
    (engine_name engine) jobs r.Common.blocks_analytic r.Common.classes
    r.Common.epilogue_ms r.Common.blit_rows r.Common.replay_lines

let sizes ~quick (p : Stencil.t) =
  let n2, t2 = if quick then (128, 24) else (256, 48) in
  let n3, t3 = if quick then (64, 12) else (96, 24) in
  match Stencil.spatial_dims p with
  | 1 -> [ ("N", if quick then 4096 else 16384); ("T", if quick then 64 else 128) ]
  | 2 -> [ ("N", n2); ("T", t2) ]
  | _ -> [ ("N", n3); ("T", t3) ]

(* Paper full-size working sets for the machine-balance scaling. *)
let paper_env (p : Stencil.t) = Suite.table3_params p

(* The full-size Table 1/2 instances themselves. At these parameters
   [scaled_device] is the identity (every ratio is 1), so
   [run_scheme ~analytic:true ~verify:false] simulates the paper's
   actual working sets on the unscaled device — tractable only through
   the analytic mode's class decomposition. *)
let paper_sizes = paper_env

let env_fn l x = List.assoc x l

let scaled_device (dev : Device.t) (p : Stencil.t) env =
  let ws e = Analysis.footprint_floats p (env_fn e) * 4 in
  let ratio = float_of_int (ws env) /. float_of_int (ws (paper_env p)) in
  let step_points e =
    Interp.stencil_updates p (env_fn e) / max 1 (Affp.eval p.steps (env_fn e))
  in
  let launch_ratio =
    float_of_int (step_points env) /. float_of_int (step_points (paper_env p))
  in
  let steps e = max 1 (Affp.eval p.steps (env_fn e)) in
  let steps_ratio =
    float_of_int (steps (paper_env p)) /. float_of_int (steps env)
  in
  (* L2: shrink with the working set, but keep it large enough for
     tile-level reuse (>= ws/6 ≈ a few shared-memory boxes) and small
     enough that a full grid plane still misses — the property that makes
     time tiling matter on the real device. *)
  let l2 =
    min dev.l2_bytes
      (max (ws env / 6) (int_of_float (float_of_int dev.l2_bytes *. ratio)))
  in
  (* Scale the machine's parallelism with the linear grid extent: the
     hybrid scheme's grid is one block per S0 tile, so blocks shrink
     linearly with N while a full-size device would starve. Shrinking SMs
     and bandwidths together preserves blocks-per-SM and every roofline
     crossover; absolute GStencils/s shrink by the same factor. *)
  let n_ratio =
    float_of_int (env_fn env "N") /. float_of_int (env_fn (paper_env p) "N")
  in
  let sms = max 1 (int_of_float (Float.round (float_of_int dev.sms *. n_ratio))) in
  let f = float_of_int sms /. float_of_int dev.sms in
  {
    dev with
    sms;
    dram_bw_gbs = dev.dram_bw_gbs *. f;
    l2_bw_gbs = dev.l2_bw_gbs *. f;
    l2_bytes = max 4096 l2;
    launch_overhead_s = dev.launch_overhead_s *. launch_ratio /. f;
    (* host↔device transfers amortize over the paper's step count *)
    pcie_bw_gbs = dev.pcie_bw_gbs *. steps_ratio *. f;
  }

let verify_result (r : Common.result) prog env =
  let reference = Interp.run prog (env_fn env) in
  Hashtbl.iter
    (fun name g ->
      if not (Grid.equal g (Grid.find reference name)) then
        failwith
          (Fmt.str "%s on %s: array %s differs from the reference execution"
             r.scheme prog.Stencil.name name))
    r.grids;
  let expected = Interp.stencil_updates prog (env_fn env) in
  if r.updates <> expected then
    failwith
      (Fmt.str "%s on %s: executed %d statement instances, reference has %d"
         r.scheme prog.Stencil.name r.updates expected)

let run_scheme ?pool ?engine ?analytic ?(verify = true) scheme (prog : Stencil.t)
    env dev =
  (* The analytic mode memoizes and scales tape-executed streams; under
     the per-lane reference interpreter there is nothing to scale, and
     silently degrading to an exact run would misreport what was
     simulated. Reject the combination loudly instead. *)
  (match (analytic, engine) with
  | Some true, Some Common.Ref ->
      invalid_arg
        "Experiments.run_scheme: analytic mode requires the tape engine (the \
         ref interpreter records no streams to scale)"
  | _ -> ());
  Obs.span "experiments.run_scheme" @@ fun () ->
  Obs.annot "scheme" (Obs.Str (scheme_name scheme));
  Obs.annot "stencil" (Obs.Str prog.name);
  List.iter (fun (p, v) -> Obs.annot p (Obs.Int v)) env;
  let dev = scaled_device dev prog env in
  let e = env_fn env in
  let r =
    match scheme with
    | Ppcg -> Ppcg.run ?pool ?engine prog e dev
    | Par4all -> Par4all.run ?pool ?engine prog e dev
    | Overtile -> Overtile.run ?pool ?engine prog e dev
    | Patus ->
        (* Patus modelled as autotuned space tiling: pick the better of two
           block shapes by simulated time. *)
        let dims = Stencil.spatial_dims prog in
        let cands =
          if dims >= 3 then [ [| 4; 8; 32 |]; [| 2; 16; 32 |] ]
          else if dims = 2 then [ [| 16; 32 |]; [| 8; 64 |] ]
          else [ [| 256 |] ]
        in
        List.fold_left
          (fun best tile ->
            let r =
              Ppcg.run ?pool ?engine ~config:{ tile = Some tile } ~name:"patus"
                prog e dev
            in
            match best with
            | Some b when Common.total_time b <= Common.total_time r -> Some b
            | _ -> Some r)
          None cands
        |> Option.get
    | Hybrid -> Hybrid_exec.run ?pool ?engine ?analytic prog e dev
  in
  if verify then Obs.span "experiments.verify" (fun () -> verify_result r prog env);
  r

(* ---- Tables 1 and 2 --------------------------------------------------- *)

type perf_row = { kernel : string; cells : (scheme * float) list }

let table12_schemes = [ Ppcg; Par4all; Overtile; Hybrid ]

let table12 ?pool ?(quick = true) dev =
  Obs.span "experiments.table12" @@ fun () ->
  Obs.annot "device" (Obs.Str dev.Device.name);
  match pool with
  | Some p when Par.jobs p > 1 && not (Par.in_region ()) ->
      (* Shard at the experiment level: fan out over the (kernel,
         scheme) pairs — 7 × 4 independent simulated runs — then
         regroup by kernel. [Par.map]'s static shards give each domain
         a contiguous run of pairs (stealing evens out the imbalance
         between cheap and expensive kernels), and each run reuses the
         process-shared dependence/FM caches instead of refilling a
         per-domain copy. Inner launches stay sequential (nested
         regions degrade), so results are the sequential ones, cell for
         cell. *)
      let pairs =
        Array.of_list
          (List.concat_map
             (fun prog -> List.map (fun s -> (prog, s)) table12_schemes)
             Suite.table3)
      in
      let cells =
        Par.map p
          (fun ((prog : Stencil.t), s) ->
            let env = sizes ~quick prog in
            (s, Common.gstencils_per_s (run_scheme s prog env dev)))
          pairs
      in
      let nschemes = List.length table12_schemes in
      List.mapi
        (fun i (prog : Stencil.t) ->
          {
            kernel = prog.Stencil.name;
            cells =
              List.init nschemes (fun j -> cells.((i * nschemes) + j));
          })
        Suite.table3
  | _ ->
      List.map
        (fun prog ->
          let env = sizes ~quick prog in
          let cells =
            List.map
              (fun s ->
                (s, Common.gstencils_per_s (run_scheme ?pool s prog env dev)))
              table12_schemes
          in
          { kernel = prog.Stencil.name; cells })
        Suite.table3

let paper_table12 (dev : Device.t) =
  let mk ppcg par4all overtile hybrid name =
    ( name,
      [
        (Ppcg, Some ppcg);
        (Par4all, par4all);
        (Overtile, Some overtile);
        (Hybrid, Some hybrid);
      ] )
  in
  if String.equal dev.name "gtx470" then
    [
      mk 5.4 (Some 7.0) 10.6 15.0 "laplacian2d";
      mk 5.1 (Some 5.4) 6.9 15.0 "heat2d";
      mk 3.9 (Some 5.5) 6.7 7.3 "gradient2d";
      mk 0.76 None 5.3 7.3 "fdtd2d";
      mk 2.0 (Some 2.0) 3.1 4.3 "laplacian3d";
      mk 1.8 (Some 1.9) 2.6 3.9 "heat3d";
      mk 2.1 (Some 3.1) 3.6 3.6 "gradient3d";
    ]
  else
    [
      mk 1.0 (Some 1.1) 2.1 3.2 "laplacian2d";
      mk 0.97 (Some 0.79) 1.5 2.9 "heat2d";
      mk 0.61 (Some 0.9) 1.1 1.4 "gradient2d";
      mk 0.098 None 0.9 1.0 "fdtd2d";
      mk 0.32 (Some 0.34) 0.66 0.91 "laplacian3d";
      mk 0.29 (Some 0.35) 0.37 0.73 "heat3d";
      mk 0.32 (Some 0.69) 0.61 0.73 "gradient3d";
    ]

let speedup base v = 100.0 *. ((v /. base) -. 1.0)

let pp_table12 dev ppf rows =
  let paper = paper_table12 dev in
  Fmt.pf ppf "%-12s | %9s | %22s | %22s | %22s@." "kernel" "PPCG"
    "Par4All" "Overtile" "hybrid";
  List.iter
    (fun row ->
      let base = List.assoc Ppcg row.cells in
      let prow = try List.assoc row.kernel paper with Not_found -> [] in
      let cell s =
        let v = List.assoc s row.cells in
        let pv = Option.join (List.assoc_opt s prow) in
        let pbase = Option.join (List.assoc_opt Ppcg prow) in
        let paper_spd =
          match (pv, pbase) with
          | Some v, Some b when s <> Ppcg -> Fmt.str " (paper %+.0f%%)" (speedup b v)
          | _ -> ""
        in
        if s = Ppcg then Fmt.str "%9.2f" v
        else Fmt.str "%6.2f %+5.0f%%%s" v (speedup base v) paper_spd
      in
      Fmt.pf ppf "%-12s | %s | %s | %s | %s@." row.kernel (cell Ppcg) (cell Par4all)
        (cell Overtile) (cell Hybrid))
    rows

(* ---- Table 3 ----------------------------------------------------------- *)

let table3_text () =
  let b = Buffer.create 512 in
  Buffer.add_string b
    (Fmt.str "%-14s %6s %14s %10s %6s\n" "kernel" "Loads" "FLOPs/Stencil"
       "Data-size" "Steps");
  List.iter
    (fun prog ->
      let c = Analysis.characterize prog in
      let env = env_fn (Suite.table3_params prog) in
      let n = env "N" and t = env "T" in
      List.iteri
        (fun i (sc : Analysis.stmt_chars) ->
          Buffer.add_string b
            (Fmt.str "%-14s %6d %14d %10s %6s\n"
               (if i = 0 then prog.Stencil.name else "")
               sc.loads sc.flops
               (if i = 0 then Fmt.str "%d^%d" n c.spatial_dims else "")
               (if i = 0 then string_of_int t else "")))
        c.per_stmt)
    Suite.table3;
  Buffer.contents b

(* ---- Tables 4 and 5 ---------------------------------------------------- *)

type ladder_step = { step : char; label : string; result : Common.result }

let ladder_labels =
  [
    ('a', "no shared memory");
    ('b', "shared memory");
    ('c', "(b) + interleave copy-out");
    ('d', "(c) + align loads");
    ('e', "(d) + value reuse (static)");
    ('f', "(d) + value reuse (dynamic)");
  ]

let ladder ?pool ?(quick = true) dev =
  Obs.span "experiments.ladder" @@ fun () ->
  Obs.annot "device" (Obs.Str dev.Device.name);
  let prog = Suite.heat3d in
  let env = sizes ~quick prog in
  let step_of (step, label) =
    let config =
      {
        (Hybrid_exec.default_config prog) with
        strategy = Hybrid_exec.strategy_of_step step;
      }
    in
    let dev = scaled_device dev prog env in
    let r = Hybrid_exec.run ?pool ~config prog (env_fn env) dev in
    verify_result r prog env;
    { step; label; result = r }
  in
  match pool with
  | Some p when Par.jobs p > 1 && not (Par.in_region ()) ->
      (* one task per ladder rung; [Sim.launch] inside the region runs
         sequentially, so each rung's result matches the jobs=1 run *)
      Array.to_list (Par.map p step_of (Array.of_list ladder_labels))
  | _ -> List.map step_of ladder_labels

let heat3d_flops = 27.0

let paper_table4 (dev : Device.t) =
  if String.equal dev.name "gtx470" then [ 39.; 44.; 65.; 70.; 73.; 105. ]
  else [ 8.; 8.; 11.; 12.; 11.; 19. ]

let pp_table4 ppf per_device =
  Fmt.pf ppf "%-30s" "configuration";
  List.iter
    (fun ((dev : Device.t), _) -> Fmt.pf ppf " | %18s" dev.name)
    per_device;
  Fmt.pf ppf "@.";
  List.iteri
    (fun i (step, label) ->
      Fmt.pf ppf "(%c) %-26s" step label;
      List.iter
        (fun ((dev : Device.t), steps) ->
          let r = (List.nth steps i).result in
          let g = Common.gflops r ~flops_per_update:heat3d_flops in
          let base =
            Common.gflops (List.hd steps).result ~flops_per_update:heat3d_flops
          in
          let paper = List.nth (paper_table4 dev) i in
          Fmt.pf ppf " | %5.1f %+4.0f%% (p%3.0f)" g
            (if i = 0 then 0.0 else speedup base g)
            paper)
        per_device;
      Fmt.pf ppf "@.")
    ladder_labels

let pp_table5 ppf ((dev : Device.t), steps) =
  Fmt.pf ppf "heat 3D counters on %s (units of 10^6 events; paper: 10^9 at full size)@."
    dev.name;
  Fmt.pf ppf "%-5s %10s %10s %10s %12s %8s@." "cfg" "gld_inst" "dram_rd" "l2_rd"
    "sh_ld/req" "gld_eff";
  List.iter
    (fun s ->
      let c = s.result.Common.counters in
      Fmt.pf ppf "(%c)   %10.2f %10.3f %10.3f %12.2f %7.0f%%@." s.step
        (float_of_int c.gld_inst /. 1e6)
        (float_of_int c.dram_read_transactions /. 1e6)
        (float_of_int c.l2_read_transactions /. 1e6)
        (Counters.shared_loads_per_request c)
        (100.0 *. Counters.gld_efficiency c))
    steps

(* ---- Figures ----------------------------------------------------------- *)

let figure1_source =
  {|float A[2][N][N];
for (t = 0; t < T; t++)
  for (i = 1; i < N - 1; i++)
    for (j = 1; j < N - 1; j++)
      A[(t+1)%2][i][j] = 0.2f * (A[t%2][i][j] +
          A[t%2][i+1][j] + A[t%2][i-1][j] +
          A[t%2][i][j+1] + A[t%2][i][j-1]);
|}

let figure2_text () =
  let prog =
    match Hextile_frontend.Front.parse_string ~name:"jacobi2d" figure1_source with
    | Ok p -> p
    | Error m -> failwith m
  in
  let l = Hextile_codegen.Ptx_emit.core_listing prog (List.hd prog.stmts) in
  Fmt.str
    "Core of the generated code for Figure 1 (cf. paper Figure 2):@.%s\
     %d shared loads + %d arithmetic ops + %d store per point@."
    l.text l.loads l.arith l.stores

let figure3_text () =
  let deps = Dep.analyze Suite.contrived in
  let cone = Cone.of_deps deps ~dim:0 in
  let (r0t, r0s), (r1t, r1s) = Cone.rays cone in
  let pp_dist ppf d = Fmt.pf ppf "(%a)" Fmt.(array ~sep:(any ", ") int) d in
  Fmt.str
    "Dependence distances of A[t][i] = f(A[t-2][i-2], A[t-1][i+2]): %a@.\
     Opposite dependence cone: %a@.\
     Generators: (%a, %a) and (%a, %a)@."
    Fmt.(list ~sep:(any ", ") pp_dist)
    (Dep.distance_vectors deps) Cone.pp cone Rat.pp r0t Rat.pp r0s Rat.pp r1t
    Rat.pp r1s

let figure4_text () =
  let cone = { Cone.delta0 = Rat.one; delta1 = Rat.one } in
  let hex = Hexagon.make ~h:2 ~w0:3 cone in
  Fmt.str "Hexagonal tile, h=2, w0=3, δ0=δ1=1 (%d points, expected %d):@.%s"
    (Hexagon.count hex) (Hexagon.expected_count hex) (Render.tile hex)

let figure5_text () =
  let cone = { Cone.delta0 = Rat.one; delta1 = Rat.one } in
  let hex = Hexagon.make ~h:1 ~w0:2 cone in
  let hs = Hex_schedule.make hex in
  Render.pattern hs ~u_range:(0, 11) ~s0_range:(0, 47)

let figure6_text () =
  let t = Hybrid.make Suite.heat3d ~h:2 ~w:[| 7; 10; 32 |] in
  let b = Buffer.create 512 in
  Buffer.add_string b "Hybrid schedule maps (heat 3D, h=2, w=(7,10,32)):\n";
  List.iter
    (fun phase ->
      Buffer.add_string b
        (Fmt.str "phase %d hexagonal part: %a\n" phase Hextile_poly.Qmap.pp
           (Hex_schedule.qmap t.hs ~phase)))
    [ 0; 1 ];
  Buffer.add_string b
    (Fmt.str
       "classical dims: S_k = floor((s_k + floor(δ1_k · t')) / w_k), s'_k = \
        (s_k + floor(δ1_k · t')) mod w_k, w = (%a)\n"
       Fmt.(array ~sep:(any ", ") int)
       t.w);
  Buffer.contents b

let tile_size_sweep_text () =
  let prog = Suite.heat3d in
  let b = Buffer.create 512 in
  Buffer.add_string b
    "Tile-size model (Sec 3.7) on heat 3D: loads/iteration per candidate\n";
  List.iter
    (fun (h, w0, w1, w2) ->
      match Hybrid.make prog ~h ~w:[| w0; w1; w2 |] with
      | t ->
          let s = Tile_size.tile_stats t in
          Buffer.add_string b
            (Fmt.str "  h=%d w=(%2d,%2d,%2d): %a\n" h w0 w1 w2 Tile_size.pp_stats s)
      | exception Invalid_argument m ->
          Buffer.add_string b (Fmt.str "  h=%d w=(%2d,%2d,%2d): invalid (%s)\n" h w0 w1 w2 m))
    [
      (1, 4, 6, 32); (1, 7, 10, 32); (2, 7, 10, 32); (2, 4, 6, 32);
      (3, 7, 10, 32); (1, 4, 6, 64); (2, 2, 4, 32);
    ];
  (match
     Tile_size.select prog ~h_candidates:[ 1; 2; 3 ] ~w0_candidates:[ 2; 4; 7 ]
       ~wi_candidates:[ [ 4; 6; 10 ]; [ 32; 64 ] ]
       ~shared_mem_floats:(48 * 1024 / 4) ~require_multiple:32 ()
   with
  | Some c -> Buffer.add_string b (Fmt.str "selected: %a\n" Tile_size.pp_choice c)
  | None -> Buffer.add_string b "selected: none feasible\n");
  Buffer.contents b

let patus_note ?pool ?(quick = true) dev =
  let cell prog =
    let env = sizes ~quick prog in
    Common.gstencils_per_s (run_scheme ?pool Patus prog env dev)
  in
  Fmt.str
    "Patus (autotuned space tiling, CUDA support experimental in the paper):@.\
    \ \ laplacian3d %.2f GStencils/s, heat3d %.2f GStencils/s@."
    (cell Suite.laplacian3d) (cell Suite.heat3d)

let h_sweep ?pool ?(quick = true) dev (prog : Stencil.t) =
  Obs.span "experiments.h_sweep" @@ fun () ->
  let env = sizes ~quick prog in
  let k = List.length prog.stmts in
  let base = Hybrid_exec.default_config prog in
  let eval h =
    if (h + 1) mod k <> 0 then None
    else
      let config = { base with h } in
      let d = scaled_device dev prog env in
      match Hybrid_exec.run ?pool ~config prog (env_fn env) d with
      | r ->
          verify_result r prog env;
          Some (h, Common.gstencils_per_s r)
      | exception Invalid_argument _ -> None
  in
  let hs = [ 0; 1; 2; 3; 5; 7 ] in
  match pool with
  | Some p when Par.jobs p > 1 && not (Par.in_region ()) ->
      List.filter_map Fun.id (Array.to_list (Par.map p eval (Array.of_list hs)))
  | _ -> List.filter_map eval hs

let diamond_vs_hex_text () =
  let b = Buffer.create 512 in
  Buffer.add_string b
    "Diamond vs hexagonal tiles (Section 5): integer points per tile\n";
  List.iter
    (fun tau ->
      let d = Hextile_tiling.Diamond.make ~tau in
      Buffer.add_string b
        (Fmt.str "  diamond tau=%d: per-tile counts %a\n" tau
           Fmt.(list ~sep:(any ", ") int)
           (Hextile_tiling.Diamond.count_spectrum d)))
    [ 2; 3; 4; 5 ];
  List.iter
    (fun (h, w0) ->
      let hex =
        Hexagon.make ~h ~w0 { Cone.delta0 = Rat.one; delta1 = Rat.one }
      in
      Buffer.add_string b
        (Fmt.str "  hexagon h=%d w0=%d: every full tile has exactly %d points\n" h
           w0 (Hexagon.count hex)))
    [ (1, 2); (2, 3); (3, 4) ];
  Buffer.add_string b
    "  (varying diamond counts are the thread-divergence hazard the hybrid\n\
    \   scheme avoids; hexagonal counts are identical by construction)\n";
  Buffer.contents b

let split1d_text ?(quick = true) dev =
  let prog = Suite.heat1d in
  let env = sizes ~quick prog in
  let d = scaled_device dev prog env in
  let b = Buffer.create 256 in
  Buffer.add_string b
    "1D: the hybrid method degenerates to hexagonal tiling; split tiling\n\
     is the alternative the paper cites (heat 1D):\n";
  let run name r =
    verify_result r prog env;
    Buffer.add_string b
      (Fmt.str "  %-22s %.3f GStencils/s (dram rd %d)\n" name
         (Common.gstencils_per_s r)
         r.Common.counters.dram_read_transactions)
  in
  run "hybrid (hexagonal)" (Hybrid_exec.run prog (env_fn env) d);
  run "split tiling"
    (Split_tiling.run ~config:{ hh = 4; width = 64 } prog (env_fn env) d);
  run "ppcg (space tiling)" (Ppcg.run prog (env_fn env) d);
  Buffer.contents b

(* ---- machine-readable sinks (bench --json) ----------------------------- *)

let result_json (r : Common.result) =
  Json.Obj
    [
      ("scheme", Json.Str r.scheme);
      ("device", Json.Str r.device.Device.name);
      ("updates", Json.Int r.updates);
      ("kernel_time_s", Json.Float r.kernel_time);
      ("transfer_time_s", Json.Float r.transfer_time);
      ("gstencils_per_s", Json.Float (Common.gstencils_per_s r));
      ( "counters",
        Json.Obj
          (List.map (fun (k, v) -> (k, Json.Int v)) (Counters.to_assoc r.counters))
      );
      ("gld_efficiency", Json.Float (Counters.gld_efficiency r.counters));
      ( "shared_loads_per_request",
        Json.Float (Counters.shared_loads_per_request r.counters) );
    ]

let table12_json (dev : Device.t) rows =
  Json.Obj
    [
      ("device", Json.Str dev.name);
      ("unit", Json.Str "GStencils/s");
      ( "rows",
        Json.List
          (List.map
             (fun row ->
               Json.Obj
                 (("kernel", Json.Str row.kernel)
                 :: List.map
                      (fun (s, v) -> (scheme_name s, Json.Float v))
                      row.cells))
             rows) );
    ]

let ladder_json (dev : Device.t) steps =
  Json.Obj
    [
      ("device", Json.Str dev.name);
      ("kernel", Json.Str "heat3d");
      ( "steps",
        Json.List
          (List.map
             (fun s ->
               Json.Obj
                 [
                   ("step", Json.Str (String.make 1 s.step));
                   ("label", Json.Str s.label);
                   ( "gflops",
                     Json.Float
                       (Common.gflops s.result ~flops_per_update:heat3d_flops) );
                   ( "gstencils_per_s",
                     Json.Float (Common.gstencils_per_s s.result) );
                   ("result", result_json s.result);
                 ])
             steps) );
    ]

let h_sweep_json rows =
  Json.List
    (List.map
       (fun (h, g) ->
         Json.Obj [ ("h", Json.Int h); ("gstencils_per_s", Json.Float g) ])
       rows)
