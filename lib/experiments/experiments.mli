(** Drivers that regenerate every table and figure of the paper's
    evaluation (Section 6), on the GPU simulator.

    Methodology: the paper's data sizes (3072² × 512 steps, 384³ × 128)
    are too large to simulate instruction-by-instruction in reasonable
    time, so each experiment runs a scaled-down instance and the device
    model is scaled with it — the L2 capacity and the kernel-launch
    overhead are reduced by the same factor as the working set and the
    per-launch work, preserving the paper's machine-balance ratios. Every
    run is verified bit-for-bit against the sequential reference
    interpreter. Absolute GStencils/s are model outputs; the comparisons
    (which scheme wins, by roughly what factor) are the reproduction
    target; EXPERIMENTS.md records paper-vs-measured per experiment. *)

open Hextile_gpusim
open Hextile_ir
open Hextile_schemes

type scheme = Ppcg | Par4all | Overtile | Patus | Hybrid

val scheme_name : scheme -> string

val engine_name : Common.engine -> string
(** ["ref"] or ["tape"], as accepted by [hextile run --engine]. *)

val sim_summary :
  wall_s:float -> jobs:int -> engine:Common.engine -> Common.result -> string
(** The [hextile run] stderr summary line. Contract: the fixed prefix
    ["sim:"] followed by space-separated [key=value] tokens — keys are
    lowercase [[a-z0-9_]+], values contain neither spaces nor ['='],
    and the keys [wall_ms], [blocks], [blocks_memoized], [engine],
    [jobs], [blocks_analytic] and [classes] are always present, in that
    order. Consumers must tolerate new keys being appended. *)

val sizes : quick:bool -> Stencil.t -> (string * int) list
(** Scaled instantiation of a benchmark (quick: N=128/T=24 in 2D,
    N=48/T=12 in 3D; full: doubled). *)

val scaled_device : Device.t -> Stencil.t -> (string * int) list -> Device.t
(** Shrink L2 and launch overhead to preserve the paper's ratios. *)

val paper_sizes : Stencil.t -> (string * int) list
(** The paper's full-size Table 1/2 instantiation of a benchmark
    (Table 3 parameters: N=3072, T=512 in 2D; N=384, T=128 in 3D). At
    these parameters {!scaled_device} is the identity, so
    [run_scheme ~analytic:true ~verify:false] simulates the actual
    paper working set on the unscaled device model — tractable only
    through the analytic mode. *)

val run_scheme :
  ?pool:Hextile_par.Par.pool ->
  ?engine:Common.engine ->
  ?analytic:bool ->
  ?verify:bool ->
  scheme ->
  Stencil.t ->
  (string * int) list ->
  Device.t ->
  Common.result
(** Run one scheme on a scaled instance (device scaling applied inside).
    With [verify] (default true) the final grids are compared against the
    reference interpreter and the executed instance count is checked;
    failures raise. [?pool] parallelizes the simulated thread blocks;
    results are identical by the determinism contract. [?analytic]
    enables the hierarchical simulation mode (hybrid scheme only; other
    schemes ignore it — see {!Hybrid_exec.run}). *)

(** {2 Tables} *)

type perf_row = {
  kernel : string;
  cells : (scheme * float) list;  (** GStencils/second *)
}

val table12 :
  ?pool:Hextile_par.Par.pool -> ?quick:bool -> Device.t -> perf_row list
(** Tables 1 and 2: all Table 3 benchmarks × schemes on one device. With
    a multi-domain [pool] the 7 × 4 (kernel, scheme) runs fan out across
    domains and are regrouped in order — same rows, same cells. *)

val paper_table12 : Device.t -> (string * (scheme * float option) list) list
(** The paper's reported numbers for side-by-side comparison. *)

val pp_table12 : Device.t -> perf_row list Fmt.t

val table3_text : unit -> string

type ladder_step = { step : char; label : string; result : Common.result }

val ladder :
  ?pool:Hextile_par.Par.pool -> ?quick:bool -> Device.t -> ladder_step list
(** The Table 4/5 optimization ladder (a)–(f) on heat 3D; [pool] runs the
    six rungs concurrently. *)

val pp_table4 : (Device.t * ladder_step list) list Fmt.t
(** GFLOPS per configuration and device (Table 4 layout). *)

val pp_table5 : (Device.t * ladder_step list) Fmt.t
(** Performance counters (Table 5 layout). *)

(** {2 Figures} *)

val figure1_source : string
(** The Figure 1 Jacobi source accepted by the frontend. *)

val figure2_text : unit -> string
val figure3_text : unit -> string
val figure4_text : unit -> string
val figure5_text : unit -> string
val figure6_text : unit -> string

val tile_size_sweep_text : unit -> string
(** The Section 3.7 model on heat 3D: candidate sizes ranked by
    load-to-compute ratio. *)

val patus_note : ?pool:Hextile_par.Par.pool -> ?quick:bool -> Device.t -> string
(** The paper reports Patus only in prose (laplacian/heat 3D); this
    regenerates those two data points. *)

val h_sweep :
  ?pool:Hextile_par.Par.pool ->
  ?quick:bool ->
  Device.t ->
  Stencil.t ->
  (int * float) list
(** Ablation: GStencils/s of the hybrid scheme as the time-tile height
    [h] grows (h = 0 disables time tiling within tiles). *)

val diamond_vs_hex_text : unit -> string
(** The Section 5 qualitative comparison: diamond tiles with odd sizes
    have varying integer-point counts, hexagonal tiles never do. *)

val split1d_text : ?quick:bool -> Device.t -> string
(** The 1D degenerate case: hexagonal (hybrid) vs split tiling vs space
    tiling on heat 1D, all verified. *)

(** {2 Machine-readable sinks}

    JSON forms of the evaluation data, mirroring the printed tables row
    by row (used by [bench --json] so the perf trajectory can be diffed
    across commits). *)

val result_json : Common.result -> Hextile_obs.Json.t
(** One simulated run: scheme, device, times, throughput and the full
    counter set. *)

val table12_json : Device.t -> perf_row list -> Hextile_obs.Json.t
val ladder_json : Device.t -> ladder_step list -> Hextile_obs.Json.t
val h_sweep_json : (int * float) list -> Hextile_obs.Json.t
