(** Quasi-affine expressions: affine forms extended with floor-division
    and modulo by positive integer constants.

    These are exactly the expressions needed to write down the hybrid
    schedule of the paper (equations (2)–(17)): sums of variables and
    constants, scaling, [⌊e/d⌋] and [e mod d]. *)

type t =
  | Const of int
  | Var of int  (** index into the ambient space *)
  | Add of t * t
  | Sub of t * t
  | Scale of int * t
  | Fdiv of t * int  (** floor division; divisor > 0 *)
  | Fmod of t * int  (** floor modulo; divisor > 0 *)

val const : int -> t
val var : int -> t
val add : t -> t -> t
val sub : t -> t -> t
val scale : int -> t -> t
val fdiv : t -> int -> t
val fmod : t -> int -> t
val ( + ) : t -> t -> t
val ( - ) : t -> t -> t

val eval : t -> int array -> int

val simplify : t -> t
(** Constant folding and elimination of zero/identity operations. *)

val to_affine : t -> (int array * int) option
(** [to_affine e] for an ambient dimension inferred from use is not
    possible; see [to_affine_in]. *)

val to_affine_in : dim:int -> t -> (int array * int) option
(** When [e] contains no [Fdiv]/[Fmod], its coefficient vector (of length
    [dim]) and constant. [None] otherwise. *)

val max_var : t -> int
(** Largest variable index occurring, or [-1]. *)

val pp : Space.t -> t Fmt.t
val pp_anon : t Fmt.t
(** Print with [x0, x1, ...] variable names. *)
