(** Exact rational linear programming over a polyhedron.

    Implemented by introducing the objective as a fresh variable and
    projecting everything else away with Fourier–Motzkin — exact over the
    rationals and perfectly adequate at the dimensions this project uses
    (≤ ~10 variables). *)

type result =
  | Empty  (** the feasible set has no rational point *)
  | Unbounded  (** the objective is unbounded in the requested direction *)
  | Opt of Hextile_util.Rat.t

val maximize : Polyhedron.t -> obj:int array -> ?const:int -> unit -> result
(** [maximize p ~obj ()] maximizes [obj · x + const] over the rational
    relaxation of [p]'s constraints (as integer-tightened by
    {!Constr.normalize}). [obj] must have length [Polyhedron.dim p]. *)

val minimize : Polyhedron.t -> obj:int array -> ?const:int -> unit -> result

val pp_result : result Fmt.t
