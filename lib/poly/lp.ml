open Hextile_util
module Obs = Hextile_obs.Obs

type result = Empty | Unbounded | Opt of Rat.t

(* Append a variable z constrained by z = obj·x + const, then read off the
   rational bounds of z. *)
let with_objective p ~obj ~const =
  let n = Polyhedron.dim p in
  assert (Array.length obj = n);
  let space' = Space.append (Polyhedron.space p) [ "$obj" ] in
  let cs =
    List.map (fun c -> Constr.insert_dims c ~at:n ~count:1) (Polyhedron.constraints p)
  in
  let z_def =
    Constr.eq (Array.init (n + 1) (fun i -> if i = n then 1 else -obj.(i))) (-const)
  in
  Polyhedron.make space' (z_def :: cs)

let maximize p ~obj ?(const = 0) () =
  Obs.incr "poly.lp_solves";
  let q = with_objective p ~obj ~const in
  match Polyhedron.var_bounds q (Polyhedron.dim p) with
  | None -> Empty
  | Some (_, None) -> Unbounded
  | Some (_, Some hi) -> Opt hi

let minimize p ~obj ?(const = 0) () =
  Obs.incr "poly.lp_solves";
  let q = with_objective p ~obj ~const in
  match Polyhedron.var_bounds q (Polyhedron.dim p) with
  | None -> Empty
  | Some (None, _) -> Unbounded
  | Some (Some lo, _) -> Opt lo

let pp_result ppf = function
  | Empty -> Fmt.string ppf "empty"
  | Unbounded -> Fmt.string ppf "unbounded"
  | Opt r -> Rat.pp ppf r
