open Hextile_util

type t =
  | Const of int
  | Var of int
  | Add of t * t
  | Sub of t * t
  | Scale of int * t
  | Fdiv of t * int
  | Fmod of t * int

let const n = Const n
let var i = Var i
let add a b = Add (a, b)
let sub a b = Sub (a, b)
let scale k e = Scale (k, e)

let fdiv e d =
  if d <= 0 then invalid_arg "Qaff.fdiv: divisor must be positive";
  Fdiv (e, d)

let fmod e d =
  if d <= 0 then invalid_arg "Qaff.fmod: divisor must be positive";
  Fmod (e, d)

let ( + ) = add
let ( - ) = sub

let rec eval e env =
  match e with
  | Const n -> n
  | Var i -> env.(i)
  | Add (a, b) -> Stdlib.( + ) (eval a env) (eval b env)
  | Sub (a, b) -> Stdlib.( - ) (eval a env) (eval b env)
  | Scale (k, a) -> Stdlib.( * ) k (eval a env)
  | Fdiv (a, d) -> Intutil.fdiv (eval a env) d
  | Fmod (a, d) -> Intutil.fmod (eval a env) d

let rec simplify e =
  match e with
  | Const _ | Var _ -> e
  | Add (a, b) -> (
      match (simplify a, simplify b) with
      | Const x, Const y -> Const (Stdlib.( + ) x y)
      | Const 0, b -> b
      | a, Const 0 -> a
      | a, b -> Add (a, b))
  | Sub (a, b) -> (
      match (simplify a, simplify b) with
      | Const x, Const y -> Const (Stdlib.( - ) x y)
      | a, Const 0 -> a
      | a, b -> Sub (a, b))
  | Scale (k, a) -> (
      match (k, simplify a) with
      | 0, _ -> Const 0
      | 1, a -> a
      | k, Const x -> Const (Stdlib.( * ) k x)
      | k, a -> Scale (k, a))
  | Fdiv (a, d) -> (
      match (simplify a, d) with
      | a, 1 -> a
      | Const x, d -> Const (Intutil.fdiv x d)
      | a, d -> Fdiv (a, d))
  | Fmod (a, d) -> (
      match (simplify a, d) with
      | _, 1 -> Const 0
      | Const x, d -> Const (Intutil.fmod x d)
      | a, d -> Fmod (a, d))

let max_var e =
  let rec go e =
    match e with
    | Const _ -> -1
    | Var i -> i
    | Add (a, b) | Sub (a, b) -> Stdlib.max (go a) (go b)
    | Scale (_, a) | Fdiv (a, _) | Fmod (a, _) -> go a
  in
  go e

let to_affine_in ~dim e =
  let coeffs = Array.make dim 0 and const = ref 0 in
  let exception Nonaffine in
  let rec go k e =
    match e with
    | Const n -> const := Stdlib.( + ) !const (Stdlib.( * ) k n)
    | Var i -> coeffs.(i) <- Stdlib.( + ) coeffs.(i) k
    | Add (a, b) ->
        go k a;
        go k b
    | Sub (a, b) ->
        go k a;
        go (-k) b
    | Scale (c, a) -> go (Stdlib.( * ) k c) a
    | Fdiv _ | Fmod _ -> raise Nonaffine
  in
  match go 1 e with () -> Some (coeffs, !const) | exception Nonaffine -> None

let to_affine _ = None

let rec pp_gen name ppf e =
  let pp = pp_gen name in
  match e with
  | Const n -> Fmt.int ppf n
  | Var i -> Fmt.string ppf (name i)
  | Add (a, b) -> Fmt.pf ppf "(%a + %a)" pp a pp b
  | Sub (a, b) -> Fmt.pf ppf "(%a - %a)" pp a pp b
  | Scale (k, a) -> Fmt.pf ppf "%d*%a" k pp a
  | Fdiv (a, d) -> Fmt.pf ppf "floor(%a / %d)" pp a d
  | Fmod (a, d) -> Fmt.pf ppf "(%a mod %d)" pp a d

let pp space = pp_gen (Space.name space)
let pp_anon ppf = pp_gen (fun i -> "x" ^ string_of_int i) ppf
