(** Named dimension spaces.

    A space gives names to the coordinates of the integer vectors a
    polyhedron or quasi-affine map ranges over; it exists purely for
    pretty-printing and for locating a dimension by name. *)

type t

val make : string list -> t
(** Dimension names, outermost first. Names need not be distinct, but
    [index_of] then finds the first occurrence. *)

val dim : t -> int
val name : t -> int -> string
val names : t -> string list

val index_of : t -> string -> int
(** Raises [Not_found] if the name is absent. *)

val append : t -> string list -> t
(** Extend with extra trailing dimensions. *)

val equal : t -> t -> bool
val pp : t Fmt.t
