type t = { dom : Space.t; rng : Space.t; exprs : Qaff.t array }

let make ~dom ~rng exprs =
  assert (Array.length exprs = Space.dim rng);
  Array.iter (fun e -> assert (Qaff.max_var e < Space.dim dom)) exprs;
  { dom; rng; exprs = Array.map Qaff.simplify exprs }

let dom t = t.dom
let rng t = t.rng
let exprs t = t.exprs
let apply t x = Array.map (fun e -> Qaff.eval e x) t.exprs
let output t i = t.exprs.(i)

let compare_points t a b = compare (apply t a) (apply t b)

let pp ppf t =
  Fmt.pf ppf "%a -> [@[%a@]]" Space.pp t.dom
    Fmt.(array ~sep:(any ",@ ") (Qaff.pp t.dom))
    t.exprs
