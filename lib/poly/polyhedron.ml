open Hextile_util
module Obs = Hextile_obs.Obs

type t = { space : Space.t; cs : Constr.t list }

exception Unbounded of string

let make space cs = { space; cs = List.map Constr.normalize cs }
let universe space = { space; cs = [] }
let space t = t.space
let constraints t = t.cs
let dim t = Space.dim t.space

let add_constraints t cs =
  { t with cs = List.rev_append (List.map Constr.normalize cs) t.cs }

let intersect a b =
  assert (dim a = dim b);
  { a with cs = List.rev_append a.cs b.cs }

let contains t x = List.for_all (fun c -> Constr.holds c x) t.cs

let sign n = compare n 0

(* Fourier-Motzkin elimination of variable [j], preferring an equality
   pivot: an equality [e] with a nonzero coefficient at [j] lets every
   other constraint be rewritten without the pair-combination blowup.
   Returns the new constraint list and whether an equality pivot was
   used (for exact Obs counter replay on cache hits). *)
let eliminate_cs cs j =
  let open Constr in
  let has_j c = coeff c j <> 0 in
  match List.find_opt (fun c -> c.kind = Eq && has_j c) cs with
  | Some e ->
      let ej = coeff e j in
      let cs' =
        List.filter_map
          (fun c ->
            if c == e then None
            else if not (has_j c) then Some c
            else
              let cj = coeff c j in
              let c' = combine (abs ej) c (-sign ej * cj) e in
              if is_trivial c' then None else Some (normalize c'))
          cs
      in
      (cs', true)
  | None ->
      let pos, neg, zero =
        List.fold_left
          (fun (p, n, z) c ->
            let cj = coeff c j in
            if cj > 0 then (c :: p, n, z)
            else if cj < 0 then (p, c :: n, z)
            else (p, n, c :: z))
          ([], [], []) cs
      in
      let combos =
        List.concat_map
          (fun p ->
            List.filter_map
              (fun n ->
                let c' = combine (-coeff n j) p (coeff p j) n in
                if is_trivial c' then None else Some (normalize c'))
              neg)
          pos
      in
      (List.rev_append combos zero, false)

(* Projection cache. The same small systems (hexagon shapes, tile
   polyhedra) are eliminated over and over during tile-size search and
   bound queries; results live in a process-shared publish-once table
   (lock-free, one elimination per distinct system across every domain)
   keyed by the canonicalized (sorted, already-normalized) constraint
   list plus the eliminated variable. Obs counters are replayed on hits
   — [poly.fm_eliminations] counts requests and [poly.fm_eq_pivots] is
   bumped from the cached pivot flag — so counter totals are
   bit-identical whether or not the cache is on, on every domain, at
   every --jobs value. Hit/miss stats are process-wide atomics. *)
module Oncemap = Hextile_par.Oncemap

let fm_cache_on = Atomic.make true
let set_fm_cache b = Atomic.set fm_cache_on b
let fm_cache_enabled () = Atomic.get fm_cache_on

let fm_cache : (Constr.t list * int, Constr.t list * bool) Oncemap.t =
  Oncemap.create ~bits:12 ~name:"poly.fm_projection" ()

let fm_cache_stats () = Oncemap.stats fm_cache
let fm_cache_clear () = Oncemap.clear fm_cache

let eliminate_keep t j =
  Obs.incr "poly.fm_eliminations";
  let finish (cs, eq_pivot) =
    if eq_pivot then Obs.incr "poly.fm_eq_pivots";
    { t with cs }
  in
  if not (Atomic.get fm_cache_on) then finish (eliminate_cs t.cs j)
  else begin
    let key = (List.sort compare t.cs, j) in
    match Oncemap.find fm_cache key with
    | Some r -> finish r
    | None -> finish (Oncemap.publish fm_cache key (eliminate_cs t.cs j))
  end

let project_prefix t k =
  let rec go t j = if j < k then t else go (eliminate_keep t j) (j - 1) in
  go t (dim t - 1)

(* Constraints touching no variable at all: consistency is decidable by
   inspection. FM yields an exact rational emptiness test. *)
let is_empty_rational t =
  let p0 = project_prefix t 0 in
  List.exists Constr.is_absurd p0.cs

(* [projections t] returns [projs] with [projs.(k)] involving only
   variables [< k]; [projs.(n) == t]. *)
let projections t =
  let n = dim t in
  let projs = Array.make (n + 1) t in
  for k = n - 1 downto 0 do
    projs.(k) <- eliminate_keep projs.(k + 1) k
  done;
  projs

(* Bounds on variable [k] given values [env.(0..k-1)], from constraints
   mentioning only variables [<= k]. Returns [None] when a var-free
   constraint is violated at this partial point. *)
let level_bounds proj_k1 k env =
  let lo = ref None and hi = ref None and ok = ref true in
  let tighten_lo v = match !lo with None -> lo := Some v | Some l -> if v > l then lo := Some v in
  let tighten_hi v = match !hi with None -> hi := Some v | Some h -> if v < h then hi := Some v in
  List.iter
    (fun (c : Constr.t) ->
      if !ok then begin
        let a = Constr.coeff c k in
        let v = ref c.const in
        for i = 0 to k - 1 do
          v := !v + (Constr.coeff c i * env.(i))
        done;
        let v = !v in
        if a = 0 then begin
          match c.kind with
          | Ge -> if v < 0 then ok := false
          | Eq -> if v <> 0 then ok := false
        end
        else begin
          (* a * x_k + v >= 0 (or = 0) *)
          (match c.kind with
          | Ge -> if a > 0 then tighten_lo (Intutil.cdiv (-v) a) else tighten_hi (Intutil.fdiv v (-a))
          | Eq ->
              tighten_lo (Intutil.cdiv (-v) a);
              tighten_hi (Intutil.fdiv (-v) a))
        end
      end)
    proj_k1.cs;
  if !ok then Some (!lo, !hi) else None

let fold_points t ~init ~f =
  let n = dim t in
  let projs = projections t in
  if List.exists Constr.is_absurd projs.(0).cs then init
  else begin
    let env = Array.make (max n 1) 0 in
    let rec go k acc =
      if k = n then begin
        Obs.incr "poly.points_enumerated";
        f acc (Array.sub env 0 n)
      end
      else
        match level_bounds projs.(k + 1) k env with
        | None -> acc
        | Some (lo, hi) ->
            let lo =
              match lo with
              | Some l -> l
              | None -> raise (Unbounded (Space.name t.space k))
            and hi =
              match hi with
              | Some h -> h
              | None -> raise (Unbounded (Space.name t.space k))
            in
            let acc = ref acc in
            for x = lo to hi do
              env.(k) <- x;
              acc := go (k + 1) !acc
            done;
            !acc
    in
    go 0 init
  end

let iter_points t ~f = fold_points t ~init:() ~f:(fun () x -> f x)
let enumerate t = List.rev (fold_points t ~init:[] ~f:(fun acc x -> x :: acc))
let count t = fold_points t ~init:0 ~f:(fun n _ -> n + 1)

exception Found of int array

let sample t =
  match iter_points t ~f:(fun x -> raise (Found x)) with
  | () -> None
  | exception Found x -> Some x

let exists_point t = Option.is_some (sample t)

(* Rational bounds of one coordinate, via FM elimination of all others. *)
let var_bounds t i =
  if is_empty_rational t then None
  else begin
    let p = ref t in
    for j = dim t - 1 downto 0 do
      if j <> i then p := eliminate_keep !p j
    done;
    let lo = ref None and hi = ref None in
    List.iter
      (fun (c : Constr.t) ->
        let a = Constr.coeff c i in
        if a <> 0 then begin
          let b = Rat.make (-c.const) a in
          (* a*x + const >= 0: x >= -const/a if a>0, x <= -const/a if a<0 *)
          let tighten_lo v =
            match !lo with None -> lo := Some v | Some l -> if Rat.(v > l) then lo := Some v
          and tighten_hi v =
            match !hi with None -> hi := Some v | Some h -> if Rat.(v < h) then hi := Some v
          in
          match c.kind with
          | Constr.Ge -> if a > 0 then tighten_lo b else tighten_hi b
          | Constr.Eq ->
              tighten_lo b;
              tighten_hi b
        end)
      (!p).cs;
    Some (!lo, !hi)
  end

let pp ppf t =
  Fmt.pf ppf "{ %a : %a }" Space.pp t.space
    Fmt.(list ~sep:(any " and ") (Constr.pp t.space))
    t.cs
