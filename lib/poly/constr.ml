open Hextile_util

type kind = Ge | Eq

type t = { coeffs : int array; const : int; kind : kind }

let ge coeffs const = { coeffs; const; kind = Ge }
let eq coeffs const = { coeffs; const; kind = Eq }

let dim t = Array.length t.coeffs

let eval t x =
  let acc = ref t.const in
  Array.iteri (fun i c -> acc := !acc + (c * x.(i))) t.coeffs;
  !acc

let holds t x =
  let v = eval t x in
  match t.kind with Ge -> v >= 0 | Eq -> v = 0

let coeff t i = t.coeffs.(i)

let all_zero t = Array.for_all (fun c -> c = 0) t.coeffs

let is_trivial t =
  all_zero t && (match t.kind with Ge -> t.const >= 0 | Eq -> t.const = 0)

let is_absurd t =
  all_zero t && (match t.kind with Ge -> t.const < 0 | Eq -> t.const <> 0)

let normalize t =
  let g = Array.fold_left (fun g c -> Intutil.gcd g c) 0 t.coeffs in
  if g = 0 || g = 1 then t
  else
    match t.kind with
    | Ge ->
        {
          coeffs = Array.map (fun c -> c / g) t.coeffs;
          const = Intutil.fdiv t.const g;
          kind = Ge;
        }
    | Eq ->
        if t.const mod g <> 0 then t (* unsatisfiable over Z; keep as-is *)
        else
          {
            coeffs = Array.map (fun c -> c / g) t.coeffs;
            const = t.const / g;
            kind = Eq;
          }

let scale t k =
  assert (k > 0);
  { t with coeffs = Array.map (fun c -> c * k) t.coeffs; const = t.const * k }

let combine a c1 b c2 =
  (match c1.kind with Ge -> assert (a >= 0) | Eq -> ());
  (match c2.kind with Ge -> assert (b >= 0) | Eq -> ());
  let coeffs =
    Array.init (dim c1) (fun i -> (a * c1.coeffs.(i)) + (b * c2.coeffs.(i)))
  in
  let kind = match (c1.kind, c2.kind) with Eq, Eq -> Eq | _ -> Ge in
  { coeffs; const = (a * c1.const) + (b * c2.const); kind }

let insert_dims t ~at ~count =
  let n = dim t in
  let coeffs =
    Array.init (n + count) (fun i ->
        if i < at then t.coeffs.(i)
        else if i < at + count then 0
        else t.coeffs.(i - count))
  in
  { t with coeffs }

let pp space ppf t =
  let first = ref true in
  let term ppf (c, i) =
    let name = Space.name space i in
    if c = 1 then Fmt.string ppf name
    else if c = -1 then Fmt.pf ppf "-%s" name
    else Fmt.pf ppf "%d%s" c name
  in
  Array.iteri
    (fun i c ->
      if c <> 0 then begin
        if !first then Fmt.pf ppf "%a" term (c, i)
        else if c > 0 then Fmt.pf ppf " + %a" term (c, i)
        else Fmt.pf ppf " - %a" term (-c, i);
        first := false
      end)
    t.coeffs;
  if !first then Fmt.int ppf t.const
  else if t.const > 0 then Fmt.pf ppf " + %d" t.const
  else if t.const < 0 then Fmt.pf ppf " - %d" (-t.const);
  Fmt.string ppf (match t.kind with Ge -> " >= 0" | Eq -> " = 0")
