(** Convex integer polyhedra: conjunctions of affine constraints.

    The operations used by the tiler are Fourier–Motzkin projection,
    rational emptiness, and exact enumeration / counting of the integer
    points of bounded sets. Projection is rational (the standard FM
    over-approximation of integer projection), which is sufficient for the
    bound computations it is used for; enumeration and counting are exact
    over the integers. *)

type t

exception Unbounded of string
(** Raised by enumeration primitives when the set is infinite in the
    direction being enumerated. *)

val make : Space.t -> Constr.t list -> t
val universe : Space.t -> t
val space : t -> Space.t
val constraints : t -> Constr.t list
val dim : t -> int

val add_constraints : t -> Constr.t list -> t
val intersect : t -> t -> t
(** Both arguments must have the same dimension. *)

val contains : t -> int array -> bool

val eliminate_keep : t -> int -> t
(** Fourier–Motzkin elimination of one variable. The dimension count is
    unchanged; the eliminated variable simply no longer occurs in any
    constraint. Uses an equality pivot when one is available.

    Results are memoized in a process-shared lock-free publish-once
    table, keyed by the canonicalized (sorted) constraint list and the
    eliminated variable, so repeated projections of the same system
    (tile-size search, bound queries) are computed once across every
    domain. A hit for a permuted-but-equal system returns the first
    computation's result — semantically the same projection, though the
    constraint order may differ from what an uncached run would produce.
    Obs counters ([poly.fm_eliminations], [poly.fm_eq_pivots]) are
    replayed on hits, so counter totals are identical with the cache on
    or off, on every domain, at every jobs value. *)

val set_fm_cache : bool -> unit
(** Globally enable/disable the projection cache (on by default). With
    the cache off every call recomputes; results are structurally
    identical to a cache-cold computation. *)

val fm_cache_enabled : unit -> bool

val fm_cache_stats : unit -> int * int
(** Process-wide [(hits, misses)] of the shared cache. *)

val fm_cache_clear : unit -> unit
(** Drop the shared cache's entries and reset its stats. *)

val project_prefix : t -> int -> t
(** [project_prefix p k] eliminates every variable with index [>= k]. *)

val is_empty_rational : t -> bool
(** Whether the set has no rational points. [false] does not guarantee an
    integer point exists; use [exists_point] for that. *)

val iter_points : t -> f:(int array -> unit) -> unit
(** Visit every integer point in lexicographic order. The callback
    receives a fresh array each time. Raises [Unbounded] if the set is
    infinite. *)

val fold_points : t -> init:'a -> f:('a -> int array -> 'a) -> 'a
val enumerate : t -> int array list
val count : t -> int
val exists_point : t -> bool
val sample : t -> int array option

val var_bounds : t -> int -> (Hextile_util.Rat.t option * Hextile_util.Rat.t option) option
(** [var_bounds p i] is [None] when [p] is rationally empty, otherwise
    [Some (lo, hi)] with the rational infimum/supremum of coordinate [i]
    ([None] meaning unbounded in that direction). *)

val pp : t Fmt.t
