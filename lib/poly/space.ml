type t = string array

let make names = Array.of_list names
let dim = Array.length
let name t i = t.(i)
let names t = Array.to_list t

let index_of t n =
  let rec go i =
    if i >= Array.length t then raise Not_found
    else if String.equal t.(i) n then i
    else go (i + 1)
  in
  go 0

let append t extra = Array.append t (Array.of_list extra)
let equal a b = a = b
let pp ppf t = Fmt.pf ppf "[%a]" Fmt.(list ~sep:(any ", ") string) (names t)
