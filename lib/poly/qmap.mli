(** Quasi-affine maps between integer spaces.

    A [Qmap.t] sends points of a domain space to points of a range space,
    one quasi-affine expression per output dimension — the representation
    used for schedules such as
    [[t, s0] -> [T, p, S0, t', s0']]. *)

type t

val make : dom:Space.t -> rng:Space.t -> Qaff.t array -> t
(** One expression per range dimension; expressions index domain dims. *)

val dom : t -> Space.t
val rng : t -> Space.t
val exprs : t -> Qaff.t array

val apply : t -> int array -> int array
(** Evaluate at a domain point. *)

val output : t -> int -> Qaff.t

val compare_points : t -> int array -> int array -> int
(** Lexicographic comparison of the images of two domain points — the
    execution order defined by the schedule. *)

val pp : t Fmt.t
