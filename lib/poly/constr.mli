(** Affine constraints over integer variables.

    A constraint denotes [coeffs · x + const ≥ 0] (kind [Ge]) or
    [coeffs · x + const = 0] (kind [Eq]) for integer vectors [x]. *)

type kind = Ge | Eq

type t = { coeffs : int array; const : int; kind : kind }

val ge : int array -> int -> t
(** [ge coeffs const] is [coeffs·x + const ≥ 0]. The array is not copied. *)

val eq : int array -> int -> t

val dim : t -> int

val eval : t -> int array -> int
(** Value of the affine form at a point. *)

val holds : t -> int array -> bool

val coeff : t -> int -> int

val is_trivial : t -> bool
(** No variable occurs and the constraint is satisfied (e.g. [3 ≥ 0]). *)

val is_absurd : t -> bool
(** No variable occurs and the constraint is violated. *)

val normalize : t -> t
(** Divide through by the gcd of the coefficients; for inequalities the
    constant is tightened to [⌊const/g⌋], which is exact on integer
    points. *)

val scale : t -> int -> t
(** [scale c k] multiplies the affine form by [k > 0] (direction kept). *)

val combine : int -> t -> int -> t -> t
(** [combine a c1 b c2] is the constraint [a·c1 + b·c2]; both multipliers
    must be valid for the kinds involved (positive for [Ge]); the result is
    [Eq] only if both inputs are [Eq]. *)

val insert_dims : t -> at:int -> count:int -> t
(** Add [count] fresh zero-coefficient dimensions at position [at]. *)

val pp : Space.t -> t Fmt.t
