(** Set-associative L2 cache model with LRU replacement, line granularity
    and write-back/write-allocate semantics: stores dirty a line, and the
    DRAM write traffic is the stream of dirty lines evicted (plus whatever
    [flush] returns at the end of a measurement). *)

type t

type outcome = { hit : bool; writeback : bool }

val create : bytes:int -> assoc:int -> line_bytes:int -> t

val access : t -> addr:int -> write:bool -> outcome
(** Touch the line containing byte [addr]. [writeback] reports that the
    victim line was dirty (one DRAM write transaction). *)

val hit_bit : int
val writeback_bit : int

val access_code : t -> addr:int -> write:bool -> int
(** [access] without the record: the outcome as
    [hit_bit lor writeback_bit] bits. The simulator's per-transaction
    hot paths use this form so a cache probe allocates nothing. *)

val run_shift : int

val access_run : t -> line0:int -> n:int -> write:bool -> int
(** Touch [n] consecutive lines starting at line [line0] (line =
    byte address / line size) with per-line semantics identical to
    {!access_code}, returning the aggregate
    [(hits lsl run_shift) lor writebacks]. The batched DRAM replay's
    probe: one call per compressed-trace line run instead of a record
    per line. [n] must be in [0, 2^run_shift). *)

val flush : t -> int
(** Evict everything; returns the number of dirty lines written back. *)

val reset : t -> unit
val line_bytes : t -> int

val stats : t -> int * int
(** [(valid_lines, dirty_lines)] currently resident — a cheap occupancy
    probe; the timeline layer attaches it to replay instants so traces
    show how full/dirty the shared L2 was when a launch's traces were
    replayed. *)
