module Obs = Hextile_obs.Obs
module Tl = Hextile_obs.Timeline
module Par = Hextile_par.Par

type t = {
  dev : Device.t;
  total : Counters.t;
  l2 : L2.t;
  l1 : L2.t;  (** per-SM L1, reset at block boundaries *)
  addr : Addrmap.t;
  mutable launches : launch list;
  mutable blocks_in_flight : int;
  epoch : int Atomic.t;  (** bumped per launch; part of {!generation} *)
  blocks_memoized : int Atomic.t;  (** blocks retired by {!replay_stream} *)
  blocks_analytic : int Atomic.t;
      (** blocks retired by analytic class scaling, never instanced *)
  tile_classes : int Atomic.t;  (** tile classes enumerated by analytic mode *)
  analytic_blit_rows : int Atomic.t;
      (** recorded compute rows retired through coalesced bulk runs *)
  analytic_replay_lines : int Atomic.t;
      (** L2 line probes issued by the batched compressed-trace replay *)
  mutable analytic_epilogue_s : float;  (** total epilogue wall time *)
  mutable analytic_derive_s : float;  (** …counter-derivation stage *)
  mutable analytic_dram_s : float;  (** …sequential L2 replay stage *)
  mutable analytic_grids_s : float;  (** …grid reconstruction stage *)
}

and launch = {
  lname : string;
  blocks : int;
  threads : int;
  shared_bytes : int;
  delta : Counters.t;
  time_s : float;
  bottleneck : string;
}

let create (dev : Device.t) =
  {
    dev;
    total = Counters.create ();
    l2 = L2.create ~bytes:dev.l2_bytes ~assoc:dev.l2_assoc ~line_bytes:dev.line_bytes;
    l1 =
      L2.create
        ~bytes:(max dev.line_bytes dev.l1_bytes)
        ~assoc:4 ~line_bytes:dev.line_bytes;
    addr = Addrmap.create ();
    launches = [];
    blocks_in_flight = 0;
    epoch = Atomic.make 0;
    blocks_memoized = Atomic.make 0;
    blocks_analytic = Atomic.make 0;
    tile_classes = Atomic.make 0;
    analytic_blit_rows = Atomic.make 0;
    analytic_replay_lines = Atomic.make 0;
    analytic_epilogue_s = 0.0;
    analytic_derive_s = 0.0;
    analytic_dram_s = 0.0;
    analytic_grids_s = 0.0;
  }

(* ---- parallel-execution shadows ---------------------------------------- *)

(* The L2 is shared across blocks, so its hit/miss sequence depends on the
   global access order — which a parallel run does not reproduce online.
   Each domain therefore simulates its blocks against a private shadow
   (own counter accumulator, own L1 replica — the L1 resets per block
   anyway) and records the per-block L2 access sequence as an encoded
   trace; after the join, the traces are replayed through the real shared
   L2 sequentially in the launch's scrambled block order, reproducing the
   sequential hit/miss/writeback sequence (and hence the DRAM counters)
   bit-for-bit. *)

type tbuf = { mutable buf : int array; mutable len : int }

let tbuf_create () = { buf = Array.make 256 0; len = 0 }

let tbuf_push b v =
  if b.len = Array.length b.buf then begin
    let nb = Array.make (2 * b.len) 0 in
    Array.blit b.buf 0 nb 0 b.len;
    b.buf <- nb
  end;
  b.buf.(b.len) <- v;
  b.len <- b.len + 1

type shadow = {
  owner : t;  (** the sim whose launch this shadow belongs to *)
  sc : Counters.t;  (** per-domain accumulator, added into [total] at join *)
  sl1 : L2.t;  (** private L1 replica (reset per block, like the real one) *)
  mutable strace : tbuf;  (** current block's L2 trace: (line lsl 1) lor write *)
  sserial : int;  (** unique per shadow; part of {!generation} *)
}

(* Unique shadow identities: two chunks of one launch scheduled onto the
   same domain must still look like different generations to per-chunk
   memo tables, or memoized-block counts would depend on work-stealing
   order. *)
let shadow_serials = Atomic.make 0

let shadow_key : shadow option Domain.DLS.key = Domain.DLS.new_key (fun () -> None)

(* [Some s as o] returns the option cell already held in DLS — rebuilding
   [Some s] here would charge two minor words to every counter bump on a
   pool worker, breaking the encode path's allocation budget. *)
let shadow t =
  match Domain.DLS.get shadow_key with
  | Some s as o when s.owner == t -> o
  | _ -> None

let generation t =
  let serial = match shadow t with Some s -> s.sserial | None -> 0 in
  (Atomic.get t.epoch, serial)

(* ---- address-stream recording ----------------------------------------- *)

(* While a recording is active on the current domain, every batched warp
   event is appended to the stream (with global addresses classified into
   array regions). Per-lane warp events carry information the stream
   cannot represent (arbitrary option arrays, sanitizer thread ids), so
   they invalidate the recording instead — a missing stream only costs
   the memoization, never correctness. *)

type recording = {
  rowner : t;
  rstream : Tileclass.stream;
  region_of : int -> int;  (** byte address -> region id, or negative *)
  mutable rvalid : bool;
}

let record_key : recording option Domain.DLS.key = Domain.DLS.new_key (fun () -> None)

let recording_active t =
  match Domain.DLS.get record_key with
  | Some r -> r.rowner == t && r.rvalid
  | None -> false

let record_begin t ~region_of =
  Domain.DLS.set record_key
    (Some { rowner = t; rstream = Tileclass.create (); region_of; rvalid = true })

let record_end t =
  match Domain.DLS.get record_key with
  | Some r when r.rowner == t ->
      Domain.DLS.set record_key None;
      if r.rvalid then Some r.rstream else None
  | _ -> None

let record_invalidate t =
  match Domain.DLS.get record_key with
  | Some r when r.rowner == t -> r.rvalid <- false
  | _ -> ()

let record_compute t ~stmt ~tstep ~waddr ~srcs ~n =
  match Domain.DLS.get record_key with
  | Some r when r.rowner == t && r.rvalid ->
      let wregion = r.region_of waddr in
      let sregions = Array.map r.region_of srcs in
      if wregion < 0 || Array.exists (fun x -> x < 0) sregions then
        r.rvalid <- false
      else
        Tileclass.push r.rstream
          (Compute { stmt; tstep; wregion; waddr; sregions; srcs; n })
  | _ -> ()

let active addrs =
  Array.fold_left (fun n a -> if a = None then n else n + 1) 0 addrs

(* Distinct cache lines among active lanes. *)
let lines_of dev addrs =
  let seen = ref [] in
  Array.iter
    (function
      | None -> ()
      | Some a ->
          let l = a / dev.Device.line_bytes in
          if not (List.mem l !seen) then seen := l :: !seen)
    addrs;
  !seen

(* One coalesced load transaction: L1 probe, then the shared L2 (online)
   or the per-domain trace (shadowed). *)
let load_line t sh (c : Counters.t) line =
  c.gld_transactions <- c.gld_transactions + 1;
  let addr = line * t.dev.line_bytes in
  match sh with
  | None ->
      let l1 =
        t.dev.l1_bytes > 0
        && L2.access_code t.l1 ~addr ~write:false land L2.hit_bit <> 0
      in
      if not l1 then begin
        c.l2_read_transactions <- c.l2_read_transactions + 1;
        let o = L2.access_code t.l2 ~addr ~write:false in
        if o land L2.hit_bit = 0 then
          c.dram_read_transactions <- c.dram_read_transactions + 1;
        if o land L2.writeback_bit <> 0 then
          c.dram_write_transactions <- c.dram_write_transactions + 1
      end
  | Some s ->
      let l1 =
        t.dev.l1_bytes > 0
        && L2.access_code s.sl1 ~addr ~write:false land L2.hit_bit <> 0
      in
      if not l1 then begin
        c.l2_read_transactions <- c.l2_read_transactions + 1;
        tbuf_push s.strace (line lsl 1)
      end

let store_line t sh (c : Counters.t) ~serial line =
  c.gst_transactions <- c.gst_transactions + 1;
  if serial then c.serial_store_transactions <- c.serial_store_transactions + 1;
  c.l2_write_transactions <- c.l2_write_transactions + 1;
  match sh with
  | None ->
      let o = L2.access_code t.l2 ~addr:(line * t.dev.line_bytes) ~write:true in
      if o land L2.writeback_bit <> 0 then
        c.dram_write_transactions <- c.dram_write_transactions + 1
  | Some s -> tbuf_push s.strace ((line lsl 1) lor 1)

let global_load_warp t addrs =
  let n = active addrs in
  if n > 0 then begin
    record_invalidate t;
    let sh = shadow t in
    let c = match sh with Some s -> s.sc | None -> t.total in
    c.gld_inst <- c.gld_inst + n;
    c.gld_requests <- c.gld_requests + 1;
    c.gld_useful_bytes <- c.gld_useful_bytes + (4 * n);
    List.iter (load_line t sh c) (lines_of t.dev addrs)
  end

let global_store_warp ?(serial = false) t addrs =
  let n = active addrs in
  if n > 0 then begin
    record_invalidate t;
    let sh = shadow t in
    let c = match sh with Some s -> s.sc | None -> t.total in
    c.gst_inst <- c.gst_inst + n;
    List.iter (store_line t sh c ~serial) (lines_of t.dev addrs)
  end

(* ---- warp-batched entry points ----------------------------------------- *)

(* The batched forms take a contiguous word run (or a sorted lane-address
   array) instead of a per-lane option array: same counters and the same
   cache-access sequence, without materializing per-lane [Some] cells.
   [lines_of] discovers distinct lines by prepending, so it yields them
   highest-first for ascending addresses — the loops below walk the line
   range (or the address array) downwards to preserve that order, which
   the L1/L2 LRU state and hence the DRAM counters depend on.

   These entry points do not feed the {!Sanitize} race checker (they
   carry no thread identities); callers fall back to the per-lane forms
   whenever the sanitizer is enabled. *)

let global_load_run t ~addr ~n =
  if n > 0 then begin
    let sh = shadow t in
    let c = match sh with Some s -> s.sc | None -> t.total in
    c.gld_inst <- c.gld_inst + n;
    c.gld_requests <- c.gld_requests + 1;
    c.gld_useful_bytes <- c.gld_useful_bytes + (4 * n);
    let lb = t.dev.line_bytes in
    let lo = addr / lb and hi = (addr + (4 * n) - 4) / lb in
    for line = hi downto lo do
      load_line t sh c line
    done;
    match Domain.DLS.get record_key with
    | Some r when r.rowner == t && r.rvalid ->
        let region = r.region_of addr in
        if region < 0 then r.rvalid <- false
        else Tileclass.push r.rstream (Gload_run { region; addr; n })
    | _ -> ()
  end

let global_store_run ?(serial = false) t ~addr ~n =
  if n > 0 then begin
    let sh = shadow t in
    let c = match sh with Some s -> s.sc | None -> t.total in
    c.gst_inst <- c.gst_inst + n;
    let lb = t.dev.line_bytes in
    let lo = addr / lb and hi = (addr + (4 * n) - 4) / lb in
    for line = hi downto lo do
      store_line t sh c ~serial line
    done;
    match Domain.DLS.get record_key with
    | Some r when r.rowner == t && r.rvalid ->
        let region = r.region_of addr in
        if region < 0 then r.rvalid <- false
        else Tileclass.push r.rstream (Gstore_run { region; addr; n; serial })
    | _ -> ()
  end

(* Nondecreasing lane addresses: adjacent dedup of the backwards walk
   yields the distinct lines in descending order — exactly [lines_of]. *)
let gload_lanes_off t addrs off =
  let n = Array.length addrs in
  if n > 0 then begin
    let sh = shadow t in
    let c = match sh with Some s -> s.sc | None -> t.total in
    c.gld_inst <- c.gld_inst + n;
    c.gld_requests <- c.gld_requests + 1;
    c.gld_useful_bytes <- c.gld_useful_bytes + (4 * n);
    let lb = t.dev.line_bytes in
    let prev = ref min_int in
    for i = n - 1 downto 0 do
      let line = (addrs.(i) + off) / lb in
      if line <> !prev then begin
        prev := line;
        load_line t sh c line
      end
    done
  end

let gstore_lanes_off ~serial t addrs off =
  let n = Array.length addrs in
  if n > 0 then begin
    let sh = shadow t in
    let c = match sh with Some s -> s.sc | None -> t.total in
    c.gst_inst <- c.gst_inst + n;
    let lb = t.dev.line_bytes in
    let prev = ref min_int in
    for i = n - 1 downto 0 do
      let line = (addrs.(i) + off) / lb in
      if line <> !prev then begin
        prev := line;
        store_line t sh c ~serial line
      end
    done
  end

let global_load_lanes t addrs =
  gload_lanes_off t addrs 0;
  if Array.length addrs > 0 then
    match Domain.DLS.get record_key with
    | Some r when r.rowner == t && r.rvalid ->
        let region = r.region_of addrs.(0) in
        if region < 0 then r.rvalid <- false
        else Tileclass.push r.rstream (Gload_lanes { region; addrs })
    | _ -> ()

let global_store_lanes ?(serial = false) t addrs =
  gstore_lanes_off ~serial t addrs 0;
  if Array.length addrs > 0 then
    match Domain.DLS.get record_key with
    | Some r when r.rowner == t && r.rvalid ->
        let region = r.region_of addrs.(0) in
        if region < 0 then r.rvalid <- false
        else Tileclass.push r.rstream (Gstore_lanes { region; addrs; serial })
    | _ -> ()

(* Bank conflicts: transactions = max over banks of the number of distinct
   words requested in that bank (same word broadcast counts once). *)
let bank_transactions dev addrs =
  let banks = dev.Device.banks in
  let per_bank = Array.make banks [] in
  Array.iter
    (function
      | None -> ()
      | Some w ->
          let b = ((w mod banks) + banks) mod banks in
          if not (List.mem w per_bank.(b)) then per_bank.(b) <- w :: per_bank.(b))
    addrs;
  Array.fold_left (fun m l -> max m (List.length l)) 0 per_bank

let counters_of t =
  match shadow t with Some s -> s.sc | None -> t.total

let live_counters = counters_of

let shared_load_warp ?(replay = 1) ?tids t addrs =
  let n = active addrs in
  if n > 0 then begin
    record_invalidate t;
    if Sanitize.enabled () then Sanitize.access ~write:false ?tids addrs;
    let c = counters_of t in
    c.shared_load_requests <- c.shared_load_requests + 1;
    c.shared_load_transactions <-
      c.shared_load_transactions + (replay * max 1 (bank_transactions t.dev addrs))
  end

let shared_store_warp ?(replay = 1) ?tids t addrs =
  let n = active addrs in
  if n > 0 then begin
    record_invalidate t;
    if Sanitize.enabled () then Sanitize.access ~write:true ?tids addrs;
    let c = counters_of t in
    c.shared_store_requests <- c.shared_store_requests + 1;
    c.shared_store_transactions <-
      c.shared_store_transactions + (replay * max 1 (bank_transactions t.dev addrs))
  end

(* Batched shared accesses. A contiguous word run touches distinct words
   whose per-bank counts differ by at most one, so the conflict count is
   [ceil n/banks] — equal to [bank_transactions] on the materialized
   addresses. Strictly ascending lane arrays hold distinct words, so the
   per-bank distinct-word count is a plain population count. *)

let record_shared t ~write ~transactions =
  match Domain.DLS.get record_key with
  | Some r when r.rowner == t && r.rvalid ->
      Tileclass.push r.rstream
        (if write then Shared_store { transactions }
         else Shared_load { transactions })
  | _ -> ()

let shared_load_run ?(replay = 1) t ~n =
  if n > 0 then begin
    let c = counters_of t in
    c.shared_load_requests <- c.shared_load_requests + 1;
    let tx = replay * max 1 ((n + t.dev.banks - 1) / t.dev.banks) in
    c.shared_load_transactions <- c.shared_load_transactions + tx;
    record_shared t ~write:false ~transactions:tx
  end

let shared_store_run ?(replay = 1) t ~n =
  if n > 0 then begin
    let c = counters_of t in
    c.shared_store_requests <- c.shared_store_requests + 1;
    let tx = replay * max 1 ((n + t.dev.banks - 1) / t.dev.banks) in
    c.shared_store_transactions <- c.shared_store_transactions + tx;
    record_shared t ~write:true ~transactions:tx
  end

let bank_tx_lanes dev addrs =
  let banks = dev.Device.banks in
  let cnt = Array.make banks 0 in
  let m = ref 0 in
  Array.iter
    (fun w ->
      let b = ((w mod banks) + banks) mod banks in
      let c = cnt.(b) + 1 in
      cnt.(b) <- c;
      if c > !m then m := c)
    addrs;
  !m

let shared_load_lanes ?(replay = 1) t addrs =
  if Array.length addrs > 0 then begin
    let c = counters_of t in
    c.shared_load_requests <- c.shared_load_requests + 1;
    let tx = replay * max 1 (bank_tx_lanes t.dev addrs) in
    c.shared_load_transactions <- c.shared_load_transactions + tx;
    record_shared t ~write:false ~transactions:tx
  end

let shared_store_lanes ?(replay = 1) t addrs =
  if Array.length addrs > 0 then begin
    let c = counters_of t in
    c.shared_store_requests <- c.shared_store_requests + 1;
    let tx = replay * max 1 (bank_tx_lanes t.dev addrs) in
    c.shared_store_transactions <- c.shared_store_transactions + tx;
    record_shared t ~write:true ~transactions:tx
  end

let flops_warp t ~active ~per_lane =
  if active > 0 then begin
    let c = counters_of t in
    c.flops <- c.flops + (active * per_lane);
    match Domain.DLS.get record_key with
    | Some r when r.rowner == t && r.rvalid ->
        Tileclass.push r.rstream (Flops { active; per_lane })
    | _ -> ()
  end

let sync t =
  if Sanitize.enabled () then Sanitize.barrier ();
  let c = counters_of t in
  c.syncs <- c.syncs + 1;
  match Domain.DLS.get record_key with
  | Some r when r.rowner == t && r.rvalid -> Tileclass.push r.rstream Sync
  | _ -> ()

(* Replay a recorded stream for another block of the same tile class:
   memory events run through the same (shadow-aware) machinery as live
   execution, with each global address translated by its region's byte
   delta; line ranges, coalescing and L1/L2 behaviour are recomputed
   from the translated addresses, so the accounting is exact at any
   alignment. [Compute] events are handed raw to [compute], which owns
   the translation (it already knows the deltas) and the tape
   evaluation. *)
let replay_stream t (s : Tileclass.stream) ~(deltas : int array) ~compute =
  Tileclass.iter s ~f:(fun ev ->
      match ev with
      | Tileclass.Gload_run { region; addr; n } ->
          global_load_run t ~addr:(addr + deltas.(region)) ~n
      | Gstore_run { region; addr; n; serial } ->
          global_store_run ~serial t ~addr:(addr + deltas.(region)) ~n
      | Gload_lanes { region; addrs } -> gload_lanes_off t addrs deltas.(region)
      | Gstore_lanes { region; addrs; serial } ->
          gstore_lanes_off ~serial t addrs deltas.(region)
      | Shared_load { transactions } ->
          let c = counters_of t in
          c.shared_load_requests <- c.shared_load_requests + 1;
          c.shared_load_transactions <- c.shared_load_transactions + transactions
      | Shared_store { transactions } ->
          let c = counters_of t in
          c.shared_store_requests <- c.shared_store_requests + 1;
          c.shared_store_transactions <- c.shared_store_transactions + transactions
      | Flops { active; per_lane } -> flops_warp t ~active ~per_lane
      | Sync -> sync t
      | Compute { stmt; tstep; wregion; waddr; sregions; srcs; n } ->
          compute ~stmt ~tstep ~wregion ~waddr ~sregions ~srcs ~n);
  Atomic.incr t.blocks_memoized;
  if Obs.enabled () then begin
    Obs.incr "sim.blocks_memoized";
    Obs.incr ~by:(Tileclass.mem_events s) "sim.addr_streams_replayed"
  end

let occupancy (dev : Device.t) ~blocks =
  if blocks <= 0 then 1.0
  else Float.min 1.0 (float_of_int blocks /. float_of_int dev.sms)

(* The roofline resources a launch can be limited by, with the time each
   one alone would take. The overall launch time is the max over these,
   plus serialized copy-out, barrier cost and fixed launch overhead. *)
let roofline_components (dev : Device.t) ~blocks (d : Counters.t) =
  let concurrency = occupancy dev ~blocks in
  let line = float_of_int dev.line_bytes in
  let t_compute =
    float_of_int d.flops
    /. (Device.peak_gflops dev *. 1e9 *. dev.issue_efficiency *. concurrency)
  in
  let t_dram =
    float_of_int (d.dram_read_transactions + d.dram_write_transactions)
    *. line
    /. (dev.dram_bw_gbs *. 1e9 *. dev.dram_efficiency)
  in
  let t_l2 =
    float_of_int (d.l2_read_transactions + d.l2_write_transactions)
    *. line /. (dev.l2_bw_gbs *. 1e9)
  in
  let sm_hz = float_of_int dev.sms *. dev.clock_ghz *. 1e9 *. concurrency in
  let t_shared =
    float_of_int (d.shared_load_transactions + d.shared_store_transactions) /. sm_hz
  in
  (* LSU throughput: warp-level global requests cost several cycles even
     on L1 hits (Fermi MSHR/issue limits) *)
  let t_lsu =
    (float_of_int d.gld_requests +. (float_of_int d.gst_inst /. 32.0))
    *. dev.gmem_request_cycles /. sm_hz
  in
  [
    ("compute", t_compute);
    ("dram", t_dram);
    ("l2", t_l2);
    ("shared", t_shared);
    ("lsu", t_lsu);
  ]

let bottleneck_of (dev : Device.t) ~blocks (d : Counters.t) =
  List.fold_left
    (fun (bn, bt) (n, t) -> if t > bt then (n, t) else (bn, bt))
    ("compute", Float.neg_infinity)
    (roofline_components dev ~blocks d)
  |> fst

let launch_time (dev : Device.t) ~blocks (d : Counters.t) =
  let sm_hz =
    float_of_int dev.sms *. dev.clock_ghz *. 1e9 *. occupancy dev ~blocks
  in
  let line = float_of_int dev.line_bytes in
  let t_sync = float_of_int d.syncs *. dev.sync_cycles /. sm_hz in
  (* a dedicated copy-out phase does not overlap computation *)
  let t_serial =
    float_of_int d.serial_store_transactions *. line /. (dev.l2_bw_gbs *. 1e9)
  in
  List.fold_left
    (fun acc (_, t) -> Float.max acc t)
    0.0
    (roofline_components dev ~blocks d)
  +. t_serial +. t_sync +. dev.launch_overhead_s

(* Deterministic scrambled block order: visit i -> (i*stride + 1) mod n for
   a stride coprime with n. *)
let scrambled n =
  let rec coprime s = if Hextile_util.Intutil.gcd s n = 1 then s else coprime (s + 1) in
  let stride = if n <= 2 then 1 else coprime (max 1 ((n * 5 / 8) + 1)) in
  Array.init n (fun i -> ((i * stride) + 1) mod n)

let block_order ~blocks = scrambled blocks

(* Replay one slice of an encoded L2 trace through the real shared L2,
   charging the resulting DRAM traffic exactly as the online sequential
   path does. *)
let replay_l2 t buf off len =
  let c = t.total in
  for i = off to off + len - 1 do
    let v = buf.(i) in
    let addr = v lsr 1 * t.dev.line_bytes in
    if v land 1 = 1 then begin
      let o = L2.access_code t.l2 ~addr ~write:true in
      if o land L2.writeback_bit <> 0 then
        c.dram_write_transactions <- c.dram_write_transactions + 1
    end
    else begin
      let o = L2.access_code t.l2 ~addr ~write:false in
      if o land L2.hit_bit = 0 then
        c.dram_read_transactions <- c.dram_read_transactions + 1;
      if o land L2.writeback_bit <> 0 then
        c.dram_write_transactions <- c.dram_write_transactions + 1
    end
  done

(* Per-domain persistent encode state. Worker domains outlive launches,
   so each domain keeps one trace buffer and one L1 replica for its whole
   life; a launch serial stamps the buffer so the first chunk of a new
   launch rewinds it (len <- 0) without freeing the storage. After
   warm-up no steady-state per-block or per-event allocation remains on
   the encode path — blocks record their slice of the domain buffer as a
   (buffer, offset, length) triple into arrays preallocated per launch. *)
type dstate = { dt : tbuf; dl1 : L2.t option ref; mutable stamp : int }

let launch_serials = Atomic.make 0

let dstate_key : dstate Domain.DLS.key =
  Domain.DLS.new_key (fun () ->
      { dt = tbuf_create (); dl1 = ref None; stamp = -1 })

let domain_l1 t (d : dstate) =
  match !(d.dl1) with
  | Some l1 -> l1
  | None ->
      let l1 =
        L2.create
          ~bytes:(max t.dev.line_bytes t.dev.l1_bytes)
          ~assoc:4 ~line_bytes:t.dev.line_bytes
      in
      d.dl1 := Some l1;
      l1

let empty_tbuf = { buf = [||]; len = 0 }

let run_blocks_parallel t pool ~name ~order ?wave_of ~f () =
  let nblocks = Array.length order in
  let serial = 1 + Atomic.fetch_and_add launch_serials 1 in
  let sanitize = Sanitize.enabled () in
  (* each canonical position k records which domain buffer holds its
     trace and where — pointers and ints only, no per-block boxing *)
  let traces_buf = Array.make nblocks empty_tbuf in
  let tpos_off = Array.make nblocks 0 in
  let tpos_len = Array.make nblocks 0 in
  let reports = Array.make nblocks None in
  (* Waves partition the canonical positions while preserving canonical
     order inside each wave; the Par.run join between waves is the
     publication barrier that lets wave-0 blocks produce shared state
     (e.g. representative tile-class recordings) that wave-1 blocks
     consume without any spinning or racing. *)
  let waves =
    match wave_of with
    | None -> [| Array.init nblocks (fun k -> k) |]
    | Some wf ->
        let wid = Array.map wf order in
        let nw = 1 + Array.fold_left max 0 wid in
        let counts = Array.make nw 0 in
        Array.iter (fun w -> counts.(w) <- counts.(w) + 1) wid;
        let arrs = Array.map (fun c -> Array.make c 0) counts in
        let fill = Array.make nw 0 in
        for k = 0 to nblocks - 1 do
          let w = wid.(k) in
          arrs.(w).(fill.(w)) <- k;
          fill.(w) <- fill.(w) + 1
        done;
        arrs
  in
  let all_chunk_counters = ref [] in
  Array.iter
    (fun wave ->
      let wn = Array.length wave in
      if wn > 0 then begin
        let nchunks = min (Par.jobs pool) wn in
        let chunk_counters = Array.init nchunks (fun _ -> Counters.create ()) in
        all_chunk_counters := chunk_counters :: !all_chunk_counters;
        Par.run pool
          (Array.init nchunks (fun ci () ->
               (* contiguous chunk of this wave's canonical positions:
                  merging per-chunk state in chunk order reproduces the
                  sequential order *)
               let lo = ci * wn / nchunks and hi = (ci + 1) * wn / nchunks in
               let d = Domain.DLS.get dstate_key in
               if d.stamp <> serial then begin
                 d.stamp <- serial;
                 d.dt.len <- 0
               end;
               let sh =
                 {
                   owner = t;
                   sc = chunk_counters.(ci);
                   sl1 = domain_l1 t d;
                   strace = d.dt;
                   sserial = 1 + Atomic.fetch_and_add shadow_serials 1;
                 }
               in
               Domain.DLS.set shadow_key (Some sh);
               Fun.protect
                 ~finally:(fun () -> Domain.DLS.set shadow_key None)
                 (fun () ->
                   for j = lo to hi - 1 do
                     let k = wave.(j) in
                     let b = order.(k) in
                     L2.reset sh.sl1;
                     let off = d.dt.len in
                     traces_buf.(k) <- d.dt;
                     tpos_off.(k) <- off;
                     Tl.begin_ ~arg:(float_of_int b) "sim.block";
                     if sanitize then
                       reports.(k) <-
                         Some (Sanitize.capture_block ~name ~block:b (fun () -> f b))
                     else f b;
                     tpos_len.(k) <- d.dt.len - off;
                     (* arg = L2-trace events encoded for this block; the
                        encode cost is inline with compute, so the
                        attribution multiplies this by the calibrated
                        per-event push cost *)
                     Tl.instant ~arg:(float_of_int tpos_len.(k)) "sim.encode";
                     Tl.end_ ()
                   done)))
      end)
    waves;
  (* the determinism tax, made visible: sequential counter merge, then
     sequential replay of the encoded traces through the shared L2 in
     canonical (scrambled) position order — wave-independent *)
  Tl.begin_ ~arg:(float_of_int nblocks) "sim.absorb";
  List.iter
    (fun ccs -> Array.iter (fun c -> Counters.add t.total c) ccs)
    (List.rev !all_chunk_counters);
  Tl.end_ ();
  Tl.begin_ ~arg:(float_of_int nblocks) "sim.l2_replay";
  for k = 0 to nblocks - 1 do
    replay_l2 t traces_buf.(k).buf tpos_off.(k) tpos_len.(k)
  done;
  if Tl.enabled () then begin
    let _valid, dirty = L2.stats t.l2 in
    Tl.instant ~arg:(float_of_int dirty) "sim.l2_dirty_lines"
  end;
  Tl.end_ ();
  if sanitize then
    Tl.slice "sim.absorb" (fun () ->
        Sanitize.absorb_block_reports
          (Array.map (function Some r -> r | None -> assert false) reports))

let launch ?pool ?post ?wave_of t ~name ~blocks ~threads ~shared_bytes ~f =
  if threads > t.dev.max_threads_per_block then
    invalid_arg
      (Fmt.str "Sim.launch %s: %d threads exceed device limit %d" name threads
         t.dev.max_threads_per_block);
  if shared_bytes > t.dev.shared_mem_bytes then
    invalid_arg
      (Fmt.str "Sim.launch %s: %d B shared memory exceed device limit %d" name
         shared_bytes t.dev.shared_mem_bytes);
  if blocks > 0 then begin
    Tl.begin_ ~arg:(float_of_int blocks) "sim.launch";
    Fun.protect ~finally:Tl.end_ @@ fun () ->
    let before = Counters.copy t.total in
    (* new launch, new generation: tile-class memo tables keyed by
       {!generation} never leak streams across launches *)
    Atomic.incr t.epoch;
    t.blocks_in_flight <- blocks;
    if Sanitize.enabled () then Sanitize.launch_begin ~name;
    let par =
      match pool with
      | Some p when Par.jobs p > 1 && blocks > 1 && not (Par.in_region ()) ->
          Some p
      | _ -> None
    in
    (match par with
    | Some p -> run_blocks_parallel t p ~name ~order:(scrambled blocks) ?wave_of ~f ()
    | None ->
        Array.iter
          (fun b ->
            (* fresh per-block L1 (Fermi L1 is per SM and not coherent) *)
            L2.reset t.l1;
            if Sanitize.enabled () then Sanitize.block_begin b;
            f b;
            if Sanitize.enabled () then Sanitize.block_end ())
          (scrambled blocks));
    if Sanitize.enabled () then Sanitize.launch_end ();
    t.blocks_in_flight <- 0;
    (* launch epilogue: runs on the main domain (no shadow, counters go
       straight to [t.total], memory events reach the real shared L2)
       after every block has retired but before the launch delta is
       captured — so analytically derived counters feed the same
       roofline time model as instanced ones *)
    (match post with None -> () | Some g -> g ());
    t.total.kernels <- t.total.kernels + 1;
    let delta = Counters.diff t.total before in
    delta.kernels <- 1;
    let time_s = launch_time t.dev ~blocks delta in
    let bottleneck = bottleneck_of t.dev ~blocks delta in
    t.launches <-
      { lname = name; blocks; threads; shared_bytes; delta; time_s; bottleneck }
      :: t.launches;
    if Obs.enabled () then
      (* nvprof-style timeline entry: one event per kernel launch with
         the full counter delta, occupancy and bottleneck class *)
      Obs.event "kernel_launch"
        (List.concat
           [
             [
               ("kernel", Obs.Str name);
               ("blocks", Obs.Int blocks);
               ("threads", Obs.Int threads);
               ("shared_bytes", Obs.Int shared_bytes);
               ("time_s", Obs.Float time_s);
               ("occupancy", Obs.Float (occupancy t.dev ~blocks));
               ("bottleneck", Obs.Str bottleneck);
               ("gld_efficiency", Obs.Float (Counters.gld_efficiency delta));
               ( "shared_loads_per_request",
                 Obs.Float (Counters.shared_loads_per_request delta) );
             ];
             List.map (fun (k, v) -> (k, Obs.Int v)) (Counters.to_assoc delta);
           ])
  end

(* Calibrate the per-event cost of L2-trace encoding. The encode
   ([tbuf_push] in [load_line]/[store_line]) happens inline with block
   compute, so the timeline cannot slice it out per event; instead the
   parattr attribution multiplies the recorded event count (the
   "sim.encode" instant args) by this measured steady-state push cost,
   amortised growth included. *)
let encode_cost_per_event_s () =
  let b = tbuf_create () in
  let warm = 1 lsl 14 and n = 1 lsl 19 in
  for i = 0 to warm - 1 do
    tbuf_push b (i lsl 1)
  done;
  b.len <- 0;
  let t0 = Unix.gettimeofday () in
  for i = 0 to n - 1 do
    tbuf_push b (i lsl 1)
  done;
  let t1 = Unix.gettimeofday () in
  ignore (Sys.opaque_identity b.buf.(n - 1));
  (t1 -. t0) /. float_of_int n

let kernel_time t = List.fold_left (fun acc l -> acc +. l.time_s) 0.0 t.launches

let transfer_time t ~bytes =
  2.0 *. float_of_int bytes /. (t.dev.pcie_bw_gbs *. 1e9)

let pp_launches ppf t =
  List.iter
    (fun l ->
      Fmt.pf ppf "%s: %d blocks x %d threads, %.2e s (%s-bound)@," l.lname
        l.blocks l.threads l.time_s l.bottleneck)
    (List.rev t.launches)
