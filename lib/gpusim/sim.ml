module Obs = Hextile_obs.Obs

type t = {
  dev : Device.t;
  total : Counters.t;
  l2 : L2.t;
  l1 : L2.t;  (** per-SM L1, reset at block boundaries *)
  addr : Addrmap.t;
  mutable launches : launch list;
  mutable blocks_in_flight : int;
}

and launch = {
  lname : string;
  blocks : int;
  threads : int;
  shared_bytes : int;
  delta : Counters.t;
  time_s : float;
  bottleneck : string;
}

let create (dev : Device.t) =
  {
    dev;
    total = Counters.create ();
    l2 = L2.create ~bytes:dev.l2_bytes ~assoc:dev.l2_assoc ~line_bytes:dev.line_bytes;
    l1 =
      L2.create
        ~bytes:(max dev.line_bytes dev.l1_bytes)
        ~assoc:4 ~line_bytes:dev.line_bytes;
    addr = Addrmap.create ();
    launches = [];
    blocks_in_flight = 0;
  }

let active addrs =
  Array.fold_left (fun n a -> if a = None then n else n + 1) 0 addrs

(* Distinct cache lines among active lanes. *)
let lines_of dev addrs =
  let seen = ref [] in
  Array.iter
    (function
      | None -> ()
      | Some a ->
          let l = a / dev.Device.line_bytes in
          if not (List.mem l !seen) then seen := l :: !seen)
    addrs;
  !seen

let global_load_warp t addrs =
  let n = active addrs in
  if n > 0 then begin
    let c = t.total in
    c.gld_inst <- c.gld_inst + n;
    c.gld_requests <- c.gld_requests + 1;
    c.gld_useful_bytes <- c.gld_useful_bytes + (4 * n);
    List.iter
      (fun line ->
        c.gld_transactions <- c.gld_transactions + 1;
        let addr = line * t.dev.line_bytes in
        let l1 = t.dev.l1_bytes > 0 && (L2.access t.l1 ~addr ~write:false).hit in
        if not l1 then begin
          c.l2_read_transactions <- c.l2_read_transactions + 1;
          let o = L2.access t.l2 ~addr ~write:false in
          if not o.hit then c.dram_read_transactions <- c.dram_read_transactions + 1;
          if o.writeback then
            c.dram_write_transactions <- c.dram_write_transactions + 1
        end)
      (lines_of t.dev addrs)
  end

let global_store_warp ?(serial = false) t addrs =
  let n = active addrs in
  if n > 0 then begin
    let c = t.total in
    c.gst_inst <- c.gst_inst + n;
    List.iter
      (fun line ->
        c.gst_transactions <- c.gst_transactions + 1;
        if serial then c.serial_store_transactions <- c.serial_store_transactions + 1;
        c.l2_write_transactions <- c.l2_write_transactions + 1;
        let o = L2.access t.l2 ~addr:(line * t.dev.line_bytes) ~write:true in
        if o.writeback then c.dram_write_transactions <- c.dram_write_transactions + 1)
      (lines_of t.dev addrs)
  end

(* Bank conflicts: transactions = max over banks of the number of distinct
   words requested in that bank (same word broadcast counts once). *)
let bank_transactions dev addrs =
  let banks = dev.Device.banks in
  let per_bank = Array.make banks [] in
  Array.iter
    (function
      | None -> ()
      | Some w ->
          let b = ((w mod banks) + banks) mod banks in
          if not (List.mem w per_bank.(b)) then per_bank.(b) <- w :: per_bank.(b))
    addrs;
  Array.fold_left (fun m l -> max m (List.length l)) 0 per_bank

let shared_load_warp ?(replay = 1) ?tids t addrs =
  let n = active addrs in
  if n > 0 then begin
    if Sanitize.enabled () then Sanitize.access ~write:false ?tids addrs;
    let c = t.total in
    c.shared_load_requests <- c.shared_load_requests + 1;
    c.shared_load_transactions <-
      c.shared_load_transactions + (replay * max 1 (bank_transactions t.dev addrs))
  end

let shared_store_warp ?(replay = 1) ?tids t addrs =
  let n = active addrs in
  if n > 0 then begin
    if Sanitize.enabled () then Sanitize.access ~write:true ?tids addrs;
    let c = t.total in
    c.shared_store_requests <- c.shared_store_requests + 1;
    c.shared_store_transactions <-
      c.shared_store_transactions + (replay * max 1 (bank_transactions t.dev addrs))
  end

let flops_warp t ~active ~per_lane =
  if active > 0 then t.total.flops <- t.total.flops + (active * per_lane)

let sync t =
  if Sanitize.enabled () then Sanitize.barrier ();
  t.total.syncs <- t.total.syncs + 1

let occupancy (dev : Device.t) ~blocks =
  if blocks <= 0 then 1.0
  else Float.min 1.0 (float_of_int blocks /. float_of_int dev.sms)

(* The roofline resources a launch can be limited by, with the time each
   one alone would take. The overall launch time is the max over these,
   plus serialized copy-out, barrier cost and fixed launch overhead. *)
let roofline_components (dev : Device.t) ~blocks (d : Counters.t) =
  let concurrency = occupancy dev ~blocks in
  let line = float_of_int dev.line_bytes in
  let t_compute =
    float_of_int d.flops
    /. (Device.peak_gflops dev *. 1e9 *. dev.issue_efficiency *. concurrency)
  in
  let t_dram =
    float_of_int (d.dram_read_transactions + d.dram_write_transactions)
    *. line
    /. (dev.dram_bw_gbs *. 1e9 *. dev.dram_efficiency)
  in
  let t_l2 =
    float_of_int (d.l2_read_transactions + d.l2_write_transactions)
    *. line /. (dev.l2_bw_gbs *. 1e9)
  in
  let sm_hz = float_of_int dev.sms *. dev.clock_ghz *. 1e9 *. concurrency in
  let t_shared =
    float_of_int (d.shared_load_transactions + d.shared_store_transactions) /. sm_hz
  in
  (* LSU throughput: warp-level global requests cost several cycles even
     on L1 hits (Fermi MSHR/issue limits) *)
  let t_lsu =
    (float_of_int d.gld_requests +. (float_of_int d.gst_inst /. 32.0))
    *. dev.gmem_request_cycles /. sm_hz
  in
  [
    ("compute", t_compute);
    ("dram", t_dram);
    ("l2", t_l2);
    ("shared", t_shared);
    ("lsu", t_lsu);
  ]

let bottleneck_of (dev : Device.t) ~blocks (d : Counters.t) =
  List.fold_left
    (fun (bn, bt) (n, t) -> if t > bt then (n, t) else (bn, bt))
    ("compute", Float.neg_infinity)
    (roofline_components dev ~blocks d)
  |> fst

let launch_time (dev : Device.t) ~blocks (d : Counters.t) =
  let sm_hz =
    float_of_int dev.sms *. dev.clock_ghz *. 1e9 *. occupancy dev ~blocks
  in
  let line = float_of_int dev.line_bytes in
  let t_sync = float_of_int d.syncs *. dev.sync_cycles /. sm_hz in
  (* a dedicated copy-out phase does not overlap computation *)
  let t_serial =
    float_of_int d.serial_store_transactions *. line /. (dev.l2_bw_gbs *. 1e9)
  in
  List.fold_left
    (fun acc (_, t) -> Float.max acc t)
    0.0
    (roofline_components dev ~blocks d)
  +. t_serial +. t_sync +. dev.launch_overhead_s

(* Deterministic scrambled block order: visit i -> (i*stride + 1) mod n for
   a stride coprime with n. *)
let scrambled n =
  let rec coprime s = if Hextile_util.Intutil.gcd s n = 1 then s else coprime (s + 1) in
  let stride = if n <= 2 then 1 else coprime (max 1 ((n * 5 / 8) + 1)) in
  Array.init n (fun i -> ((i * stride) + 1) mod n)

let launch t ~name ~blocks ~threads ~shared_bytes ~f =
  if threads > t.dev.max_threads_per_block then
    invalid_arg
      (Fmt.str "Sim.launch %s: %d threads exceed device limit %d" name threads
         t.dev.max_threads_per_block);
  if shared_bytes > t.dev.shared_mem_bytes then
    invalid_arg
      (Fmt.str "Sim.launch %s: %d B shared memory exceed device limit %d" name
         shared_bytes t.dev.shared_mem_bytes);
  if blocks > 0 then begin
    let before = Counters.copy t.total in
    t.blocks_in_flight <- blocks;
    if Sanitize.enabled () then Sanitize.launch_begin ~name;
    Array.iter
      (fun b ->
        (* fresh per-block L1 (Fermi L1 is per SM and not coherent) *)
        L2.reset t.l1;
        if Sanitize.enabled () then Sanitize.block_begin b;
        f b;
        if Sanitize.enabled () then Sanitize.block_end ())
      (scrambled blocks);
    if Sanitize.enabled () then Sanitize.launch_end ();
    t.blocks_in_flight <- 0;
    t.total.kernels <- t.total.kernels + 1;
    let delta = Counters.diff t.total before in
    delta.kernels <- 1;
    let time_s = launch_time t.dev ~blocks delta in
    let bottleneck = bottleneck_of t.dev ~blocks delta in
    t.launches <-
      { lname = name; blocks; threads; shared_bytes; delta; time_s; bottleneck }
      :: t.launches;
    if Obs.enabled () then
      (* nvprof-style timeline entry: one event per kernel launch with
         the full counter delta, occupancy and bottleneck class *)
      Obs.event "kernel_launch"
        (List.concat
           [
             [
               ("kernel", Obs.Str name);
               ("blocks", Obs.Int blocks);
               ("threads", Obs.Int threads);
               ("shared_bytes", Obs.Int shared_bytes);
               ("time_s", Obs.Float time_s);
               ("occupancy", Obs.Float (occupancy t.dev ~blocks));
               ("bottleneck", Obs.Str bottleneck);
               ("gld_efficiency", Obs.Float (Counters.gld_efficiency delta));
               ( "shared_loads_per_request",
                 Obs.Float (Counters.shared_loads_per_request delta) );
             ];
             List.map (fun (k, v) -> (k, Obs.Int v)) (Counters.to_assoc delta);
           ])
  end

let kernel_time t = List.fold_left (fun acc l -> acc +. l.time_s) 0.0 t.launches

let transfer_time t ~bytes =
  2.0 *. float_of_int bytes /. (t.dev.pcie_bw_gbs *. 1e9)

let pp_launches ppf t =
  List.iter
    (fun l ->
      Fmt.pf ppf "%s: %d blocks x %d threads, %.2e s (%s-bound)@," l.lname
        l.blocks l.threads l.time_s l.bottleneck)
    (List.rev t.launches)
