(** Counter scaling and the L2/DRAM model for the analytic (hierarchical)
    simulation mode.

    The hybrid executor partitions each launch's blocks into tile
    classes (equal [Hybrid_exec.class_key] ⇒ identical event streams up
    to a per-region byte translation of [4·Δs00·stride0]). The analytic
    mode instance-executes one representative per interior class plus
    every boundary-clipped block, and derives the remaining blocks:

    - {b Per-block counters} scale bit-exactly by class population
      ({!scale_into}) whenever every array region shares one s0 stride
      and the translation is a whole number of cache lines
      ([4·stride0 mod line_bytes = 0]): coalescing runs shift by whole
      lines (line counts invariant), the per-block L1's set mapping is
      rotated bijectively (hit/miss sequence invariant), and shared
      memory events carry base-independent conflict counts. The executor
      checks this condition and falls back to the exact per-event
      {!Sim.replay_stream} path when it fails.
    - {b DRAM traffic} depends on the shared cross-block L2 state, which
      a skipped block does not evolve. It is modelled by replaying each
      scaled block's {e compressed trace} — the first-touch-ordered set
      of distinct lines it loads/stores ({!lines_of_stream}), translated
      by the block's line delta — through the real shared L2
      ({!replay_lines}). This keeps compulsory misses, inter-block halo
      reuse and eviction pressure, and drops only the repeated accesses
      that the block's own cache residency would absorb; the residual
      error against the exact simulator is bounded by
      {!dram_error_bound} (asserted, not just logged, by
      [test/test_analytic.ml] and the analytic bench). *)

val dram_error_bound : float
(** Documented relative error bound on [dram_read_transactions] and
    [dram_write_transactions] in analytic mode, measured as
    [|analytic - exact| / max 1 exact] over a whole run. All other
    counters are bit-exact. *)

val scale_into : Counters.t -> delta:Counters.t -> times:int -> unit
(** Add [times × delta] to every per-block-exact counter — all fields
    except [dram_read_transactions], [dram_write_transactions] (modelled
    separately) and [kernels] (owned by {!Sim.launch}). *)

val lines_of_stream : Tileclass.stream -> line_bytes:int -> int array
(** Distinct global lines of a recorded stream in first-touch order,
    encoded [(line lsl 1) lor write] (one entry per line per direction) —
    the scaled blocks' compressed L2 trace. *)

val replay_lines : Sim.t -> int array -> dline:int -> unit
(** Replay a compressed trace shifted by [dline] lines through the
    shared L2, charging DRAM counters like the exact trace replay. Call
    only from a launch epilogue on the main domain. *)

val compress_lines : int array -> int array
(** Sorted line-run form of a {!lines_of_stream} trace: reads then
    writes, each sorted by line and coalesced into maximal consecutive
    runs, flattened as [(enc, n)] pairs. Computed once per class; the
    run order (instead of first-touch order) perturbs only the
    order-of-touch of distinct lines within one block's trace, which the
    {!dram_error_bound} contract already covers. *)

val replay_line_runs : Sim.t -> int array -> dline:int -> unit
(** Replay a {!compress_lines} trace shifted by [dline] lines through
    the shared L2 with one {!L2.access_run} probe per run — per-line
    cache and DRAM-counter semantics identical to {!replay_lines}, in
    run order. Counts the probed lines toward
    [sim.analytic_replay_lines]. Main-domain only (launch epilogue). *)
