type t = {
  sets : int;
  assoc : int;
  line_bytes : int;
  tags : int array array;  (** [sets][assoc], -1 = invalid; index 0 = MRU *)
  dirty : bool array array;
}

type outcome = { hit : bool; writeback : bool }

let create ~bytes ~assoc ~line_bytes =
  let lines = max 1 (bytes / line_bytes) in
  let sets = max 1 (lines / assoc) in
  {
    sets;
    assoc;
    line_bytes;
    tags = Array.make_matrix sets assoc (-1);
    dirty = Array.make_matrix sets assoc false;
  }

(* The simulator calls this once per memory transaction, so the hot form
   returns the outcome as a bit pair ([hit_bit] lor [writeback_bit])
   instead of a freshly allocated record — the encode path's
   allocation-free guarantee depends on it. *)
let hit_bit = 1
let writeback_bit = 2

(* top-level (closure-free) way lookup: a local [let rec] would capture
   [set]/[tag] and allocate a closure on every probe *)
let rec find_way set tag assoc i =
  if i >= assoc then -1
  else if Array.unsafe_get set i = tag then i
  else find_way set tag assoc (i + 1)

let access_code t ~addr ~write =
  let line = addr / t.line_bytes in
  let si = line mod t.sets in
  let set = t.tags.(si) and dirty = t.dirty.(si) in
  let tag = line / t.sets in
  let i = find_way set tag t.assoc 0 in
  if i >= 0 then begin
    let d = dirty.(i) in
    for j = i downto 1 do
      set.(j) <- set.(j - 1);
      dirty.(j) <- dirty.(j - 1)
    done;
    set.(0) <- tag;
    dirty.(0) <- d || write;
    hit_bit
  end
  else begin
    let victim_dirty = set.(t.assoc - 1) >= 0 && dirty.(t.assoc - 1) in
    for j = t.assoc - 1 downto 1 do
      set.(j) <- set.(j - 1);
      dirty.(j) <- dirty.(j - 1)
    done;
    set.(0) <- tag;
    dirty.(0) <- write;
    if victim_dirty then writeback_bit else 0
  end

let access t ~addr ~write =
  let c = access_code t ~addr ~write in
  { hit = c land hit_bit <> 0; writeback = c land writeback_bit <> 0 }

(* Run-length probe for the batched compressed-trace replay: touch [n]
   consecutive lines starting at [line0] and return the aggregate
   [(hits lsl run_shift) lor writebacks]. Per-line semantics are exactly
   [access_code] — consecutive lines land in consecutive sets, so the
   loop is a tight walk with one tag-divide per line and no per-line
   record or closure. *)
let run_shift = 24

let access_run t ~line0 ~n ~write =
  if n < 0 || n >= 1 lsl run_shift then
    invalid_arg "L2.access_run: n out of range";
  let hits = ref 0 and wbs = ref 0 in
  for l = line0 to line0 + n - 1 do
    let si = l mod t.sets in
    let set = t.tags.(si) and dirty = t.dirty.(si) in
    let tag = l / t.sets in
    let i = find_way set tag t.assoc 0 in
    if i >= 0 then begin
      let d = dirty.(i) in
      for j = i downto 1 do
        set.(j) <- set.(j - 1);
        dirty.(j) <- dirty.(j - 1)
      done;
      set.(0) <- tag;
      dirty.(0) <- d || write;
      incr hits
    end
    else begin
      let victim_dirty = set.(t.assoc - 1) >= 0 && dirty.(t.assoc - 1) in
      for j = t.assoc - 1 downto 1 do
        set.(j) <- set.(j - 1);
        dirty.(j) <- dirty.(j - 1)
      done;
      set.(0) <- tag;
      dirty.(0) <- write;
      if victim_dirty then incr wbs
    end
  done;
  (!hits lsl run_shift) lor !wbs

(* plain nested loops: the simulator resets a (small) per-block L1
   through here once per block, so closure-per-set iteration would put
   hundreds of words of garbage on every block boundary *)
let flush t =
  let n = ref 0 in
  for si = 0 to t.sets - 1 do
    let set = t.tags.(si) and dirty = t.dirty.(si) in
    for i = 0 to t.assoc - 1 do
      if set.(i) >= 0 && dirty.(i) then incr n;
      set.(i) <- -1;
      dirty.(i) <- false
    done
  done;
  !n

let reset t = ignore (flush t)
let line_bytes t = t.line_bytes

let stats t =
  let valid = ref 0 and dirty = ref 0 in
  Array.iteri
    (fun si set ->
      Array.iteri
        (fun i tag ->
          if tag >= 0 then begin
            incr valid;
            if t.dirty.(si).(i) then incr dirty
          end)
        set)
    t.tags;
  (!valid, !dirty)
