type t = {
  sets : int;
  assoc : int;
  line_bytes : int;
  tags : int array array;  (** [sets][assoc], -1 = invalid; index 0 = MRU *)
  dirty : bool array array;
}

type outcome = { hit : bool; writeback : bool }

let create ~bytes ~assoc ~line_bytes =
  let lines = max 1 (bytes / line_bytes) in
  let sets = max 1 (lines / assoc) in
  {
    sets;
    assoc;
    line_bytes;
    tags = Array.make_matrix sets assoc (-1);
    dirty = Array.make_matrix sets assoc false;
  }

let access t ~addr ~write =
  let line = addr / t.line_bytes in
  let si = line mod t.sets in
  let set = t.tags.(si) and dirty = t.dirty.(si) in
  let tag = line / t.sets in
  let rec find i =
    if i >= t.assoc then None else if set.(i) = tag then Some i else find (i + 1)
  in
  match find 0 with
  | Some i ->
      let d = dirty.(i) in
      for j = i downto 1 do
        set.(j) <- set.(j - 1);
        dirty.(j) <- dirty.(j - 1)
      done;
      set.(0) <- tag;
      dirty.(0) <- d || write;
      { hit = true; writeback = false }
  | None ->
      let victim_dirty = set.(t.assoc - 1) >= 0 && dirty.(t.assoc - 1) in
      for j = t.assoc - 1 downto 1 do
        set.(j) <- set.(j - 1);
        dirty.(j) <- dirty.(j - 1)
      done;
      set.(0) <- tag;
      dirty.(0) <- write;
      { hit = false; writeback = victim_dirty }

let flush t =
  let n = ref 0 in
  Array.iteri
    (fun si set ->
      Array.iteri
        (fun i tag ->
          if tag >= 0 && t.dirty.(si).(i) then incr n;
          set.(i) <- -1;
          t.dirty.(si).(i) <- false)
        set)
    t.tags;
  !n

let reset t = ignore (flush t)
let line_bytes t = t.line_bytes

let stats t =
  let valid = ref 0 and dirty = ref 0 in
  Array.iteri
    (fun si set ->
      Array.iteri
        (fun i tag ->
          if tag >= 0 then begin
            incr valid;
            if t.dirty.(si).(i) then incr dirty
          end)
        set)
    t.tags;
  (!valid, !dirty)
