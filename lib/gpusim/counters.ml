type t = {
  mutable gld_inst : int;
  mutable gst_inst : int;
  mutable gld_requests : int;
  mutable gld_transactions : int;
  mutable gst_transactions : int;
  mutable gld_useful_bytes : int;
  mutable l2_read_transactions : int;
  mutable l2_write_transactions : int;
  mutable dram_read_transactions : int;
  mutable dram_write_transactions : int;
  mutable shared_load_requests : int;
  mutable shared_load_transactions : int;
  mutable shared_store_requests : int;
  mutable shared_store_transactions : int;
  mutable serial_store_transactions : int;
  mutable flops : int;
  mutable syncs : int;
  mutable kernels : int;
}

let create () =
  {
    gld_inst = 0;
    gst_inst = 0;
    gld_requests = 0;
    gld_transactions = 0;
    gst_transactions = 0;
    gld_useful_bytes = 0;
    l2_read_transactions = 0;
    l2_write_transactions = 0;
    dram_read_transactions = 0;
    dram_write_transactions = 0;
    shared_load_requests = 0;
    shared_load_transactions = 0;
    shared_store_requests = 0;
    shared_store_transactions = 0;
    serial_store_transactions = 0;
    flops = 0;
    syncs = 0;
    kernels = 0;
  }

let copy t = { t with gld_inst = t.gld_inst }

let add acc x =
  acc.gld_inst <- acc.gld_inst + x.gld_inst;
  acc.gst_inst <- acc.gst_inst + x.gst_inst;
  acc.gld_requests <- acc.gld_requests + x.gld_requests;
  acc.gld_transactions <- acc.gld_transactions + x.gld_transactions;
  acc.gst_transactions <- acc.gst_transactions + x.gst_transactions;
  acc.gld_useful_bytes <- acc.gld_useful_bytes + x.gld_useful_bytes;
  acc.l2_read_transactions <- acc.l2_read_transactions + x.l2_read_transactions;
  acc.l2_write_transactions <- acc.l2_write_transactions + x.l2_write_transactions;
  acc.dram_read_transactions <- acc.dram_read_transactions + x.dram_read_transactions;
  acc.dram_write_transactions <- acc.dram_write_transactions + x.dram_write_transactions;
  acc.shared_load_requests <- acc.shared_load_requests + x.shared_load_requests;
  acc.shared_load_transactions <- acc.shared_load_transactions + x.shared_load_transactions;
  acc.shared_store_requests <- acc.shared_store_requests + x.shared_store_requests;
  acc.shared_store_transactions <- acc.shared_store_transactions + x.shared_store_transactions;
  acc.serial_store_transactions <- acc.serial_store_transactions + x.serial_store_transactions;
  acc.flops <- acc.flops + x.flops;
  acc.syncs <- acc.syncs + x.syncs;
  acc.kernels <- acc.kernels + x.kernels

let diff now before =
  {
    gld_inst = now.gld_inst - before.gld_inst;
    gst_inst = now.gst_inst - before.gst_inst;
    gld_requests = now.gld_requests - before.gld_requests;
    gld_transactions = now.gld_transactions - before.gld_transactions;
    gst_transactions = now.gst_transactions - before.gst_transactions;
    gld_useful_bytes = now.gld_useful_bytes - before.gld_useful_bytes;
    l2_read_transactions = now.l2_read_transactions - before.l2_read_transactions;
    l2_write_transactions = now.l2_write_transactions - before.l2_write_transactions;
    dram_read_transactions = now.dram_read_transactions - before.dram_read_transactions;
    dram_write_transactions = now.dram_write_transactions - before.dram_write_transactions;
    shared_load_requests = now.shared_load_requests - before.shared_load_requests;
    shared_load_transactions = now.shared_load_transactions - before.shared_load_transactions;
    shared_store_requests = now.shared_store_requests - before.shared_store_requests;
    shared_store_transactions = now.shared_store_transactions - before.shared_store_transactions;
    serial_store_transactions = now.serial_store_transactions - before.serial_store_transactions;
    flops = now.flops - before.flops;
    syncs = now.syncs - before.syncs;
    kernels = now.kernels - before.kernels;
  }

(* Ratio counters must stay defined when the denominator is zero so that
   NaN/inf never leak into reports: no transactions means no transferred
   bytes (efficiency 0), no requests means no replays (factor 1). *)
let gld_efficiency t =
  if t.gld_transactions = 0 then 0.0
  else
    float_of_int t.gld_useful_bytes /. float_of_int (t.gld_transactions * 128)

let shared_loads_per_request t =
  if t.shared_load_requests = 0 then 1.0
  else float_of_int t.shared_load_transactions /. float_of_int t.shared_load_requests

let to_assoc t =
  [
    ("gld_inst", t.gld_inst);
    ("gst_inst", t.gst_inst);
    ("gld_requests", t.gld_requests);
    ("gld_transactions", t.gld_transactions);
    ("gst_transactions", t.gst_transactions);
    ("gld_useful_bytes", t.gld_useful_bytes);
    ("l2_read_transactions", t.l2_read_transactions);
    ("l2_write_transactions", t.l2_write_transactions);
    ("dram_read_transactions", t.dram_read_transactions);
    ("dram_write_transactions", t.dram_write_transactions);
    ("shared_load_requests", t.shared_load_requests);
    ("shared_load_transactions", t.shared_load_transactions);
    ("shared_store_requests", t.shared_store_requests);
    ("shared_store_transactions", t.shared_store_transactions);
    ("serial_store_transactions", t.serial_store_transactions);
    ("flops", t.flops);
    ("syncs", t.syncs);
    ("kernels", t.kernels);
  ]

let pp ppf t =
  Fmt.pf ppf
    "@[<v>gld_inst=%d gst_inst=%d gld_trans=%d (eff %.0f%%)@,\
     l2_read=%d dram_read=%d dram_write=%d@,\
     shared: loads %d/%d req stores %d/%d req (%.2f loads/req)@,\
     flops=%d syncs=%d kernels=%d@]"
    t.gld_inst t.gst_inst t.gld_transactions
    (100.0 *. gld_efficiency t)
    t.l2_read_transactions t.dram_read_transactions t.dram_write_transactions
    t.shared_load_transactions t.shared_load_requests t.shared_store_transactions
    t.shared_store_requests
    (shared_loads_per_request t)
    t.flops t.syncs t.kernels
