(* Flat register-machine tapes: the warp-batched statement evaluator.

   A tape is the closure-free form of one statement's right-hand side.
   Registers are structure-of-arrays 32-lane float buffers packed into a
   single scratch array (register r occupies words [r*lanes, r*lanes+n)).
   Registers 0..nsrcs-1 are the statement's distinct reads, blitted from
   the grids once per row chunk; the remaining registers hold
   intermediate results. One [exec] retires a whole warp's worth of
   statement instances with four tight array loops per operation and no
   allocation, where the closure interpreter paid a tree walk and a
   closure call per node per lane.

   Evaluation order per lane is exactly the closure interpreter's
   post-order walk, so results are bit-identical IEEE doubles. *)

type instr =
  | Const of { dst : int; v : float }
  | Neg of { dst : int; a : int }
  | Add of { dst : int; a : int; b : int }
  | Sub of { dst : int; a : int; b : int }
  | Mul of { dst : int; a : int; b : int }
  | Div of { dst : int; a : int; b : int }

type t = { nsrcs : int; nregs : int; result : int; instrs : instr array }

let lanes = 32

let make ~nsrcs ~nregs ~result ~instrs =
  let check_reg what r =
    if r < 0 || r >= nregs then
      invalid_arg (Fmt.str "Tape.make: %s register %d out of [0, %d)" what r nregs)
  in
  if nsrcs < 0 || nsrcs > nregs then invalid_arg "Tape.make: nsrcs out of range";
  check_reg "result" result;
  Array.iter
    (function
      | Const { dst; _ } -> check_reg "dst" dst
      | Neg { dst; a } ->
          check_reg "dst" dst;
          check_reg "src" a
      | Add { dst; a; b } | Sub { dst; a; b } | Mul { dst; a; b } | Div { dst; a; b }
        ->
          check_reg "dst" dst;
          check_reg "src" a;
          check_reg "src" b)
    instrs;
  { nsrcs; nregs; result; instrs }

let length t = Array.length t.instrs

type scratch = float array

let scratch t : scratch = Array.make (max 1 (t.nregs * lanes)) 0.0

let scratch_fits t (s : scratch) = Array.length s >= t.nregs * lanes

(* [make] bounds every register below [nregs] and the caller passes a
   scratch of at least nregs*lanes words with n <= lanes, so the unsafe
   accesses below stay inside the scratch. *)
let exec t (regs : scratch) ~(datas : float array array) ~(bases : int array)
    ~dx ~n ~(out : float array) ~out_base =
  if n < 0 || n > lanes then invalid_arg "Tape.exec: n out of [0, 32]";
  if not (scratch_fits t regs) then invalid_arg "Tape.exec: scratch too small";
  for s = 0 to t.nsrcs - 1 do
    (* Array.blit bounds-checks, backstopping the callers' row validation *)
    Array.blit datas.(s) (bases.(s) + dx) regs (s * lanes) n
  done;
  let instrs = t.instrs in
  for i = 0 to Array.length instrs - 1 do
    match Array.unsafe_get instrs i with
    | Const { dst; v } -> Array.fill regs (dst * lanes) n v
    | Neg { dst; a } ->
        let d = dst * lanes and a = a * lanes in
        for j = 0 to n - 1 do
          Array.unsafe_set regs (d + j) (-.Array.unsafe_get regs (a + j))
        done
    | Add { dst; a; b } ->
        let d = dst * lanes and a = a * lanes and b = b * lanes in
        for j = 0 to n - 1 do
          Array.unsafe_set regs (d + j)
            (Array.unsafe_get regs (a + j) +. Array.unsafe_get regs (b + j))
        done
    | Sub { dst; a; b } ->
        let d = dst * lanes and a = a * lanes and b = b * lanes in
        for j = 0 to n - 1 do
          Array.unsafe_set regs (d + j)
            (Array.unsafe_get regs (a + j) -. Array.unsafe_get regs (b + j))
        done
    | Mul { dst; a; b } ->
        let d = dst * lanes and a = a * lanes and b = b * lanes in
        for j = 0 to n - 1 do
          Array.unsafe_set regs (d + j)
            (Array.unsafe_get regs (a + j) *. Array.unsafe_get regs (b + j))
        done
    | Div { dst; a; b } ->
        let d = dst * lanes and a = a * lanes and b = b * lanes in
        for j = 0 to n - 1 do
          Array.unsafe_set regs (d + j)
            (Array.unsafe_get regs (a + j) /. Array.unsafe_get regs (b + j))
        done
  done;
  Array.blit regs (t.result * lanes) out out_base n
