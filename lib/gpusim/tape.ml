(* Flat register-machine tapes: the warp-batched statement evaluator.

   A tape is the closure-free form of one statement's right-hand side.
   Registers are structure-of-arrays 32-lane float buffers packed into a
   single scratch array (register r occupies words [r*lanes, r*lanes+n)).
   Registers 0..nsrcs-1 are the statement's distinct reads, blitted from
   the grids once per row chunk; the remaining registers hold
   intermediate results. One [exec] retires a whole warp's worth of
   statement instances with four tight array loops per operation and no
   allocation, where the closure interpreter paid a tree walk and a
   closure call per node per lane.

   Evaluation order per lane is exactly the closure interpreter's
   post-order walk, so results are bit-identical IEEE doubles. *)

type instr =
  | Const of { dst : int; v : float }
  | Neg of { dst : int; a : int }
  | Add of { dst : int; a : int; b : int }
  | Sub of { dst : int; a : int; b : int }
  | Mul of { dst : int; a : int; b : int }
  | Div of { dst : int; a : int; b : int }

type t = { nsrcs : int; nregs : int; result : int; instrs : instr array }

let lanes = 32

let make ~nsrcs ~nregs ~result ~instrs =
  let check_reg what r =
    if r < 0 || r >= nregs then
      invalid_arg (Fmt.str "Tape.make: %s register %d out of [0, %d)" what r nregs)
  in
  if nsrcs < 0 || nsrcs > nregs then invalid_arg "Tape.make: nsrcs out of range";
  check_reg "result" result;
  Array.iter
    (function
      | Const { dst; _ } -> check_reg "dst" dst
      | Neg { dst; a } ->
          check_reg "dst" dst;
          check_reg "src" a
      | Add { dst; a; b } | Sub { dst; a; b } | Mul { dst; a; b } | Div { dst; a; b }
        ->
          check_reg "dst" dst;
          check_reg "src" a;
          check_reg "src" b)
    instrs;
  { nsrcs; nregs; result; instrs }

let length t = Array.length t.instrs

type scratch = float array

let scratch t : scratch = Array.make (max 1 (t.nregs * lanes)) 0.0

let scratch_fits t (s : scratch) = Array.length s >= t.nregs * lanes

(* [make] bounds every register below [nregs] and the caller passes a
   scratch of at least nregs*lanes words with n <= lanes, so the unsafe
   accesses below stay inside the scratch. *)
let exec t (regs : scratch) ~(datas : float array array) ~(bases : int array)
    ~dx ~n ~(out : float array) ~out_base =
  if n < 0 || n > lanes then invalid_arg "Tape.exec: n out of [0, 32]";
  if not (scratch_fits t regs) then invalid_arg "Tape.exec: scratch too small";
  for s = 0 to t.nsrcs - 1 do
    (* Array.blit bounds-checks, backstopping the callers' row validation *)
    Array.blit datas.(s) (bases.(s) + dx) regs (s * lanes) n
  done;
  let instrs = t.instrs in
  for i = 0 to Array.length instrs - 1 do
    match Array.unsafe_get instrs i with
    | Const { dst; v } -> Array.fill regs (dst * lanes) n v
    | Neg { dst; a } ->
        let d = dst * lanes and a = a * lanes in
        for j = 0 to n - 1 do
          Array.unsafe_set regs (d + j) (-.Array.unsafe_get regs (a + j))
        done
    | Add { dst; a; b } ->
        let d = dst * lanes and a = a * lanes and b = b * lanes in
        for j = 0 to n - 1 do
          Array.unsafe_set regs (d + j)
            (Array.unsafe_get regs (a + j) +. Array.unsafe_get regs (b + j))
        done
    | Sub { dst; a; b } ->
        let d = dst * lanes and a = a * lanes and b = b * lanes in
        for j = 0 to n - 1 do
          Array.unsafe_set regs (d + j)
            (Array.unsafe_get regs (a + j) -. Array.unsafe_get regs (b + j))
        done
    | Mul { dst; a; b } ->
        let d = dst * lanes and a = a * lanes and b = b * lanes in
        for j = 0 to n - 1 do
          Array.unsafe_set regs (d + j)
            (Array.unsafe_get regs (a + j) *. Array.unsafe_get regs (b + j))
        done
    | Div { dst; a; b } ->
        let d = dst * lanes and a = a * lanes and b = b * lanes in
        for j = 0 to n - 1 do
          Array.unsafe_set regs (d + j)
            (Array.unsafe_get regs (a + j) /. Array.unsafe_get regs (b + j))
        done
  done;
  Array.blit regs (t.result * lanes) out out_base n

(* ---- fused run plans -------------------------------------------------

   The analytic epilogue replays a class's compute rows once per member
   block — billions of statement instances on the full-size paper
   grids — so the per-lane cost of [exec] (one scratch pass per source
   blit, per instruction, and per result blit) dominates the whole
   simulation. A plan is the same tape peephole-compiled into fused
   superinstructions that read sources in place from the grids, keep
   single-use intermediates out of scratch entirely, and store the
   result straight into the output grid.

   Bit-exactness: every superinstruction evaluates exactly the float
   operations of the scalar instruction sequence it replaces, on the
   same operands in the same per-lane order — fusion only eliminates
   materializations of single-use intermediates (a memory round-trip,
   not an arithmetic op), and multiplications keep their original
   operand order, so plan execution is IEEE-identical to [exec]. *)

type pop = Psrc of int | Preg of int
type pdst = Dreg of int | Dout
type pbinop = Badd | Bsub | Bmul | Bdiv

type pinstr =
  | P_const of { dst : pdst; v : float }
  | P_copy of { dst : pdst; a : pop }
  | P_neg of { dst : pdst; a : pop }
  | P_bin of { op : pbinop; dst : pdst; a : pop; b : pop }
  | P_sum3 of { dst : pdst; a : pop; b : pop; c : pop }
      (** [(a + b) + c] *)
  | P_sum4 of { dst : pdst; a : pop; b : pop; c : pop; d : pop }
      (** [((a + b) + c) + d] *)
  | P_mulc of { dst : pdst; k : float; a : pop; kleft : bool }
      (** [k *. a] when [kleft], else [a *. k] *)
  | P_axpby of { dst : pdst; ka : float; a : pop; kb : float; b : pop }
      (** [(ka *. a) +. (kb *. b)], both constants left operands *)
  | P_submulc of { dst : pdst; a : pop; k : float; b : pop }
      (** [a -. (k *. b)] *)

type plan = {
  pinstrs : pinstr array;
  pregs : int;  (** materialized plan registers (scratch is pregs*strip) *)
  psrcs : int array;  (** distinct source registers the plan reads *)
  pops : int;  (** fused passes per strip window, for diagnostics *)
}

(* Strip width of plan execution: wide enough to amortize pass setup,
   small enough that the whole register file stays in L1
   (pregs * 256 * 8 bytes; the microbenchmarked sweet spot). *)
let strip = 256

(* pending value descriptions during planning: what a (single-use) tape
   register holds before anything is materialized for it *)
type pdesc =
  | Atom of pop
  | Kconst of float
  | Sum of pop list  (** left-assoc chain, reversed (head = last term) *)
  | Mulc of { k : float; a : pop; kleft : bool }

let plan (t : t) =
  (* operand use counts, plus one use of [result] for the final store *)
  let uses = Array.make t.nregs 0 in
  let use r = uses.(r) <- uses.(r) + 1 in
  Array.iter
    (function
      | Const _ -> ()
      | Neg { a; _ } -> use a
      | Add { a; b; _ } | Sub { a; b; _ } | Mul { a; b; _ } | Div { a; b; _ }
        ->
          use a;
          use b)
    t.instrs;
  use t.result;
  let desc : pdesc option array = Array.make (max 1 t.nregs) None in
  for s = 0 to t.nsrcs - 1 do
    desc.(s) <- Some (Atom (Psrc s))
  done;
  let out = ref [] and nout = ref 0 in
  let emit p =
    out := p :: !out;
    incr nout
  in
  let nreg = ref 0 in
  let fresh () =
    let r = !nreg in
    incr nreg;
    r
  in
  (* materialize a description into [dst] as fused passes; sums chunk
     into sum4/sum3 windows, accumulating in place (reading and writing
     the same plan register within a pass is per-lane safe) *)
  let emit_desc d ~(dst : pdst) =
    match d with
    | Atom a -> emit (P_copy { dst; a })
    | Kconst v -> emit (P_const { dst; v })
    | Mulc { k; a; kleft } -> emit (P_mulc { dst; k; a; kleft })
    | Sum rev_terms ->
        let ts = Array.of_list (List.rev rev_terms) in
        let n = Array.length ts in
        let acc = lazy (fresh ()) in
        let target rem = if rem = 0 then dst else Dreg (Lazy.force acc) in
        (* first window: 2..4 leading terms *)
        let take0 = min 4 n in
        (match take0 with
        | 2 -> emit (P_bin { op = Badd; dst = target (n - 2); a = ts.(0); b = ts.(1) })
        | 3 ->
            emit (P_sum3 { dst = target (n - 3); a = ts.(0); b = ts.(1); c = ts.(2) })
        | _ ->
            emit
              (P_sum4
                 { dst = target (n - 4); a = ts.(0); b = ts.(1); c = ts.(2); d = ts.(3) }));
        let i = ref take0 in
        while !i < n do
          let a = Preg (Lazy.force acc) in
          let take = min 3 (n - !i) in
          let rem = n - !i - take in
          (match take with
          | 1 -> emit (P_bin { op = Badd; dst = target rem; a; b = ts.(!i) })
          | 2 -> emit (P_sum3 { dst = target rem; a; b = ts.(!i); c = ts.(!i + 1) })
          | _ ->
              emit
                (P_sum4
                   { dst = target rem; a; b = ts.(!i); c = ts.(!i + 1); d = ts.(!i + 2) }));
          i := !i + take
        done
  in
  (* resolve a tape register to an atomic operand, materializing any
     pending multi-use description exactly once *)
  let atomize r =
    match desc.(r) with
    | Some (Atom a) -> a
    | Some d ->
        let pr = fresh () in
        emit_desc d ~dst:(Dreg pr);
        let a = Preg pr in
        desc.(r) <- Some (Atom a);
        a
    | None -> invalid_arg "Tape.plan: operand read before definition"
  in
  (* a defined value stays pending only while its sole consumer can fuse
     it; multi-use values materialize at definition *)
  let define dst d =
    if uses.(dst) <= 1 then desc.(dst) <- Some d
    else begin
      let pr = fresh () in
      emit_desc d ~dst:(Dreg pr);
      desc.(dst) <- Some (Atom (Preg pr))
    end
  in
  (* single-use pending description of [r], if any (consumable by a
     fusing pattern); multi-use registers always go through [atomize] *)
  let pending r =
    if uses.(r) > 1 then None
    else
      match desc.(r) with
      | Some (Atom _) | None -> None
      | Some d -> Some d
  in
  Array.iter
    (fun ins ->
      match ins with
      | Const { dst; v } -> define dst (Kconst v)
      | Neg { dst; a } ->
          let pa = atomize a in
          let pr = fresh () in
          emit (P_neg { dst = Dreg pr; a = pa });
          desc.(dst) <- Some (Atom (Preg pr))
      | Add { dst; a; b } -> (
          match (pending a, pending b) with
          | Some (Mulc { k = ka; a = xa; kleft = true }), Some (Mulc { k = kb; a = xb; kleft = true }) ->
              (* (ka*x) + (kb*y) in one pass *)
              let pr = fresh () in
              emit (P_axpby { dst = Dreg pr; ka; a = xa; kb; b = xb });
              desc.(a) <- None;
              desc.(b) <- None;
              desc.(dst) <- Some (Atom (Preg pr))
          | pa, _ ->
              (* grow (or start) a left-assoc sum chain *)
              let terms =
                match pa with
                | Some (Sum ts) ->
                    desc.(a) <- None;
                    ts
                | _ -> [ atomize a ]
              in
              let pb = atomize b in
              define dst (Sum (pb :: terms)))
      | Sub { dst; a; b } -> (
          match pending b with
          | Some (Mulc { k; a = x; kleft = true }) ->
              let pa = atomize a in
              desc.(b) <- None;
              let pr = fresh () in
              emit (P_submulc { dst = Dreg pr; a = pa; k; b = x });
              desc.(dst) <- Some (Atom (Preg pr))
          | _ ->
              let pa = atomize a in
              let pb = atomize b in
              let pr = fresh () in
              emit (P_bin { op = Bsub; dst = Dreg pr; a = pa; b = pb });
              desc.(dst) <- Some (Atom (Preg pr)))
      | Mul { dst; a; b } -> (
          match (pending a, pending b) with
          | Some (Kconst k), _ ->
              desc.(a) <- None;
              let pb = atomize b in
              define dst (Mulc { k; a = pb; kleft = true })
          | _, Some (Kconst k) ->
              let pa = atomize a in
              desc.(b) <- None;
              define dst (Mulc { k; a = pa; kleft = false })
          | _ ->
              let pa = atomize a in
              let pb = atomize b in
              let pr = fresh () in
              emit (P_bin { op = Bmul; dst = Dreg pr; a = pa; b = pb });
              desc.(dst) <- Some (Atom (Preg pr)))
      | Div { dst; a; b } ->
          let pa = atomize a in
          let pb = atomize b in
          let pr = fresh () in
          emit (P_bin { op = Bdiv; dst = Dreg pr; a = pa; b = pb });
          desc.(dst) <- Some (Atom (Preg pr)))
    t.instrs;
  (* the result value's last pass targets the output grid directly: a
     still-pending description materializes to [Dout]; an atom either
     rewrites its defining pass's destination (when nothing else reads
     that register) or copies *)
  let instrs =
    match desc.(t.result) with
    | Some (Atom (Preg r)) ->
        let body = Array.of_list (List.rev !out) in
        let reads_r p =
          let opr = function Preg r' -> r' = r | Psrc _ -> false in
          match p with
          | P_const _ -> false
          | P_copy { a; _ } | P_neg { a; _ } | P_mulc { a; _ } -> opr a
          | P_bin { a; b; _ } | P_axpby { a; b; _ } | P_submulc { a; b; _ } ->
              opr a || opr b
          | P_sum3 { a; b; c; _ } -> opr a || opr b || opr c
          | P_sum4 { a; b; c; d; _ } -> opr a || opr b || opr c || opr d
        in
        let redst p =
          match p with
          | P_const c -> P_const { c with dst = Dout }
          | P_copy c -> P_copy { c with dst = Dout }
          | P_neg c -> P_neg { c with dst = Dout }
          | P_bin c -> P_bin { c with dst = Dout }
          | P_sum3 c -> P_sum3 { c with dst = Dout }
          | P_sum4 c -> P_sum4 { c with dst = Dout }
          | P_mulc c -> P_mulc { c with dst = Dout }
          | P_axpby c -> P_axpby { c with dst = Dout }
          | P_submulc c -> P_submulc { c with dst = Dout }
        in
        (* the defining pass is the last writing Dreg r; rewrite it iff
           it is the final pass and no pass reads r (a sum accumulator
           both reads and writes r mid-chain, which must stay in regs) *)
        let n = Array.length body in
        let dst_is_r p =
          let d =
            match p with
            | P_const { dst; _ } | P_copy { dst; _ } | P_neg { dst; _ }
            | P_bin { dst; _ } | P_sum3 { dst; _ } | P_sum4 { dst; _ }
            | P_mulc { dst; _ } | P_axpby { dst; _ } | P_submulc { dst; _ } ->
                dst
          in
          match d with Dreg r' -> r' = r | Dout -> false
        in
        if n > 0 && dst_is_r body.(n - 1) && not (Array.exists reads_r body)
        then begin
          body.(n - 1) <- redst body.(n - 1);
          body
        end
        else Array.append body [| P_copy { dst = Dout; a = Preg r } |]
    | Some d ->
        emit_desc d ~dst:Dout;
        Array.of_list (List.rev !out)
    | None -> invalid_arg "Tape.plan: result register never defined"
  in
  let srcs = Array.make t.nsrcs false in
  let mark = function Psrc s -> srcs.(s) <- true | Preg _ -> () in
  Array.iter
    (function
      | P_const _ -> ()
      | P_copy { a; _ } | P_neg { a; _ } | P_mulc { a; _ } -> mark a
      | P_bin { a; b; _ } | P_axpby { a; b; _ } | P_submulc { a; b; _ } ->
          mark a;
          mark b
      | P_sum3 { a; b; c; _ } ->
          mark a;
          mark b;
          mark c
      | P_sum4 { a; b; c; d; _ } ->
          mark a;
          mark b;
          mark c;
          mark d)
    instrs;
  let psrcs = ref [] in
  for s = t.nsrcs - 1 downto 0 do
    if srcs.(s) then psrcs := s :: !psrcs
  done;
  {
    pinstrs = instrs;
    pregs = !nreg;
    psrcs = Array.of_list !psrcs;
    pops = Array.length instrs;
  }

let plan_scratch_words p = max 1 (p.pregs * strip)

let exec_plan p (regs : scratch) ~(datas : float array array)
    ~(bases : int array) ~dx ~n ~(out : float array) ~out_base =
  if n < 0 then invalid_arg "Tape.exec_plan: negative n";
  (* one bounds pass over the whole run backstops the callers' row
     validation; the strip loops below then run unchecked *)
  Array.iter
    (fun s ->
      let b = bases.(s) + dx in
      if b < 0 || b + n > Array.length datas.(s) then
        invalid_arg "Tape.exec_plan: source row out of bounds")
    p.psrcs;
  if out_base < 0 || out_base + n > Array.length out then
    invalid_arg "Tape.exec_plan: output row out of bounds";
  if Array.length regs < p.pregs * strip then
    invalid_arg "Tape.exec_plan: scratch too small";
  let arr_of = function Psrc s -> datas.(s) | Preg _ -> regs in
  let darr_of = function Dreg _ -> regs | Dout -> out in
  let i = ref 0 in
  while !i < n do
    let i0 = !i in
    let nl = min strip (n - i0) in
    let off_of = function
      | Psrc s -> bases.(s) + dx + i0
      | Preg r -> r * strip
    in
    let doff_of = function Dreg r -> r * strip | Dout -> out_base + i0 in
    let pi = p.pinstrs in
    for k = 0 to Array.length pi - 1 do
      match Array.unsafe_get pi k with
      | P_const { dst; v } -> Array.fill (darr_of dst) (doff_of dst) nl v
      | P_copy { dst; a } ->
          Array.blit (arr_of a) (off_of a) (darr_of dst) (doff_of dst) nl
      | P_neg { dst; a } ->
          let av = arr_of a and ao = off_of a in
          let ev = darr_of dst and eo = doff_of dst in
          for j = 0 to nl - 1 do
            Array.unsafe_set ev (eo + j) (-.Array.unsafe_get av (ao + j))
          done
      | P_bin { op; dst; a; b } -> (
          let av = arr_of a and ao = off_of a in
          let bv = arr_of b and bo = off_of b in
          let ev = darr_of dst and eo = doff_of dst in
          match op with
          | Badd ->
              for j = 0 to nl - 1 do
                Array.unsafe_set ev (eo + j)
                  (Array.unsafe_get av (ao + j) +. Array.unsafe_get bv (bo + j))
              done
          | Bsub ->
              for j = 0 to nl - 1 do
                Array.unsafe_set ev (eo + j)
                  (Array.unsafe_get av (ao + j) -. Array.unsafe_get bv (bo + j))
              done
          | Bmul ->
              for j = 0 to nl - 1 do
                Array.unsafe_set ev (eo + j)
                  (Array.unsafe_get av (ao + j) *. Array.unsafe_get bv (bo + j))
              done
          | Bdiv ->
              for j = 0 to nl - 1 do
                Array.unsafe_set ev (eo + j)
                  (Array.unsafe_get av (ao + j) /. Array.unsafe_get bv (bo + j))
              done)
      | P_sum3 { dst; a; b; c } ->
          let av = arr_of a and ao = off_of a in
          let bv = arr_of b and bo = off_of b in
          let cv = arr_of c and co = off_of c in
          let ev = darr_of dst and eo = doff_of dst in
          for j = 0 to nl - 1 do
            Array.unsafe_set ev (eo + j)
              (Array.unsafe_get av (ao + j)
              +. Array.unsafe_get bv (bo + j)
              +. Array.unsafe_get cv (co + j))
          done
      | P_sum4 { dst; a; b; c; d } ->
          let av = arr_of a and ao = off_of a in
          let bv = arr_of b and bo = off_of b in
          let cv = arr_of c and co = off_of c in
          let dv = arr_of d and d_o = off_of d in
          let ev = darr_of dst and eo = doff_of dst in
          for j = 0 to nl - 1 do
            Array.unsafe_set ev (eo + j)
              (Array.unsafe_get av (ao + j)
              +. Array.unsafe_get bv (bo + j)
              +. Array.unsafe_get cv (co + j)
              +. Array.unsafe_get dv (d_o + j))
          done
      | P_mulc { dst; k; a; kleft } ->
          let av = arr_of a and ao = off_of a in
          let ev = darr_of dst and eo = doff_of dst in
          if kleft then
            for j = 0 to nl - 1 do
              Array.unsafe_set ev (eo + j) (k *. Array.unsafe_get av (ao + j))
            done
          else
            for j = 0 to nl - 1 do
              Array.unsafe_set ev (eo + j) (Array.unsafe_get av (ao + j) *. k)
            done
      | P_axpby { dst; ka; a; kb; b } ->
          let av = arr_of a and ao = off_of a in
          let bv = arr_of b and bo = off_of b in
          let ev = darr_of dst and eo = doff_of dst in
          for j = 0 to nl - 1 do
            Array.unsafe_set ev (eo + j)
              ((ka *. Array.unsafe_get av (ao + j))
              +. (kb *. Array.unsafe_get bv (bo + j)))
          done
      | P_submulc { dst; a; k; b } ->
          let av = arr_of a and ao = off_of a in
          let bv = arr_of b and bo = off_of b in
          let ev = darr_of dst and eo = doff_of dst in
          for j = 0 to nl - 1 do
            Array.unsafe_set ev (eo + j)
              (Array.unsafe_get av (ao + j)
              -. (k *. Array.unsafe_get bv (bo + j)))
          done
    done;
    i := i0 + nl
  done

let plan_passes p = p.pops
