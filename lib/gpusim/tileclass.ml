(* Recorded per-block event streams for tile-class memoization.

   The hybrid scheme's tiles are translation-invariant: two blocks of one
   launch whose hexagons are clipped identically against the statement
   domains issue the same warp event sequence, with every global byte
   address shifted by a per-array constant (the S0 translation times the
   array's row stride). A stream records one representative block's
   events with each global address tagged by its array region; replaying
   it with per-region byte deltas through [Sim] reproduces the other
   blocks' accounting exactly — line ranges and coalescing are recomputed
   from the translated addresses, never copied. Shared-memory addresses
   are tile-relative (identical across the class) or shift uniformly,
   which rotates the bank assignment without changing the conflict
   count, so only the transaction count is recorded. *)

type ev =
  | Gload_run of { region : int; addr : int; n : int }
      (** coalesced load of [n] consecutive words at byte [addr] *)
  | Gstore_run of { region : int; addr : int; n : int; serial : bool }
  | Gload_lanes of { region : int; addrs : int array }
      (** ascending per-lane byte addresses (gapped copy-in rows) *)
  | Gstore_lanes of { region : int; addrs : int array; serial : bool }
  | Shared_load of { transactions : int }
      (** one request; [transactions] includes bank-conflict replays *)
  | Shared_store of { transactions : int }
  | Flops of { active : int; per_lane : int }
  | Sync
  | Compute of {
      stmt : int;  (** statement index in the program *)
      tstep : int;
      wregion : int;
      waddr : int;  (** byte address of the row's first written cell *)
      sregions : int array;
      srcs : int array;  (** byte address of each source's first cell *)
      n : int;  (** lanes (row width) *)
    }
      (** functional execution of one statement row through its tape;
          replay translates the write/source addresses like the memory
          events and runs the tape against the replaying block's grids *)

type stream = { mutable evs : ev array; mutable len : int }

let create () = { evs = Array.make 64 Sync; len = 0 }

let push s ev =
  if s.len = Array.length s.evs then begin
    let nb = Array.make (2 * s.len) Sync in
    Array.blit s.evs 0 nb 0 s.len;
    s.evs <- nb
  end;
  s.evs.(s.len) <- ev;
  s.len <- s.len + 1

let length s = s.len

let mem_events s =
  let n = ref 0 in
  for i = 0 to s.len - 1 do
    match s.evs.(i) with
    | Gload_run _ | Gstore_run _ | Gload_lanes _ | Gstore_lanes _
    | Shared_load _ | Shared_store _ ->
        incr n
    | Flops _ | Sync | Compute _ -> ()
  done;
  !n

let iter s ~f =
  for i = 0 to s.len - 1 do
    f s.evs.(i)
  done
