open Hextile_ir

type entry = { base : int; offset : int }

type t = { mutable next : int; tbl : (string, entry) Hashtbl.t }

let create () = { next = 256; tbl = Hashtbl.create 8 }

let align_up n a = (n + a - 1) / a * a

(* Re-registering keeps the existing base (addresses stay stable across
   per-phase offset updates, e.g. the aligned-loads knob) and only
   refreshes the translation offset. *)
let place t (g : Grid.t) ~offset_floats =
  let e =
    match Hashtbl.find_opt t.tbl g.decl.aname with
    | Some e0 -> { e0 with offset = 4 * offset_floats }
    | None ->
        let bytes = 4 * Array.length g.data in
        let base = align_up t.next 256 in
        t.next <- base + bytes + 1024;
        { base; offset = 4 * offset_floats }
  in
  Hashtbl.replace t.tbl g.decl.aname e;
  e

let register t g ~offset_floats = ignore (place t g ~offset_floats)

let base t (g : Grid.t) =
  let e =
    match Hashtbl.find_opt t.tbl g.decl.aname with
    | Some e -> e
    | None -> place t g ~offset_floats:0
  in
  e.base + e.offset

let addr t (g : Grid.t) idx = base t g + (4 * idx)
