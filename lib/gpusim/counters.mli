(** Hardware event counters gathered during simulation — the profiler
    quantities of the paper's Table 5. *)

type t = {
  mutable gld_inst : int;
      (** per-thread 32-bit global load instructions ("gld inst 32bit") *)
  mutable gst_inst : int;
  mutable gld_requests : int;  (** per-warp global load instructions *)
  mutable gld_transactions : int;  (** 128 B transactions sent to L2 *)
  mutable gst_transactions : int;
  mutable gld_useful_bytes : int;  (** bytes actually consumed by lanes *)
  mutable l2_read_transactions : int;
  mutable l2_write_transactions : int;
  mutable dram_read_transactions : int;
  mutable dram_write_transactions : int;
  mutable shared_load_requests : int;
  mutable shared_load_transactions : int;
  mutable shared_store_requests : int;
  mutable shared_store_transactions : int;
  mutable serial_store_transactions : int;
      (** store transactions issued in a dedicated copy-out phase that
          does not overlap computation (Section 4.2.1) *)
  mutable flops : int;
  mutable syncs : int;
  mutable kernels : int;
}

val create : unit -> t
val copy : t -> t
val add : t -> t -> unit
(** [add acc x] accumulates [x] into [acc]. *)

val diff : t -> t -> t
(** [diff now before] — per-launch deltas. *)

val gld_efficiency : t -> float
(** useful bytes / transferred bytes of global loads, in [0, 1];
    defined as [0.0] when no transaction was issued. *)

val shared_loads_per_request : t -> float
(** Bank-conflict replay factor ("shared loads per request", ≥ 1);
    defined as [1.0] when no request was issued. *)

val to_assoc : t -> (string * int) list
(** Every counter as a (name, value) pair, in declaration order — the
    machine-readable form used by trace/JSON sinks. *)

val pp : t Fmt.t
