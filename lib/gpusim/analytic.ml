(* Class-population counter scaling and the analytic L2/DRAM model for
   the hierarchical (tile-class) simulation mode. See analytic.mli for
   the exactness argument. *)

let dram_error_bound = 0.5

(* Every counter except the DRAM pair and [kernels] is per-block state:
   coalescing is recomputed per event from addresses whose translation is
   a whole number of lines, the L1 is private and reset per block (a
   uniform line-shift rotates its set mapping bijectively, preserving the
   hit/miss sequence), and shared-memory conflict counts are
   base-independent. So a class member's delta equals its
   representative's delta field-for-field, and population scaling is
   bit-exact. The DRAM pair depends on the shared cross-block L2 state
   and is modelled by {!replay_lines} instead. *)
let scale_into (into : Counters.t) ~(delta : Counters.t) ~times =
  if times < 0 then invalid_arg "Analytic.scale_into: negative times";
  let k = times in
  into.gld_inst <- into.gld_inst + (k * delta.gld_inst);
  into.gst_inst <- into.gst_inst + (k * delta.gst_inst);
  into.gld_requests <- into.gld_requests + (k * delta.gld_requests);
  into.gld_transactions <- into.gld_transactions + (k * delta.gld_transactions);
  into.gst_transactions <- into.gst_transactions + (k * delta.gst_transactions);
  into.gld_useful_bytes <- into.gld_useful_bytes + (k * delta.gld_useful_bytes);
  into.l2_read_transactions <-
    into.l2_read_transactions + (k * delta.l2_read_transactions);
  into.l2_write_transactions <-
    into.l2_write_transactions + (k * delta.l2_write_transactions);
  into.shared_load_requests <-
    into.shared_load_requests + (k * delta.shared_load_requests);
  into.shared_load_transactions <-
    into.shared_load_transactions + (k * delta.shared_load_transactions);
  into.shared_store_requests <-
    into.shared_store_requests + (k * delta.shared_store_requests);
  into.shared_store_transactions <-
    into.shared_store_transactions + (k * delta.shared_store_transactions);
  into.serial_store_transactions <-
    into.serial_store_transactions + (k * delta.serial_store_transactions);
  into.flops <- into.flops + (k * delta.flops);
  into.syncs <- into.syncs + (k * delta.syncs)

(* First-touch-ordered distinct lines of a recorded stream, encoded as
   [(line lsl 1) lor write] — the same encoding as the parallel path's L2
   traces. A line is emitted once at its first load and once at its first
   store: repeated accesses overwhelmingly hit (the block's own L1/L2
   residency absorbs them), so the compressed trace keeps the L2's state
   evolution while dropping the per-event walk. *)
let lines_of_stream (s : Tileclass.stream) ~line_bytes =
  let seen : (int, unit) Hashtbl.t = Hashtbl.create 512 in
  let out = ref [] in
  let n = ref 0 in
  let touch ~write line =
    let enc = (line lsl 1) lor if write then 1 else 0 in
    if not (Hashtbl.mem seen enc) then begin
      Hashtbl.add seen enc ();
      out := enc :: !out;
      incr n
    end
  in
  let run ~write addr bytes =
    let lo = addr / line_bytes and hi = (addr + bytes - 1) / line_bytes in
    for l = lo to hi do
      touch ~write l
    done
  in
  Tileclass.iter s ~f:(function
    | Tileclass.Gload_run { addr; n; _ } -> run ~write:false addr (4 * n)
    | Gstore_run { addr; n; _ } -> run ~write:true addr (4 * n)
    | Gload_lanes { addrs; _ } ->
        Array.iter (fun a -> touch ~write:false (a / line_bytes)) addrs
    | Gstore_lanes { addrs; _ } ->
        Array.iter (fun a -> touch ~write:true (a / line_bytes)) addrs
    | Shared_load _ | Shared_store _ | Flops _ | Sync | Compute _ -> ());
  let arr = Array.make !n 0 in
  List.iteri (fun i enc -> arr.(!n - 1 - i) <- enc) !out;
  arr

(* Sorted line-run form of a compressed trace: reads first, then
   writes, each direction sorted by line and coalesced into maximal
   consecutive runs, flattened as [(enc, n)] pairs ([enc] is the run's
   first line in the [(line lsl 1) lor write] encoding). Replaying runs
   instead of first-touch order reorders distinct-line touches within
   one block's trace; the DRAM model's error contract
   ({!dram_error_bound}) already covers exactly this class of
   order-of-touch perturbation, and the analytic bench/tests assert the
   bound holds. *)
let compress_lines (lines : int array) =
  let a = Array.copy lines in
  (* (write, line) ascending *)
  Array.sort
    (fun e1 e2 ->
      let c = compare (e1 land 1) (e2 land 1) in
      if c <> 0 then c else compare (e1 asr 1) (e2 asr 1))
    a;
  let out = ref [] and nruns = ref 0 in
  let n = Array.length a in
  let i = ref 0 in
  while !i < n do
    let e0 = a.(!i) in
    let c = ref 1 in
    while
      !i + !c < n
      && a.(!i + !c) land 1 = e0 land 1
      && a.(!i + !c) asr 1 = (e0 asr 1) + !c
    do
      incr c
    done;
    out := (e0, !c) :: !out;
    incr nruns;
    i := !i + !c
  done;
  let runs = Array.make (2 * !nruns) 0 in
  List.iteri
    (fun j (e, c) ->
      let k = !nruns - 1 - j in
      runs.(2 * k) <- e;
      runs.((2 * k) + 1) <- c)
    !out;
  runs

(* Replay a translated line-run trace through the shared L2 with one
   {!L2.access_run} probe per run, charging t.total's DRAM counters with
   the aggregated miss/writeback counts — per-line cache semantics
   identical to {!replay_lines}, in run order. Must run on the main
   domain (launch epilogue). *)
let replay_line_runs (t : Sim.t) runs ~dline =
  let c = t.Sim.total in
  let nlines = ref 0 in
  let nruns = Array.length runs / 2 in
  for k = 0 to nruns - 1 do
    let enc = runs.(2 * k) and n = runs.((2 * k) + 1) in
    let line0 = (enc asr 1) + dline in
    let write = enc land 1 = 1 in
    let code = L2.access_run t.Sim.l2 ~line0 ~n ~write in
    let hits = code lsr L2.run_shift
    and wbs = code land ((1 lsl L2.run_shift) - 1) in
    if not write then
      c.dram_read_transactions <- c.dram_read_transactions + (n - hits);
    c.dram_write_transactions <- c.dram_write_transactions + wbs;
    nlines := !nlines + n
  done;
  ignore (Atomic.fetch_and_add t.Sim.analytic_replay_lines !nlines)

(* Touch a translated compressed trace through the shared L2, charging
   t.total's DRAM counters exactly like [Sim.replay_l2] does for full
   traces. Must run on the main domain (launch epilogue). *)
let replay_lines (t : Sim.t) lines ~dline =
  let c = t.Sim.total in
  let lb = t.Sim.dev.Device.line_bytes in
  Array.iter
    (fun enc ->
      let addr = ((enc lsr 1) + dline) * lb in
      if enc land 1 = 1 then begin
        let o = L2.access t.Sim.l2 ~addr ~write:true in
        if o.writeback then
          c.dram_write_transactions <- c.dram_write_transactions + 1
      end
      else begin
        let o = L2.access t.Sim.l2 ~addr ~write:false in
        if not o.hit then
          c.dram_read_transactions <- c.dram_read_transactions + 1;
        if o.writeback then
          c.dram_write_transactions <- c.dram_write_transactions + 1
      end)
    lines
