type t = {
  name : string;
  sms : int;
  cores_per_sm : int;
  clock_ghz : float;
  dram_bw_gbs : float;
  dram_efficiency : float;
  l1_bytes : int;
  l2_bytes : int;
  l2_assoc : int;
  l2_bw_gbs : float;
  line_bytes : int;
  warp_size : int;
  banks : int;
  shared_mem_bytes : int;
  max_threads_per_block : int;
  flops_per_core_per_cycle : float;
  issue_efficiency : float;
  launch_overhead_s : float;
  sync_cycles : float;
  gmem_request_cycles : float;
  pcie_bw_gbs : float;
}

let gtx470 =
  {
    name = "gtx470";
    sms = 14;
    cores_per_sm = 32;
    clock_ghz = 1.215;
    dram_bw_gbs = 133.9;
    dram_efficiency = 0.65;
    l1_bytes = 16 * 1024;
    l2_bytes = 640 * 1024;
    l2_assoc = 8;
    l2_bw_gbs = 320.0;
    line_bytes = 128;
    warp_size = 32;
    banks = 32;
    shared_mem_bytes = 48 * 1024;
    max_threads_per_block = 1024;
    flops_per_core_per_cycle = 1.0;
    issue_efficiency = 0.55;
    launch_overhead_s = 6e-6;
    sync_cycles = 30.0;
    gmem_request_cycles = 4.0;
    pcie_bw_gbs = 5.5;
  }

let nvs5200m =
  {
    name = "nvs5200";
    sms = 2;
    cores_per_sm = 48;
    clock_ghz = 1.344;
    dram_bw_gbs = 14.4;
    dram_efficiency = 0.70;
    l1_bytes = 16 * 1024;
    l2_bytes = 128 * 1024;
    l2_assoc = 8;
    l2_bw_gbs = 48.0;
    line_bytes = 128;
    warp_size = 32;
    banks = 32;
    shared_mem_bytes = 48 * 1024;
    max_threads_per_block = 1024;
    flops_per_core_per_cycle = 1.0;
    issue_efficiency = 0.55;
    launch_overhead_s = 8e-6;
    sync_cycles = 30.0;
    gmem_request_cycles = 4.0;
    pcie_bw_gbs = 3.0;
  }

let by_name n =
  match n with
  | "gtx470" -> gtx470
  | "nvs5200" | "nvs5200m" -> nvs5200m
  | _ -> raise Not_found

let peak_gflops t =
  float_of_int (t.sms * t.cores_per_sm) *. t.clock_ghz *. t.flops_per_core_per_cycle

let pp ppf t =
  Fmt.pf ppf "%s: %d SMs x %d cores at %.3f GHz, %.1f GB/s DRAM, %d KB L2" t.name
    t.sms t.cores_per_sm t.clock_ghz t.dram_bw_gbs (t.l2_bytes / 1024)
