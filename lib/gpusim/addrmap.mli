(** Global-memory address assignment for grids.

    Each array is placed at a 256-byte-aligned base in a flat byte address
    space (in registration order), so coalescing and cache behaviour can
    be computed from concrete addresses. An optional per-array translation
    offset supports the aligned-loads optimization of Section 4.2.3. *)

type t

val create : unit -> t

val register : t -> Hextile_ir.Grid.t -> offset_floats:int -> unit
(** Explicitly place a grid, shifting its contents by [offset_floats]
    floats relative to the aligned base (tile-translation knob). Grids not
    registered are placed automatically with offset 0 on first use.
    Re-registering keeps the original base and only updates the offset,
    so addresses never depend on registration order or timing — the
    executors pre-register every program array at context creation,
    which keeps first use race-free under parallel block execution. *)

val addr : t -> Hextile_ir.Grid.t -> int -> int
(** Byte address of float element [flat_index] of the grid. *)

val base : t -> Hextile_ir.Grid.t -> int
(** Byte address of element 0 (registers the grid if needed), so that
    [addr g i = base g + 4*i]. *)
