module Obs = Hextile_obs.Obs

type race = {
  r_launch : string;
  r_block : int;
  r_word : int;
  r_kind : [ `Write_write | `Write_read ];
  r_tid1 : int;
  r_tid2 : int;
}

type divergence = {
  d_launch : string;
  d_block : int;
  d_syncs : int;
  d_expected : int;
}

type finding = Race of race | Divergence of divergence

(* Per shared word, within the current barrier interval: the last writer
   and up to two distinct reader identities. Two reader slots suffice to
   answer "does a reader other than [tid] exist?" — if the first recorded
   reader is [tid] itself, any second distinct reader cannot be. *)
type word_state = {
  mutable wtid : int;  (** -1: no write yet this interval *)
  mutable rtid1 : int;
  mutable rtid2 : int;
}

let max_recorded = 64

type state = {
  mutable on : bool;
  mutable found : finding list;  (** newest first *)
  mutable nfound : int;
  mutable launch_name : string;
  mutable block : int;
  mutable in_block : bool;
  mutable syncs : int;  (** barriers of the current block *)
  mutable expected_syncs : int;  (** -1 until the launch's first block ends *)
  mutable fresh_tid : int;  (** synthetic identities, negative, per block *)
  words : (int, word_state) Hashtbl.t;
}

(* One state per domain. The main domain's state is the long-lived one
   drivers enable/reset/query; worker domains only ever use theirs inside
   [capture_block], so parallel fuzz iterations (which toggle the
   sanitizer per runner) and parallel block execution cannot race. *)
let key : state Domain.DLS.key =
  Domain.DLS.new_key (fun () ->
      {
        on = false;
        found = [];
        nfound = 0;
        launch_name = "";
        block = -1;
        in_block = false;
        syncs = 0;
        expected_syncs = -1;
        fresh_tid = -2;
        words = Hashtbl.create 1024;
      })

let st () = Domain.DLS.get key
let enabled () = (st ()).on

let reset_launch_state s =
  s.launch_name <- "";
  s.block <- -1;
  s.in_block <- false;
  s.syncs <- 0;
  s.expected_syncs <- -1;
  Hashtbl.reset s.words

let reset () =
  let s = st () in
  s.found <- [];
  s.nfound <- 0;
  s.fresh_tid <- -2;
  reset_launch_state s

let enable () =
  (st ()).on <- true;
  reset ()

let disable () =
  (st ()).on <- false;
  reset ()

let findings () = List.rev (st ()).found
let dropped () = max 0 ((st ()).nfound - max_recorded)

let pp_finding ppf = function
  | Race r ->
      Fmt.pf ppf "%s race in %s block %d: shared word %d, threads %d and %d"
        (match r.r_kind with
        | `Write_write -> "write/write"
        | `Write_read -> "write/read")
        r.r_launch r.r_block r.r_word r.r_tid1 r.r_tid2
  | Divergence d ->
      Fmt.pf ppf
        "barrier divergence in %s: block %d ran %d barriers, the launch's \
         first-executed block ran %d"
        d.d_launch d.d_block d.d_syncs d.d_expected

let record s f =
  s.nfound <- s.nfound + 1;
  if s.nfound <= max_recorded then s.found <- f :: s.found;
  if Obs.enabled () then
    match f with
    | Race r ->
        Obs.event "sanitizer_race"
          [
            ("kind",
             Obs.Str
               (match r.r_kind with
               | `Write_write -> "write_write"
               | `Write_read -> "write_read"));
            ("launch", Obs.Str r.r_launch);
            ("block", Obs.Int r.r_block);
            ("word", Obs.Int r.r_word);
            ("tid1", Obs.Int r.r_tid1);
            ("tid2", Obs.Int r.r_tid2);
          ]
    | Divergence d ->
        Obs.event "sanitizer_divergence"
          [
            ("launch", Obs.Str d.d_launch);
            ("block", Obs.Int d.d_block);
            ("syncs", Obs.Int d.d_syncs);
            ("expected", Obs.Int d.d_expected);
          ]

let launch_begin ~name =
  let s = st () in
  if s.on then begin
    reset_launch_state s;
    s.launch_name <- name
  end

let block_begin b =
  let s = st () in
  if s.on then begin
    s.block <- b;
    s.in_block <- true;
    s.syncs <- 0;
    (* synthetic identities restart per block so findings do not depend
       on how many lanes earlier blocks touched (or on which domain ran
       the block): uniqueness only matters within one barrier interval *)
    s.fresh_tid <- -2;
    Hashtbl.reset s.words
  end

let divergence_check s =
  if s.expected_syncs < 0 then s.expected_syncs <- s.syncs
  else if s.syncs <> s.expected_syncs then
    record s
      (Divergence
         {
           d_launch = s.launch_name;
           d_block = s.block;
           d_syncs = s.syncs;
           d_expected = s.expected_syncs;
         })

let block_end () =
  let s = st () in
  if s.on && s.in_block then begin
    divergence_check s;
    s.in_block <- false;
    Hashtbl.reset s.words
  end

let launch_end () =
  let s = st () in
  if s.on then reset_launch_state s

let barrier () =
  let s = st () in
  if s.on && s.in_block then begin
    s.syncs <- s.syncs + 1;
    Hashtbl.reset s.words
  end

let race_at s word kind tid other =
  record s
    (Race
       {
         r_launch = s.launch_name;
         r_block = s.block;
         r_word = word;
         r_kind = kind;
         r_tid1 = other;
         r_tid2 = tid;
       })

(* [none] marks an empty identity slot; real identities are caller tids
   (any int except [none]) or fresh negative synthetics. *)
let none = min_int

let word_state s w =
  match Hashtbl.find_opt s.words w with
  | Some ws -> ws
  | None ->
      let ws = { wtid = none; rtid1 = none; rtid2 = none } in
      Hashtbl.replace s.words w ws;
      ws

let access ~write ?tids addrs =
  let s = st () in
  if s.on && s.in_block then
    Array.iteri
      (fun i a ->
        match a with
        | None -> ()
        | Some w ->
            let tid =
              match tids with
              | Some t when i < Array.length t -> t.(i)
              | _ ->
                  s.fresh_tid <- s.fresh_tid - 1;
                  s.fresh_tid
            in
            let ws = word_state s w in
            if write then begin
              if ws.wtid <> none && ws.wtid <> tid then
                race_at s w `Write_write tid ws.wtid;
              (if ws.rtid1 <> none then
                 if ws.rtid1 <> tid then race_at s w `Write_read tid ws.rtid1
                 else if ws.rtid2 <> none then
                   race_at s w `Write_read tid ws.rtid2);
              ws.wtid <- tid
            end
            else begin
              if ws.wtid <> none && ws.wtid <> tid then
                race_at s w `Write_read tid ws.wtid;
              if ws.rtid1 = none then ws.rtid1 <- tid
              else if ws.rtid1 <> tid && ws.rtid2 = none then ws.rtid2 <- tid
            end)
      addrs

(* ---- parallel block capture -------------------------------------------- *)

type block_report = {
  br_block : int;
  br_syncs : int;
  br_found : finding list;  (** detection order, capped at [max_recorded] *)
  br_nfound : int;  (** total detected, including beyond the cap *)
}

let capture_block ~name ~block f =
  (* the caller's own domain may run a chunk too, so save and restore the
     enclosing sanitizer state (its findings accumulate across launches) *)
  let s = st () in
  let saved_on = s.on
  and saved_found = s.found
  and saved_nfound = s.nfound
  and saved_name = s.launch_name
  and saved_block = s.block
  and saved_in_block = s.in_block
  and saved_syncs = s.syncs
  and saved_expected = s.expected_syncs
  and saved_fresh = s.fresh_tid in
  s.on <- true;
  s.found <- [];
  s.nfound <- 0;
  s.launch_name <- name;
  s.expected_syncs <- -1;
  Fun.protect
    ~finally:(fun () ->
      s.on <- saved_on;
      s.found <- saved_found;
      s.nfound <- saved_nfound;
      s.launch_name <- saved_name;
      s.block <- saved_block;
      s.in_block <- saved_in_block;
      s.syncs <- saved_syncs;
      s.expected_syncs <- saved_expected;
      s.fresh_tid <- saved_fresh;
      Hashtbl.reset s.words)
    (fun () ->
      block_begin block;
      f ();
      {
        br_block = block;
        br_syncs = s.syncs;
        br_found = List.rev s.found;
        br_nfound = s.nfound;
      })

let absorb_block_reports reports =
  let s = st () in
  if s.on then
    Array.iter
      (fun r ->
        (* race findings were already emitted as Obs events on the worker
           (and absorbed with its fork), so only re-count them here *)
        List.iter
          (fun f ->
            s.nfound <- s.nfound + 1;
            if s.nfound <= max_recorded then s.found <- f :: s.found)
          r.br_found;
        s.nfound <- s.nfound + (r.br_nfound - List.length r.br_found);
        s.block <- r.br_block;
        s.syncs <- r.br_syncs;
        divergence_check s)
      reports
