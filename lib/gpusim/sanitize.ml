module Obs = Hextile_obs.Obs

type race = {
  r_launch : string;
  r_block : int;
  r_word : int;
  r_kind : [ `Write_write | `Write_read ];
  r_tid1 : int;
  r_tid2 : int;
}

type divergence = {
  d_launch : string;
  d_block : int;
  d_syncs : int;
  d_expected : int;
}

type finding = Race of race | Divergence of divergence

(* Per shared word, within the current barrier interval: the last writer
   and up to two distinct reader identities. Two reader slots suffice to
   answer "does a reader other than [tid] exist?" — if the first recorded
   reader is [tid] itself, any second distinct reader cannot be. *)
type word_state = {
  mutable wtid : int;  (** -1: no write yet this interval *)
  mutable rtid1 : int;
  mutable rtid2 : int;
}

let max_recorded = 64

type state = {
  mutable on : bool;
  mutable found : finding list;  (** newest first *)
  mutable nfound : int;
  mutable launch_name : string;
  mutable block : int;
  mutable in_block : bool;
  mutable syncs : int;  (** barriers of the current block *)
  mutable expected_syncs : int;  (** -1 until the launch's first block ends *)
  mutable fresh_tid : int;  (** synthetic identities, negative and unique *)
  words : (int, word_state) Hashtbl.t;
}

let st =
  {
    on = false;
    found = [];
    nfound = 0;
    launch_name = "";
    block = -1;
    in_block = false;
    syncs = 0;
    expected_syncs = -1;
    fresh_tid = -2;
    words = Hashtbl.create 1024;
  }

let enabled () = st.on

let reset_launch_state () =
  st.launch_name <- "";
  st.block <- -1;
  st.in_block <- false;
  st.syncs <- 0;
  st.expected_syncs <- -1;
  Hashtbl.reset st.words

let reset () =
  st.found <- [];
  st.nfound <- 0;
  st.fresh_tid <- -2;
  reset_launch_state ()

let enable () =
  st.on <- true;
  reset ()

let disable () =
  st.on <- false;
  reset ()

let findings () = List.rev st.found
let dropped () = max 0 (st.nfound - max_recorded)

let pp_finding ppf = function
  | Race r ->
      Fmt.pf ppf "%s race in %s block %d: shared word %d, threads %d and %d"
        (match r.r_kind with
        | `Write_write -> "write/write"
        | `Write_read -> "write/read")
        r.r_launch r.r_block r.r_word r.r_tid1 r.r_tid2
  | Divergence d ->
      Fmt.pf ppf
        "barrier divergence in %s: block %d ran %d barriers, the launch's \
         first-executed block ran %d"
        d.d_launch d.d_block d.d_syncs d.d_expected

let record f =
  st.nfound <- st.nfound + 1;
  if st.nfound <= max_recorded then st.found <- f :: st.found;
  if Obs.enabled () then
    match f with
    | Race r ->
        Obs.event "sanitizer_race"
          [
            ("kind",
             Obs.Str
               (match r.r_kind with
               | `Write_write -> "write_write"
               | `Write_read -> "write_read"));
            ("launch", Obs.Str r.r_launch);
            ("block", Obs.Int r.r_block);
            ("word", Obs.Int r.r_word);
            ("tid1", Obs.Int r.r_tid1);
            ("tid2", Obs.Int r.r_tid2);
          ]
    | Divergence d ->
        Obs.event "sanitizer_divergence"
          [
            ("launch", Obs.Str d.d_launch);
            ("block", Obs.Int d.d_block);
            ("syncs", Obs.Int d.d_syncs);
            ("expected", Obs.Int d.d_expected);
          ]

let launch_begin ~name =
  if st.on then begin
    reset_launch_state ();
    st.launch_name <- name
  end

let block_begin b =
  if st.on then begin
    st.block <- b;
    st.in_block <- true;
    st.syncs <- 0;
    Hashtbl.reset st.words
  end

let block_end () =
  if st.on && st.in_block then begin
    (if st.expected_syncs < 0 then st.expected_syncs <- st.syncs
     else if st.syncs <> st.expected_syncs then
       record
         (Divergence
            {
              d_launch = st.launch_name;
              d_block = st.block;
              d_syncs = st.syncs;
              d_expected = st.expected_syncs;
            }));
    st.in_block <- false;
    Hashtbl.reset st.words
  end

let launch_end () = if st.on then reset_launch_state ()

let barrier () =
  if st.on && st.in_block then begin
    st.syncs <- st.syncs + 1;
    Hashtbl.reset st.words
  end

let race_at word kind tid other =
  record
    (Race
       {
         r_launch = st.launch_name;
         r_block = st.block;
         r_word = word;
         r_kind = kind;
         r_tid1 = other;
         r_tid2 = tid;
       })

(* [none] marks an empty identity slot; real identities are caller tids
   (any int except [none]) or fresh negative synthetics. *)
let none = min_int

let word_state w =
  match Hashtbl.find_opt st.words w with
  | Some s -> s
  | None ->
      let s = { wtid = none; rtid1 = none; rtid2 = none } in
      Hashtbl.replace st.words w s;
      s

let access ~write ?tids addrs =
  if st.on && st.in_block then
    Array.iteri
      (fun i a ->
        match a with
        | None -> ()
        | Some w ->
            let tid =
              match tids with
              | Some t when i < Array.length t -> t.(i)
              | _ ->
                  st.fresh_tid <- st.fresh_tid - 1;
                  st.fresh_tid
            in
            let s = word_state w in
            if write then begin
              if s.wtid <> none && s.wtid <> tid then
                race_at w `Write_write tid s.wtid;
              (if s.rtid1 <> none then
                 if s.rtid1 <> tid then race_at w `Write_read tid s.rtid1
                 else if s.rtid2 <> none then race_at w `Write_read tid s.rtid2);
              s.wtid <- tid
            end
            else begin
              if s.wtid <> none && s.wtid <> tid then
                race_at w `Write_read tid s.wtid;
              if s.rtid1 = none then s.rtid1 <- tid
              else if s.rtid1 <> tid && s.rtid2 = none then s.rtid2 <- tid
            end)
      addrs
