(** Recorded warp-event streams for tile-class memoization.

    A {!stream} is the complete event sequence of one representative
    block of a hybrid launch, with global byte addresses tagged by the
    array region they fall in. [Sim.replay_stream] replays it for
    another block of the same class by adding a per-region byte delta to
    every global address and recomputing coalescing/cache behaviour from
    the translated addresses — nothing cache-related is memoized, so the
    replay is exact at any alignment. Shared-memory events carry only
    their transaction counts: shared addresses are tile-relative
    (identical across a class) or shifted uniformly, and a uniform shift
    rotates the bank assignment without changing the conflict count.

    Streams are recorded by [Sim.record_begin]/[record_end] and consumed
    by [Sim.replay_stream]; the hybrid executor owns the per-class memo
    table. *)

type ev =
  | Gload_run of { region : int; addr : int; n : int }
      (** coalesced load of [n] consecutive words at byte [addr] *)
  | Gstore_run of { region : int; addr : int; n : int; serial : bool }
  | Gload_lanes of { region : int; addrs : int array }
      (** ascending per-lane byte addresses (gapped copy-in rows) *)
  | Gstore_lanes of { region : int; addrs : int array; serial : bool }
  | Shared_load of { transactions : int }
  | Shared_store of { transactions : int }
  | Flops of { active : int; per_lane : int }
  | Sync
  | Compute of {
      stmt : int;
      tstep : int;
      wregion : int;
      waddr : int;
      sregions : int array;
      srcs : int array;
      n : int;
    }

type stream

val create : unit -> stream
val push : stream -> ev -> unit
val length : stream -> int

val mem_events : stream -> int
(** Memory events only (the [sim.addr_streams_replayed] unit). *)

val iter : stream -> f:(ev -> unit) -> unit
