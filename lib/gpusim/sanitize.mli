(** Shared-memory race and barrier-divergence sanitizer for the GPU
    simulator.

    When enabled, {!Sim} reports every shared-memory access (with an
    optional per-lane thread identity), every [__syncthreads] barrier and
    the block/launch structure here. The sanitizer checks, per block of a
    launch:

    - {b write/write races}: two different threads store to the same
      shared word within one barrier interval;
    - {b write/read races}: a thread stores to a shared word that a
      different thread loads within the same barrier interval (in either
      order — without a barrier between them the CUDA model gives the
      read no defined value);
    - {b barrier divergence}: two blocks of the same launch execute a
      different number of barriers, the trace-level shadow of
      [__syncthreads] under divergent control flow.

    Accesses by the {e same} thread are never racy (a thread may read its
    own cell and overwrite it). Lanes without a thread identity are given
    a fresh synthetic one, which errs towards reporting.

    The sanitizer is an explicitly enabled mode (mirroring
    {!Hextile_obs.Obs}): scheme executors stay oblivious, and the fuzz
    harness switches it on around the runs it wants audited. Findings are
    recorded here and additionally emitted as [Obs] events
    ([sanitizer_race] / [sanitizer_divergence]) when tracing is on.

    All sanitizer state is domain-local: each domain of a
    [Hextile_par.Par] pool sees its own independent sanitizer, so
    parallel fuzz iterations may enable/disable it freely, and {!Sim}
    runs parallel blocks under {!capture_block} on the workers and
    merges the per-block reports deterministically (in the scrambled
    block order, exactly like the sequential path) with
    {!absorb_block_reports}. *)

type race = {
  r_launch : string;
  r_block : int;
  r_word : int;  (** shared-memory word index within the block *)
  r_kind : [ `Write_write | `Write_read ];
  r_tid1 : int;
  r_tid2 : int;
}

type divergence = {
  d_launch : string;
  d_block : int;
  d_syncs : int;  (** barriers this block executed *)
  d_expected : int;  (** barriers the launch's first block executed *)
}

type finding = Race of race | Divergence of divergence

val enable : unit -> unit
val disable : unit -> unit
val enabled : unit -> bool

val reset : unit -> unit
(** Clear recorded findings and all per-launch state. *)

val findings : unit -> finding list
(** Findings recorded since the last [reset], in detection order.
    Recording is capped (see [dropped]); detection itself is not. *)

val dropped : unit -> int
(** Findings beyond the recording cap (counted, not stored). *)

val pp_finding : finding Fmt.t

(** {2 Simulator hooks} — called by {!Sim}; no-ops when disabled. *)

val launch_begin : name:string -> unit
val block_begin : int -> unit
val block_end : unit -> unit
val launch_end : unit -> unit
val barrier : unit -> unit

val access :
  write:bool -> ?tids:int array -> int option array -> unit
(** One warp-level shared-memory access: [tids.(i)] is the thread
    identity of lane [i] (parallel to the word-index array; lanes with
    [None] addresses are ignored). Without [tids], every lane gets a
    fresh synthetic identity (negative, restarting per block). *)

(** {2 Parallel block capture} — used by {!Sim} when a launch runs its
    blocks across a domain pool. *)

type block_report
(** The sanitizer outcome of one block: its barrier count plus the race
    findings detected while it ran (in detection order). *)

val capture_block : name:string -> block:int -> (unit -> unit) -> block_report
(** Run one block's simulation on the {e current} domain with a fresh,
    enabled sanitizer and return its report. Divergence checking is
    deferred to {!absorb_block_reports} (it needs the cross-block
    expected barrier count); the domain's sanitizer is switched off
    again on exit. *)

val absorb_block_reports : block_report array -> unit
(** Merge per-block reports into the calling domain's (enabled)
    sanitizer in array order: race findings are re-counted against the
    recording cap and the divergence check runs per report, reproducing
    the sequential path bit-for-bit when the array is in the launch's
    scrambled block order. No-op when the sanitizer is disabled. *)
