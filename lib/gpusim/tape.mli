(** Flat register-machine tapes for warp-batched statement evaluation.

    The closure-tree evaluator of [Schemes.Common.compile_stmt] pays a
    closure call per expression node per lane. A tape is the same
    expression flattened once into an array of register-to-register
    instructions evaluated over structure-of-arrays 32-lane buffers: one
    {!exec} call blits the statement's distinct reads into source
    registers, runs each instruction as a tight loop over the active
    lanes, and blits the result register back into the output grid.
    Per-lane evaluation order matches the closure interpreter's
    post-order walk exactly, so results are bit-identical.

    Tapes are built by [Schemes.Common] (which knows the statement and
    grid shapes) via {!make}; this module only defines the ISA and the
    evaluator. *)

type instr =
  | Const of { dst : int; v : float }
  | Neg of { dst : int; a : int }
  | Add of { dst : int; a : int; b : int }
  | Sub of { dst : int; a : int; b : int }
  | Mul of { dst : int; a : int; b : int }
  | Div of { dst : int; a : int; b : int }

type t = private {
  nsrcs : int;  (** registers [0..nsrcs-1] are load destinations *)
  nregs : int;
  result : int;  (** register holding the statement value *)
  instrs : instr array;
}

val lanes : int
(** Warp width (32): the lane capacity of every register. *)

val make : nsrcs:int -> nregs:int -> result:int -> instrs:instr array -> t
(** Validates that every register index is in [0, nregs), so {!exec} can
    run without per-access bounds checks. *)

val length : t -> int
(** Instruction count (for the [sim.tape_instrs] counter). *)

type scratch = float array
(** Register file: [nregs * lanes] floats, register-major. Reused across
    rows; one per domain (never shared — see [Schemes.Common]). *)

val scratch : t -> scratch
val scratch_fits : t -> scratch -> bool

val exec :
  t ->
  scratch ->
  datas:float array array ->
  bases:int array ->
  dx:int ->
  n:int ->
  out:float array ->
  out_base:int ->
  unit
(** Evaluate [n <= lanes] consecutive lanes: source register [s] is
    loaded from [datas.(s).(bases.(s) + dx + j)] for lane [j], and the
    result register is stored to [out.(out_base + j)]. The caller
    guarantees (by validating the row's endpoints) that every
    [bases.(s) + dx .. bases.(s) + dx + n - 1] and
    [out_base .. out_base + n - 1] range is in bounds; [Array.blit]'s own
    checks backstop that invariant. *)
