(** Flat register-machine tapes for warp-batched statement evaluation.

    The closure-tree evaluator of [Schemes.Common.compile_stmt] pays a
    closure call per expression node per lane. A tape is the same
    expression flattened once into an array of register-to-register
    instructions evaluated over structure-of-arrays 32-lane buffers: one
    {!exec} call blits the statement's distinct reads into source
    registers, runs each instruction as a tight loop over the active
    lanes, and blits the result register back into the output grid.
    Per-lane evaluation order matches the closure interpreter's
    post-order walk exactly, so results are bit-identical.

    Tapes are built by [Schemes.Common] (which knows the statement and
    grid shapes) via {!make}; this module only defines the ISA and the
    evaluator. *)

type instr =
  | Const of { dst : int; v : float }
  | Neg of { dst : int; a : int }
  | Add of { dst : int; a : int; b : int }
  | Sub of { dst : int; a : int; b : int }
  | Mul of { dst : int; a : int; b : int }
  | Div of { dst : int; a : int; b : int }

type t = private {
  nsrcs : int;  (** registers [0..nsrcs-1] are load destinations *)
  nregs : int;
  result : int;  (** register holding the statement value *)
  instrs : instr array;
}

val lanes : int
(** Warp width (32): the lane capacity of every register. *)

val make : nsrcs:int -> nregs:int -> result:int -> instrs:instr array -> t
(** Validates that every register index is in [0, nregs), so {!exec} can
    run without per-access bounds checks. *)

val length : t -> int
(** Instruction count (for the [sim.tape_instrs] counter). *)

type scratch = float array
(** Register file: [nregs * lanes] floats, register-major. Reused across
    rows; one per domain (never shared — see [Schemes.Common]). *)

val scratch : t -> scratch
val scratch_fits : t -> scratch -> bool

val exec :
  t ->
  scratch ->
  datas:float array array ->
  bases:int array ->
  dx:int ->
  n:int ->
  out:float array ->
  out_base:int ->
  unit
(** Evaluate [n <= lanes] consecutive lanes: source register [s] is
    loaded from [datas.(s).(bases.(s) + dx + j)] for lane [j], and the
    result register is stored to [out.(out_base + j)]. The caller
    guarantees (by validating the row's endpoints) that every
    [bases.(s) + dx .. bases.(s) + dx + n - 1] and
    [out_base .. out_base + n - 1] range is in bounds; [Array.blit]'s own
    checks backstop that invariant. *)

(** {2 Fused run plans}

    The analytic epilogue replays compute rows once per derived block —
    billions of lanes on the paper's full-size instances — so the
    per-lane constant of {!exec} (a scratch pass per source blit, per
    instruction and per result blit) is the simulation's dominant cost.
    A {!plan} is the tape peephole-compiled into fused superinstructions
    (left-assoc sum windows, constant-factor multiplies, [a - k*b],
    [k1*a + k2*b]) that read sources directly from the grids, keep
    single-use intermediates in scratch-free fusion, and write the
    result straight to the output grid.

    Plans are bit-exact: each superinstruction performs exactly the
    float operations of the instruction subsequence it replaces, on the
    same operands in the same per-lane order — fusion removes memory
    materializations, never arithmetic — so [exec_plan] and a {!exec}
    loop over the same lanes produce identical IEEE doubles. *)

type plan

val strip : int
(** Lane width of one fused pass (256): plans chunk a run internally, so
    callers pass whole rows of any length. *)

val plan : t -> plan

val plan_passes : plan -> int
(** Fused passes per strip window (diagnostic; compare [length t + nsrcs
    + 1] scratch passes for {!exec}). *)

val plan_scratch_words : plan -> int
(** Scratch floats [exec_plan] needs: materialized registers × {!strip}. *)

val exec_plan :
  plan ->
  scratch ->
  datas:float array array ->
  bases:int array ->
  dx:int ->
  n:int ->
  out:float array ->
  out_base:int ->
  unit
(** Evaluate [n] consecutive lanes (any [n >= 0]): lane [j] reads source
    [s] at [datas.(s).(bases.(s) + dx + j)] and stores the result to
    [out.(out_base + j)] — the same addressing contract as {!exec}, but
    over a whole run instead of one warp. Row endpoints of every source
    the plan reads and of the output are bounds-checked once up front;
    the fused loops then run unchecked. *)
