(** The CUDA-execution-model simulator.

    Scheme executors describe their kernels as OCaml code that walks
    blocks and warps, reporting every memory instruction with the concrete
    per-lane addresses; the simulator derives coalescing (128-byte
    transactions), L2/DRAM traffic, shared-memory bank conflicts and an
    analytic execution time per kernel launch (roofline over compute,
    DRAM, L2 and shared-memory throughput, plus launch and barrier
    overheads).

    Blocks of one launch are executed sequentially but in a scrambled
    order, so schedules that wrongly assume an ordering between
    concurrent blocks tend to fail functional verification.

    With a [Hextile_par.Par] pool, {!launch} distributes contiguous
    chunks of the scrambled order across domains. Each domain simulates
    against a private shadow (its own counter accumulator and L1 replica)
    and records its per-block L2 access traces; at the join the chunk
    counters are added in chunk order and the traces are replayed through
    the shared L2 in the scrambled block order — so every counter,
    including L2/DRAM traffic and sanitizer findings, is bit-identical to
    the sequential run for any jobs value. *)

type t = {
  dev : Device.t;
  total : Counters.t;
  l2 : L2.t;
  l1 : L2.t;  (** per-SM L1 model, reset at block boundaries *)
  addr : Addrmap.t;
  mutable launches : launch list;
  mutable blocks_in_flight : int;  (** of the current launch *)
  epoch : int Atomic.t;  (** bumped per launch; part of {!generation} *)
  blocks_memoized : int Atomic.t;
      (** blocks retired by {!replay_stream} instead of live execution *)
  blocks_analytic : int Atomic.t;
      (** blocks retired by analytic class scaling (counters derived from
          a representative's delta × class population, functional state
          from a compute-only tape replay) — never instanced *)
  tile_classes : int Atomic.t;
      (** tile classes enumerated by the analytic mode, summed over
          launches *)
  analytic_blit_rows : int Atomic.t;
      (** recorded compute rows retired through coalesced bulk runs by
          the analytic epilogue's grid reconstruction (the [blit_rows]
          summary key) — deterministic at every jobs value *)
  analytic_replay_lines : int Atomic.t;
      (** L2 line probes issued by the batched compressed-trace DRAM
          replay (the [replay_lines] summary key) *)
  mutable analytic_epilogue_s : float;
      (** analytic epilogue wall time, summed over launches (main
          domain only; nondeterministic — never part of compared
          artifacts) *)
  mutable analytic_derive_s : float;  (** …its counter-derivation stage *)
  mutable analytic_dram_s : float;  (** …its sequential L2 replay stage *)
  mutable analytic_grids_s : float;  (** …its grid reconstruction stage *)
}

and launch = {
  lname : string;
  blocks : int;
  threads : int;
  shared_bytes : int;
  delta : Counters.t;
  time_s : float;
  bottleneck : string;
      (** the roofline resource that dominated this launch: "compute",
          "dram", "l2", "shared" or "lsu" *)
}

val create : Device.t -> t

val launch :
  ?pool:Hextile_par.Par.pool ->
  ?post:(unit -> unit) ->
  ?wave_of:(int -> int) ->
  t ->
  name:string ->
  blocks:int ->
  threads:int ->
  shared_bytes:int ->
  f:(int -> unit) ->
  unit
(** Run a kernel: [f block_id] once per block (scrambled order). [post],
    if given, runs on the main domain after every block has retired (and,
    in a parallel run, after the chunk counters and L2 traces have been
    absorbed) but before the launch's counter delta and roofline time are
    captured: warp events and counter mutations made inside [post] reach
    [t.total] and the shared L2 directly and are attributed to this
    launch. The analytic tile-class mode uses it to add derived counters
    so they feed the same launch-time model as instanced ones. Raises
    [Invalid_argument] if [threads] or [shared_bytes] exceed the device
    limits. When {!Sanitize.enabled}, the launch/block structure is
    reported to the sanitizer, which checks shared-memory races between
    barriers and barrier-count uniformity across blocks.

    [pool] runs the blocks across the pool's domains (blocks of one
    launch are independent by the CUDA model; [f] must not mutate shared
    simulator state beyond the warp-event calls and per-cell grid
    writes). All counters and findings are bit-identical to the
    sequential run; with a 1-job pool, from inside another parallel
    region, or without [pool] the exact sequential path runs.

    [wave_of], parallel path only, assigns each block id to a wave
    (small dense non-negative ints); waves execute in ascending order
    with a full pool join between them, while counter absorption and L2
    trace replay still happen once, in canonical scrambled-position
    order, after the last wave — so waves change scheduling but never
    results. The hybrid executor uses two waves to publish one
    representative tile-class recording (wave 0) before every member
    block replays it (wave 1), without spinning or racing on the shared
    table. The sequential path ignores [wave_of]: the scrambled order
    already visits each class's representative first (see
    {!block_order}).

    When {!Hextile_obs.Timeline} recording is enabled, every launch
    emits a ["sim.launch"] slice, and the parallel path additionally
    emits per-block ["sim.block"] slices with ["sim.encode"] instants
    (arg = L2-trace events encoded), plus ["sim.absorb"] and
    ["sim.l2_replay"] slices around the sequential join phases — the
    wall-clock cost of the determinism contract. The encode path reuses
    one persistent trace buffer and L1 replica per domain (rewound per
    launch), so steady state adds no per-event or per-block allocation. *)

val block_order : blocks:int -> int array
(** The deterministic scrambled order in which {!launch} visits block
    ids — position [k] holds the id of the [k]-th block executed (on
    every jobs value; parallel chunks split this same order
    contiguously). Exposed so schedulers can agree with the simulator on
    which block of a tile class runs first (the class representative). *)

(** {2 Warp-level events} — call from inside [f]. Address arrays have one
    entry per lane ([None] = inactive lane) and at most [warp_size]
    entries. Global addresses are bytes (from {!Addrmap.addr}); shared
    addresses are word indices into the block's shared memory. *)

val global_load_warp : t -> int option array -> unit
val global_store_warp : ?serial:bool -> t -> int option array -> unit
(** [serial] marks stores of a dedicated copy-out phase; their time is
    added on top of the roofline rather than overlapped. *)

val shared_load_warp : ?replay:int -> ?tids:int array -> t -> int option array -> unit
(** [replay] multiplies the bank-conflict transaction count (models
    layout-induced replays that the address trace alone cannot see).
    [tids] gives each lane's thread identity to the {!Sanitize} race
    checker (parallel to the address array); ignored unless the sanitizer
    is enabled. *)

val shared_store_warp : ?replay:int -> ?tids:int array -> t -> int option array -> unit
val flops_warp : t -> active:int -> per_lane:int -> unit
val sync : t -> unit

(** {2 Warp-batched events}

    Allocation-free forms of the warp events for the tape engine: a
    contiguous word run is described by its first byte address and lane
    count, a gapped warp by a nondecreasing array of per-lane byte (or
    shared-word) addresses. Counters and the cache access sequence are
    bit-identical to the per-lane forms on the materialized addresses
    (distinct lines are visited highest-first, matching the per-lane
    path's discovery order). These forms carry no thread identities and
    do not feed {!Sanitize}; callers must use the per-lane forms when
    the sanitizer is enabled. *)

val global_load_run : t -> addr:int -> n:int -> unit
val global_store_run : ?serial:bool -> t -> addr:int -> n:int -> unit
val global_load_lanes : t -> int array -> unit
val global_store_lanes : ?serial:bool -> t -> int array -> unit

val shared_load_run : ?replay:int -> t -> n:int -> unit
(** [n] consecutive shared words: the conflict count depends only on the
    lane count ([ceil n/banks]), never on the base word. *)

val shared_store_run : ?replay:int -> t -> n:int -> unit

val shared_load_lanes : ?replay:int -> t -> int array -> unit
(** Strictly ascending shared-word addresses (distinct words). *)

val shared_store_lanes : ?replay:int -> t -> int array -> unit

(** {2 Tile-class address-stream memoization}

    The hybrid executor records one representative block per tile class
    with {!record_begin}/{!record_end} and replays the stream for the
    other blocks of the class with {!replay_stream}, translating global
    addresses by per-region byte deltas. Only the batched events above
    (plus {!flops_warp}, {!sync} and {!record_compute}) are recordable;
    any per-lane warp event invalidates the recording, so unsupported
    shapes silently fall back to live execution. Recording state is
    domain-local, mirroring the parallel-execution shadows. *)

val record_begin : t -> region_of:(int -> int) -> unit
(** Start recording the current domain's events. [region_of] classifies
    a global byte address into the replay delta index (negative =
    unclassifiable, which invalidates the recording). *)

val record_end : t -> Tileclass.stream option
(** Stop recording; [None] if the recording was invalidated. *)

val recording_active : t -> bool
val record_invalidate : t -> unit

val record_compute :
  t ->
  stmt:int ->
  tstep:int ->
  waddr:int ->
  srcs:int array ->
  n:int ->
  unit
(** Record the functional execution of one statement row (write base and
    per-source base byte addresses); takes ownership of [srcs]. *)

val replay_stream :
  t ->
  Tileclass.stream ->
  deltas:int array ->
  compute:
    (stmt:int ->
    tstep:int ->
    wregion:int ->
    waddr:int ->
    sregions:int array ->
    srcs:int array ->
    n:int ->
    unit) ->
  unit
(** Replay a recorded stream with per-region byte deltas added to every
    global address (line ranges and cache behaviour are recomputed, so
    the replay is exact). [Compute] events are passed through raw —
    [compute] translates the addresses itself and runs the statement's
    tape. Bumps [blocks_memoized] and the [sim.blocks_memoized] /
    [sim.addr_streams_replayed] Obs counters. *)

val live_counters : t -> Counters.t
(** The counter accumulator the calling domain is currently simulating
    into: the parallel shadow's private counters inside a pooled
    {!launch}, [t.total] otherwise. A block body can [Counters.copy] /
    [Counters.diff] this around its own work to capture its exact
    per-block delta (the shadow is only ever mutated by the owning
    domain). Note the DRAM components of such a delta are
    placement-dependent: sequential blocks charge the shared L2 inline
    while pooled blocks defer it to trace replay — so per-block deltas
    are jobs-invariant only outside [dram_read/write_transactions]. *)

val generation : t -> int * int
(** Identity of (launch, executing chunk): the launch epoch plus the
    current parallel shadow's unique serial (0 when sequential).
    Domain-local scratch keyed by this (e.g. the tape engine's compiled
    scratch rows) is valid for at most one launch on one chunk and can
    never leak across launches or domains. The shared tile-class memo is
    {e not} keyed by this any more — it is a per-launch publish-once
    table with precomputed class representatives, so memoized-block
    counts are identical across every jobs value. *)

(** {2 Results} *)

val occupancy : Device.t -> blocks:int -> float
(** Fraction of the device's SMs kept busy by a launch of [blocks]
    blocks, in (0, 1]. *)

val roofline_components : Device.t -> blocks:int -> Counters.t -> (string * float) list
(** Per-resource times of the launch-time roofline (resource name,
    seconds if that resource alone were the limit). *)

val bottleneck_of : Device.t -> blocks:int -> Counters.t -> string
(** Name of the slowest roofline resource for these counter deltas. *)

val encode_cost_per_event_s : unit -> float
(** Measured steady-state cost of one L2-trace [tbuf] push (amortised
    growth included). Encoding happens inline with block compute on the
    parallel path, so the timeline cannot slice it out per event; the
    bench parattr attribution multiplies the recorded event counts (the
    ["sim.encode"] instant args) by this calibration instead. *)

val kernel_time : t -> float
(** Sum of launch times. *)

val transfer_time : t -> bytes:int -> float
(** Host↔device copy estimate over PCIe for [bytes] in each direction. *)

val pp_launches : t Fmt.t
