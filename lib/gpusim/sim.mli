(** The CUDA-execution-model simulator.

    Scheme executors describe their kernels as OCaml code that walks
    blocks and warps, reporting every memory instruction with the concrete
    per-lane addresses; the simulator derives coalescing (128-byte
    transactions), L2/DRAM traffic, shared-memory bank conflicts and an
    analytic execution time per kernel launch (roofline over compute,
    DRAM, L2 and shared-memory throughput, plus launch and barrier
    overheads).

    Blocks of one launch are executed sequentially but in a scrambled
    order, so schedules that wrongly assume an ordering between
    concurrent blocks tend to fail functional verification.

    With a [Hextile_par.Par] pool, {!launch} distributes contiguous
    chunks of the scrambled order across domains. Each domain simulates
    against a private shadow (its own counter accumulator and L1 replica)
    and records its per-block L2 access traces; at the join the chunk
    counters are added in chunk order and the traces are replayed through
    the shared L2 in the scrambled block order — so every counter,
    including L2/DRAM traffic and sanitizer findings, is bit-identical to
    the sequential run for any jobs value. *)

type t = {
  dev : Device.t;
  total : Counters.t;
  l2 : L2.t;
  l1 : L2.t;  (** per-SM L1 model, reset at block boundaries *)
  addr : Addrmap.t;
  mutable launches : launch list;
  mutable blocks_in_flight : int;  (** of the current launch *)
}

and launch = {
  lname : string;
  blocks : int;
  threads : int;
  shared_bytes : int;
  delta : Counters.t;
  time_s : float;
  bottleneck : string;
      (** the roofline resource that dominated this launch: "compute",
          "dram", "l2", "shared" or "lsu" *)
}

val create : Device.t -> t

val launch :
  ?pool:Hextile_par.Par.pool ->
  t ->
  name:string ->
  blocks:int ->
  threads:int ->
  shared_bytes:int ->
  f:(int -> unit) ->
  unit
(** Run a kernel: [f block_id] once per block (scrambled order). Raises
    [Invalid_argument] if [threads] or [shared_bytes] exceed the device
    limits. When {!Sanitize.enabled}, the launch/block structure is
    reported to the sanitizer, which checks shared-memory races between
    barriers and barrier-count uniformity across blocks.

    [pool] runs the blocks across the pool's domains (blocks of one
    launch are independent by the CUDA model; [f] must not mutate shared
    simulator state beyond the warp-event calls and per-cell grid
    writes). All counters and findings are bit-identical to the
    sequential run; with a 1-job pool, from inside another parallel
    region, or without [pool] the exact sequential path runs. *)

(** {2 Warp-level events} — call from inside [f]. Address arrays have one
    entry per lane ([None] = inactive lane) and at most [warp_size]
    entries. Global addresses are bytes (from {!Addrmap.addr}); shared
    addresses are word indices into the block's shared memory. *)

val global_load_warp : t -> int option array -> unit
val global_store_warp : ?serial:bool -> t -> int option array -> unit
(** [serial] marks stores of a dedicated copy-out phase; their time is
    added on top of the roofline rather than overlapped. *)

val shared_load_warp : ?replay:int -> ?tids:int array -> t -> int option array -> unit
(** [replay] multiplies the bank-conflict transaction count (models
    layout-induced replays that the address trace alone cannot see).
    [tids] gives each lane's thread identity to the {!Sanitize} race
    checker (parallel to the address array); ignored unless the sanitizer
    is enabled. *)

val shared_store_warp : ?replay:int -> ?tids:int array -> t -> int option array -> unit
val flops_warp : t -> active:int -> per_lane:int -> unit
val sync : t -> unit

(** {2 Results} *)

val occupancy : Device.t -> blocks:int -> float
(** Fraction of the device's SMs kept busy by a launch of [blocks]
    blocks, in (0, 1]. *)

val roofline_components : Device.t -> blocks:int -> Counters.t -> (string * float) list
(** Per-resource times of the launch-time roofline (resource name,
    seconds if that resource alone were the limit). *)

val bottleneck_of : Device.t -> blocks:int -> Counters.t -> string
(** Name of the slowest roofline resource for these counter deltas. *)

val kernel_time : t -> float
(** Sum of launch times. *)

val transfer_time : t -> bytes:int -> float
(** Host↔device copy estimate over PCIe for [bytes] in each direction. *)

val pp_launches : t Fmt.t
