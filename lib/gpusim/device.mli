(** GPU device models.

    Parameters approximate the two boards of the paper's evaluation: a
    GeForce GTX 470 (Fermi GF100, 14 SMs × 32 cores, 1.215 GHz shader
    clock, 133.9 GB/s GDDR5) and an NVS 5200M (Fermi GF108 mobile, 2 SMs ×
    48 cores, 1.344 GHz, 14.4 GB/s DDR3). The efficiency factors are
    calibration constants of the analytic timing model, not measurements. *)

type t = {
  name : string;
  sms : int;
  cores_per_sm : int;
  clock_ghz : float;
  dram_bw_gbs : float;  (** peak DRAM bandwidth *)
  dram_efficiency : float;  (** achievable fraction of peak *)
  l1_bytes : int;  (** per-SM L1, modelled per-block; 0 disables *)
  l2_bytes : int;
  l2_assoc : int;
  l2_bw_gbs : float;
  line_bytes : int;  (** global-memory transaction size (128 B) *)
  warp_size : int;
  banks : int;  (** shared-memory banks *)
  shared_mem_bytes : int;  (** per block *)
  max_threads_per_block : int;
  flops_per_core_per_cycle : float;
  issue_efficiency : float;
      (** fraction of peak instruction issue the memory-heavy stencil
          kernels sustain *)
  launch_overhead_s : float;
  sync_cycles : float;  (** cost of one __syncthreads per block *)
  gmem_request_cycles : float;
      (** LSU cycles per warp-level global memory request (L1-hit issue
          cost; shared-memory requests cost 1 cycle) *)
  pcie_bw_gbs : float;
}

val gtx470 : t
val nvs5200m : t
val by_name : string -> t
(** "gtx470" or "nvs5200"; raises [Not_found]. *)

val peak_gflops : t -> float
val pp : t Fmt.t
