(** The benchmark stencils of the paper (Table 3), plus small programs
    used by examples and tests.

    All programs are parametric in the grid extent [N] and the time trip
    count [T]; the Table 3 instantiations are [N = 3072, T = 512] for the
    2D kernels and [N = 384, T = 128] for the 3D kernels. The per-statement
    loads/FLOPs match the paper's Table 3 row by row. *)

open Hextile_ir

val jacobi2d : Stencil.t
(** The Figure 1 kernel: 5-point Jacobi, 5 loads / 5 flops. *)

val laplacian2d : Stencil.t  (** 5 loads, 6 flops *)

val heat2d : Stencil.t  (** 9 loads, 9 flops *)

val gradient2d : Stencil.t  (** 5 loads, 15 flops *)

val fdtd2d : Stencil.t  (** 3 statements: 3/3, 3/3, 5/5 loads/flops *)

val laplacian3d : Stencil.t  (** 7 loads, 8 flops *)

val heat3d : Stencil.t  (** 27 loads, 27 flops *)

val gradient3d : Stencil.t  (** 7 loads, 20 flops *)

val heat1d : Stencil.t
(** 3-point 1D heat — small test workload (the hybrid method degenerates
    to plain hexagonal tiling here, as the paper notes). *)

val contrived : Stencil.t
(** The Section 3.3.2 example [A[t][i] = f(A[t-2][i-2], A[t-1][i+2])],
    whose dependence distances are [{(1,-2); (2,2)}]. *)

val wave2d : Stencil.t
(** Second-order wave equation, triple-buffered:
    [A⟨t+2⟩ = 2·A⟨t+1⟩ - A⟨t⟩ + c·∇²A⟨t+1⟩] — exercises dependences with
    time distance 2 and fold 3. *)

val table3 : Stencil.t list
(** The seven Table 3 benchmarks in row order. *)

val all : Stencil.t list

val find : string -> Stencil.t
(** Look up by [Stencil.name]; raises [Not_found]. *)

val table3_params : Stencil.t -> (string * int) list
(** The paper's data-size/steps instantiation for a Table 3 kernel. *)

val test_params : Stencil.t -> (string * int) list
(** A small instantiation suitable for functional verification. *)
