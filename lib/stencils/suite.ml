open Hextile_ir
open Stencil

let n_ = Affp.param "N"
let nm k = Affp.add_const n_ k

let acc ?(dt = 0) array offsets =
  { array; time_off = dt; offsets = Array.of_list offsets }

let rd ?dt array offsets = Read (acc ?dt array offsets)
let fc f = Fconst f
let ( +! ) a b = Bin (Add, a, b)
let ( -! ) a b = Bin (Sub, a, b)
let ( *! ) a b = Bin (Mul, a, b)

let sum = function
  | [] -> invalid_arg "sum: empty"
  | x :: rest -> List.fold_left ( +! ) x rest

(* A single double-buffered statement over an n-D box [1, N-2]^n. *)
let buffered name ~dims rhs =
  let zeros = List.init dims (fun _ -> 0) in
  {
    name;
    params = [ "N"; "T" ];
    steps = Affp.param "T";
    arrays =
      [ { aname = "A"; extents = Array.make dims n_; fold = Some 2 } ];
    stmts =
      [
        {
          sname = "S0";
          lo = Array.make dims (Affp.const 1);
          hi = Array.make dims (nm (-2));
          write = acc ~dt:1 "A" zeros;
          rhs;
        };
      ];
  }

let center2 = rd ~dt:0 "A" [ 0; 0 ]

let jacobi2d =
  buffered "jacobi2d" ~dims:2
    (fc 0.2
    *! sum
         [
           center2;
           rd "A" [ 1; 0 ];
           rd "A" [ -1; 0 ];
           rd "A" [ 0; 1 ];
           rd "A" [ 0; -1 ];
         ])

let laplacian2d =
  buffered "laplacian2d" ~dims:2
    ((fc 0.125
     *! sum [ rd "A" [ -1; 0 ]; rd "A" [ 1; 0 ]; rd "A" [ 0; -1 ]; rd "A" [ 0; 1 ] ])
    +! (fc 0.5 *! center2))

let heat2d =
  let pts =
    List.concat_map (fun i -> List.map (fun j -> rd "A" [ i; j ]) [ -1; 0; 1 ]) [ -1; 0; 1 ]
  in
  buffered "heat2d" ~dims:2 (fc 0.111 *! sum pts)

let gradient2d =
  (* Per neighbour: 0.25*((nb-c)*(nb-c)) = sub, mul, mul after sharing of
     (nb-c); 4 neighbours + 3 adds = 15 flops, 5 distinct loads — the
     Table 3 row. Sharing is structural: Stencil.flops counts each
     distinct subterm once. *)
  let term off = fc 0.25 *! ((rd "A" off -! center2) *! (rd "A" off -! center2)) in
  buffered "gradient2d" ~dims:2
    (sum [ term [ -1; 0 ]; term [ 1; 0 ]; term [ 0; -1 ]; term [ 0; 1 ] ])

let fdtd2d =
  let io = { aname = "ey"; extents = [| n_; n_ |]; fold = None } in
  {
    name = "fdtd2d";
    params = [ "N"; "T" ];
    steps = Affp.param "T";
    arrays =
      [ io; { io with aname = "ex" }; { io with aname = "hz" } ];
    stmts =
      [
        {
          sname = "Sey";
          lo = [| Affp.const 1; Affp.const 1 |];
          hi = [| nm (-2); nm (-2) |];
          write = acc "ey" [ 0; 0 ];
          rhs =
            rd "ey" [ 0; 0 ]
            -! (fc 0.5 *! (rd "hz" [ 0; 0 ] -! rd "hz" [ -1; 0 ]));
        };
        {
          sname = "Sex";
          lo = [| Affp.const 1; Affp.const 1 |];
          hi = [| nm (-2); nm (-2) |];
          write = acc "ex" [ 0; 0 ];
          rhs =
            rd "ex" [ 0; 0 ]
            -! (fc 0.5 *! (rd "hz" [ 0; 0 ] -! rd "hz" [ 0; -1 ]));
        };
        {
          sname = "Shz";
          lo = [| Affp.const 1; Affp.const 1 |];
          hi = [| nm (-2); nm (-2) |];
          write = acc "hz" [ 0; 0 ];
          rhs =
            rd "hz" [ 0; 0 ]
            -! (fc 0.7
               *! (rd "ex" [ 0; 1 ] -! rd "ex" [ 0; 0 ]
                  +! rd "ey" [ 1; 0 ]
                  -! rd "ey" [ 0; 0 ]));
        };
      ];
  }

let center3 = rd "A" [ 0; 0; 0 ]

let laplacian3d =
  buffered "laplacian3d" ~dims:3
    ((fc 0.1
     *! sum
          [
            rd "A" [ -1; 0; 0 ];
            rd "A" [ 1; 0; 0 ];
            rd "A" [ 0; -1; 0 ];
            rd "A" [ 0; 1; 0 ];
            rd "A" [ 0; 0; -1 ];
            rd "A" [ 0; 0; 1 ];
          ])
    +! (fc 0.4 *! center3))

let heat3d =
  let pts =
    List.concat_map
      (fun i ->
        List.concat_map
          (fun j -> List.map (fun k -> rd "A" [ i; j; k ]) [ -1; 0; 1 ])
          [ -1; 0; 1 ])
      [ -1; 0; 1 ]
  in
  buffered "heat3d" ~dims:3 (fc 0.037 *! sum pts)

let gradient3d =
  let nb off = rd "A" off -! center3 in
  let sq off = nb off *! nb off in
  (* 6*(sub+mul) + 5 adds = 17, * 0.05 = 18, + c*c = 20 flops; distinct
     cells = 7 loads. (The nb/sq sharing mirrors CSE; Analysis counts
     distinct cells.) *)
  buffered "gradient3d" ~dims:3
    ((fc 0.05
     *! sum
          [
            sq [ -1; 0; 0 ];
            sq [ 1; 0; 0 ];
            sq [ 0; -1; 0 ];
            sq [ 0; 1; 0 ];
            sq [ 0; 0; -1 ];
            sq [ 0; 0; 1 ];
          ])
    +! (center3 *! center3))

let heat1d =
  buffered "heat1d" ~dims:1
    (fc 0.33 *! sum [ rd "A" [ -1 ]; rd "A" [ 0 ]; rd "A" [ 1 ] ])

let contrived =
  {
    name = "contrived";
    params = [ "N"; "T" ];
    steps = Affp.param "T";
    arrays = [ { aname = "A"; extents = [| n_ |]; fold = Some 3 } ];
    stmts =
      [
        {
          sname = "S0";
          lo = [| Affp.const 2 |];
          hi = [| nm (-3) |];
          write = acc ~dt:2 "A" [ 0 ];
          rhs = fc 0.5 *! (rd ~dt:0 "A" [ -2 ] +! rd ~dt:1 "A" [ 2 ]);
        };
      ];
  }

let wave2d =
  {
    name = "wave2d";
    params = [ "N"; "T" ];
    steps = Affp.param "T";
    arrays = [ { aname = "A"; extents = [| n_; n_ |]; fold = Some 3 } ];
    stmts =
      [
        {
          sname = "S0";
          lo = [| Affp.const 1; Affp.const 1 |];
          hi = [| nm (-2); nm (-2) |];
          write = acc ~dt:2 "A" [ 0; 0 ];
          rhs =
            (fc 2.0 *! rd ~dt:1 "A" [ 0; 0 ])
            -! rd ~dt:0 "A" [ 0; 0 ]
            +! (fc 0.1
               *! (rd ~dt:1 "A" [ 1; 0 ]
                  +! rd ~dt:1 "A" [ -1; 0 ]
                  +! rd ~dt:1 "A" [ 0; 1 ]
                  +! rd ~dt:1 "A" [ 0; -1 ]
                  -! (fc 4.0 *! rd ~dt:1 "A" [ 0; 0 ])));
        };
      ];
  }

let table3 =
  [ laplacian2d; heat2d; gradient2d; fdtd2d; laplacian3d; heat3d; gradient3d ]

let all = (jacobi2d :: table3) @ [ heat1d; contrived; wave2d ]

let find name = List.find (fun (p : Stencil.t) -> String.equal p.name name) all

let table3_params (p : Stencil.t) =
  if Stencil.spatial_dims p >= 3 then [ ("N", 384); ("T", 128) ]
  else [ ("N", 3072); ("T", 512) ]

let test_params (p : Stencil.t) =
  match Stencil.spatial_dims p with
  | 1 -> [ ("N", 30); ("T", 10) ]
  | 2 -> [ ("N", 20); ("T", 9) ]
  | _ -> [ ("N", 10); ("T", 6) ]
