open Hextile_ir
open Hextile_gpusim
open Hextile_tiling
open Hextile_util
module Obs = Hextile_obs.Obs
module Tl = Hextile_obs.Timeline
module Par = Hextile_par.Par

type reuse = No_reuse | Static | Dynamic

type strategy = {
  use_shared : bool;
  interleave : bool;
  align : bool;
  reuse : reuse;
}

let strategy_of_step = function
  | 'a' -> { use_shared = false; interleave = false; align = false; reuse = No_reuse }
  | 'b' -> { use_shared = true; interleave = false; align = false; reuse = No_reuse }
  | 'c' -> { use_shared = true; interleave = true; align = false; reuse = No_reuse }
  | 'd' -> { use_shared = true; interleave = true; align = true; reuse = No_reuse }
  | 'e' -> { use_shared = true; interleave = true; align = true; reuse = Static }
  | 'f' -> { use_shared = true; interleave = true; align = true; reuse = Dynamic }
  | c -> invalid_arg (Fmt.str "Hybrid_exec.strategy_of_step: %c not in a..f" c)

let best_strategy = strategy_of_step 'f'

type config = {
  h : int;
  w : int array;
  threads : int;
  strategy : strategy;
  register_tile : bool;
      (** unroll the point loop and keep sweep-reusable values in
          registers, eliminating their shared-memory loads (the paper's
          "register tiling" future-work item, cf. the Figure 2 core) *)
}

let default_config (prog : Stencil.t) =
  let dims = Stencil.spatial_dims prog in
  let k = List.length prog.stmts in
  (* smallest h with h+1 a multiple of k, near the paper's picks *)
  let round_h h0 = (((h0 + 1 + k - 1) / k) * k) - 1 in
  match dims with
  | 1 ->
      {
        h = round_h 3;
        w = [| 16 |];
        threads = 64;
        strategy = best_strategy;
        register_tile = false;
      }
  | 2 ->
      {
        h = round_h 3;
        w = [| 4; 32 |];
        threads = 256;
        strategy = best_strategy;
        register_tile = false;
      }
  | _ ->
      (* 2h+2 = 4 time steps per tile, as the paper reports for 3D; the
         Table 4 sizes (h=2, w=(7,10,32)) exceed a literal rectangular-box
         shared allocation and can be requested explicitly. *)
      {
        h = round_h 1;
        w = Array.concat [ [| 4; 6 |]; Array.make (dims - 2) 32 ];
        threads = 192;
        strategy = best_strategy;
        register_tile = false;
      }

(* x-alignment translation offsets (Section 4.2.3): make the generic
   tile's first x-load line-aligned, assuming the innermost extent is a
   multiple of the warp size. *)
let align_offsets (t : Hybrid.t) ~reuse =
  if t.dims < 2 then fun _ -> 0
  else begin
    let c = t.classical.(t.dims - 2) in
    let fl = Rat.floor (Rat.mul_int c.delta1 ((2 * t.h) + 1)) in
    fun (rx : int) ->
      (* Residue of the first x-load of a generic interior tile: without
         reuse the whole box row starts at [S·w - ⌊δ1(2h+1)⌋ - rx]; with
         reuse only the fresh strip is loaded, starting at
         [prev box hi + 1 ≡ rx (mod 32)]. *)
      let base = match reuse with No_reuse -> -fl - rx | Static | Dynamic -> rx in
      Intutil.fmod (-base) 32
  end

(* Tile-class memo state is a per-launch shared read-once/replay-many
   context, not a per-domain table: class roles and representatives are
   precomputed against the simulator's canonical block order before the
   launch, the representative records its stream once (wave 0), and
   every member block — on whatever domain it lands — replays the
   published stream with its own translation (wave 1). One recording per
   class per launch, at every jobs value, with identical memoized-block
   counts; the wave join is the publication barrier, so no domain ever
   spins on or races for an unpublished stream. *)

(* Cross-launch class cache entry (analytic mode): everything needed to
   derive a block of an equal-signature class in a later launch without
   re-executing a representative — the recording rep's s0 origin (for the
   translation delta), its exact per-block counter delta, its compressed
   DRAM line runs and its fused-plan compute rows. *)
type cached_class = {
  c_s00 : int;
  c_delta : Counters.t;
  c_runs : int array;
  c_crows : Common.crows;
}

let rec gcd a b = if b = 0 then a else gcd b (a mod b)

let run ?pool ?engine ?(analytic = false) ?(name = "hybrid") ?config prog env dev =
  let ctx = Common.make_ctx ?engine prog env dev in
  let config = match config with Some c -> c | None -> default_config prog in
  let strat = config.strategy in
  let t = Hybrid.make prog ~h:config.h ~w:config.w in
  let dims = t.dims in
  let h = config.h in
  let height = (2 * h) + 2 in
  let ubound = Hybrid.domain_u_bound t ctx.env in
  (* global domain bounds across statements *)
  let glo = Array.init dims (fun d -> Array.fold_left (fun m l -> min m l.(d)) max_int ctx.lo) in
  let ghi = Array.init dims (fun d -> Array.fold_left (fun m x -> max m x.(d)) min_int ctx.hi) in
  (* alignment: translate arrays so tile x-loads start on line boundaries *)
  if strat.align then begin
    let off_of = align_offsets t ~reuse:strat.reuse in
    List.iter
      (fun (decl : Stencil.array_decl) ->
        let rx =
          List.fold_left
            (fun m (s : Stencil.stmt) ->
              List.fold_left
                (fun m (a : Stencil.access) ->
                  if String.equal a.array decl.aname then
                    max m (abs a.offsets.(Array.length a.offsets - 1))
                  else m)
                m
                (s.write :: Stencil.reads s))
            0 prog.stmts
        in
        Addrmap.register ctx.sim.addr (Grid.find ctx.grids decl.aname)
          ~offset_floats:(off_of rx))
      prog.arrays
  end;
  (* Region table for address-stream memoization: blocks of one launch
     differ only by a translation along s0, so every global address of a
     same-class block is the representative's address plus a per-array
     byte delta of 4·Δs00·stride0. Bases are read after alignment
     registration so the deltas see the translated layout. *)
  let regions =
    Array.of_list
      (List.map
         (fun (d : Stencil.array_decl) -> Grid.find ctx.grids d.aname)
         prog.arrays)
  in
  let rbases = Array.map (fun g -> Addrmap.base ctx.sim.addr g) regions in
  let rlens = Array.map (fun (g : Grid.t) -> 4 * Array.length g.data) regions in
  let stride0s =
    Array.map
      (fun (g : Grid.t) ->
        let nd = Array.length g.dims in
        let p = ref 1 in
        for d = nd - dims + 1 to nd - 1 do
          p := !p * g.dims.(d)
        done;
        !p)
      regions
  in
  let region_of addr =
    let r = ref (-1) in
    let n = Array.length regions in
    let i = ref 0 in
    while !r < 0 && !i < n do
      if addr >= rbases.(!i) && addr < rbases.(!i) + rlens.(!i) then r := !i;
      incr i
    done;
    !r
  in
  let memo_ok = ctx.engine = Common.Tape && not (Sanitize.enabled ()) in
  (* Analytic (hierarchical) mode additionally needs the class
     translation to be a cache-bijection: one shared s0 stride across
     every array region, moving same-class blocks by a whole number of
     128 B lines. Then coalescing runs, the per-block L1's set mapping
     and all shared-memory counts are translation-invariant, so a class
     member's counter delta equals its representative's bit for bit and
     population scaling is exact (see Gpusim.Analytic). When the
     condition fails — 1D programs (stride 1) or extents not divisible
     by 32 — the run silently degrades to the exact per-block memo
     path. *)
  let uniform_stride =
    Array.length stride0s > 0
    && Array.for_all (fun s -> s = stride0s.(0)) stride0s
    && 4 * stride0s.(0) mod dev.Device.line_bytes = 0
  in
  let analytic_on = analytic && memo_ok && uniform_stride in
  (* Cross-launch class cache: classes recur across launches. Two blocks
     (of any launch) whose clip vectors match and whose [u0] agree modulo
     [k · lcm(folds)] run the same statement at every hexagon row with
     the same grid time-slot parity, over identically-shaped classical
     windows — so their recorded streams are pure s0-translations of
     each other, exactly like same-launch class members ([u = k·tstep +
     si] makes [stmt_of_u] and every [tstep mod fold] a function of
     [u0 mod (k·lcm folds)]; everything else in the key is a run
     constant). A class whose signature was recorded in an earlier
     launch is derived entirely in the epilogue — representative
     included — without executing anything. *)
  let sig_mod =
    max 1 (List.length prog.stmts)
    * List.fold_left
        (fun acc (d : Stencil.array_decl) ->
          match d.fold with
          | Some f when f > 0 -> acc * f / gcd acc f
          | _ -> acc)
        1 prog.arrays
  in
  let sig_of_key (key : int array) =
    let s = Array.copy key in
    s.(0) <- Intutil.fmod key.(0) sig_mod;
    s
  in
  let cls_cache : (int array, cached_class) Hashtbl.t = Hashtbl.create 64 in
  let stmts = ctx.stmts in
  (* register tiling: reads whose cell was read (or produced) by the
     previous unrolled iteration along the sweep direction stay in
     registers; only the leading cells load from shared memory. *)
  let loads_subset_of =
    if not config.register_tile then fun _ -> None
    else begin
      let sweep = if dims >= 2 then dims - 1 else 0 in
      let memo = Hashtbl.create 4 in
      fun (s : Stencil.stmt) ->
        match Hashtbl.find_opt memo s.sname with
        | Some l -> Some l
        | None ->
            let reads = Stencil.distinct_reads s in
            let shift (a : Stencil.access) =
              {
                a with
                offsets =
                  Array.mapi (fun i o -> if i = sweep then o + 1 else o) a.offsets;
              }
            in
            let avail a =
              let a' = shift a in
              List.exists (fun r -> r = a') reads || a' = s.write
            in
            let l = List.filter (fun r -> not (avail r)) reads in
            Hashtbl.replace memo s.sname l;
            Some l
    end
  in
  (* Iterate the instance rows of one tile in execution order: for each
     valid t' step, every (prefix point, x-range) with x the innermost
     dimension. [fa] runs once per t' step (barrier point). *)
  let iter_tile ~u0 ~s00 ~(cls : int array) ~on_step ~on_row =
    for a = 0 to height - 1 do
      let u = u0 + a in
      if u >= 0 && u < ubound then begin
        match Hexagon.row_range t.hex ~a with
        | None -> ()
        | Some (rb_lo, rb_hi) ->
            let si = Hybrid.stmt_of_u t u in
            let tstep = Hybrid.tstep_of_u t u in
            let stmt = stmts.(si) in
            let slo = ctx.lo.(si) and shi = ctx.hi.(si) in
            let s0lo = max (s00 + rb_lo) slo.(0) and s0hi = min (s00 + rb_hi) shi.(0) in
            if s0lo <= s0hi then begin
              (* classical windows, clipped to the statement domain *)
              let wins =
                Array.init (dims - 1) (fun i ->
                    let c = t.classical.(i) in
                    let lo = Classical.si_of c ~u:a ~tile:cls.(i) ~intra:0 in
                    let hi = Classical.si_of c ~u:a ~tile:cls.(i) ~intra:(t.w.(i + 1) - 1) in
                    (max lo slo.(i + 1), min hi shi.(i + 1)))
              in
              if Array.for_all (fun (l, h2) -> l <= h2) wins then begin
                on_step ();
                if dims = 1 then begin
                  let point = [| s0lo |] in
                  let xs = Array.init (s0hi - s0lo + 1) (fun i -> s0lo + i) in
                  on_row ~stmt ~tstep ~point ~xs
                end
                else begin
                  (* prefix dims: s0 and windows 1..dims-2; x = last dim *)
                  let xlo, xhi = wins.(dims - 2) in
                  let xs = Array.init (xhi - xlo + 1) (fun i -> xlo + i) in
                  let point = Array.make dims 0 in
                  let rec go d =
                    if d = dims - 1 then on_row ~stmt ~tstep ~point ~xs
                    else if d = 0 then
                      for s0 = s0lo to s0hi do
                        point.(0) <- s0;
                        go 1
                      done
                    else
                      let l, h2 = wins.(d - 1) in
                      for v = l to h2 do
                        point.(d) <- v;
                        go (d + 1)
                      done
                  in
                  go 0
                end
              end
            end
      end
    done
  in
  (* process one (T, phase, S0, S1..Sn) tile; returns its layout *)
  let shared_warned = Atomic.make false in
  let process_tile ~u0 ~s00 ~(cls : int array) ~(prev : Common.Layout.t option) =
    let lay = Common.Layout.create () in
    if strat.use_shared then begin
      (* pre-pass: accessed boxes per (array, slot) *)
      let boxes : (string * int, Common.box) Hashtbl.t = Hashtbl.create 8 in
      let grow_access (acc : Stencil.access) ~tstep ~point ~xs =
        let g = Grid.find ctx.grids acc.array in
        let slot = Grid.slot g (tstep + acc.time_off) in
        let box =
          match Hashtbl.find_opt boxes (acc.array, slot) with
          | Some b -> b
          | None ->
              let b = Common.empty_box ~dims in
              Hashtbl.replace boxes (acc.array, slot) b;
              b
        in
        let p = Array.mapi (fun d o -> point.(d) + o) acc.offsets in
        p.(dims - 1) <- xs.(0) + acc.offsets.(dims - 1);
        Common.grow box p;
        p.(dims - 1) <- xs.(Array.length xs - 1) + acc.offsets.(dims - 1);
        Common.grow box p
      in
      iter_tile ~u0 ~s00 ~cls
        ~on_step:(fun () -> ())
        ~on_row:(fun ~stmt ~tstep ~point ~xs ->
          List.iter (fun a -> grow_access a ~tstep ~point ~xs) (Stencil.distinct_reads stmt);
          grow_access stmt.Stencil.write ~tstep ~point ~xs);
      Hashtbl.iter (fun (arr, slot) box -> Common.Layout.add lay ~array:arr ~slot box) boxes;
      if
        4 * Common.Layout.words lay > dev.Device.shared_mem_bytes
        (* blocks may run on several domains: claim the warning atomically *)
        && Atomic.compare_and_set shared_warned false true
      then begin
        (* The box over-approximation exceeds the device limit; the
           paper's code generator avoids this with live-window modular
           mappings (Section 4.2.2), which the traffic model below does
           not need to materialize. Warn once and continue. *)
        Fmt.epr
          "[hextile] warning: %s tile box needs %d B shared memory (device limit %d)@."
          name
          (4 * Common.Layout.words lay)
          dev.Device.shared_mem_bytes
      end;
      (* copy-in, with inter-tile reuse *)
      Common.Layout.iter lay ~f:(fun ~array ~slot box ->
          let pbox =
            match (strat.reuse, prev) with
            | No_reuse, _ | _, None -> None
            | _, Some p -> Common.Layout.find p ~array ~slot
          in
          let skip_x row =
            match pbox with
            | None -> None
            | Some pb ->
                let inside = ref true in
                for d = 0 to dims - 2 do
                  if row.(d) < pb.blo.(d) || row.(d) > pb.bhi.(d) then inside := false
                done;
                if !inside then Some (pb.blo.(dims - 1), pb.bhi.(dims - 1)) else None
          in
          Common.load_box_rows ctx ~grid:(Grid.find ctx.grids array) ~slot ~box ~skip_x
            ~shared_addr:(fun p -> Common.Layout.addr lay ~array ~slot p);
          (* dynamic reuse: move the overlap within shared memory *)
          match (strat.reuse, pbox) with
          | Dynamic, Some pb ->
              let overlap = Common.box_inter box pb in
              if not (Common.box_is_empty overlap) then
                Common.shared_copy_rows ctx ~box:overlap ~shared_addr:(fun p ->
                    Common.Layout.addr lay ~array ~slot p)
          | _ -> ());
      Sim.sync ctx.sim
    end;
    (* compute *)
    let replay = match strat.reuse with Static -> 2 | _ -> 1 in
    let pending_sync = ref false in
    let nsteps = ref 0 in
    let copyout : (string, int list ref) Hashtbl.t = Hashtbl.create 4 in
    iter_tile ~u0 ~s00 ~cls
      ~on_step:(fun () ->
        if !pending_sync then Sim.sync ctx.sim;
        pending_sync := true;
        incr nsteps)
      ~on_row:(fun ~stmt ~tstep ~point ~xs ->
        Common.exec_stmt_row ctx ~stmt ~tstep ~point ~xs
          ?loads_subset:(loads_subset_of stmt)
          ~global_reads:(not strat.use_shared) ~shared_replay:replay
          ~interleave_store:strat.interleave ~use_shared:strat.use_shared
          ~shared_addr:(fun (a : Stencil.access) ~point ->
            let g = Grid.find ctx.grids a.array in
            let slot = Grid.slot g (tstep + a.time_off) in
            let p = Array.mapi (fun d o -> point.(d) + o) a.offsets in
            Common.Layout.addr lay ~array:a.array ~slot p)
          ();
        (* remember written cells for the copy-out phase *)
        if strat.use_shared && not strat.interleave then begin
          let wa = stmt.Stencil.write in
          let g = Grid.find ctx.grids wa.array in
          let slot = Grid.slot g (tstep + wa.time_off) in
          let cells =
            match Hashtbl.find_opt copyout wa.array with
            | Some l -> l
            | None ->
                let l = ref [] in
                Hashtbl.replace copyout wa.array l;
                l
          in
          let p = Array.mapi (fun d o -> point.(d) + o) wa.offsets in
          Array.iter
            (fun x ->
              p.(dims - 1) <- x + wa.offsets.(dims - 1);
              let full =
                match g.decl.fold with
                | Some _ -> Array.append [| slot |] p
                | None -> Array.copy p
              in
              cells := Grid.offset g full :: !cells)
            xs
        end);
    if !pending_sync then Sim.sync ctx.sim;
    (* The perf path skips barriers for steps with no work, so blocks at
       the domain boundary legitimately run fewer syncs. Under the
       sanitizer we model the real kernel's unconditional per-step
       __syncthreads instead, so the barrier-divergence check holds
       without boundary false positives. *)
    if Sanitize.enabled () then
      for _ = !nsteps + 1 to height do
        Sim.sync ctx.sim
      done;
    (* copy-out *)
    if strat.use_shared && not strat.interleave then
      Hashtbl.iter
        (fun arr cells ->
          Common.store_cells ctx ~grid:(Grid.find ctx.grids arr)
            ~cells:(List.rev !cells) ~via_shared:true)
        copyout;
    lay
  in
  (* Tile class of a block: u0 plus, per hexagon row, the left/right
     clipping of the s0 interval against the statement domain (-2 marks
     rows with no work). Everything else a block does — classical tile
     ranges, windows, statement/step assignment — is a launch constant,
     so equal keys imply identical event streams up to the s0
     translation. Boundary-clipped classes are near-singletons; the
     interior class covers the bulk of each launch. *)
  let class_key ~u0 ~s00 =
    let key = Array.make (1 + (2 * height)) (-2) in
    key.(0) <- u0;
    for a = 0 to height - 1 do
      let u = u0 + a in
      if u >= 0 && u < ubound then
        match Hexagon.row_range t.hex ~a with
        | None -> ()
        | Some (rb_lo, rb_hi) ->
            let si = Hybrid.stmt_of_u t u in
            let slo = ctx.lo.(si) and shi = ctx.hi.(si) in
            key.(1 + (2 * a)) <- max 0 (slo.(0) - (s00 + rb_lo));
            key.(2 + (2 * a)) <- max 0 (s00 + rb_hi - shi.(0))
    done;
    key
  in
  (* Closed-form self-check of a recorded class against its stream: the
     tile model's per-class counts must match the instanced
     representative exactly — Σ [Compute] lanes = Σ per live row of
     (clipped s0 length × inner-domain coverage), and [Sync] events =
     copy-in barriers (one per classical tile) + steps whose windows are
     non-empty. Rows the key records as fully clipped (length ≤ 0 after
     subtracting the left/right clips) contribute nothing. A mismatch
     means the class decomposition that both the population scaling and
     the cross-launch cache rest on is wrong, so fail loudly rather than
     degrade. [points]/[syncs] are the stream's recorded counts. *)
  let check_class ~lname ~(key : int array) ~points ~syncs =
    let cu0 = key.(0) in
    let tuples = ref 1 in
    for i = 0 to dims - 2 do
      let lo, hi =
        Classical.tile_range t.classical.(i) ~u_max:(height - 1)
          ~lo:glo.(i + 1) ~hi:ghi.(i + 1)
      in
      tuples := !tuples * (hi - lo + 1)
    done;
    let exp_points = ref 0 and exp_steps = ref 0 in
    for a = 0 to height - 1 do
      if key.(1 + (2 * a)) >= 0 then begin
        let u = cu0 + a in
        let si = Hybrid.stmt_of_u t u in
        let slo = ctx.lo.(si) and shi = ctx.hi.(si) in
        match Hexagon.row_range t.hex ~a with
        | None -> ()
        | Some (rb_lo, rb_hi) ->
            let len =
              rb_hi - rb_lo + 1 - key.(1 + (2 * a)) - key.(2 + (2 * a))
            in
            if len > 0 then begin
              let inner = ref 1 and steps = ref 1 in
              for i = 0 to dims - 2 do
                inner :=
                  !inner * Tile_model.coverage ~lo:slo.(i + 1) ~hi:shi.(i + 1);
                steps :=
                  !steps
                  * Tile_model.tiles_nonempty t.classical.(i) ~u:a
                      ~lo:slo.(i + 1) ~hi:shi.(i + 1)
              done;
              exp_points := !exp_points + (len * !inner);
              exp_steps := !exp_steps + !steps
            end
      end
    done;
    let exp_syncs = (if strat.use_shared then !tuples else 0) + !exp_steps in
    if points <> !exp_points then
      failwith
        (Fmt.str
           "%s: analytic class model mismatch: %d compute lanes recorded, %d \
            expected"
           lname points !exp_points);
    if syncs <> exp_syncs then
      failwith
        (Fmt.str
           "%s: analytic class model mismatch: %d syncs recorded, %d expected"
           lname syncs exp_syncs)
  in
  (* host loop: time tiles x phases *)
  let launch_phase ~tt ~phase =
    (* does any u of this phase's tiles fall in the domain? *)
    let u0, _ = Hex_schedule.tile_origin t.hs ~phase ~tt ~s_tile:0 in
    if u0 + height - 1 >= 0 && u0 < ubound then begin
      let s_of s0 = Hex_schedule.space_tile t.hs ~phase ~u:(max 0 u0) ~s0 in
      (* S0 is monotone in s0: *)
      let s0_lo = s_of glo.(0) and s0_hi = s_of ghi.(0) in
      let blocks = s0_hi - s0_lo + 1 in
      if blocks > 0 then begin
        let lname = Fmt.str "%s_T%d_p%d" name tt phase in
        let origin_of b =
          Hex_schedule.tile_origin t.hs ~phase ~tt ~s_tile:(s0_lo + b)
        in
        let exec_block ~u0 ~s00 =
          (* classical tile ranges *)
          let ranges =
            Array.init (dims - 1) (fun i ->
                Classical.tile_range t.classical.(i) ~u_max:(height - 1)
                  ~lo:glo.(i + 1) ~hi:ghi.(i + 1))
          in
          let cls = Array.map fst ranges in
          let prev = ref None in
          let rec loop d =
            if d = dims - 1 then begin
              let lay = process_tile ~u0 ~s00 ~cls ~prev:!prev in
              prev := Some lay
            end
            else begin
              let lo, hi = ranges.(d) in
              for v = lo to hi do
                cls.(d) <- v;
                if d = dims - 2 && v = lo then prev := None;
                loop (d + 1)
              done
            end
          in
          if dims = 1 then ignore (process_tile ~u0 ~s00 ~cls ~prev:None)
          else loop 0
        in
        if analytic_on then begin
          (* ---- analytic (hierarchical) launch --------------------------
             Enumerate every block's class up front without executing
             anything; instance-execute one recording representative per
             class whose signature the cross-launch cache has not seen,
             and derive everything else in the launch epilogue's
             three-stage fast path: (1) counters by population scaling of
             the representative's exact delta, (2) DRAM by batched
             sorted-line-run replay through the shared L2 in canonical
             block order (sequential — the L2 is order-sensitive state),
             (3) grids by bulk fused-plan blits of the representative's
             coalesced compute rows at each member's word offset
             (parallel — disjoint writes, commutative counters). The
             live set and the cache's evolution are fixed before the
             launch, so everything derived is identical at every --jobs
             value. *)
          let keytbl : (int array, int) Hashtbl.t = Hashtbl.create 16 in
          let nclasses = ref 0 in
          let rkeys = ref [] and rreps = ref [] in
          let role = Array.make blocks (-1) in
          for b = 0 to blocks - 1 do
            let u0b, s00 = origin_of b in
            let key = class_key ~u0:u0b ~s00 in
            match Hashtbl.find_opt keytbl key with
            | Some cid -> role.(b) <- cid
            | None ->
                let cid = !nclasses in
                incr nclasses;
                Hashtbl.add keytbl key cid;
                rkeys := key :: !rkeys;
                rreps := b :: !rreps;
                role.(b) <- cid
          done;
          let nclasses = !nclasses in
          let ckey = Array.of_list (List.rev !rkeys) in
          let crep = Array.of_list (List.rev !rreps) in
          let members = Array.make nclasses [] in
          for b = blocks - 1 downto 0 do
            if crep.(role.(b)) <> b then
              members.(role.(b)) <- b :: members.(role.(b))
          done;
          (* a class is scaled when it is interior (no s0 clipping
             anywhere) and has members beyond its representative;
             clipped classes are singletons within a launch (a positive
             clip pins s00), so only interior classes have members *)
          let scaled =
            Array.init nclasses (fun cid ->
                members.(cid) <> []
                &&
                let key = ckey.(cid) in
                let ok = ref true in
                for i = 1 to Array.length key - 1 do
                  if key.(i) > 0 then ok := false
                done;
                !ok)
          in
          let csig = Array.init nclasses (fun cid -> sig_of_key ckey.(cid)) in
          let chit =
            Array.init nclasses (fun cid -> Hashtbl.find_opt cls_cache csig.(cid))
          in
          let nhits =
            Array.fold_left
              (fun a h -> if Option.is_some h then a + 1 else a)
              0 chit
          in
          if nhits > 0 then Obs.incr ~by:nhits "sim.class_cache_hits";
          let rep_stream = Array.make nclasses None in
          let rep_delta = Array.make nclasses None in
          let post () =
            let ep0 = Unix.gettimeofday () in
            ignore (Atomic.fetch_and_add ctx.sim.tile_classes nclasses);
            Obs.incr ~by:nclasses "sim.tile_classes";
            (* --- stage 1 (parallel): per-class derivation prep ---
               Compress each fresh recording into its sorted DRAM line
               runs and fused-plan compute rows, and count its stream's
               compute lanes and syncs for the closed-form model check.
               Pure per-class work; results are absorbed in class-id
               order below, so the cache and counters evolve identically
               at every jobs value. *)
            let fresh =
              Array.of_list
                (List.filter
                   (fun cid -> Option.is_some rep_stream.(cid))
                   (List.init nclasses (fun cid -> cid)))
            in
            let prep cid =
              let stream = Option.get rep_stream.(cid) in
              let runs =
                Analytic.compress_lines
                  (Analytic.lines_of_stream stream
                     ~line_bytes:dev.Device.line_bytes)
              in
              let rows = ref [] and points = ref 0 and syncs = ref 0 in
              Tileclass.iter stream ~f:(function
                | Tileclass.Compute
                    { stmt; tstep; wregion; waddr; sregions; srcs; n } ->
                    points := !points + n;
                    let wflat = (waddr - rbases.(wregion)) / 4 in
                    let sf =
                      Array.mapi
                        (fun i s -> (s - rbases.(sregions.(i))) / 4)
                        srcs
                    in
                    rows := (stmt, tstep, wflat, sf, n) :: !rows
                | Tileclass.Sync -> incr syncs
                | _ -> ());
              let crows = Common.compile_rows ctx (List.rev !rows) in
              (runs, crows, !points, !syncs)
            in
            let preps =
              match pool with
              | Some p when Par.jobs p > 1 && Array.length fresh > 1 ->
                  Par.map p prep fresh
              | _ -> Array.map prep fresh
            in
            (* absorb: validate, publish to the cross-launch cache, and
               pick the derivation source for every class *)
            let deriv = Array.make nclasses None in
            Array.iteri
              (fun i cid ->
                let runs, crows, points, syncs = preps.(i) in
                check_class ~lname ~key:ckey.(cid) ~points ~syncs;
                let _, rep_s00 = origin_of crep.(cid) in
                if not (Hashtbl.mem cls_cache csig.(cid)) then
                  Hashtbl.add cls_cache csig.(cid)
                    {
                      c_s00 = rep_s00;
                      c_delta = Option.get rep_delta.(cid);
                      c_runs = runs;
                      c_crows = crows;
                    };
                if scaled.(cid) then
                  (* fresh rep ran live: derive the members only *)
                  deriv.(cid) <- Some (runs, crows, rep_s00, false))
              fresh;
            for cid = 0 to nclasses - 1 do
              match chit.(cid) with
              | Some c ->
                  (* cached signature: derive every block, rep included *)
                  deriv.(cid) <- Some (c.c_runs, c.c_crows, c.c_s00, true)
              | None -> ()
            done;
            (* counters: population-scale each derived class's delta *)
            let nderived = ref 0 in
            for cid = 0 to nclasses - 1 do
              match deriv.(cid) with
              | Some (_, _, _, with_rep) ->
                  let m =
                    List.length members.(cid) + if with_rep then 1 else 0
                  in
                  let delta =
                    match chit.(cid) with
                    | Some c -> c.c_delta
                    | None -> Option.get rep_delta.(cid)
                  in
                  Analytic.scale_into ctx.sim.total ~delta ~times:m;
                  nderived := !nderived + m
              | None -> ()
            done;
            (* invalidated recordings (a per-lane fallback row): run the
               members live in the epilogue — exact, just not scaled *)
            for cid = 0 to nclasses - 1 do
              if
                scaled.(cid)
                && Option.is_none chit.(cid)
                && Option.is_none rep_stream.(cid)
              then
                List.iter
                  (fun b ->
                    let u0b, s00 = origin_of b in
                    L2.reset ctx.sim.l1;
                    exec_block ~u0:u0b ~s00)
                  members.(cid)
            done;
            let t1 = Unix.gettimeofday () in
            ctx.sim.analytic_derive_s <-
              ctx.sim.analytic_derive_s +. (t1 -. ep0);
            (* --- stage 2 (sequential): batched DRAM line replay ---
               The shared L2 is order-sensitive state: replay every
               derived block's translated line runs in the simulator's
               canonical block order, on the main domain only. *)
            if !nderived > 0 then begin
              Tl.begin_ ~arg:(float_of_int !nderived) "sim.analytic_dram";
              Array.iter
                (fun b ->
                  let cid = role.(b) in
                  match deriv.(cid) with
                  | Some (runs, _, src_s00, with_rep)
                    when with_rep || crep.(cid) <> b ->
                      let _, s00 = origin_of b in
                      let ds = s00 - src_s00 in
                      Analytic.replay_line_runs ctx.sim runs
                        ~dline:(ds * stride0s.(0) * 4 / dev.Device.line_bytes)
                  | _ -> ())
                (Sim.block_order ~blocks);
              Tl.end_ ()
            end;
            let t2 = Unix.gettimeofday () in
            ctx.sim.analytic_dram_s <- ctx.sim.analytic_dram_s +. (t2 -. t1);
            (* --- stage 3 (parallel): bulk grid reconstruction ---
               Derived blocks write disjoint grid cells and the run
               counters are commutative atomics, so the flattened
               (class, block) blit tasks fan out over the pool with
               bit-identical grids at every jobs value. *)
            let gtasks = ref [] in
            for cid = nclasses - 1 downto 0 do
              match deriv.(cid) with
              | Some (_, crows, src_s00, with_rep) ->
                  let push b =
                    let _, s00 = origin_of b in
                    gtasks :=
                      (crows, (s00 - src_s00) * stride0s.(0)) :: !gtasks
                  in
                  List.iter push members.(cid);
                  if with_rep then push crep.(cid)
              | None -> ()
            done;
            let gtasks = Array.of_list !gtasks in
            if Array.length gtasks > 0 then begin
              Tl.begin_
                ~arg:(float_of_int (Array.length gtasks))
                "sim.analytic_grids";
              let run_task (crows, off) = Common.exec_rows ctx crows ~off in
              (match pool with
              | Some p when Par.jobs p > 1 && Array.length gtasks > 1 ->
                  Par.iter p run_task gtasks
              | _ -> Array.iter run_task gtasks);
              Tl.end_ ()
            end;
            ignore (Atomic.fetch_and_add ctx.sim.blocks_analytic !nderived);
            Obs.incr ~by:!nderived "sim.blocks_analytic";
            let t3 = Unix.gettimeofday () in
            ctx.sim.analytic_grids_s <-
              ctx.sim.analytic_grids_s +. (t3 -. t2);
            ctx.sim.analytic_epilogue_s <-
              ctx.sim.analytic_epilogue_s +. (t3 -. ep0)
          in
          Sim.launch ?pool ~post ctx.sim ~name:lname ~blocks
            ~threads:config.threads ~shared_bytes:0
            ~f:(fun b ->
              let u0b, s00 = origin_of b in
              let cid = role.(b) in
              if Option.is_some chit.(cid) then
                (* cached class: every block derived in the epilogue *)
                ()
              else if crep.(cid) = b then begin
                (* fresh representative: record the stream and capture
                   the block's exact counter delta (the active
                   accumulator is only mutated by this domain) *)
                let before = Counters.copy (Sim.live_counters ctx.sim) in
                Sim.record_begin ctx.sim ~region_of;
                (match exec_block ~u0:u0b ~s00 with
                | () -> rep_stream.(cid) <- Sim.record_end ctx.sim
                | exception e ->
                    ignore (Sim.record_end ctx.sim);
                    raise e);
                rep_delta.(cid) <-
                  Some (Counters.diff (Sim.live_counters ctx.sim) before)
              end
              else if scaled.(cid) then
                (* scaled member — derived in the epilogue *)
                ()
              else exec_block ~u0:u0b ~s00)
        end
        else if not memo_ok then
          Sim.launch ?pool ctx.sim ~name:lname ~blocks ~threads:config.threads
            ~shared_bytes:0
            ~f:(fun b ->
              let u0, s00 = origin_of b in
              exec_block ~u0 ~s00)
        else begin
          (* ---- memoized (tape) launch ---------------------------------
             Classify every block against the simulator's canonical
             scrambled order, so each class's representative is the
             first block of the class to execute at jobs=1 — and, via
             the wave split below, the recording exists before any
             member runs at every jobs value. The publish-once [pub]
             array is the shared read-once/replay-many context: written
             by the representative's domain during wave 0, read by
             every member during wave 1 (the wave join orders the two). *)
          let order = Sim.block_order ~blocks in
          let keytbl : (int array, int) Hashtbl.t = Hashtbl.create 16 in
          let role = Array.make blocks (-1) in
          let rreps = ref [] and nclasses = ref 0 in
          Array.iter
            (fun b ->
              let u0b, s00 = origin_of b in
              let key = class_key ~u0:u0b ~s00 in
              match Hashtbl.find_opt keytbl key with
              | Some cid -> role.(b) <- cid
              | None ->
                  let cid = !nclasses in
                  incr nclasses;
                  Hashtbl.add keytbl key cid;
                  rreps := b :: !rreps;
                  role.(b) <- cid)
            order;
          let crep = Array.of_list (List.rev !rreps) in
          let rep_s00 = Array.map (fun b -> snd (origin_of b)) crep in
          let pub :
              (Tileclass.stream * Common.crows option) option array =
            Array.make !nclasses None
          in
          let noop ~stmt:_ ~tstep:_ ~wregion:_ ~waddr:_ ~sregions:_ ~srcs:_
              ~n:_ =
            ()
          in
          Sim.launch ?pool ctx.sim ~name:lname ~blocks ~threads:config.threads
            ~shared_bytes:0
            ~wave_of:(fun b -> if crep.(role.(b)) = b then 0 else 1)
            ~f:(fun b ->
              let u0b, s00 = origin_of b in
              let cid = role.(b) in
              if crep.(cid) = b then begin
                Sim.record_begin ctx.sim ~region_of;
                match exec_block ~u0:u0b ~s00 with
                | () -> (
                    match Sim.record_end ctx.sim with
                    | Some stream ->
                        (* under a uniform stride, compile the stream's
                           compute rows once per class: members then
                           replay memory events with a no-op callback
                           and run the compiled rows at a word offset,
                           with no per-event closure work or boxing *)
                        let crows =
                          if not uniform_stride then None
                          else begin
                            let rows = ref [] in
                            Tileclass.iter stream ~f:(function
                              | Tileclass.Compute
                                  {
                                    stmt;
                                    tstep;
                                    wregion;
                                    waddr;
                                    sregions;
                                    srcs;
                                    n;
                                  } ->
                                  let wflat = (waddr - rbases.(wregion)) / 4 in
                                  let sf =
                                    Array.mapi
                                      (fun i s ->
                                        (s - rbases.(sregions.(i))) / 4)
                                      srcs
                                  in
                                  rows := (stmt, tstep, wflat, sf, n) :: !rows
                              | _ -> ());
                            Some (Common.compile_rows ctx (List.rev !rows))
                          end
                        in
                        pub.(cid) <- Some (stream, crows)
                    | None -> ())
                | exception e ->
                    ignore (Sim.record_end ctx.sim);
                    raise e
              end
              else
                match pub.(cid) with
                | Some (stream, crows) -> (
                    let ds = s00 - rep_s00.(cid) in
                    let deltas = Array.map (fun st -> 4 * ds * st) stride0s in
                    match crows with
                    | Some crows ->
                        Sim.replay_stream ctx.sim stream ~deltas ~compute:noop;
                        Common.exec_rows ctx crows ~off:(ds * stride0s.(0))
                    | None ->
                        Sim.replay_stream ctx.sim stream ~deltas
                          ~compute:(fun
                              ~stmt ~tstep:_ ~wregion ~waddr ~sregions ~srcs ~n
                            ->
                            let wflat =
                              (waddr + deltas.(wregion) - rbases.(wregion)) / 4
                            in
                            let src_flats =
                              Array.init (Array.length srcs) (fun i ->
                                  (srcs.(i) + deltas.(sregions.(i))
                                  - rbases.(sregions.(i)))
                                  / 4)
                            in
                            Common.exec_tape_row ctx ~stmt_idx:stmt ~wflat
                              ~src_flats ~n))
                | None ->
                    (* the representative's recording was invalidated (a
                       per-lane fallback row): members run live — same
                       counters, nothing memoized, and no domain ever
                       re-attempts the recording *)
                    exec_block ~u0:u0b ~s00)
        end
      end
    end
  in
  (* T bounds covering every u in [0, ubound) for both phases *)
  let t_lo =
    min
      (Hex_schedule.time_tile t.hs ~phase:0 ~u:0)
      (Hex_schedule.time_tile t.hs ~phase:1 ~u:0)
  in
  let t_hi =
    max
      (Hex_schedule.time_tile t.hs ~phase:0 ~u:(ubound - 1))
      (Hex_schedule.time_tile t.hs ~phase:1 ~u:(ubound - 1))
  in
  for tt = t_lo to t_hi do
    launch_phase ~tt ~phase:0;
    launch_phase ~tt ~phase:1
  done;
  Common.finish ctx ~scheme:name
