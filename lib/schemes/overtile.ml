open Hextile_ir
open Hextile_gpusim
open Hextile_util
open Hextile_deps

type config = { hh : int; tile : int array option }

let default_config ~dims = { hh = (if dims >= 3 then 1 else 4); tile = None }

let radii (prog : Stencil.t) =
  let dims = Stencil.spatial_dims prog in
  let r = Array.make dims 0 in
  List.iter
    (fun (s : Stencil.stmt) ->
      List.iter
        (fun (a : Stencil.access) ->
          Array.iteri (fun d o -> r.(d) <- max r.(d) (abs o)) a.offsets)
        (Stencil.reads s))
    prog.stmts;
  r

(* Value-flow reach per schedule-time unit, from the dependence cone. *)
let slopes (prog : Stencil.t) =
  let deps = Dep.analyze prog in
  Array.init (Stencil.spatial_dims prog) (fun d ->
      let c = Cone.of_deps deps ~dim:d in
      Rat.max c.delta0 c.delta1)

let dilate (region : Common.box) ~by ~lo ~hi =
  {
    Common.blo = Array.mapi (fun d l -> max lo.(d) (l - by.(d))) region.blo;
    bhi = Array.mapi (fun d h -> min hi.(d) (h + by.(d))) region.bhi;
  }

(* (array, slot) pairs that must be preloaded: read before written, at
   slot granularity (exact for shrinking trapezoids). *)
let needed_slots (ctx : Common.ctx) ~tt0 ~hh_eff =
  let needed = Hashtbl.create 8 and written = Hashtbl.create 8 in
  for j = 0 to hh_eff - 1 do
    let t = tt0 + j in
    Array.iter
      (fun (s : Stencil.stmt) ->
        List.iter
          (fun (a : Stencil.access) ->
            let g = Grid.find ctx.grids a.array in
            let key = (a.array, Grid.slot g (t + a.time_off)) in
            if not (Hashtbl.mem written key) then Hashtbl.replace needed key ())
          (Stencil.reads s);
        let g = Grid.find ctx.grids s.write.array in
        Hashtbl.replace written (s.write.array, Grid.slot g (t + s.write.time_off)) ())
      ctx.stmts
  done;
  needed

let run ?pool ?engine ?config prog env dev =
  let ctx = Common.make_ctx ?engine prog env dev in
  let config =
    match config with Some c -> c | None -> default_config ~dims:ctx.dims
  in
  let hh = max 1 config.hh in
  let tile =
    match config.tile with
    | Some t -> t
    | None ->
        if ctx.dims >= 3 then begin
          (* the autotuned space-tiling fallback favours taller tiles than
             PPCG's default (lower halo-to-volume ratio) *)
          let t = Array.make ctx.dims 8 in
          t.(ctx.dims - 1) <- 32;
          t
        end
        else Ppcg.default_tile ~dims:ctx.dims
  in
  let threads = min dev.Device.max_threads_per_block (Array.fold_left ( * ) 1 tile) in
  let slope = slopes prog in
  let rad = radii prog in
  (* union domain across statements *)
  let lo = Array.init ctx.dims (fun d -> Array.fold_left (fun m l -> min m l.(d)) max_int ctx.lo) in
  let hi = Array.init ctx.dims (fun d -> Array.fold_left (fun m h -> max m h.(d)) min_int ctx.hi) in
  let ntiles = Array.init ctx.dims (fun d -> max 0 ((hi.(d) - lo.(d) + tile.(d)) / tile.(d))) in
  let blocks = Array.fold_left ( * ) 1 ntiles in
  let reach units = Array.map (fun s -> Rat.ceil (Rat.mul_int s units)) slope in
  let tt0 = ref 0 in
  while !tt0 < ctx.steps do
    let hh_eff = min hh (ctx.steps - !tt0) in
    let tt0v = !tt0 in
    let snap = Common.snapshot ctx in
    let needed = needed_slots ctx ~tt0:tt0v ~hh_eff in
    Sim.launch ?pool ctx.sim
      ~name:(Fmt.str "overtile_tt%d" tt0v)
      ~blocks ~threads ~shared_bytes:0
      ~f:(fun b ->
        let tc = Array.make ctx.dims 0 in
        let rest = ref b in
        for d = ctx.dims - 1 downto 0 do
          tc.(d) <- !rest mod ntiles.(d);
          rest := !rest / ntiles.(d)
        done;
        let out =
          {
            Common.blo = Array.init ctx.dims (fun d -> lo.(d) + (tc.(d) * tile.(d)));
            bhi =
              Array.init ctx.dims (fun d ->
                  min hi.(d) (lo.(d) + ((tc.(d) + 1) * tile.(d)) - 1));
          }
        in
        if not (Common.box_is_empty out) then begin
          (* local values written by this block *)
          let local : (string * int * int list, float) Hashtbl.t = Hashtbl.create 512 in
          let cell (a : Stencil.access) ~t ~point =
            let g = Grid.find ctx.grids a.array in
            ( a.array,
              Grid.slot g (t + a.time_off),
              Array.to_list (Array.mapi (fun d o -> point.(d) + o) a.offsets) )
          in
          (* copy-in: one shared box per accessed (array, slot) *)
          let copy_by = Array.mapi (fun d r -> r + rad.(d)) (reach (ctx.k * (hh_eff - 1))) in
          let inbox (arr : string) =
            let g = Grid.find ctx.grids arr in
            let spatial_dims = ctx.dims in
            let ext d = g.dims.(Array.length g.dims - spatial_dims + d) in
            dilate out ~by:copy_by ~lo:(Array.make ctx.dims 0)
              ~hi:(Array.init ctx.dims (fun d -> ext d - 1))
          in
          let lay = Common.Layout.create () in
          let alloc_box (arr, slot) aname =
            if Common.Layout.find lay ~array:arr ~slot = None then
              Common.Layout.add lay ~array:arr ~slot (inbox aname)
          in
          (* allocate shared boxes for every (array, slot) touched *)
          List.iter
            (fun (s : Stencil.stmt) ->
              List.iter
                (fun (a : Stencil.access) ->
                  let g = Grid.find ctx.grids a.array in
                  for j = 0 to hh_eff - 1 do
                    alloc_box (a.array, Grid.slot g (tt0v + j + a.time_off)) a.array
                  done)
                (s.write :: Stencil.reads s))
            ctx.prog.stmts;
          Hashtbl.iter
            (fun (arr, slot) () ->
              match Common.Layout.find lay ~array:arr ~slot with
              | None -> ()
              | Some box ->
                  Common.load_box_rows ctx ~grid:(Grid.find ctx.grids arr) ~slot ~box
                    ~skip_x:(fun _ -> None)
                    ~shared_addr:(fun p -> Common.Layout.addr lay ~array:arr ~slot p))
            needed;
          Sim.sync ctx.sim;
          (* redundant compute over the shrinking trapezoid *)
          for j = 0 to hh_eff - 1 do
            let t = tt0v + j in
            Array.iteri
              (fun si stmt ->
                let units = (ctx.k * (hh_eff - 1 - j)) + (ctx.k - 1 - si) in
                let region =
                  dilate out ~by:(reach units) ~lo:ctx.lo.(si) ~hi:ctx.hi.(si)
                in
                (* also clip the out-region to the statement domain *)
                let region =
                  Common.box_inter region
                    { Common.blo = ctx.lo.(si); bhi = ctx.hi.(si) }
                in
                if not (Common.box_is_empty region) then
                  Common.iter_box_rows region ~f:(fun point ->
                      let xdim = ctx.dims - 1 in
                      let xs =
                        Array.of_list (Intutil.range region.blo.(xdim) region.bhi.(xdim))
                      in
                      Common.exec_stmt_row ctx ~stmt ~tstep:t ~point ~xs
                        ~read_value:(fun a ~point ->
                          let key = cell a ~t ~point in
                          match Hashtbl.find_opt local key with
                          | Some v -> v
                          | None ->
                              let g = Grid.find ctx.grids a.array in
                              let (_, slot, sp) = key in
                              let idx =
                                match g.decl.fold with
                                | Some _ -> Array.of_list (slot :: sp)
                                | None -> Array.of_list sp
                              in
                              Common.snapshot_read snap g (Grid.offset g idx))
                        ~write_value:(fun ~point v ->
                          Hashtbl.replace local (cell stmt.Stencil.write ~t ~point) v)
                        ~count:false ~global_reads:false ~shared_replay:1
                        ~interleave_store:false ~use_shared:true
                        ~shared_addr:(fun (a : Stencil.access) ~point ->
                          let g = Grid.find ctx.grids a.array in
                          let slot = Grid.slot g (t + a.time_off) in
                          let p = Array.mapi (fun d o -> point.(d) + o) a.offsets in
                          Common.Layout.addr lay ~array:a.array ~slot p)
                        ())
              )
              ctx.stmts;
            Sim.sync ctx.sim
          done;
          (* copy-out: final values of cells inside the output tile *)
          let per_array : (string, (int * float) list ref) Hashtbl.t = Hashtbl.create 4 in
          Hashtbl.iter
            (fun (arr, slot, sp) v ->
              let inside =
                List.for_all2
                  (fun x (l, h) -> x >= l && x <= h)
                  sp
                  (Array.to_list (Array.map2 (fun l h -> (l, h)) out.blo out.bhi))
              in
              if inside then begin
                let g = Grid.find ctx.grids arr in
                let idx =
                  match g.decl.fold with
                  | Some _ -> Array.of_list (slot :: sp)
                  | None -> Array.of_list sp
                in
                let flat = Grid.offset g idx in
                let l =
                  match Hashtbl.find_opt per_array arr with
                  | Some l -> l
                  | None ->
                      let l = ref [] in
                      Hashtbl.replace per_array arr l;
                      l
                in
                l := (flat, v) :: !l
              end)
            local;
          Hashtbl.iter
            (fun arr l ->
              let g = Grid.find ctx.grids arr in
              let sorted = List.sort compare !l in
              List.iter (fun (flat, v) -> g.data.(flat) <- v) sorted;
              Common.store_cells ctx ~grid:g ~cells:(List.map fst sorted) ~via_shared:true)
            per_array
        end);
    tt0 := tt0v + hh_eff
  done;
  (* Useful updates = the reference instance count (redundant halo
     recomputation does not produce additional stencils). *)
  Atomic.set ctx.updates (Interp.stencil_updates prog env);
  Common.finish ctx ~scheme:"overtile"
