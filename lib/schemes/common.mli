(** Shared infrastructure for the scheme executors: execution context,
    warp-chunked memory phases, per-(array, slot) boxes and results. *)

open Hextile_ir
open Hextile_gpusim

type engine = Ref | Tape
(** Execution engine for statement rows. [Tape] (the default) runs
    warp-batched accounting through [Sim]'s allocation-free batched
    events and evaluates statements with flat {!Hextile_gpusim.Tape}
    register tapes over 32-lane buffers; [Ref] is the original per-lane
    closure interpreter, kept as the differential-testing reference.
    Both produce bit-identical grids and counters; when the
    {!Hextile_gpusim.Sanitize} sanitizer is enabled, the per-lane
    reference path runs regardless (it needs per-lane thread
    identities). *)

type compiled
(** Per-statement compiled evaluator (closure "JIT" over the grids, plus
    the statement's register tape when row batching is sound). *)

type ctx = {
  sim : Sim.t;
  prog : Stencil.t;
  env : string -> int;
  grids : (string, Grid.t) Hashtbl.t;
  k : int;  (** statement count *)
  dims : int;  (** spatial dimensions *)
  steps : int;
  stmts : Stencil.stmt array;
  lo : int array array;  (** per statement, inclusive domain bounds *)
  hi : int array array;
  updates : int Atomic.t;
      (** statement instances executed (atomic: blocks of one launch may
          run on different domains; the sum is order-independent) *)
  compiled : (string, compiled) Hashtbl.t;
  engine : engine;
}

val make_ctx : ?engine:engine -> Stencil.t -> (string -> int) -> Device.t -> ctx
(** [engine] defaults to {!Tape}. *)

type result = {
  scheme : string;
  device : Device.t;
  counters : Counters.t;
  kernel_time : float;
  transfer_time : float;
  updates : int;
  grids : (string, Grid.t) Hashtbl.t;
  blocks : int;  (** total blocks across all launches *)
  blocks_memoized : int;
      (** blocks retired by tile-class stream replay instead of live
          execution (hybrid scheme, [Tape] engine only) *)
  blocks_analytic : int;
      (** blocks retired by analytic class scaling (hybrid scheme,
          [--analytic] mode only): counters derived from the class
          representative's delta × population, grids from a compute-only
          tape replay *)
  classes : int;
      (** tile classes enumerated by the analytic mode, summed over
          launches (0 outside analytic mode) *)
  blit_rows : int;
      (** recorded compute rows retired through multi-row coalesced
          (bulk-blit) runs by the analytic epilogue's grid
          reconstruction; deterministic at every jobs value *)
  replay_lines : int;
      (** cache lines probed by the batched DRAM line replay;
          deterministic at every jobs value *)
  epilogue_ms : float;
      (** wall time spent in analytic launch epilogues (derive + DRAM
          replay + grid blits), main domain only — nondeterministic,
          never part of compared artifacts *)
  derive_ms : float;
      (** epilogue stage breakdown: class prep + counter derivation
          (parallel); same caveats as [epilogue_ms] *)
  dram_ms : float;  (** …sequential batched DRAM line replay *)
  grids_ms : float;  (** …parallel grid blits *)
}

val finish : ctx -> scheme:string -> result

val total_time : result -> float
val gstencils_per_s : result -> float
val gflops : result -> flops_per_update:float -> float

(** {2 Regions} *)

type box = { blo : int array; bhi : int array }
(** Inclusive spatial bounds; empty if any [blo > bhi]. *)

val empty_box : dims:int -> box
val box_is_empty : box -> bool
val box_count : box -> int
val grow : box -> int array -> unit
(** Mutate to include a point. *)

val box_inter : box -> box -> box

(** {2 Shared-memory layouts} *)

module Layout : sig
  (** Per-block shared memory: one box per (array, storage slot), packed
      row-major at consecutive base offsets. Addresses are word indices
      (for the bank-conflict model). *)

  type t

  val create : unit -> t
  val add : t -> array:string -> slot:int -> box -> unit
  (** No-op if the box is empty. *)

  val find : t -> array:string -> slot:int -> box option
  val addr : t -> array:string -> slot:int -> int array -> int
  (** Word address of a spatial point (clipped into the box). Returns 0
      for unknown keys. *)

  val words : t -> int
  val iter : t -> f:(array:string -> slot:int -> box -> unit) -> unit
end

(** {2 Warp-level phases} *)

val exec_stmt_row :
  ctx ->
  stmt:Stencil.stmt ->
  tstep:int ->
  point:int array ->
  xs:int array ->
  ?read_value:(Stencil.access -> point:int array -> float) ->
  ?write_value:(point:int array -> float -> unit) ->
  ?count:bool ->
  ?loads_subset:Stencil.access list ->
  global_reads:bool ->
  shared_replay:int ->
  interleave_store:bool ->
  use_shared:bool ->
  shared_addr:(Stencil.access -> point:int array -> int) ->
  unit ->
  unit
(** Execute the instances of one statement at [tstep] for all [x ∈ xs]
    varying the innermost dimension of [point] (other coordinates fixed),
    chunked into warps: account one load per distinct read (global or
    shared per [global_reads]), the statement's flops, and the store
    (shared when [use_shared], plus global when [interleave_store] or no
    shared memory is used); then perform the functional update.
    [read_value] overrides where read values come from (letting
    overlapped tiling read from snapshots) — when omitted a compiled
    fast path reading the context grids directly is used; [write_value]
    overrides the default write-through to the context grids; [count]
    (default true) controls whether the instances count toward
    [ctx.updates]; [loads_subset] restricts which reads are *accounted*
    as loads (register tiling keeps the rest in registers across the
    unrolled sweep — functional execution is unaffected). *)

val load_box_rows :
  ctx ->
  grid:Grid.t ->
  slot:int ->
  box:box ->
  skip_x:(int array -> (int * int) option) ->
  shared_addr:(int array -> int) ->
  unit
(** Copy-in phase: global loads + shared stores over all rows of [box]
    (x = innermost dim varies). [skip_x row] gives an x-interval already
    present in shared memory (reuse) to exclude. Pure accounting. *)

val shared_copy_rows : ctx -> box:box -> shared_addr:(int array -> int) -> unit
(** Dynamic-reuse phase: shared-to-shared movement of a region. *)

val store_cells : ctx -> grid:Grid.t -> cells:int list -> via_shared:bool -> unit
(** Copy-out phase: store the given flat cell indices (already grouped in
    ascending order), as warps of 32; [via_shared] adds the shared-memory
    read feeding each store. *)

val iter_box_rows : box -> f:(int array -> unit) -> unit
(** Iterate over rows: all coordinate prefixes; the callback receives the
    full point with x set to [blo] of the innermost dim. *)

val exec_tape_row :
  ctx -> stmt_idx:int -> wflat:int -> src_flats:int array -> n:int -> unit
(** Functional replay of one memoized statement row: run statement
    [stmt_idx]'s tape over [n] lanes with the given per-source flat word
    bases (tape register order) writing from flat word [wflat], counting
    the instances toward [ctx.updates]. Raises [Invalid_argument] if the
    statement has no tape (recorded streams only contain [Compute]
    events for tape-executed rows, so replay never hits that case). *)

type crows
(** Pre-resolved compute rows of one tile class: the analytic mode
    compiles a representative's recorded [Compute] events once —
    coalescing adjacent same-statement same-tstep rows whose write and
    source bases continue each other exactly into long runs — and
    replays every class member as bulk fused-plan ([Tape.exec_plan])
    calls at a word offset (one scratch fetch and one updates-atomic per
    block). Rows with gapped or non-ascending store patterns (e.g.
    clipped boundary rows) stay single-row runs: the exact per-row
    fallback. *)

val compile_rows : ctx -> (int * int * int * int array * int) list -> crows
(** [(stmt_idx, tstep, wflat, src_flats, n)] per row. [tstep] is the
    row's time-step index (rows of different tsteps may be
    data-dependent and are never coalesced; rows are re-sorted into the
    dependency-safe ascending (tstep, statement, write) order
    internally, so any input order yields the same runs). Takes
    ownership of the [src_flats] arrays. Raises [Invalid_argument] if a
    statement has no tape (recorded streams only contain [Compute]
    events for tape-executed rows). *)

val exec_rows : ctx -> crows -> off:int -> unit
(** Run every row with [off] added to all flat word bases (write and
    sources), counting the instances toward [ctx.updates] and
    [sim.tape_instrs], and the rows retired through multi-row coalesced
    runs toward [sim.blit_rows] / [sim.analytic_blit_rows]. The caller
    guarantees the translated rows are in bounds — true for class
    members, whose exact execution touches the same cells. Counter
    effects are bit-identical to per-row 32-lane [Tape.exec] replay. *)

val rows_stats : crows -> int * int * int
(** [(runs, recorded_rows, blit_rows)] of a compiled class — run-shape
    introspection for tests. *)

val snapshot : ctx -> (string, float array) Hashtbl.t
val snapshot_read : (string, float array) Hashtbl.t -> Grid.t -> int -> float
