(** Split tiling for 1D stencils (Grosser et al., GPGPU-6 2013).

    The paper notes that in one dimension the hybrid method "boils down to
    existing hexagonal or split tiling"; this executor provides the split
    variant for comparison: a time tile of [hh] steps is covered by a
    phase of upright (shrinking) trapezoids over base intervals of
    [width] cells, followed by a phase of inverted (growing) trapezoids
    filling the gaps between them. No redundant computation; two kernels
    per time tile, like the hexagonal scheme's two phases. *)

open Hextile_ir
open Hextile_gpusim

type config = { hh : int; width : int }

val default_config : config

val run :
  ?pool:Hextile_par.Par.pool ->
  ?engine:Common.engine ->
  ?config:config ->
  Stencil.t ->
  (string -> int) ->
  Device.t ->
  Common.result
(** Raises [Invalid_argument] for non-1D programs or if [width] is too
    small for the dependence slopes ([width > 2·r·hh]). *)
