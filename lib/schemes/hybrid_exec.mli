(** Execution of the hybrid hexagonal/classical schedule on the GPU
    simulator, following the paper's code generation (Section 4): a host
    loop over time tiles [T] launching one kernel per phase; thread blocks
    indexed by [S0]; sequential in-kernel loops over the classical tiles
    [S1..Sn] and the intra-tile time [t']; a barrier after every time
    step.

    The shared-memory strategy knobs reproduce the optimization ladder of
    Table 4:

    - (a) [no_shared] — all accesses to global memory;
    - (b) [shared] — copy-in / compute / copy-out phases on the
      rectangular box over-approximation;
    - (c) [+ interleave] — results stored to global memory as they are
      computed, no separate copy-out;
    - (d) [+ align] — arrays translated so tile loads are cache-line
      aligned (Section 4.2.3);
    - (e) [+ static reuse] — values reused between consecutive classical
      tiles via a static global→shared mapping (no copy, but bank-conflict
      replays — Table 5 measures 1.8 loads/request);
    - (f) [+ dynamic reuse] — reused values moved shared→shared between
      tiles (an extra copy phase, conflict-free accesses). *)

open Hextile_ir
open Hextile_gpusim

type reuse = No_reuse | Static | Dynamic

type strategy = {
  use_shared : bool;
  interleave : bool;
  align : bool;
  reuse : reuse;
}

val strategy_of_step : char -> strategy
(** ['a'] .. ['f'] — the Table 4 configurations. *)

val best_strategy : strategy
(** Configuration (f), the paper's best. *)

type config = {
  h : int;
  w : int array;
  threads : int;
  strategy : strategy;
  register_tile : bool;
      (** keep sweep-reusable values in registers across the unrolled
          point loop, eliminating their shared loads (the conclusion's
          "register tiling" direction; cf. the Figure 2 core, which keeps
          2 of jacobi's 5 values in flight) *)
}

val default_config : Stencil.t -> config
(** Paper-style sizes: for 3D the Table 4 choice (h=2, w=(7,10,32)); for
    2D h=3, w=(4,32); for 1D h=3, w0=16; threads 256 (320 for 3D). *)

val run :
  ?pool:Hextile_par.Par.pool ->
  ?engine:Common.engine ->
  ?analytic:bool ->
  ?name:string ->
  ?config:config ->
  Stencil.t ->
  (string -> int) ->
  Device.t ->
  Common.result
(** [pool] parallelizes each launch's blocks across the pool's domains
    (bit-identical results for any jobs value; see {!Sim.launch}).

    [analytic] (default [false]) enables the hierarchical simulation
    mode: each launch instance-executes exactly one representative block
    per interior tile class, derives every other interior block's
    counters by population scaling ({!Hextile_gpusim.Analytic}), models
    their DRAM traffic by compressed-trace L2 replay, and reproduces
    their grid writes with a compute-only tape replay — falling back to
    full instance execution for boundary-clipped classes. Counters are
    bit-identical to the exact simulator except the two DRAM fields,
    whose relative error is bounded by
    {!Hextile_gpusim.Analytic.dram_error_bound}. The mode silently
    degrades to the exact memoized path when the program's regions do
    not share a single line-aligned s0 stride (the condition under which
    class translation is a cache bijection), or when the [Ref] engine or
    the sanitizer is active; [Common.result.blocks_analytic] reports how
    many blocks were scaled. Results remain bit-identical across
    [--jobs] values. *)
