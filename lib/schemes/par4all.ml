open Hextile_ir
open Hextile_gpusim

type config = { threads_per_block : int }

let default_config = { threads_per_block = 256 }

let run ?pool ?engine ?(config = default_config) prog env dev =
  let ctx = Common.make_ctx ?engine prog env dev in
  let tpb = config.threads_per_block in
  for tstep = 0 to ctx.steps - 1 do
    Array.iteri
      (fun si stmt ->
        let lo = ctx.lo.(si) and hi = ctx.hi.(si) in
        let xdim = ctx.dims - 1 in
        let row_len = hi.(xdim) - lo.(xdim) + 1 in
        if row_len > 0 then begin
          (* rows = all prefix-coordinate combinations *)
          let nrows = ref 1 in
          for d = 0 to xdim - 1 do
            nrows := !nrows * max 0 (hi.(d) - lo.(d) + 1)
          done;
          let nrows = !nrows in
          let points = nrows * row_len in
          let blocks = (points + tpb - 1) / tpb in
          let row_point r =
            (* decode row index into prefix coordinates *)
            let p = Array.copy lo in
            let rest = ref r in
            for d = xdim - 1 downto 0 do
              let ext = hi.(d) - lo.(d) + 1 in
              p.(d) <- lo.(d) + (!rest mod ext);
              rest := !rest / ext
            done;
            p
          in
          Sim.launch ?pool ctx.sim
            ~name:(Fmt.str "par4all_%s_t%d" stmt.Stencil.sname tstep)
            ~blocks ~threads:tpb ~shared_bytes:0
            ~f:(fun b ->
              let start = b * tpb in
              let stop = min points (start + tpb) in
              (* walk the row fragments covered by this block *)
              let i = ref start in
              while !i < stop do
                let row = !i / row_len and off = !i mod row_len in
                let frag = min (row_len - off) (stop - !i) in
                let point = row_point row in
                let xs = Array.init frag (fun j -> lo.(xdim) + off + j) in
                Common.exec_stmt_row ctx ~stmt ~tstep ~point ~xs
                  ~global_reads:true ~shared_replay:1 ~interleave_store:false
                  ~use_shared:false
                  ~shared_addr:(fun _ ~point:_ -> 0)
                  ();
                i := !i + frag
              done)
        end)
      ctx.stmts
  done;
  Common.finish ctx ~scheme:"par4all"
