(** Overtile-style overlapped (trapezoidal) time tiling.

    Each thread block owns an output tile and a time-tile of [hh] steps;
    it loads the tile plus a halo of radius [r·hh] into shared memory,
    redundantly recomputes the shrinking halo region at every step, and
    writes only its own output tile back — trading redundant computation
    and a larger footprint for DRAM traffic reduced by roughly [hh]×
    (Holewinski et al., ICS'12; the paper's Overtile comparator).

    Blocks functionally read a pre-launch snapshot, matching the
    concurrent-blocks semantics of a real GPU. *)

open Hextile_ir
open Hextile_gpusim

type config = {
  hh : int;  (** time steps per tile (1 = plain space tiling) *)
  tile : int array option;  (** output tile; None = PPCG-style defaults *)
}

val default_config : dims:int -> config
(** The autotuner's observed behaviour per the paper: time tiling for 1D/2D
    ([hh = 4]), fallback to space tiling for 3D ([hh = 1]). *)

val radii : Stencil.t -> int array
(** Per-dimension halo radius: max |read offset|. *)

val run :
  ?pool:Hextile_par.Par.pool ->
  ?engine:Common.engine ->
  ?config:config ->
  Stencil.t ->
  (string -> int) ->
  Device.t ->
  Common.result
