open Hextile_ir
open Hextile_gpusim
open Hextile_util

type config = { tile : int array option }

let default_config = { tile = None }

let default_tile ~dims =
  match dims with
  | 1 -> [| 256 |]
  | 2 -> [| 16; 32 |]
  | _ ->
      let t = Array.make dims 4 in
      t.(dims - 1) <- 32;
      t.(dims - 2) <- 8;
      t

(* The rectangular input boxes a tile region needs, per (array, slot):
   the region dilated by each read's offsets, clipped to array extents. *)
let input_boxes (ctx : Common.ctx) (stmt : Stencil.stmt) ~tstep ~(region : Common.box) =
  let boxes = Hashtbl.create 4 in
  List.iter
    (fun (r : Stencil.access) ->
      let g = Grid.find ctx.grids r.array in
      let slot = Grid.slot g (tstep + r.time_off) in
      let spatial_dims = Array.length r.offsets in
      let ext d = g.dims.(Array.length g.dims - spatial_dims + d) in
      let blo = Array.mapi (fun d l -> max 0 (l + r.offsets.(d))) region.blo in
      let bhi = Array.mapi (fun d h -> min (ext d - 1) (h + r.offsets.(d))) region.bhi in
      let key = (r.array, slot) in
      match Hashtbl.find_opt boxes key with
      | None -> Hashtbl.replace boxes key { Common.blo; bhi }
      | Some (b : Common.box) ->
          Hashtbl.replace boxes key
            {
              Common.blo = Array.map2 min b.blo blo;
              bhi = Array.map2 max b.bhi bhi;
            })
    (Stencil.distinct_reads stmt);
  boxes

let run ?pool ?engine ?(config = default_config) ?(name = "ppcg") prog env dev =
  let ctx = Common.make_ctx ?engine prog env dev in
  let tile =
    match config.tile with Some t -> t | None -> default_tile ~dims:ctx.dims
  in
  let threads = min dev.Device.max_threads_per_block (Array.fold_left ( * ) 1 tile) in
  for tstep = 0 to ctx.steps - 1 do
    Array.iteri
      (fun si stmt ->
        let lo = ctx.lo.(si) and hi = ctx.hi.(si) in
        (* grid of tiles over the statement domain *)
        let ntiles =
          Array.init ctx.dims (fun d ->
              max 0 ((hi.(d) - lo.(d) + tile.(d)) / tile.(d)))
        in
        let blocks = Array.fold_left ( * ) 1 ntiles in
        if blocks > 0 then
          Sim.launch ?pool ctx.sim
            ~name:(Fmt.str "%s_%s_t%d" name stmt.Stencil.sname tstep)
            ~blocks ~threads
            ~shared_bytes:0 (* checked per-block below via layout *)
            ~f:(fun b ->
              (* decode block id into tile coordinates *)
              let tc = Array.make ctx.dims 0 in
              let rest = ref b in
              for d = ctx.dims - 1 downto 0 do
                tc.(d) <- !rest mod ntiles.(d);
                rest := !rest / ntiles.(d)
              done;
              let region =
                {
                  Common.blo = Array.init ctx.dims (fun d -> lo.(d) + (tc.(d) * tile.(d)));
                  bhi =
                    Array.init ctx.dims (fun d ->
                        min hi.(d) (lo.(d) + ((tc.(d) + 1) * tile.(d)) - 1));
                }
              in
              if not (Common.box_is_empty region) then begin
                (* copy-in *)
                let lay = Common.Layout.create () in
                let boxes = input_boxes ctx stmt ~tstep ~region in
                Hashtbl.iter
                  (fun (arr, slot) box -> Common.Layout.add lay ~array:arr ~slot box)
                  boxes;
                Common.Layout.iter lay ~f:(fun ~array ~slot box ->
                    Common.load_box_rows ctx ~grid:(Grid.find ctx.grids array) ~slot ~box
                      ~skip_x:(fun _ -> None)
                      ~shared_addr:(fun p -> Common.Layout.addr lay ~array ~slot p));
                Sim.sync ctx.sim;
                (* compute *)
                Common.iter_box_rows region ~f:(fun point ->
                    let xdim = ctx.dims - 1 in
                    let xs =
                      Array.of_list (Intutil.range region.blo.(xdim) region.bhi.(xdim))
                    in
                    Common.exec_stmt_row ctx ~stmt ~tstep ~point ~xs
                      ~global_reads:false ~shared_replay:1 ~interleave_store:true
                      ~use_shared:false
                      ~shared_addr:(fun (a : Stencil.access) ~point ->
                        let g = Grid.find ctx.grids a.array in
                        let slot = Grid.slot g (tstep + a.time_off) in
                        let p = Array.mapi (fun d o -> point.(d) + o) a.offsets in
                        Common.Layout.addr lay ~array:a.array ~slot p)
                      ());
                Sim.sync ctx.sim
              end))
      ctx.stmts
  done;
  Common.finish ctx ~scheme:name
