open Hextile_ir
open Hextile_gpusim
open Hextile_util
open Hextile_deps

type config = { hh : int; width : int }

let default_config = { hh = 4; width = 64 }

let run ?pool ?engine ?(config = default_config) prog env dev =
  let ctx = Common.make_ctx ?engine prog env dev in
  if ctx.dims <> 1 then
    invalid_arg "Split_tiling.run: only 1D stencils (the paper's degenerate case)";
  if ctx.k <> 1 then
    invalid_arg "Split_tiling.run: single-statement programs only";
  let hh = max 1 config.hh and width = config.width in
  let deps = Dep.analyze prog in
  let cone = Cone.of_deps deps ~dim:0 in
  (* symmetric per-u-unit slope, scaled to per-time-step reach *)
  let r =
    max 1 (Rat.ceil (Rat.mul_int (Rat.max cone.delta0 cone.delta1) ctx.k))
  in
  if width <= 2 * r * hh then
    invalid_arg
      (Fmt.str "Split_tiling.run: width %d too small for reach %d over %d steps"
         width r hh);
  let lo = ctx.lo.(0).(0) and hi = ctx.hi.(0).(0) in
  let span = hi - lo + 1 in
  (* A clipped last tile narrower than the dependence reach over the
     block would vanish partway up, merging the phase-B gaps around it —
     and the merged gap's owner would read cells that a later block of
     the same launch writes. Absorb such a remainder into its left
     neighbour so no upright ever vanishes and gaps never merge. *)
  let nbase0 = (span + width - 1) / width in
  let rem = span - ((nbase0 - 1) * width) in
  let nbase, wlast =
    if nbase0 > 1 && rem <= 2 * r * hh then (nbase0 - 1, width + rem)
    else (nbase0, rem)
  in
  let stmts = ctx.stmts in
  let exec_interval ~tstep ~xlo ~xhi ~read_value ~write_value ~shared_addr =
    if xlo <= xhi then
      Array.iter
        (fun (s : Stencil.stmt) ->
          let xlo = max xlo ctx.lo.(0).(0) and xhi = min xhi ctx.hi.(0).(0) in
          if xlo <= xhi then
            Common.exec_stmt_row ctx ~stmt:s ~tstep ~point:[| xlo |]
              ~xs:(Array.init (xhi - xlo + 1) (fun i -> xlo + i))
              ?read_value ?write_value ~global_reads:false ~shared_replay:1
              ~interleave_store:true ~use_shared:true ~shared_addr ())
        stmts
  in
  let tt0 = ref 0 in
  while !tt0 < ctx.steps do
    (* a single-tile domain can itself be narrower than the reach over
       the block; cap the block height so the tile survives every step *)
    let hh_eff =
      min (min hh (ctx.steps - !tt0)) (1 + ((span - 1) / (2 * r)))
    in
    let t0 = !tt0 in
    (* ---- phase A: upright trapezoids --------------------------------- *)
    let snap = Common.snapshot ctx in
    Sim.launch ?pool ctx.sim
      ~name:(Fmt.str "split_up_tt%d" t0)
      ~blocks:nbase ~threads:(min (max width wlast) 256) ~shared_bytes:0
      ~f:(fun b ->
        let base_lo = lo + (b * width) in
        let base_hi = if b = nbase - 1 then hi else base_lo + width - 1 in
        (* copy-in the base plus read halo, from the pre-launch snapshot *)
        let inlo = max lo (base_lo - r) and inhi = min hi (base_hi + r) in
        let lay = Common.Layout.create () in
        let box = { Common.blo = [| inlo |]; bhi = [| inhi |] } in
        List.iter
          (fun (d : Stencil.array_decl) ->
            let m = match d.fold with Some m -> m | None -> 1 in
            for slot = 0 to m - 1 do
              Common.Layout.add lay ~array:d.aname ~slot box
            done)
          prog.arrays;
        Common.Layout.iter lay ~f:(fun ~array ~slot box ->
            Common.load_box_rows ctx ~grid:(Grid.find ctx.grids array) ~slot ~box
              ~skip_x:(fun _ -> None)
              ~shared_addr:(fun p -> Common.Layout.addr lay ~array ~slot p));
        Sim.sync ctx.sim;
        (* local writes so concurrent blocks read pre-launch halo values *)
        let local : (string * int * int, float) Hashtbl.t = Hashtbl.create 64 in
        let cell (a : Stencil.access) ~t ~point =
          let g = Grid.find ctx.grids a.array in
          (a.array, Grid.slot g (t + a.time_off), point.(0) + a.offsets.(0))
        in
        let shared_addr (a : Stencil.access) ~point =
          let g = Grid.find ctx.grids a.array in
          let slot = Grid.slot g (t0 + a.time_off) in
          Common.Layout.addr lay ~array:a.array ~slot [| point.(0) + a.offsets.(0) |]
        in
        for j = 0 to hh_eff - 1 do
          let t = t0 + j in
          exec_interval ~tstep:t ~xlo:(base_lo + (r * j)) ~xhi:(base_hi - (r * j))
            ~read_value:
              (Some
                 (fun a ~point ->
                   match Hashtbl.find_opt local (cell a ~t ~point) with
                   | Some v -> v
                   | None ->
                       let g = Grid.find ctx.grids a.array in
                       let _, slot, x = cell a ~t ~point in
                       let idx =
                         match g.decl.fold with
                         | Some _ -> [| slot; x |]
                         | None -> [| x |]
                       in
                       Common.snapshot_read snap g (Grid.offset g idx)))
            ~write_value:
              (Some
                 (fun ~point v ->
                   (* write-through: local (for later steps of this block)
                      and global (interleaved copy-out) *)
                   Hashtbl.replace local (cell stmts.(0).write ~t ~point) v;
                   Grid.write_access ctx.grids stmts.(0).write ~t ~point v))
            ~shared_addr;
          Sim.sync ctx.sim
        done)
      ;
    (* ---- phase B: inverted trapezoids -------------------------------- *)
    (* Upright tile k at step j covers [ulo k j, uhi k j]; the inverted
       block at boundary b owns the gap containing its boundary. Every
       upright is wider than the reach over the block (narrow remainders
       were absorbed above), so no upright vanishes and every gap holds
       exactly one boundary; the owner scan below is kept as a guard. *)
    let ulo k j = lo + (k * width) + (r * j) in
    let uhi k j =
      (if k = nbase - 1 then hi else lo + ((k + 1) * width) - 1) - (r * j)
    in
    let bnd_of b = if b >= nbase then hi + 1 else min (lo + (b * width)) (hi + 1) in
    let gap_of b j =
      let bnd = bnd_of b in
      (* nearest nonempty upright strictly left / right of the boundary *)
      let rec left k = if k < 0 then lo - 1 else if ulo k j <= uhi k j && uhi k j < bnd then uhi k j else left (k - 1) in
      let rec right k = if k >= nbase then hi + 1 else if ulo k j <= uhi k j && ulo k j >= bnd then ulo k j else right (k + 1) in
      let gl = left (b - 1) + 1 and gh = right b - 1 in
      (* ownership: the smallest boundary inside (gl-1, gh] *)
      let rec owner b' = if bnd_of b' >= gl then owner (b' - 1) else b' + 1 in
      if b = owner b then Some (max lo gl, min hi gh) else None
    in
    Sim.launch ?pool ctx.sim
      ~name:(Fmt.str "split_down_tt%d" t0)
      ~blocks:(nbase + 1) ~threads:(min (2 * r * hh) 256) ~shared_bytes:0
      ~f:(fun b ->
        let bnd = bnd_of b in
        let lay = Common.Layout.create () in
        let inlo = max lo (bnd - (r * hh_eff) - r)
        and inhi = min hi (bnd + (r * hh_eff) + r - 1) in
        if inlo <= inhi then begin
          let box = { Common.blo = [| inlo |]; bhi = [| inhi |] } in
          List.iter
            (fun (d : Stencil.array_decl) ->
              let m = match d.fold with Some m -> m | None -> 1 in
              for slot = 0 to m - 1 do
                Common.Layout.add lay ~array:d.aname ~slot box
              done)
            prog.arrays;
          Common.Layout.iter lay ~f:(fun ~array ~slot box ->
              Common.load_box_rows ctx ~grid:(Grid.find ctx.grids array) ~slot ~box
                ~skip_x:(fun _ -> None)
                ~shared_addr:(fun p -> Common.Layout.addr lay ~array ~slot p));
          Sim.sync ctx.sim;
          let shared_addr (a : Stencil.access) ~point =
            let g = Grid.find ctx.grids a.array in
            let slot = Grid.slot g (t0 + a.time_off) in
            Common.Layout.addr lay ~array:a.array ~slot
              [| point.(0) + a.offsets.(0) |]
          in
          for j = 1 to hh_eff - 1 do
            let t = t0 + j in
            (match gap_of b j with
            | Some (xlo, xhi) ->
                exec_interval ~tstep:t ~xlo ~xhi ~read_value:None
                  ~write_value:None ~shared_addr
            | None -> ());
            Sim.sync ctx.sim
          done
        end);
    tt0 := t0 + hh_eff
  done;
  Common.finish ctx ~scheme:"split"
