(** PPCG-style baseline: classical space tiling with explicitly managed
    shared memory, no time tiling. One kernel launch per time step and
    statement; each thread block copies its tile plus halo into shared
    memory (rectangular over-approximation), computes one time step and
    writes results to global memory. *)

open Hextile_ir
open Hextile_gpusim

type config = {
  tile : int array option;
      (** space tile per dimension; [None] = built-in defaults (innermost
          32, 16/8/4 outer by dimensionality) *)
}

val default_config : config

val default_tile : dims:int -> int array

val run :
  ?pool:Hextile_par.Par.pool ->
  ?engine:Common.engine ->
  ?config:config ->
  ?name:string ->
  Stencil.t ->
  (string -> int) ->
  Device.t ->
  Common.result
