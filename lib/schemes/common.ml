open Hextile_ir
open Hextile_gpusim
open Hextile_util
module Obs = Hextile_obs.Obs

type engine = Ref | Tape

type compiled = {
  cidx : int;  (** statement index in the program (tape replay key) *)
  ceval : int -> int array -> float;  (** tstep -> point -> value *)
  cwgrid : Grid.t;
  cwflat : int -> int array -> int;  (** tstep -> point -> flat write index *)
  creads : (Grid.t * (int -> int array -> int)) list;  (** per distinct read *)
  tape : Tape.t option;
      (** [None] when row batching would reorder an aliased read/write
          (the per-lane interleaved reference order must be kept) *)
  tplan : Tape.plan option;
      (** the tape's fused run plan (compiled alongside it), for the
          analytic epilogue's bulk row replay *)
  tsrcs : (Grid.t * (int -> int array -> int)) array;
      (** tape sources in register order (= [creads] order) *)
  tdatas : float array array;  (** [tsrcs] data arrays (read-only share) *)
}

type ctx = {
  sim : Sim.t;
  prog : Stencil.t;
  env : string -> int;
  grids : (string, Grid.t) Hashtbl.t;
  k : int;
  dims : int;
  steps : int;
  stmts : Stencil.stmt array;
  lo : int array array;
  hi : int array array;
  updates : int Atomic.t;
  compiled : (string, compiled) Hashtbl.t;
  engine : engine;
}

(* Out-of-line error path: the hot loop pays one compare per dimension
   and never touches the [Fmt] machinery unless a bound actually
   fails. *)
let[@inline never] oob_access aname d c =
  invalid_arg (Fmt.str "access to %s out of bounds (dim %d: %d)" aname d c)

(* Compile an access into a closure computing the flat element index
   without allocation. *)
let access_flat grids (a : Stencil.access) =
  let g = Grid.find grids a.array in
  let dims = g.dims in
  let fold = g.decl.fold in
  let ns = Array.length a.offsets in
  let base_j = Array.length dims - ns in
  let offsets = a.offsets in
  let toff = a.time_off in
  let aname = a.array in
  fun tstep (point : int array) ->
    let off =
      ref (match fold with Some m -> Intutil.fmod (tstep + toff) m | None -> 0)
    in
    for d = 0 to ns - 1 do
      let c = point.(d) + offsets.(d) in
      let ext = dims.(base_j + d) in
      if c < 0 || c >= ext then oob_access aname d c;
      off := (!off * ext) + c
    done;
    !off

(* Flatten the right-hand side into a {!Tape.t}, with the statement's
   distinct reads as source registers. The tape evaluates every lane's
   reads before any lane's write, while the closure path interleaves
   read/write per lane — so statements where a read can alias the
   written storage slot at a *different* cell keep the closure path
   ([None]); reading the written cell itself is order-insensitive. *)
let compile_tape (s : Stencil.stmt) (wg : Grid.t) =
  let reads = Stencil.distinct_reads s in
  let hazard (a : Stencil.access) =
    String.equal a.array s.write.array
    && (match wg.decl.fold with
       | None -> true
       | Some m -> Intutil.fmod (a.time_off - s.write.time_off) m = 0)
    && a.offsets <> s.write.offsets
  in
  if List.exists hazard reads then None
  else begin
    let srcs = Array.of_list reads in
    let nsrcs = Array.length srcs in
    let src_reg a =
      let r = ref (-1) in
      Array.iteri (fun i a' -> if a' = a then r := i) srcs;
      !r
    in
    let instrs = ref [] in
    let next = ref nsrcs in
    let fresh () =
      let r = !next in
      incr next;
      r
    in
    let emit i = instrs := i :: !instrs in
    let rec comp (e : Stencil.fexpr) =
      match e with
      | Read a -> src_reg a
      | Fconst v ->
          let dst = fresh () in
          emit (Tape.Const { dst; v });
          dst
      | Neg e ->
          let a = comp e in
          let dst = fresh () in
          emit (Tape.Neg { dst; a });
          dst
      | Bin (op, l, r) ->
          let a = comp l in
          let b = comp r in
          let dst = fresh () in
          emit
            (match op with
            | Add -> Tape.Add { dst; a; b }
            | Sub -> Tape.Sub { dst; a; b }
            | Mul -> Tape.Mul { dst; a; b }
            | Div -> Tape.Div { dst; a; b });
          dst
    in
    let result = comp s.rhs in
    Some
      (Tape.make ~nsrcs ~nregs:(max !next 1) ~result
         ~instrs:(Array.of_list (List.rev !instrs)))
  end

(* Cross-request tape cache. A statement's register tape is a pure
   function of the statement and its write array's fold depth (the only
   part of the grid shape [compile_tape] consults), so compiled tapes are
   shared process-wide in a publish-once table — a long-lived server
   compiles each distinct statement once across every request instead of
   once per [make_ctx]. [Tape.t] is immutable (scratch buffers are
   per-domain, not part of the tape), so sharing is sound. *)
let tape_cache :
    (Stencil.stmt * int option, (Tape.t * Tape.plan) option) Hextile_par.Oncemap.t
    =
  Hextile_par.Oncemap.create ~bits:8 ~name:"schemes.tape" ()

let compile_stmt (ctx : ctx) (s : Stencil.stmt) =
  match Hashtbl.find_opt ctx.compiled s.sname with
  | Some c -> c
  | None ->
      let rec comp (e : Stencil.fexpr) =
        match e with
        | Read a ->
            let g = Grid.find ctx.grids a.array in
            let fl = access_flat ctx.grids a in
            fun tstep point -> g.data.(fl tstep point)
        | Fconst f -> fun _ _ -> f
        | Neg e ->
            let c = comp e in
            fun t p -> -.c t p
        | Bin (op, l, r) -> (
            let cl = comp l and cr = comp r in
            match op with
            | Add -> fun t p -> cl t p +. cr t p
            | Sub -> fun t p -> cl t p -. cr t p
            | Mul -> fun t p -> cl t p *. cr t p
            | Div -> fun t p -> cl t p /. cr t p)
      in
      let cidx =
        let r = ref 0 in
        Array.iteri (fun i (s' : Stencil.stmt) -> if String.equal s'.sname s.sname then r := i) ctx.stmts;
        !r
      in
      let wg = Grid.find ctx.grids s.write.array in
      let tsrcs =
        Array.of_list
          (List.map
             (fun (a : Stencil.access) ->
               (Grid.find ctx.grids a.array, access_flat ctx.grids a))
             (Stencil.distinct_reads s))
      in
      let tp =
        Hextile_par.Oncemap.find_or_compute tape_cache
          (s, wg.decl.fold)
          (fun () ->
            Option.map (fun t -> (t, Tape.plan t)) (compile_tape s wg))
      in
      let c =
        {
          cidx;
          ceval = comp s.rhs;
          cwgrid = wg;
          cwflat = access_flat ctx.grids s.write;
          creads = Array.to_list tsrcs;
          tape = Option.map fst tp;
          tplan = Option.map snd tp;
          tsrcs;
          tdatas = Array.map (fun ((g : Grid.t), _) -> g.data) tsrcs;
        }
      in
      Hashtbl.replace ctx.compiled s.sname c;
      c

let make_ctx ?(engine = Tape) (prog : Stencil.t) env dev =
  (match Stencil.validate prog with
  | Ok () -> ()
  | Error m -> invalid_arg ("Common.make_ctx: " ^ m));
  (* Same out-of-domain convention (and diagnostic) as Interp.run: any
     reachable out-of-bounds access is rejected before execution. *)
  (match Analysis.bounds_check prog env with
  | Ok () -> ()
  | Error m -> invalid_arg ("Common.make_ctx: " ^ m));
  let stmts = Array.of_list prog.stmts in
  let ctx =
    {
      sim = Sim.create dev;
      prog;
      env;
      grids = Grid.alloc prog env;
      k = Array.length stmts;
      dims = Stencil.spatial_dims prog;
      steps = Affp.eval prog.steps env;
      stmts;
      lo = Array.map (fun (s : Stencil.stmt) -> Array.map (fun e -> Affp.eval e env) s.lo) stmts;
      hi = Array.map (fun (s : Stencil.stmt) -> Array.map (fun e -> Affp.eval e env) s.hi) stmts;
      updates = Atomic.make 0;
      compiled = Hashtbl.create 8;
      engine;
    }
  in
  (* Make the context read-only before any (possibly parallel) block
     execution: place every array at its declaration-order address so the
     lazy first-touch path never runs, and precompile every statement so
     the memo table is never mutated from a worker domain. *)
  List.iter
    (fun (a : Stencil.array_decl) ->
      Addrmap.register ctx.sim.addr (Grid.find ctx.grids a.aname)
        ~offset_floats:0)
    prog.arrays;
  Array.iter (fun s -> ignore (compile_stmt ctx s)) stmts;
  ctx

type result = {
  scheme : string;
  device : Device.t;
  counters : Counters.t;
  kernel_time : float;
  transfer_time : float;
  updates : int;
  grids : (string, Grid.t) Hashtbl.t;
  blocks : int;
  blocks_memoized : int;
  blocks_analytic : int;
  classes : int;
  blit_rows : int;
  replay_lines : int;
  epilogue_ms : float;
  derive_ms : float;
  dram_ms : float;
  grids_ms : float;
}

let finish ctx ~scheme =
  let bytes = 4 * Analysis.footprint_floats ctx.prog ctx.env in
  {
    scheme;
    device = ctx.sim.dev;
    counters = ctx.sim.total;
    kernel_time = Sim.kernel_time ctx.sim;
    transfer_time = Sim.transfer_time ctx.sim ~bytes;
    updates = Atomic.get ctx.updates;
    grids = ctx.grids;
    blocks =
      List.fold_left (fun a (l : Sim.launch) -> a + l.blocks) 0 ctx.sim.launches;
    blocks_memoized = Atomic.get ctx.sim.blocks_memoized;
    blocks_analytic = Atomic.get ctx.sim.blocks_analytic;
    classes = Atomic.get ctx.sim.tile_classes;
    blit_rows = Atomic.get ctx.sim.analytic_blit_rows;
    replay_lines = Atomic.get ctx.sim.analytic_replay_lines;
    epilogue_ms = 1000.0 *. ctx.sim.analytic_epilogue_s;
    derive_ms = 1000.0 *. ctx.sim.analytic_derive_s;
    dram_ms = 1000.0 *. ctx.sim.analytic_dram_s;
    grids_ms = 1000.0 *. ctx.sim.analytic_grids_s;
  }

let total_time r = r.kernel_time +. r.transfer_time
let gstencils_per_s r = float_of_int r.updates /. total_time r /. 1e9
let gflops r ~flops_per_update =
  float_of_int r.updates *. flops_per_update /. total_time r /. 1e9

type box = { blo : int array; bhi : int array }

let empty_box ~dims = { blo = Array.make dims max_int; bhi = Array.make dims min_int }
let box_is_empty b = Array.exists2 (fun l h -> l > h) b.blo b.bhi
let box_count b =
  if box_is_empty b then 0
  else Array.fold_left ( * ) 1 (Array.map2 (fun l h -> h - l + 1) b.blo b.bhi)

let grow b p =
  Array.iteri
    (fun i x ->
      if x < b.blo.(i) then b.blo.(i) <- x;
      if x > b.bhi.(i) then b.bhi.(i) <- x)
    p

let box_inter a b =
  {
    blo = Array.map2 max a.blo b.blo;
    bhi = Array.map2 min a.bhi b.bhi;
  }

module Layout = struct
  type nonrec t = {
    entries : (string * int, box * int) Hashtbl.t;
    mutable next : int;
  }

  let create () = { entries = Hashtbl.create 8; next = 0 }

  let add t ~array ~slot box =
    if not (box_is_empty box) then begin
      Hashtbl.replace t.entries (array, slot) (box, t.next);
      t.next <- t.next + box_count box
    end

  let find t ~array ~slot =
    Option.map fst (Hashtbl.find_opt t.entries (array, slot))

  let addr t ~array ~slot point =
    match Hashtbl.find_opt t.entries (array, slot) with
    | None -> 0
    | Some (box, base) ->
        let off = ref 0 in
        Array.iteri
          (fun d x ->
            let x = max box.blo.(d) (min box.bhi.(d) x) in
            off := (!off * (box.bhi.(d) - box.blo.(d) + 1)) + (x - box.blo.(d)))
          point;
        base + !off

  let words t = t.next
  let iter t ~f = Hashtbl.iter (fun (array, slot) (box, _) -> f ~array ~slot box) t.entries
end

let warp_size = 32

(* Thread identity handed to the race sanitizer: the virtual thread that
   owns a domain cell, encoded injectively from its spatial point (the
   executors assign one lane per cell along x). Identities only need to
   be equal exactly when two warp events come from the same cell's lane. *)
let tid_of_point (point : int array) x =
  let h = ref 0 in
  for d = 0 to Array.length point - 2 do
    h := (!h * 8191) + point.(d) + 64
  done;
  (!h * 8191) + x + 64

let lane_tids point lane_xs =
  if Sanitize.enabled () then
    Some (Array.map (fun x -> tid_of_point point x) lane_xs)
  else None

(* Full index of a spatial point in a possibly folded grid. *)
let full_index (g : Grid.t) ~slot point =
  match g.decl.fold with
  | Some _ -> Array.append [| slot |] point
  | None -> point

let flat (g : Grid.t) ~slot point = Grid.offset g (full_index g ~slot point)

let iter_box_rows box ~f =
  if not (box_is_empty box) then begin
    let dims = Array.length box.blo in
    let point = Array.copy box.blo in
    let rec go d =
      if d = dims - 1 then f point
      else
        for x = box.blo.(d) to box.bhi.(d) do
          point.(d) <- x;
          go (d + 1)
        done
    in
    go 0
  end

let chunks_of xs f =
  let n = Array.length xs in
  let i = ref 0 in
  while !i < n do
    let len = min warp_size (n - !i) in
    f (Array.sub xs !i len);
    i := !i + len
  done

(* Per-domain tape register file, grown on demand. Compiled statements
   (and their tapes) are shared read-only across domains, so the mutable
   scratch lives in domain-local storage instead. *)
let scratch_key : Tape.scratch Domain.DLS.key = Domain.DLS.new_key (fun () -> [||])

let get_scratch words =
  let b = Domain.DLS.get scratch_key in
  if Array.length b >= words then b
  else begin
    let nb = Array.make words 0.0 in
    Domain.DLS.set scratch_key nb;
    nb
  end

(* Run one statement row through its tape: [n] lanes with per-source flat
   word bases [src_flats] (tape register order) writing from flat word
   [wflat]. Shared by the live tape path and [Sim.replay_stream]'s
   [Compute] events (the replay translates the recorded bases first). *)
let exec_tape_row ctx ~stmt_idx ~wflat ~src_flats ~n =
  let c = compile_stmt ctx ctx.stmts.(stmt_idx) in
  match c.tape with
  | None -> invalid_arg "Common.exec_tape_row: statement has no tape"
  | Some tape ->
      let regs = get_scratch (tape.nregs * Tape.lanes) in
      let out = c.cwgrid.data in
      let i = ref 0 in
      while !i < n do
        let nl = min Tape.lanes (n - !i) in
        Tape.exec tape regs ~datas:c.tdatas ~bases:src_flats ~dx:!i ~n:nl ~out
          ~out_base:(wflat + !i);
        i := !i + nl
      done;
      Obs.incr
        ~by:(Tape.length tape * ((n + Tape.lanes - 1) / Tape.lanes))
        "sim.tape_instrs";
      ignore (Atomic.fetch_and_add ctx.updates n)

(* Pre-resolved compute rows for the analytic mode's scaled blocks: the
   per-row tape/grid/base lookups are paid once per tile class, and
   adjacent recorded rows that continue each other in memory are
   coalesced into long runs executed through the statement's fused
   [Tape.plan] — replaying a member block is a handful of bulk
   [Tape.exec_plan] calls at a word offset, one scratch fetch and one
   atomic per block.

   Coalescing is restricted to rows of one (statement, tstep): rows of
   one statement at one time step write distinct cells and (the tape
   hazard check guarantees) never read another instance's write slot, so
   any execution order within the pair is exact. The recorded stream
   interleaves x-windows of different classical tiles, so contiguous
   stores are far apart in stream order; [compile_rows] therefore sorts
   the rows by (tstep, statement, write address) before merging. The
   sort is a safe schedule: groups run in ascending u = k·tstep + si
   order, which keeps every producer group before its consumers, and a
   write from a later group that precedes a read of the same address in
   stream order cannot exist in a correct execution (the read would have
   observed a future value), so moving later groups after earlier ones
   changes no read's value. A sorted row whose write or any source does
   not continue the previous row exactly (a gapped or non-ascending
   store pattern, e.g. clipped boundary rows) starts a fresh run — the
   exact per-row fallback. *)
type crow = {
  cplan : Tape.plan;
  cdatas : float array array;
  cout : float array;
  cwflat : int;
  csrcs : int array;
  cn : int;
  cmerged : int;  (** recorded rows coalesced into this run *)
}

type crows = {
  crows : crow array;
  cregs : int;  (** max register-file words across the rows *)
  cpoints : int;  (** Σ n: statement instances per replay *)
  cinstrs : int;  (** tape instructions per replay, for [sim.tape_instrs] *)
  cblit : int;
      (** recorded rows retired through multi-row coalesced runs per
          replay, for [sim.analytic_blit_rows] *)
}

type pending_run = {
  mutable pstmt : int;
  mutable ptstep : int;
  mutable pwflat : int;
  mutable psrcs : int array;
  mutable pn : int;
  mutable pmerged : int;
  mutable pplan : Tape.plan;
  mutable pdatas : float array array;
  mutable pout : float array;
}

let compile_rows ctx rows =
  let rows = Array.of_list rows in
  (* ascending (tstep, statement) = ascending u: dependency-safe group
     order; within a group, ascending write address exposes the
     contiguous runs. Keys are strict (one write per cell per group), so
     the sort is a total order. *)
  Array.sort
    (fun (s1, t1, w1, _, _) (s2, t2, w2, _, _) ->
      let c = compare t1 t2 in
      if c <> 0 then c
      else
        let c = compare s1 s2 in
        if c <> 0 then c else compare w1 w2)
    rows;
  let points = ref 0 and instrs = ref 0 and regs = ref 0 and blit = ref 0 in
  let acc = ref [] in
  let pending : pending_run option ref = ref None in
  let close () =
    match !pending with
    | None -> ()
    | Some p ->
        if p.pmerged > 1 then blit := !blit + p.pmerged;
        acc :=
          {
            cplan = p.pplan;
            cdatas = p.pdatas;
            cout = p.pout;
            cwflat = p.pwflat;
            csrcs = p.psrcs;
            cn = p.pn;
            cmerged = p.pmerged;
          }
          :: !acc;
        pending := None
  in
  Array.iter
    (fun (stmt_idx, tstep, wflat, srcs, n) ->
      let c = compile_stmt ctx ctx.stmts.(stmt_idx) in
      match (c.tape, c.tplan) with
      | Some tape, Some plan ->
          points := !points + n;
          instrs :=
            !instrs + (Tape.length tape * ((n + Tape.lanes - 1) / Tape.lanes));
          regs := max !regs (Tape.plan_scratch_words plan);
          let continues =
            match !pending with
            | Some p ->
                p.pstmt = stmt_idx && p.ptstep = tstep
                && wflat = p.pwflat + p.pn
                && Array.length srcs = Array.length p.psrcs
                && (let ok = ref true in
                    Array.iteri
                      (fun i s -> if s <> p.psrcs.(i) + p.pn then ok := false)
                      srcs;
                    !ok)
            | None -> false
          in
          if continues then begin
            let p = Option.get !pending in
            p.pn <- p.pn + n;
            p.pmerged <- p.pmerged + 1
          end
          else begin
            close ();
            pending :=
              Some
                {
                  pstmt = stmt_idx;
                  ptstep = tstep;
                  pwflat = wflat;
                  psrcs = srcs;
                  pn = n;
                  pmerged = 1;
                  pplan = plan;
                  pdatas = c.tdatas;
                  pout = c.cwgrid.data;
                }
          end
      | _ -> invalid_arg "Common.compile_rows: statement has no tape")
    rows;
  close ();
  {
    crows = Array.of_list (List.rev !acc);
    cregs = !regs;
    cpoints = !points;
    cinstrs = !instrs;
    cblit = !blit;
  }

let exec_rows (ctx : ctx) { crows; cregs; cpoints; cinstrs; cblit } ~off =
  let regs = get_scratch cregs in
  Array.iter
    (fun r ->
      Tape.exec_plan r.cplan regs ~datas:r.cdatas ~bases:r.csrcs ~dx:off
        ~n:r.cn ~out:r.cout ~out_base:(r.cwflat + off))
    crows;
  Obs.incr ~by:cinstrs "sim.tape_instrs";
  ignore (Atomic.fetch_and_add ctx.updates cpoints);
  if cblit > 0 then begin
    Obs.incr ~by:cblit "sim.blit_rows";
    ignore (Atomic.fetch_and_add ctx.sim.Sim.analytic_blit_rows cblit)
  end

let rows_stats { crows; cblit; _ } =
  (Array.length crows, Array.fold_left (fun a r -> a + r.cmerged) 0 crows, cblit)

let exec_stmt_row ctx ~stmt ~tstep ~point ~xs ?read_value ?write_value
    ?(count = true) ?loads_subset ~global_reads ~shared_replay
    ~interleave_store ~use_shared ~shared_addr () =
  let s : Stencil.stmt = stmt in
  let n = Array.length xs in
  if n > 0 then begin
    let xdim = ctx.dims - 1 in
    let x0 = xs.(0) in
    let reads =
      match loads_subset with
      | Some l -> l
      | None -> Stencil.distinct_reads s
    in
    let nflops = Stencil.flops s in
    let c = compile_stmt ctx s in
    point.(xdim) <- x0;
    (* Per-row base addresses; lanes advance with stride 1 along x (the
       innermost storage dimension). *)
    let read_bases =
      if global_reads then
        let flats =
          match loads_subset with
          | None -> c.creads
          | Some l ->
              List.map
                (fun (a : Stencil.access) ->
                  (Grid.find ctx.grids a.array, access_flat ctx.grids a))
                l
        in
        List.map
          (fun (g, fl) -> Addrmap.base ctx.sim.addr g + (4 * fl tstep point))
          flats
      else List.map (fun (r : Stencil.access) -> shared_addr r ~point) reads
    in
    let wbase_global =
      if interleave_store || not use_shared then
        Addrmap.base ctx.sim.addr c.cwgrid + (4 * c.cwflat tstep point)
      else 0
    and wbase_shared = if use_shared then shared_addr s.write ~point else 0 in
    (* The tape engine needs contiguous lanes (all executors pass
       contiguous xs; the check makes the fallback airtight) and cannot
       carry the sanitizer's per-lane thread identities. *)
    let batched =
      ctx.engine = Tape
      && (not (Sanitize.enabled ()))
      && xs.(n - 1) - x0 = n - 1
    in
    if not batched then
      chunks_of xs (fun lane_xs ->
          let nlanes = Array.length lane_xs in
          let dx0 = lane_xs.(0) - x0 in
          let tids = lane_tids point lane_xs in
          (* loads *)
          if global_reads then
            List.iter
              (fun base ->
                Sim.global_load_warp ctx.sim
                  (Array.init nlanes (fun i -> Some (base + (4 * (dx0 + i))))))
              read_bases
          else
            List.iter
              (fun base ->
                Sim.shared_load_warp ~replay:shared_replay ?tids ctx.sim
                  (Array.init nlanes (fun i -> Some (base + dx0 + i))))
              read_bases;
          (* arithmetic *)
          Sim.flops_warp ctx.sim ~active:nlanes ~per_lane:nflops;
          (* store accounting *)
          if use_shared then
            Sim.shared_store_warp ~replay:shared_replay ?tids ctx.sim
              (Array.init nlanes (fun i -> Some (wbase_shared + dx0 + i)));
          if interleave_store || not use_shared then
            Sim.global_store_warp ctx.sim
              (Array.init nlanes (fun i -> Some (wbase_global + (4 * (dx0 + i)))));
          (* functional execution *)
          (match (read_value, write_value) with
          | None, None ->
              (* fast path: compiled evaluator, direct grid write *)
              Array.iter
                (fun x ->
                  point.(xdim) <- x;
                  c.cwgrid.data.(c.cwflat tstep point) <- c.ceval tstep point)
                lane_xs
          | _ ->
              let read =
                match read_value with
                | Some rv -> fun a p -> rv a ~point:p
                | None -> fun a p -> Grid.read_access ctx.grids a ~t:tstep ~point:p
              in
              Array.iter
                (fun x ->
                  point.(xdim) <- x;
                  let v = Interp.eval_with ~read s.rhs ~point in
                  match write_value with
                  | Some w -> w ~point v
                  | None -> Grid.write_access ctx.grids s.write ~t:tstep ~point v)
                lane_xs);
          if count then ignore (Atomic.fetch_and_add ctx.updates nlanes))
    else begin
      (* Batched accounting: one event per warp chunk, same event
         sequence (and counters) as the per-lane path above. *)
      let i = ref 0 in
      while !i < n do
        let nl = min warp_size (n - !i) in
        let dx0 = !i in
        if global_reads then
          List.iter
            (fun base ->
              Sim.global_load_run ctx.sim ~addr:(base + (4 * dx0)) ~n:nl)
            read_bases
        else
          List.iter
            (fun _base -> Sim.shared_load_run ~replay:shared_replay ctx.sim ~n:nl)
            read_bases;
        Sim.flops_warp ctx.sim ~active:nl ~per_lane:nflops;
        if use_shared then
          Sim.shared_store_run ~replay:shared_replay ctx.sim ~n:nl;
        if interleave_store || not use_shared then
          Sim.global_store_run ctx.sim ~addr:(wbase_global + (4 * dx0)) ~n:nl;
        i := !i + nl
      done;
      (* Functional execution. *)
      (match (read_value, write_value, c.tape) with
      | None, None, Some tape ->
          let xlast = xs.(n - 1) in
          let nsrc = Array.length c.tsrcs in
          let bases = Array.make nsrc 0 in
          (* Resolve per-source word bases at x0 and validate the other
             endpoint: x is the innermost storage dimension (stride 1),
             so per-dimension validity at both row endpoints covers the
             whole contiguous lane range. *)
          for k = 0 to nsrc - 1 do
            let _, fl = c.tsrcs.(k) in
            point.(xdim) <- x0;
            bases.(k) <- fl tstep point;
            point.(xdim) <- xlast;
            ignore (fl tstep point)
          done;
          point.(xdim) <- x0;
          let wflat = c.cwflat tstep point in
          point.(xdim) <- xlast;
          ignore (c.cwflat tstep point);
          point.(xdim) <- x0;
          let regs = get_scratch (tape.nregs * Tape.lanes) in
          let out = c.cwgrid.data in
          let i = ref 0 in
          while !i < n do
            let nl = min Tape.lanes (n - !i) in
            Tape.exec tape regs ~datas:c.tdatas ~bases ~dx:!i ~n:nl ~out
              ~out_base:(wflat + !i);
            i := !i + nl
          done;
          Obs.incr
            ~by:(Tape.length tape * ((n + Tape.lanes - 1) / Tape.lanes))
            "sim.tape_instrs";
          if Sim.recording_active ctx.sim then begin
            let srcs =
              Array.init nsrc (fun k ->
                  Addrmap.base ctx.sim.addr (fst c.tsrcs.(k)) + (4 * bases.(k)))
            in
            Sim.record_compute ctx.sim ~stmt:c.cidx ~tstep
              ~waddr:(Addrmap.base ctx.sim.addr c.cwgrid + (4 * wflat))
              ~srcs ~n
          end
      | _ ->
          (* aliasing hazard or value overrides: the per-lane interleaved
             read/write order is semantically significant, and a recorded
             stream could not replay it *)
          Sim.record_invalidate ctx.sim;
          let read =
            match read_value with
            | Some rv -> fun a p -> rv a ~point:p
            | None -> fun a p -> Grid.read_access ctx.grids a ~t:tstep ~point:p
          in
          let eval_default = read_value = None && write_value = None in
          Array.iter
            (fun x ->
              point.(xdim) <- x;
              if eval_default then
                c.cwgrid.data.(c.cwflat tstep point) <- c.ceval tstep point
              else begin
                let v = Interp.eval_with ~read s.rhs ~point in
                match write_value with
                | Some w -> w ~point v
                | None -> Grid.write_access ctx.grids s.write ~t:tstep ~point v
              end)
            xs);
      if count then ignore (Atomic.fetch_and_add ctx.updates n)
    end
  end

let batched_engine ctx = ctx.engine = Tape && not (Sanitize.enabled ())

let strictly_ascending a =
  let ok = ref true in
  for i = 1 to Array.length a - 1 do
    if a.(i) <= a.(i - 1) then ok := false
  done;
  !ok

let load_box_rows ctx ~grid ~slot ~box ~skip_x ~shared_addr =
  let batched = batched_engine ctx in
  iter_box_rows box ~f:(fun row ->
      let xdim = Array.length row - 1 in
      let xlo = box.blo.(xdim) and xhi = box.bhi.(xdim) in
      let skip = skip_x row in
      let xs =
        let keep x = match skip with None -> true | Some (a, b) -> x < a || x > b in
        Array.of_list (List.filter keep (Intutil.range xlo xhi))
      in
      if Array.length xs > 0 then begin
        row.(xdim) <- xlo;
        let gbase = Addrmap.addr ctx.sim.addr grid (flat grid ~slot row) in
        let sbase = shared_addr row in
        if batched then
          chunks_of xs (fun lane_xs ->
              let nl = Array.length lane_xs in
              if lane_xs.(nl - 1) - lane_xs.(0) = nl - 1 then begin
                let d = lane_xs.(0) - xlo in
                Sim.global_load_run ctx.sim ~addr:(gbase + (4 * d)) ~n:nl;
                Sim.shared_store_run ctx.sim ~n:nl
              end
              else begin
                (* this warp straddles the reuse gap *)
                Sim.global_load_lanes ctx.sim
                  (Array.map (fun x -> gbase + (4 * (x - xlo))) lane_xs);
                Sim.shared_store_lanes ctx.sim
                  (Array.map (fun x -> sbase + x - xlo) lane_xs)
              end)
        else
          chunks_of xs (fun lane_xs ->
              let tids = lane_tids row lane_xs in
              Sim.global_load_warp ctx.sim
                (Array.map (fun x -> Some (gbase + (4 * (x - xlo)))) lane_xs);
              Sim.shared_store_warp ?tids ctx.sim
                (Array.map (fun x -> Some (sbase + x - xlo)) lane_xs))
      end)

let shared_copy_rows ctx ~box ~shared_addr =
  let batched = batched_engine ctx in
  iter_box_rows box ~f:(fun row ->
      let xdim = Array.length row - 1 in
      let xlo = box.blo.(xdim) in
      let xs = Array.of_list (Intutil.range xlo box.bhi.(xdim)) in
      if Array.length xs > 0 then begin
        row.(xdim) <- xlo;
        let sbase = shared_addr row in
        if batched then
          chunks_of xs (fun lane_xs ->
              let nl = Array.length lane_xs in
              Sim.shared_load_run ctx.sim ~n:nl;
              Sim.shared_store_run ctx.sim ~n:nl)
        else
          chunks_of xs (fun lane_xs ->
              (* one lane moves one word: load and store share identities *)
              let tids = lane_tids row lane_xs in
              let saddrs = Array.map (fun x -> Some (sbase + x - xlo)) lane_xs in
              Sim.shared_load_warp ?tids ctx.sim saddrs;
              Sim.shared_store_warp ?tids ctx.sim saddrs)
      end)

let store_cells ctx ~grid ~cells ~via_shared =
  let batched = batched_engine ctx in
  let arr = Array.of_list cells in
  chunks_of arr (fun lane_cells ->
      if batched && strictly_ascending lane_cells then begin
        if via_shared then Sim.shared_load_lanes ctx.sim lane_cells;
        Sim.global_store_lanes ~serial:true ctx.sim
          (Array.map (fun c -> Addrmap.addr ctx.sim.addr grid c) lane_cells)
      end
      else begin
        if via_shared then
          Sim.shared_load_warp
            ?tids:(if Sanitize.enabled () then Some lane_cells else None)
            ctx.sim
            (Array.map (fun c -> Some c) lane_cells);
        Sim.global_store_warp ~serial:true ctx.sim
          (Array.map (fun c -> Some (Addrmap.addr ctx.sim.addr grid c)) lane_cells)
      end)

let snapshot (ctx : ctx) =
  let tbl = Hashtbl.create 8 in
  Hashtbl.iter (fun name (g : Grid.t) -> Hashtbl.replace tbl name (Array.copy g.data)) ctx.grids;
  tbl

let snapshot_read snap (g : Grid.t) idx = (Hashtbl.find snap g.decl.aname).(idx)
