open Hextile_ir
open Hextile_gpusim
open Hextile_util

type compiled = {
  ceval : int -> int array -> float;  (** tstep -> point -> value *)
  cwgrid : Grid.t;
  cwflat : int -> int array -> int;  (** tstep -> point -> flat write index *)
  creads : (Grid.t * (int -> int array -> int)) list;  (** per distinct read *)
}

type ctx = {
  sim : Sim.t;
  prog : Stencil.t;
  env : string -> int;
  grids : (string, Grid.t) Hashtbl.t;
  k : int;
  dims : int;
  steps : int;
  stmts : Stencil.stmt array;
  lo : int array array;
  hi : int array array;
  updates : int Atomic.t;
  compiled : (string, compiled) Hashtbl.t;
}

(* Compile an access into a closure computing the flat element index
   without allocation. *)
let access_flat grids (a : Stencil.access) =
  let g = Grid.find grids a.array in
  let dims = g.dims in
  let fold = g.decl.fold in
  let ns = Array.length a.offsets in
  let base_j = Array.length dims - ns in
  let offsets = a.offsets in
  let toff = a.time_off in
  fun tstep (point : int array) ->
    let off =
      ref (match fold with Some m -> Intutil.fmod (tstep + toff) m | None -> 0)
    in
    for d = 0 to ns - 1 do
      let c = point.(d) + offsets.(d) in
      let ext = dims.(base_j + d) in
      if c < 0 || c >= ext then
        invalid_arg (Fmt.str "access to %s out of bounds (dim %d: %d)" a.array d c);
      off := (!off * ext) + c
    done;
    !off

let compile_stmt (ctx : ctx) (s : Stencil.stmt) =
  match Hashtbl.find_opt ctx.compiled s.sname with
  | Some c -> c
  | None ->
      let rec comp (e : Stencil.fexpr) =
        match e with
        | Read a ->
            let g = Grid.find ctx.grids a.array in
            let fl = access_flat ctx.grids a in
            fun tstep point -> g.data.(fl tstep point)
        | Fconst f -> fun _ _ -> f
        | Neg e ->
            let c = comp e in
            fun t p -> -.c t p
        | Bin (op, l, r) -> (
            let cl = comp l and cr = comp r in
            match op with
            | Add -> fun t p -> cl t p +. cr t p
            | Sub -> fun t p -> cl t p -. cr t p
            | Mul -> fun t p -> cl t p *. cr t p
            | Div -> fun t p -> cl t p /. cr t p)
      in
      let c =
        {
          ceval = comp s.rhs;
          cwgrid = Grid.find ctx.grids s.write.array;
          cwflat = access_flat ctx.grids s.write;
          creads =
            List.map
              (fun (a : Stencil.access) ->
                (Grid.find ctx.grids a.array, access_flat ctx.grids a))
              (Stencil.distinct_reads s);
        }
      in
      Hashtbl.replace ctx.compiled s.sname c;
      c

let make_ctx (prog : Stencil.t) env dev =
  (match Stencil.validate prog with
  | Ok () -> ()
  | Error m -> invalid_arg ("Common.make_ctx: " ^ m));
  (* Same out-of-domain convention (and diagnostic) as Interp.run: any
     reachable out-of-bounds access is rejected before execution. *)
  (match Analysis.bounds_check prog env with
  | Ok () -> ()
  | Error m -> invalid_arg ("Common.make_ctx: " ^ m));
  let stmts = Array.of_list prog.stmts in
  let ctx =
    {
      sim = Sim.create dev;
      prog;
      env;
      grids = Grid.alloc prog env;
      k = Array.length stmts;
      dims = Stencil.spatial_dims prog;
      steps = Affp.eval prog.steps env;
      stmts;
      lo = Array.map (fun (s : Stencil.stmt) -> Array.map (fun e -> Affp.eval e env) s.lo) stmts;
      hi = Array.map (fun (s : Stencil.stmt) -> Array.map (fun e -> Affp.eval e env) s.hi) stmts;
      updates = Atomic.make 0;
      compiled = Hashtbl.create 8;
    }
  in
  (* Make the context read-only before any (possibly parallel) block
     execution: place every array at its declaration-order address so the
     lazy first-touch path never runs, and precompile every statement so
     the memo table is never mutated from a worker domain. *)
  List.iter
    (fun (a : Stencil.array_decl) ->
      Addrmap.register ctx.sim.addr (Grid.find ctx.grids a.aname)
        ~offset_floats:0)
    prog.arrays;
  Array.iter (fun s -> ignore (compile_stmt ctx s)) stmts;
  ctx

type result = {
  scheme : string;
  device : Device.t;
  counters : Counters.t;
  kernel_time : float;
  transfer_time : float;
  updates : int;
  grids : (string, Grid.t) Hashtbl.t;
}

let finish ctx ~scheme =
  let bytes = 4 * Analysis.footprint_floats ctx.prog ctx.env in
  {
    scheme;
    device = ctx.sim.dev;
    counters = ctx.sim.total;
    kernel_time = Sim.kernel_time ctx.sim;
    transfer_time = Sim.transfer_time ctx.sim ~bytes;
    updates = Atomic.get ctx.updates;
    grids = ctx.grids;
  }

let total_time r = r.kernel_time +. r.transfer_time
let gstencils_per_s r = float_of_int r.updates /. total_time r /. 1e9
let gflops r ~flops_per_update =
  float_of_int r.updates *. flops_per_update /. total_time r /. 1e9

type box = { blo : int array; bhi : int array }

let empty_box ~dims = { blo = Array.make dims max_int; bhi = Array.make dims min_int }
let box_is_empty b = Array.exists2 (fun l h -> l > h) b.blo b.bhi
let box_count b =
  if box_is_empty b then 0
  else Array.fold_left ( * ) 1 (Array.map2 (fun l h -> h - l + 1) b.blo b.bhi)

let grow b p =
  Array.iteri
    (fun i x ->
      if x < b.blo.(i) then b.blo.(i) <- x;
      if x > b.bhi.(i) then b.bhi.(i) <- x)
    p

let box_inter a b =
  {
    blo = Array.map2 max a.blo b.blo;
    bhi = Array.map2 min a.bhi b.bhi;
  }

module Layout = struct
  type nonrec t = {
    entries : (string * int, box * int) Hashtbl.t;
    mutable next : int;
  }

  let create () = { entries = Hashtbl.create 8; next = 0 }

  let add t ~array ~slot box =
    if not (box_is_empty box) then begin
      Hashtbl.replace t.entries (array, slot) (box, t.next);
      t.next <- t.next + box_count box
    end

  let find t ~array ~slot =
    Option.map fst (Hashtbl.find_opt t.entries (array, slot))

  let addr t ~array ~slot point =
    match Hashtbl.find_opt t.entries (array, slot) with
    | None -> 0
    | Some (box, base) ->
        let off = ref 0 in
        Array.iteri
          (fun d x ->
            let x = max box.blo.(d) (min box.bhi.(d) x) in
            off := (!off * (box.bhi.(d) - box.blo.(d) + 1)) + (x - box.blo.(d)))
          point;
        base + !off

  let words t = t.next
  let iter t ~f = Hashtbl.iter (fun (array, slot) (box, _) -> f ~array ~slot box) t.entries
end

let warp_size = 32

(* Thread identity handed to the race sanitizer: the virtual thread that
   owns a domain cell, encoded injectively from its spatial point (the
   executors assign one lane per cell along x). Identities only need to
   be equal exactly when two warp events come from the same cell's lane. *)
let tid_of_point (point : int array) x =
  let h = ref 0 in
  for d = 0 to Array.length point - 2 do
    h := (!h * 8191) + point.(d) + 64
  done;
  (!h * 8191) + x + 64

let lane_tids point lane_xs =
  if Sanitize.enabled () then
    Some (Array.map (fun x -> tid_of_point point x) lane_xs)
  else None

(* Full index of a spatial point in a possibly folded grid. *)
let full_index (g : Grid.t) ~slot point =
  match g.decl.fold with
  | Some _ -> Array.append [| slot |] point
  | None -> point

let flat (g : Grid.t) ~slot point = Grid.offset g (full_index g ~slot point)

let iter_box_rows box ~f =
  if not (box_is_empty box) then begin
    let dims = Array.length box.blo in
    let point = Array.copy box.blo in
    let rec go d =
      if d = dims - 1 then f point
      else
        for x = box.blo.(d) to box.bhi.(d) do
          point.(d) <- x;
          go (d + 1)
        done
    in
    go 0
  end

let chunks_of xs f =
  let n = Array.length xs in
  let i = ref 0 in
  while !i < n do
    let len = min warp_size (n - !i) in
    f (Array.sub xs !i len);
    i := !i + len
  done

let exec_stmt_row ctx ~stmt ~tstep ~point ~xs ?read_value ?write_value
    ?(count = true) ?loads_subset ~global_reads ~shared_replay
    ~interleave_store ~use_shared ~shared_addr () =
  let s : Stencil.stmt = stmt in
  let n = Array.length xs in
  if n > 0 then begin
    let xdim = ctx.dims - 1 in
    let x0 = xs.(0) in
    let reads =
      match loads_subset with
      | Some l -> l
      | None -> Stencil.distinct_reads s
    in
    let nflops = Stencil.flops s in
    let c = compile_stmt ctx s in
    point.(xdim) <- x0;
    (* Per-row base addresses; lanes advance with stride 1 along x (the
       innermost storage dimension). *)
    let read_bases =
      if global_reads then
        let flats =
          match loads_subset with
          | None -> c.creads
          | Some l ->
              List.map
                (fun (a : Stencil.access) ->
                  (Grid.find ctx.grids a.array, access_flat ctx.grids a))
                l
        in
        List.map
          (fun (g, fl) -> Addrmap.base ctx.sim.addr g + (4 * fl tstep point))
          flats
      else List.map (fun (r : Stencil.access) -> shared_addr r ~point) reads
    in
    let wbase_global =
      if interleave_store || not use_shared then
        Addrmap.base ctx.sim.addr c.cwgrid + (4 * c.cwflat tstep point)
      else 0
    and wbase_shared = if use_shared then shared_addr s.write ~point else 0 in
    chunks_of xs (fun lane_xs ->
        let nlanes = Array.length lane_xs in
        let dx0 = lane_xs.(0) - x0 in
        let tids = lane_tids point lane_xs in
        (* loads *)
        if global_reads then
          List.iter
            (fun base ->
              Sim.global_load_warp ctx.sim
                (Array.init nlanes (fun i -> Some (base + (4 * (dx0 + i))))))
            read_bases
        else
          List.iter
            (fun base ->
              Sim.shared_load_warp ~replay:shared_replay ?tids ctx.sim
                (Array.init nlanes (fun i -> Some (base + dx0 + i))))
            read_bases;
        (* arithmetic *)
        Sim.flops_warp ctx.sim ~active:nlanes ~per_lane:nflops;
        (* store accounting *)
        if use_shared then
          Sim.shared_store_warp ~replay:shared_replay ?tids ctx.sim
            (Array.init nlanes (fun i -> Some (wbase_shared + dx0 + i)));
        if interleave_store || not use_shared then
          Sim.global_store_warp ctx.sim
            (Array.init nlanes (fun i -> Some (wbase_global + (4 * (dx0 + i)))));
        (* functional execution *)
        (match (read_value, write_value) with
        | None, None ->
            (* fast path: compiled evaluator, direct grid write *)
            Array.iter
              (fun x ->
                point.(xdim) <- x;
                c.cwgrid.data.(c.cwflat tstep point) <- c.ceval tstep point)
              lane_xs
        | _ ->
            let read =
              match read_value with
              | Some rv -> fun a p -> rv a ~point:p
              | None -> fun a p -> Grid.read_access ctx.grids a ~t:tstep ~point:p
            in
            Array.iter
              (fun x ->
                point.(xdim) <- x;
                let v = Interp.eval_with ~read s.rhs ~point in
                match write_value with
                | Some w -> w ~point v
                | None -> Grid.write_access ctx.grids s.write ~t:tstep ~point v)
              lane_xs);
        if count then ignore (Atomic.fetch_and_add ctx.updates nlanes))
  end

let load_box_rows ctx ~grid ~slot ~box ~skip_x ~shared_addr =
  iter_box_rows box ~f:(fun row ->
      let xdim = Array.length row - 1 in
      let xlo = box.blo.(xdim) and xhi = box.bhi.(xdim) in
      let skip = skip_x row in
      let xs =
        let keep x = match skip with None -> true | Some (a, b) -> x < a || x > b in
        Array.of_list (List.filter keep (Intutil.range xlo xhi))
      in
      if Array.length xs > 0 then begin
        row.(xdim) <- xlo;
        let gbase = Addrmap.addr ctx.sim.addr grid (flat grid ~slot row) in
        let sbase = shared_addr row in
        chunks_of xs (fun lane_xs ->
            let tids = lane_tids row lane_xs in
            Sim.global_load_warp ctx.sim
              (Array.map (fun x -> Some (gbase + (4 * (x - xlo)))) lane_xs);
            Sim.shared_store_warp ?tids ctx.sim
              (Array.map (fun x -> Some (sbase + x - xlo)) lane_xs))
      end)

let shared_copy_rows ctx ~box ~shared_addr =
  iter_box_rows box ~f:(fun row ->
      let xdim = Array.length row - 1 in
      let xlo = box.blo.(xdim) in
      let xs = Array.of_list (Intutil.range xlo box.bhi.(xdim)) in
      if Array.length xs > 0 then begin
        row.(xdim) <- xlo;
        let sbase = shared_addr row in
        chunks_of xs (fun lane_xs ->
            (* one lane moves one word: load and store share identities *)
            let tids = lane_tids row lane_xs in
            let saddrs = Array.map (fun x -> Some (sbase + x - xlo)) lane_xs in
            Sim.shared_load_warp ?tids ctx.sim saddrs;
            Sim.shared_store_warp ?tids ctx.sim saddrs)
      end)

let store_cells ctx ~grid ~cells ~via_shared =
  let arr = Array.of_list cells in
  chunks_of arr (fun lane_cells ->
      if via_shared then
        Sim.shared_load_warp
          ?tids:(if Sanitize.enabled () then Some lane_cells else None)
          ctx.sim
          (Array.map (fun c -> Some c) lane_cells);
      Sim.global_store_warp ~serial:true ctx.sim
        (Array.map (fun c -> Some (Addrmap.addr ctx.sim.addr grid c)) lane_cells))

let snapshot (ctx : ctx) =
  let tbl = Hashtbl.create 8 in
  Hashtbl.iter (fun name (g : Grid.t) -> Hashtbl.replace tbl name (Array.copy g.data)) ctx.grids;
  tbl

let snapshot_read snap (g : Grid.t) idx = (Hashtbl.find snap g.decl.aname).(idx)
