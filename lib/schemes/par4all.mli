(** Par4All-style baseline: one kernel launch per time step and statement,
    one thread per grid point, all accesses to global memory (the hardware
    caches are the only reuse mechanism). Mirrors the paper's Par4All
    comparator, which does not use shared memory or time tiling. *)

open Hextile_ir
open Hextile_gpusim

type config = { threads_per_block : int }

val default_config : config

val run :
  ?pool:Hextile_par.Par.pool ->
  ?engine:Common.engine ->
  ?config:config ->
  Stencil.t ->
  (string -> int) ->
  Device.t ->
  Common.result
