(* Benchmark harness: regenerates every table and figure of the paper's
   evaluation on the GPU simulator, and runs Bechamel micro-benchmarks of
   each experiment driver.

   Usage:
     dune exec bench/main.exe                 -- everything, quick sizes
     dune exec bench/main.exe -- --only table1 --only fig4
     dune exec bench/main.exe -- --full       -- larger scaled instances
     dune exec bench/main.exe -- --no-micro   -- skip Bechamel timings
     dune exec bench/main.exe -- --json out.json
                                              -- also write results as JSON
     dune exec bench/main.exe -- --jobs 4     -- worker domains for the
                                                 parallel runtime
     dune exec bench/main.exe -- --only parcmp --jobs 4 --json BENCH_par.json
                                              -- jobs=1 vs jobs=N comparison
     dune exec bench/main.exe -- --only parattr --jobs 4 \
         --json BENCH_parattr.json --trace-out parattr_trace.json
                                              -- attribute jobs=N wall time to
                                                 {compute, idle, encode,
                                                 replay, absorb} phases

   With --json every selected experiment contributes a machine-readable
   entry keyed by its id: structured rows for the performance tables
   (table1/table2/table45/ablate/micro) and {"text": ...} wrappers for
   the figure reproductions, so the whole run can be diffed across
   commits. The top-level "meta" block records git rev, OCaml version,
   jobs and an injected timestamp (HEXTILE_BENCH_TIMESTAMP) so committed
   BENCH_*.json files carry their provenance. *)

module Experiments = Hextile_experiments.Experiments
module Json = Hextile_obs.Json
module Timeline = Hextile_obs.Timeline
module Par = Hextile_par.Par
open Hextile_gpusim
open Hextile_stencils

let section title = Fmt.pr "@.===== %s =====@." title
let text_json s = Json.Obj [ ("text", Json.Str s) ]

let fig1 () =
  section "Figure 1: Jacobi 2D stencil (frontend input)";
  print_string Experiments.figure1_source;
  (match
     Hextile_frontend.Front.parse_string ~name:"jacobi2d" Experiments.figure1_source
   with
  | Ok p ->
      Fmt.pr "parsed and lowered: %d statement(s), params %a@."
        (List.length p.stmts)
        Fmt.(list ~sep:(any ", ") string)
        p.params
  | Error m -> Fmt.pr "frontend error: %s@." m);
  text_json Experiments.figure1_source

let fig_text title text =
  section title;
  let s = text () in
  print_string s;
  text_json s

let fig2 () = fig_text "Figure 2: generated PTX-style core" Experiments.figure2_text
let fig3 () = fig_text "Figure 3: opposite dependence cone" Experiments.figure3_text
let fig4 () = fig_text "Figure 4: hexagonal tile shape" Experiments.figure4_text

let fig5 () =
  fig_text "Figure 5: hexagonal tiling pattern (phases 0/1)" Experiments.figure5_text

let fig6 () =
  fig_text "Figure 6: hybrid n-dimensional schedule" Experiments.figure6_text

let table3 () = fig_text "Table 3: stencil characteristics" Experiments.table3_text

let table1 ~pool ~quick () =
  section "Table 1: GStencils/second on (scaled) GTX 470";
  let rows = Experiments.table12 ~pool ~quick Device.gtx470 in
  Experiments.pp_table12 Device.gtx470 Fmt.stdout rows;
  print_string (Experiments.patus_note ~pool ~quick Device.gtx470);
  Experiments.table12_json Device.gtx470 rows

let table2 ~pool ~quick () =
  section "Table 2: GStencils/second on (scaled) NVS 5200M";
  let rows = Experiments.table12 ~pool ~quick Device.nvs5200m in
  Experiments.pp_table12 Device.nvs5200m Fmt.stdout rows;
  Experiments.table12_json Device.nvs5200m rows

let tables45 ~pool ~quick () =
  section "Table 4: shared-memory optimization ladder (heat 3D, GFLOPS)";
  let gtx = Experiments.ladder ~pool ~quick Device.gtx470 in
  let nvs = Experiments.ladder ~pool ~quick Device.nvs5200m in
  Experiments.pp_table4 Fmt.stdout [ (Device.nvs5200m, nvs); (Device.gtx470, gtx) ];
  section "Table 5: performance counters (heat 3D ladder)";
  Experiments.pp_table5 Fmt.stdout (Device.gtx470, gtx);
  Json.Obj
    [
      ("gtx470", Experiments.ladder_json Device.gtx470 gtx);
      ("nvs5200m", Experiments.ladder_json Device.nvs5200m nvs);
    ]

let tilesize () =
  fig_text "Section 3.7: tile-size selection model" Experiments.tile_size_sweep_text

let diamond () =
  fig_text "Section 5: diamond vs hexagonal tile regularity"
    Experiments.diamond_vs_hex_text

let split1d ~quick () =
  fig_text "1D degenerate case: hexagonal vs split tiling" (fun () ->
      Experiments.split1d_text ~quick Device.gtx470)

let ablate ~pool ~quick () =
  section "Ablation: time-tile height h (hybrid, heat 2D, GTX 470)";
  let sweep =
    Experiments.h_sweep ~pool ~quick Device.gtx470 Hextile_stencils.Suite.heat2d
  in
  List.iter
    (fun (h, g) -> Fmt.pr "h=%d (%d time steps/tile): %.2f GStencils/s@." h ((2 * h) + 2) g)
    sweep;
  Experiments.h_sweep_json sweep

(* ---- parallel-runtime benchmark: jobs=1 vs jobs=N -------------------- *)

(* Wall-clock comparison of the full table12 sim suite sequentially vs
   fanned out over the pool, plus a bit-exactness check of the rows —
   the bench-level witness of the determinism contract. The JSON lands
   in BENCH_par.json via `make bench`.

   The run *fails* below a speedup floor, so a scheduling or shared-cache
   regression that quietly re-serializes the suite turns the bench red
   instead of just re-shading a chart. The floor is core-aware — this
   bench also runs on laptops and single-core CI shards where a 2x
   demand would be physically impossible: >= 4 cores demand 2x (the
   roadmap target), 2-3 cores demand 1.2x, and on a single core demand
   only that the parallel run not fall off a cliff (0.6x — measured
   jobs=4 oversubscription on one core runs at ~0.7x of sequential
   from domain switching and GC contention). The HEXTILE_PARCMP_FLOOR
   env var overrides the computed floor — CI uses it to pin the gate
   independent of the runner's advertised cores. *)
let parcmp_floor ~jobs =
  match Sys.getenv_opt "HEXTILE_PARCMP_FLOOR" with
  | Some s -> float_of_string s
  | None ->
      let cores = Domain.recommended_domain_count () in
      if cores >= 4 && jobs >= 4 then 2.0
      else if cores >= 2 && jobs >= 2 then 1.2
      else 0.6

let parcmp ~jobs ~quick () =
  section (Fmt.str "Parallel runtime: table12 suite, jobs=1 vs jobs=%d" jobs);
  let timed j =
    Par.with_pool ~jobs:j @@ fun pool ->
    let t0 = Unix.gettimeofday () in
    let rows = Experiments.table12 ~pool ~quick Device.gtx470 in
    (rows, Unix.gettimeofday () -. t0)
  in
  let rows1, t1 = timed 1 in
  let rows_n, tn = timed jobs in
  let identical = rows1 = rows_n in
  let speedup = t1 /. tn in
  let cores = Domain.recommended_domain_count () in
  let floor = parcmp_floor ~jobs in
  Fmt.pr
    "jobs=1: %.3f s@.jobs=%d: %.3f s@.speedup: %.2fx (floor %.2fx on %d \
     cores)@.rows identical: %b@."
    t1 jobs tn speedup floor cores identical;
  if not identical then
    failwith "parcmp: parallel table12 rows differ from sequential";
  if speedup < floor then
    failwith
      (Fmt.str "parcmp: jobs=%d speedup %.2fx below the %.2fx floor (%d cores)"
         jobs speedup floor cores);
  Json.Obj
    [
      ("jobs", Json.Int jobs);
      ("cores", Json.Int cores);
      ("t1_s", Json.Float t1);
      ("tN_s", Json.Float tn);
      ("speedup", Json.Float speedup);
      ("floor", Json.Float floor);
      ("identical", Json.Bool identical);
      ("rows", Experiments.table12_json Device.gtx470 rows_n);
    ]

(* ---- parallel-time attribution: where do jobs=N worker-seconds go? --- *)

(* Runs the Table 3 suite on the hybrid scheme under a jobs=N pool with
   timeline recording on, then folds the per-domain tracks into a
   wall-clock attribution over {compute, encode, idle, replay, absorb,
   other} — the quantified target for the roadmap's "make parallelism
   pay" item (BENCH_par.json shows jobs=4 *losing* to sequential).
   Encode cost is attributed indirectly — the trace-event counts
   carried by the "sim.encode" instants times the calibrated per-event
   tbuf-push cost — because L2-trace encoding happens inline with block
   compute. "other" is the residual of jobs x wall not covered by a
   named phase (main-domain tiling/setup between regions, scheduler
   bookkeeping). Fails if the phases do not sum to jobs x wall within
   5%. The JSON lands in BENCH_parattr.json via `make bench`. *)
let parattr ~jobs ~quick ~trace_out () =
  section
    (Fmt.str "Parallel-time attribution (Table 3 hybrid suite, jobs=%d)" jobs);
  let dev = Device.gtx470 in
  let encode_cost = Sim.encode_cost_per_event_s () in
  Timeline.enable ();
  let t0 = Unix.gettimeofday () in
  Par.with_pool ~jobs (fun pool ->
      List.iter
        (fun (prog : Hextile_ir.Stencil.t) ->
          let env = Experiments.sizes ~quick prog in
          ignore
            (Experiments.run_scheme ~pool ~verify:false Experiments.Hybrid prog
               env dev))
        Suite.table3);
  let wall = Unix.gettimeofday () -. t0 in
  let su = Timeline.summary () in
  Option.iter Timeline.write_chrome trace_out;
  Timeline.disable ();
  let events =
    List.fold_left (fun a tk -> a + tk.Timeline.tk_events) 0 su.Timeline.su_tracks
  in
  let encode_events = Timeline.arg_sum su "sim.encode" in
  let encode = encode_events *. encode_cost in
  let compute = Float.max 0.0 (Timeline.excl_s su "sim.block" -. encode) in
  let idle = Timeline.incl_s su "par.idle" in
  let replay = Timeline.incl_s su "sim.l2_replay" in
  let absorb =
    Timeline.incl_s su "par.absorb" +. Timeline.incl_s su "sim.absorb"
  in
  let worker_seconds = float_of_int jobs *. wall in
  let named = compute +. encode +. idle +. replay +. absorb in
  let other = Float.max 0.0 (worker_seconds -. named) in
  let sum = compute +. encode +. idle +. replay +. absorb +. other in
  let phases =
    [
      ("compute", compute);
      ("encode", encode);
      ("idle", idle);
      ("replay", replay);
      ("absorb", absorb);
      ("other", other);
    ]
  in
  Fmt.pr "jobs=%d wall %.3f s -> %.3f worker-seconds@." jobs wall worker_seconds;
  List.iter
    (fun (k, v) ->
      Fmt.pr "  %-8s %8.3f s  (%5.1f%%)@." k v (100. *. v /. worker_seconds))
    phases;
  Fmt.pr "  coverage: named phases %.1f%%, %d timeline events, %d dropped@."
    (100. *. named /. worker_seconds)
    events su.Timeline.su_dropped;
  let err = Float.abs (sum -. worker_seconds) /. worker_seconds in
  if err > 0.05 then
    failwith
      (Fmt.str "parattr: phase attribution off by %.1f%% of jobs x wall"
         (100. *. err));
  Json.Obj
    [
      ("jobs", Json.Int jobs);
      ("wall_s", Json.Float wall);
      ("worker_seconds", Json.Float worker_seconds);
      ("encode_cost_per_event_ns", Json.Float (1e9 *. encode_cost));
      ("encode_events", Json.Float encode_events);
      ("phases_s", Json.Obj (List.map (fun (k, v) -> (k, Json.Float v)) phases));
      ( "fractions",
        Json.Obj
          (List.map (fun (k, v) -> (k, Json.Float (v /. worker_seconds))) phases)
      );
      ("named_coverage", Json.Float (named /. worker_seconds));
      ( "timeline",
        Json.Obj
          [
            ("tracks", Json.Int (List.length su.Timeline.su_tracks));
            ("events", Json.Int events);
            ("dropped", Json.Int su.Timeline.su_dropped);
          ] );
    ]

(* ---- executor benchmark: tape engine vs closure reference ------------ *)

module Common = Hextile_schemes.Common
module Counters = Hextile_gpusim.Counters

(* Wall-clock comparison of the warp-batched tape engine (with
   tile-class stream memoization in the hybrid scheme) against the
   closure-tree reference interpreter, over the Table 3 suite on the
   hybrid scheme, plus the bit-exactness and jobs-determinism checks.
   Fails if any counter/grid diverges or the total speedup drops below
   3x. The JSON lands in BENCH_sim.json via `make bench-sim`. *)
let simcmp ~jobs ~quick () =
  section
    (Fmt.str "Execution engine: tape+memo vs closure reference (Table 3, jobs=%d)"
       jobs);
  let dev = Device.gtx470 in
  let rows = ref [] in
  let tot_ref = ref 0.0 and tot_tape = ref 0.0 and tot_par = ref 0.0 in
  let identical (a : Common.result) (b : Common.result) =
    Counters.to_assoc a.counters = Counters.to_assoc b.counters
    && a.updates = b.updates && a.blocks = b.blocks
    && Hashtbl.fold
         (fun name g acc ->
           acc && Hextile_ir.Grid.equal g (Hextile_ir.Grid.find b.grids name))
         a.grids true
  in
  List.iter
    (fun (prog : Hextile_ir.Stencil.t) ->
      let env = Experiments.sizes ~quick prog in
      let timed f =
        let t0 = Unix.gettimeofday () in
        let r = f () in
        (r, Unix.gettimeofday () -. t0)
      in
      let run ?pool engine () =
        Experiments.run_scheme ?pool ~engine ~verify:false Experiments.Hybrid
          prog env dev
      in
      let r_ref, t_ref = timed (run Common.Ref) in
      let r_tape, t_tape = timed (run Common.Tape) in
      let r_par, t_par =
        timed (fun () -> Par.with_pool ~jobs @@ fun pool -> run ~pool Common.Tape ())
      in
      if not (identical r_ref r_tape) then
        failwith (Fmt.str "simcmp: %s tape result differs from reference" prog.name);
      if not (identical r_ref r_par) then
        failwith
          (Fmt.str "simcmp: %s tape result differs at jobs=%d" prog.name jobs);
      tot_ref := !tot_ref +. t_ref;
      tot_tape := !tot_tape +. t_tape;
      tot_par := !tot_par +. t_par;
      Fmt.pr
        "%-12s ref %7.1f ms  tape %7.1f ms (%4.1fx)  tape(jobs=%d) %7.1f ms  \
         blocks %d (%d memoized)@."
        prog.name (1000. *. t_ref) (1000. *. t_tape) (t_ref /. t_tape) jobs
        (1000. *. t_par) r_tape.blocks r_tape.blocks_memoized;
      rows :=
        ( prog.name,
          Json.Obj
            [
              ("t_ref_s", Json.Float t_ref);
              ("t_tape_s", Json.Float t_tape);
              ("t_tape_par_s", Json.Float t_par);
              ("speedup", Json.Float (t_ref /. t_tape));
              ("blocks", Json.Int r_tape.blocks);
              ("blocks_memoized", Json.Int r_tape.blocks_memoized);
              ("identical", Json.Bool true);
            ] )
        :: !rows)
    Suite.table3;
  let speedup = !tot_ref /. !tot_tape in
  Fmt.pr "total: ref %.2f s, tape %.2f s (%.2fx), tape jobs=%d %.2f s@." !tot_ref
    !tot_tape speedup jobs !tot_par;
  if speedup < 3.0 then
    failwith (Fmt.str "simcmp: tape engine speedup %.2fx below the 3x floor" speedup);
  Json.Obj
    [
      ("jobs", Json.Int jobs);
      ("t_ref_s", Json.Float !tot_ref);
      ("t_tape_s", Json.Float !tot_tape);
      ("t_tape_par_s", Json.Float !tot_par);
      ("speedup", Json.Float speedup);
      ("stencils", Json.Obj (List.rev !rows));
    ]

(* ---- analytic (hierarchical) simulation benchmark --------------------- *)

(* Per-instance wall-clock budget for the full-size runs. The default is
   the 2-minute acceptance bound (tightened from 5 minutes once the
   blit/batched-replay epilogue landed); HEXTILE_ANALYTIC_BUDGET_S can
   widen it for slow machines without editing the tree. *)
let analytic_budget_s =
  match Option.bind (Sys.getenv_opt "HEXTILE_ANALYTIC_BUDGET_S") float_of_string_opt with
  | Some f when f > 0.0 -> f
  | _ -> 120.0

(* Two-part witness for the analytic mode. Part 1, divergence check: on
   the scaled Table 3 suite the analytic run must reproduce the exact
   engine's grids and counters bit for bit (DRAM within
   Analytic.dram_error_bound; the measured worst-case error is
   recorded). Part 2, the payoff: the paper's actual full-size instances
   (3072²×512 and 384³×128) — far beyond exact simulation — must each
   complete inside the wall-clock budget. Fails on any divergence,
   bound violation or budget overrun. The JSON lands in
   BENCH_analytic.json via `make bench-analytic`. *)
let analytic ~jobs ~quick () =
  section
    (Fmt.str "Analytic simulation: scaled divergence check + full-size runs \
              (jobs=%d)" jobs);
  let dev = Device.gtx470 in
  let timed f =
    let t0 = Unix.gettimeofday () in
    let r = f () in
    (r, Unix.gettimeofday () -. t0)
  in
  (* part 1: scaled instances, exact vs analytic *)
  let rows = ref [] in
  let max_err = ref 0.0 and tot_exact = ref 0.0 and tot_an = ref 0.0 in
  let rel a e = float_of_int (abs (a - e)) /. float_of_int (max 1 e) in
  List.iter
    (fun (prog : Hextile_ir.Stencil.t) ->
      let env = Experiments.sizes ~quick prog in
      let run analytic () =
        Par.with_pool ~jobs @@ fun pool ->
        Experiments.run_scheme ~pool ~analytic ~verify:false Experiments.Hybrid
          prog env dev
      in
      let r_ex, t_ex = timed (run false) in
      let r_an, t_an = timed (run true) in
      let grids_equal =
        Hashtbl.fold
          (fun name g acc ->
            acc && Hextile_ir.Grid.equal g (Hextile_ir.Grid.find r_an.Common.grids name))
          r_ex.Common.grids true
      in
      if not grids_equal || r_ex.updates <> r_an.updates then
        failwith (Fmt.str "analytic: %s grids/updates diverge" prog.name);
      let dram k = List.assoc k (Counters.to_assoc r_ex.counters),
                   List.assoc k (Counters.to_assoc r_an.counters) in
      List.iter2
        (fun (k, ve) (k', va) ->
          assert (k = k');
          let is_dram =
            k = "dram_read_transactions" || k = "dram_write_transactions"
          in
          if (not is_dram) && ve <> va then
            failwith
              (Fmt.str "analytic: %s counter %s diverges (%d vs %d)" prog.name
                 k ve va))
        (Counters.to_assoc r_ex.counters)
        (Counters.to_assoc r_an.counters);
      let er, ar = dram "dram_read_transactions"
      and ew, aw = dram "dram_write_transactions" in
      let err = Float.max (rel ar er) (rel aw ew) in
      if err > Analytic.dram_error_bound then
        failwith
          (Fmt.str "analytic: %s DRAM error %.4f exceeds bound %.4f" prog.name
             err Analytic.dram_error_bound);
      max_err := Float.max !max_err err;
      tot_exact := !tot_exact +. t_ex;
      tot_an := !tot_an +. t_an;
      Fmt.pr
        "%-12s exact %7.1f ms  analytic %7.1f ms (%4.1fx)  %d/%d blocks scaled \
         (%d classes)  dram err %.4f@."
        prog.name (1000. *. t_ex) (1000. *. t_an) (t_ex /. t_an)
        r_an.blocks_analytic r_an.blocks r_an.classes err;
      rows :=
        ( prog.name,
          Json.Obj
            [
              ("t_exact_s", Json.Float t_ex);
              ("t_analytic_s", Json.Float t_an);
              ("speedup", Json.Float (t_ex /. t_an));
              ("blocks", Json.Int r_an.blocks);
              ("blocks_analytic", Json.Int r_an.blocks_analytic);
              ("classes", Json.Int r_an.classes);
              ("dram_err", Json.Float err);
              ("identical", Json.Bool true);
            ] )
        :: !rows)
    Suite.table3;
  Fmt.pr "scaled total: exact %.2f s, analytic %.2f s (%.2fx), worst dram err %.4f@."
    !tot_exact !tot_an (!tot_exact /. !tot_an) !max_err;
  (* part 2: the paper's full-size instances. These runs are pure
     compute against a wall-clock budget, so never oversubscribe the
     machine: a pool wider than the physical core count only adds
     scheduler churn (measured ~30% on a 1-core container at jobs=2)
     without changing the result — the output is bit-identical at every
     jobs value by the determinism contract. *)
  let fs_jobs = min jobs (Domain.recommended_domain_count ()) in
  if fs_jobs < jobs then
    Fmt.pr "full-size runs at jobs=%d (machine has %d cores)@." fs_jobs
      (Domain.recommended_domain_count ());
  let full = ref [] in
  List.iter
    (fun (prog : Hextile_ir.Stencil.t) ->
      let env = Experiments.paper_sizes prog in
      let n = List.assoc "N" env and t = List.assoc "T" env in
      let r, wall =
        timed (fun () ->
            if fs_jobs <= 1 then
              Experiments.run_scheme ~analytic:true ~verify:false
                Experiments.Hybrid prog env dev
            else
              Par.with_pool ~jobs:fs_jobs @@ fun pool ->
              Experiments.run_scheme ~pool ~analytic:true ~verify:false
                Experiments.Hybrid prog env dev)
      in
      Fmt.pr
        "%-12s N=%d T=%d: %.1f s wall (budget %.0f s)  %d/%d blocks scaled  \
         %.2f GStencils/s@."
        prog.name n t wall analytic_budget_s r.Common.blocks_analytic
        r.Common.blocks
        (Common.gstencils_per_s r);
      Fmt.pr
        "             epilogue %.1f s (derive %.1f, dram replay %.1f, grid \
         blits %.1f)  blit_rows=%d replay_lines=%d@."
        (r.Common.epilogue_ms /. 1000.) (r.Common.derive_ms /. 1000.)
        (r.Common.dram_ms /. 1000.) (r.Common.grids_ms /. 1000.)
        r.Common.blit_rows r.Common.replay_lines;
      if wall > analytic_budget_s then
        failwith
          (Fmt.str "analytic: full-size %s took %.1f s, over the %.0f s budget"
             prog.name wall analytic_budget_s);
      if r.Common.blocks_analytic = 0 then
        failwith (Fmt.str "analytic: full-size %s scaled no blocks" prog.name);
      full :=
        ( prog.name,
          Json.Obj
            [
              ("n", Json.Int n);
              ("t", Json.Int t);
              ("jobs", Json.Int fs_jobs);
              ("wall_s", Json.Float wall);
              ("budget_s", Json.Float analytic_budget_s);
              ("blocks", Json.Int r.Common.blocks);
              ("blocks_analytic", Json.Int r.Common.blocks_analytic);
              ("classes", Json.Int r.Common.classes);
              ("updates", Json.Int r.Common.updates);
              ("gstencils_per_s", Json.Float (Common.gstencils_per_s r));
              ("epilogue_s", Json.Float (r.Common.epilogue_ms /. 1000.));
              ("derive_s", Json.Float (r.Common.derive_ms /. 1000.));
              ("dram_replay_s", Json.Float (r.Common.dram_ms /. 1000.));
              ("grid_blits_s", Json.Float (r.Common.grids_ms /. 1000.));
              ("blit_rows", Json.Int r.Common.blit_rows);
              ("replay_lines", Json.Int r.Common.replay_lines);
              ("result", Experiments.result_json r);
            ] )
        :: !full)
    [ Suite.laplacian2d; Suite.laplacian3d ];
  Json.Obj
    [
      ("jobs", Json.Int jobs);
      ("dram_error_bound", Json.Float Analytic.dram_error_bound);
      ("max_dram_err", Json.Float !max_err);
      ("t_exact_s", Json.Float !tot_exact);
      ("t_analytic_s", Json.Float !tot_an);
      ("speedup", Json.Float (!tot_exact /. !tot_an));
      ("stencils", Json.Obj (List.rev !rows));
      ("full_size", Json.Obj (List.rev !full));
    ]

(* ---- staged tile-size search benchmark: staged vs exhaustive --------- *)

module Tile_size = Hextile_tiling.Tile_size

(* Larger grids than the CLI default so the analytic layer has something
   to prune; h descends so good (large-h) candidates are screened first
   and their ratio bounds dominate the rest of the walk. Candidate order
   is identical for both searches, so the choice contract still holds. *)
let tilesearch_grids (prog : Hextile_ir.Stencil.t) =
  if Hextile_ir.Stencil.spatial_dims prog = 3 then
    ([ 5; 3; 2; 1 ], [ 2; 4; 6; 8 ], [ [ 1; 2; 4; 8 ]; [ 32; 64; 128 ] ])
  else ([ 7; 5; 3; 2; 1 ], [ 2; 4; 6; 8; 12; 16 ], [ [ 32; 64; 128; 256 ] ])

let tilesearch_budget = 12288 (* 48 KiB of floats *)

let same_choice a b =
  match (a, b) with
  | None, None -> true
  | Some (x : Tile_size.choice), Some (y : Tile_size.choice) ->
      x.h = y.h && x.w = y.w && x.stats = y.stats
  | _ -> false

(* Wall-clock and counter comparison of the staged search against the
   frozen exhaustive oracle over the Table 3 suite, plus the jobs
   determinism check; fails on any choice divergence or if the analytic
   layer stops paying for itself (< 5x fewer exact evaluations than
   candidates). The JSON lands in BENCH_tilesize.json via
   `make bench-tilesize`. *)
let tilesearch ~jobs ~quick () =
  ignore quick;
  section (Fmt.str "Tile-size search: staged vs exhaustive (Table 3, jobs=%d)" jobs);
  let rows = ref [] in
  let tot_cand = ref 0 and tot_evals = ref 0 in
  let tot_ex = ref 0.0 and tot_st = ref 0.0 and tot_par = ref 0.0 in
  List.iter
    (fun (prog : Hextile_ir.Stencil.t) ->
      let hc, w0c, wi = tilesearch_grids prog in
      let timed f =
        let t0 = Unix.gettimeofday () in
        let r = f () in
        (r, Unix.gettimeofday () -. t0)
      in
      let oracle, t_ex =
        timed (fun () ->
            Tile_size.select_exhaustive prog ~h_candidates:hc ~w0_candidates:w0c
              ~wi_candidates:wi ~shared_mem_floats:tilesearch_budget
              ~require_multiple:32 ())
      in
      let (staged, report), t_st =
        timed (fun () ->
            Tile_size.select_with_report prog ~h_candidates:hc ~w0_candidates:w0c
              ~wi_candidates:wi ~shared_mem_floats:tilesearch_budget
              ~require_multiple:32 ())
      in
      let (staged_par, report_par), t_par =
        timed (fun () ->
            Par.with_pool ~jobs @@ fun pool ->
            Tile_size.select_with_report ~pool prog ~h_candidates:hc
              ~w0_candidates:w0c ~wi_candidates:wi
              ~shared_mem_floats:tilesearch_budget ~require_multiple:32 ())
      in
      if not (same_choice staged oracle) then
        failwith (Fmt.str "tilesearch: %s staged choice differs from exhaustive" prog.name);
      if not (same_choice staged_par oracle) then
        failwith
          (Fmt.str "tilesearch: %s staged choice differs at jobs=%d" prog.name jobs);
      if report <> report_par then
        failwith (Fmt.str "tilesearch: %s search counters differ at jobs=%d" prog.name jobs);
      tot_cand := !tot_cand + report.candidates;
      tot_evals := !tot_evals + report.exact_evals;
      tot_ex := !tot_ex +. t_ex;
      tot_st := !tot_st +. t_st;
      tot_par := !tot_par +. t_par;
      Fmt.pr
        "%-12s %4d candidates -> %3d exact evals (%3d infeasible, %3d dominated)  \
         exhaustive %6.1f ms  staged %6.1f ms  staged(jobs=%d) %6.1f ms@."
        prog.name report.candidates report.exact_evals report.pruned_infeasible
        report.pruned_dominated (1000. *. t_ex) (1000. *. t_st) jobs (1000. *. t_par);
      let choice_json =
        match staged with
        | None -> Json.Str "none"
        | Some c ->
            Json.Obj
              [
                ("h", Json.Int c.h);
                ( "w",
                  Json.List (Array.to_list (Array.map (fun x -> Json.Int x) c.w)) );
                ("ratio", Json.Float c.stats.ratio);
              ]
      in
      rows :=
        ( prog.name,
          Json.Obj
            [
              ("candidates", Json.Int report.candidates);
              ("feasible", Json.Int report.feasible);
              ("pruned_infeasible", Json.Int report.pruned_infeasible);
              ("pruned_dominated", Json.Int report.pruned_dominated);
              ("exact_evals", Json.Int report.exact_evals);
              ("t_exhaustive_s", Json.Float t_ex);
              ("t_staged_s", Json.Float t_st);
              ("t_staged_par_s", Json.Float t_par);
              ("choice", choice_json);
              ("identical", Json.Bool true);
            ] )
        :: !rows)
    Suite.table3;
  Fmt.pr
    "total: %d candidates, %d exact evals (%.1fx fewer), exhaustive %.2f s, \
     staged %.2f s (%.2fx), staged jobs=%d %.2f s@."
    !tot_cand !tot_evals
    (float_of_int !tot_cand /. float_of_int (max 1 !tot_evals))
    !tot_ex !tot_st (!tot_ex /. !tot_st) jobs !tot_par;
  if !tot_evals * 5 > !tot_cand then
    failwith
      (Fmt.str "tilesearch: analytic layer pruned too little (%d exact evals of %d candidates)"
         !tot_evals !tot_cand);
  Json.Obj
    [
      ("jobs", Json.Int jobs);
      ("total_candidates", Json.Int !tot_cand);
      ("total_exact_evals", Json.Int !tot_evals);
      ("t_exhaustive_s", Json.Float !tot_ex);
      ("t_staged_s", Json.Float !tot_st);
      ("t_staged_par_s", Json.Float !tot_par);
      ("stencils", Json.Obj (List.rev !rows));
    ]

(* ---- serve daemon benchmark ------------------------------------------- *)

module Serve = Hextile_serve

(* Sustained request throughput and latency through the serve daemon,
   cold cache vs warm, over Table 3 traffic plus seeded fuzz programs
   with duplicates. Three gates, all failwith on violation (so `make
   bench-serve` is a real check): (1) every response stream is bit-wise
   identical at jobs 1, 2 and 4, cold and warm; (2) every run response
   carries exactly the grids hash and result record of the one-shot
   pipeline (what `hextile run` prints); (3) the warm cache delivers at
   least 3x the cold throughput. The JSON lands in BENCH_serve.json via
   `make bench-serve`. *)
let serve_bench ~jobs ~quick () =
  section
    (Fmt.str
       "Serve daemon: cold vs warm throughput, Table 3 + fuzz traffic \
        (jobs=%d%s)"
       jobs
       (if quick then ", quick" else ""));
  let module Gen = Hextile_check.Gen in
  let module Rng = Hextile_check.Rng in
  let module Pretty = Hextile_check.Pretty in
  (* traffic: builtins at small instances + fuzzed sources, each program
     contributing tilesize + run + compile + a duplicate run *)
  let builtins =
    List.filter_map
      (fun (p : Hextile_ir.Stencil.t) ->
        let dims = Hextile_ir.Stencil.spatial_dims p in
        if (not quick) || dims <= 2 then
          Some (p.name, `Builtin p.name, if dims >= 3 then (16, 4) else (64, 8))
        else None)
      Suite.table3
  in
  let base = Rng.create 0xbe7c5 in
  let fuzzed =
    List.map
      (fun seed ->
        let prog, env = Gen.generate (Rng.derive base seed) in
        ( Fmt.str "fuzz%d" seed,
          `Source (Pretty.to_source prog),
          (List.assoc "N" env, List.assoc "T" env) ))
      [ 1; 2; 3; 4; 5; 6 ]
  in
  let mk_line id op (_, src, (n, t)) =
    let prog_field =
      match src with
      | `Builtin b -> Fmt.str "\"builtin\":%s" (Json.to_string (Json.Str b))
      | `Source s -> Fmt.str "\"source\":%s" (Json.to_string ~minify:true (Json.Str s))
    in
    Fmt.str "{\"id\":%d,\"op\":%S,%s,\"N\":%d,\"T\":%d}" id op prog_field n t
  in
  let traffic =
    List.concat
      (List.mapi
         (fun i p ->
           [
             mk_line (i * 10) "tilesize" p;
             mk_line ((i * 10) + 1) "run" p;
             mk_line ((i * 10) + 2) "run" p;
             mk_line ((i * 10) + 3) "compile" p;
           ])
         (builtins @ fuzzed))
  in
  let nreq = List.length traffic in
  (* one request per wave, timed individually, through one pool and one
     cache — the daemon-lifetime configuration *)
  let exec_one ~cache ~pool line =
    let out = ref None in
    let fed = ref false in
    let t0 = Unix.gettimeofday () in
    Serve.Daemon.run_lines ~cache ~pool
      ~read_line:(fun () ->
        if !fed then None
        else begin
          fed := true;
          Some line
        end)
      ~write_line:(fun l -> out := Some l)
      ();
    let dt = Unix.gettimeofday () -. t0 in
    match !out with
    | Some l -> (dt, l)
    | None -> failwith "serve: request produced no response"
  in
  let pass ~cache ~pool =
    List.split (List.map (exec_one ~cache ~pool) traffic)
  in
  let stream_at jobs =
    Par.with_pool ~jobs (fun pool ->
        let cache = Serve.Cache.create () in
        let _, cold = pass ~cache ~pool in
        let _, warm = pass ~cache ~pool in
        (cold, warm))
  in
  let percentile sorted p =
    List.nth sorted (min (List.length sorted - 1) (p * List.length sorted / 100))
  in
  let stats_of lat =
    let sorted = List.sort compare lat in
    let total = List.fold_left ( +. ) 0.0 lat in
    ( total,
      float_of_int (List.length lat) /. total,
      1000.0 *. percentile sorted 50,
      1000.0 *. percentile sorted 99 )
  in
  (* the measured run: one pool at the requested jobs *)
  Par.with_pool ~jobs
  @@ fun pool ->
  let cache = Serve.Cache.create () in
  let cold_lat, cold_resp = pass ~cache ~pool in
  let warm_lat, warm_resp = pass ~cache ~pool in
  let cold_s, cold_rps, cold_p50, cold_p99 = stats_of cold_lat in
  let warm_s, warm_rps, warm_p50, warm_p99 = stats_of warm_lat in
  let speedup = warm_rps /. cold_rps in
  let s = Serve.Cache.stats cache in
  let hit_rate h m = float_of_int h /. float_of_int (max 1 (h + m)) in
  Fmt.pr "%d requests (%d programs)@." nreq (List.length (builtins @ fuzzed));
  Fmt.pr "cold: %.2f s  %.1f req/s  p50 %.1f ms  p99 %.1f ms@." cold_s cold_rps
    cold_p50 cold_p99;
  Fmt.pr "warm: %.2f s  %.1f req/s  p50 %.1f ms  p99 %.1f ms  (%.1fx)@." warm_s
    warm_rps warm_p50 warm_p99 speedup;
  Fmt.pr
    "hit rates: entry %.2f  tilesize %.2f  run %.2f  compile %.2f  \
     (collisions %d)@."
    (hit_rate s.entry_hits s.entry_misses)
    (hit_rate s.tilesize_hits s.tilesize_misses)
    (hit_rate s.run_hits s.run_misses)
    (hit_rate s.compile_hits s.compile_misses)
    s.collisions;
  (* gate 1: bit-identical response streams cold/warm and across jobs *)
  if cold_resp <> warm_resp then
    failwith "serve: warm responses diverge bit-wise from cold responses";
  List.iter
    (fun j ->
      let cold_j, warm_j = stream_at j in
      if cold_j <> cold_resp || warm_j <> warm_resp then
        failwith (Fmt.str "serve: responses diverge bit-wise at jobs=%d" j))
    (List.filter (fun j -> j <> jobs) [ 1; 2; 4 ]);
  (* gate 2: run responses carry exactly the one-shot pipeline's result.
     Responses are matched by request id (the first "run" line of program
     i carries id 10i+1) — source-form programs all share the name
     "<request>", so the name can't disambiguate them. *)
  List.iteri
    (fun i (name, src, (n, t)) ->
      let prog =
        match src with
        | `Builtin b -> Suite.find b
        | `Source s -> (
            (* same name the daemon gives source-form programs *)
            match Hextile_frontend.Front.parse_string ~name:"<request>" s with
            | Ok p -> p
            | Error m -> failwith ("serve: " ^ name ^ ": " ^ m))
      in
      let env = [ ("N", n); ("T", t) ] in
      let oneshot = Experiments.run_scheme Experiments.Hybrid prog env Device.gtx470 in
      let response =
        List.find
          (fun line ->
            match Json.parse line with
            | Ok doc -> Json.member "id" doc = Some (Json.Int ((i * 10) + 1))
            | Error _ -> false)
          cold_resp
      in
      let doc = Result.get_ok (Json.parse response) in
      let expect_hash =
        Serve.Engine.grids_hash prog oneshot.Hextile_schemes.Common.grids
      in
      if Json.member "grids_hash" doc <> Some (Json.Str expect_hash) then
        failwith (Fmt.str "serve: %s grids hash diverges from one-shot" name);
      if
        Option.map Json.to_string (Json.member "result" doc)
        <> Some (Json.to_string (Experiments.result_json oneshot))
      then
        failwith (Fmt.str "serve: %s result diverges from one-shot" name))
    (builtins @ fuzzed);
  Fmt.pr "bit-identity: ok at jobs 1/2/4, cold and warm, vs one-shot@.";
  (* gate 3: the cache must actually pay *)
  if speedup < 3.0 then
    failwith
      (Fmt.str "serve: warm throughput %.2fx cold, below the 3x floor" speedup);
  let leg name (total, rps, p50, p99) =
    ( name,
      Json.Obj
        [
          ("total_s", Json.Float total);
          ("req_per_s", Json.Float rps);
          ("p50_ms", Json.Float p50);
          ("p99_ms", Json.Float p99);
        ] )
  in
  Json.Obj
    [
      ("jobs", Json.Int jobs);
      ("requests", Json.Int nreq);
      ("programs", Json.Int (List.length (builtins @ fuzzed)));
      leg "cold" (cold_s, cold_rps, cold_p50, cold_p99);
      leg "warm" (warm_s, warm_rps, warm_p50, warm_p99);
      ("warm_speedup", Json.Float speedup);
      ( "hit_rates",
        Json.Obj
          [
            ("entry", Json.Float (hit_rate s.entry_hits s.entry_misses));
            ("tilesize", Json.Float (hit_rate s.tilesize_hits s.tilesize_misses));
            ("run", Json.Float (hit_rate s.run_hits s.run_misses));
            ("compile", Json.Float (hit_rate s.compile_hits s.compile_misses));
            ("collisions", Json.Int s.collisions);
          ] );
      ("cache", Serve.Cache.stats_json cache);
      ("identical", Json.Bool true);
    ]

(* ---- Bechamel micro-benchmarks: one per table/figure driver ---------- *)

let micro () =
  section "Bechamel micro-benchmarks (tiny instances)";
  let open Bechamel in
  let tiny2 = [ ("N", 64); ("T", 8) ] and tiny3 = [ ("N", 16); ("T", 4) ] in
  let run s p env () =
    ignore (Experiments.run_scheme ~verify:false s p env Device.gtx470)
  in
  let tests =
    [
      Test.make ~name:"fig2:ptx-core"
        (Staged.stage (fun () -> ignore (Experiments.figure2_text ())));
      Test.make ~name:"fig3:dependence-cone"
        (Staged.stage (fun () -> ignore (Experiments.figure3_text ())));
      Test.make ~name:"fig4:hexagon-shape"
        (Staged.stage (fun () -> ignore (Experiments.figure4_text ())));
      Test.make ~name:"fig5:tiling-pattern"
        (Staged.stage (fun () -> ignore (Experiments.figure5_text ())));
      Test.make ~name:"fig6:hybrid-schedule"
        (Staged.stage (fun () -> ignore (Experiments.figure6_text ())));
      Test.make ~name:"table1:hybrid-heat2d"
        (Staged.stage (run Experiments.Hybrid Suite.heat2d tiny2));
      Test.make ~name:"table1:ppcg-heat2d"
        (Staged.stage (run Experiments.Ppcg Suite.heat2d tiny2));
      Test.make ~name:"table2:overtile-heat2d"
        (Staged.stage (run Experiments.Overtile Suite.heat2d tiny2));
      Test.make ~name:"table3:characterize"
        (Staged.stage (fun () -> ignore (Experiments.table3_text ())));
      Test.make ~name:"table4:hybrid-heat3d"
        (Staged.stage (run Experiments.Hybrid Suite.heat3d tiny3));
      Test.make ~name:"table5:hybrid-heat3d-noshared"
        (Staged.stage (fun () ->
             let config =
               {
                 (Hextile_schemes.Hybrid_exec.default_config Suite.heat3d) with
                 strategy = Hextile_schemes.Hybrid_exec.strategy_of_step 'a';
               }
             in
             ignore
               (Hextile_schemes.Hybrid_exec.run ~config Suite.heat3d
                  (fun x -> List.assoc x tiny3)
                  Device.gtx470)));
      Test.make ~name:"tilesize:tile-stats"
        (Staged.stage (fun () ->
             let t =
               Hextile_tiling.Hybrid.make Suite.heat3d ~h:2 ~w:[| 7; 10; 32 |]
             in
             ignore (Hextile_tiling.Tile_size.tile_stats t)));
    ]
  in
  let cfg = Benchmark.cfg ~limit:50 ~quota:(Time.second 0.5) ~kde:None () in
  let instance = Toolkit.Instance.monotonic_clock in
  let ols =
    Analyze.ols ~r_square:false ~bootstrap:0 ~predictors:[| Measure.run |]
  in
  let rows = ref [] in
  List.iter
    (fun test ->
      let results = Benchmark.all cfg [ instance ] test in
      let est = Analyze.all ols instance results in
      Hashtbl.iter
        (fun name res ->
          match Analyze.OLS.estimates res with
          | Some (t :: _) ->
              Fmt.pr "%-34s %10.3f ms/run@." name (t /. 1e6);
              rows := (name, Json.Float (t /. 1e6)) :: !rows
          | _ -> Fmt.pr "%-34s (no estimate)@." name)
        est)
    tests;
  Json.Obj [ ("unit", Json.Str "ms/run"); ("runs", Json.Obj (List.rev !rows)) ]

(* ---- provenance for committed BENCH_*.json ---------------------------- *)

(* Reads HEAD from .git directly (no subprocess) so `bench --json` works
   in any environment that can build the tree. *)
let git_rev () =
  let read f =
    try Some (String.trim (In_channel.with_open_text f In_channel.input_all))
    with _ -> None
  in
  match read ".git/HEAD" with
  | Some head when String.length head > 5 && String.sub head 0 5 = "ref: " ->
      let r = String.sub head 5 (String.length head - 5) in
      (match read (".git/" ^ r) with
      | Some rev -> Some rev
      | None -> (
          (* the ref may only exist packed *)
          match read ".git/packed-refs" with
          | Some txt ->
              List.find_map
                (fun line ->
                  match String.index_opt line ' ' with
                  | Some i
                    when String.sub line (i + 1) (String.length line - i - 1) = r
                    ->
                      Some (String.sub line 0 i)
                  | _ -> None)
                (String.split_on_char '\n' txt)
          | None -> None))
  | Some rev when String.length rev = 40 -> Some rev
  | _ -> None

(* The timestamp is injected (HEXTILE_BENCH_TIMESTAMP, e.g. set by CI to
   the commit date) rather than read from the clock, so regenerating a
   committed BENCH_*.json from the same tree yields a byte-identical
   meta block. *)
let meta ~jobs =
  Json.Obj
    [
      ( "git_rev",
        match git_rev () with Some r -> Json.Str r | None -> Json.Null );
      ("ocaml_version", Json.Str Sys.ocaml_version);
      ("jobs", Json.Int jobs);
      ( "timestamp",
        match Sys.getenv_opt "HEXTILE_BENCH_TIMESTAMP" with
        | Some t -> Json.Str t
        | None -> Json.Null );
    ]

let () =
  let only = ref []
  and quick = ref true
  and do_micro = ref true
  and jobs = ref (Par.recommended_jobs ())
  and trace_out = ref None
  and json_out = ref None in
  let rec parse = function
    | [] -> ()
    | "--only" :: x :: rest ->
        only := x :: !only;
        parse rest
    | "--full" :: rest ->
        quick := false;
        parse rest
    | "--no-micro" :: rest ->
        do_micro := false;
        parse rest
    | "--jobs" :: n :: rest ->
        (match int_of_string_opt n with
        | Some j when j >= 1 -> jobs := j
        | _ -> Fmt.epr "--jobs expects a positive integer, got %s@." n);
        parse rest
    | "--trace-out" :: f :: rest ->
        trace_out := Some f;
        parse rest
    | "--json" :: f :: rest ->
        json_out := Some f;
        parse rest
    | x :: rest ->
        Fmt.epr
          "unknown argument %s (expected --only <id> | --full | --no-micro | \
           --jobs <n> | --trace-out <file> | --json <file>)@."
          x;
        parse rest
  in
  parse (List.tl (Array.to_list Sys.argv));
  let quick = !quick and jobs = !jobs and trace_out = !trace_out in
  Par.with_pool ~jobs @@ fun pool ->
  let all =
    [
      ("fig1", fig1);
      ("fig2", fig2);
      ("fig3", fig3);
      ("fig4", fig4);
      ("fig5", fig5);
      ("fig6", fig6);
      ("table3", table3);
      ("tilesize", tilesize);
      ("ablate", ablate ~pool ~quick);
      ("diamond", diamond);
      ("split1d", split1d ~quick);
      ("table1", table1 ~pool ~quick);
      ("table2", table2 ~pool ~quick);
      ("table45", tables45 ~pool ~quick);
      ("parcmp", parcmp ~jobs ~quick);
      ("parattr", parattr ~jobs ~quick ~trace_out);
      ("simcmp", simcmp ~jobs ~quick);
      ("analytic", analytic ~jobs ~quick);
      ("tilesearch", tilesearch ~jobs ~quick);
      ("serve", serve_bench ~jobs ~quick);
      ("micro", micro);
    ]
  in
  let selected =
    match !only with
    | [] ->
        (* micro has its own timing loop; parcmp, parattr, tilesearch,
           simcmp, analytic and serve spawn their own pools and time
           things — all run only on request *)
        List.filter
          (fun id ->
            id <> "micro" && id <> "parcmp" && id <> "parattr"
            && id <> "tilesearch" && id <> "simcmp" && id <> "analytic"
            && id <> "serve")
          (List.map fst all)
    | l ->
        List.concat_map
          (fun x -> if x = "table4" || x = "table5" then [ "table45" ] else [ x ])
          (List.rev l)
  in
  let results =
    List.filter_map
      (fun id ->
        match List.assoc_opt id all with
        | Some f -> Some (id, f ())
        | None ->
            Fmt.epr "unknown experiment id %s@." id;
            None)
      selected
  in
  let results =
    if !do_micro && !only = [] then results @ [ ("micro", micro ()) ] else results
  in
  match !json_out with
  | None -> ()
  | Some path ->
      let doc =
        Json.Obj
          [
            ("bench_version", Json.Int 2);
            ("meta", meta ~jobs);
            ("quick", Json.Bool quick);
            ("experiments", Json.Obj results);
          ]
      in
      let oc = open_out path in
      output_string oc (Json.to_string doc);
      output_char oc '\n';
      close_out oc;
      Fmt.epr "wrote %s@." path
