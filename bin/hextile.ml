(* hextile — hybrid hexagonal/classical tiling for GPUs, command line.

   Subcommands: parse, deps, tile, codegen, run, profile, tilesize, fuzz,
   serve, list. *)

open Cmdliner
module Experiments = Hextile_experiments.Experiments
module Obs = Hextile_obs.Obs
module Timeline = Hextile_obs.Timeline
module Json = Hextile_obs.Json
module Par = Hextile_par.Par
module Oncemap = Hextile_par.Oncemap
open Hextile_ir
open Hextile_deps
open Hextile_tiling
open Hextile_gpusim
open Hextile_schemes

(* ---- common arguments -------------------------------------------------- *)

let load ~file ~builtin =
  match (file, builtin) with
  | Some f, None -> Hextile_frontend.Front.parse_file f
  | None, Some b -> (
      match Hextile_stencils.Suite.find b with
      | p -> Ok p
      | exception Not_found ->
          Error
            (Fmt.str "unknown builtin %s (try: %s)" b
               (String.concat ", "
                  (List.map
                     (fun (p : Stencil.t) -> p.name)
                     Hextile_stencils.Suite.all))))
  | Some _, Some _ -> Error "give either FILE or --builtin, not both"
  | None, None -> Error "give a FILE or --builtin NAME"

let file_arg =
  Arg.(value & pos 0 (some file) None & info [] ~docv:"FILE" ~doc:"C-subset stencil source.")

let builtin_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "builtin"; "b" ] ~docv:"NAME" ~doc:"Use a built-in benchmark stencil.")

let n_arg =
  Arg.(value & opt int 64 & info [ "N" ] ~doc:"Grid extent parameter N.")

let t_arg =
  Arg.(value & opt int 16 & info [ "T" ] ~doc:"Time steps parameter T.")

let h_arg =
  Arg.(
    value
    & opt (some int) None
    & info [ "height"; "H" ] ~doc:"Hexagon height parameter h.")

let w_arg =
  Arg.(
    value
    & opt (some (list int)) None
    & info [ "widths"; "w" ] ~docv:"W0,W1,..." ~doc:"Tile widths, one per spatial dimension.")

let device_arg =
  Arg.(
    value
    & opt (enum [ ("gtx470", Device.gtx470); ("nvs5200", Device.nvs5200m) ]) Device.gtx470
    & info [ "device" ] ~doc:"Device model: gtx470 or nvs5200.")

let env_of ~n ~t p = match p with "N" -> n | "T" -> t | _ -> raise Not_found

let jobs_arg =
  Arg.(
    value
    & opt int (Par.recommended_jobs ())
    & info [ "jobs"; "j" ] ~docv:"N"
        ~doc:
          "Worker domains for the parallel runtime (default: the \
           machine's recommended domain count). All outputs are \
           bit-identical for every value; $(docv)=1 takes the exact \
           sequential code path.")

let trace_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "trace" ] ~docv:"FILE"
        ~doc:"Enable tracing and write the obs trace as JSON to $(docv).")

(* With --trace, tracing is on for the whole command and the trace is
   written even when the command fails partway. *)
let with_trace trace k =
  match trace with
  | None -> k ()
  | Some path ->
      Obs.reset ();
      Obs.enable ();
      Fun.protect
        ~finally:(fun () ->
          Oncemap.publish_obs ();
          Obs.write_json path;
          Obs.disable ())
        k

let trace_out_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "trace-out" ] ~docv:"FILE"
        ~doc:
          "Record a wall-clock per-domain timeline and write it to \
           $(docv) as a Chrome trace-event JSON file (one track per \
           domain; open in Perfetto or chrome://tracing). Recording \
           never changes counters, grids or any other output.")

(* Like --trace: recording covers the whole command and the trace file
   is written even when the command fails partway. *)
let with_trace_out trace_out k =
  match trace_out with
  | None -> k ()
  | Some path ->
      Timeline.enable ();
      Fun.protect
        ~finally:(fun () ->
          Timeline.write_chrome path;
          Timeline.disable ())
        k

let with_prog file builtin k =
  match load ~file ~builtin with
  | Error m ->
      Fmt.epr "hextile: %s@." m;
      1
  | Ok prog -> k prog

let tiling_of prog h w =
  let config = Hybrid_exec.default_config prog in
  let h = Option.value ~default:config.h h in
  let w = match w with Some l -> Array.of_list l | None -> config.w in
  (h, w, Hybrid.make prog ~h ~w)

(* ---- subcommands ------------------------------------------------------- *)

let parse_cmd =
  let run file builtin =
    with_prog file builtin (fun prog ->
        Fmt.pr "%a@." Stencil.pp prog;
        0)
  in
  Cmd.v (Cmd.info "parse" ~doc:"Parse a stencil program and print its IR.")
    Term.(const run $ file_arg $ builtin_arg)

let deps_cmd =
  let run file builtin =
    with_prog file builtin (fun prog ->
        let deps = Dep.analyze prog in
        List.iter (fun d -> Fmt.pr "%a@." Dep.pp d) deps;
        let dims = Stencil.spatial_dims prog in
        for d = 0 to dims - 1 do
          Fmt.pr "dim %d: %a@." d Cone.pp (Cone.of_deps deps ~dim:d)
        done;
        0)
  in
  Cmd.v (Cmd.info "deps" ~doc:"Print dependences and per-dimension cones.")
    Term.(const run $ file_arg $ builtin_arg)

let tile_cmd =
  let run file builtin h w n t trace =
    with_prog file builtin (fun prog ->
        with_trace trace (fun () ->
            let h, w, tiling = tiling_of prog h w in
            Fmt.pr "h=%d w=(%a) %a@." h Fmt.(array ~sep:(any ",") int) w Cone.pp tiling.cone;
            Fmt.pr "%a@.%s@." Hexagon.pp tiling.hex (Render.tile tiling.hex);
            Fmt.pr "%a@." Tile_size.pp_stats (Tile_size.tile_stats tiling);
            match Hybrid.check_legality tiling (env_of ~n ~t) with
            | Ok () ->
                Fmt.pr "legality check (N=%d, T=%d): OK@." n t;
                0
            | Error m ->
                Fmt.epr "hextile: legality check FAILED: %s@." m;
                1))
  in
  Cmd.v
    (Cmd.info "tile" ~doc:"Build the hybrid schedule, show the tile, check legality.")
    Term.(const run $ file_arg $ builtin_arg $ h_arg $ w_arg $ n_arg $ t_arg $ trace_arg)

let codegen_cmd =
  let run file builtin h w =
    with_prog file builtin (fun prog ->
        let _, _, tiling = tiling_of prog h w in
        print_string (Hextile_codegen.Cuda_emit.host_and_kernels tiling prog);
        print_newline ();
        List.iter
          (fun (s : Stencil.stmt) ->
            let l = Hextile_codegen.Ptx_emit.core_listing prog s in
            Fmt.pr "// %s core: %d loads, %d ops@.%s@." s.sname l.loads l.arith l.text)
          prog.stmts;
        0)
  in
  Cmd.v
    (Cmd.info "codegen" ~doc:"Emit CUDA-style host/kernels and PTX-style cores.")
    Term.(const run $ file_arg $ builtin_arg $ h_arg $ w_arg)

let scheme_arg =
  Arg.(
    value
    & opt
        (enum
           [
             ("hybrid", Experiments.Hybrid);
             ("ppcg", Experiments.Ppcg);
             ("par4all", Experiments.Par4all);
             ("overtile", Experiments.Overtile);
             ("patus", Experiments.Patus);
           ])
        Experiments.Hybrid
    & info [ "scheme" ] ~doc:"Tiling scheme to execute.")

let engine_arg =
  Arg.(
    value
    & opt (enum [ ("tape", Common.Tape); ("ref", Common.Ref) ]) Common.Tape
    & info [ "engine" ]
        ~doc:
          "Execution engine: the warp-batched register $(b,tape) (default) or \
           the per-lane closure $(b,ref)erence interpreter.")

let analytic_arg =
  Arg.(
    value & flag
    & info [ "analytic" ]
        ~doc:
          "Hierarchical simulation: instance-execute one representative \
           block per tile class and derive the rest analytically \
           (hybrid scheme only; counters bit-identical except the \
           DRAM pair, whose error is bounded). Makes the paper's \
           full-size instances (e.g. $(b,-N 3072 -T 512)) tractable. \
           Implies no reference verification.")

let run_cmd =
  let run file builtin scheme engine dev n t analytic trace trace_out jobs =
    if analytic && engine = Common.Ref then begin
      (* reject rather than silently simulating something else: the
         analytic mode scales tape-executed streams, which the per-lane
         reference interpreter does not produce *)
      Fmt.epr
        "hextile: --analytic requires --engine tape (the ref interpreter \
         records no streams to scale)@.";
      1
    end
    else
    with_prog file builtin (fun prog ->
        with_trace trace (fun () ->
            with_trace_out trace_out @@ fun () ->
            Par.with_pool ~jobs @@ fun pool ->
            let env = [ ("N", n); ("T", t) ] in
            let t0 = Unix.gettimeofday () in
            (* the reference interpreter is infeasible at the full-size
               instances --analytic exists for; the analytic mode's own
               grids are differentially validated by the test suite *)
            let verify = not analytic in
            match
              Experiments.run_scheme ~pool ~engine ~analytic ~verify scheme
                prog env dev
            with
            | r ->
                (* like tilesize: the simulation summary goes to stderr
                   unconditionally so stdout stays parseable; the format
                   is the key=value contract of Experiments.sim_summary *)
                Fmt.epr "%s@."
                  (Experiments.sim_summary
                     ~wall_s:(Unix.gettimeofday () -. t0)
                     ~jobs ~engine r);
                Fmt.pr "%s on %s, N=%d T=%d: %s@." r.scheme prog.name n t
                  (if verify then "verified OK" else "completed (analytic)");
                Fmt.pr "updates            %d@." r.updates;
                (* FNV over every grid's bits: one line that makes
                   cross-jobs bit-identity checkable by diffing stdout
                   (the CI determinism leg does exactly that) *)
                Fmt.pr "grids fnv          %s@."
                  (Hextile_serve.Engine.grids_hash prog r.grids);
                (if analytic then
                   Fmt.pr "blocks analytic    %d of %d (%d classes)@."
                     r.blocks_analytic r.blocks r.classes);
                Fmt.pr "GStencils/s        %.3f@." (Common.gstencils_per_s r);
                Fmt.pr "kernel time        %.3e s (+ %.3e s transfer)@." r.kernel_time
                  r.transfer_time;
                Fmt.pr "%a@." Counters.pp r.counters;
                0
            | exception Failure m ->
                Fmt.epr "hextile: %s@." m;
                1))
  in
  Cmd.v
    (Cmd.info "run"
       ~doc:"Simulate a scheme on the GPU model and verify against the reference.")
    Term.(
      const run $ file_arg $ builtin_arg $ scheme_arg $ engine_arg $ device_arg
      $ n_arg $ t_arg $ analytic_arg $ trace_arg $ trace_out_arg $ jobs_arg)

let tilesize_cmd =
  let run file builtin trace trace_out jobs =
    with_prog file builtin (fun prog ->
        with_trace trace (fun () ->
            with_trace_out trace_out @@ fun () ->
            Par.with_pool ~jobs @@ fun pool ->
            let t0 = Unix.gettimeofday () in
            let best, report =
              Tile_size.select_spec ~pool prog (Tile_size.default_spec prog)
            in
            let dt = Unix.gettimeofday () -. t0 in
            (* search counters go to stderr unconditionally (no --trace
               needed) so the selection line on stdout stays parseable *)
            Fmt.epr "search: %a wall=%.3fms@." Tile_size.pp_report report
              (1000.0 *. dt);
            match best with
            | Some c ->
                Fmt.pr "selected %a@." Tile_size.pp_choice c;
                0
            | None ->
                Fmt.epr "hextile: no feasible tile size in the candidate grid@.";
                1))
  in
  Cmd.v
    (Cmd.info "tilesize" ~doc:"Select tile sizes by load-to-compute ratio (Sec 3.7).")
    Term.(const run $ file_arg $ builtin_arg $ trace_arg $ trace_out_arg $ jobs_arg)

(* ---- profile: the whole pipeline under one trace ----------------------- *)

let output_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "output"; "o" ] ~docv:"FILE"
        ~doc:"Write the profile JSON to $(docv) instead of stdout.")

(* Flatten every kernel_launch event of the span tree into one
   nvprof-style timeline, in trace order. *)
let timeline_of_trace () =
  let entries = ref [] in
  let value_json : Obs.value -> Json.t = function
    | Obs.Bool b -> Json.Bool b
    | Obs.Int i -> Json.Int i
    | Obs.Float f -> Json.Float f
    | Obs.Str s -> Json.Str s
  in
  let rec walk (t : Obs.span_tree) =
    List.iter
      (fun (name, t_s, attrs) ->
        if String.equal name "kernel_launch" then
          entries :=
            Json.Obj
              (("t_s", Json.Float t_s)
              :: List.map (fun (k, v) -> (k, value_json v)) attrs)
            :: !entries)
      t.Obs.events;
    List.iter walk t.Obs.children
  in
  List.iter walk (Obs.roots ());
  List.rev !entries

let timeline_arg =
  Arg.(
    value & flag
    & info [ "timeline" ]
        ~doc:
          "Record the wall-clock per-domain timeline and print a \
           busy/idle/steal/absorb breakdown per domain, the slowest \
           slices, and per-slice latency histograms to stderr.")

let profile_cmd =
  let run file builtin scheme dev n t h w output jobs trace_out timeline =
    Obs.reset ();
    Obs.enable ();
    let record = timeline || trace_out <> None in
    if record then Timeline.enable ();
    Fun.protect ~finally:(fun () ->
        if record then begin
          Option.iter Timeline.write_chrome trace_out;
          if timeline then Fmt.epr "%a" Timeline.pp_summary ();
          Timeline.disable ()
        end)
    @@ fun () ->
    let loaded =
      Obs.span "frontend" (fun () ->
          Obs.annot "source"
            (Obs.Str
               (match (file, builtin) with
               | Some f, _ -> f
               | _, Some b -> "builtin:" ^ b
               | None, None -> "<none>"));
          load ~file ~builtin)
    in
    match loaded with
    | Error m ->
        Fmt.epr "hextile: %s@." m;
        1
    | Ok prog -> (
        let env = [ ("N", n); ("T", t) ] in
        Obs.span "deps" (fun () ->
            let deps = Dep.analyze prog in
            Obs.annot "dependences" (Obs.Int (List.length deps));
            for d = 0 to Stencil.spatial_dims prog - 1 do
              ignore (Cone.of_deps deps ~dim:d)
            done);
        let h, w, tiling =
          Obs.span "tiling" (fun () ->
              let h, w, tiling = tiling_of prog h w in
              Obs.annot "h" (Obs.Int h);
              Obs.annot "w"
                (Obs.Str (Fmt.str "%a" Fmt.(array ~sep:(any ",") int) w));
              Obs.annot "tile_points" (Obs.Int (Hexagon.count tiling.hex));
              let stats = Tile_size.tile_stats tiling in
              Obs.annot "loads_per_iteration" (Obs.Float stats.ratio);
              Obs.annot "shared_footprint_floats" (Obs.Int stats.footprint_box);
              (match Hybrid.check_legality tiling (env_of ~n ~t) with
              | Ok () -> Obs.annot "legality" (Obs.Str "ok")
              | Error m -> Obs.annot "legality" (Obs.Str ("FAILED: " ^ m)));
              (h, w, tiling))
        in
        Obs.span "codegen" (fun () ->
            let cuda = Hextile_codegen.Cuda_emit.host_and_kernels tiling prog in
            Obs.annot "cuda_bytes" (Obs.Int (String.length cuda));
            List.iter
              (fun (s : Stencil.stmt) ->
                let l = Hextile_codegen.Ptx_emit.core_listing prog s in
                Obs.annot (s.sname ^ ".core_loads") (Obs.Int l.loads);
                Obs.annot (s.sname ^ ".core_ops") (Obs.Int l.arith))
              prog.stmts);
        match
          Obs.span "sim" (fun () ->
              Par.with_pool ~jobs (fun pool ->
                  Experiments.run_scheme ~pool scheme prog env dev))
        with
        | exception Failure m ->
            Fmt.epr "hextile: %s@." m;
            1
        | result ->
            Oncemap.publish_obs ();
            let doc =
              Json.Obj
                [
                  ("profile_version", Json.Int 1);
                  ("program", Json.Str prog.name);
                  ("scheme", Json.Str (Experiments.scheme_name scheme));
                  ("device", Json.Str dev.Device.name);
                  ("env", Json.Obj [ ("N", Json.Int n); ("T", Json.Int t) ]);
                  ("h", Json.Int h);
                  ( "w",
                    Json.List (Array.to_list (Array.map (fun x -> Json.Int x) w)) );
                  ("result", Experiments.result_json result);
                  ("timeline", Json.List (timeline_of_trace ()));
                  ("trace", Obs.to_json ());
                ]
            in
            Obs.disable ();
            (match output with
            | None -> print_endline (Json.to_string doc)
            | Some path ->
                Out_channel.with_open_text path (fun oc ->
                    Out_channel.output_string oc (Json.to_string doc);
                    Out_channel.output_char oc '\n'));
            0)
  in
  Cmd.v
    (Cmd.info "profile"
       ~doc:
         "Run the whole pipeline (frontend, deps, tiling, codegen, sim) under \
          the tracing layer and emit a single nvprof-style JSON profile.")
    Term.(
      const run $ file_arg $ builtin_arg $ scheme_arg $ device_arg $ n_arg $ t_arg
      $ h_arg $ w_arg $ output_arg $ jobs_arg $ trace_out_arg $ timeline_arg)

let fuzz_cmd =
  let module Check = Hextile_check in
  let seed_arg =
    Arg.(value & opt int 42 & info [ "seed" ] ~doc:"Campaign PRNG seed.")
  in
  let count_arg =
    Arg.(value & opt int 100 & info [ "count" ] ~doc:"Number of generated programs.")
  in
  let shrink_arg =
    Arg.(
      value & flag
      & info [ "shrink" ]
          ~doc:"Greedily shrink each failure to a minimal counterexample.")
  in
  let mutate_arg =
    Arg.(
      value
      & opt (some string) None
      & info [ "mutate" ] ~docv:"SCHEME"
          ~doc:
            "Self-test the harness: run $(docv) on an offset-flipped copy of \
             each program and count mutants caught vs. missed.")
  in
  let schemes_arg =
    Arg.(
      value
      & opt (some (list string)) None
      & info [ "schemes" ] ~docv:"S1,S2,..."
          ~doc:"Restrict the differential comparison to these schemes.")
  in
  let out_arg =
    Arg.(
      value
      & opt (some string) None
      & info [ "out" ] ~docv:"DIR"
          ~doc:"Write counterexample .c files to $(docv).")
  in
  let replay_arg =
    Arg.(
      value
      & opt (some file) None
      & info [ "replay" ] ~docv:"FILE"
          ~doc:
            "Instead of fuzzing, re-run the differential oracle on a \
             counterexample file under -N/-T.")
  in
  let replay ~pool file mutate schemes device n t =
    match Hextile_frontend.Front.parse_file file with
    | Error m ->
        Fmt.epr "hextile: %s@." m;
        1
    | Ok prog -> (
        let env =
          List.filter (fun (p, _) -> List.mem p prog.params) [ ("N", n); ("T", t) ]
        in
        match Check.Oracle.check ~pool ?mutate ?schemes prog env device with
        | Error m ->
            Fmt.epr "hextile: %s@." m;
            1
        | Ok [] ->
            Fmt.pr "replay: all schemes agree with the interpreter@.";
            0
        | Ok failures ->
            List.iter (fun f -> Fmt.pr "%a@." Check.Oracle.pp_failure f) failures;
            1)
  in
  let run seed count shrink mutate schemes out replay_file device n t trace_out
      jobs =
    let unknown =
      List.filter
        (fun s -> not (List.mem s Check.Oracle.all_scheme_names))
        (Option.value schemes ~default:[] @ Option.to_list mutate)
    in
    if unknown <> [] then begin
      Fmt.epr "hextile: unknown scheme(s) %s (available: %s)@."
        (String.concat ", " unknown)
        (String.concat ", " Check.Oracle.all_scheme_names);
      1
    end
    else
      with_trace_out trace_out @@ fun () ->
      Par.with_pool ~jobs @@ fun pool ->
      match replay_file with
      | Some file -> replay ~pool file mutate schemes device n t
      | None ->
          let cfg =
            {
              Check.Fuzz.seed;
              count;
              shrink;
              mutate;
              schemes;
              out_dir = out;
            }
          in
          let summary =
            Check.Fuzz.run ~pool
              ~log:(fun line -> Fmt.epr "%s@." line)
              cfg device
          in
          Fmt.pr "%a@." (Check.Fuzz.pp_summary cfg) summary;
          if Check.Fuzz.ok cfg summary then 0 else 1
  in
  Cmd.v
    (Cmd.info "fuzz"
       ~doc:
         "Differential fuzzing: generate random stencil programs and compare \
          every scheme executor (and the gpusim sanitizer) against the \
          reference interpreter.")
    Term.(
      const run $ seed_arg $ count_arg $ shrink_arg $ mutate_arg $ schemes_arg
      $ out_arg $ replay_arg $ device_arg $ n_arg $ t_arg $ trace_out_arg
      $ jobs_arg)

let list_cmd =
  (* Diagnostic listing goes to stderr, like all other non-result output,
     so traces piped from stdout stay valid JSON. *)
  let run () =
    List.iter
      (fun (p : Stencil.t) ->
        Fmt.epr "%-12s %dD, %d statement(s)@." p.name (Stencil.spatial_dims p)
          (List.length p.stmts))
      Hextile_stencils.Suite.all;
    0
  in
  Cmd.v (Cmd.info "list" ~doc:"List built-in benchmark stencils.") Term.(const run $ const ())

let serve_cmd =
  let socket_arg =
    Arg.(
      value
      & opt (some string) None
      & info [ "socket" ] ~docv:"PATH"
          ~doc:
            "Listen on a Unix-domain socket at $(docv) (created, and \
             removed on shutdown).")
  and stdio_arg =
    Arg.(
      value & flag
      & info [ "stdio" ]
          ~doc:
            "Serve JSON lines on stdin/stdout; a blank line delimits a \
             request wave, end of input stops the daemon.")
  and max_queue_arg =
    Arg.(
      value
      & opt int Hextile_serve.Daemon.default_config.max_queue
      & info [ "max-queue" ] ~docv:"N"
          ~doc:
            "Admission bound: requests beyond $(docv) queued are shed \
             with an explicit error response.")
  and max_wave_arg =
    Arg.(
      value
      & opt int Hextile_serve.Daemon.default_config.max_wave
      & info [ "max-wave" ] ~docv:"N"
          ~doc:"Maximum requests batched into one execution wave (stdio).")
  in
  let run socket stdio jobs max_queue max_wave =
    let config = { Hextile_serve.Daemon.max_queue; max_wave } in
    let cache = Hextile_serve.Cache.create () in
    match (socket, stdio) with
    | None, false | Some _, true ->
        Fmt.epr "hextile: serve needs exactly one of --socket PATH or --stdio@.";
        2
    | Some path, false ->
        Par.with_pool ~jobs (fun pool ->
            Hextile_serve.Daemon.serve_socket ~config ~cache ~pool ~path ());
        0
    | None, true ->
        Par.with_pool ~jobs (fun pool ->
            Hextile_serve.Daemon.run_lines ~config ~cache ~pool
              ~read_line:(fun () -> In_channel.input_line In_channel.stdin)
              ~write_line:(fun l ->
                print_string l;
                print_newline ();
                flush stdout)
              ());
        0
  in
  Cmd.v
    (Cmd.info "serve"
       ~doc:
         "Long-lived compile-and-simulate daemon: JSON-lines requests \
          (run, tilesize, compile, stats) over a Unix socket or stdio, \
          with cross-request structural caching and request batching. \
          Responses are bit-identical to the one-shot commands.")
    Term.(
      const run $ socket_arg $ stdio_arg $ jobs_arg $ max_queue_arg
      $ max_wave_arg)

let () =
  let doc = "hybrid hexagonal/classical tiling for GPUs (CGO 2014), in OCaml" in
  let info = Cmd.info "hextile" ~version:"1.0.0" ~doc in
  exit
    (Cmd.eval'
       (Cmd.group info
          [
            parse_cmd;
            deps_cmd;
            tile_cmd;
            codegen_cmd;
            run_cmd;
            profile_cmd;
            tilesize_cmd;
            fuzz_cmd;
            serve_cmd;
            list_cmd;
          ]))
