open Hextile_ir
open Hextile_gpusim
open Hextile_schemes
module Check = Hextile_check
module Suite = Hextile_stencils.Suite

let dev = Device.gtx470
let envf env p = List.assoc p env

let contains ~sub s =
  let n = String.length sub in
  let rec go i =
    i + n <= String.length s && (String.sub s i n = sub || go (i + 1))
  in
  go 0

(* ---- PRNG ------------------------------------------------------------- *)

let test_rng_determinism () =
  let seq rng = List.init 20 (fun _ -> Check.Rng.int rng 1000) in
  Alcotest.(check (list int))
    "same seed, same stream"
    (seq (Check.Rng.create 7))
    (seq (Check.Rng.create 7));
  Alcotest.(check bool)
    "different seeds differ" false
    (seq (Check.Rng.create 7) = seq (Check.Rng.create 8));
  (* derive: independent of how far the parent has advanced *)
  let a = Check.Rng.create 7 in
  let b = Check.Rng.create 7 in
  ignore (seq a);
  Alcotest.(check (list int))
    "derive ignores parent position"
    (seq (Check.Rng.derive a 3))
    (seq (Check.Rng.derive b 3))

let test_rng_bounds () =
  let rng = Check.Rng.create 1 in
  for _ = 1 to 1000 do
    let v = Check.Rng.int rng 7 in
    Alcotest.(check bool) "int in [0,7)" true (v >= 0 && v < 7);
    let r = Check.Rng.in_range rng 3 9 in
    Alcotest.(check bool) "in_range inclusive" true (r >= 3 && r <= 9);
    let f = Check.Rng.float rng 2.0 in
    Alcotest.(check bool) "float in [0,2)" true (f >= 0.0 && f < 2.0)
  done

(* ---- generator -------------------------------------------------------- *)

let test_gen_valid () =
  let rng = Check.Rng.create 123 in
  for i = 0 to 49 do
    let prog, env = Check.Gen.generate (Check.Rng.derive rng i) in
    (match Stencil.validate prog with
    | Ok () -> ()
    | Error m -> Alcotest.failf "iteration %d: validate: %s" i m);
    (match Check.Gen.well_formed prog with
    | Ok () -> ()
    | Error m -> Alcotest.failf "iteration %d: well_formed: %s" i m);
    match Analysis.bounds_check prog (envf env) with
    | Ok () -> ()
    | Error m -> Alcotest.failf "iteration %d: bounds: %s" i m
  done

let test_gen_deterministic () =
  let one () = Check.Gen.generate (Check.Rng.create 99) in
  let p1, e1 = one () and p2, e2 = one () in
  Alcotest.(check bool) "same program" true (Check.Pretty.equal_program p1 p2);
  Alcotest.(check (list (pair string int))) "same valuation" e1 e2

let test_flip_offset () =
  let rng = Check.Rng.create 5 in
  let flipped = ref 0 in
  for i = 0 to 29 do
    let prog, env = Check.Gen.generate (Check.Rng.derive rng i) in
    match Check.Gen.flip_offset prog with
    | None -> ()
    | Some prog' ->
        incr flipped;
        Alcotest.(check bool)
          "mutant differs" false
          (Check.Pretty.equal_program prog prog');
        (match Check.Gen.well_formed prog' with
        | Ok () -> ()
        | Error m -> Alcotest.failf "iteration %d: mutant ill-formed: %s" i m);
        (match Analysis.bounds_check prog' (envf env) with
        | Ok () -> ()
        | Error m ->
            Alcotest.failf "iteration %d: mutant out of bounds: %s" i m)
  done;
  Alcotest.(check bool) "most programs have an offset to flip" true
    (!flipped > 15)

let test_roundtrip_generated () =
  let rng = Check.Rng.create 321 in
  for i = 0 to 29 do
    let prog, _ = Check.Gen.generate (Check.Rng.derive rng i) in
    let src = Check.Pretty.to_source prog in
    match Hextile_frontend.Front.parse_string ~name:"gen" src with
    | Error m -> Alcotest.failf "iteration %d: reparse failed: %s\n%s" i m src
    | Ok parsed ->
        if not (Check.Pretty.equal_program prog parsed) then
          Alcotest.failf "iteration %d: round-trip not structural:\n%s" i src
  done

(* ---- the shared out-of-domain convention ------------------------------ *)

(* A 1D statement reading A[i-1] from i = 0: out of the array domain. The
   convention (Analysis.bounds_check) is that such programs are rejected
   up front — identically by the interpreter and by the scheme executors,
   so a differential run can never diverge on boundary semantics. *)
let oob_prog =
  let n = Affp.param "N" in
  {
    Stencil.name = "oob";
    params = [ "N"; "T" ];
    steps = Affp.param "T";
    arrays = [ { Stencil.aname = "A"; extents = [| n |]; fold = Some 2 } ];
    stmts =
      [
        {
          Stencil.sname = "S0";
          lo = [| Affp.const 0 |];
          hi = [| Affp.add_const n (-1) |];
          write = { Stencil.array = "A"; time_off = 1; offsets = [| 0 |] };
          rhs = Read { Stencil.array = "A"; time_off = 0; offsets = [| -1 |] };
        };
      ];
  }

let test_oob_convention () =
  let env p = List.assoc p [ ("N", 8); ("T", 2) ] in
  (match Analysis.bounds_check oob_prog env with
  | Ok () -> Alcotest.fail "bounds_check accepted an out-of-domain read"
  | Error m ->
      Alcotest.(check bool) "message names the overflow" true
        (contains ~sub:"out of bounds" m));
  let raises_oob name f =
    match f () with
    | _ -> Alcotest.failf "%s accepted an out-of-domain read" name
    | exception Invalid_argument m ->
        Alcotest.(check bool)
          (name ^ " rejects with the shared message")
          true
          (contains ~sub:"out of bounds" m)
  in
  raises_oob "Interp.run" (fun () -> Interp.run oob_prog env);
  raises_oob "Common.make_ctx" (fun () -> Common.make_ctx oob_prog env dev)

(* ---- oracle ----------------------------------------------------------- *)

let test_oracle_clean_generated () =
  let cfg = { Check.Fuzz.default_config with seed = 5; count = 8 } in
  let s = Check.Fuzz.run cfg dev in
  Alcotest.(check int) "no failures" 0 s.failed;
  Alcotest.(check int) "all ran" 8 s.total;
  Alcotest.(check bool) "exit criterion" true (Check.Fuzz.ok cfg s)

let test_oracle_clean_suite () =
  List.iter
    (fun (prog, env) ->
      match Check.Oracle.check prog env dev with
      | Error m -> Alcotest.failf "%s: %s" prog.Stencil.name m
      | Ok [] -> ()
      | Ok fs ->
          Alcotest.failf "%s: %a" prog.Stencil.name
            Fmt.(list ~sep:(any "; ") Check.Oracle.pp_failure)
            fs)
    [
      (Suite.heat1d, [ ("N", 40); ("T", 4) ]);
      (Suite.jacobi2d, [ ("N", 12); ("T", 3) ]);
      (Suite.fdtd2d, [ ("N", 12); ("T", 3) ]);
    ]

let test_oracle_catches_mutant () =
  (* the harness's own acceptance check: an injected flipped offset must
     be caught by the differential run and shrink to <= 2 statements *)
  let cfg =
    {
      Check.Fuzz.default_config with
      seed = 42;
      count = 4;
      mutate = Some "hybrid";
      shrink = true;
    }
  in
  let s = Check.Fuzz.run cfg dev in
  Alcotest.(check bool) "at least one mutant caught" true (s.caught >= 1);
  Alcotest.(check int) "no mutant missed" 0 s.missed;
  Alcotest.(check bool) "exit criterion" true (Check.Fuzz.ok cfg s);
  List.iter
    (fun (c : Check.Fuzz.failure_case) ->
      Alcotest.(check bool) "shrunk to <= 2 statements" true
        (List.length c.f_prog.Stencil.stmts <= 2);
      Alcotest.(check bool) "failure is on the mutated scheme" true
        (List.for_all
           (fun f -> Check.Oracle.scheme_of_failure f = "hybrid")
           c.f_failures))
    s.cases

let test_oracle_scheme_filter () =
  let prog, env = Check.Gen.generate (Check.Rng.create 11) in
  (match Check.Oracle.check ~schemes:[ "par4all" ] prog env dev with
  | Ok [] -> ()
  | Ok fs ->
      Alcotest.failf "%a"
        Fmt.(list ~sep:(any "; ") Check.Oracle.pp_failure)
        fs
  | Error m -> Alcotest.fail m);
  match Check.Oracle.check ~schemes:[ "nonesuch" ] prog env dev with
  | Error m ->
      Alcotest.(check bool) "unknown scheme reported" true
        (contains ~sub:"nonesuch" m)
  | Ok _ -> Alcotest.fail "unknown scheme accepted"

(* ---- shrinking -------------------------------------------------------- *)

let test_shrink_fixpoint () =
  let prog, env = Check.Gen.generate (Check.Rng.create 77) in
  (* a predicate nothing satisfies: the input comes back unchanged *)
  let p, e =
    Check.Shrink.shrink ~still_fails:(fun _ _ -> false) prog env
  in
  Alcotest.(check bool) "no shrink without failure" true
    (Check.Pretty.equal_program p prog && e = env);
  (* an always-true predicate shrinks to something small but still valid *)
  let p, e = Check.Shrink.shrink ~still_fails:(fun _ _ -> true) prog env in
  Alcotest.(check bool) "result valid" true (Check.Shrink.valid p e);
  Alcotest.(check int) "single statement" 1 (List.length p.Stencil.stmts);
  Alcotest.(check bool) "tiny valuation" true
    (List.for_all (fun (_, v) -> v <= 2) e)

let test_shrink_candidates_smaller () =
  let measure (p : Stencil.t) env =
    let rec nodes (e : Stencil.fexpr) =
      match e with
      | Read _ | Fconst _ -> 1
      | Neg x -> 1 + nodes x
      | Bin (_, l, r) -> 1 + nodes l + nodes r
    in
    let offs =
      List.fold_left
        (fun acc (s : Stencil.stmt) ->
          List.fold_left
            (fun acc (a : Stencil.access) ->
              Array.fold_left (fun acc o -> acc + abs o) acc a.offsets)
            acc (Stencil.reads s))
        0 p.stmts
    in
    (1000 * List.length p.stmts)
    + List.fold_left (fun acc (s : Stencil.stmt) -> acc + nodes s.rhs) 0 p.stmts
    + offs
    + List.length p.arrays
    + List.fold_left (fun acc (_, v) -> acc + v) 0 env
  in
  let rng = Check.Rng.create 13 in
  for i = 0 to 9 do
    let prog, env = Check.Gen.generate (Check.Rng.derive rng i) in
    let m0 = measure prog env in
    List.iter
      (fun (p, e) ->
        Alcotest.(check bool) "candidate strictly smaller" true
          (measure p e < m0))
      (Check.Shrink.candidates prog env)
  done

(* ---- counterexample files --------------------------------------------- *)

let test_counterexample_roundtrip () =
  let prog, env = Check.Gen.generate (Check.Rng.create 55) in
  let src =
    Check.Fuzz.counterexample_source ~mutate:"hybrid" ~seed:9 ~index:3 prog env
      []
  in
  Alcotest.(check bool) "records the replay line" true
    (contains ~sub:"--replay" src && contains ~sub:"--mutate hybrid" src);
  match Hextile_frontend.Front.parse_string ~name:"cex" src with
  | Error m -> Alcotest.failf "counterexample does not reparse: %s" m
  | Ok parsed ->
      Alcotest.(check bool) "reparses to the same program" true
        (Check.Pretty.equal_program prog parsed)

let suite =
  [
    Alcotest.test_case "rng determinism / derive" `Quick test_rng_determinism;
    Alcotest.test_case "rng bounds" `Quick test_rng_bounds;
    Alcotest.test_case "generated programs valid" `Quick test_gen_valid;
    Alcotest.test_case "generation deterministic" `Quick test_gen_deterministic;
    Alcotest.test_case "offset flip mutants" `Quick test_flip_offset;
    Alcotest.test_case "generated programs round-trip" `Quick
      test_roundtrip_generated;
    Alcotest.test_case "shared out-of-domain convention" `Quick
      test_oob_convention;
    Alcotest.test_case "oracle clean on generated programs" `Quick
      test_oracle_clean_generated;
    Alcotest.test_case "oracle clean on the suite" `Quick
      test_oracle_clean_suite;
    Alcotest.test_case "oracle catches + shrinks mutants" `Quick
      test_oracle_catches_mutant;
    Alcotest.test_case "oracle scheme filter" `Quick test_oracle_scheme_filter;
    Alcotest.test_case "shrink fixpoint" `Quick test_shrink_fixpoint;
    Alcotest.test_case "shrink candidates strictly smaller" `Quick
      test_shrink_candidates_smaller;
    Alcotest.test_case "counterexample file round-trip" `Quick
      test_counterexample_roundtrip;
  ]
