module E = Hextile_experiments.Experiments
open Hextile_gpusim
open Hextile_stencils

let tiny2 = [ ("N", 48); ("T", 8) ]

let test_sizes () =
  let s2 = E.sizes ~quick:true Suite.heat2d in
  Alcotest.(check bool) "2D quick N" true (List.assoc "N" s2 >= 64);
  let s3 = E.sizes ~quick:true Suite.heat3d in
  Alcotest.(check bool) "3D smaller than 2D" true
    (List.assoc "N" s3 < List.assoc "N" s2);
  let f3 = E.sizes ~quick:false Suite.heat3d in
  Alcotest.(check bool) "full > quick" true (List.assoc "N" f3 > List.assoc "N" s3)

let test_scaled_device () =
  let env = E.sizes ~quick:true Suite.heat2d in
  let d = E.scaled_device Device.gtx470 Suite.heat2d env in
  Alcotest.(check bool) "L2 shrinks" true (d.l2_bytes < Device.gtx470.l2_bytes);
  Alcotest.(check bool) "L2 floor" true (d.l2_bytes >= 4096);
  Alcotest.(check bool) "SMs shrink" true (d.sms < Device.gtx470.sms && d.sms >= 1);
  Alcotest.(check bool) "bandwidth scales with SMs" true
    (d.dram_bw_gbs < Device.gtx470.dram_bw_gbs);
  (* machine balance preserved: bytes per flop unchanged *)
  let balance (x : Device.t) = x.dram_bw_gbs /. Device.peak_gflops x in
  Alcotest.(check (float 1e-9)) "balance" (balance Device.gtx470) (balance d)

let test_run_scheme_verifies () =
  List.iter
    (fun s ->
      let r = E.run_scheme s Suite.heat2d tiny2 Device.gtx470 in
      Alcotest.(check bool)
        (E.scheme_name s ^ " positive rate")
        true
        (Hextile_schemes.Common.gstencils_per_s r > 0.0))
    [ E.Ppcg; E.Par4all; E.Overtile; E.Patus; E.Hybrid ]

let test_paper_tables_complete () =
  List.iter
    (fun dev ->
      let rows = E.paper_table12 dev in
      Alcotest.(check int) "7 kernels" 7 (List.length rows);
      List.iter
        (fun (_, cells) -> Alcotest.(check int) "4 schemes" 4 (List.length cells))
        rows)
    [ Device.gtx470; Device.nvs5200m ]

let test_figures_nonempty () =
  List.iter
    (fun (name, f) ->
      Alcotest.(check bool) (name ^ " nonempty") true (String.length (f ()) > 40))
    [
      ("fig2", E.figure2_text);
      ("fig3", E.figure3_text);
      ("fig4", E.figure4_text);
      ("fig5", E.figure5_text);
      ("fig6", E.figure6_text);
      ("table3", E.table3_text);
      ("tilesize", E.tile_size_sweep_text);
    ]

(* The stderr summary contract gained blocks_analytic and classes: both
   always present (in order, after the original five keys), echoing the
   result's fields — 0 outside analytic mode, the class tallies in it. *)
let test_sim_summary_analytic_keys () =
  let parse line =
    match String.split_on_char ' ' line with
    | "sim:" :: tokens ->
        List.map
          (fun tok ->
            match String.index_opt tok '=' with
            | Some i ->
                ( String.sub tok 0 i,
                  String.sub tok (i + 1) (String.length tok - i - 1) )
            | None -> Alcotest.failf "token %S is not key=value" tok)
          tokens
    | _ -> Alcotest.failf "summary %S does not start with \"sim:\"" line
  in
  let summary r =
    parse
      (E.sim_summary ~wall_s:0.5 ~jobs:1 ~engine:Hextile_schemes.Common.Tape r)
  in
  let env = [ ("N", 128); ("T", 24) ] in
  let exact = E.run_scheme E.Hybrid Suite.laplacian2d env Device.gtx470 in
  let kvs = summary exact in
  Alcotest.(check (list string))
    "keys in contract order"
    [
      "wall_ms"; "blocks"; "blocks_memoized"; "engine"; "jobs";
      "blocks_analytic"; "classes"; "epilogue_ms"; "blit_rows";
      "replay_lines";
    ]
    (List.map fst kvs);
  Alcotest.(check (option string)) "exact run: blocks_analytic=0" (Some "0")
    (List.assoc_opt "blocks_analytic" kvs);
  Alcotest.(check (option string)) "exact run: classes=0" (Some "0")
    (List.assoc_opt "classes" kvs);
  (* blit_rows also counts memoized-block bulk replay, so it can be
     positive outside analytic mode; line replay is analytic-only *)
  Alcotest.(check (option string))
    "exact run: blit_rows echoed"
    (Some (string_of_int exact.Hextile_schemes.Common.blit_rows))
    (List.assoc_opt "blit_rows" kvs);
  Alcotest.(check (option string)) "exact run: replay_lines=0" (Some "0")
    (List.assoc_opt "replay_lines" kvs);
  let analytic =
    E.run_scheme ~analytic:true ~verify:false E.Hybrid Suite.laplacian2d env
      Device.gtx470
  in
  let kvs = summary analytic in
  Alcotest.(check (option string))
    "analytic run: blocks_analytic echoed"
    (Some (string_of_int analytic.Hextile_schemes.Common.blocks_analytic))
    (List.assoc_opt "blocks_analytic" kvs);
  Alcotest.(check (option string))
    "analytic run: classes echoed"
    (Some (string_of_int analytic.Hextile_schemes.Common.classes))
    (List.assoc_opt "classes" kvs);
  Alcotest.(check bool)
    "analytic run scaled blocks" true
    (analytic.Hextile_schemes.Common.blocks_analytic > 0);
  Alcotest.(check (option string))
    "analytic run: blit_rows echoed"
    (Some (string_of_int analytic.Hextile_schemes.Common.blit_rows))
    (List.assoc_opt "blit_rows" kvs);
  Alcotest.(check (option string))
    "analytic run: replay_lines echoed"
    (Some (string_of_int analytic.Hextile_schemes.Common.replay_lines))
    (List.assoc_opt "replay_lines" kvs);
  Alcotest.(check bool)
    "analytic run replayed lines" true
    (analytic.Hextile_schemes.Common.replay_lines > 0)

(* Analytic mode only makes sense over the tape engine: the ref
   interpreter records no streams, so there is nothing to scale. The
   combination is rejected eagerly rather than silently running exact. *)
let test_analytic_requires_tape_engine () =
  Alcotest.check_raises "analytic + ref engine rejected"
    (Invalid_argument
       "Experiments.run_scheme: analytic mode requires the tape engine (the \
        ref interpreter records no streams to scale)") (fun () ->
      ignore
        (E.run_scheme ~engine:Hextile_schemes.Common.Ref ~analytic:true
           ~verify:false E.Hybrid Suite.laplacian2d tiny2 Device.gtx470))

let test_verification_catches_corruption () =
  let prog = Suite.heat2d in
  let r = E.run_scheme E.Ppcg prog tiny2 Device.gtx470 in
  (* flip one value and re-verify: must be detected *)
  let g = Hextile_ir.Grid.find r.grids "A" in
  g.data.(Array.length g.data / 2) <- g.data.(Array.length g.data / 2) +. 1.0;
  let reference = Hextile_ir.Interp.run prog (fun p -> List.assoc p tiny2) in
  Alcotest.(check bool) "corruption detected" false
    (Hextile_ir.Grid.equal g (Hextile_ir.Grid.find reference "A"))

let suite =
  [
    Alcotest.test_case "experiment sizes" `Quick test_sizes;
    Alcotest.test_case "scaled device preserves balance" `Quick test_scaled_device;
    Alcotest.test_case "run_scheme verifies all schemes" `Slow test_run_scheme_verifies;
    Alcotest.test_case "paper reference tables complete" `Quick test_paper_tables_complete;
    Alcotest.test_case "figure texts render" `Quick test_figures_nonempty;
    Alcotest.test_case "sim summary: analytic contract keys" `Quick
      test_sim_summary_analytic_keys;
    Alcotest.test_case "analytic requires tape engine" `Quick
      test_analytic_requires_tape_engine;
    Alcotest.test_case "verification catches corruption" `Quick
      test_verification_catches_corruption;
  ]
