let () =
  Alcotest.run "hextile"
    [
      ("util", Test_util.suite);
      ("poly", Test_poly.suite);
      ("ir", Test_ir.suite);
      ("deps", Test_deps.suite);
      ("tiling", Test_tiling.suite);
      ("frontend", Test_frontend.suite);
      ("gpusim", Test_gpusim.suite);
      ("schemes", Test_schemes.suite);
      ("tape", Test_tape.suite);
      ("check", Test_check.suite);
      ("par", Test_par.suite);
      ("par_stress", Test_par_stress.suite);
      ("codegen", Test_codegen.suite);
      ("experiments", Test_experiments.suite);
      ("analytic", Test_analytic.suite);
      ("blit", Test_blit.suite);
      ("obs", Test_obs.suite);
      ("serve", Test_serve.suite);
      ("timeline", Test_timeline.suite);
    ]
