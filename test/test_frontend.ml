open Hextile_frontend
open Hextile_ir

let parse_ok src =
  match Front.parse_string ~name:"test" src with
  | Ok p -> p
  | Error m -> Alcotest.failf "unexpected parse error: %s" m

let parse_err src =
  match Front.parse_string ~name:"test" src with
  | Ok _ -> Alcotest.failf "expected an error for %S" src
  | Error m -> m

let jacobi_src =
  {|float A[2][N][N];
for (t = 0; t < T; t++)
  for (i = 1; i < N - 1; i++)
    for (j = 1; j < N - 1; j++)
      A[(t+1)%2][i][j] = 0.2f * (A[t%2][i][j] +
        A[t%2][i+1][j] + A[t%2][i-1][j] +
        A[t%2][i][j+1] + A[t%2][i][j-1]);
|}

let test_lexer () =
  let lx = Lexer.of_string "for (i0 = 0; i0 < N - 1; i0++) // comment\n x[1]" in
  let toks = ref [] in
  let rec go () =
    match Lexer.next lx with
    | Lexer.Eof -> ()
    | t ->
        toks := t :: !toks;
        go ()
  in
  go ();
  Alcotest.(check int) "token count" 19 (List.length !toks);
  Alcotest.(check bool) "has for" true (List.mem Lexer.Kw_for !toks);
  Alcotest.(check bool) "has ++" true (List.mem Lexer.PlusPlus !toks)

let test_lexer_literals () =
  let one src expect =
    let lx = Lexer.of_string src in
    Alcotest.(check bool) src true (Lexer.next lx = expect)
  in
  one "42" (Lexer.Int 42);
  one "0.5f" (Lexer.Float 0.5);
  one "2f" (Lexer.Float 2.0);
  one "1e3" (Lexer.Float 1000.0);
  one "1.5e-2" (Lexer.Float 0.015)

let test_lexer_comments () =
  let lx = Lexer.of_string "/* multi\nline */ 7 # preprocessor\n 8" in
  Alcotest.(check bool) "7" true (Lexer.next lx = Lexer.Int 7);
  Alcotest.(check bool) "8" true (Lexer.next lx = Lexer.Int 8);
  Alcotest.(check bool) "eof" true (Lexer.next lx = Lexer.Eof)

let test_lexer_error_position () =
  match Lexer.of_string "\n  @" with
  | exception Lexer.Error (pos, _) ->
      Alcotest.(check int) "line" 2 pos.line;
      Alcotest.(check int) "col" 3 pos.col
  | _ -> Alcotest.fail "expected lexer error"

let test_parse_jacobi () =
  let p = parse_ok jacobi_src in
  Alcotest.(check int) "one statement" 1 (List.length p.stmts);
  Alcotest.(check (list string)) "params" [ "N"; "T" ] p.params;
  let a = Stencil.array_decl p "A" in
  Alcotest.(check (option int)) "fold 2" (Some 2) a.fold;
  let s = List.hd p.stmts in
  Alcotest.(check int) "write time_off" 1 s.write.time_off;
  Alcotest.(check int) "5 loads" 5 (List.length (Stencil.distinct_reads s));
  Alcotest.(check int) "5 flops" 5 (Stencil.flops s)

let test_parse_matches_builtin () =
  let p = parse_ok jacobi_src in
  let env x = List.assoc x [ ("N", 20); ("T", 9) ] in
  let a = Interp.run p env and b = Interp.run Hextile_stencils.Suite.jacobi2d env in
  Alcotest.(check bool) "semantics match builtin jacobi2d" true
    (Grid.equal (Grid.find a "A") (Grid.find b "A"))

let test_parse_multi_statement () =
  let src =
    {|float ey[N][N];
float hz[N][N];
for (t = 0; t < T; t++) {
  for (i = 1; i < N - 1; i++)
    for (j = 1; j < N - 1; j++)
      ey[i][j] = ey[i][j] - 0.5f * (hz[i][j] - hz[i-1][j]);
  for (i = 1; i < N - 1; i++)
    for (j = 1; j < N - 1; j++)
      hz[i][j] = hz[i][j] - 0.7f * (ey[i+1][j] - ey[i][j]);
}
|}
  in
  let p = parse_ok src in
  Alcotest.(check int) "two statements" 2 (List.length p.stmts);
  List.iter
    (fun (a : Stencil.array_decl) ->
      Alcotest.(check (option int)) "in-place arrays" None a.fold)
    p.arrays

let test_le_bound () =
  let src =
    {|float A[2][N];
for (t = 0; t < T; t++)
  for (i = 1; i <= N - 2; i++)
    A[(t+1)%2][i] = 0.5f * (A[t%2][i-1] + A[t%2][i+1]);
|}
  in
  let p = parse_ok src in
  let s = List.hd p.stmts in
  Alcotest.(check bool) "hi is N-2" true (Affp.equal s.hi.(0) (Affp.add_const (Affp.param "N") (-2)))

let contains ~sub s =
  let n = String.length sub in
  let rec go i = i + n <= String.length s && (String.sub s i n = sub || go (i + 1)) in
  go 0

let test_errors () =
  let cases =
    [
      ("for (t = 1; t < T; t++) for (i = 0; i < N; i++) A[i] = 1.0;", "start at 0");
      ( {|float A[N]; for (t = 0; t < T; t++) for (i = 0; i < N; i++) A[i] = B[i];|},
        "not declared" );
      ( {|float A[N]; for (t = 0; t < T; t++) for (i = 0; i < N; i++) A[i] = A[2*i];|},
        "iterator + constant" );
      ( {|float A[N]; for (t = 0; t < T; t++) for (i = 0; i < N; i++) A[t] = 1.0;|},
        "buffering" );
      ( {|float A[N][N]; for (t = 0; t < T; t++) for (i = 0; i < N; i++) A[i][i] = 1.0;|},
        "nest order" );
      ( {|float A[N]; for (t = 0; t < T; t++) for (i = 0; i < N; i++) A[i] += 1.0;|},
        "+=" );
      ( {|float A[N]; for (t = 0; t < T; t++) for (i = 0; i < N; i++) { A[i] = 1.0; A[i] = 2.0; }|},
        "imperfect" );
      ( {|float A[1][N]; for (t = 0; t < T; t++) for (i = 0; i < N; i++) A[(t+1)%2][i] = 1.0;|},
        "buffers" );
    ]
  in
  List.iter
    (fun (src, frag) ->
      let m = parse_err src in
      if not (contains ~sub:frag m) then
        Alcotest.failf "error %S does not mention %S" m frag)
    cases

let test_error_position_reported () =
  let m = parse_err "float A[N];\nfor (t = 0; t < T; t++)\n  A[0] = 1.0;" in
  Alcotest.(check bool) "has line info" true (contains ~sub:"line 3" m)

let test_parse_all_benchmark_sources () =
  (* round-trip: pretty-print style sources for 3D and contrived folds *)
  let src3d =
    {|float A[2][N][N][N];
for (t = 0; t < T; t++)
  for (i = 1; i < N - 1; i++)
    for (j = 1; j < N - 1; j++)
      for (k = 1; k < N - 1; k++)
        A[(t+1)%2][i][j][k] = 0.1f * (A[t%2][i-1][j][k] + A[t%2][i+1][j][k]
          + A[t%2][i][j-1][k] + A[t%2][i][j+1][k]
          + A[t%2][i][j][k-1] + A[t%2][i][j][k+1]) + 0.4f * A[t%2][i][j][k];
|}
  in
  let p = parse_ok src3d in
  Alcotest.(check int) "3 spatial dims" 3 (Stencil.spatial_dims p);
  let env x = List.assoc x [ ("N", 10); ("T", 6) ] in
  let a = Interp.run p env and b = Interp.run Hextile_stencils.Suite.laplacian3d env in
  Alcotest.(check bool) "matches builtin laplacian3d" true
    (Grid.equal (Grid.find a "A") (Grid.find b "A"))

let test_fold3 () =
  let src =
    {|float A[3][N];
for (t = 0; t < T; t++)
  for (i = 2; i < N - 2; i++)
    A[(t+2)%3][i] = 0.5f * (A[t%3][i-2] + A[(t+1)%3][i+2]);
|}
  in
  let p = parse_ok src in
  let env x = List.assoc x [ ("N", 30); ("T", 10) ] in
  let a = Interp.run p env and b = Interp.run Hextile_stencils.Suite.contrived env in
  Alcotest.(check bool) "matches builtin contrived" true
    (Grid.equal (Grid.find a "A") (Grid.find b "A"))

(* Round-trip fuzzing: build a random single-statement 2D stencil, print
   it as C source, parse it back, and compare the two programs'
   executions point for point. *)
let prop_roundtrip_random_stencil =
  let arb =
    QCheck.(
      list_of_size (Gen.int_range 1 5)
        (triple (int_range (-2) 2) (int_range (-2) 2) (int_range 1 8)))
  in
  QCheck.Test.make ~name:"frontend round-trip on random stencils" ~count:40 arb
    (fun terms ->
      (* exactly-representable weights k/8 *)
      let term_src (di, dj, k) =
        let idx v o =
          if o = 0 then v else if o > 0 then Printf.sprintf "%s+%d" v o
          else Printf.sprintf "%s-%d" v (-o)
        in
        Printf.sprintf "%d.0f / 8.0f * A[t%%2][%s][%s]" k (idx "i" di) (idx "j" dj)
      in
      let src =
        Printf.sprintf
          "float A[2][N][N];\nfor (t = 0; t < T; t++)\n for (i = 2; i < N - 2; i++)\n  for (j = 2; j < N - 2; j++)\n   A[(t+1)%%2][i][j] = %s;"
          (String.concat " + " (List.map term_src terms))
      in
      match Front.parse_string ~name:"fuzz" src with
      | Error m -> QCheck.Test.fail_reportf "parse error: %s" m
      | Ok parsed ->
          (* reference built directly in the IR *)
          let open Stencil in
          let acc di dj =
            { array = "A"; time_off = 0; offsets = [| di; dj |] }
          in
          let rhs =
            match
              List.map
                (fun (di, dj, k) ->
                  Bin
                    ( Mul,
                      Bin (Div, Fconst (float_of_int k), Fconst 8.0),
                      Read (acc di dj) ))
                terms
            with
            | [] -> assert false
            | x :: rest -> List.fold_left (fun a b -> Bin (Add, a, b)) x rest
          in
          let direct =
            {
              name = "fuzz";
              params = [ "N"; "T" ];
              steps = Affp.param "T";
              arrays =
                [
                  {
                    aname = "A";
                    extents = [| Affp.param "N"; Affp.param "N" |];
                    fold = Some 2;
                  };
                ];
              stmts =
                [
                  {
                    sname = "S0";
                    lo = [| Affp.const 2; Affp.const 2 |];
                    hi =
                      [|
                        Affp.add_const (Affp.param "N") (-3);
                        Affp.add_const (Affp.param "N") (-3);
                      |];
                    write = { array = "A"; time_off = 1; offsets = [| 0; 0 |] };
                    rhs;
                  };
                ];
            }
          in
          let env p = List.assoc p [ ("N", 14); ("T", 5) ] in
          let a = Interp.run parsed env and b = Interp.run direct env in
          Grid.equal (Grid.find a "A") (Grid.find b "A"))

(* Structural round-trips through the Pretty printer: the canonical form
   Lower produces is a fixed point of print-then-parse, for the built-in
   suite and for fuzzer-generated programs alike. *)
let test_pretty_roundtrip_suite () =
  List.iter
    (fun (prog : Stencil.t) ->
      let src = Hextile_check.Pretty.to_source prog in
      match Front.parse_string ~name:prog.name src with
      | Error m -> Alcotest.failf "%s: reparse failed: %s\n%s" prog.name m src
      | Ok parsed ->
          if not (Hextile_check.Pretty.equal_program prog parsed) then
            Alcotest.failf "%s: print/parse not structural:\n%s" prog.name src)
    Hextile_stencils.Suite.all

let test_pretty_roundtrip_generated () =
  let rng = Hextile_check.Rng.create 2024 in
  for i = 0 to 19 do
    let prog, _ = Hextile_check.Gen.generate (Hextile_check.Rng.derive rng i) in
    let src = Hextile_check.Pretty.to_source prog in
    match Front.parse_string ~name:"gen" src with
    | Error m -> Alcotest.failf "iteration %d: reparse failed: %s\n%s" i m src
    | Ok parsed ->
        if not (Hextile_check.Pretty.equal_program prog parsed) then
          Alcotest.failf "iteration %d: print/parse not structural:\n%s" i src
  done

let suite =
  [
    Alcotest.test_case "lexer tokens" `Quick test_lexer;
    Alcotest.test_case "lexer literals" `Quick test_lexer_literals;
    Alcotest.test_case "lexer comments/preprocessor" `Quick test_lexer_comments;
    Alcotest.test_case "lexer error position" `Quick test_lexer_error_position;
    Alcotest.test_case "parse Figure 1 jacobi" `Quick test_parse_jacobi;
    Alcotest.test_case "frontend semantics = builtin" `Quick test_parse_matches_builtin;
    Alcotest.test_case "multi-statement body" `Quick test_parse_multi_statement;
    Alcotest.test_case "<= bound" `Quick test_le_bound;
    Alcotest.test_case "frontend error messages" `Quick test_errors;
    Alcotest.test_case "error positions" `Quick test_error_position_reported;
    Alcotest.test_case "3D source" `Quick test_parse_all_benchmark_sources;
    Alcotest.test_case "triple buffering (%3)" `Quick test_fold3;
    QCheck_alcotest.to_alcotest prop_roundtrip_random_stencil;
    Alcotest.test_case "pretty round-trip (suite)" `Quick
      test_pretty_roundtrip_suite;
    Alcotest.test_case "pretty round-trip (generated)" `Quick
      test_pretty_roundtrip_generated;
  ]
