(* Differential tests for the warp-batched tape engine: the closure
   interpreter ([Common.Ref]) is the reference; the tape engine (with
   tile-class address-stream memoization in the hybrid scheme) must
   produce bit-identical grids and counters at every jobs value. *)

open Hextile_gpusim
open Hextile_schemes
open Hextile_stencils
open Hextile_ir
module Check = Hextile_check
module Par = Hextile_par.Par

let test_env prog = fun p -> List.assoc p (Suite.test_params prog)

let compare_results name (ref_r : Common.result) (tape_r : Common.result) =
  Alcotest.(check (list (pair string int)))
    (name ^ ": counters")
    (Counters.to_assoc ref_r.counters)
    (Counters.to_assoc tape_r.counters);
  Alcotest.(check int) (name ^ ": updates") ref_r.updates tape_r.updates;
  Alcotest.(check int) (name ^ ": blocks") ref_r.blocks tape_r.blocks;
  Hashtbl.iter
    (fun aname g ->
      if not (Grid.equal g (Grid.find tape_r.grids aname)) then
        Alcotest.failf "%s: array %s differs between engines" name aname)
    ref_r.grids

let hybrid ?pool ~engine prog env = Hybrid_exec.run ?pool ~engine prog env Device.gtx470

(* Stronger than [compare_results]: the two runs must agree on
   [blocks_memoized] too. Used across jobs values, where the shared
   read-once/replay-many class table must change only who records a
   class, never how many blocks replay one. *)
let compare_identical name (a : Common.result) (b : Common.result) =
  Alcotest.(check (list (pair string int)))
    (name ^ ": counters")
    (Counters.to_assoc a.counters)
    (Counters.to_assoc b.counters);
  Alcotest.(check int) (name ^ ": updates") a.updates b.updates;
  Alcotest.(check int) (name ^ ": blocks") a.blocks b.blocks;
  Alcotest.(check int)
    (name ^ ": blocks_memoized")
    a.blocks_memoized b.blocks_memoized;
  Hashtbl.iter
    (fun aname g ->
      if not (Grid.equal g (Grid.find b.grids aname)) then
        Alcotest.failf "%s: array %s differs across jobs values" name aname)
    a.grids

(* Table 3 (plus the extra suite programs) on the hybrid scheme, at jobs
   1, 2 and 4: the memoized tape engine against the closure reference. *)
let test_hybrid_table3 () =
  List.iter
    (fun prog ->
      let env = test_env prog in
      let ref_r = hybrid ~engine:Common.Ref prog env in
      let seq = hybrid ~engine:Common.Tape prog env in
      compare_results (prog.Stencil.name ^ "/jobs1") ref_r seq;
      List.iter
        (fun jobs ->
          Par.with_pool ~jobs (fun pool ->
              let r = hybrid ~pool ~engine:Common.Tape prog env in
              compare_results (Fmt.str "%s/jobs%d" prog.Stencil.name jobs) ref_r r))
        [ 2; 4 ])
    Suite.all

(* The classical-tiling executors share the batched exec_stmt_row /
   copy-in / copy-out paths; one representative per executor. *)
let test_other_schemes () =
  let check name run prog =
    let env = test_env prog in
    compare_results name (run Common.Ref prog env) (run Common.Tape prog env)
  in
  check "ppcg" (fun engine p e -> Ppcg.run ~engine p e Device.gtx470) Suite.jacobi2d;
  check "par4all" (fun engine p e -> Par4all.run ~engine p e Device.gtx470) Suite.jacobi2d;
  check "overtile"
    (fun engine p e -> Overtile.run ~engine p e Device.gtx470)
    Suite.jacobi2d;
  check "split"
    (fun engine p e -> Split_tiling.run ~engine p e Device.gtx470)
    Suite.heat1d

(* The shared class table is the tape engine's one cross-domain data
   structure; this is the determinism contract head-on. Every suite
   program at jobs 1, 2 and 4: grids, every counter, the update count
   and [blocks_memoized] all bit-identical to the sequential run. *)
let test_shared_cache_determinism () =
  List.iter
    (fun prog ->
      let env = test_env prog in
      let seq = hybrid ~engine:Common.Tape prog env in
      List.iter
        (fun jobs ->
          Par.with_pool ~jobs (fun pool ->
              compare_identical
                (Fmt.str "%s/jobs%d vs jobs1" prog.Stencil.name jobs)
                seq
                (hybrid ~pool ~engine:Common.Tape prog env)))
        [ 2; 4 ])
    Suite.all

(* 25 fuzzed programs: random shapes (folded/in-place storage, multiple
   statements, asymmetric offsets, degenerate domains) through the
   hybrid scheme, engines compared at jobs 1 and 2 — plus a jobs=4 leg
   holding the parallel run to full [compare_identical] strictness
   against the sequential tape run. *)
let test_fuzzed () =
  let rng = Check.Rng.create 2024 in
  for i = 1 to 25 do
    let prog, env = Check.Gen.generate (Check.Rng.derive rng i) in
    let e p = List.assoc p env in
    let ref_r = hybrid ~engine:Common.Ref prog e in
    let t1 = hybrid ~engine:Common.Tape prog e in
    compare_results (Fmt.str "fuzz%d/jobs1" i) ref_r t1;
    Par.with_pool ~jobs:2 (fun pool ->
        compare_results
          (Fmt.str "fuzz%d/jobs2" i)
          ref_r
          (hybrid ~pool ~engine:Common.Tape prog e));
    Par.with_pool ~jobs:4 (fun pool ->
        compare_identical
          (Fmt.str "fuzz%d/jobs4 vs jobs1" i)
          t1
          (hybrid ~pool ~engine:Common.Tape prog e))
  done

(* The memoization must actually fire on an interior-heavy instance —
   otherwise the replay path is dead code and the suite proves nothing. *)
let test_memoization_fires () =
  let prog = Suite.jacobi2d in
  let env p = List.assoc p [ ("N", 64); ("T", 8) ] in
  let r = hybrid ~engine:Common.Tape prog env in
  if r.blocks_memoized = 0 then
    Alcotest.failf "no blocks memoized out of %d" r.blocks;
  compare_results "jacobi2d-64" (hybrid ~engine:Common.Ref prog env) r

(* With the sanitizer enabled the per-lane reference path must run (it
   needs per-lane thread identities): no memoized blocks, same grids. *)
let test_sanitizer_disables_memoization () =
  let prog = Suite.jacobi2d in
  let env p = List.assoc p [ ("N", 64); ("T", 8) ] in
  let plain = hybrid ~engine:Common.Tape prog env in
  Alcotest.(check bool) "memoizes without sanitizer" true (plain.blocks_memoized > 0);
  Sanitize.enable ();
  let r =
    Fun.protect ~finally:Sanitize.disable (fun () -> hybrid ~engine:Common.Tape prog env)
  in
  Alcotest.(check int) "no memoized blocks under sanitizer" 0 r.blocks_memoized;
  Hashtbl.iter
    (fun aname g ->
      if not (Grid.equal g (Grid.find plain.grids aname)) then
        Alcotest.failf "sanitized run: array %s differs" aname)
    r.grids

let suite =
  [
    Alcotest.test_case "hybrid tape vs ref, suite, jobs 1/2/4" `Quick
      test_hybrid_table3;
    Alcotest.test_case "classical schemes tape vs ref" `Quick test_other_schemes;
    Alcotest.test_case "shared class table: bit-identical at jobs 1/2/4" `Quick
      test_shared_cache_determinism;
    Alcotest.test_case "hybrid tape vs ref, 25 fuzzed programs" `Quick test_fuzzed;
    Alcotest.test_case "tile-class memoization fires" `Quick test_memoization_fires;
    Alcotest.test_case "sanitizer forces uncached execution" `Quick
      test_sanitizer_disables_memoization;
  ]
