open Hextile_poly
open Hextile_util

(* A small 2D triangle: 0 <= x, 0 <= y, x + y <= 4. *)
let triangle =
  let sp = Space.make [ "x"; "y" ] in
  Polyhedron.make sp
    [ Constr.ge [| 1; 0 |] 0; Constr.ge [| 0; 1 |] 0; Constr.ge [| -1; -1 |] 4 ]

let test_contains () =
  Alcotest.(check bool) "origin in" true (Polyhedron.contains triangle [| 0; 0 |]);
  Alcotest.(check bool) "(4,0) in" true (Polyhedron.contains triangle [| 4; 0 |]);
  Alcotest.(check bool) "(3,2) out" false (Polyhedron.contains triangle [| 3; 2 |]);
  Alcotest.(check bool) "(-1,0) out" false (Polyhedron.contains triangle [| -1; 0 |])

let test_count_triangle () =
  (* points with x,y >= 0, x+y <= 4: 15 *)
  Alcotest.(check int) "triangle count" 15 (Polyhedron.count triangle)

let test_enumerate_order () =
  let pts = Polyhedron.enumerate triangle in
  Alcotest.(check int) "count matches" 15 (List.length pts);
  let sorted = List.sort compare pts in
  Alcotest.(check bool) "lexicographic order" true (pts = sorted);
  List.iter
    (fun p -> Alcotest.(check bool) "each enumerated point in set" true (Polyhedron.contains triangle p))
    pts

let test_empty () =
  let sp = Space.make [ "x" ] in
  let p = Polyhedron.make sp [ Constr.ge [| 1 |] 0; Constr.ge [| -1 |] (-1) ] in
  (* x >= 0 and x <= -1 *)
  Alcotest.(check bool) "rationally empty" true (Polyhedron.is_empty_rational p);
  Alcotest.(check bool) "no integer point" false (Polyhedron.exists_point p);
  Alcotest.(check int) "count 0" 0 (Polyhedron.count p)

let test_integer_gap () =
  (* 2x = 1 has rational but no integer solutions. *)
  let sp = Space.make [ "x" ] in
  let p = Polyhedron.make sp [ Constr.eq [| 2 |] (-1) ] in
  Alcotest.(check bool) "not rationally empty" false (Polyhedron.is_empty_rational p);
  Alcotest.(check bool) "no integer point" false (Polyhedron.exists_point p)

let test_unbounded () =
  let sp = Space.make [ "x" ] in
  let p = Polyhedron.make sp [ Constr.ge [| 1 |] 0 ] in
  Alcotest.check_raises "enumerate raises" (Polyhedron.Unbounded "x") (fun () ->
      ignore (Polyhedron.count p))

let test_eliminate () =
  (* Project the triangle onto x: expect 0 <= x <= 4. *)
  let p = Polyhedron.eliminate_keep triangle 1 in
  let xs =
    List.filter (fun x -> Polyhedron.contains p [| x; 0 |]) (Intutil.range (-2) 6)
  in
  Alcotest.(check (list int)) "projection onto x" [ 0; 1; 2; 3; 4 ] xs

let test_equality_pivot () =
  (* x + y = 3, 0 <= x <= 3: project out y, x should stay 0..3 *)
  let sp = Space.make [ "x"; "y" ] in
  let p =
    Polyhedron.make sp
      [ Constr.eq [| 1; 1 |] (-3); Constr.ge [| 1; 0 |] 0; Constr.ge [| -1; 0 |] 3 ]
  in
  Alcotest.(check int) "4 points on segment" 4 (Polyhedron.count p);
  let q = Polyhedron.eliminate_keep p 1 in
  let xs = List.filter (fun x -> Polyhedron.contains q [| x; 0 |]) (Intutil.range (-2) 6) in
  Alcotest.(check (list int)) "projection" [ 0; 1; 2; 3 ] xs

let test_var_bounds () =
  match Polyhedron.var_bounds triangle 0 with
  | None -> Alcotest.fail "triangle not empty"
  | Some (lo, hi) ->
      Alcotest.(check (option (float 0.0)))
        "lo x" (Some 0.0)
        (Option.map Rat.to_float lo);
      Alcotest.(check (option (float 0.0)))
        "hi x" (Some 4.0)
        (Option.map Rat.to_float hi)

let test_lp () =
  (match Lp.maximize triangle ~obj:[| 1; 2 |] () with
  | Lp.Opt r -> Alcotest.(check (float 0.0)) "max x+2y" 8.0 (Rat.to_float r)
  | _ -> Alcotest.fail "expected optimum");
  (match Lp.minimize triangle ~obj:[| 1; 2 |] ~const:5 () with
  | Lp.Opt r -> Alcotest.(check (float 0.0)) "min x+2y+5" 5.0 (Rat.to_float r)
  | _ -> Alcotest.fail "expected optimum");
  let sp = Space.make [ "x" ] in
  let half = Polyhedron.make sp [ Constr.ge [| 2 |] (-1) ] in
  (* 2x - 1 >= 0 is integer-tightened to x >= 1 at construction time, so
     the LP infimum is 1 (not the rational 1/2). *)
  (match Lp.minimize half ~obj:[| 1 |] () with
  | Lp.Opt r -> Alcotest.(check bool) "min is 1 (tightened)" true (Rat.equal r Rat.one)
  | _ -> Alcotest.fail "expected optimum");
  (match Lp.maximize half ~obj:[| 1 |] () with
  | Lp.Unbounded -> ()
  | _ -> Alcotest.fail "expected unbounded");
  let empty = Polyhedron.add_constraints half [ Constr.ge [| -1 |] (-1) ] in
  match Lp.maximize empty ~obj:[| 1 |] () with
  | Lp.Empty -> ()
  | _ -> Alcotest.fail "expected empty"

let test_qaff () =
  let open Qaff in
  (* floor((2x + 3) / 4) at x = 5 -> floor(13/4) = 3 *)
  let e = fdiv (add (scale 2 (var 0)) (const 3)) 4 in
  Alcotest.(check int) "fdiv eval" 3 (eval e [| 5 |]);
  Alcotest.(check int) "fmod eval" 1 (eval (fmod (var 0) 4) [| 13 |]);
  Alcotest.(check int) "fmod negative" 3 (eval (fmod (var 0) 4) [| -13 |]);
  let s = simplify (add (const 0) (scale 1 (sub (var 1) (const 0)))) in
  Alcotest.(check int) "simplify keeps meaning" 7 (eval s [| 0; 7 |]);
  (match s with Var 1 -> () | _ -> Alcotest.fail "expected Var 1 after simplify");
  (match to_affine_in ~dim:2 (add (scale 3 (var 0)) (sub (var 1) (const 2))) with
  | Some (c, k) ->
      Alcotest.(check (array int)) "affine coeffs" [| 3; 1 |] c;
      Alcotest.(check int) "affine const" (-2) k
  | None -> Alcotest.fail "expected affine");
  Alcotest.(check bool) "fdiv/fmod not affine" true
    (to_affine_in ~dim:1 (fdiv (var 0) 2) = None);
  Alcotest.check_raises "fdiv nonpositive divisor"
    (Invalid_argument "Qaff.fdiv: divisor must be positive") (fun () ->
      ignore (fdiv (var 0) 0))

let test_qmap () =
  let dom = Space.make [ "t"; "s" ] in
  let rng = Space.make [ "T"; "S" ] in
  let m = Qmap.make ~dom ~rng [| Qaff.(fdiv (var 0) 4); Qaff.(fmod (var 1) 3) |] in
  Alcotest.(check (array int)) "apply" [| 2; 1 |] (Qmap.apply m [| 9; 7 |]);
  Alcotest.(check int) "lex order" (-1) (Qmap.compare_points m [| 3; 0 |] [| 4; 0 |])

(* Property: FM projection is sound & (integer-)complete on random bounded
   2D sets: x has an integer value in proj iff some (x,y) in set. *)
let arb_constrs =
  QCheck.(
    list_of_size (Gen.int_range 1 5)
      (triple (int_range (-3) 3) (int_range (-3) 3) (int_range (-6) 6)))

let box =
  [
    Constr.ge [| 1; 0 |] 8;
    Constr.ge [| -1; 0 |] 8;
    Constr.ge [| 0; 1 |] 8;
    Constr.ge [| 0; -1 |] 8;
  ]

let mk_random_poly cs =
  let sp = Space.make [ "x"; "y" ] in
  Polyhedron.make sp (box @ List.map (fun (a, b, c) -> Constr.ge [| a; b |] c) cs)

let prop_fm_sound =
  QCheck.Test.make ~name:"FM projection contains every witnessed x" ~count:300
    arb_constrs (fun cs ->
      let p = mk_random_poly cs in
      let proj = Polyhedron.eliminate_keep p 1 in
      List.for_all
        (fun pt -> Polyhedron.contains proj [| pt.(0); 0 |])
        (Polyhedron.enumerate p))

let prop_count_matches_brute_force =
  QCheck.Test.make ~name:"count = brute force over box" ~count:300 arb_constrs
    (fun cs ->
      let p = mk_random_poly cs in
      let brute = ref 0 in
      for x = -8 to 8 do
        for y = -8 to 8 do
          if Polyhedron.contains p [| x; y |] then incr brute
        done
      done;
      Polyhedron.count p = !brute)

(* FM projection agrees exactly with brute-force shadow computation when
   every constraint's coefficient on the eliminated variable is in
   {-1, 0, 1}: each combined pair then has a unit pivot, so the rational
   projection has no integer "dark shadow" gap. Random small 3D
   polyhedra, eliminating z. *)
let arb_unit_z_constrs =
  QCheck.(
    list_of_size (Gen.int_range 1 5)
      (quad (int_range (-3) 3) (int_range (-3) 3) (int_range (-1) 1)
         (int_range (-6) 6)))

let prop_fm_exact_unit_coeff =
  QCheck.Test.make
    ~name:"FM projection = brute-force shadow (unit z coefficients)"
    ~count:200 arb_unit_z_constrs (fun cs ->
      let sp = Space.make [ "x"; "y"; "z" ] in
      let b = 5 in
      let box3 =
        List.concat_map
          (fun d ->
            let pos = Array.init 3 (fun i -> if i = d then 1 else 0) in
            let neg = Array.init 3 (fun i -> if i = d then -1 else 0) in
            [ Constr.ge pos b; Constr.ge neg b ])
          [ 0; 1; 2 ]
      in
      let p =
        Polyhedron.make sp
          (box3 @ List.map (fun (a, c, z, k) -> Constr.ge [| a; c; z |] k) cs)
      in
      let proj = Polyhedron.eliminate_keep p 2 in
      let shadow_brute x y =
        let rec go z = z <= b && (Polyhedron.contains p [| x; y; z |] || go (z + 1)) in
        go (-b)
      in
      let ok = ref true in
      for x = -b to b do
        for y = -b to b do
          if Polyhedron.contains proj [| x; y; 0 |] <> shadow_brute x y then
            ok := false
        done
      done;
      !ok)

let prop_lp_bounds_enumeration =
  QCheck.Test.make ~name:"LP max dominates every integer point" ~count:200
    arb_constrs (fun cs ->
      let p = mk_random_poly cs in
      match Lp.maximize p ~obj:[| 2; -3 |] () with
      | Lp.Empty -> not (Polyhedron.exists_point p)
      | Lp.Unbounded -> false (* impossible: boxed *)
      | Lp.Opt m ->
          Polyhedron.fold_points p ~init:true ~f:(fun ok pt ->
              let v = (2 * pt.(0)) - (3 * pt.(1)) in
              ok && Rat.compare (Rat.of_int v) m <= 0))

(* random quasi-affine expression trees *)
let arb_qaff =
  let open QCheck.Gen in
  let rec gen depth =
    if depth = 0 then
      oneof [ map Qaff.const (int_range (-20) 20); map Qaff.var (int_range 0 2) ]
    else
      frequency
        [
          (2, map Qaff.const (int_range (-20) 20));
          (2, map Qaff.var (int_range 0 2));
          (3, map2 Qaff.add (gen (depth - 1)) (gen (depth - 1)));
          (2, map2 Qaff.sub (gen (depth - 1)) (gen (depth - 1)));
          (2, map2 (fun k e -> Qaff.scale k e) (int_range (-4) 4) (gen (depth - 1)));
          (2, map2 (fun e d -> Qaff.fdiv e d) (gen (depth - 1)) (int_range 1 7));
          (2, map2 (fun e d -> Qaff.fmod e d) (gen (depth - 1)) (int_range 1 7));
        ]
  in
  QCheck.make (gen 4)

let prop_qaff_simplify_preserves =
  QCheck.Test.make ~name:"Qaff.simplify preserves evaluation" ~count:500
    (QCheck.pair arb_qaff (QCheck.triple QCheck.small_signed_int QCheck.small_signed_int QCheck.small_signed_int))
    (fun (e, (x, y, z)) ->
      let env = [| x; y; z |] in
      Qaff.eval e env = Qaff.eval (Qaff.simplify e) env)

let prop_qaff_affine_roundtrip =
  QCheck.Test.make ~name:"to_affine_in agrees with eval" ~count:300
    (QCheck.pair arb_qaff (QCheck.triple QCheck.small_signed_int QCheck.small_signed_int QCheck.small_signed_int))
    (fun (e, (x, y, z)) ->
      match Qaff.to_affine_in ~dim:3 e with
      | None -> true
      | Some (coeffs, c) ->
          let env = [| x; y; z |] in
          Qaff.eval e env
          = (coeffs.(0) * x) + (coeffs.(1) * y) + (coeffs.(2) * z) + c)

let test_count_vs_enumerate () =
  let sp = Space.make [ "x"; "y" ] in
  let fixtures =
    [
      triangle;
      (* square with an equality: y = 2, 0 <= x <= 3 *)
      Polyhedron.make sp
        [ Constr.eq [| 0; 1 |] (-2); Constr.ge [| 1; 0 |] 0; Constr.ge [| -1; 0 |] 3 ];
      (* empty *)
      Polyhedron.make sp
        [ Constr.ge [| 1; 0 |] 0; Constr.ge [| -1; 0 |] (-1); Constr.ge [| 0; 1 |] 0;
          Constr.ge [| 0; -1 |] 4 ];
    ]
  in
  List.iter
    (fun p ->
      Alcotest.(check int) "count = |enumerate|"
        (List.length (Polyhedron.enumerate p))
        (Polyhedron.count p))
    fixtures

let test_fm_cache () =
  Alcotest.(check bool) "cache on by default" true (Polyhedron.fm_cache_enabled ());
  Polyhedron.fm_cache_clear ();
  let p1 = Polyhedron.eliminate_keep triangle 1 in
  let h0, m0 = Polyhedron.fm_cache_stats () in
  Alcotest.(check (pair int int)) "first elimination misses" (0, 1) (h0, m0);
  let p2 = Polyhedron.eliminate_keep triangle 1 in
  let h1, m1 = Polyhedron.fm_cache_stats () in
  Alcotest.(check (pair int int)) "second elimination hits" (1, 1) (h1, m1);
  Alcotest.(check bool) "hit is structurally equal" true (p1 = p2);
  (* the cache-disabled path recomputes the identical polyhedron *)
  Polyhedron.set_fm_cache false;
  let p3 = Polyhedron.eliminate_keep triangle 1 in
  let h2, m2 = Polyhedron.fm_cache_stats () in
  Polyhedron.set_fm_cache true;
  Alcotest.(check bool) "disabled path bypasses stats" true (h2 = h1 && m2 = m1);
  Alcotest.(check bool) "disabled path identical" true (p3 = p1);
  (* projections through the cache still agree with point enumeration *)
  Polyhedron.fm_cache_clear ();
  let proj () =
    let q = Polyhedron.eliminate_keep triangle 1 in
    List.filter (fun x -> Polyhedron.contains q [| x; 0 |]) (Intutil.range (-2) 6)
  in
  let a = proj () in
  let b = proj () in
  Alcotest.(check (list int)) "cached projection onto x" [ 0; 1; 2; 3; 4 ] a;
  Alcotest.(check (list int)) "hit equals miss" a b

let suite =
  [
    Alcotest.test_case "contains" `Quick test_contains;
    Alcotest.test_case "count triangle" `Quick test_count_triangle;
    Alcotest.test_case "enumerate order" `Quick test_enumerate_order;
    Alcotest.test_case "empty set" `Quick test_empty;
    Alcotest.test_case "integer gap (2x=1)" `Quick test_integer_gap;
    Alcotest.test_case "unbounded detection" `Quick test_unbounded;
    Alcotest.test_case "FM elimination" `Quick test_eliminate;
    Alcotest.test_case "count vs enumerate" `Quick test_count_vs_enumerate;
    Alcotest.test_case "FM projection cache" `Quick test_fm_cache;
    Alcotest.test_case "equality pivot" `Quick test_equality_pivot;
    Alcotest.test_case "var_bounds" `Quick test_var_bounds;
    Alcotest.test_case "LP optimize" `Quick test_lp;
    Alcotest.test_case "qaff eval/simplify" `Quick test_qaff;
    Alcotest.test_case "qmap" `Quick test_qmap;
    QCheck_alcotest.to_alcotest prop_fm_sound;
    QCheck_alcotest.to_alcotest prop_count_matches_brute_force;
    QCheck_alcotest.to_alcotest prop_fm_exact_unit_coeff;
    QCheck_alcotest.to_alcotest prop_lp_bounds_enumeration;
    QCheck_alcotest.to_alcotest prop_qaff_simplify_preserves;
    QCheck_alcotest.to_alcotest prop_qaff_affine_roundtrip;
  ]
