(* Golden-snapshot generator: prints the requested emitter's output for
   every stencil in the paper's benchmark suite (Table 3) to stdout.
   The dune rules diff this against the committed .expected files, so an
   emitter refactor that changes any byte of generated CUDA/OpenCL/PTX
   fails `dune runtest` with the diff; intentional changes are accepted
   with `dune promote`. *)

open Hextile_ir
module Suite = Hextile_stencils.Suite
module Hybrid_exec = Hextile_schemes.Hybrid_exec
module Hybrid = Hextile_tiling.Hybrid
module Cuda = Hextile_codegen.Cuda_emit
module Opencl = Hextile_codegen.Opencl_emit
module Ptx = Hextile_codegen.Ptx_emit

let tiling_of prog =
  let config = Hybrid_exec.default_config prog in
  Hybrid.make prog ~h:config.h ~w:config.w

let emit which (prog : Stencil.t) =
  Fmt.pr "// ============ %s ============@." prog.name;
  match which with
  | "cuda" -> print_string (Cuda.host_and_kernels (tiling_of prog) prog)
  | "opencl" -> print_string (Opencl.host_and_kernels (tiling_of prog) prog)
  | "ptx" ->
      List.iter
        (fun (s : Stencil.stmt) ->
          let l = Ptx.core_listing prog s in
          Fmt.pr "// %s core: %d loads, %d ops, %d stores@.%s" s.sname l.loads
            l.arith l.stores l.text)
        prog.stmts
  | w -> invalid_arg ("gen_golden: unknown emitter " ^ w)

let () =
  let which =
    if Array.length Sys.argv > 1 then Sys.argv.(1)
    else invalid_arg "gen_golden: expected cuda | opencl | ptx"
  in
  List.iter (emit which) Suite.table3
