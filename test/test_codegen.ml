open Hextile_codegen
open Hextile_stencils
open Hextile_tiling

let contains ~sub s =
  let n = String.length sub in
  let rec go i = i + n <= String.length s && (String.sub s i n = sub || go (i + 1)) in
  go 0

let test_figure2_counts () =
  (* The paper's Figure 2: 3 shared loads, 5 compute instructions, 1 store. *)
  let l = Ptx_emit.core_listing Suite.jacobi2d (List.hd Suite.jacobi2d.stmts) in
  Alcotest.(check int) "3 loads" 3 l.loads;
  Alcotest.(check int) "5 arith" 5 l.arith;
  Alcotest.(check int) "1 store" 1 l.stores;
  Alcotest.(check bool) "has the 0.2f constant" true
    (contains ~sub:"0f3E4CCCCD" l.text);
  Alcotest.(check bool) "ld.shared present" true (contains ~sub:"ld.shared.f32" l.text);
  Alcotest.(check bool) "st.shared present" true (contains ~sub:"st.shared.f32" l.text)

let test_hexfloat () =
  Alcotest.(check string) "0.2f" "0f3E4CCCCD" (Ptx_emit.hexfloat 0.2);
  Alcotest.(check string) "1.0f" "0f3F800000" (Ptx_emit.hexfloat 1.0);
  Alcotest.(check string) "-1.0f" "0fBF800000" (Ptx_emit.hexfloat (-1.0))

let test_register_reuse_by_kernel () =
  (* heat2d 9-point: sweeping dim 0 keeps the two trailing 3-cell
     columns in registers -> only the leading column (3 cells) loads. *)
  let l = Ptx_emit.core_listing Suite.heat2d (List.hd Suite.heat2d.stmts) in
  Alcotest.(check int) "heat2d loads 3 of 9" 3 l.loads;
  Alcotest.(check int) "heat2d arith" 9 l.arith;
  (* laplacian2d 5-point: center + west available -> 3 loads *)
  let l = Ptx_emit.core_listing Suite.laplacian2d (List.hd Suite.laplacian2d.stmts) in
  Alcotest.(check int) "laplacian2d loads" 3 l.loads

let test_sweep_dim () =
  (* sweeping the x dimension instead changes which neighbours are reused *)
  let l0 = Ptx_emit.core_listing ~sweep_dim:0 Suite.heat3d (List.hd Suite.heat3d.stmts) in
  let l1 = Ptx_emit.core_listing ~sweep_dim:2 Suite.heat3d (List.hd Suite.heat3d.stmts) in
  Alcotest.(check int) "27-point, dim0 sweep: 9 loads" 9 l0.loads;
  Alcotest.(check int) "27-point, dim2 sweep: 9 loads" 9 l1.loads;
  Alcotest.(check bool) "different addresses" true (l0.text <> l1.text)

let test_cuda_emit_structure () =
  let prog = Suite.heat2d in
  let t = Hybrid.make prog ~h:3 ~w:[| 4; 32 |] in
  let code = Cuda_emit.host_and_kernels t prog in
  List.iter
    (fun sub ->
      Alcotest.(check bool) (Fmt.str "contains %S" sub) true (contains ~sub code))
    [
      "__global__ void heat2d_phase0";
      "__global__ void heat2d_phase1";
      "__shared__ float shm_A";
      "__syncthreads()";
      "heat2d_phase0<<<";
      "for (int tp = 0; tp < 8; ++tp)";
      "IS_FULL_TILE";
      "#pragma unroll";
      "interleaved copy-out";
    ]

let test_cuda_emit_guards () =
  (* partial-tile guards come from the hexagon constraints *)
  let prog = Suite.heat2d in
  let t = Hybrid.make prog ~h:3 ~w:[| 4; 32 |] in
  let code = Cuda_emit.kernel t prog ~phase:1 in
  Alcotest.(check bool) "guard on tp+b" true (contains ~sub:"tp + b" code);
  Alcotest.(check bool) "guard count >= 4" true
    (let count = ref 0 in
     String.iteri
       (fun i c -> if c = '>' && i + 1 < String.length code && code.[i + 1] = '=' then incr count)
       code;
     !count >= 4)

let test_cuda_emit_multistatement () =
  let prog = Suite.fdtd2d in
  let t = Hybrid.make prog ~h:2 ~w:[| 3; 32 |] in
  let code = Cuda_emit.kernel t prog ~phase:0 in
  List.iter
    (fun sub -> Alcotest.(check bool) sub true (contains ~sub code))
    [ "// Sey"; "// Sex"; "// Shz"; "if (u % 3 == 0)"; "if (u % 3 == 2)" ]

let test_opencl_emit () =
  let prog = Suite.heat2d in
  let t = Hybrid.make prog ~h:3 ~w:[| 4; 32 |] in
  let code = Opencl_emit.host_and_kernels t prog in
  List.iter
    (fun sub ->
      Alcotest.(check bool) (Fmt.str "contains %S" sub) true (contains ~sub code))
    [
      "__kernel void heat2d_phase0";
      "__local float shm_A";
      "barrier(CLK_LOCAL_MEM_FENCE)";
      "get_group_id(0)";
      "clEnqueueNDRangeKernel";
    ]

let suite =
  [
    Alcotest.test_case "Figure 2 reproduction" `Quick test_figure2_counts;
    Alcotest.test_case "hexfloat encoding" `Quick test_hexfloat;
    Alcotest.test_case "register reuse per kernel" `Quick test_register_reuse_by_kernel;
    Alcotest.test_case "sweep dimension" `Quick test_sweep_dim;
    Alcotest.test_case "CUDA emitter structure" `Quick test_cuda_emit_structure;
    Alcotest.test_case "CUDA partial-tile guards" `Quick test_cuda_emit_guards;
    Alcotest.test_case "CUDA multi-statement kernel" `Quick test_cuda_emit_multistatement;
    Alcotest.test_case "OpenCL emitter" `Quick test_opencl_emit;
  ]
