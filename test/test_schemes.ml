open Hextile_gpusim
open Hextile_schemes
open Hextile_stencils
open Hextile_ir

let test_env prog = fun p -> List.assoc p (Suite.test_params prog)

let check_against_reference name (r : Common.result) prog env =
  let reference = Interp.run prog env in
  Hashtbl.iter
    (fun aname g ->
      if not (Grid.equal g (Grid.find reference aname)) then
        Alcotest.failf "%s/%s: array %s differs from reference" name
          prog.Stencil.name aname)
    r.grids;
  Alcotest.(check int)
    (Fmt.str "%s/%s executes every instance exactly once" name prog.Stencil.name)
    (Interp.stencil_updates prog env)
    r.updates

let test_par4all_all () =
  List.iter
    (fun prog ->
      let env = test_env prog in
      check_against_reference "par4all" (Par4all.run prog env Device.gtx470) prog env)
    Suite.all

let test_ppcg_all () =
  List.iter
    (fun prog ->
      let env = test_env prog in
      check_against_reference "ppcg" (Ppcg.run prog env Device.gtx470) prog env)
    Suite.all

let test_overtile_all () =
  List.iter
    (fun prog ->
      let env = test_env prog in
      check_against_reference "overtile" (Overtile.run prog env Device.gtx470) prog env)
    Suite.all

let test_overtile_time_tiled () =
  (* explicit hh=3 exercises the redundant trapezoid on a multi-statement
     kernel *)
  let prog = Suite.fdtd2d in
  let env = test_env prog in
  let r = Overtile.run ~config:{ hh = 3; tile = Some [| 8; 32 |] } prog env Device.gtx470 in
  check_against_reference "overtile-hh3" r prog env

let test_hybrid_all_strategies () =
  List.iter
    (fun prog ->
      let env = test_env prog in
      List.iter
        (fun step ->
          let config =
            {
              (Hybrid_exec.default_config prog) with
              strategy = Hybrid_exec.strategy_of_step step;
            }
          in
          let r = Hybrid_exec.run ~config prog env Device.gtx470 in
          check_against_reference (Fmt.str "hybrid(%c)" step) r prog env)
        [ 'a'; 'b'; 'c'; 'd'; 'e'; 'f' ])
    [ Suite.jacobi2d; Suite.fdtd2d; Suite.heat3d; Suite.heat1d; Suite.contrived ]

let test_hybrid_remaining_benchmarks () =
  List.iter
    (fun prog ->
      let env = test_env prog in
      let r = Hybrid_exec.run prog env Device.gtx470 in
      check_against_reference "hybrid(f)" r prog env)
    [ Suite.laplacian2d; Suite.heat2d; Suite.gradient2d; Suite.laplacian3d;
      Suite.gradient3d ]

let test_hybrid_odd_sizes () =
  (* non-multiple-of-32 extents and tile sizes that do not divide the
     domain: boundary tiles everywhere *)
  let prog = Suite.heat2d in
  let env p = List.assoc p [ ("N", 23); ("T", 7) ] in
  let config =
    { Hybrid_exec.h = 3; w = [| 3; 5 |]; threads = 64;
      strategy = Hybrid_exec.best_strategy; register_tile = false }
  in
  let r = Hybrid_exec.run ~config prog env Device.gtx470 in
  let reference = Interp.run prog env in
  Alcotest.(check bool) "odd sizes correct" true
    (Grid.equal (Grid.find r.grids "A") (Grid.find reference "A"));
  Alcotest.(check int) "updates" (Interp.stencil_updates prog env) r.updates

let test_strategy_of_step () =
  Alcotest.(check bool) "a = no shared" false
    (Hybrid_exec.strategy_of_step 'a').use_shared;
  Alcotest.(check bool) "f = dynamic reuse" true
    ((Hybrid_exec.strategy_of_step 'f').reuse = Hybrid_exec.Dynamic);
  Alcotest.check_raises "bad step"
    (Invalid_argument "Hybrid_exec.strategy_of_step: z not in a..f") (fun () ->
      ignore (Hybrid_exec.strategy_of_step 'z'))

let test_shared_memory_reduces_gld () =
  let prog = Suite.heat2d in
  let env = test_env prog in
  let run step =
    let config =
      { (Hybrid_exec.default_config prog) with strategy = Hybrid_exec.strategy_of_step step }
    in
    (Hybrid_exec.run ~config prog env Device.gtx470).counters
  in
  let a = run 'a' and b = run 'b' in
  Alcotest.(check bool) "gld_inst drops sharply with shared memory" true
    (b.gld_inst * 4 < a.gld_inst);
  let e = run 'e' and f = run 'f' in
  Alcotest.(check bool) "static reuse has bank-conflict replays" true
    (Counters.shared_loads_per_request e > 1.5);
  Alcotest.(check bool) "dynamic reuse is conflict-free" true
    (Counters.shared_loads_per_request f < 1.1);
  Alcotest.(check bool) "reuse does not increase loads" true
    (f.gld_inst <= b.gld_inst)

let test_overtile_redundancy () =
  (* overlapped tiling burns extra flops for fewer launches *)
  let prog = Suite.heat2d in
  let env = test_env prog in
  let plain = Overtile.run ~config:{ hh = 1; tile = None } prog env Device.gtx470 in
  let tiled = Overtile.run ~config:{ hh = 3; tile = None } prog env Device.gtx470 in
  Alcotest.(check bool) "redundant flops" true
    (tiled.counters.flops > plain.counters.flops);
  Alcotest.(check bool) "fewer kernels" true
    (tiled.counters.kernels < plain.counters.kernels)

let test_radii () =
  Alcotest.(check (array int)) "heat2d radius 1,1" [| 1; 1 |] (Overtile.radii Suite.heat2d);
  Alcotest.(check (array int)) "contrived radius 2" [| 2 |] (Overtile.radii Suite.contrived)

let test_par4all_counters () =
  let prog = Suite.heat1d in
  let env = test_env prog in
  let r = Par4all.run prog env Device.gtx470 in
  (* 3 reads per update, all global *)
  Alcotest.(check int) "gld_inst = 3 per update" (3 * r.updates) r.counters.gld_inst;
  Alcotest.(check int) "gst_inst = 1 per update" r.updates r.counters.gst_inst;
  Alcotest.(check int) "one kernel per (t,stmt)" 10 r.counters.kernels

let test_result_metrics () =
  let prog = Suite.heat1d in
  let env = test_env prog in
  let r = Ppcg.run prog env Device.gtx470 in
  Alcotest.(check bool) "total time positive" true (Common.total_time r > 0.0);
  Alcotest.(check bool) "gstencils positive" true (Common.gstencils_per_s r > 0.0);
  let g = Common.gflops r ~flops_per_update:3.0 in
  Alcotest.(check (float 1e-9)) "gflops = 3x gstencils"
    (3.0 *. Common.gstencils_per_s r) g

let test_register_tiling () =
  let prog = Suite.heat2d in
  let env = test_env prog in
  let base = Hybrid_exec.default_config prog in
  let plain = Hybrid_exec.run ~config:base prog env Device.gtx470 in
  let rt =
    Hybrid_exec.run ~config:{ base with register_tile = true } prog env Device.gtx470
  in
  check_against_reference "hybrid+regtile" rt prog env;
  (* heat2d 9-point: 6 of 9 reads stay in registers along the sweep *)
  Alcotest.(check bool) "register tiling cuts shared loads" true
    (rt.counters.shared_load_requests * 2 < plain.counters.shared_load_requests)

let test_split_tiling () =
  List.iter
    (fun prog ->
      let env p = List.assoc p [ ("N", 100); ("T", 13) ] in
      let r =
        Split_tiling.run ~config:{ hh = 3; width = 24 } prog env Device.gtx470
      in
      check_against_reference "split" r prog env)
    [ Suite.heat1d; Suite.contrived ];
  (* regression: a clipped last tile narrower than the reach used to
     vanish mid-block, merging phase-B gaps and reading cells a later
     block of the same launch had not written yet *)
  List.iter
    (fun (hh, width, n, t) ->
      let env p = List.assoc p [ ("N", n); ("T", t) ] in
      let r =
        Split_tiling.run ~config:{ hh; width } Suite.heat1d env Device.gtx470
      in
      check_against_reference
        (Fmt.str "split narrow remainder (%d,%d,%d,%d)" hh width n t)
        r Suite.heat1d env)
    [ (3, 7, 12, 3); (3, 34, 40, 5); (4, 19, 26, 6); (1, 20, 41, 12) ]

let test_split_rejects () =
  let env = test_env Suite.heat2d in
  Alcotest.(check bool) "2D rejected" true
    (match Split_tiling.run Suite.heat2d env Device.gtx470 with
    | exception Invalid_argument _ -> true
    | _ -> false);
  let env1 = test_env Suite.heat1d in
  Alcotest.(check bool) "too-narrow width rejected" true
    (match
       Split_tiling.run ~config:{ hh = 4; width = 8 } Suite.heat1d env1 Device.gtx470
     with
    | exception Invalid_argument _ -> true
    | _ -> false)

let prop_split_random_sizes =
  QCheck.Test.make ~name:"split tiling correct for random (hh, width, N, T)"
    ~count:12
    QCheck.(quad (int_range 1 4) (int_range 7 40) (int_range 10 90) (int_range 3 12))
    (fun (hh, width, n, t) ->
      QCheck.assume (width > 2 * hh);
      let prog = Suite.heat1d in
      let env p = List.assoc p [ ("N", n); ("T", t) ] in
      let r = Split_tiling.run ~config:{ hh; width } prog env Device.gtx470 in
      let reference = Hextile_ir.Interp.run prog env in
      r.updates = Hextile_ir.Interp.stencil_updates prog env
      && Hashtbl.fold
           (fun name g acc -> acc && Grid.equal g (Grid.find reference name))
           r.grids true)

let test_end_to_end_from_source () =
  let src =
    {|float A[2][N][N];
for (t = 0; t < T; t++)
  for (i = 1; i < N - 1; i++)
    for (j = 1; j < N - 1; j++)
      A[(t+1)%2][i][j] = 0.25f * (A[t%2][i+1][j] + A[t%2][i-1][j]
        + A[t%2][i][j+1] + A[t%2][i][j-1]);
|}
  in
  let prog =
    match Hextile_frontend.Front.parse_string ~name:"e2e" src with
    | Ok p -> p
    | Error m -> Alcotest.failf "parse: %s" m
  in
  let env p = List.assoc p [ ("N", 20); ("T", 9) ] in
  let r = Hybrid_exec.run prog env Device.gtx470 in
  check_against_reference "e2e" r prog env

let suite =
  [
    Alcotest.test_case "par4all correct on all benchmarks" `Slow test_par4all_all;
    Alcotest.test_case "ppcg correct on all benchmarks" `Slow test_ppcg_all;
    Alcotest.test_case "overtile correct on all benchmarks" `Slow test_overtile_all;
    Alcotest.test_case "overtile hh=3 multi-statement" `Quick test_overtile_time_tiled;
    Alcotest.test_case "hybrid correct, all strategies" `Slow test_hybrid_all_strategies;
    Alcotest.test_case "hybrid correct, remaining kernels" `Slow test_hybrid_remaining_benchmarks;
    Alcotest.test_case "hybrid odd sizes (boundary tiles)" `Quick test_hybrid_odd_sizes;
    Alcotest.test_case "strategy ladder decoding" `Quick test_strategy_of_step;
    Alcotest.test_case "shared memory reduces gld (Table 5 shape)" `Quick
      test_shared_memory_reduces_gld;
    Alcotest.test_case "overtile redundancy tradeoff" `Quick test_overtile_redundancy;
    Alcotest.test_case "halo radii" `Quick test_radii;
    Alcotest.test_case "par4all counter identities" `Quick test_par4all_counters;
    Alcotest.test_case "result metrics" `Quick test_result_metrics;
    Alcotest.test_case "register tiling (future-work extension)" `Quick
      test_register_tiling;
    Alcotest.test_case "split tiling (1D degenerate case)" `Quick test_split_tiling;
    Alcotest.test_case "split tiling validation" `Quick test_split_rejects;
    QCheck_alcotest.to_alcotest prop_split_random_sizes;
    Alcotest.test_case "end-to-end: C source -> hybrid -> verified" `Quick
      test_end_to_end_from_source;
  ]
