(* Tests for lib/serve: canonical structural hashing (alpha renaming,
   offset normalization, collision handling), the cross-request cache
   context, the JSON-lines protocol/daemon (waves, dedup, shed, deadline,
   shutdown), fuzzed traffic bit-identity across --jobs values and cache
   temperature, and agreement with the one-shot pipeline. *)

module Serve = Hextile_serve
module Shash = Serve.Shash
module Cache = Serve.Cache
module Proto = Serve.Proto
module Engine = Serve.Engine
module Daemon = Serve.Daemon
module Par = Hextile_par.Par
module Json = Hextile_obs.Json
module Experiments = Hextile_experiments.Experiments
module Gen = Hextile_check.Gen
module Rng = Hextile_check.Rng
module Pretty = Hextile_check.Pretty

let parse_ok name src =
  match Hextile_frontend.Front.parse_string ~name src with
  | Ok p -> p
  | Error m -> Alcotest.failf "parse %s: %s" name m

let heat_src =
  {|float A[2][N];
for (t = 0; t < T; t++)
  for (i = 1; i < N - 1; i++)
    A[(t+1)%2][i] = 0.5f * (A[t%2][i-1] + A[t%2][i+1]);
|}

(* heat_src with the array renamed. *)
let heat_renamed_src =
  {|float B[2][N];
for (t = 0; t < T; t++)
  for (i = 1; i < N - 1; i++)
    B[(t+1)%2][i] = 0.5f * (B[t%2][i-1] + B[t%2][i+1]);
|}

(* heat_src translated one cell right: writes at i+1 over a shifted
   domain — offset normalization maps it onto heat_src's canon. *)
let heat_shifted_src =
  {|float A[2][N];
for (t = 0; t < T; t++)
  for (i = 0; i < N - 2; i++)
    A[(t+1)%2][i+1] = 0.5f * (A[t%2][i] + A[t%2][i+2]);
|}

(* ---- Shash ------------------------------------------------------------- *)

let test_shash_alpha () =
  let p = parse_ok "a" heat_src and q = parse_ok "b" heat_renamed_src in
  let cp, _ = Shash.canonicalize p and cq, _ = Shash.canonicalize q in
  Alcotest.(check bool) "renamed programs share a canon" true
    (Shash.equal_canon cp cq);
  Alcotest.(check string) "and a hash" (Shash.to_hex (Shash.hash cp))
    (Shash.to_hex (Shash.hash cq));
  let s = parse_ok "c" heat_shifted_src in
  let cs, _ = Shash.canonicalize s in
  Alcotest.(check bool) "translated program shares the canon" true
    (Shash.equal_canon cp cs);
  Alcotest.(check bool) "but records its translation" true
    (Shash.write_offsets p <> Shash.write_offsets s);
  let j = Hextile_stencils.Suite.jacobi2d in
  let cj, _ = Shash.canonicalize j in
  Alcotest.(check bool) "different program, different canon" false
    (Shash.equal_canon cp cj);
  Alcotest.(check bool) "and (here) a different hash" true
    (Shash.hash cp <> Shash.hash cj)

let test_shash_env () =
  let p = parse_ok "a" heat_src in
  let _, renaming = Shash.canonicalize p in
  Alcotest.(check (list (pair string int)))
    "env canonicalized and sorted"
    [ ("P0", 64); ("P1", 16) ]
    (Shash.canon_env renaming [ ("T", 16); ("N", 64); ("junk", 1) ])

(* ---- Cache ------------------------------------------------------------- *)

let request ?(id = Json.Null) ?source ?builtin ?(n = 64) ?(t = 8)
    ?(op = Proto.Run) ?h ?w () =
  {
    Proto.id;
    op;
    source;
    builtin;
    n;
    t;
    device = "gtx470";
    scheme = "hybrid";
    engine = "tape";
    analytic = false;
    h;
    w;
    timeout_ms = None;
  }

let payload_str p = Json.to_string ~minify:true (Json.Obj p)

let test_cache_collisions () =
  (* A 1-bit structural hash forces distinct programs onto the same
     entry slots; full-key verification must detect every collision and
     the engine must keep answering exactly as an uncollided cache. *)
  let tiny = Cache.create ~hash_bits:1 () in
  let full = Cache.create () in
  let progs = [ "heat1d"; "jacobi2d"; "heat2d" ] in
  let answers c =
    List.map
      (fun b ->
        match Engine.execute ~cache:c (request ~builtin:b ()) with
        | Ok p -> payload_str p
        | Error m -> Alcotest.failf "execute %s: %s" b m)
      progs
  in
  let cold_tiny = answers tiny and cold_full = answers full in
  Alcotest.(check (list string))
    "collided cache answers = uncollided answers" cold_full cold_tiny;
  Alcotest.(check (list string))
    "collided cache answers stable on repeat" cold_tiny (answers tiny);
  let s = Cache.stats tiny in
  Alcotest.(check bool) "collisions detected" true (s.Cache.collisions > 0);
  let sf = Cache.stats full in
  Alcotest.(check int) "full-width hash never collides" 0 sf.Cache.collisions;
  Alcotest.(check bool) "full-width cache hits on repeat" true
    (let _ = answers full in
     (Cache.stats full).Cache.run_hits > sf.Cache.run_hits)

let test_cache_alpha_sharing () =
  (* Renamed programs share one tile-size search; the translated program
     (same canon, different write offsets) must not. *)
  let cache = Cache.create () in
  let exec src =
    match
      Engine.execute ~cache (request ~source:src ~op:Proto.Tilesize ())
    with
    | Ok p -> p
    | Error m -> Alcotest.failf "tilesize: %s" m
  in
  let a = exec heat_src in
  let s0 = Cache.stats cache in
  Alcotest.(check int) "first search misses" 1 s0.Cache.tilesize_misses;
  let b = exec heat_renamed_src in
  let s1 = Cache.stats cache in
  Alcotest.(check int) "renamed program hits" 1 s1.Cache.tilesize_hits;
  Alcotest.(check string) "and selects identically"
    (Json.to_string (List.assoc "selected" a))
    (Json.to_string (List.assoc "selected" b));
  let _ = exec heat_shifted_src in
  let s2 = Cache.stats cache in
  Alcotest.(check int) "translated program searches afresh" 2
    s2.Cache.tilesize_misses

(* ---- daemon over injected stdio ---------------------------------------- *)

let drive ?now ?config ~cache ~jobs lines =
  Par.with_pool ~jobs @@ fun pool ->
  let inp = ref lines and out = ref [] in
  Daemon.run_lines ?now ?config ~cache ~pool
    ~read_line:(fun () ->
      match !inp with
      | [] -> None
      | l :: r ->
          inp := r;
          Some l)
    ~write_line:(fun l -> out := l :: !out)
    ();
  List.rev !out

let field name line =
  match Json.parse line with
  | Error e -> Alcotest.failf "response did not parse (%s): %s" e line
  | Ok doc -> Json.member name doc

let is_ok line = field "ok" line = Some (Json.Bool true)

let test_daemon_protocol () =
  let cache = Cache.create () in
  let out =
    drive ~cache ~jobs:1
      [
        "{\"id\":1,\"op\":\"ping\"}";
        "this is not json";
        "{\"id\":3,\"op\":\"nope\"}";
        "{\"id\":4,\"op\":\"run\",\"builtin\":\"zebra\"}";
        "{\"id\":5,\"op\":\"run\",\"source\":\"float A[2][N];\"}";
      ]
  in
  Alcotest.(check int) "one response per line" 5 (List.length out);
  Alcotest.(check bool) "ping ok" true (is_ok (List.nth out 0));
  List.iteri
    (fun i line ->
      if i > 0 then begin
        Alcotest.(check bool) "failure reported" false (is_ok line);
        Alcotest.(check bool) "with an error message" true
          (field "error" line <> None)
      end)
    out;
  (* ids correlate even for unparseable ops *)
  Alcotest.(check (option int)) "id echoed" (Some 3)
    (Option.bind (field "id" (List.nth out 2)) Json.to_int)

let test_daemon_dedupe_and_waves () =
  let cache = Cache.create () in
  let run_line i = Printf.sprintf "{\"id\":%d,\"op\":\"run\",\"builtin\":\"heat1d\",\"N\":64,\"T\":8}" i in
  (* one wave: three identical requests, one distinct *)
  let out =
    drive ~cache ~jobs:2
      [ run_line 1; run_line 2; "{\"id\":9,\"op\":\"ping\"}"; run_line 3 ]
  in
  Alcotest.(check int) "all answered" 4 (List.length out);
  let s = Cache.stats cache in
  Alcotest.(check int) "wave computed the run once" 1
    (s.Cache.run_hits + s.Cache.run_misses);
  let strip_id line =
    match Json.parse line with
    | Ok (Json.Obj kvs) ->
        Json.to_string (Json.Obj (List.remove_assoc "id" kvs))
    | _ -> Alcotest.fail "bad response"
  in
  Alcotest.(check string) "duplicates share the payload"
    (strip_id (List.nth out 0))
    (strip_id (List.nth out 1));
  (* a blank line splits waves: the same request in a later wave is a
     cache hit, not a recompute *)
  let out2 = drive ~cache ~jobs:2 [ run_line 4; ""; run_line 5 ] in
  let s2 = Cache.stats cache in
  Alcotest.(check int) "second wave hits the cache" 0
    (s2.Cache.run_misses - s.Cache.run_misses);
  Alcotest.(check string) "and replays the identical payload"
    (strip_id (List.nth out 0))
    (strip_id (List.nth out2 1))

let test_daemon_shed_and_deadline () =
  let cache = Cache.create () in
  let config = { Daemon.max_queue = 2; max_wave = 64 } in
  let out =
    drive ~cache ~config ~jobs:1
      [
        "{\"id\":1,\"op\":\"ping\"}";
        "{\"id\":2,\"op\":\"ping\"}";
        "{\"id\":3,\"op\":\"ping\"}";
      ]
  in
  Alcotest.(check (option string)) "over-admission is shed"
    (Some "shed: queue full")
    (Option.bind (field "error" (List.nth out 2)) Json.to_str);
  (* a deadline that passes while queued is answered, not executed *)
  let clock = ref 0.0 in
  let now () =
    clock := !clock +. 10.0;
    !clock
  in
  let cache2 = Cache.create () in
  let out =
    drive ~now ~cache:cache2 ~jobs:1
      [
        "{\"id\":1,\"op\":\"run\",\"builtin\":\"heat1d\",\"timeout_ms\":500}";
        "{\"id\":2,\"op\":\"run\",\"builtin\":\"heat1d\",\"N\":64,\"T\":8,\"timeout_ms\":3600000}";
      ]
  in
  Alcotest.(check (option string)) "expired request answered as such"
    (Some "deadline exceeded")
    (Option.bind (field "error" (List.nth out 0)) Json.to_str);
  Alcotest.(check bool) "fresh request still served" true
    (is_ok (List.nth out 1));
  let s = Cache.stats cache2 in
  Alcotest.(check int) "expired request never executed" 1
    (s.Cache.run_hits + s.Cache.run_misses)

let test_daemon_shutdown () =
  let cache = Cache.create () in
  let out =
    drive ~cache ~jobs:1
      [
        "{\"id\":1,\"op\":\"ping\"}";
        "{\"id\":2,\"op\":\"shutdown\"}";
        "";
        "{\"id\":3,\"op\":\"ping\"}";
      ]
  in
  Alcotest.(check int) "shutdown stops after its wave" 2 (List.length out);
  Alcotest.(check bool) "shutdown acknowledged" true (is_ok (List.nth out 1))

(* ---- fuzzed traffic: bit-identity across jobs and temperature ---------- *)

(* A deterministic mixed traffic trace over seeded random programs:
   tilesize + run + compile per program, with exact duplicates. *)
let fuzz_traffic seeds =
  let base = Rng.create 0x5e24e1 in
  List.concat_map
    (fun seed ->
      let prog, env = Gen.generate (Rng.derive base seed) in
      let n = List.assoc "N" env and t = List.assoc "T" env in
      let line id op =
        Printf.sprintf
          "{\"id\":%d,\"op\":%S,\"source\":%s,\"N\":%d,\"T\":%d}" id op
          (Json.to_string ~minify:true (Json.Str (Pretty.to_source prog)))
          n t
      in
      [
        line (seed * 10) "tilesize";
        line ((seed * 10) + 1) "run";
        line ((seed * 10) + 2) "run";
        line ((seed * 10) + 3) "compile";
      ])
    seeds

let strip_ids lines =
  List.map
    (fun l ->
      match Json.parse l with
      | Ok (Json.Obj kvs) -> Json.to_string (Json.Obj (List.remove_assoc "id" kvs))
      | _ -> l)
    lines

let test_fuzz_traffic_determinism () =
  let traffic = fuzz_traffic [ 1; 2; 3 ] in
  (* cold runs at three pool sizes: byte-identical response streams *)
  let cold_outs =
    List.map
      (fun jobs -> drive ~cache:(Cache.create ()) ~jobs traffic)
      [ 1; 2; 4 ]
  in
  (match cold_outs with
  | [ o1; o2; o4 ] ->
      Alcotest.(check (list string)) "jobs 1 = jobs 2" o1 o2;
      Alcotest.(check (list string)) "jobs 1 = jobs 4" o1 o4;
      List.iter
        (fun l -> Alcotest.(check bool) ("ok: " ^ l) true (is_ok l))
        o1
  | _ -> assert false);
  (* warm run over one persistent cache: same bytes again *)
  let cache = Cache.create () in
  let cold = drive ~cache ~jobs:2 traffic in
  let misses_after_cold = (Cache.stats cache).Cache.run_misses in
  let warm = drive ~cache ~jobs:2 traffic in
  Alcotest.(check (list string)) "warm = cold" cold warm;
  Alcotest.(check int) "warm pass recomputed nothing" misses_after_cold
    (Cache.stats cache).Cache.run_misses;
  Alcotest.(check (list string)) "same stream as fresh caches"
    (strip_ids (List.hd (List.map Fun.id [ List.nth cold_outs 0 ])))
    (strip_ids cold)

(* Serve responses agree with the one-shot pipeline (what `hextile run`
   prints is derived from the same result record). *)
let test_fuzz_agrees_with_oneshot () =
  let base = Rng.create 0xfeed in
  List.iter
    (fun seed ->
      let prog, env = Gen.generate (Rng.derive base seed) in
      let n = List.assoc "N" env and t = List.assoc "T" env in
      let r =
        request
          ~source:(Pretty.to_source prog)
          ~n ~t ()
      in
      let payload =
        match Engine.execute ~cache:(Cache.create ()) r with
        | Ok p -> p
        | Error m -> Alcotest.failf "serve run failed: %s" m
      in
      let oneshot =
        Experiments.run_scheme ~engine:Hextile_schemes.Common.Tape
          Experiments.Hybrid prog
          [ ("N", n); ("T", t) ]
          Hextile_gpusim.Device.gtx470
      in
      Alcotest.(check string)
        (Printf.sprintf "seed %d: grids hash matches one-shot" seed)
        (Engine.grids_hash prog oneshot.Hextile_schemes.Common.grids)
        (match List.assoc "grids_hash" payload with
        | Json.Str s -> s
        | _ -> "missing");
      Alcotest.(check string)
        (Printf.sprintf "seed %d: result record matches one-shot" seed)
        (Json.to_string (Experiments.result_json oneshot))
        (Json.to_string (List.assoc "result" payload)))
    [ 1; 2; 3; 4 ]

(* ---- socket transport -------------------------------------------------- *)

let test_socket_roundtrip () =
  let path = Filename.temp_file "hextile_serve" ".sock" in
  Sys.remove path;
  let reqs =
    [
      "{\"id\":1,\"op\":\"ping\"}";
      "{\"id\":2,\"op\":\"run\",\"builtin\":\"heat1d\",\"N\":64,\"T\":8}";
      "{\"id\":3,\"op\":\"shutdown\"}";
    ]
  in
  (* client on its own domain (the daemon's select loop owns this one);
     connects with retries, sends everything, reads until one response
     line per request arrived *)
  let client =
    Domain.spawn (fun () ->
        let rec connect tries =
          let fd = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
          match Unix.connect fd (Unix.ADDR_UNIX path) with
          | () -> fd
          | exception Unix.Unix_error _ when tries > 0 ->
              Unix.close fd;
              Unix.sleepf 0.05;
              connect (tries - 1)
        in
        let fd = connect 200 in
        let body = String.concat "\n" reqs ^ "\n" in
        let _ = Unix.write fd (Bytes.of_string body) 0 (String.length body) in
        let buf = Buffer.create 1024 in
        let chunk = Bytes.create 4096 in
        let rec read_all () =
          if
            List.length (String.split_on_char '\n' (Buffer.contents buf))
            <= List.length reqs
          then
            match Unix.read fd chunk 0 (Bytes.length chunk) with
            | 0 -> ()
            | n ->
                Buffer.add_subbytes buf chunk 0 n;
                read_all ()
        in
        read_all ();
        Unix.close fd;
        Buffer.contents buf)
  in
  let cache = Cache.create () in
  Par.with_pool ~jobs:1 (fun pool -> Daemon.serve_socket ~cache ~pool ~path ());
  let received = Domain.join client in
  let lines =
    List.filter
      (fun l -> String.trim l <> "")
      (String.split_on_char '\n' received)
  in
  Alcotest.(check int) "three responses" 3 (List.length lines);
  List.iter
    (fun l -> Alcotest.(check bool) ("ok: " ^ l) true (is_ok l))
    lines;
  (* the socket answer is byte-identical to the stdio answer *)
  let stdio = drive ~cache:(Cache.create ()) ~jobs:1 [ List.nth reqs 1 ] in
  Alcotest.(check string) "socket = stdio" (List.hd stdio) (List.nth lines 1)

let suite =
  [
    Alcotest.test_case "shash: alpha renaming and translation" `Quick
      test_shash_alpha;
    Alcotest.test_case "shash: env canonicalization" `Quick test_shash_env;
    Alcotest.test_case "cache: forced collisions stay correct" `Quick
      test_cache_collisions;
    Alcotest.test_case "cache: alpha-equivalent tilesize sharing" `Quick
      test_cache_alpha_sharing;
    Alcotest.test_case "daemon: protocol errors" `Quick test_daemon_protocol;
    Alcotest.test_case "daemon: wave dedupe and cache replay" `Quick
      test_daemon_dedupe_and_waves;
    Alcotest.test_case "daemon: shed and deadline" `Quick
      test_daemon_shed_and_deadline;
    Alcotest.test_case "daemon: shutdown" `Quick test_daemon_shutdown;
    Alcotest.test_case "fuzz traffic: bit-identical at jobs 1/2/4, cold/warm"
      `Slow test_fuzz_traffic_determinism;
    Alcotest.test_case "fuzz traffic: agrees with one-shot pipeline" `Slow
      test_fuzz_agrees_with_oneshot;
    Alcotest.test_case "socket transport round trip" `Quick
      test_socket_roundtrip;
  ]
