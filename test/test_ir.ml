open Hextile_ir
open Hextile_stencils

let env_of l p = List.assoc p l
let test_env prog = env_of (Suite.test_params prog)

let test_affp () =
  let e = Affp.(add_const (sub (scale 2 (param "N")) (param "T")) 3) in
  Alcotest.(check int) "eval 2N - T + 3" 40 (Affp.eval e (env_of [ ("N", 20); ("T", 3) ]));
  Alcotest.(check string) "pp" "2*N - T + 3" (Affp.to_string e);
  Alcotest.(check bool) "equal" true (Affp.equal e e);
  Alcotest.(check (option int)) "is_const" (Some 5) (Affp.is_const (Affp.const 5));
  Alcotest.(check (option int)) "is_const param" None (Affp.is_const (Affp.param "N"));
  Alcotest.(check (list string)) "params" [ "N"; "T" ] (Affp.params e);
  (* x - x cancels *)
  let z = Affp.(sub (param "N") (param "N")) in
  Alcotest.(check (option int)) "cancellation" (Some 0) (Affp.is_const z)

let test_validate_all () =
  List.iter
    (fun (p : Stencil.t) ->
      match Stencil.validate p with
      | Ok () -> ()
      | Error m -> Alcotest.failf "%s invalid: %s" p.name m)
    Suite.all

let test_validate_rejects () =
  let bad =
    {
      Suite.heat1d with
      Stencil.stmts =
        List.map
          (fun (s : Stencil.stmt) ->
            { s with write = { s.write with array = "nonexistent" } })
          Suite.heat1d.stmts;
    }
  in
  (match Stencil.validate bad with
  | Error _ -> ()
  | Ok () -> Alcotest.fail "expected unknown-array error");
  let empty = { Suite.heat1d with stmts = [] } in
  match Stencil.validate empty with
  | Error _ -> ()
  | Ok () -> Alcotest.fail "expected no-statements error"

(* Table 3 row check: loads and flops per statement. *)
let test_table3_characteristics () =
  let expect =
    [
      ("laplacian2d", [ (5, 6) ]);
      ("heat2d", [ (9, 9) ]);
      ("gradient2d", [ (5, 15) ]);
      ("fdtd2d", [ (3, 3); (3, 3); (5, 5) ]);
      ("laplacian3d", [ (7, 8) ]);
      ("heat3d", [ (27, 27) ]);
      ("gradient3d", [ (7, 20) ]);
    ]
  in
  List.iter
    (fun (name, rows) ->
      let c = Analysis.characterize (Suite.find name) in
      let got = List.map (fun (r : Analysis.stmt_chars) -> (r.loads, r.flops)) c.per_stmt in
      Alcotest.(check (list (pair int int))) name rows got)
    expect

let test_jacobi_chars () =
  let c = Analysis.characterize Suite.jacobi2d in
  Alcotest.(check (list (pair int int)))
    "jacobi2d 5/5"
    [ (5, 5) ]
    (List.map (fun (r : Analysis.stmt_chars) -> (r.loads, r.flops)) c.per_stmt)

let test_data_size_strings () =
  Alcotest.(check string) "2d" "N^2" (Analysis.data_size_string Suite.heat2d);
  Alcotest.(check string) "3d" "N^3" (Analysis.data_size_string Suite.heat3d)

let test_grid_alloc () =
  let prog = Suite.heat1d in
  let env = test_env prog in
  let tbl = Grid.alloc prog env in
  let g = Grid.find tbl "A" in
  Alcotest.(check (array int)) "folded dims" [| 2; 30 |] g.dims;
  Alcotest.(check int) "size" 60 (Array.length g.data);
  (* determinism *)
  let tbl2 = Grid.alloc prog env in
  Alcotest.(check bool) "deterministic init" true (Grid.equal g (Grid.find tbl2 "A"));
  (* values in [0,1) *)
  Array.iter
    (fun v -> Alcotest.(check bool) "init in range" true (v >= 0.0 && v < 1.0))
    g.data

let test_grid_bounds () =
  let tbl = Grid.alloc Suite.heat1d (test_env Suite.heat1d) in
  let g = Grid.find tbl "A" in
  Alcotest.(check bool) "oob raises" true
    (match Grid.get g [| 0; 30 |] with
    | exception Invalid_argument _ -> true
    | _ -> false);
  Alcotest.(check bool) "wrong arity raises" true
    (match Grid.get g [| 0 |] with exception Invalid_argument _ -> true | _ -> false)

let test_grid_equal_short_circuit () =
  let tbl = Grid.alloc Suite.heat1d (test_env Suite.heat1d) in
  let g = Grid.find tbl "A" in
  let h = { g with data = Array.copy g.data } in
  Alcotest.(check bool) "copies equal" true (Grid.equal g h);
  h.data.(0) <- h.data.(0) +. 1.0;
  Alcotest.(check bool) "first element differs" false (Grid.equal g h);
  Alcotest.(check bool) "eps absorbs the difference" true (Grid.equal ~eps:2.0 g h);
  Alcotest.(check bool) "length mismatch" false
    (Grid.equal g { g with data = Array.make 1 0.0; dims = [| 1 |] });
  (* a mismatch in the first element must stop the scan: comparing grids
     that differ at index 0 should not touch the remaining million
     elements, so it runs far faster than a full equal-grid scan *)
  let n = 1_000_000 in
  let mk v = { g with dims = [| n |]; data = Array.make n v } in
  let a = mk 0.5 and b = mk 0.5 in
  let diff = mk 0.5 in
  diff.data.(0) <- 1.0;
  let time k f =
    let t0 = Sys.time () in
    for _ = 1 to k do
      ignore (f ())
    done;
    Sys.time () -. t0
  in
  let full = time 20 (fun () -> Grid.equal a b) in
  let short = time 20 (fun () -> Grid.equal a diff) in
  Alcotest.(check bool) "early exit beats full scan" true
    (short < (full /. 5.0) +. 1e-4)

let test_grid_slot () =
  let tbl = Grid.alloc Suite.contrived (test_env Suite.contrived) in
  let g = Grid.find tbl "A" in
  Alcotest.(check int) "slot fold 3" 2 (Grid.slot g 5);
  Alcotest.(check int) "slot negative tau" 2 (Grid.slot g (-1))

(* Reference interpreter sanity: a constant-preserving stencil keeps a
   constant field constant (heat1d weights sum to 0.99 — use jacobi which
   sums to 1.0). *)
let test_interp_fixpoint () =
  let prog = Suite.jacobi2d in
  let env = test_env prog in
  let tbl = Grid.alloc prog env in
  let g = Grid.find tbl "A" in
  Array.fill g.data 0 (Array.length g.data) 1.0;
  let steps = Affp.eval prog.steps env in
  for t = 0 to steps - 1 do
    List.iter
      (fun (s : Stencil.stmt) ->
        let lo = Array.map (fun e -> Affp.eval e env) s.lo in
        let hi = Array.map (fun e -> Affp.eval e env) s.hi in
        let n = Affp.eval (Affp.param "N") env in
        ignore n;
        let rec iter d point =
          if d = Array.length lo then Interp.exec_instance tbl s ~t ~point
          else
            for x = lo.(d) to hi.(d) do
              point.(d) <- x;
              iter (d + 1) point
            done
        in
        iter 0 (Array.make (Array.length lo) 0))
      prog.stmts
  done;
  Array.iter
    (fun v ->
      Alcotest.(check bool) "close to 1.0" true (Float.abs (v -. 1.0) < 1e-4))
    g.data

let test_interp_runs () =
  List.iter
    (fun (p : Stencil.t) ->
      let env = test_env p in
      let tbl = Interp.run p env in
      Hashtbl.iter
        (fun name g ->
          let c = Grid.checksum g in
          if Float.is_nan c then Alcotest.failf "%s/%s produced NaN" p.name name)
        tbl)
    Suite.all

let test_stencil_updates () =
  (* heat1d: T=10 steps, domain 1..28 → 28 points *)
  Alcotest.(check int) "heat1d updates" 280
    (Interp.stencil_updates Suite.heat1d (test_env Suite.heat1d));
  (* fdtd2d: 3 stmts × (N-2)^2 × T = 3 * 18^2 * 9 *)
  Alcotest.(check int) "fdtd2d updates" (3 * 18 * 18 * 9)
    (Interp.stencil_updates Suite.fdtd2d (test_env Suite.fdtd2d))

let test_footprint () =
  (* heat2d, N=20: folded A = 2*20*20 *)
  Alcotest.(check int) "heat2d footprint" 800
    (Analysis.footprint_floats Suite.heat2d (test_env Suite.heat2d));
  (* fdtd2d: 3 arrays of N^2 *)
  Alcotest.(check int) "fdtd2d footprint" 1200
    (Analysis.footprint_floats Suite.fdtd2d (test_env Suite.fdtd2d))

(* The shared out-of-domain convention: accesses must stay inside the
   declared extents for the whole domain — programs that do not are
   rejected up front (no clamping or wrapping anywhere), so the
   interpreter and every scheme executor agree on boundary semantics by
   construction. *)
let test_bounds_check () =
  List.iter
    (fun prog ->
      match Analysis.bounds_check prog (test_env prog) with
      | Ok () -> ()
      | Error m ->
          Alcotest.failf "%s rejected: %s" prog.Stencil.name m)
    Suite.all;
  (* heat1d with its margin removed reads A[i-1] at i = 0 *)
  let bad =
    {
      Suite.heat1d with
      Stencil.stmts =
        List.map
          (fun (s : Stencil.stmt) -> { s with lo = [| Affp.const 0 |] })
          Suite.heat1d.stmts;
    }
  in
  (match Analysis.bounds_check bad (test_env Suite.heat1d) with
  | Ok () -> Alcotest.fail "expected an out-of-bounds rejection"
  | Error m ->
      Alcotest.(check bool) "mentions the array and dim" true
        (let has sub =
           let n = String.length sub in
           let rec go i =
             i + n <= String.length m && (String.sub m i n = sub || go (i + 1))
           in
           go 0
         in
         has "out of bounds" && has "dim 0"));
  match Interp.run bad (test_env Suite.heat1d) with
  | _ -> Alcotest.fail "Interp.run accepted an out-of-domain read"
  | exception Invalid_argument _ -> ()

(* Empty domains (lo > hi) have no instances to read out of bounds:
   vacuously fine under any extents. *)
let test_bounds_check_empty_domain () =
  let empty =
    {
      Suite.heat1d with
      Stencil.stmts =
        List.map
          (fun (s : Stencil.stmt) ->
            { s with lo = [| Affp.const 5 |]; hi = [| Affp.const 1 |] })
          Suite.heat1d.stmts;
    }
  in
  match Analysis.bounds_check empty (test_env Suite.heat1d) with
  | Ok () -> ()
  | Error m -> Alcotest.failf "empty domain rejected: %s" m

let test_affp_pp_negative () =
  Alcotest.(check string) "leading negative" "-N + 3"
    (Affp.to_string (Affp.add_const (Affp.scale (-1) (Affp.param "N")) 3));
  Alcotest.(check string) "mixed" "2*M - N"
    (Affp.to_string
       (Affp.sub (Affp.scale 2 (Affp.param "M")) (Affp.param "N")));
  Alcotest.(check string) "const only" "-7" (Affp.to_string (Affp.const (-7)))

let test_stencil_pp () =
  let s = Fmt.str "%a" Stencil.pp Suite.contrived in
  List.iter
    (fun sub ->
      Alcotest.(check bool) sub true
        (let n = String.length sub in
         let rec go i =
           i + n <= String.length s && (String.sub s i n = sub || go (i + 1))
         in
         go 0))
    [ "stencil contrived"; "fold 3"; "A⟨t+2⟩" ]

let suite =
  [
    Alcotest.test_case "affp" `Quick test_affp;
    Alcotest.test_case "all benchmarks validate" `Quick test_validate_all;
    Alcotest.test_case "validate rejects bad programs" `Quick test_validate_rejects;
    Alcotest.test_case "Table 3 loads/flops" `Quick test_table3_characteristics;
    Alcotest.test_case "jacobi 5/5" `Quick test_jacobi_chars;
    Alcotest.test_case "data size strings" `Quick test_data_size_strings;
    Alcotest.test_case "grid alloc" `Quick test_grid_alloc;
    Alcotest.test_case "grid bounds checks" `Quick test_grid_bounds;
    Alcotest.test_case "grid fold slots" `Quick test_grid_slot;
    Alcotest.test_case "grid equal short-circuits" `Quick
      test_grid_equal_short_circuit;
    Alcotest.test_case "interp fixpoint" `Quick test_interp_fixpoint;
    Alcotest.test_case "interp runs all benchmarks" `Quick test_interp_runs;
    Alcotest.test_case "stencil_updates" `Quick test_stencil_updates;
    Alcotest.test_case "footprint" `Quick test_footprint;
    Alcotest.test_case "bounds convention" `Quick test_bounds_check;
    Alcotest.test_case "bounds on empty domains" `Quick
      test_bounds_check_empty_domain;
    Alcotest.test_case "affp printing (negatives)" `Quick test_affp_pp_negative;
    Alcotest.test_case "stencil printing" `Quick test_stencil_pp;
  ]
