(* Stress tests for the shared-cache parallel runtime: the sharded
   [Par.map] scheduler (exactly-once claims, stealing under imbalance,
   nested degradation, exception capture under load), the [Oncemap]
   publish-once table the shared memo caches are built on, and the
   allocation budget of the simulator's L2-trace encode hot loop. *)

open Hextile_gpusim
module Par = Hextile_par.Par
module Oncemap = Hextile_par.Oncemap

(* Deterministic little RNG so the "randomized" pool sizes and task mixes
   are reproducible run to run. *)
let rng_make seed = ref (seed lor 1)

let rng_int r bound =
  let x = !r in
  let x = x lxor (x lsl 13) in
  let x = x lxor (x lsr 7) in
  let x = x lxor (x lsl 17) in
  r := x land max_int;
  !r mod bound

(* ---- exactly-once claims under randomized pools ----------------------- *)

(* The shard+steal scheduler's one real correctness risk is a double or
   missed claim when helpers race a shard owner on its cursor. Hammer it
   across random pool sizes and task counts, counting executions per
   index atomically. *)
let test_exactly_once () =
  let r = rng_make 0x5eed in
  for _rep = 1 to 20 do
    let jobs = 1 + rng_int r 8 in
    let n = 1 + rng_int r 300 in
    let hits = Array.init n (fun _ -> Atomic.make 0) in
    let out =
      Par.with_pool ~jobs (fun p ->
          Par.map p
            (fun i ->
              Atomic.incr hits.(i);
              i * i)
            (Array.init n Fun.id))
    in
    Array.iteri
      (fun i c ->
        if Atomic.get c <> 1 then
          Alcotest.failf "jobs=%d n=%d: index %d executed %d times" jobs n i
            (Atomic.get c))
      hits;
    Alcotest.(check (array int))
      (Fmt.str "results by index at jobs=%d n=%d" jobs n)
      (Array.init n (fun i -> i * i))
      out
  done

(* ---- steal fairness under a mixed-size task hammer --------------------- *)

(* 1k tasks whose costs differ by orders of magnitude, arranged so the
   static shards are maximally imbalanced (all the heavy work lands in
   one shard). Every index must still run exactly once with its result
   delivered by index — completion itself proves the schedule is
   work-conserving, since a starved scheduler would either deadlock or
   drop claims. *)
let test_steal_fairness_hammer () =
  let n = 1000 in
  let work = Array.make n 0 in
  List.iter
    (fun jobs ->
      Array.fill work 0 n 0;
      let hits = Array.init n (fun _ -> Atomic.make 0) in
      let spin = Array.make 64 1.0 in
      let out =
        Par.with_pool ~jobs (fun p ->
            Par.map p
              (fun i ->
                Atomic.incr hits.(i);
                (* heavy only in the first shard's range: everyone else
                   must finish early and come steal *)
                let cost = if i < n / jobs then 20_000 else 50 in
                let acc = ref 0.0 in
                for k = 0 to cost - 1 do
                  acc := !acc +. spin.(k land 63)
                done;
                work.(i) <- int_of_float !acc;
                i)
              (Array.init n Fun.id))
      in
      Alcotest.(check int)
        (Fmt.str "all %d tasks claimed once at jobs=%d" n jobs)
        n
        (Array.fold_left (fun a c -> a + Atomic.get c) 0 hits);
      Array.iteri
        (fun i c ->
          if Atomic.get c <> 1 then
            Alcotest.failf "jobs=%d: task %d ran %d times" jobs i (Atomic.get c))
        hits;
      Alcotest.(check (array int))
        (Fmt.str "identity map by index at jobs=%d" jobs)
        (Array.init n Fun.id) out)
    [ 2; 4; 8 ]

(* ---- nested regions under randomized pools ----------------------------- *)

let test_nested_degradation_randomized () =
  let r = rng_make 0xabcd in
  for _rep = 1 to 10 do
    let jobs = 1 + rng_int r 8 in
    let n = 1 + rng_int r 40 in
    let got =
      Par.with_pool ~jobs (fun p ->
          Par.map p
            (fun i ->
              if jobs > 1 && not (Par.in_region ()) then
                failwith "task not flagged in-region";
              (* three levels deep: everything below the first must run
                 the plain sequential loop on this domain *)
              let inner =
                Par.map p
                  (fun j ->
                    Array.fold_left ( + ) 0
                      (Par.map p (fun k -> i + j + k) (Array.init 5 Fun.id)))
                  (Array.init 4 Fun.id)
              in
              Array.fold_left ( + ) 0 inner)
            (Array.init n Fun.id))
    in
    let expect =
      Array.init n (fun i ->
          let s = ref 0 in
          for j = 0 to 3 do
            for k = 0 to 4 do
              s := !s + i + j + k
            done
          done;
          !s)
    in
    Alcotest.(check (array int))
      (Fmt.str "nested maps at jobs=%d n=%d" jobs n)
      expect got
  done;
  Alcotest.(check bool) "region flag restored" false (Par.in_region ())

(* ---- exception capture under load -------------------------------------- *)

exception Boom of int

let test_exceptions_under_load () =
  let r = rng_make 0xfa11 in
  for _rep = 1 to 10 do
    let jobs = 2 + rng_int r 7 in
    let n = 50 + rng_int r 200 in
    let nfail = 1 + rng_int r 10 in
    let failing = Array.make n false in
    for _ = 1 to nfail do
      failing.(rng_int r n) <- true
    done;
    let lowest = ref (-1) in
    Array.iteri (fun i f -> if f && !lowest < 0 then lowest := i) failing;
    if !lowest >= 0 then begin
      let ran = Array.init n (fun _ -> Atomic.make 0) in
      match
        Par.with_pool ~jobs (fun p ->
            Par.map p
              (fun i ->
                Atomic.incr ran.(i);
                (* mixed sizes so failures surface while other domains
                   are mid-task *)
                let acc = ref 0 in
                for k = 0 to 100 * (i land 7) do
                  acc := !acc + k
                done;
                if failing.(i) then raise (Boom i);
                !acc)
              (Array.init n Fun.id))
      with
      | _ -> Alcotest.failf "jobs=%d: expected Boom %d" jobs !lowest
      | exception Boom i ->
          Alcotest.(check int)
            (Fmt.str "lowest failing index at jobs=%d" jobs)
            !lowest i;
          (* no cancellation: every index was still claimed exactly once *)
          Array.iteri
            (fun j c ->
              if Atomic.get c <> 1 then
                Alcotest.failf "jobs=%d: index %d ran %d times after failure"
                  jobs j (Atomic.get c))
            ran
    end
  done

(* ---- Oncemap: publish-once semantics under contention ------------------- *)

(* Hammer one shared map from every domain with computes that allocate a
   fresh value each call: publish-once means every caller ends up with
   the same physical value per key, no matter who computed first. *)
let test_oncemap_publish_once () =
  let m : (int, int array) Oncemap.t = Oncemap.create ~bits:6 () in
  let nkeys = 8 in
  let per_task =
    Par.with_pool ~jobs:4 (fun p ->
        Par.map p
          (fun _ ->
            Array.init nkeys (fun k ->
                Oncemap.find_or_compute m k (fun () -> Array.make 4 k)))
          (Array.init 64 Fun.id))
  in
  for k = 0 to nkeys - 1 do
    let v0 = per_task.(0).(k) in
    Alcotest.(check (array int))
      (Fmt.str "key %d value" k)
      (Array.make 4 k) v0;
    Array.iteri
      (fun t vs ->
        if not (vs.(k) == v0) then
          Alcotest.failf "key %d: task %d holds a different physical value" k t)
      per_task
  done

let test_oncemap_sequential_contract () =
  let m : (string, int ref) Oncemap.t = Oncemap.create ~bits:4 () in
  Alcotest.(check bool) "empty find" true (Oncemap.find m "a" = None);
  let v1 = ref 1 in
  let got = Oncemap.publish m "a" v1 in
  Alcotest.(check bool) "publish returns own value" true (got == v1);
  (match Oncemap.find m "a" with
  | Some v -> Alcotest.(check bool) "find returns published" true (v == v1)
  | None -> Alcotest.fail "published key not found");
  let v2 = ref 2 in
  let got2 = Oncemap.publish m "a" v2 in
  Alcotest.(check bool) "second publish adopts the winner" true (got2 == v1);
  let computed = ref false in
  let got3 =
    Oncemap.find_or_compute m "a" (fun () ->
        computed := true;
        ref 3)
  in
  Alcotest.(check bool) "hit skips the compute" false !computed;
  Alcotest.(check bool) "hit returns the winner" true (got3 == v1);
  Oncemap.clear m;
  Alcotest.(check bool) "cleared" true (Oncemap.find m "a" = None);
  let got4 = Oncemap.find_or_compute m "a" (fun () -> ref 4) in
  Alcotest.(check int) "fresh compute after clear" 4 !got4

(* The map is a bounded cache: overload a tiny table and verify it keeps
   returning correct (caller-computed) values once full. *)
let test_oncemap_overflow_degrades () =
  let m : (int, int) Oncemap.t = Oncemap.create ~bits:2 ~probe:4 () in
  for k = 0 to 63 do
    Alcotest.(check int)
      (Fmt.str "key %d" k)
      (k * 7)
      (Oncemap.find_or_compute m k (fun () -> k * 7))
  done

(* ---- allocation budget of the L2 encode hot loop ------------------------ *)

(* The parallel path's per-domain trace buffers are persistent and the
   per-block bookkeeping is arrays of ints: after a warm-up launch has
   grown every buffer, a further launch must allocate only the fixed
   per-launch bookkeeping on this domain — nothing proportional to the
   number of encoded events. The old path allocated a fresh 256-word
   tbuf plus [Some] boxing per block (>= 256 words/block, plus growth
   doublings proportional to events); the budget below is far under
   that, so any per-event or per-block boxing reappearing fails loudly. *)
let test_encode_allocation_budget () =
  let nblocks = 64 in
  let touch s events b =
    for e = 0 to events - 1 do
      (* distinct lines per (block, event) so the trace actually fills *)
      Sim.global_load_run s ~addr:(4 * 32 * ((b * events) + e)) ~n:32;
      Sim.global_store_run s ~addr:(4 * 32 * ((b * events) + e)) ~n:32
    done
  in
  Par.with_pool ~jobs:2 (fun pool ->
      let s = Sim.create { Device.gtx470 with l2_bytes = 8192 } in
      let run events =
        Sim.launch ~pool s ~name:"alloc" ~blocks:nblocks ~threads:32
          ~shared_bytes:0 ~f:(touch s events)
      in
      (* warm-up with 4x the measured event count: whatever mix of
         chunks this domain ends up executing below, its persistent
         buffer is already big enough, so no growth is charged *)
      run 256;
      let events = 64 in
      let before = Gc.minor_words () in
      run events;
      let delta = Gc.minor_words () -. before in
      (* fixed bookkeeping + a small per-block allowance (position
         arrays, chunk counters); the old path needed >= 256 words per
         block before counting its per-event growth doublings *)
      let budget = float_of_int ((64 * nblocks) + 8192) in
      if delta > budget then
        Alcotest.failf
          "encode hot loop allocated %.0f minor words for %d blocks x %d \
           events (budget %.0f): per-event or per-block allocation is back"
          delta nblocks (2 * events) budget)

let suite =
  [
    Alcotest.test_case "map: exactly-once at random pool sizes" `Quick
      test_exactly_once;
    Alcotest.test_case "map: steal fairness, 1k mixed-size tasks" `Quick
      test_steal_fairness_hammer;
    Alcotest.test_case "nested regions degrade (randomized)" `Quick
      test_nested_degradation_randomized;
    Alcotest.test_case "exceptions under load: lowest index wins" `Quick
      test_exceptions_under_load;
    Alcotest.test_case "oncemap: publish-once under contention" `Quick
      test_oncemap_publish_once;
    Alcotest.test_case "oncemap: sequential contract" `Quick
      test_oncemap_sequential_contract;
    Alcotest.test_case "oncemap: bounded table degrades gracefully" `Quick
      test_oncemap_overflow_degrades;
    Alcotest.test_case "sim: encode hot loop allocation budget" `Quick
      test_encode_allocation_budget;
  ]
