(* Tests for the lib/par domain pool and the determinism contract it
   must uphold across the whole stack: identical combinator results,
   Obs merge totals, gpusim counters (including the order-sensitive
   L2/dram path), sanitizer findings, scheme executor outputs, tile-size
   selection and fuzz campaigns — all bit-identical at jobs 1/2/4. *)

open Hextile_gpusim
module Grid = Hextile_ir.Grid
module Par = Hextile_par.Par
module Obs = Hextile_obs.Obs
module Json = Hextile_obs.Json
module Check = Hextile_check
module Suite = Hextile_stencils.Suite
module Tile_size = Hextile_tiling.Tile_size

let dev = Device.gtx470
let jobs_values = [ 2; 4 ]

let contains ~sub s =
  let n = String.length sub in
  let rec go i =
    i + n <= String.length s && (String.sub s i n = sub || go (i + 1))
  in
  go 0

(* ---- pool combinators ------------------------------------------------- *)

let test_map_matches_sequential () =
  List.iter
    (fun jobs ->
      Par.with_pool ~jobs (fun p ->
          Alcotest.(check int) "jobs" (max 1 jobs) (Par.jobs p);
          let xs = Array.init 503 (fun i -> i - 7) in
          let f x = (x * x) - (3 * x) in
          Alcotest.(check (array int))
            (Fmt.str "map at jobs=%d" jobs)
            (Array.map f xs) (Par.map p f xs);
          Alcotest.(check (array int))
            "empty" [||]
            (Par.map p f [||]);
          Alcotest.(check (array int)) "singleton" [| f 9 |] (Par.map p f [| 9 |])))
    [ 1; 2; 4 ]

let test_run_exceptions () =
  Par.with_pool ~jobs:4 (fun p ->
      let ran = Array.make 9 false in
      let thunks =
        Array.init 9 (fun i () ->
            ran.(i) <- true;
            if i mod 3 = 1 then failwith (string_of_int i))
      in
      (match Par.run p thunks with
      | () -> Alcotest.fail "expected an exception"
      | exception Failure m ->
          Alcotest.(check string) "lowest failing index re-raised" "1" m);
      Alcotest.(check bool)
        "no cancellation: every thunk ran" true
        (Array.for_all Fun.id ran))

let test_map_reduce_ordered () =
  Par.with_pool ~jobs:4 (fun p ->
      let expect =
        String.concat "" (List.init 50 (fun i -> string_of_int i ^ ";"))
      in
      let got =
        Par.map_reduce p
          ~map:(fun i -> string_of_int i ^ ";")
          ~merge:( ^ ) ""
          (Array.init 50 Fun.id)
      in
      (* a non-commutative merge only works if the fold is in index order *)
      Alcotest.(check string) "ordered merge" expect got)

let test_nested_region_degrades () =
  Par.with_pool ~jobs:4 (fun p ->
      Alcotest.(check bool) "outside region" false (Par.in_region ());
      let inner = Array.init 10 Fun.id in
      let got =
        Par.map p
          (fun i ->
            if not (Par.in_region ()) then failwith "task not in region";
            Array.fold_left ( + ) 0 (Par.map p (fun j -> i * j) inner))
          (Array.init 8 Fun.id)
      in
      let expect = Array.init 8 (fun i -> i * 45) in
      Alcotest.(check (array int)) "nested map degrades to sequential" expect got);
  Alcotest.(check bool) "region flag restored" false (Par.in_region ())

(* ---- Obs under parallel regions --------------------------------------- *)

let with_obs f () =
  Obs.reset ();
  Obs.enable ();
  Fun.protect
    ~finally:(fun () ->
      Obs.disable ();
      Obs.reset ())
    f

let test_obs_hammer =
  with_obs (fun () ->
      let n = 64 in
      Par.with_pool ~jobs:4 (fun p ->
          Par.iter p
            (fun i ->
              Obs.span "hammer_task" (fun () ->
                  Obs.annot "i" (Obs.Int i);
                  for _ = 1 to i do
                    Obs.incr "hammer.count"
                  done;
                  Obs.incr ~by:i "hammer.by"))
            (Array.init n Fun.id));
      let expect = n * (n - 1) / 2 in
      Alcotest.(check int) "incr total = sequential sum" expect
        (Obs.counter "hammer.count");
      Alcotest.(check int) "incr ~by total" expect (Obs.counter "hammer.by");
      let spans =
        List.filter (fun t -> t.Obs.sname = "hammer_task") (Obs.roots ())
      in
      Alcotest.(check int) "every task's span absorbed" n (List.length spans);
      match Json.parse (Json.to_string (Obs.to_json ())) with
      | Ok _ -> ()
      | Error e -> Alcotest.failf "merged trace JSON does not parse: %s" e)

(* ---- gpusim: counters and sanitizer across domains -------------------- *)

let some_addrs l = Array.of_list (List.map (fun x -> Some x) l)

let lane_pair w1 w2 =
  Array.init 32 (fun i ->
      if i = 0 then Some w1 else if i = 1 then Some w2 else None)

(* Block-dependent global traffic through a small L2 (so eviction order
   matters), L1 reuse, shared accesses and barriers: every counter class
   the parallel path must reproduce exactly. *)
let sim_counters pool =
  let s = Sim.create { Device.gtx470 with l2_bytes = 8192 } in
  Sim.launch ?pool s ~name:"k" ~blocks:16 ~threads:32 ~shared_bytes:256
    ~f:(fun b ->
      let addrs k =
        some_addrs (List.init 32 (fun i -> 4 * ((b * 64) + (k * 32) + i)))
      in
      Sim.global_load_warp s (addrs 0);
      Sim.global_store_warp s (addrs 1);
      Sim.global_load_warp s (addrs 0);
      let tids = Array.init 32 Fun.id in
      Sim.shared_store_warp s ~tids (some_addrs (List.init 32 Fun.id));
      Sim.sync s;
      Sim.shared_load_warp s ~tids (some_addrs (List.init 32 Fun.id));
      (* touch the next block's lines too: cross-block L2 interaction *)
      Sim.global_load_warp s
        (some_addrs
           (List.init 32 (fun i -> 4 * ((((b + 1) mod 16) * 64) + i)))));
  Counters.to_assoc s.total

let test_sim_parallel_counters () =
  let seq = sim_counters None in
  List.iter
    (fun jobs ->
      Par.with_pool ~jobs (fun p ->
          Alcotest.(check (list (pair string int)))
            (Fmt.str "counters at jobs=%d" jobs)
            seq
            (sim_counters (Some p))))
    jobs_values

let with_sanitizer f =
  Sanitize.reset ();
  Sanitize.enable ();
  Fun.protect ~finally:(fun () -> Sanitize.disable ()) f

let sanitizer_findings pool =
  with_sanitizer (fun () ->
      let s = Sim.create dev in
      Sim.launch ?pool s ~name:"k" ~blocks:6 ~threads:32 ~shared_bytes:256
        ~f:(fun b ->
          (* synthetic-tid write/write race on word b in every block *)
          Sim.shared_store_warp s (lane_pair b b);
          Sim.sync s;
          (* block 0 issues an extra barrier: divergence findings *)
          if b = 0 then Sim.sync s);
      (Sanitize.findings (), Sanitize.dropped ()))

let test_sanitizer_parallel_parity () =
  let seq_findings, seq_dropped = sanitizer_findings None in
  Alcotest.(check bool)
    "sequential run finds races" true
    (List.length seq_findings >= 6);
  List.iter
    (fun jobs ->
      Par.with_pool ~jobs (fun p ->
          let par_findings, par_dropped = sanitizer_findings (Some p) in
          Alcotest.(check int)
            (Fmt.str "dropped at jobs=%d" jobs)
            seq_dropped par_dropped;
          if par_findings <> seq_findings then
            Alcotest.failf
              "sanitizer findings differ at jobs=%d (%d vs %d findings)" jobs
              (List.length par_findings)
              (List.length seq_findings)))
    jobs_values

(* ---- determinism: scheme executors over generated programs ------------ *)

let grids_sig (r : Hextile_schemes.Common.result) =
  Hashtbl.fold
    (fun name (g : Grid.t) acc ->
      (name, Array.map Int64.bits_of_float g.Grid.data) :: acc)
    r.grids []
  |> List.sort compare

let result_sig (r : Hextile_schemes.Common.result) =
  ( grids_sig r,
    Counters.to_assoc r.counters,
    r.updates,
    r.kernel_time,
    r.transfer_time )

let test_scheme_determinism () =
  let rng = Check.Rng.create 2024 in
  for i = 0 to 2 do
    let prog, env = Check.Gen.generate (Check.Rng.derive rng i) in
    List.iter
      (fun scheme ->
        let run jobs =
          Par.with_pool ~jobs (fun pool ->
              match Check.Oracle.run_scheme ~pool scheme prog env dev with
              | Ok r -> result_sig r
              | Error m ->
                  Alcotest.failf "program %d, %s at jobs=%d: %s" i scheme jobs m)
        in
        let base = run 1 in
        List.iter
          (fun jobs ->
            if run jobs <> base then
              Alcotest.failf "program %d: %s differs at jobs=%d" i scheme jobs)
          jobs_values)
      (Check.Oracle.scheme_names prog)
  done

(* ---- determinism: analytic mode --------------------------------------- *)

(* The analytic (hierarchical) hybrid mode precomputes its class
   decomposition before each launch and derives scaled blocks in the
   launch epilogue on the main domain, so its whole result — including
   the modelled DRAM counters and the blocks_analytic/classes tallies —
   must be bit-identical at every jobs value, like the exact engine. *)
let test_analytic_determinism () =
  List.iter
    (fun (prog, env) ->
      let e x = List.assoc x env in
      let run jobs =
        Par.with_pool ~jobs (fun pool ->
            let r =
              Hextile_schemes.Hybrid_exec.run ~pool ~analytic:true prog e dev
            in
            (result_sig r, r.blocks_analytic, r.classes))
      in
      let ((_, b, c) as base) = run 1 in
      Alcotest.(check bool)
        (prog.Hextile_ir.Stencil.name ^ ": scaling exercised")
        true (b > 0 && c > 0);
      List.iter
        (fun jobs ->
          if run jobs <> base then
            Alcotest.failf "analytic %s differs at jobs=%d"
              prog.Hextile_ir.Stencil.name jobs)
        jobs_values)
    [
      (Suite.laplacian2d, [ ("N", 128); ("T", 24) ]);
      (Suite.heat3d, [ ("N", 64); ("T", 12) ]);
    ]

(* ---- determinism: tile-size selection --------------------------------- *)

let test_tilesize_determinism () =
  let prog = Suite.heat3d in
  let sel pool =
    Tile_size.select ?pool prog ~h_candidates:[ 1; 2 ] ~w0_candidates:[ 2; 4 ]
      ~wi_candidates:[ [ 4; 6 ]; [ 32 ] ]
      ~shared_mem_floats:(48 * 1024 / 4)
      ~require_multiple:32 ()
  in
  let base = sel None in
  Alcotest.(check bool) "a choice exists" true (base <> None);
  List.iter
    (fun jobs ->
      Par.with_pool ~jobs (fun pool ->
          if sel (Some pool) <> base then
            Alcotest.failf "tile-size choice differs at jobs=%d" jobs))
    (1 :: jobs_values)

(* ---- determinism: fuzz campaigns + the --out regression ---------------- *)

let read_file path =
  In_channel.with_open_bin path In_channel.input_all

let campaign_files dir =
  Sys.readdir dir |> Array.to_list |> List.sort compare
  |> List.map (fun f -> (f, read_file (Filename.concat dir f)))

let test_fuzz_determinism () =
  let tmp = Filename.temp_dir "hextile_par_fuzz" "" in
  (* a nested, not-yet-existing path: the mkdir_p regression rides along *)
  let dir jobs = Filename.concat tmp (Fmt.str "j%d/nested" jobs) in
  let campaign jobs =
    let cfg =
      {
        Check.Fuzz.default_config with
        count = 4;
        seed = 7;
        mutate = Some "hybrid";
        out_dir = Some (dir jobs);
      }
    in
    let logs = ref [] in
    let s =
      Par.with_pool ~jobs (fun pool ->
          Check.Fuzz.run ~pool ~log:(fun l -> logs := l :: !logs) cfg dev)
    in
    (* paths differ between the two campaign dirs by construction; the
       remaining lines must match exactly *)
    let logs =
      List.filter
        (fun l -> not (contains ~sub:"counterexample written" l))
        (List.rev !logs)
    in
    (logs, Fmt.str "%a" (Check.Fuzz.pp_summary cfg) s, s, campaign_files (dir jobs))
  in
  let logs1, render1, s1, files1 = campaign 1 in
  Alcotest.(check bool) "campaign produced failures" true (s1.Check.Fuzz.failed > 0);
  Alcotest.(check bool) "counterexamples written" true (files1 <> []);
  List.iter
    (fun jobs ->
      let logs_n, render_n, s_n, files_n = campaign jobs in
      Alcotest.(check (list string))
        (Fmt.str "log lines at jobs=%d" jobs)
        logs1 logs_n;
      Alcotest.(check string)
        (Fmt.str "summary at jobs=%d" jobs)
        render1 render_n;
      Alcotest.(check int)
        (Fmt.str "failed count at jobs=%d" jobs)
        s1.Check.Fuzz.failed s_n.Check.Fuzz.failed;
      Alcotest.(check (list (pair string string)))
        (Fmt.str "counterexample files at jobs=%d" jobs)
        files1 files_n)
    jobs_values

let test_fuzz_exit_criterion () =
  let base =
    {
      Check.Fuzz.total = 5;
      passed = 4;
      failed = 1;
      skipped = 0;
      caught = 0;
      missed = 0;
      cases = [];
    }
  in
  let cfg = Check.Fuzz.default_config in
  Alcotest.(check bool)
    "failures force a nonzero exit" false
    (Check.Fuzz.ok cfg base);
  Alcotest.(check bool)
    "clean campaign passes" true
    (Check.Fuzz.ok cfg { base with failed = 0 });
  let mcfg = { cfg with Check.Fuzz.mutate = Some "hybrid" } in
  Alcotest.(check bool)
    "mutate: caught and none missed passes" true
    (Check.Fuzz.ok mcfg { base with caught = 3; missed = 0 });
  Alcotest.(check bool)
    "mutate: a missed mutant fails" false
    (Check.Fuzz.ok mcfg { base with caught = 3; missed = 1 });
  Alcotest.(check bool)
    "mutate: nothing caught fails" false
    (Check.Fuzz.ok mcfg { base with caught = 0; missed = 0 })

let suite =
  [
    Alcotest.test_case "map matches Array.map" `Quick test_map_matches_sequential;
    Alcotest.test_case "run: lowest-index exception, no cancellation" `Quick
      test_run_exceptions;
    Alcotest.test_case "map_reduce folds in index order" `Quick
      test_map_reduce_ordered;
    Alcotest.test_case "nested regions degrade to sequential" `Quick
      test_nested_region_degrades;
    Alcotest.test_case "obs: N-domain hammer merges exactly" `Quick
      test_obs_hammer;
    Alcotest.test_case "sim: parallel counters bit-identical" `Quick
      test_sim_parallel_counters;
    Alcotest.test_case "sanitizer: parallel findings identical" `Quick
      test_sanitizer_parallel_parity;
    Alcotest.test_case "schemes: deterministic at jobs 1/2/4" `Slow
      test_scheme_determinism;
    Alcotest.test_case "analytic mode: deterministic at jobs 1/2/4" `Slow
      test_analytic_determinism;
    Alcotest.test_case "tile-size: deterministic at jobs 1/2/4" `Quick
      test_tilesize_determinism;
    Alcotest.test_case "fuzz: deterministic at jobs 1/2/4" `Slow
      test_fuzz_determinism;
    Alcotest.test_case "fuzz: exit criterion" `Quick test_fuzz_exit_criterion;
  ]
