open Hextile_util

let check = Alcotest.(check int)

let test_gcd () =
  check "gcd 12 18" 6 (Intutil.gcd 12 18);
  check "gcd 0 0" 0 (Intutil.gcd 0 0);
  check "gcd -12 18" 6 (Intutil.gcd (-12) 18);
  check "gcd 7 0" 7 (Intutil.gcd 7 0);
  check "gcd 0 -5" 5 (Intutil.gcd 0 (-5))

let test_lcm () =
  check "lcm 4 6" 12 (Intutil.lcm 4 6);
  check "lcm 0 3" 0 (Intutil.lcm 0 3);
  check "lcm -4 6" 12 (Intutil.lcm (-4) 6)

let test_fdiv_fmod () =
  check "fdiv 7 2" 3 (Intutil.fdiv 7 2);
  check "fdiv -7 2" (-4) (Intutil.fdiv (-7) 2);
  check "fdiv 7 -2" (-4) (Intutil.fdiv 7 (-2));
  check "fdiv -7 -2" 3 (Intutil.fdiv (-7) (-2));
  check "fmod -7 2" 1 (Intutil.fmod (-7) 2);
  check "fmod 7 2" 1 (Intutil.fmod 7 2);
  check "cdiv 7 2" 4 (Intutil.cdiv 7 2);
  check "cdiv -7 2" (-3) (Intutil.cdiv (-7) 2)

let test_pow () =
  check "pow 2 10" 1024 (Intutil.pow 2 10);
  check "pow 3 0" 1 (Intutil.pow 3 0);
  check "pow -2 3" (-8) (Intutil.pow (-2) 3)

let test_range () =
  Alcotest.(check (list int)) "range 1 4" [ 1; 2; 3; 4 ] (Intutil.range 1 4);
  Alcotest.(check (list int)) "range 3 2" [] (Intutil.range 3 2);
  check "fold_range sum" 10 (Intutil.fold_range 1 4 ~init:0 ~f:( + ));
  check "sum" 6 (Intutil.sum [ 1; 2; 3 ])

let prop_fdiv_fmod =
  QCheck.Test.make ~name:"fdiv/fmod invariant a = b*fdiv + fmod, 0<=fmod<|b|"
    ~count:1000
    QCheck.(pair int (int_range 1 100))
    (fun (a, b) ->
      let q = Intutil.fdiv a b and r = Intutil.fmod a b in
      a = (b * q) + r && r >= 0 && r < b)

let rat = Alcotest.testable Rat.pp Rat.equal

let test_rat_basic () =
  Alcotest.check rat "1/2 + 1/3" (Rat.make 5 6) (Rat.add (Rat.make 1 2) (Rat.make 1 3));
  Alcotest.check rat "normalize -2/-4" (Rat.make 1 2) (Rat.make (-2) (-4));
  Alcotest.check rat "normalize 2/-4" (Rat.make (-1) 2) (Rat.make 2 (-4));
  Alcotest.check rat "mul" (Rat.make 1 3) (Rat.mul (Rat.make 2 3) (Rat.make 1 2));
  Alcotest.check rat "div" (Rat.make 4 3) (Rat.div (Rat.make 2 3) (Rat.make 1 2));
  Alcotest.check rat "frac 7/2" (Rat.make 1 2) (Rat.frac (Rat.make 7 2));
  Alcotest.check rat "frac -7/2" (Rat.make 1 2) (Rat.frac (Rat.make (-7) 2));
  check "floor 7/2" 3 (Rat.floor (Rat.make 7 2));
  check "floor -7/2" (-4) (Rat.floor (Rat.make (-7) 2));
  check "ceil -7/2" (-3) (Rat.ceil (Rat.make (-7) 2));
  check "sign" (-1) (Rat.sign (Rat.make (-3) 7));
  Alcotest.(check bool) "is_integer 4/2" true (Rat.is_integer (Rat.make 4 2));
  Alcotest.(check string) "to_string" "5/6" (Rat.to_string (Rat.make 5 6))

let test_rat_exn () =
  Alcotest.check_raises "make _ 0" Division_by_zero (fun () -> ignore (Rat.make 1 0));
  Alcotest.check_raises "div by zero" Division_by_zero (fun () ->
      ignore (Rat.div Rat.one Rat.zero));
  Alcotest.check_raises "inv zero" Division_by_zero (fun () -> ignore (Rat.inv Rat.zero))

let arb_rat =
  QCheck.map
    (fun (n, d) -> Rat.make n d)
    QCheck.(pair (int_range (-1000) 1000) (int_range 1 1000))

let prop_rat_add_comm =
  QCheck.Test.make ~name:"rat add commutative" ~count:500 (QCheck.pair arb_rat arb_rat)
    (fun (a, b) -> Rat.equal (Rat.add a b) (Rat.add b a))

let prop_rat_mul_inv =
  QCheck.Test.make ~name:"rat a * 1/a = 1 (a<>0)" ~count:500 arb_rat (fun a ->
      QCheck.assume (Rat.sign a <> 0);
      Rat.equal Rat.one (Rat.mul a (Rat.inv a)))

let prop_rat_floor_frac =
  QCheck.Test.make ~name:"rat x = floor x + frac x" ~count:500 arb_rat (fun a ->
      Rat.equal a (Rat.add (Rat.of_int (Rat.floor a)) (Rat.frac a)))

let prop_rat_ord =
  QCheck.Test.make ~name:"rat compare antisymmetric" ~count:500
    (QCheck.pair arb_rat arb_rat) (fun (a, b) ->
      Rat.compare a b = -Rat.compare b a)

let suite =
  [
    Alcotest.test_case "gcd" `Quick test_gcd;
    Alcotest.test_case "lcm" `Quick test_lcm;
    Alcotest.test_case "fdiv/fmod/cdiv" `Quick test_fdiv_fmod;
    Alcotest.test_case "pow" `Quick test_pow;
    Alcotest.test_case "range/fold/sum" `Quick test_range;
    Alcotest.test_case "rat basics" `Quick test_rat_basic;
    Alcotest.test_case "rat exceptions" `Quick test_rat_exn;
    QCheck_alcotest.to_alcotest prop_fdiv_fmod;
    QCheck_alcotest.to_alcotest prop_rat_add_comm;
    QCheck_alcotest.to_alcotest prop_rat_mul_inv;
    QCheck_alcotest.to_alcotest prop_rat_floor_frac;
    QCheck_alcotest.to_alcotest prop_rat_ord;
  ]
