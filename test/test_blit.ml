(* Property test for the analytic epilogue's bulk grid reconstruction:
   executing a class's compute rows through [Common.compile_rows] /
   [Common.exec_rows] — which sorts the rows, coalesces contiguous
   same-(statement, tstep) extents into long runs and executes them
   through the statement's fused tape plan — must reproduce, bit for
   bit, the exact per-row replay ([Common.exec_tape_row], the PR-7 path)
   on randomized class extents: randomly segmented rows (adjacent
   segments must merge), randomly gapped and clipped boundary rows (gaps
   break contiguity, so those rows must take the single-row fallback),
   and randomly shuffled within-tstep input order (the internal sort
   must restore a dependency-safe schedule). *)

module Common = Hextile_schemes.Common
module Grid = Hextile_ir.Grid
module Stencil = Hextile_ir.Stencil
module Suite = Hextile_stencils.Suite
module Device = Hextile_gpusim.Device

let n_env = 32

let env p = List.assoc p [ ("N", n_env); ("T", 8) ]

(* Randomized rows over laplacian2d's folded array A (fold 2): per
   tstep, writes target one fold plane and every source reads the other,
   so rows of one tstep have disjoint writes and never read a cell
   another row of the same tstep writes — exactly the invariant the
   executor's recorded streams satisfy and the blit reorder relies on. *)
type case = {
  rows : (int * int * int * int array * int) list;
  segments : int;  (** total generated segments *)
  mergeable : int;  (** adjacent same-y segment pairs (must coalesce) *)
  gaps : int;  (** dropped/clipped segments forcing the fallback *)
}

let gen_case rand =
  let prog = Suite.laplacian2d in
  let stmt = List.hd prog.Stencil.stmts in
  let nsrc = List.length (Stencil.distinct_reads stmt) in
  (* probe grid geometry through a throwaway ctx *)
  let ctx = Common.make_ctx prog env Device.gtx470 in
  let g = Grid.find ctx.Common.grids stmt.Stencil.write.Stencil.array in
  let nd = Array.length g.Grid.dims in
  let w = g.Grid.dims.(nd - 1) in
  let h = g.Grid.dims.(nd - 2) in
  let plane = w * h in
  let rows = ref [] and segments = ref 0 and mergeable = ref 0 and gaps = ref 0 in
  let ntsteps = 1 + QCheck.Gen.int_bound 2 rand in
  for tstep = 0 to ntsteps - 1 do
    let wbase = (tstep + 1) mod 2 * plane and rbase = tstep mod 2 * plane in
    let trows = ref [] in
    let ny = QCheck.Gen.int_bound 3 rand + 1 in
    (* distinct rows only: duplicate y would overlap writes within a
       tstep, which recorded streams never do (and reorder would not be
       exact there) *)
    let used = Hashtbl.create 8 in
    for _ = 1 to ny do
      let y = ref (1 + QCheck.Gen.int_bound (h - 3) rand) in
      while Hashtbl.mem used !y do
        y := 1 + (!y mod (h - 2))
      done;
      Hashtbl.add used !y ();
      let y = !y in
      (* random segmentation of the row interior [1, w-2-nsrc] *)
      let x = ref 1 and prev_kept = ref false in
      while !x <= w - 2 - nsrc do
        let len = 1 + QCheck.Gen.int_bound 6 rand in
        let len = min len (w - 1 - nsrc - !x) in
        if len > 0 then begin
          (* clip/drop ~1 in 4 segments: the gap breaks contiguity and
             the neighbours must fall back to single-row runs *)
          if QCheck.Gen.int_bound 3 rand = 0 then begin
            incr gaps;
            prev_kept := false
          end
          else begin
            let wflat = wbase + (y * w) + !x in
            let srcs = Array.init nsrc (fun i -> rbase + (y * w) + !x + i) in
            trows := (0, tstep, wflat, srcs, len) :: !trows;
            incr segments;
            if !prev_kept then incr mergeable;
            prev_kept := true
          end
        end;
        x := !x + max len 1
      done
    done;
    (* shuffle within the tstep: input order must not matter *)
    let arr = Array.of_list !trows in
    for i = Array.length arr - 1 downto 1 do
      let j = QCheck.Gen.int_bound i rand in
      let t = arr.(i) in
      arr.(i) <- arr.(j);
      arr.(j) <- t
    done;
    (* keep tsteps ascending, as recorded streams do *)
    rows := !rows @ Array.to_list arr
  done;
  { rows = !rows; segments = !segments; mergeable = !mergeable; gaps = !gaps }

let arb_case =
  QCheck.make
    ~print:(fun c ->
      Printf.sprintf "%d rows (%d mergeable pairs, %d gaps)"
        (List.length c.rows) c.mergeable c.gaps)
    gen_case

(* cross-case witnesses that the generator exercised both regimes *)
let saw_merge = ref false
let saw_fallback = ref false

let prop_blit_equals_row_replay =
  QCheck.Test.make ~name:"blit reconstruction = per-row tape replay" ~count:60
    arb_case (fun { rows; segments; mergeable; gaps = _ } ->
      if rows = [] then true
      else begin
        let prog = Suite.laplacian2d in
        let dev = Device.gtx470 in
        (* reference: exact per-row replay, in input (stream) order *)
        let ctx_ref = Common.make_ctx prog env dev in
        List.iter
          (fun (stmt_idx, _tstep, wflat, srcs, n) ->
            Common.exec_tape_row ctx_ref ~stmt_idx ~wflat
              ~src_flats:(Array.copy srcs) ~n)
          rows;
        (* blit path: sort + coalesce + fused-plan runs *)
        let ctx_blit = Common.make_ctx prog env dev in
        let crows = Common.compile_rows ctx_blit rows in
        Common.exec_rows ctx_blit crows ~off:0;
        let nruns, nrows, blit = Common.rows_stats crows in
        if nrows <> segments then
          QCheck.Test.fail_reportf "rows_stats rows %d <> generated %d" nrows
            segments;
        (* every adjacent kept pair coalesces: runs = rows - merged pairs *)
        if nruns <> segments - mergeable then
          QCheck.Test.fail_reportf
            "expected %d runs (%d rows - %d mergeable pairs), got %d"
            (segments - mergeable) segments mergeable nruns;
        (* blit counts rows retired through multi-row runs; the rest
           stayed single-row fallback runs *)
        if blit > 0 then saw_merge := true;
        if nrows > blit then saw_fallback := true;
        (* grids bit-identical *)
        Hashtbl.iter
          (fun name g ->
            let g' = Grid.find ctx_blit.Common.grids name in
            if not (Grid.equal g g') then
              QCheck.Test.fail_reportf "grid %s diverges" name)
          ctx_ref.Common.grids;
        (* instance counter bit-identical *)
        if Atomic.get ctx_ref.Common.updates <> Atomic.get ctx_blit.Common.updates
        then
          QCheck.Test.fail_reportf "updates diverge: %d vs %d"
            (Atomic.get ctx_ref.Common.updates)
            (Atomic.get ctx_blit.Common.updates);
        true
      end)

let test_generator_covered_both_regimes () =
  Alcotest.(check bool) "some case coalesced rows into blits" true !saw_merge;
  Alcotest.(check bool) "some case took the single-row fallback" true
    !saw_fallback

let suite =
  [
    QCheck_alcotest.to_alcotest prop_blit_equals_row_replay;
    Alcotest.test_case "generator covered merge and fallback regimes" `Quick
      test_generator_covered_both_regimes;
  ]
