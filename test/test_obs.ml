(* Tests for the lib/obs tracing layer: span nesting/LIFO discipline,
   disabled no-op behaviour, counter accumulation, and the JSON
   emitter/parser round trip. *)

module Obs = Hextile_obs.Obs
module Json = Hextile_obs.Json
module Counters = Hextile_gpusim.Counters

(* Every test starts from a clean, enabled registry and leaves it
   disabled so obs state never leaks into other suites. *)
let with_obs f () =
  Obs.reset ();
  Obs.enable ();
  Fun.protect ~finally:(fun () -> Obs.disable (); Obs.reset ()) f

let test_nested_spans () =
  Obs.start "outer";
  Obs.start "inner";
  Obs.annot "k" (Obs.Int 3);
  Obs.stop "inner";
  Obs.stop "outer";
  match Obs.roots () with
  | [ { Obs.sname = "outer"; children = [ inner ]; dur_s; _ } ] ->
      Alcotest.(check string) "child name" "inner" inner.Obs.sname;
      Alcotest.(check bool) "outer closed" true (dur_s >= 0.0);
      Alcotest.(check bool) "inner closed" true (inner.Obs.dur_s >= 0.0);
      Alcotest.(check bool) "annot kept" true
        (List.mem_assoc "k" inner.Obs.attrs);
      Alcotest.(check bool)
        "child starts within parent" true
        (inner.Obs.start_s >= 0.0)
  | roots ->
      Alcotest.failf "expected one root with one child, got %d roots"
        (List.length roots)

let test_lifo_mismatch () =
  Obs.start "a";
  Obs.start "b";
  Alcotest.check_raises "wrong name"
    (Invalid_argument "Obs.stop a: innermost open span is b (LIFO order)")
    (fun () -> Obs.stop "a");
  Obs.stop "b";
  Obs.stop "a";
  Alcotest.check_raises "nothing open"
    (Invalid_argument "Obs.stop a: no span is open") (fun () -> Obs.stop "a")

let test_span_closes_on_exception () =
  (try Obs.span "boom" (fun () -> failwith "x") with Failure _ -> ());
  Alcotest.(check (list string)) "no span left open" [] (Obs.open_spans ());
  match Obs.roots () with
  | [ r ] ->
      Alcotest.(check string) "span recorded" "boom" r.Obs.sname;
      Alcotest.(check bool) "span closed" true (r.Obs.dur_s >= 0.0)
  | _ -> Alcotest.fail "expected exactly one root span"

let test_disabled_noop () =
  Obs.disable ();
  Obs.start "ghost";
  Obs.incr "ghost_counter";
  Obs.annot "k" (Obs.Bool true);
  Obs.event "e" [];
  Obs.stop "never_opened" (* must not raise while disabled *);
  Alcotest.(check int) "counter untouched" 0 (Obs.counter "ghost_counter");
  Alcotest.(check int) "no spans recorded" 0 (List.length (Obs.roots ()));
  Obs.enable ()

let test_counter_accumulation () =
  (* Obs counters accumulate by plain addition, exactly like
     Counters.add; a start/end snapshot diff must agree with
     Counters.diff on the same bumps. *)
  let sim_start = Counters.create () and sim_end = Counters.create () in
  sim_end.gld_inst <- 5;
  Obs.incr ~by:5 "gld_inst";
  sim_end.shared_load_requests <- 2;
  Obs.incr ~by:2 "shared_load_requests";
  sim_end.gld_inst <- sim_end.gld_inst + 3;
  Obs.incr ~by:3 "gld_inst";
  let delta = Counters.diff sim_end sim_start in
  Alcotest.(check int) "gld matches diff" delta.gld_inst (Obs.counter "gld_inst");
  Alcotest.(check int)
    "shared matches diff" delta.shared_load_requests
    (Obs.counter "shared_load_requests");
  let total = Counters.create () in
  Counters.add total delta;
  Counters.add total delta;
  Obs.incr ~by:(Obs.counter "gld_inst") "gld_inst";
  Alcotest.(check int) "double add matches" total.gld_inst
    (Obs.counter "gld_inst");
  Alcotest.(check (list (pair string int)))
    "counters sorted"
    [ ("gld_inst", 16); ("shared_load_requests", 2) ]
    (Obs.counters ())

let test_tape_engine_counters () =
  (* A hybrid run under observation must report the tape-engine counters
     (instructions executed, memoized blocks, replayed address-stream
     events), and they must survive the profile-JSON round trip. *)
  let prog = Hextile_stencils.Suite.jacobi2d in
  let env p = List.assoc p [ ("N", 64); ("T", 8) ] in
  let r =
    Hextile_schemes.Hybrid_exec.run prog env Hextile_gpusim.Device.gtx470
  in
  Alcotest.(check bool)
    "tape instructions executed" true
    (Obs.counter "sim.tape_instrs" > 0);
  Alcotest.(check int)
    "memoized blocks match result" r.blocks_memoized
    (Obs.counter "sim.blocks_memoized");
  Alcotest.(check bool)
    "address streams replayed" true
    (Obs.counter "sim.addr_streams_replayed" > 0);
  match Json.parse (Json.to_string (Obs.to_json ())) with
  | Error e -> Alcotest.failf "profile JSON did not parse: %s" e
  | Ok doc ->
      let counters = Option.get (Json.member "counters" doc) in
      List.iter
        (fun name ->
          Alcotest.(check (option int))
            (name ^ " survives the JSON round trip")
            (Some (Obs.counter name))
            (Option.bind (Json.member name counters) Json.to_int))
        [ "sim.tape_instrs"; "sim.blocks_memoized"; "sim.addr_streams_replayed" ]

let test_trace_json_roundtrip () =
  Obs.span "pipeline" (fun () ->
      Obs.annot "stencil" (Obs.Str "jacobi2d");
      Obs.incr ~by:4 "poly.lp_solves";
      Obs.event "kernel_launch"
        [ ("kernel", Obs.Str "k0"); ("time_s", Obs.Float 1.5e-6) ];
      Obs.span "sim" (fun () -> ()));
  let s = Json.to_string (Obs.to_json ()) in
  match Json.parse s with
  | Error e -> Alcotest.failf "trace did not parse: %s" e
  | Ok doc ->
      let counters = Option.get (Json.member "counters" doc) in
      Alcotest.(check (option int))
        "counter survives" (Some 4)
        (Option.bind (Json.member "poly.lp_solves" counters) Json.to_int);
      let spans = Option.get (Json.to_list (Option.get (Json.member "spans" doc))) in
      Alcotest.(check int) "one root span" 1 (List.length spans);
      let root = List.hd spans in
      Alcotest.(check (option string))
        "span name" (Some "pipeline")
        (Option.bind (Json.member "name" root) Json.to_str);
      let events = Option.get (Json.to_list (Option.get (Json.member "events" root))) in
      Alcotest.(check int) "event recorded" 1 (List.length events)

(* Named Oncemap caches publish their hit/miss stats into Obs as
   counters, as deltas since the previous publication, and the counters
   survive the JSON round trip like any other counter. *)
let test_oncemap_stats_roundtrip () =
  let module Oncemap = Hextile_par.Oncemap in
  let m : (int, int) Oncemap.t =
    Oncemap.create ~bits:4 ~name:"test.obs_roundtrip" ()
  in
  Alcotest.(check (option int)) "cold find misses" None (Oncemap.find m 1);
  let _ = Oncemap.publish m 1 10 in
  Alcotest.(check (option int)) "warm find hits" (Some 10) (Oncemap.find m 1);
  Alcotest.(check (pair int int)) "table stats" (1, 1) (Oncemap.stats m);
  Alcotest.(check bool) "registered in stats_all" true
    (List.exists
       (fun (n, h, ms) -> n = "test.obs_roundtrip" && h = 1 && ms = 1)
       (Oncemap.stats_all ()));
  Oncemap.publish_obs ();
  let counter doc name = Option.bind (Json.member name doc) Json.to_int in
  let counters () =
    match Json.parse (Json.to_string (Obs.to_json ())) with
    | Error e -> Alcotest.failf "trace did not parse: %s" e
    | Ok doc -> Option.get (Json.member "counters" doc)
  in
  let c = counters () in
  Alcotest.(check (option int)) "hits counter" (Some 1)
    (counter c "oncemap.test.obs_roundtrip.hits");
  Alcotest.(check (option int)) "misses counter" (Some 1)
    (counter c "oncemap.test.obs_roundtrip.misses");
  (* Publication is delta-based: a second publish with no activity adds
     nothing; two more hits add exactly two. *)
  Oncemap.publish_obs ();
  Alcotest.(check (option int)) "no double count" (Some 1)
    (counter (counters ()) "oncemap.test.obs_roundtrip.hits");
  ignore (Oncemap.find m 1);
  ignore (Oncemap.find m 1);
  Oncemap.publish_obs ();
  Alcotest.(check (option int)) "delta added" (Some 3)
    (counter (counters ()) "oncemap.test.obs_roundtrip.hits")

let test_absorb_after_reset () =
  (* A fork detached before a reset must still absorb cleanly into the
     fresh registry: its counters are plain deltas, so the merged totals
     are exactly the fork's own bumps. *)
  Obs.incr ~by:10 "pre.reset";
  Obs.fork_begin ();
  Obs.span "forked" (fun () -> Obs.incr ~by:3 "fork.count");
  let f = Obs.fork_end () in
  Obs.reset ();
  Alcotest.(check int) "reset dropped main counters" 0 (Obs.counter "pre.reset");
  Obs.absorb f;
  Alcotest.(check int) "fork counters survive" 3 (Obs.counter "fork.count");
  (match Obs.roots () with
  | [ r ] -> Alcotest.(check string) "fork span survives" "forked" r.Obs.sname
  | roots -> Alcotest.failf "expected one root, got %d" (List.length roots));
  (* absorbing the same fork twice is plain re-addition, like
     Counters.add *)
  Obs.absorb f;
  Alcotest.(check int) "second absorb re-adds" 6 (Obs.counter "fork.count")

let test_absorb_order_determinism () =
  (* Forks absorbed in task-index order yield the same span sequence no
     matter which domain ran which task; a second pass in the same order
     must reproduce the first exactly. *)
  let mk i =
    Obs.fork_begin ();
    Obs.span (Fmt.str "task%d" i) (fun () ->
        Obs.annot "i" (Obs.Int i);
        Obs.incr ~by:i "order.count");
    Obs.fork_end ()
  in
  let shape () =
    List.map
      (fun t -> (t.Obs.sname, List.assoc "i" t.Obs.attrs))
      (Obs.roots ())
  in
  let forks = List.init 5 mk in
  List.iter Obs.absorb forks;
  let first = shape () in
  Alcotest.(check int) "all forks absorbed" 5 (List.length first);
  Obs.reset ();
  let forks = List.init 5 mk in
  List.iter Obs.absorb forks;
  Alcotest.(check bool) "same order, same trace" true (first = shape ())

let test_json_parse_values () =
  let ok s = Result.get_ok (Json.parse s) in
  Alcotest.(check bool) "null" true (ok "null" = Json.Null);
  Alcotest.(check bool) "true" true (ok "true" = Json.Bool true);
  Alcotest.(check (option int)) "int" (Some (-42)) (Json.to_int (ok "-42"));
  Alcotest.(check (option (float 1e-9)))
    "float" (Some 2.5e3)
    (Json.to_float (ok "2.5e3"));
  Alcotest.(check (option string))
    "escapes" (Some "a\"b\\c\n\t\xe2\x82\xac")
    (Json.to_str (ok {|"a\"b\\c\n\t€"|}));
  Alcotest.(check bool) "nested" true
    (ok {| {"a": [1, {"b": null}], "c": ""} |}
    = Json.Obj
        [
          ("a", Json.List [ Json.Int 1; Json.Obj [ ("b", Json.Null) ] ]);
          ("c", Json.Str "");
        ]);
  List.iter
    (fun bad ->
      match Json.parse bad with
      | Ok _ -> Alcotest.failf "accepted malformed input %S" bad
      | Error _ -> ())
    [ ""; "{"; "[1,]"; "{\"a\" 1}"; "tru"; "\"unterminated"; "1 2"; "nan" ]

let test_json_roundtrip_values () =
  let docs =
    [
      Json.Null;
      Json.Obj [];
      Json.List [];
      Json.Obj
        [
          ("s", Json.Str "quote\" backslash\\ control\x01");
          ("neg", Json.Int (-7));
          ("f", Json.Float 0.1);
          ("inner", Json.List [ Json.Bool false; Json.Float 1e-20 ]);
        ];
    ]
  in
  List.iter
    (fun d ->
      List.iter
        (fun minify ->
          match Json.parse (Json.to_string ~minify d) with
          | Ok d' ->
              Alcotest.(check bool)
                (Fmt.str "round trip (minify=%b)" minify)
                true (d = d')
          | Error e -> Alcotest.failf "round trip failed: %s" e)
        [ false; true ])
    docs;
  (* Non-finite floats degrade to null rather than producing invalid
     JSON. *)
  Alcotest.(check bool) "nan -> null" true
    (Result.get_ok (Json.parse (Json.to_string (Json.Float Float.nan))) = Json.Null)

let suite =
  [
    Alcotest.test_case "nested spans" `Quick (with_obs test_nested_spans);
    Alcotest.test_case "LIFO stop mismatch raises" `Quick (with_obs test_lifo_mismatch);
    Alcotest.test_case "span closes on exception" `Quick
      (with_obs test_span_closes_on_exception);
    Alcotest.test_case "disabled is a no-op" `Quick (with_obs test_disabled_noop);
    Alcotest.test_case "counter accumulation matches Counters" `Quick
      (with_obs test_counter_accumulation);
    Alcotest.test_case "trace JSON round trip" `Quick
      (with_obs test_trace_json_roundtrip);
    Alcotest.test_case "tape-engine counters in profile JSON" `Quick
      (with_obs test_tape_engine_counters);
    Alcotest.test_case "oncemap stats as Obs counters" `Quick
      (with_obs test_oncemap_stats_roundtrip);
    Alcotest.test_case "absorb after reset" `Quick (with_obs test_absorb_after_reset);
    Alcotest.test_case "absorb order determinism" `Quick
      (with_obs test_absorb_order_determinism);
    Alcotest.test_case "JSON parser values" `Quick test_json_parse_values;
    Alcotest.test_case "JSON printer/parser round trip" `Quick
      test_json_roundtrip_values;
  ]
