open Hextile_tiling
open Hextile_deps
open Hextile_stencils
open Hextile_util

let cone d0 d1 = { Cone.delta0 = d0; delta1 = d1 }
let unit_cone = cone Rat.one Rat.one

let arb_cone =
  let slope =
    QCheck.map (fun (n, d) -> Rat.make n d) QCheck.(pair (int_range 0 5) (int_range 1 3))
  in
  QCheck.map (fun (a, b) -> cone a b) (QCheck.pair slope slope)

let arb_hex =
  QCheck.map
    (fun (c, h, extra) ->
      let w0 = Hexagon.min_w0 ~h c + extra in
      Hexagon.make ~h ~w0 c)
    QCheck.(triple arb_cone (int_range 0 5) (int_range 0 3))

let test_min_w0_paper_example () =
  (* δ0=1, δ1=2, h=2 (the Section 3.3.2 example): w0 >= 1. *)
  Alcotest.(check int) "min_w0" 1 (Hexagon.min_w0 ~h:2 (cone Rat.one (Rat.of_int 2)));
  (* integral slopes have zero fractional part: δ + {δh} - 1 = δ - 1 *)
  Alcotest.(check int) "unit cone" 0 (Hexagon.min_w0 ~h:3 unit_cone);
  (* δ0 = 3/2, h = 1: {3/2} = 1/2 → 3/2 + 1/2 - 1 = 1 *)
  Alcotest.(check int) "fractional" 1
    (Hexagon.min_w0 ~h:1 (cone (Rat.make 3 2) Rat.zero))

let test_figure4_shape () =
  (* h=2, w0=3, δ=1: rows of widths 4,6,8,8,6,4 (36 points). *)
  let hex = Hexagon.make ~h:2 ~w0:3 unit_cone in
  let widths =
    List.map
      (fun a ->
        match Hexagon.row_range hex ~a with
        | Some (lo, hi) -> hi - lo + 1
        | None -> 0)
      [ 0; 1; 2; 3; 4; 5 ]
  in
  Alcotest.(check (list int)) "row widths" [ 4; 6; 8; 8; 6; 4 ] widths;
  Alcotest.(check int) "count" 36 (Hexagon.count hex);
  Alcotest.(check int) "expected" 36 (Hexagon.expected_count hex)

let test_make_validation () =
  Alcotest.(check bool) "negative h rejected" true
    (match Hexagon.make ~h:(-1) ~w0:3 unit_cone with
    | exception Invalid_argument _ -> true
    | _ -> false);
  Alcotest.(check bool) "w0 below minimum rejected" true
    (match Hexagon.make ~h:2 ~w0:0 (cone Rat.one (Rat.of_int 2)) with
    | exception Invalid_argument _ -> true
    | _ -> false)

let prop_count_identical =
  QCheck.Test.make ~name:"all full tiles have (h+1)*width points" ~count:100 arb_hex
    (fun hex -> Hexagon.count hex = Hexagon.expected_count hex)

let prop_partition =
  QCheck.Test.make ~name:"phases partition the (u,s0) plane" ~count:60 arb_hex
    (fun hex ->
      let hs = Hex_schedule.make hex in
      let ok = ref true in
      for u = -12 to 12 do
        for s0 = -15 to 15 do
          match Hex_schedule.phase_of hs ~u ~s0 with
          | _ -> ()
          | exception Invalid_argument _ -> ok := false
        done
      done;
      !ok)

let prop_hex_legality =
  QCheck.Test.make ~name:"hex schedule honors every cone dependence" ~count:40
    arb_hex (fun hex ->
      let hs = Hex_schedule.make hex in
      let c = hex.cone in
      let deps = ref [] in
      for du = 1 to 3 do
        for ds = -12 to 12 do
          if
            Rat.compare (Rat.of_int ds) (Rat.mul_int c.delta0 du) <= 0
            && Rat.compare (Rat.of_int ds) (Rat.neg (Rat.mul_int c.delta1 du)) >= 0
          then deps := (du, ds) :: !deps
        done
      done;
      let ok = ref true in
      for u = -10 to 10 do
        for s0 = -12 to 12 do
          List.iter
            (fun (du, ds) ->
              let v1 = Hex_schedule.sched_vector hs ~u ~s0 in
              let v2 = Hex_schedule.sched_vector hs ~u:(u + du) ~s0:(s0 + ds) in
              let tp1 = (v1.(0), v1.(1)) and tp2 = (v2.(0), v2.(1)) in
              if tp1 < tp2 then ()
              else if tp1 = tp2 && v1.(2) = v2.(2) && v1.(3) < v2.(3) then ()
              else ok := false)
            !deps
        done
      done;
      !ok)

let prop_tile_points_roundtrip =
  QCheck.Test.make ~name:"tile_points ↔ tile_of roundtrip" ~count:50
    (QCheck.pair arb_hex (QCheck.pair (QCheck.int_range (-3) 3) (QCheck.int_range (-3) 3)))
    (fun (hex, (tt, s_tile)) ->
      let hs = Hex_schedule.make hex in
      List.for_all
        (fun phase ->
          let pts = Hex_schedule.tile_points hs ~phase ~tt ~s_tile in
          List.length pts = Hexagon.expected_count hex
          && List.for_all
               (fun (u, s0) -> Hex_schedule.tile_of hs ~u ~s0 = (tt, phase, s_tile))
               pts)
        [ 0; 1 ])

let prop_qmap_matches =
  QCheck.Test.make ~name:"qmap agrees with direct computation" ~count:50 arb_hex
    (fun hex ->
      let hs = Hex_schedule.make hex in
      let ok = ref true in
      List.iter
        (fun phase ->
          let m = Hex_schedule.qmap hs ~phase in
          for u = -8 to 8 do
            for s0 = -8 to 8 do
              let v = Hextile_poly.Qmap.apply m [| u; s0 |] in
              let tt = Hex_schedule.time_tile hs ~phase ~u in
              let st = Hex_schedule.space_tile hs ~phase ~u ~s0 in
              let a, b = Hex_schedule.local hs ~phase ~u ~s0 in
              if v <> [| tt; st; a; b |] then ok := false
            done
          done)
        [ 0; 1 ];
      !ok)

(* classical-tiling legality: a dependence with Δs >= -δ1·Δu never points
   to an earlier classical tile when both endpoints advance in time *)
let prop_classical_monotone =
  QCheck.Test.make ~name:"classical skew keeps dependences forward" ~count:200
    QCheck.(
      quad
        (pair (int_range 0 3) (int_range 1 4)) (* δ1 = p/q *)
        (int_range 1 8) (* width *)
        (pair (int_range 0 6) (int_range (-20) 20)) (* u, si *)
        (int_range 1 3) (* Δu *))
    (fun ((p, q), w, (u, si), du) ->
      let delta1 = Rat.make p q in
      let c = Classical.make ~delta1 ~w in
      (* most negative admissible spatial distance: Δs = -⌈δ1·Δu⌉ ... 0 *)
      let ds_min = -Rat.floor (Rat.mul_int delta1 du) in
      let ok = ref true in
      for ds = ds_min to 2 do
        let t1 = Classical.tile c ~u ~si in
        let t2 = Classical.tile c ~u:(u + du) ~si:(si + ds) in
        if t2 < t1 then ok := false
      done;
      !ok)

let test_classical_roundtrip () =
  let c = Classical.make ~delta1:(Rat.make 1 2) ~w:5 in
  for u = 0 to 7 do
    for si = -20 to 20 do
      let tile = Classical.tile c ~u ~si and intra = Classical.intra c ~u ~si in
      Alcotest.(check int) "si_of inverse" si (Classical.si_of c ~u ~tile ~intra);
      Alcotest.(check bool) "intra in range" true (intra >= 0 && intra < 5)
    done
  done

let test_classical_validation () =
  Alcotest.(check bool) "w=0 rejected" true
    (match Classical.make ~delta1:Rat.one ~w:0 with
    | exception Invalid_argument _ -> true
    | _ -> false);
  Alcotest.(check bool) "negative δ1 rejected" true
    (match Classical.make ~delta1:Rat.minus_one ~w:3 with
    | exception Invalid_argument _ -> true
    | _ -> false)

let test_classical_tile_range () =
  let c = Classical.make ~delta1:Rat.one ~w:4 in
  let lo, hi = Classical.tile_range c ~u_max:3 ~lo:0 ~hi:10 in
  (* v ranges over 0 .. 10+3 → tiles 0..3 *)
  Alcotest.(check (pair int int)) "range" (0, 3) (lo, hi)

let hybrid_of prog h wspec =
  let dims = Hextile_ir.Stencil.spatial_dims prog in
  let w = Array.make dims 3 in
  Array.blit (Array.of_list wspec) 0 w 0 (List.length wspec);
  Hybrid.make prog ~h ~w

let test_hybrid_legality_all () =
  List.iter
    (fun (prog : Hextile_ir.Stencil.t) ->
      let k = List.length prog.stmts in
      let h = (2 * k) - 1 in
      let deps = Dep.analyze prog in
      let c = Cone.of_deps deps ~dim:0 in
      let w0 = max 2 (Hexagon.min_w0 ~h c) in
      let t = hybrid_of prog h [ w0 ] in
      let env p = List.assoc p (Suite.test_params prog) in
      match Hybrid.check_legality t env with
      | Ok () -> ()
      | Error m -> Alcotest.failf "%s: %s" prog.name m)
    Suite.all

let test_hybrid_h_multiple () =
  (* fdtd2d has k=3 statements: h=2 gives h+1=3 ✓, h=3 gives 4 ✗. *)
  ignore (hybrid_of Suite.fdtd2d 2 [ 2 ]);
  Alcotest.(check bool) "h+1 must be multiple of k" true
    (match hybrid_of Suite.fdtd2d 3 [ 2 ] with
    | exception Invalid_argument _ -> true
    | _ -> false)

let test_hybrid_wrong_width_count () =
  Alcotest.(check bool) "bad width count" true
    (match Hybrid.make Suite.heat2d ~h:1 ~w:[| 2 |] with
    | exception Invalid_argument _ -> true
    | _ -> false)

let test_hybrid_coords_roundtrip () =
  let t = hybrid_of Suite.heat2d 3 [ 3; 4 ] in
  for u = -5 to 15 do
    for s0 = -6 to 10 do
      for s1 = -6 to 10 do
        let s = [| s0; s1 |] in
        let c = Hybrid.coords t ~u ~s in
        match Hybrid.point_of_coords t c with
        | None -> Alcotest.failf "coords of (%d,%d,%d) not a tile point" u s0 s1
        | Some (u', s') ->
            Alcotest.(check int) "u roundtrip" u u';
            Alcotest.(check (array int)) "s roundtrip" s s'
      done
    done
  done

let test_hybrid_vector_order () =
  let t = hybrid_of Suite.heat2d 1 [ 2; 3 ] in
  let c1 = Hybrid.coords t ~u:0 ~s:[| 0; 0 |] in
  let c2 = Hybrid.coords t ~u:1 ~s:[| 0; 0 |] in
  Alcotest.(check bool) "dep (1,0,0) precedes" true (Hybrid.precedes t c1 c2);
  Alcotest.(check bool) "reverse does not precede" false (Hybrid.precedes t c2 c1);
  let v = Hybrid.vector t c1 in
  Alcotest.(check int) "vector length 2 + 2*(dims) + 1" 7 (Array.length v)

let test_instance_u () =
  let t = hybrid_of Suite.fdtd2d 2 [ 2 ] in
  Alcotest.(check int) "u of stmt 2 at t=4" 14 (Hybrid.instance_u t ~stmt:2 ~tstep:4);
  Alcotest.(check int) "stmt_of_u" 2 (Hybrid.stmt_of_u t 14);
  Alcotest.(check int) "tstep_of_u" 4 (Hybrid.tstep_of_u t 14);
  let env p = List.assoc p (Suite.test_params Suite.fdtd2d) in
  Alcotest.(check int) "u bound = k*steps" 27 (Hybrid.domain_u_bound t env)

let test_tile_stats_formula () =
  (* Table 4 sizes: h=2, w=(7,10,32) for heat3d. *)
  let t = Hybrid.make Suite.heat3d ~h:2 ~w:[| 7; 10; 32 |] in
  let s = Tile_size.tile_stats t in
  Alcotest.(check int) "iterations = paper formula"
    (Tile_size.iterations_formula_3d ~h:2 ~w0:7 ~w1:10 ~w2:32)
    s.iterations;
  Alcotest.(check int) "iterations = hexcount * w1 * w2"
    (Hexagon.expected_count t.hex * 10 * 32)
    s.iterations;
  Alcotest.(check bool) "loads < iterations (time reuse!)" true (s.loads < s.iterations);
  Alcotest.(check bool) "ratio consistent" true
    (Float.abs (s.ratio -. (float_of_int s.loads /. float_of_int s.iterations)) < 1e-9)

let test_tile_stats_2d () =
  let t = Hybrid.make Suite.jacobi2d ~h:3 ~w:[| 4; 8 |] in
  let s = Tile_size.tile_stats t in
  Alcotest.(check int) "iterations" (Hexagon.expected_count t.hex * 8) s.iterations;
  Alcotest.(check bool) "stores <= iterations" true (s.stores <= s.iterations);
  Alcotest.(check bool) "footprint >= loads" true (s.footprint_box >= s.loads)

let test_select () =
  match
    Tile_size.select Suite.heat2d ~h_candidates:[ 1; 3 ] ~w0_candidates:[ 2; 4 ]
      ~wi_candidates:[ [ 8; 16 ] ] ~shared_mem_floats:4096 ()
  with
  | None -> Alcotest.fail "expected a feasible choice"
  | Some c ->
      Alcotest.(check bool) "budget respected" true (c.stats.footprint_box <= 4096);
      (* a larger h should win on ratio within budget *)
      Alcotest.(check bool) "prefers time reuse" true (c.h >= 3 || c.stats.ratio < 1.0)

let test_select_alignment () =
  match
    Tile_size.select Suite.heat2d ~h_candidates:[ 1 ] ~w0_candidates:[ 2 ]
      ~wi_candidates:[ [ 7; 8; 9 ] ] ~shared_mem_floats:100000 ~require_multiple:8 ()
  with
  | None -> Alcotest.fail "expected a choice"
  | Some c -> Alcotest.(check int) "innermost aligned" 8 c.w.(1)

(* Selection is a pure function of the program and candidate lists: two
   runs must agree choice-for-choice, and the reported ratio must equal a
   recomputation of loads/iterations from the chosen tiling. *)
let test_select_deterministic () =
  let sel () =
    Tile_size.select Suite.heat2d ~h_candidates:[ 1; 3; 5 ]
      ~w0_candidates:[ 2; 4; 6 ] ~wi_candidates:[ [ 8; 16; 32 ] ]
      ~shared_mem_floats:4096 ()
  in
  match (sel (), sel ()) with
  | Some a, Some b ->
      Alcotest.(check int) "same h" a.h b.h;
      Alcotest.(check (array int)) "same w" a.w b.w;
      Alcotest.(check int) "same iterations" a.stats.iterations
        b.stats.iterations;
      Alcotest.(check (float 0.0)) "same ratio" a.stats.ratio b.stats.ratio
  | _ -> Alcotest.fail "expected a feasible choice"

let test_select_ratio_recomputed () =
  match
    Tile_size.select Suite.heat2d ~h_candidates:[ 1; 3 ] ~w0_candidates:[ 2; 4 ]
      ~wi_candidates:[ [ 8; 16 ] ] ~shared_mem_floats:4096 ()
  with
  | None -> Alcotest.fail "expected a feasible choice"
  | Some c ->
      let s = Tile_size.tile_stats (Hybrid.make Suite.heat2d ~h:c.h ~w:c.w) in
      Alcotest.(check int) "loads reproduced" s.loads c.stats.loads;
      Alcotest.(check int) "iterations reproduced" s.iterations
        c.stats.iterations;
      Alcotest.(check (float 1e-12)) "ratio = loads/iterations"
        (float_of_int s.loads /. float_of_int s.iterations)
        c.stats.ratio;
      (* the winner's ratio is minimal among all feasible candidates *)
      List.iter
        (fun h ->
          List.iter
            (fun w0 ->
              List.iter
                (fun w1 ->
                  match Hybrid.make Suite.heat2d ~h ~w:[| w0; w1 |] with
                  | exception Invalid_argument _ -> ()
                  | t ->
                      let s = Tile_size.tile_stats t in
                      if s.footprint_box <= 4096 then
                        Alcotest.(check bool) "no better ratio exists" true
                          (s.ratio >= c.stats.ratio -. 1e-12))
                [ 8; 16 ])
            [ 2; 4 ])
        [ 1; 3 ]

let test_select_infeasible () =
  Alcotest.(check bool) "tiny budget -> None" true
    (Tile_size.select Suite.heat2d ~h_candidates:[ 1 ] ~w0_candidates:[ 2 ]
       ~wi_candidates:[ [ 8 ] ] ~shared_mem_floats:1 ()
    = None)

let test_render () =
  let hex = Hexagon.make ~h:2 ~w0:3 unit_cone in
  let s = Render.tile hex in
  Alcotest.(check bool) "render nonempty" true (String.length s > 0);
  let hs = Hex_schedule.make hex in
  let p = Render.pattern hs ~u_range:(0, 5) ~s0_range:(0, 20) in
  Alcotest.(check bool) "pattern mentions phases" true
    (String.length p > 0 && String.contains p 'A' && String.contains p 'a')

(* random tile sizes on a real stencil: legality must hold for any
   admissible (h, w) *)
let prop_hybrid_legality_random_sizes =
  QCheck.Test.make ~name:"hybrid legal for random (h,w) on jacobi2d" ~count:8
    QCheck.(triple (int_range 0 4) (int_range 0 3) (int_range 1 6))
    (fun (h, w0extra, w1) ->
      let prog = Suite.jacobi2d in
      let deps = Dep.analyze prog in
      let c = Cone.of_deps deps ~dim:0 in
      let w0 = Hexagon.min_w0 ~h c + w0extra in
      let t = Hybrid.make prog ~h ~w:[| max 1 w0; w1 |] in
      let env p = List.assoc p [ ("N", 14); ("T", 6) ] in
      Hybrid.check_legality t env = Ok ())

let prop_tile_poly_matches_points =
  QCheck.Test.make ~name:"tile polyhedron = tile points" ~count:30
    (QCheck.pair arb_hex (QCheck.pair (QCheck.int_range (-2) 2) (QCheck.int_range (-2) 2)))
    (fun (hex, (tt, s_tile)) ->
      let hs = Hex_schedule.make hex in
      List.for_all
        (fun phase ->
          let poly = Hex_schedule.tile_poly hs ~phase ~tt ~s_tile in
          let from_poly =
            List.map (fun p -> (p.(0), p.(1))) (Hextile_poly.Polyhedron.enumerate poly)
          in
          let pts = List.sort compare (Hex_schedule.tile_points hs ~phase ~tt ~s_tile) in
          List.sort compare from_poly = pts)
        [ 0; 1 ])

let test_diamond_counts () =
  (* even tau: all diamonds identical; odd tau > 1: counts vary — the
     divergence hazard of Section 5 *)
  Alcotest.(check (list int)) "tau=4 identical" [ 8 ]
    (Diamond.count_spectrum (Diamond.make ~tau:4));
  Alcotest.(check (list int)) "tau=2 identical" [ 2 ]
    (Diamond.count_spectrum (Diamond.make ~tau:2));
  let odd = Diamond.count_spectrum (Diamond.make ~tau:3) in
  Alcotest.(check bool) "tau=3 varies" true (List.length odd > 1);
  (* hexagonal tiles never vary (prop_count_identical); diamonds with the
     same slopes do — print-check the exact spectrum *)
  Alcotest.(check (list int)) "tau=3 spectrum {4,5}" [ 4; 5 ] odd

let test_diamond_tile_points () =
  let d = Diamond.make ~tau:3 in
  List.iter
    (fun (a, b) ->
      let pts = Diamond.tile_points d ~a ~b in
      Alcotest.(check int) "count agrees" (Diamond.count d ~a ~b) (List.length pts);
      List.iter
        (fun (t', s) ->
          Alcotest.(check (pair int int)) "tile_of roundtrip" (a, b)
            (Diamond.tile_of d ~t' ~s))
        pts)
    [ (0, 0); (1, -1); (2, 3) ]

let test_diamond_wavefront () =
  Alcotest.(check bool) "jacobi deps legal" true
    (Diamond.wavefront_legal (Diamond.make ~tau:4)
       ~deltas:[ (1, 1); (1, -1); (1, 0); (2, 0) ]);
  Alcotest.(check bool) "too-fast dep illegal" false
    (Diamond.wavefront_legal (Diamond.make ~tau:4) ~deltas:[ (1, 2) ])

let prop_diamond_partition =
  QCheck.Test.make ~name:"diamonds partition the plane" ~count:50
    QCheck.(pair (int_range 1 6) (pair (int_range (-20) 20) (int_range (-20) 20)))
    (fun (tau, (t', s)) ->
      let d = Diamond.make ~tau in
      let a, b = Diamond.tile_of d ~t' ~s in
      List.mem (t', s) (Diamond.tile_points d ~a ~b))

(* ---- staged tile-size search vs the frozen exhaustive oracle ---------- *)

let grids_for (prog : Hextile_ir.Stencil.t) =
  let dims = Hextile_ir.Stencil.spatial_dims prog in
  let wi =
    List.init (dims - 1) (fun d -> if d = dims - 2 then [ 8; 16; 32 ] else [ 2; 4 ])
  in
  ([ 1; 2; 3; 5 ], [ 2; 4; 6 ], wi)

let check_same_choice name a b =
  match (a, b) with
  | None, None -> ()
  | Some (ca : Tile_size.choice), Some (cb : Tile_size.choice) ->
      Alcotest.(check int) (name ^ ": h") ca.h cb.h;
      Alcotest.(check (array int)) (name ^ ": w") ca.w cb.w;
      Alcotest.(check int) (name ^ ": iterations") ca.stats.iterations
        cb.stats.iterations;
      Alcotest.(check int) (name ^ ": loads") ca.stats.loads cb.stats.loads;
      Alcotest.(check int) (name ^ ": stores") ca.stats.stores cb.stats.stores;
      Alcotest.(check int) (name ^ ": footprint") ca.stats.footprint_box
        cb.stats.footprint_box;
      Alcotest.(check bool)
        (name ^ ": ratio bit-identical")
        true
        (Int64.equal
           (Int64.bits_of_float ca.stats.ratio)
           (Int64.bits_of_float cb.stats.ratio))
  | Some _, None -> Alcotest.failf "%s: staged found a choice, oracle none" name
  | None, Some _ -> Alcotest.failf "%s: oracle found a choice, staged none" name

let test_staged_matches_exhaustive_table3 () =
  List.iter
    (fun (prog : Hextile_ir.Stencil.t) ->
      let hc, w0c, wi = grids_for prog in
      let oracle =
        Tile_size.select_exhaustive prog ~h_candidates:hc ~w0_candidates:w0c
          ~wi_candidates:wi ~shared_mem_floats:4096 ~require_multiple:8 ()
      in
      let staged, report =
        Tile_size.select_with_report prog ~h_candidates:hc ~w0_candidates:w0c
          ~wi_candidates:wi ~shared_mem_floats:4096 ~require_multiple:8 ()
      in
      check_same_choice (prog.name ^ " (seq)") staged oracle;
      Alcotest.(check bool)
        (prog.name ^ ": evals <= candidates")
        true
        (report.exact_evals <= report.candidates
        && report.exact_evals + report.pruned_infeasible + report.pruned_dominated
           = report.candidates);
      (* a worker pool must not change the choice or the counters *)
      Hextile_par.Par.with_pool ~jobs:2 (fun pool ->
          let staged_par, report_par =
            Tile_size.select_with_report ~pool prog ~h_candidates:hc
              ~w0_candidates:w0c ~wi_candidates:wi ~shared_mem_floats:4096
              ~require_multiple:8 ()
          in
          check_same_choice (prog.name ^ " (par)") staged_par oracle;
          Alcotest.(check bool)
            (prog.name ^ ": report jobs-invariant")
            true
            (report = report_par)))
    Suite.table3

let test_staged_matches_exhaustive_fuzzed () =
  let rng = Hextile_check.Rng.create 0x7113512e in
  for i = 0 to 11 do
    let prog, _params = Hextile_check.Gen.generate (Hextile_check.Rng.derive rng i) in
    let dims = Hextile_ir.Stencil.spatial_dims prog in
    let wi = List.init (dims - 1) (fun _ -> [ 1; 2; 4 ]) in
    let hc = [ 0; 1; 2; 3; 5 ] and w0c = [ 1; 2; 4 ] in
    let oracle =
      Tile_size.select_exhaustive prog ~h_candidates:hc ~w0_candidates:w0c
        ~wi_candidates:wi ~shared_mem_floats:2048 ()
    in
    let staged =
      Tile_size.select prog ~h_candidates:hc ~w0_candidates:w0c ~wi_candidates:wi
        ~shared_mem_floats:2048 ()
    in
    check_same_choice (Fmt.str "fuzz #%d %s (seq)" i prog.name) staged oracle;
    Hextile_par.Par.with_pool ~jobs:2 (fun pool ->
        let staged_par =
          Tile_size.select ~pool prog ~h_candidates:hc ~w0_candidates:w0c
            ~wi_candidates:wi ~shared_mem_floats:2048 ()
        in
        check_same_choice (Fmt.str "fuzz #%d %s (par)" i prog.name) staged_par oracle)
  done

(* dense-bitset accounting vs the hashtable reference, all benchmarks *)
let test_dense_stats_match_ref () =
  List.iter
    (fun (prog : Hextile_ir.Stencil.t) ->
      let k = List.length prog.stmts in
      let h = (2 * k) - 1 in
      let deps = Dep.analyze prog in
      let c = Cone.of_deps deps ~dim:0 in
      let w0 = max 2 (Hexagon.min_w0 ~h c) in
      let t = hybrid_of prog h [ w0 ] in
      let d = Tile_size.tile_stats t and r = Tile_size.tile_stats_ref t in
      Alcotest.(check int) (prog.name ^ ": iterations") r.iterations d.iterations;
      Alcotest.(check int) (prog.name ^ ": loads") r.loads d.loads;
      Alcotest.(check int) (prog.name ^ ": stores") r.stores d.stores;
      Alcotest.(check int) (prog.name ^ ": footprint") r.footprint_box
        d.footprint_box)
    Suite.all

let prop_dense_stats_match_ref_random =
  QCheck.Test.make ~name:"dense tile stats = reference on random sizes" ~count:20
    QCheck.(triple (int_range 0 4) (int_range 0 3) (int_range 1 8))
    (fun (h, w0extra, w1) ->
      let prog = Suite.jacobi2d in
      let deps = Dep.analyze prog in
      let c = Cone.of_deps deps ~dim:0 in
      let w0 = max 1 (Hexagon.min_w0 ~h c + w0extra) in
      let t = Hybrid.make prog ~h ~w:[| w0; w1 |] in
      Tile_size.tile_stats t = Tile_size.tile_stats_ref t)

(* the paper's closed form agrees with exact enumeration on every 3D
   benchmark across a grid of sizes (they all have δ0 = δ1 = 1) *)
let test_formula_3d_matches_enumeration () =
  List.iter
    (fun (prog : Hextile_ir.Stencil.t) ->
      List.iter
        (fun h ->
          List.iter
            (fun w0 ->
              List.iter
                (fun w1 ->
                  List.iter
                    (fun w2 ->
                      let t = Hybrid.make prog ~h ~w:[| w0; w1; w2 |] in
                      let s = Tile_size.tile_stats t in
                      Alcotest.(check int)
                        (Fmt.str "%s h=%d w=(%d,%d,%d)" prog.name h w0 w1 w2)
                        (Tile_size.iterations_formula_3d ~h ~w0 ~w1 ~w2)
                        s.iterations)
                    [ 4; 8 ])
                [ 2; 3 ])
            [ 2; 5 ])
        [ 1; 2 ])
    (List.filter
       (fun (p : Hextile_ir.Stencil.t) -> Hextile_ir.Stencil.spatial_dims p = 3)
       Suite.table3)

(* ---- per-class clipped closed forms (analytic mode) -------------------- *)

(* A tiny deterministic LCG so the clip patterns below are reproducible
   without threading QCheck state through hslice construction. *)
let lcg seed =
  let s = ref seed in
  fun bound ->
    s := ((!s * 1103515245) + 12345) land 0x3FFFFFFF;
    !s mod bound

(* The closed forms must agree with dense enumeration on boundary-heavy
   clip patterns: rows clipped past empty, rows with no work at all
   ([None]), asymmetric left/right clipping — the shapes the analytic
   engine meets on domain edges where extents are not divisible by
   (h, w). *)
let test_class_forms_match_dense () =
  List.iter
    (fun (prog, hws) ->
      let cx = Tile_model.ctx prog in
      List.iter
        (fun (h, w0) ->
          let hs = Tile_model.hslice cx ~h ~w0 in
          let nrows = Array.length hs.Tile_model.rows in
          for trial = 0 to 19 do
            let rand = lcg ((997 * trial) + (31 * h) + w0) in
            let clips =
              Array.map
                (fun (r : Tile_model.row) ->
                  if rand 5 = 0 then None
                  else begin
                    let len = r.Tile_model.bhi - r.Tile_model.blo + 1 in
                    (* up to len+2: clipping past empty must clamp to 0 *)
                    Some
                      {
                        Tile_model.cleft = rand (len + 2);
                        cright = rand (len + 2);
                      }
                  end)
                hs.Tile_model.rows
            in
            let live (r : Tile_model.row) = r.Tile_model.a mod 3 <> 1 in
            let inner (r : Tile_model.row) = 1 + (r.Tile_model.a mod 4) in
            let lbl =
              Fmt.str "%s h=%d w0=%d trial=%d (%d rows)"
                prog.Hextile_ir.Stencil.name h w0 trial nrows
            in
            Alcotest.(check int)
              (lbl ^ ": columns")
              (Tile_model.class_columns_dense hs ~clips)
              (Tile_model.class_columns hs ~clips);
            Alcotest.(check int)
              (lbl ^ ": syncs")
              (Tile_model.class_syncs_dense hs ~clips ~live)
              (Tile_model.class_syncs hs ~clips ~live);
            Alcotest.(check int)
              (lbl ^ ": stores")
              (Tile_model.class_stores_dense hs ~clips ~inner)
              (Tile_model.class_stores hs ~clips ~inner)
          done)
        hws)
    [
      (Suite.heat2d, [ (1, 2); (3, 4); (2, 1) ]);
      (Suite.fdtd2d, [ (2, 3); (5, 2) ]);
      (Suite.heat3d, [ (2, 7); (1, 1) ]);
    ]

(* Bank-conflict count of storing n consecutive words is independent of
   the base word — the property that lets a class representative's
   shared-store transaction counts stand for every translated member. *)
let prop_store_tx_base_independent =
  QCheck.Test.make ~name:"store_row_transactions = dense, any base" ~count:300
    QCheck.(
      quad (int_range 0 200) (int_range (-64) 192) (int_range 1 3) bool)
    (fun (n, base, banks_sel, wide) ->
      let banks = [| 8; 16; 32 |].(banks_sel - 1) in
      let lanes = if wide then 32 else 16 in
      Tile_model.store_row_transactions ~n ~banks ~lanes
      = Tile_model.store_row_transactions_dense ~base ~n ~banks ~lanes)

(* Window counts and coverage against dense tile enumeration, on shapes
   chosen to leave remainders: extents not divisible by the width,
   degenerate one-tile grids and 3D-style short extents. *)
let test_tiles_coverage_match_dense () =
  List.iter
    (fun (num, den, w) ->
      let c = Classical.make ~delta1:(Rat.make num den) ~w in
      List.iter
        (fun (lo, hi) ->
          for u_max = 0 to 6 do
            for u = 0 to u_max do
              let lbl =
                Fmt.str "δ1=%d/%d w=%d [%d,%d] u=%d/%d" num den w lo hi u u_max
              in
              Alcotest.(check int)
                (lbl ^ ": tiles_nonempty")
                (Tile_model.tiles_nonempty_dense c ~u_max ~u ~lo ~hi)
                (Tile_model.tiles_nonempty c ~u ~lo ~hi);
              Alcotest.(check int)
                (lbl ^ ": coverage")
                (Tile_model.coverage_dense c ~u_max ~u ~lo ~hi)
                (Tile_model.coverage ~lo ~hi)
            done
          done)
        [
          (0, 6);  (* 7 points: not divisible by w=2,3,4,5 *)
          (0, 0);  (* degenerate single point *)
          (2, 2);
          (0, 9);  (* 3D-style short extent with remainder *)
          (1, 7);
          (3, 1);  (* empty interval *)
        ])
    [ (0, 1, 3); (1, 1, 2); (1, 2, 4); (2, 1, 5); (3, 2, 1) ]

let test_dep_memo_shared () =
  let a = Dep.analyze Suite.heat2d in
  let b = Dep.analyze Suite.heat2d in
  Alcotest.(check bool) "memoized analyze returns the shared list" true (a == b);
  let u = Dep.analyze_uncached Suite.heat2d in
  Alcotest.(check bool) "uncached result is fresh but equal" true
    (u = a && not (u == a))

let suite =
  [
    Alcotest.test_case "min_w0 (condition (1))" `Quick test_min_w0_paper_example;
    Alcotest.test_case "Figure 4 shape" `Quick test_figure4_shape;
    Alcotest.test_case "hexagon validation" `Quick test_make_validation;
    QCheck_alcotest.to_alcotest prop_count_identical;
    QCheck_alcotest.to_alcotest prop_partition;
    QCheck_alcotest.to_alcotest prop_hex_legality;
    QCheck_alcotest.to_alcotest prop_tile_points_roundtrip;
    QCheck_alcotest.to_alcotest prop_qmap_matches;
    Alcotest.test_case "classical roundtrip" `Quick test_classical_roundtrip;
    QCheck_alcotest.to_alcotest prop_classical_monotone;
    Alcotest.test_case "classical validation" `Quick test_classical_validation;
    Alcotest.test_case "classical tile_range" `Quick test_classical_tile_range;
    Alcotest.test_case "hybrid legality (all benchmarks)" `Slow test_hybrid_legality_all;
    Alcotest.test_case "hybrid h+1 multiple of k" `Quick test_hybrid_h_multiple;
    Alcotest.test_case "hybrid width count" `Quick test_hybrid_wrong_width_count;
    Alcotest.test_case "hybrid coords roundtrip" `Quick test_hybrid_coords_roundtrip;
    Alcotest.test_case "hybrid vector order" `Quick test_hybrid_vector_order;
    Alcotest.test_case "instance_u helpers" `Quick test_instance_u;
    Alcotest.test_case "tile stats = Sec 3.7 formula" `Quick test_tile_stats_formula;
    Alcotest.test_case "tile stats 2D" `Quick test_tile_stats_2d;
    Alcotest.test_case "tile size selection" `Quick test_select;
    Alcotest.test_case "selection warp alignment" `Quick test_select_alignment;
    Alcotest.test_case "selection infeasible budget" `Quick test_select_infeasible;
    Alcotest.test_case "selection deterministic" `Quick test_select_deterministic;
    Alcotest.test_case "selection ratio recomputed" `Quick
      test_select_ratio_recomputed;
    Alcotest.test_case "renders" `Quick test_render;
    QCheck_alcotest.to_alcotest prop_hybrid_legality_random_sizes;
    Alcotest.test_case "diamond count variability (Sec 5)" `Quick test_diamond_counts;
    Alcotest.test_case "diamond tile points" `Quick test_diamond_tile_points;
    Alcotest.test_case "diamond wavefront legality" `Quick test_diamond_wavefront;
    QCheck_alcotest.to_alcotest prop_diamond_partition;
    QCheck_alcotest.to_alcotest prop_tile_poly_matches_points;
    Alcotest.test_case "staged select = exhaustive (Table 3)" `Slow
      test_staged_matches_exhaustive_table3;
    Alcotest.test_case "staged select = exhaustive (fuzzed)" `Slow
      test_staged_matches_exhaustive_fuzzed;
    Alcotest.test_case "dense stats = reference (all benchmarks)" `Quick
      test_dense_stats_match_ref;
    QCheck_alcotest.to_alcotest prop_dense_stats_match_ref_random;
    Alcotest.test_case "3D iteration formula = enumeration" `Quick
      test_formula_3d_matches_enumeration;
    Alcotest.test_case "dependence analysis memoized" `Quick test_dep_memo_shared;
    Alcotest.test_case "class closed forms = dense (clipped)" `Quick
      test_class_forms_match_dense;
    QCheck_alcotest.to_alcotest prop_store_tx_base_independent;
    Alcotest.test_case "tiles/coverage closed forms = dense" `Quick
      test_tiles_coverage_match_dense;
  ]
