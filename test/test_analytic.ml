(* Differential validation of the analytic (hierarchical) simulation
   mode against the exact engine: on the scaled Table 3 suite and on
   fuzzed programs, [Hybrid_exec.run ~analytic:true] must reproduce the
   exact run's grids and every counter bit for bit — except the two
   DRAM fields, which come from the compressed-trace L2 model and must
   stay within [Analytic.dram_error_bound] (the bound itself is
   asserted, not just logged). When the mode's preconditions fail (no
   single line-aligned s0 stride, e.g. N=48 in 2D or any 1D program),
   it must degrade to the exact path: everything bit-equal, zero
   analytic blocks. *)

open Hextile_gpusim
module Grid = Hextile_ir.Grid
module Common = Hextile_schemes.Common
module Hybrid_exec = Hextile_schemes.Hybrid_exec
module Suite = Hextile_stencils.Suite
module E = Hextile_experiments.Experiments
module Check = Hextile_check

module Par = Hextile_par.Par

let dev = Device.gtx470

let dram_keys = [ "dram_read_transactions"; "dram_write_transactions" ]
let is_dram k = List.mem k dram_keys

let grids_sig (r : Common.result) =
  Hashtbl.fold
    (fun name (g : Grid.t) acc ->
      (name, Array.map Int64.bits_of_float g.Grid.data) :: acc)
    r.grids []
  |> List.sort compare

(* Exact-vs-analytic comparison of one hybrid run. [expect_scaled]
   asserts that the analytic mode actually scaled blocks (rather than
   silently degrading); [Some false] asserts the degradation — in which
   case the whole result, DRAM included, must be bit-equal. *)
let check_pair ~label ?(expect_scaled = None) prog env devi =
  let e x = List.assoc x env in
  let exact = Hybrid_exec.run prog e devi in
  let analytic = Hybrid_exec.run ~analytic:true prog e devi in
  if grids_sig exact <> grids_sig analytic then
    Alcotest.failf "%s: grids differ between exact and analytic" label;
  Alcotest.(check int) (label ^ ": updates") exact.updates analytic.updates;
  Alcotest.(check int) (label ^ ": blocks") exact.blocks analytic.blocks;
  let ce = Counters.to_assoc exact.counters
  and ca = Counters.to_assoc analytic.counters in
  List.iter2
    (fun (k, ve) (k', va) ->
      assert (k = k');
      if not (is_dram k) then
        Alcotest.(check int) (Fmt.str "%s: %s" label k) ve va
      else begin
        let err =
          float_of_int (abs (va - ve)) /. float_of_int (max 1 ve)
        in
        if err > Analytic.dram_error_bound then
          Alcotest.failf "%s: %s relative error %.4f exceeds bound %.4f"
            label k err Analytic.dram_error_bound;
        (* a degraded run took the exact code path: no error at all *)
        if analytic.classes = 0 then
          Alcotest.(check int) (Fmt.str "%s: %s (degraded)" label k) ve va
      end)
    ce ca;
  (match expect_scaled with
  | Some true ->
      Alcotest.(check bool)
        (label ^ ": blocks were scaled analytically")
        true
        (analytic.blocks_analytic > 0 && analytic.classes > 0)
  | Some false ->
      Alcotest.(check int) (label ^ ": no analytic blocks") 0
        analytic.blocks_analytic;
      Alcotest.(check int) (label ^ ": no classes") 0 analytic.classes
  | None -> ());
  analytic

(* The bound is part of the module's documented contract: a silent
   loosening would weaken every assertion above, so pin its value. *)
let test_bound_value () =
  Alcotest.(check (float 1e-12)) "dram_error_bound" 0.5 Analytic.dram_error_bound

let test_table3_scaled () =
  List.iter
    (fun (prog : Hextile_ir.Stencil.t) ->
      let env = E.sizes ~quick:true prog in
      ignore
        (check_pair ~label:prog.name ~expect_scaled:(Some true) prog env dev))
    Suite.table3

(* N=48 in 2D: 4·stride0 = 192 is not a whole number of 128-byte lines,
   so class translation is not a cache bijection and the mode must
   degrade to the exact path. Same for 1D (stride0 = 1). *)
let test_fallback_exact () =
  ignore
    (check_pair ~label:"heat2d/N48" ~expect_scaled:(Some false) Suite.heat2d
       [ ("N", 48); ("T", 8) ]
       dev);
  ignore
    (check_pair ~label:"heat1d" ~expect_scaled:(Some false) Suite.heat1d
       [ ("N", 512); ("T", 16) ]
       dev)

(* Analytic runs skip the reference interpreter at full size; at test
   size, close the loop: the analytic grids must equal the reference. *)
let test_analytic_vs_reference () =
  let prog = Suite.laplacian2d in
  let env = E.sizes ~quick:true prog in
  let e x = List.assoc x env in
  let r = Hybrid_exec.run ~analytic:true prog e dev in
  Alcotest.(check bool) "scaled" true (r.blocks_analytic > 0);
  let reference = Hextile_ir.Interp.run prog e in
  Hashtbl.iter
    (fun name g ->
      Alcotest.(check bool)
        (Fmt.str "array %s equals reference" name)
        true
        (Grid.equal g (Grid.find reference name)))
    r.grids

let test_fuzzed_programs () =
  let rng = Check.Rng.create 318 in
  let scaled = ref 0 in
  for i = 0 to 7 do
    let prog, env = Check.Gen.generate (Check.Rng.derive rng i) in
    (* the generator's own sizes (small, line-unaligned: these exercise
       the degradation and boundary paths) ... *)
    let r =
      check_pair ~label:(Fmt.str "fuzz#%d(%s)" i prog.name) prog env dev
    in
    if r.blocks_analytic > 0 then incr scaled;
    (* ... and a line-aligned N (4·stride0 a whole number of 128-byte
       lines), which is what lets fuzzed program *shapes* reach the
       scaling path at all *)
    let n_aligned =
      match Hextile_ir.Stencil.spatial_dims prog with
      | 1 -> 32 (* stride0 = 1: still degrades, by design *)
      | 2 -> 32
      | _ -> 8 (* stride0 = 64 *)
    in
    let env' = ("N", n_aligned) :: List.remove_assoc "N" env in
    let r' =
      check_pair ~label:(Fmt.str "fuzz#%d(%s)/aligned" i prog.name) prog env'
        dev
    in
    if r'.blocks_analytic > 0 then incr scaled
  done;
  (* the campaign must actually exercise the scaling path, not just
     degraded runs *)
  Alcotest.(check bool) "some fuzzed runs scaled" true (!scaled > 0)

(* Analytic mode under a pool: representative instancing, block scaling
   and the compressed-trace L2 replay are jobs-invariant. Grids and
   every counter — the DRAM fields included, since the compressed
   replay runs sequentially on the launch domain — plus the class and
   analytic-block counts must be bit-identical at jobs 1, 2 and 4. *)
let test_analytic_jobs_deterministic () =
  List.iter
    (fun (prog : Hextile_ir.Stencil.t) ->
      let env = E.sizes ~quick:true prog in
      let e x = List.assoc x env in
      let seq = Hybrid_exec.run ~analytic:true prog e dev in
      List.iter
        (fun jobs ->
          Par.with_pool ~jobs (fun pool ->
              let r = Hybrid_exec.run ~pool ~analytic:true prog e dev in
              if grids_sig seq <> grids_sig r then
                Alcotest.failf "%s/jobs%d: grids differ from jobs1" prog.name
                  jobs;
              Alcotest.(check (list (pair string int)))
                (Fmt.str "%s/jobs%d: counters" prog.name jobs)
                (Counters.to_assoc seq.counters)
                (Counters.to_assoc r.counters);
              Alcotest.(check int)
                (Fmt.str "%s/jobs%d: updates" prog.name jobs)
                seq.updates r.updates;
              Alcotest.(check int)
                (Fmt.str "%s/jobs%d: classes" prog.name jobs)
                seq.classes r.classes;
              Alcotest.(check int)
                (Fmt.str "%s/jobs%d: blocks_analytic" prog.name jobs)
                seq.blocks_analytic r.blocks_analytic))
        [ 2; 4 ])
    Suite.table3

let suite =
  [
    Alcotest.test_case "dram error bound value" `Quick test_bound_value;
    Alcotest.test_case "table3: analytic = exact (scaled sizes)" `Slow
      test_table3_scaled;
    Alcotest.test_case "preconditions fail => exact path" `Quick
      test_fallback_exact;
    Alcotest.test_case "analytic grids = reference interpreter" `Quick
      test_analytic_vs_reference;
    Alcotest.test_case "fuzzed programs: analytic = exact" `Slow
      test_fuzzed_programs;
    Alcotest.test_case "analytic: bit-identical at jobs 1/2/4" `Slow
      test_analytic_jobs_deterministic;
  ]
