(* Tests for the wall-clock timeline recorder: histogram arithmetic,
   disabled no-op behaviour, slice aggregation, overflow accounting,
   Chrome trace export, worker-track labelling — and the contract that
   matters most: recording never perturbs a deterministic output
   (counters, grids, Obs traces) at any --jobs value. *)

open Hextile_gpusim
module Grid = Hextile_ir.Grid
module Par = Hextile_par.Par
module Obs = Hextile_obs.Obs
module Hist = Hextile_obs.Hist
module Json = Hextile_obs.Json
module Timeline = Hextile_obs.Timeline
module Experiments = Hextile_experiments.Experiments

(* Every test starts from a clean recorder and leaves it off so
   timeline state never leaks into other suites. *)
let with_tl ?capacity f () =
  Timeline.disable ();
  Timeline.enable ?capacity ();
  Fun.protect ~finally:Timeline.disable f

(* ---- histograms ------------------------------------------------------- *)

let test_hist_basics () =
  let h = Hist.create () in
  Alcotest.(check int) "empty count" 0 (Hist.count h);
  Alcotest.(check (float 0.0)) "empty min" 0.0 (Hist.min_s h);
  Alcotest.(check (float 0.0)) "empty max" 0.0 (Hist.max_s h);
  let durs = [ 1e-6; 2e-6; 4e-6; 1e-3; 0.5 ] in
  List.iter (Hist.add h) durs;
  Alcotest.(check int) "count" (List.length durs) (Hist.count h);
  Alcotest.(check (float 1e-12))
    "sum" (List.fold_left ( +. ) 0.0 durs) (Hist.sum_s h);
  Alcotest.(check (float 1e-12)) "min" 1e-6 (Hist.min_s h);
  Alcotest.(check (float 1e-12)) "max" 0.5 (Hist.max_s h);
  (* quantiles are monotone in q and clamped to the observed range *)
  let qs = List.map (Hist.quantile h) [ 0.0; 0.25; 0.5; 0.9; 1.0 ] in
  List.iter
    (fun q ->
      Alcotest.(check bool) "quantile within range" true
        (q >= Hist.min_s h && q <= Hist.max_s h))
    qs;
  ignore
    (List.fold_left
       (fun prev q ->
         Alcotest.(check bool) "quantiles monotone" true (q >= prev);
         q)
       0.0 qs)

let test_hist_merge () =
  let a = Hist.create () and b = Hist.create () in
  List.iter (Hist.add a) [ 1e-6; 1e-3 ];
  List.iter (Hist.add b) [ 2e-6; 0.25 ];
  Hist.merge a b;
  Alcotest.(check int) "merged count" 4 (Hist.count a);
  Alcotest.(check (float 1e-12)) "merged min" 1e-6 (Hist.min_s a);
  Alcotest.(check (float 1e-12)) "merged max" 0.25 (Hist.max_s a);
  Alcotest.(check int) "src unchanged" 2 (Hist.count b);
  match Json.parse (Json.to_string (Hist.to_json a)) with
  | Ok _ -> ()
  | Error e -> Alcotest.failf "hist JSON does not parse: %s" e

(* ---- recorder basics -------------------------------------------------- *)

let test_disabled_noop () =
  Timeline.disable ();
  Alcotest.(check bool) "disabled" false (Timeline.enabled ());
  (* none of these may raise or record *)
  Timeline.begin_ "ghost";
  Timeline.instant ~arg:1.0 "ghost_i";
  Timeline.end_ ();
  Timeline.end_ ();
  Timeline.flow_s 1;
  Timeline.flow_f 1;
  Alcotest.(check int) "nothing dropped" 0 (Timeline.dropped ());
  let su = Timeline.summary () in
  Alcotest.(check int) "no tracks" 0 (List.length su.Timeline.su_tracks)

let test_slice_aggregation =
  with_tl (fun () ->
      Timeline.slice ~arg:2.0 "outer" (fun () ->
          Timeline.slice "inner" ignore;
          Timeline.slice "inner" ignore);
      Timeline.slice ~arg:3.0 "outer" ignore;
      Timeline.instant ~arg:10.0 "mark";
      let su = Timeline.summary () in
      (match su.Timeline.su_tracks with
      | [ tk ] ->
          Alcotest.(check string) "main track" "main" tk.Timeline.tk_name;
          let tot name =
            List.find (fun s -> s.Timeline.sl_name = name) tk.Timeline.tk_slices
          in
          Alcotest.(check int) "outer count" 2 (tot "outer").Timeline.sl_count;
          Alcotest.(check int) "inner count" 2 (tot "inner").Timeline.sl_count
      | tks -> Alcotest.failf "expected one track, got %d" (List.length tks));
      (* args are deterministic even though times are not *)
      Alcotest.(check (float 1e-9)) "arg sum" 5.0 (Timeline.arg_sum su "outer");
      Alcotest.(check (float 1e-9)) "instant arg" 10.0 (Timeline.arg_sum su "mark");
      (* exclusive time excludes children, inclusive contains them *)
      Alcotest.(check bool) "incl >= excl >= 0" true
        (Timeline.incl_s su "outer" >= Timeline.excl_s su "outer"
        && Timeline.excl_s su "outer" >= 0.0);
      Alcotest.(check bool) "incl(outer) >= incl(inner)" true
        (Timeline.incl_s su "outer" >= Timeline.incl_s su "inner");
      (* every closed slice fed the latency histogram *)
      let hist name = List.assoc name su.Timeline.su_hist in
      Alcotest.(check int) "outer hist" 2 (Hist.count (hist "outer"));
      Alcotest.(check int) "inner hist" 2 (Hist.count (hist "inner")))

let test_open_slice_closed_at_last_ts =
  with_tl (fun () ->
      Timeline.begin_ "never_closed";
      Timeline.instant "later";
      let su = Timeline.summary () in
      Alcotest.(check bool) "open slice still aggregated" true
        (Timeline.incl_s su "never_closed" >= 0.0);
      Timeline.end_ ())

let test_overflow_drops_and_counts =
  with_tl ~capacity:8 (fun () ->
      for i = 1 to 100 do
        Timeline.instant ~arg:(float_of_int i) "burst"
      done;
      Alcotest.(check bool) "drops counted" true (Timeline.dropped () > 0);
      let su = Timeline.summary () in
      Alcotest.(check int) "summary reports drops" (Timeline.dropped ())
        su.Timeline.su_dropped;
      (* drop-newest: the recorded prefix is instants 1..8 *)
      Alcotest.(check (float 1e-9)) "prefix kept, newest dropped" 36.0
        (Timeline.arg_sum su "burst"))

let test_reenable_resets =
  with_tl ~capacity:8 (fun () ->
      for _ = 1 to 100 do
        Timeline.instant "burst"
      done;
      Alcotest.(check bool) "saturated" true (Timeline.dropped () > 0);
      Timeline.enable ();
      Alcotest.(check int) "re-enable clears drops" 0 (Timeline.dropped ());
      Timeline.instant ~arg:7.0 "fresh";
      let su = Timeline.summary () in
      Alcotest.(check (float 1e-9)) "old events gone" 0.0
        (Timeline.arg_sum su "burst");
      Alcotest.(check (float 1e-9)) "new events recorded" 7.0
        (Timeline.arg_sum su "fresh"))

(* ---- chrome export ---------------------------------------------------- *)

let trace_events path =
  match Json.parse (In_channel.with_open_text path In_channel.input_all) with
  | Error e -> Alcotest.failf "trace is not valid JSON: %s" e
  | Ok doc ->
      Option.get (Json.to_list (Option.get (Json.member "traceEvents" doc)))

let event_str name e = Option.bind (Json.member name e) Json.to_str

let test_chrome_export =
  with_tl (fun () ->
      Timeline.slice ~arg:1.5 "work" (fun () -> Timeline.slice "sub" ignore);
      Timeline.instant "tick";
      let fid = Timeline.flow_id () in
      Timeline.flow_s fid;
      Timeline.flow_f fid;
      let path = Filename.temp_file "hextile_trace" ".json" in
      Fun.protect ~finally:(fun () -> Sys.remove path) @@ fun () ->
      Timeline.write_chrome path;
      let ev = trace_events path in
      let phase p = List.filter (fun e -> event_str "ph" e = Some p) ev in
      Alcotest.(check int) "begins match ends" (List.length (phase "B"))
        (List.length (phase "E"));
      Alcotest.(check int) "two slices" 2 (List.length (phase "B"));
      Alcotest.(check int) "one instant" 1 (List.length (phase "i"));
      Alcotest.(check int) "flow start" 1 (List.length (phase "s"));
      Alcotest.(check int) "flow finish" 1 (List.length (phase "f"));
      let thread_names =
        List.filter_map
          (fun e ->
            if event_str "name" e = Some "thread_name" then
              Option.bind (Json.member "args" e) (Json.member "name")
              |> Fun.flip Option.bind Json.to_str
            else None)
          ev
      in
      Alcotest.(check (list string)) "one named track" [ "main" ] thread_names)

let test_worker_tracks_labelled =
  with_tl (fun () ->
      Par.with_pool ~jobs:3 (fun p ->
          Par.iter p
            (fun _ -> Timeline.instant "task_mark")
            (Array.init 64 Fun.id));
      let su = Timeline.summary () in
      let names =
        List.map (fun tk -> tk.Timeline.tk_name) su.Timeline.su_tracks
      in
      Alcotest.(check bool) "main track present" true (List.mem "main" names);
      List.iter
        (fun n ->
          Alcotest.(check bool)
            (Fmt.str "track %s is main or worker-N" n)
            true
            (n = "main" || String.length n > 7 && String.sub n 0 7 = "worker-"))
        names;
      Alcotest.(check bool) "some worker recorded" true
        (List.exists (fun n -> n <> "main") names))

(* ---- recording never perturbs deterministic outputs ------------------- *)

let some_addrs l = Array.of_list (List.map (fun x -> Some x) l)

(* Same shape as the test_par counter workload: block-dependent global
   traffic through a small L2, shared accesses and barriers. *)
let sim_counters pool =
  let s = Sim.create { Device.gtx470 with l2_bytes = 8192 } in
  Sim.launch ?pool s ~name:"k" ~blocks:16 ~threads:32 ~shared_bytes:256
    ~f:(fun b ->
      let addrs k =
        some_addrs (List.init 32 (fun i -> 4 * ((b * 64) + (k * 32) + i)))
      in
      Sim.global_load_warp s (addrs 0);
      Sim.global_store_warp s (addrs 1);
      let tids = Array.init 32 Fun.id in
      Sim.shared_store_warp s ~tids (some_addrs (List.init 32 Fun.id));
      Sim.sync s;
      Sim.shared_load_warp s ~tids (some_addrs (List.init 32 Fun.id)));
  Counters.to_assoc s.total

let grids_sig (r : Hextile_schemes.Common.result) =
  Hashtbl.fold
    (fun name (g : Grid.t) acc ->
      (name, Array.map Int64.bits_of_float g.Grid.data) :: acc)
    r.grids []
  |> List.sort compare

let hybrid_sig pool =
  let prog = Hextile_stencils.Suite.jacobi2d in
  let env p = List.assoc p [ ("N", 64); ("T", 8) ] in
  let r = Hextile_schemes.Hybrid_exec.run ?pool prog env Device.gtx470 in
  (grids_sig r, Counters.to_assoc r.counters, r.updates)

let test_recording_perturbs_nothing () =
  Timeline.disable ();
  let base_counters = sim_counters None and base_hybrid = hybrid_sig None in
  List.iter
    (fun jobs ->
      Par.with_pool ~jobs (fun p ->
          let off_c = sim_counters (Some p) and off_h = hybrid_sig (Some p) in
          Timeline.enable ();
          let on_c = sim_counters (Some p) and on_h = hybrid_sig (Some p) in
          let su = Timeline.summary () in
          Timeline.disable ();
          Alcotest.(check bool)
            (Fmt.str "recorder saw the jobs=%d run" jobs)
            true
            (Timeline.incl_s su "sim.launch" > 0.0);
          Alcotest.(check (list (pair string int)))
            (Fmt.str "counters, recording off, jobs=%d" jobs)
            base_counters off_c;
          Alcotest.(check (list (pair string int)))
            (Fmt.str "counters, recording on, jobs=%d" jobs)
            base_counters on_c;
          if off_h <> base_hybrid then
            Alcotest.failf "hybrid run differs at jobs=%d (recording off)" jobs;
          if on_h <> base_hybrid then
            Alcotest.failf "hybrid run differs at jobs=%d (recording on)" jobs))
    [ 2; 4 ]

let test_obs_shape_stable_under_recording () =
  (* Obs absorb order (including nested regions degrading to sequential)
     must be independent of both the jobs value and the recorder. *)
  Obs.reset ();
  Obs.enable ();
  Fun.protect ~finally:(fun () ->
      Obs.disable ();
      Obs.reset ();
      Timeline.disable ())
  @@ fun () ->
  let workload jobs =
    Obs.reset ();
    Par.with_pool ~jobs (fun p ->
        Par.iter p
          (fun i ->
            Obs.span (Fmt.str "outer%d" i) (fun () ->
                (* nested region: degrades to sequential on this domain *)
                ignore (Par.map p (fun j -> Obs.incr "nested.count"; j) (Array.init 4 Fun.id));
                Obs.annot "i" (Obs.Int i)))
          (Array.init 16 Fun.id));
    let shape =
      List.map
        (fun t -> (t.Obs.sname, List.assoc "i" t.Obs.attrs))
        (Obs.roots ())
    in
    (shape, Obs.counter "nested.count")
  in
  let base = workload 1 in
  Alcotest.(check int) "nested bumps all counted" 64 (snd base);
  List.iter
    (fun jobs ->
      if workload jobs <> base then
        Alcotest.failf "Obs trace shape differs at jobs=%d (recording off)" jobs;
      Timeline.enable ();
      let on = workload jobs in
      Timeline.disable ();
      if on <> base then
        Alcotest.failf "Obs trace shape differs at jobs=%d (recording on)" jobs)
    [ 2; 4 ]

(* ---- the run-summary stderr contract ---------------------------------- *)

let test_sim_summary_format () =
  let prog = Hextile_stencils.Suite.jacobi2d in
  let env p = List.assoc p [ ("N", 64); ("T", 8) ] in
  let r = Hextile_schemes.Hybrid_exec.run prog env Device.gtx470 in
  let line =
    Experiments.sim_summary ~wall_s:1.25 ~jobs:3
      ~engine:Hextile_schemes.Common.Tape r
  in
  (match String.split_on_char ' ' line with
  | "sim:" :: tokens ->
      let kvs =
        List.map
          (fun tok ->
            match String.index_opt tok '=' with
            | None -> Alcotest.failf "token %S is not key=value" tok
            | Some i ->
                let k = String.sub tok 0 i
                and v = String.sub tok (i + 1) (String.length tok - i - 1) in
                String.iter
                  (fun c ->
                    if not ((c >= 'a' && c <= 'z') || (c >= '0' && c <= '9') || c = '_')
                    then Alcotest.failf "key %S has illegal character %c" k c)
                  k;
                if String.contains v '=' || v = "" then
                  Alcotest.failf "value %S malformed" v;
                (k, v))
          tokens
      in
      (* the seven contract keys, present in order (new keys may follow) *)
      (match List.map fst kvs with
      | "wall_ms" :: "blocks" :: "blocks_memoized" :: "engine" :: "jobs"
        :: "blocks_analytic" :: "classes" :: _ ->
          ()
      | keys ->
          Alcotest.failf "key order broken: %s" (String.concat "," keys));
      Alcotest.(check (option string)) "jobs echoed" (Some "3")
        (List.assoc_opt "jobs" kvs);
      Alcotest.(check (option string)) "engine name" (Some "tape")
        (List.assoc_opt "engine" kvs);
      Alcotest.(check (option string))
        "blocks from the result"
        (Some (string_of_int r.Hextile_schemes.Common.blocks))
        (List.assoc_opt "blocks" kvs);
      Alcotest.(check (option (float 1e-6))) "wall in ms" (Some 1250.0)
        (Option.bind (List.assoc_opt "wall_ms" kvs) float_of_string_opt)
  | _ -> Alcotest.failf "summary %S does not start with \"sim:\"" line)

let suite =
  [
    Alcotest.test_case "hist: buckets, quantiles" `Quick test_hist_basics;
    Alcotest.test_case "hist: merge" `Quick test_hist_merge;
    Alcotest.test_case "disabled recorder is a no-op" `Quick test_disabled_noop;
    Alcotest.test_case "slice aggregation (incl/excl/arg/hist)" `Quick
      test_slice_aggregation;
    Alcotest.test_case "open slices closed at last timestamp" `Quick
      test_open_slice_closed_at_last_ts;
    Alcotest.test_case "overflow drops newest and counts" `Quick
      test_overflow_drops_and_counts;
    Alcotest.test_case "re-enable resets tracks" `Quick test_reenable_resets;
    Alcotest.test_case "chrome export: balanced, labelled, parseable" `Quick
      test_chrome_export;
    Alcotest.test_case "worker tracks labelled worker-N" `Quick
      test_worker_tracks_labelled;
    Alcotest.test_case "recording perturbs no counters or grids" `Slow
      test_recording_perturbs_nothing;
    Alcotest.test_case "obs shape stable under recording at jobs 1/2/4" `Quick
      test_obs_shape_stable_under_recording;
    Alcotest.test_case "run summary key=value contract" `Quick
      test_sim_summary_format;
  ]
