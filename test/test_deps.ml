open Hextile_deps
open Hextile_stencils
open Hextile_util

let dist_list deps = List.map Array.to_list (Dep.distance_vectors deps)

let test_contrived_distances () =
  (* Paper Sec 3.3.2: flow distances {(1,-2); (2,2)}; memory-based adds
     the matching anti deps (same vectors here) and the output dep (3,0). *)
  let deps = Dep.analyze Suite.contrived in
  let dists = dist_list deps in
  Alcotest.(check (list (list int)))
    "distance set"
    [ [ 1; -2 ]; [ 2; 2 ]; [ 3; 0 ] ]
    dists

let test_contrived_cone () =
  let deps = Dep.analyze Suite.contrived in
  let cone = Cone.of_deps deps ~dim:0 in
  Alcotest.(check bool) "delta0 = 1" true (Rat.equal cone.delta0 Rat.one);
  Alcotest.(check bool) "delta1 = 2" true (Rat.equal cone.delta1 (Rat.of_int 2));
  Alcotest.(check bool) "cone admits deps" true (Cone.check cone deps ~dim:0)

let test_jacobi_distances () =
  let deps = Dep.analyze Suite.jacobi2d in
  let dists = dist_list deps in
  (* flow (1,-o) and anti (1,o) for all 5 read offsets, plus output (2,0,0). *)
  let expected =
    List.sort_uniq compare
      ([ [ 2; 0; 0 ] ]
      @ List.concat_map
          (fun (a, b) -> [ [ 1; a; b ]; [ 1; -a; -b ] ])
          [ (0, 0); (1, 0); (-1, 0); (0, 1); (0, -1) ])
  in
  Alcotest.(check (list (list int))) "jacobi distance set" expected dists

let test_jacobi_cone () =
  let deps = Dep.analyze Suite.jacobi2d in
  let c0 = Cone.of_deps deps ~dim:0 in
  let c1 = Cone.of_deps deps ~dim:1 in
  Alcotest.(check bool) "dim0 δ0=δ1=1" true
    (Rat.equal c0.delta0 Rat.one && Rat.equal c0.delta1 Rat.one);
  Alcotest.(check bool) "dim1 δ0=δ1=1" true
    (Rat.equal c1.delta0 Rat.one && Rat.equal c1.delta1 Rat.one)

let test_fdtd_cone () =
  let deps = Dep.analyze Suite.fdtd2d in
  List.iter
    (fun (d : Dep.t) ->
      Alcotest.(check bool) "Δu >= 1" true (d.dist.(0) >= 1))
    deps;
  let c0 = Cone.of_deps deps ~dim:0 in
  (* hz->ey flow (1,1,0) gives δ0 = 1; the backward distances have Δu=2,
     so δ1 = 1/2. *)
  Alcotest.(check bool) "fdtd δ0 dim0 = 1" true (Rat.equal c0.delta0 Rat.one);
  Alcotest.(check bool) "fdtd δ1 dim0 = 1/2" true (Rat.equal c0.delta1 (Rat.make 1 2));
  Alcotest.(check bool) "cone admits" true (Cone.check c0 deps ~dim:0)

let test_multi_statement_du () =
  (* fdtd has k=3 statements: distances must respect Δu ≡ (i2-i1) mod 3. *)
  let deps = Dep.analyze Suite.fdtd2d in
  List.iter
    (fun (d : Dep.t) ->
      let m = Intutil.fmod (d.dist.(0) - (d.dst - d.src)) 3 in
      Alcotest.(check int) "Δu congruent to stmt index gap" 0 m)
    deps

let test_heat3d_symmetric () =
  let deps = Dep.analyze Suite.heat3d in
  List.iteri
    (fun dim () ->
      let c = Cone.of_deps deps ~dim in
      Alcotest.(check bool)
        (Fmt.str "heat3d dim%d δ0=δ1=1" dim)
        true
        (Rat.equal c.delta0 Rat.one && Rat.equal c.delta1 Rat.one))
    [ (); (); () ]

let test_delta1_only () =
  let deps = Dep.analyze Suite.jacobi2d in
  Alcotest.(check bool) "δ1 classical dim" true
    (Rat.equal (Cone.delta1_only deps ~dim:1) Rat.one)

let test_rays () =
  let deps = Dep.analyze Suite.contrived in
  let c = Cone.of_deps deps ~dim:0 in
  let (t0, s0), (t1, s1) = Cone.rays c in
  Alcotest.(check bool) "ray0 = (-1,-1)" true
    (Rat.equal t0 Rat.minus_one && Rat.equal s0 Rat.minus_one);
  Alcotest.(check bool) "ray1 = (-1,2)" true
    (Rat.equal t1 Rat.minus_one && Rat.equal s1 (Rat.of_int 2))

(* Property: brute-force dependence check. For a small 1D folded stencil,
   every pair of instances accessing a common cell (one a write) in the
   reference execution must be separated by some recorded distance
   direction: specifically the earlier access's (Δu, Δx) to the later one
   must lie in the cone computed from analyzed deps. *)
let prop_deps_cover_execution =
  QCheck.Test.make ~name:"analyzed cone covers all concrete conflicts" ~count:20
    QCheck.(int_range 2 4)
    (fun steps ->
      let prog = Suite.contrived in
      let n = 12 in
      let env p = if p = "N" then n else steps in
      let k = List.length prog.stmts in
      (* record (u, x, cell, is_write) for every access instance *)
      let log = ref [] in
      let steps_v = steps in
      for t = 0 to steps_v - 1 do
        List.iteri
          (fun i (s : Hextile_ir.Stencil.stmt) ->
            let lo = Array.map (fun e -> Hextile_ir.Affp.eval e env) s.lo in
            let hi = Array.map (fun e -> Hextile_ir.Affp.eval e env) s.hi in
            for x = lo.(0) to hi.(0) do
              let u = (k * t) + i in
              let cell_of (a : Hextile_ir.Stencil.access) =
                (Intutil.fmod (t + a.time_off) 3, x + a.offsets.(0))
              in
              log := (u, x, cell_of s.write, true) :: !log;
              List.iter
                (fun a -> log := (u, x, cell_of a, false) :: !log)
                (Hextile_ir.Stencil.reads s)
            done)
          prog.stmts
      done;
      let cone = Cone.of_deps (Dep.analyze prog) ~dim:0 in
      let entries = Array.of_list !log in
      let ok = ref true in
      Array.iter
        (fun (u1, x1, c1, w1) ->
          Array.iter
            (fun (u2, x2, c2, w2) ->
              if c1 = c2 && (w1 || w2) && u1 < u2 then begin
                let du = u2 - u1 and dx = x2 - x1 in
                (* inside cone: dx <= δ0*du and dx >= -δ1*du *)
                let upper = Rat.mul_int cone.delta0 du in
                let lower = Rat.neg (Rat.mul_int cone.delta1 du) in
                if
                  not
                    (Rat.compare (Rat.of_int dx) upper <= 0
                    && Rat.compare (Rat.of_int dx) lower >= 0)
                then ok := false
              end)
            entries)
        entries;
      !ok)

let test_wave2d_cone () =
  (* second-order time: flow distances at Δu=1 (previous level, ±1 space)
     and Δu=2 (level t); symmetric spatial cone of slope 1 *)
  let deps = Dep.analyze Suite.wave2d in
  let dists = dist_list deps in
  Alcotest.(check bool) "has (1,±1,0) flow" true
    (List.mem [ 1; 1; 0 ] dists && List.mem [ 1; -1; 0 ] dists);
  Alcotest.(check bool) "has Δu=2 distance" true
    (List.exists (fun d -> List.hd d = 2) dists);
  let c = Cone.of_deps deps ~dim:0 in
  Alcotest.(check bool) "wave cone δ0=δ1=1" true
    (Rat.equal c.delta0 Rat.one && Rat.equal c.delta1 Rat.one)

let suite =
  [
    Alcotest.test_case "contrived distances (paper example)" `Quick test_contrived_distances;
    Alcotest.test_case "contrived cone δ0=1 δ1=2" `Quick test_contrived_cone;
    Alcotest.test_case "jacobi distances" `Quick test_jacobi_distances;
    Alcotest.test_case "jacobi cone" `Quick test_jacobi_cone;
    Alcotest.test_case "fdtd cone (rational δ1)" `Quick test_fdtd_cone;
    Alcotest.test_case "multi-statement Δu congruence" `Quick test_multi_statement_du;
    Alcotest.test_case "heat3d symmetric cones" `Quick test_heat3d_symmetric;
    Alcotest.test_case "delta1_only" `Quick test_delta1_only;
    Alcotest.test_case "cone rays (Figure 3)" `Quick test_rays;
    QCheck_alcotest.to_alcotest prop_deps_cover_execution;
    Alcotest.test_case "wave2d cone (second-order time)" `Quick test_wave2d_cone;
  ]
