open Hextile_gpusim
open Hextile_ir

let mk_sim () = Sim.create Device.gtx470

let some_addrs l = Array.of_list (List.map (fun x -> Some x) l)

let test_coalesced_load () =
  let s = mk_sim () in
  Sim.launch s ~name:"k" ~blocks:1 ~threads:32 ~shared_bytes:0 ~f:(fun _ ->
      (* 32 consecutive floats starting on a line boundary: 1 transaction *)
      Sim.global_load_warp s (some_addrs (List.init 32 (fun i -> 4 * i))));
  let c = s.total in
  Alcotest.(check int) "1 transaction" 1 c.gld_transactions;
  Alcotest.(check int) "32 per-thread loads" 32 c.gld_inst;
  Alcotest.(check int) "1 request" 1 c.gld_requests;
  Alcotest.(check int) "1 dram read (cold)" 1 c.dram_read_transactions;
  Alcotest.(check (float 0.001)) "100%% efficiency" 1.0 (Counters.gld_efficiency c)

let test_unaligned_load () =
  let s = mk_sim () in
  Sim.launch s ~name:"k" ~blocks:1 ~threads:32 ~shared_bytes:0 ~f:(fun _ ->
      (* offset by one float: spans two 128B lines *)
      Sim.global_load_warp s (some_addrs (List.init 32 (fun i -> 4 * (i + 1)))));
  Alcotest.(check int) "2 transactions" 2 s.total.gld_transactions;
  Alcotest.(check (float 0.001)) "50%% efficiency" 0.5
    (Counters.gld_efficiency s.total)

let test_strided_load () =
  let s = mk_sim () in
  Sim.launch s ~name:"k" ~blocks:1 ~threads:32 ~shared_bytes:0 ~f:(fun _ ->
      (* stride of one line per lane: fully uncoalesced *)
      Sim.global_load_warp s (some_addrs (List.init 32 (fun i -> 128 * i))));
  Alcotest.(check int) "32 transactions" 32 s.total.gld_transactions

let test_inactive_lanes () =
  let s = mk_sim () in
  Sim.launch s ~name:"k" ~blocks:1 ~threads:32 ~shared_bytes:0 ~f:(fun _ ->
      let addrs = Array.init 32 (fun i -> if i < 4 then Some (4 * i) else None) in
      Sim.global_load_warp s addrs;
      Sim.global_load_warp s (Array.make 32 None));
  Alcotest.(check int) "only active lanes" 4 s.total.gld_inst;
  Alcotest.(check int) "empty warp ignored" 1 s.total.gld_requests

let test_l2_hit () =
  (* disable L1 so the repeated load reaches L2 *)
  let s = Sim.create { Device.gtx470 with l1_bytes = 0 } in
  Sim.launch s ~name:"k" ~blocks:1 ~threads:32 ~shared_bytes:0 ~f:(fun _ ->
      let a = some_addrs (List.init 32 (fun i -> 4 * i)) in
      Sim.global_load_warp s a;
      Sim.global_load_warp s a);
  Alcotest.(check int) "2 l2 reads" 2 s.total.l2_read_transactions;
  Alcotest.(check int) "1 dram read" 1 s.total.dram_read_transactions

let test_l1_filter () =
  let s = mk_sim () in
  Sim.launch s ~name:"k" ~blocks:2 ~threads:32 ~shared_bytes:0 ~f:(fun _ ->
      let a = some_addrs (List.init 32 (fun i -> 4 * i)) in
      Sim.global_load_warp s a;
      Sim.global_load_warp s a);
  (* per block: first load reaches L2, repeat is absorbed by L1; the L1 is
     reset between blocks so each block contributes one L2 read *)
  Alcotest.(check int) "L1 absorbs repeats" 2 s.total.l2_read_transactions;
  Alcotest.(check int) "gld transactions still counted" 4 s.total.gld_transactions

let test_writeback () =
  let dev = { Device.gtx470 with l2_bytes = 4096 } in
  let s = Sim.create dev in
  Sim.launch s ~name:"k" ~blocks:1 ~threads:32 ~shared_bytes:0 ~f:(fun _ ->
      (* dirty one line, then stream enough lines through the tiny L2 to
         force its eviction *)
      Sim.global_store_warp s (some_addrs [ 0 ]);
      for i = 1 to 64 do
        Sim.global_load_warp s (some_addrs [ 128 * i ])
      done);
  Alcotest.(check int) "dirty eviction counted" 1 s.total.dram_write_transactions

let test_bank_conflicts () =
  let s = mk_sim () in
  Sim.launch s ~name:"k" ~blocks:1 ~threads:32 ~shared_bytes:0 ~f:(fun _ ->
      (* stride 1: conflict-free *)
      Sim.shared_load_warp s (some_addrs (List.init 32 (fun i -> i)));
      (* stride 32: all lanes in bank 0 -> 32-way conflict *)
      Sim.shared_load_warp s (some_addrs (List.init 32 (fun i -> 32 * i)));
      (* broadcast: same word for all lanes -> 1 transaction *)
      Sim.shared_load_warp s (some_addrs (List.init 32 (fun _ -> 7)));
      (* stride 2: 2-way conflict *)
      Sim.shared_load_warp s (some_addrs (List.init 32 (fun i -> 2 * i))));
  let c = s.total in
  Alcotest.(check int) "requests" 4 c.shared_load_requests;
  Alcotest.(check int) "transactions 1+32+1+2" 36 c.shared_load_transactions;
  Alcotest.(check (float 0.001)) "replay factor" 9.0
    (Counters.shared_loads_per_request c)

let test_replay_param () =
  let s = mk_sim () in
  Sim.launch s ~name:"k" ~blocks:1 ~threads:32 ~shared_bytes:0 ~f:(fun _ ->
      Sim.shared_load_warp ~replay:2 s (some_addrs (List.init 32 (fun i -> i))));
  Alcotest.(check int) "replay doubles transactions" 2 s.total.shared_load_transactions

let test_launch_limits () =
  let s = mk_sim () in
  Alcotest.(check bool) "too many threads rejected" true
    (match
       Sim.launch s ~name:"k" ~blocks:1 ~threads:2048 ~shared_bytes:0 ~f:(fun _ -> ())
     with
    | exception Invalid_argument _ -> true
    | () -> false);
  Alcotest.(check bool) "too much shared memory rejected" true
    (match
       Sim.launch s ~name:"k" ~blocks:1 ~threads:32 ~shared_bytes:(1 lsl 20)
         ~f:(fun _ -> ())
     with
    | exception Invalid_argument _ -> true
    | () -> false)

let test_block_scramble () =
  let s = mk_sim () in
  let order = ref [] in
  Sim.launch s ~name:"k" ~blocks:7 ~threads:32 ~shared_bytes:0 ~f:(fun b ->
      order := b :: !order);
  let seen = List.sort_uniq compare !order in
  Alcotest.(check (list int)) "all blocks run once" [ 0; 1; 2; 3; 4; 5; 6 ] seen;
  Alcotest.(check bool) "order scrambled" true (List.rev !order <> [ 0; 1; 2; 3; 4; 5; 6 ])

let test_launch_records () =
  let s = mk_sim () in
  Sim.launch s ~name:"a" ~blocks:2 ~threads:64 ~shared_bytes:0 ~f:(fun _ ->
      Sim.flops_warp s ~active:32 ~per_lane:10);
  Sim.launch s ~name:"b" ~blocks:0 ~threads:64 ~shared_bytes:0 ~f:(fun _ ->
      Alcotest.fail "0-block launch must not run");
  Alcotest.(check int) "one kernel recorded" 1 (List.length s.launches);
  Alcotest.(check int) "flops counted" 640 s.total.flops;
  Alcotest.(check bool) "time positive" true (Sim.kernel_time s > 0.0)

let test_timing_monotone () =
  (* more DRAM traffic -> more time *)
  let t n =
    let dev = { Device.gtx470 with l2_bytes = 4096 } in
    let s = Sim.create dev in
    Sim.launch s ~name:"k" ~blocks:64 ~threads:32 ~shared_bytes:0 ~f:(fun b ->
        if b = 0 then
          for i = 0 to n - 1 do
            Sim.global_load_warp s (some_addrs [ 1000000 + (128 * i) ])
          done);
    Sim.kernel_time s
  in
  Alcotest.(check bool) "t(1000) > t(10)" true (t 1000 > t 10)

let test_addrmap () =
  let prog = Hextile_stencils.Suite.heat1d in
  let env x = List.assoc x [ ("N", 30); ("T", 10) ] in
  let grids = Grid.alloc prog env in
  let g = Grid.find grids "A" in
  let am = Addrmap.create () in
  let a0 = Addrmap.addr am g 0 in
  Alcotest.(check int) "256-aligned base" 0 (a0 mod 256);
  Alcotest.(check int) "stride 4" 4 (Addrmap.addr am g 1 - a0);
  let am2 = Addrmap.create () in
  Addrmap.register am2 g ~offset_floats:3;
  Alcotest.(check int) "offset applied" 12 (Addrmap.base am2 g mod 256)

let test_device_lookup () =
  Alcotest.(check string) "gtx470" "gtx470" (Device.by_name "gtx470").name;
  Alcotest.(check string) "nvs5200m alias" "nvs5200" (Device.by_name "nvs5200m").name;
  Alcotest.check_raises "unknown device" Not_found (fun () ->
      ignore (Device.by_name "h100"));
  Alcotest.(check bool) "peak gflops plausible" true
    (Device.peak_gflops Device.gtx470 > 100.0)

let test_zero_denominator_ratios () =
  (* A kernel that issues no global loads / shared requests must not
     divide by zero: efficiency is 0 (no useful traffic), conflicts are
     1 (no replays). *)
  let c = Counters.create () in
  Alcotest.(check (float 0.0)) "gld_efficiency on 0 loads" 0.0
    (Counters.gld_efficiency c);
  Alcotest.(check (float 0.0)) "shared replays on 0 requests" 1.0
    (Counters.shared_loads_per_request c)

let test_counters_to_assoc () =
  let c = Counters.create () in
  c.gld_inst <- 7;
  c.shared_load_requests <- 3;
  let assoc = Counters.to_assoc c in
  Alcotest.(check int) "gld_inst exported" 7 (List.assoc "gld_inst" assoc);
  Alcotest.(check int) "shared_load_requests exported" 3 (List.assoc "shared_load_requests" assoc);
  Alcotest.(check int) "untouched counter is 0" 0 (List.assoc "gst_inst" assoc);
  Alcotest.(check int) "all 18 counters present" 18 (List.length assoc)

let test_counters_diff () =
  let a = Counters.create () in
  a.gld_inst <- 10;
  let b = Counters.copy a in
  b.gld_inst <- 25;
  Alcotest.(check int) "diff" 15 (Counters.diff b a).gld_inst;
  Counters.add a b;
  Alcotest.(check int) "add" 35 a.gld_inst

(* ---- race / barrier sanitizer ----------------------------------------- *)

let with_sanitizer f =
  Sanitize.reset ();
  Sanitize.enable ();
  Fun.protect ~finally:(fun () -> Sanitize.disable ()) f

let races () =
  List.filter_map
    (function Sanitize.Race r -> Some r | Sanitize.Divergence _ -> None)
    (Sanitize.findings ())

let divergences () =
  List.filter_map
    (function Sanitize.Divergence d -> Some d | Sanitize.Race _ -> None)
    (Sanitize.findings ())

let lane_pair w1 w2 =
  Array.init 32 (fun i -> if i = 0 then Some w1 else if i = 1 then Some w2 else None)

let tid_pair t1 t2 =
  Array.init 32 (fun i -> if i = 0 then t1 else if i = 1 then t2 else 0)

let lane_one w = Array.init 32 (fun i -> if i = 0 then Some w else None)
let tid_one t = Array.make 32 t

let test_sanitizer_ww_race () =
  with_sanitizer (fun () ->
      let s = mk_sim () in
      Sim.launch s ~name:"k" ~blocks:1 ~threads:32 ~shared_bytes:256
        ~f:(fun _ ->
          (* lanes 0 and 1 both store word 5, no barrier between *)
          Sim.shared_store_warp s ~tids:(tid_pair 1 2) (lane_pair 5 5));
      match races () with
      | [ r ] ->
          Alcotest.(check bool) "write/write" true (r.r_kind = `Write_write);
          Alcotest.(check int) "word" 5 r.r_word
      | rs -> Alcotest.failf "expected 1 race, got %d" (List.length rs))

let test_sanitizer_wr_race_and_barrier () =
  (* store then load of the same word by different threads: a race
     without a barrier in between, silent with one *)
  let run_with_barrier b =
    with_sanitizer (fun () ->
        let s = mk_sim () in
        Sim.launch s ~name:"k" ~blocks:1 ~threads:32 ~shared_bytes:256
          ~f:(fun _ ->
            Sim.shared_store_warp s ~tids:(tid_one 1) (lane_one 7);
            if b then Sim.sync s;
            Sim.shared_load_warp s ~tids:(tid_one 2) (lane_one 7));
        List.length (races ()))
  in
  Alcotest.(check int) "no barrier: 1 race" 1 (run_with_barrier false);
  Alcotest.(check int) "barrier: no race" 0 (run_with_barrier true)

let test_sanitizer_same_tid_ok () =
  with_sanitizer (fun () ->
      let s = mk_sim () in
      Sim.launch s ~name:"k" ~blocks:1 ~threads:32 ~shared_bytes:256
        ~f:(fun _ ->
          (* one thread reads its own cell and overwrites it: fine *)
          Sim.shared_load_warp s ~tids:(tid_one 9) (lane_one 3);
          Sim.shared_store_warp s ~tids:(tid_one 9) (lane_one 3));
      Alcotest.(check int) "no race" 0 (List.length (races ())))

let test_sanitizer_synthetic_tids () =
  with_sanitizer (fun () ->
      let s = mk_sim () in
      Sim.launch s ~name:"k" ~blocks:1 ~threads:32 ~shared_bytes:256
        ~f:(fun _ ->
          (* without identities every lane is assumed distinct: the
             store/load pair on word 0 must be flagged *)
          Sim.shared_store_warp s (lane_pair 0 1);
          Sim.shared_load_warp s (lane_pair 0 1));
      Alcotest.(check bool) "reported" true (List.length (races ()) >= 1))

let test_sanitizer_divergence () =
  with_sanitizer (fun () ->
      let s = mk_sim () in
      Sim.launch s ~name:"k" ~blocks:2 ~threads:32 ~shared_bytes:0
        ~f:(fun b ->
          Sim.sync s;
          if b = 0 then Sim.sync s);
      match divergences () with
      | [ d ] ->
          Alcotest.(check bool) "counts differ" true (d.d_syncs <> d.d_expected);
          Alcotest.(check bool) "counts are 1 and 2" true
            (List.sort compare [ d.d_syncs; d.d_expected ] = [ 1; 2 ])
      | ds -> Alcotest.failf "expected 1 divergence, got %d" (List.length ds))

let test_sanitizer_disabled_and_reset () =
  Sanitize.reset ();
  Alcotest.(check bool) "disabled by default" false (Sanitize.enabled ());
  let s = mk_sim () in
  Sim.launch s ~name:"k" ~blocks:1 ~threads:32 ~shared_bytes:256 ~f:(fun _ ->
      Sim.shared_store_warp s ~tids:(tid_pair 1 2) (lane_pair 5 5));
  Alcotest.(check int) "no findings while disabled" 0
    (List.length (Sanitize.findings ()));
  with_sanitizer (fun () ->
      let s = mk_sim () in
      Sim.launch s ~name:"k" ~blocks:1 ~threads:32 ~shared_bytes:256
        ~f:(fun _ ->
          Sim.shared_store_warp s ~tids:(tid_pair 1 2) (lane_pair 5 5));
      Alcotest.(check int) "finding recorded" 1
        (List.length (Sanitize.findings ()));
      Alcotest.(check int) "none dropped" 0 (Sanitize.dropped ());
      Sanitize.reset ();
      Alcotest.(check int) "reset clears" 0
        (List.length (Sanitize.findings ())))

let suite =
  [
    Alcotest.test_case "coalesced warp load" `Quick test_coalesced_load;
    Alcotest.test_case "unaligned warp load" `Quick test_unaligned_load;
    Alcotest.test_case "strided warp load" `Quick test_strided_load;
    Alcotest.test_case "inactive lanes" `Quick test_inactive_lanes;
    Alcotest.test_case "L2 hits" `Quick test_l2_hit;
    Alcotest.test_case "L1 filtering" `Quick test_l1_filter;
    Alcotest.test_case "dirty writeback" `Quick test_writeback;
    Alcotest.test_case "shared bank conflicts" `Quick test_bank_conflicts;
    Alcotest.test_case "replay parameter" `Quick test_replay_param;
    Alcotest.test_case "launch limits" `Quick test_launch_limits;
    Alcotest.test_case "block scrambling" `Quick test_block_scramble;
    Alcotest.test_case "launch records" `Quick test_launch_records;
    Alcotest.test_case "timing monotone in traffic" `Quick test_timing_monotone;
    Alcotest.test_case "address map" `Quick test_addrmap;
    Alcotest.test_case "device lookup" `Quick test_device_lookup;
    Alcotest.test_case "counters add/diff" `Quick test_counters_diff;
    Alcotest.test_case "zero-denominator ratios" `Quick test_zero_denominator_ratios;
    Alcotest.test_case "counters to_assoc" `Quick test_counters_to_assoc;
    Alcotest.test_case "sanitizer write/write race" `Quick
      test_sanitizer_ww_race;
    Alcotest.test_case "sanitizer write/read race vs barrier" `Quick
      test_sanitizer_wr_race_and_barrier;
    Alcotest.test_case "sanitizer same-thread access ok" `Quick
      test_sanitizer_same_tid_ok;
    Alcotest.test_case "sanitizer synthetic identities" `Quick
      test_sanitizer_synthetic_tids;
    Alcotest.test_case "sanitizer barrier divergence" `Quick
      test_sanitizer_divergence;
    Alcotest.test_case "sanitizer disabled/reset" `Quick
      test_sanitizer_disabled_and_reset;
  ]
